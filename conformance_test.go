// Cross-backend differential conformance: randomized (seeded) recipes
// must produce byte-identical exports and equivalent per-op reports on
// the batch executor and the streaming engine, fused and unfused, fixed
// and adaptive. This is the contract that lets the two backends — and the
// adaptive controller retuning one of them mid-run — diverge in
// implementation without ever diverging in output.
package repro_test

import (
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/disttest"
	"repro/internal/format"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/remote"
	"repro/internal/stream"
)

// opDraw yields one operator spec, optionally randomizing parameters.
type opDraw func(rng *rand.Rand) config.OpSpec

func fixedOp(name string) opDraw {
	return func(*rand.Rand) config.OpSpec { return config.OpSpec{Name: name} }
}

// conformancePool is the operator universe recipes are drawn from: a mix
// of shard-local mappers and filters, a shared-index deduplicator, and
// barrier (similarity) deduplicators.
var conformancePool = []opDraw{
	fixedOp("clean_links_mapper"),
	fixedOp("clean_html_mapper"),
	fixedOp("whitespace_normalization_mapper"),
	fixedOp("fix_unicode_mapper"),
	fixedOp("remove_non_printing_mapper"),
	fixedOp("alphanumeric_filter"),
	fixedOp("special_characters_filter"),
	func(rng *rand.Rand) config.OpSpec {
		return config.OpSpec{Name: "word_num_filter", Params: ops.Params{"min_num": 1 + rng.Intn(8)}}
	},
	func(rng *rand.Rand) config.OpSpec {
		return config.OpSpec{Name: "character_repetition_filter",
			Params: ops.Params{"rep_len": 3 + rng.Intn(5), "max_ratio": 0.4 + 0.4*rng.Float64()}}
	},
	func(rng *rand.Rand) config.OpSpec {
		return config.OpSpec{Name: "stopwords_filter", Params: ops.Params{"min_ratio": 0.02 * rng.Float64()}}
	},
	func(rng *rand.Rand) config.OpSpec {
		return config.OpSpec{Name: "flagged_words_filter", Params: ops.Params{"max_ratio": 0.05 + 0.2*rng.Float64()}}
	},
	func(rng *rand.Rand) config.OpSpec {
		return config.OpSpec{Name: "text_length_filter", Params: ops.Params{"min_len": rng.Intn(60)}}
	},
	fixedOp("document_deduplicator"),
	fixedOp("document_simhash_deduplicator"),
	fixedOp("document_minhash_deduplicator"),
}

// randomRecipe draws 3-6 distinct pool entries in pool order — a
// plausible pipeline with at least one op guaranteed.
func randomRecipe(rng *rand.Rand) *config.Recipe {
	n := 3 + rng.Intn(4)
	picks := rng.Perm(len(conformancePool))[:n]
	sort.Ints(picks) // keep pool (≈pipeline) order
	r := config.Default()
	r.ProjectName = "conformance"
	r.UseCache = false
	r.OpFusion = rng.Intn(2) == 0
	for _, idx := range picks {
		r.Process = append(r.Process, conformancePool[idx](rng))
	}
	return r
}

// runDistStream runs the recipe on the streaming engine with a real
// djworker fleet dispatching the shard-local stages — the distributed
// conformance leg. The pool gets its own work dir so worker-side state
// never touches the recipe's. A non-nil delay is installed as the
// engine's ShardDelay hook (jittered shard-completion order).
func runDistStream(t *testing.T, r *config.Recipe, input string, adaptive bool, workers, shardSize int, delay func(phase, shard int) time.Duration) ([]byte, *stream.Report) {
	t.Helper()
	pool, err := remote.NewPool(remote.PoolOptions{
		Workers:   workers,
		WorkerBin: disttest.WorkerBin(t),
		WorkDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	eng, err := stream.New(r, stream.Options{
		ShardSize:      shardSize,
		Adaptive:       adaptive,
		MaxWorkers:     4,
		TargetMemBytes: 64 << 20,
		Generation:     2,
		Dispatch:       pool,
		ShardDelay:     delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Configure(r, eng.Plan(), "conformance", nil); err != nil {
		t.Fatal(err)
	}
	src, err := stream.OpenSource(input, shardSize)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := stream.NewShardedJSONLSink(filepath.Join(t.TempDir(), "dist"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(src, sink)
	if err != nil {
		t.Fatal(err)
	}
	return readAll(t, sink.Paths()...), rep
}

func readAll(t *testing.T, paths ...string) []byte {
	t.Helper()
	var out []byte
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, raw...)
	}
	return out
}

// TestCrossBackendConformanceMixedFormats holds the acceptance bar of
// the unified ingestion layer: a "mix:" spec over a gzipped CSV and a
// plain JSONL — weighted 2:1, one constituent sample-capped — must
// produce byte-identical exports on the batch executor and the streaming
// engine, provenance tags included, while the stream side still reads
// shard by shard.
func TestCrossBackendConformanceMixedFormats(t *testing.T) {
	dir := t.TempDir()

	// Constituent 1: plain JSONL with duplicates for the dedup stage.
	web := corpus.Web(corpus.Options{Docs: 240, Seed: 77})
	jsonlPath := filepath.Join(dir, "web.jsonl")
	if err := web.SaveJSONL(jsonlPath); err != nil {
		t.Fatal(err)
	}

	// Constituent 2: gzipped CSV with a text column and a meta column.
	wiki := corpus.Wiki(corpus.Options{Docs: 120, Seed: 78})
	csvPath := filepath.Join(dir, "wiki.csv.gz")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	cw := csv.NewWriter(zw)
	if err := cw.Write([]string{"text", "topic"}); err != nil {
		t.Fatal(err)
	}
	for _, s := range wiki.Samples {
		topic, _ := s.GetString("meta.topic")
		if err := cw.Write([]string{s.Text, topic}); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := "mix:" + jsonlPath + "@2," + csvPath + "@1:100"

	// A recipe crossing every capability class: shard-local mappers and
	// filters, a shared-index dedup, and a barrier (minhash) dedup.
	recipe := config.Default()
	recipe.ProjectName = "conformance-mixed"
	recipe.UseCache = false
	recipe.Process = []config.OpSpec{
		{Name: "fix_unicode_mapper"},
		{Name: "clean_links_mapper"},
		{Name: "whitespace_normalization_mapper"},
		{Name: "word_num_filter", Params: ops.Params{"min_num": 5}},
		{Name: "document_deduplicator"},
		{Name: "document_minhash_deduplicator"},
	}
	recipe.WorkDir = t.TempDir()

	// Each stream mode plans from its own cold work dir: the batch run
	// persists measured profiles, and a shared sidecar would let a later
	// engine legally reorder and misalign the per-op report comparison
	// (same isolation as TestCrossBackendConformance).
	streamRecipe := *recipe
	streamRecipe.WorkDir = t.TempDir()

	// Batch reference run over the drained mixture.
	exec, err := core.NewExecutor(recipe)
	if err != nil {
		t.Fatal(err)
	}
	data, err := format.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 340 { // 240 jsonl + 100 capped csv rows
		t.Fatalf("mixture loaded %d samples, want 340", data.Len())
	}
	batchOut, batchRep, err := exec.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	batchPath := filepath.Join(t.TempDir(), "batch.jsonl")
	if err := format.Export(batchOut, batchPath); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name     string
		adaptive bool
		shard    int
	}{
		{"fixed", false, 37},
		{"adaptive", true, 64},
	} {
		t.Run(mode.name, func(t *testing.T) {
			modeRecipe := streamRecipe
			modeRecipe.WorkDir = t.TempDir()
			eng, err := stream.New(&modeRecipe, stream.Options{
				ShardSize:      mode.shard,
				Adaptive:       mode.adaptive,
				MaxWorkers:     4,
				TargetMemBytes: 32 << 20,
				Generation:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			src, err := stream.OpenSource(spec, mode.shard)
			if err != nil {
				t.Fatal(err)
			}
			prefix := filepath.Join(t.TempDir(), "stream")
			sink, err := stream.NewShardedJSONLSink(prefix)
			if err != nil {
				t.Fatal(err)
			}
			streamRep, err := eng.Run(src, sink)
			if err != nil {
				t.Fatal(err)
			}
			batchBytes := readAll(t, batchPath)
			streamBytes := readAll(t, sink.Paths()...)
			if string(batchBytes) != string(streamBytes) {
				t.Fatalf("mixed-format exports diverge: batch %d bytes, stream %d bytes",
					len(batchBytes), len(streamBytes))
			}
			if len(batchRep.OpStats) != len(streamRep.OpStats) {
				t.Fatalf("report length diverges: batch %d, stream %d",
					len(batchRep.OpStats), len(streamRep.OpStats))
			}
			for i, b := range batchRep.OpStats {
				s := streamRep.OpStats[i]
				if b.Name != s.Name || b.InCount != s.InCount || b.OutCount != s.OutCount {
					t.Errorf("op %d: batch %s %d->%d, stream %s %d->%d",
						i, b.Name, b.InCount, b.OutCount, s.Name, s.InCount, s.OutCount)
				}
			}
		})
	}

	// Provenance survives processing: every exported sample is tagged.
	for _, s := range batchOut.Samples {
		if _, ok := s.Meta.Get("source"); !ok {
			t.Fatal("processed sample lost its provenance tag")
		}
	}
}

func TestCrossBackendConformance(t *testing.T) {
	// A corpus salted with exact and near duplicates so deduplicators
	// have real work, written once as the shared JSONL input.
	d := corpus.Web(corpus.Options{Docs: 400, Seed: 20260729})
	input := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(input); err != nil {
		t.Fatal(err)
	}

	shardSizes := []int{16, 50, 128, 400}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			recipe := randomRecipe(rng)
			recipe.WorkDir = t.TempDir()
			shardSize := shardSizes[rng.Intn(len(shardSizes))]
			adaptive := seed%2 == 0

			// Batch reference run. The batch run persists measured
			// profiles into its work dir, which would steer the second
			// backend's plan (reordering is legal but would misalign the
			// per-op report comparison below) — so the streaming engine
			// gets its own work dir and both plan from the same cold
			// state. TestPlannerConformance covers the warm-profile path.
			streamRecipe := *recipe
			streamRecipe.WorkDir = t.TempDir()
			exec, err := core.NewExecutor(recipe)
			if err != nil {
				t.Fatal(err)
			}
			data, err := format.Load(input)
			if err != nil {
				t.Fatal(err)
			}
			batchOut, batchRep, err := exec.Run(data)
			if err != nil {
				t.Fatal(err)
			}
			batchPath := filepath.Join(t.TempDir(), "batch.jsonl")
			if err := format.Export(batchOut, batchPath); err != nil {
				t.Fatal(err)
			}

			// Streaming run over the same recipe and input.
			eng, err := stream.New(&streamRecipe, stream.Options{
				ShardSize:      shardSize,
				Adaptive:       adaptive,
				MaxWorkers:     4,
				TargetMemBytes: 64 << 20,
				Generation:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			src, err := stream.OpenSource(input, shardSize)
			if err != nil {
				t.Fatal(err)
			}
			prefix := filepath.Join(t.TempDir(), "stream")
			sink, err := stream.NewShardedJSONLSink(prefix)
			if err != nil {
				t.Fatal(err)
			}
			streamRep, err := eng.Run(src, sink)
			if err != nil {
				t.Fatal(err)
			}

			// Byte-identical exports: the concatenated stream shards must
			// equal the batch export exactly.
			batchBytes := readAll(t, batchPath)
			streamBytes := readAll(t, sink.Paths()...)
			if string(batchBytes) != string(streamBytes) {
				t.Fatalf("exports diverge: batch %d bytes, stream %d bytes (fusion=%v adaptive=%v shard=%d)\nrecipe: %+v",
					len(batchBytes), len(streamBytes), recipe.OpFusion, adaptive, shardSize, recipe.Process)
			}

			// Equivalent per-op reports: same plan, same per-op sample flow.
			if len(batchRep.OpStats) != len(streamRep.OpStats) {
				t.Fatalf("report length diverges: batch %d ops, stream %d ops",
					len(batchRep.OpStats), len(streamRep.OpStats))
			}
			for i, b := range batchRep.OpStats {
				s := streamRep.OpStats[i]
				if b.Name != s.Name || b.InCount != s.InCount || b.OutCount != s.OutCount {
					t.Errorf("op %d: batch %s %d->%d, stream %s %d->%d",
						i, b.Name, b.InCount, b.OutCount, s.Name, s.InCount, s.OutCount)
				}
			}
			if adaptive && streamRep.Metrics == nil {
				t.Error("adaptive run reported no controller metrics")
			}

			// Distributed leg: the same recipe over a real djworker fleet
			// (2 or 4 workers by seed, spill forced on every third seed)
			// must stay byte-identical to the batch reference with the
			// same per-op sample flow in the merged report.
			if testing.Short() {
				return
			}
			distRecipe := *recipe
			distRecipe.WorkDir = t.TempDir()
			if seed%3 == 0 {
				distRecipe.TargetMemMB = 1 // force dedup-index spill
			}
			workers := 2
			if seed%2 == 0 {
				workers = 4
			}
			distBytes, distRep := runDistStream(t, &distRecipe, input, adaptive, workers, shardSize, nil)
			if string(batchBytes) != string(distBytes) {
				t.Fatalf("distributed export diverges: batch %d bytes, dist %d bytes (workers=%d adaptive=%v spill=%v)\nrecipe: %+v",
					len(batchBytes), len(distBytes), workers, adaptive, seed%3 == 0, recipe.Process)
			}
			if distRep.Dist == nil {
				t.Fatal("distributed run reported no fleet stats")
			}
			if distRep.Dist.Retries != 0 || distRep.Dist.Fallbacks != 0 {
				t.Errorf("healthy fleet reported %d retries, %d fallbacks",
					distRep.Dist.Retries, distRep.Dist.Fallbacks)
			}
			for i, b := range batchRep.OpStats {
				s := distRep.OpStats[i]
				if b.Name != s.Name || b.InCount != s.InCount || b.OutCount != s.OutCount {
					t.Errorf("dist op %d: batch %s %d->%d, dist %s %d->%d",
						i, b.Name, b.InCount, b.OutCount, s.Name, s.InCount, s.OutCount)
				}
			}
		})
	}
}

// TestPlannerConformance holds the planner's acceptance bar over the 12
// seeded recipes: whatever legal reordering/fusion the planner applies —
// planner off (static recipe order), planner on cold (static hints), or
// planner on warm (measured-cost order from the persisted sidecar) — the
// exported bytes must never change, on either backend, fixed and
// adaptive. It also pins the headline behavior: the second run of a
// recipe demonstrably plans from the profile sidecar the first run
// persisted.
func TestPlannerConformance(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 300, Seed: 20260730})
	input := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(input); err != nil {
		t.Fatal(err)
	}

	runBatch := func(t *testing.T, r *config.Recipe) ([]byte, *core.Executor) {
		t.Helper()
		exec, err := core.NewExecutor(r)
		if err != nil {
			t.Fatal(err)
		}
		data, err := format.Load(input)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := exec.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "out.jsonl")
		if err := format.Export(out, path); err != nil {
			t.Fatal(err)
		}
		return readAll(t, path), exec
	}

	runStream := func(t *testing.T, r *config.Recipe, adaptive bool) []byte {
		t.Helper()
		eng, err := stream.New(r, stream.Options{
			ShardSize:      41,
			Adaptive:       adaptive,
			MaxWorkers:     4,
			TargetMemBytes: 64 << 20,
			Generation:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := stream.OpenSource(input, 41)
		if err != nil {
			t.Fatal(err)
		}
		sink, err := stream.NewShardedJSONLSink(filepath.Join(t.TempDir(), "stream"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(src, sink); err != nil {
			t.Fatal(err)
		}
		return readAll(t, sink.Paths()...)
	}

	measuredSeeds := 0
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			recipe := randomRecipe(rng)
			adaptive := seed%2 == 0

			// Planner off: static recipe order, no fusion, no profiles.
			off := *recipe
			off.OpFusion = false
			off.UseProfiles = false
			off.WorkDir = t.TempDir()
			ref, _ := runBatch(t, &off)

			// Planner on, cold: fusion + static-hint reordering.
			on := *recipe
			on.OpFusion = true
			on.UseProfiles = true
			on.WorkDir = t.TempDir()
			cold, coldExec := runBatch(t, &on)
			if string(cold) != string(ref) {
				t.Fatalf("planner-on (cold) changed the export: %d vs %d bytes\nrecipe: %+v",
					len(cold), len(ref), recipe.Process)
			}
			if n := coldExec.Plan().MeasuredOps; n != 0 {
				t.Fatalf("cold plan claims %d measured ops", n)
			}

			// Planner on, warm: the same recipe replans from the sidecar
			// the cold run persisted.
			warm, warmExec := runBatch(t, &on)
			if string(warm) != string(ref) {
				t.Fatalf("planner-on (warm) changed the export: %d vs %d bytes\nplan:\n%s",
					len(warm), len(ref), warmExec.Plan().Explain())
			}
			if warmExec.Plan().MeasuredOps > 0 {
				measuredSeeds++
			} else {
				t.Fatalf("warm run did not plan from the persisted sidecar:\n%s",
					warmExec.Plan().Explain())
			}

			// Streaming over the same warm sidecar (and a cold one).
			if got := runStream(t, &on, adaptive); string(got) != string(ref) {
				t.Fatalf("stream (warm profiles, adaptive=%v) changed the export: %d vs %d bytes",
					adaptive, len(got), len(ref))
			}
			onStreamCold := on
			onStreamCold.WorkDir = t.TempDir()
			if got := runStream(t, &onStreamCold, adaptive); string(got) != string(ref) {
				t.Fatalf("stream (cold, adaptive=%v) changed the export: %d vs %d bytes",
					adaptive, len(got), len(ref))
			}

			// Distributed over the warm sidecar: the coordinator ships the
			// measured profiles over the wire, the workers replan from them,
			// and the fingerprint handshake proves both processes derived
			// the same measured-cost plan — still byte-identical to
			// planner-off.
			if !testing.Short() {
				workers := 2
				if seed%2 == 0 {
					workers = 3
				}
				got, _ := runDistStream(t, &on, input, adaptive, workers, 41, nil)
				if string(got) != string(ref) {
					t.Fatalf("distributed (warm profiles, adaptive=%v, workers=%d) changed the export: %d vs %d bytes",
						adaptive, workers, len(got), len(ref))
				}
			}
		})
	}
	if measuredSeeds == 0 {
		t.Fatal("no seed exercised a measured warm plan")
	}
}

// jitterDelay builds a deterministic pseudo-random per-(phase, shard)
// delay from a seed: up to ~2ms per shard, enough to scramble the order
// in which shards reach the shared-index stages without slowing the
// suite down.
func jitterDelay(seed int64) func(phase, shard int) time.Duration {
	return func(phase, shard int) time.Duration {
		h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(phase)<<32 + uint64(shard)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return time.Duration(h % uint64(2*time.Millisecond))
	}
}

// TestJitteredShardConformance scrambles shard completion order with
// seeded random delays and holds the streaming export byte-identical to
// the batch reference. This is the adversarial leg for the partitioned
// signature index: shards now claim partitions out of order and the
// in-order resolution is reconstructed per partition, so any ordering
// assumption hiding in the claim/deposit protocol shows up here as a
// flipped keep set. Covers spill on/off, serial and partitioned
// configurations, and a distributed fleet.
func TestJitteredShardConformance(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 500, Seed: 20260808})
	input := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(input); err != nil {
		t.Fatal(err)
	}

	// Dedup-heavy recipe crossing every capability class, so the
	// shared-index stage sees real duplicate collisions across shards.
	recipe := config.Default()
	recipe.ProjectName = "jitter-conformance"
	recipe.UseCache = false
	recipe.Process = []config.OpSpec{
		{Name: "whitespace_normalization_mapper"},
		{Name: "word_num_filter", Params: ops.Params{"min_num": 3}},
		{Name: "document_deduplicator"},
		{Name: "document_minhash_deduplicator"},
	}
	recipe.WorkDir = t.TempDir()

	exec, err := core.NewExecutor(recipe)
	if err != nil {
		t.Fatal(err)
	}
	data, err := format.Load(input)
	if err != nil {
		t.Fatal(err)
	}
	batchOut, _, err := exec.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	batchPath := filepath.Join(t.TempDir(), "batch.jsonl")
	if err := format.Export(batchOut, batchPath); err != nil {
		t.Fatal(err)
	}
	ref := readAll(t, batchPath)

	for _, mode := range []struct {
		name       string
		targetMB   int
		partitions int
		seed       int64
	}{
		{"inmem-serial", 0, 1, 1},
		{"inmem-partitioned", 0, 8, 2},
		{"inmem-auto", 0, 0, 3},
		{"spill-serial", 1, 1, 4},
		{"spill-partitioned", 1, 8, 5},
	} {
		t.Run(mode.name, func(t *testing.T) {
			r := *recipe
			r.WorkDir = t.TempDir()
			r.TargetMemMB = mode.targetMB
			r.IndexPartitions = mode.partitions
			eng, err := stream.New(&r, stream.Options{
				ShardSize:      23,
				MaxWorkers:     4,
				TargetMemBytes: 64 << 20,
				Generation:     2,
				ShardDelay:     jitterDelay(mode.seed),
			})
			if err != nil {
				t.Fatal(err)
			}
			src, err := stream.OpenSource(input, 23)
			if err != nil {
				t.Fatal(err)
			}
			sink, err := stream.NewShardedJSONLSink(filepath.Join(t.TempDir(), "stream"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(src, sink); err != nil {
				t.Fatal(err)
			}
			if got := readAll(t, sink.Paths()...); string(got) != string(ref) {
				t.Fatalf("jittered export diverges from batch: %d vs %d bytes (target=%dMB partitions=%d seed=%d)",
					len(got), len(ref), mode.targetMB, mode.partitions, mode.seed)
			}
		})
	}

	// Distributed fleet under the same jitter: shard-local stages run on
	// real djworker subprocesses, the partitioned index absorbs their
	// out-of-order returns coordinator-side.
	if !testing.Short() {
		t.Run("dist-jitter", func(t *testing.T) {
			r := *recipe
			r.WorkDir = t.TempDir()
			r.IndexPartitions = 4
			got, _ := runDistStream(t, &r, input, false, 3, 23, jitterDelay(6))
			if string(got) != string(ref) {
				t.Fatalf("jittered distributed export diverges from batch: %d vs %d bytes",
					len(got), len(ref))
			}
		})
	}
}
