// BenchmarkDedupSpill measures the headline claim of the disk-backed
// dedup indexes: a near-duplicate pass over a corpus whose resident
// index state is an order of magnitude larger than the memory budget
// must complete with peak heap near the budget, not near the corpus.
// Captured numbers live in BENCH_dedup_spill.json.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
)

// spillBenchBudget is the per-op index budget. At spillBenchDocs the
// corpus text alone is ~12 MiB and the in-memory minhash index state
// (128-slot signature plus shingle set, ~1.5 KiB resident per doc) is
// ~24 MiB — both an order of magnitude past the 1 MiB budget.
const (
	spillBenchBudget = 1 << 20
	spillBenchDocs   = 16000
)

func benchDedupOnce(b *testing.B, spill bool) {
	b.Helper()
	d := corpus.Web(corpus.Options{Docs: spillBenchDocs, Seed: 99, DupExact: 0.2, DupNear: 0.1})
	var peak, dropped uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := ops.Build("document_minhash_deduplicator", nil)
		if err != nil {
			b.Fatal(err)
		}
		if spill {
			op.(ops.Spiller).ConfigureSpill(ops.SpillSpec{
				Dir: b.TempDir(), BudgetBytes: spillBenchBudget,
			})
		}
		ds := d.Clone()
		sample := baseline.TrackMemory(2*time.Millisecond, func() {
			kept, _, err := op.(ops.Deduplicator).Dedup(ds, 0)
			if err != nil {
				b.Fatal(err)
			}
			dropped = uint64(d.Len() - kept.Len())
		})
		if sample.PeakHeap > peak {
			peak = sample.PeakHeap
		}
		if spill {
			st := op.(ops.Spiller).SpillStats()
			if !st.Spilled {
				b.Fatal("budgeted op did not spill")
			}
			b.ReportMetric(float64(st.SpilledBytes)/(1<<20), "spilled-MiB")
		}
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(dropped), "dups-dropped")
}

func BenchmarkDedupSpill(b *testing.B) {
	b.Run("in-memory", func(b *testing.B) { benchDedupOnce(b, false) })
	b.Run("spilled", func(b *testing.B) { benchDedupOnce(b, true) })
}
