// BenchmarkDistTransport measures the dispatch wire: the v1 JSON-text
// frames against v2 columnar frames and v2 with lzj block compression,
// on a filter-heavy recipe (delta-eligible stages answer with keep
// masks) and a mapper-heavy one (full frames both ways). Captured
// numbers live in BENCH_dist_transport.json.
package repro_test

import (
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/corpus"
	"repro/internal/disttest"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/remote"
	"repro/internal/stream"
)

const (
	transportBenchDocs  = 3000
	transportBenchShard = 200
)

func transportBenchRecipe(kind string) *config.Recipe {
	r := config.Default()
	r.ProjectName = "transport-bench"
	r.UseCache = false
	switch kind {
	case "filter-heavy":
		// min_len 600 drops just under half the corpus, so the keep mask
		// does real work instead of coming back all-ones.
		r.Process = []config.OpSpec{
			{Name: "text_length_filter", Params: ops.Params{"min_len": 600}},
			{Name: "word_num_filter", Params: ops.Params{"min_num": 3}},
			{Name: "alphanumeric_filter", Params: ops.Params{"min_ratio": 0.2}},
		}
	case "mapper-heavy":
		r.Process = []config.OpSpec{
			{Name: "fix_unicode_mapper"},
			{Name: "clean_links_mapper"},
			{Name: "whitespace_normalization_mapper"},
		}
	default:
		panic("unknown recipe kind " + kind)
	}
	return r
}

func transportBenchInput(b *testing.B) string {
	b.Helper()
	d := corpus.Web(corpus.Options{Docs: transportBenchDocs, Seed: 20260808})
	path := filepath.Join(b.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(path); err != nil {
		b.Fatal(err)
	}
	return path
}

func benchTransportOnce(b *testing.B, kind string, maxProto int, compress bool) {
	b.Helper()
	input := transportBenchInput(b)
	bin := disttest.WorkerBin(b)
	var sent, recv, rawSent, rawRecv int64
	var deltaStages, outDocs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := transportBenchRecipe(kind)
		r.WorkDir = b.TempDir()
		r.DistCompress = compress
		pool, err := remote.NewPool(remote.PoolOptions{
			Workers:   2,
			WorkerBin: bin,
			WorkDir:   r.WorkDir,
			MaxProto:  maxProto,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := stream.New(r, stream.Options{ShardSize: transportBenchShard, Dispatch: pool})
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Configure(r, eng.Plan(), "bench", nil); err != nil {
			b.Fatal(err)
		}
		src, err := stream.OpenSource(input, transportBenchShard)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := eng.Run(src, stream.DiscardSink{})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st := pool.DistStats()
		sent, recv = st.BytesSent, st.BytesRecv
		rawSent, rawRecv = st.RawBytesSent, st.RawBytesRecv
		deltaStages = st.DeltaStages
		outDocs = rep.OutCount
		pool.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(sent)/(1<<20), "sent-MiB")
	b.ReportMetric(float64(recv)/(1<<20), "recv-MiB")
	b.ReportMetric(float64(rawSent+rawRecv)/(1<<20), "raw-MiB")
	b.ReportMetric(float64(deltaStages), "delta-stages")
	b.ReportMetric(float64(outDocs), "docs-out")
}

func BenchmarkDistTransport(b *testing.B) {
	for _, kind := range []string{"filter-heavy", "mapper-heavy"} {
		b.Run(kind, func(b *testing.B) {
			b.Run("v1", func(b *testing.B) { benchTransportOnce(b, kind, 1, false) })
			b.Run("v2", func(b *testing.B) { benchTransportOnce(b, kind, 0, false) })
			b.Run("v2-compress", func(b *testing.B) { benchTransportOnce(b, kind, 0, true) })
		})
	}
}
