// BenchmarkHotPath measures the per-sample hot path end to end on both
// execution backends: JSONL decode → standard filter chain (fused word
// group + char filter + exact dedup) → report. It is the allocation
// budget the zero-allocation hot-path work is judged against; captured
// before/after numbers live in BENCH_hotpath.json, and the allocation
// regression tests in hotpath_test.go pin the per-sample budgets so they
// cannot silently regress.
package repro_test

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/format"
	_ "repro/internal/ops/all"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// hotPathRecipe is the standard chain: a cheap mapper, the fusible
// word-group filters, a char filter, and the exact deduplicator — every
// layer of the per-sample hot path (tokenization, stats, dedup hashing).
const hotPathRecipe = `
project_name: hotpath-bench
use_cache: false
op_fusion: true
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
  - stopwords_filter:
      min_ratio: 0.01
  - flagged_words_filter:
      max_ratio: 0.2
  - special_characters_filter:
      max_ratio: 0.9
  - document_deduplicator:
`

const hotPathDocs = 2000

func hotPathCorpusFile(b *testing.B) string {
	b.Helper()
	d := corpus.Web(corpus.Options{Docs: hotPathDocs, Seed: 1234})
	dir, err := os.MkdirTemp("", "djhotpath")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	path := fmt.Sprintf("%s/corpus.jsonl", dir)
	if err := d.SaveJSONL(path); err != nil {
		b.Fatal(err)
	}
	return path
}

func BenchmarkHotPath(b *testing.B) {
	path := hotPathCorpusFile(b)
	r, err := config.ParseRecipe(hotPathRecipe)
	if err != nil {
		b.Fatal(err)
	}
	r.WorkDir = b.TempDir()

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := format.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			exec, err := core.NewExecutor(r)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := exec.Run(data); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(hotPathDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := stream.New(r, stream.Options{ShardSize: 256})
			if err != nil {
				b.Fatal(err)
			}
			src, err := stream.OpenSource(path, 256)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(src, stream.DiscardSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(hotPathDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})

	// The telemetry variants answer the "≤2% wall-clock, 0 allocs/sample"
	// overhead question for full runtime instrumentation: metrics registry
	// plus journal events, exactly what `djprocess -listen` enables. The
	// journal goes to io.Discard so the comparison isolates the
	// instrumentation cost from disk speed.
	b.Run("batch+telemetry", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := format.Load(path)
			if err != nil {
				b.Fatal(err)
			}
			exec, err := core.NewExecutor(r)
			if err != nil {
				b.Fatal(err)
			}
			tele, err := telemetry.NewRun(telemetry.RunOptions{JournalWriter: io.Discard})
			if err != nil {
				b.Fatal(err)
			}
			exec.EnableTelemetry(tele)
			tele.Begin("batch", "hotpath-bench", path, data.Len())
			out, _, err := exec.Run(data)
			if err != nil {
				b.Fatal(err)
			}
			tele.End("ok", data.Len(), out.Len(), nil, nil)
			tele.Close()
		}
		b.ReportMetric(float64(hotPathDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})

	b.Run("stream+telemetry", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tele, err := telemetry.NewRun(telemetry.RunOptions{JournalWriter: io.Discard})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := stream.New(r, stream.Options{ShardSize: 256, Telemetry: tele})
			if err != nil {
				b.Fatal(err)
			}
			src, err := stream.OpenSource(path, 256)
			if err != nil {
				b.Fatal(err)
			}
			tele.Begin("stream", "hotpath-bench", path, 0)
			rep, err := eng.Run(src, stream.DiscardSink{})
			if err != nil {
				b.Fatal(err)
			}
			tele.End("ok", rep.InCount, rep.OutCount, nil, nil)
			tele.Close()
		}
		b.ReportMetric(float64(hotPathDocs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	})
}
