// Allocation-regression tests for the zero-allocation hot path: the
// budgets below are deliberate upper bounds, so a future change that
// quietly reintroduces per-sample allocations (a boxed stats map, a
// fresh token slice per call, a reflective JSONL decode) fails here
// instead of silently halving throughput. See docs/performance.md for
// the architecture these tests pin down.
package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/telemetry"
	"repro/internal/text"
)

// raceEnabled is set by hotpath_race_test.go when the race detector is
// active; AllocsPerRun numbers are meaningless under instrumentation.
var raceEnabled bool

func requireAllocBudget(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
	// Warm the pools so steady state is measured, not first-use growth.
	for i := 0; i < 10; i++ {
		fn()
	}
	got := testing.AllocsPerRun(200, fn)
	if got > budget {
		t.Errorf("%s allocates %.1f/op, budget %.1f — the hot path regressed", name, got, budget)
	}
}

// TestAllocsStandardFilterChain: one sample through the fused standard
// word-group + char chain must not allocate in steady state — the token
// buffers come from the attached scratch, the stats vector reuses its
// capacity across Reset, and the n-gram sets use pooled hash buffers.
func TestAllocsStandardFilterChain(t *testing.T) {
	names := []string{
		"word_num_filter", "word_repetition_filter", "stopwords_filter",
		"flagged_words_filter", "special_characters_filter",
	}
	filters := make([]ops.Filter, len(names))
	for i, n := range names {
		op, err := ops.Build(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		filters[i] = op.(ops.Filter)
	}
	fused := plan.NewFusedFilter(filters)
	// All lower-case: the segmentation slow path (one lowered-copy alloc
	// per mixed-case sample) is measured separately below.
	s := sample.New(strings.Repeat("the quick brown fox jumps over a lazy dog again ", 20))
	sc := sample.GetScratch()
	defer sample.PutScratch(sc)
	requireAllocBudget(t, "fused standard chain", 1, func() {
		s.AttachScratch(sc)
		if err := fused.ComputeStats(s); err != nil {
			t.Fatal(err)
		}
		fused.Keep(s)
		s.ClearContext()
		s.Stats.Reset()
	})
}

// TestAllocsSegmenter: pooled segmentation over already-lower-case text
// is allocation-free; mixed-case text costs exactly the one lowered
// copy of the input.
func TestAllocsSegmenter(t *testing.T) {
	seg := text.GetSegmenter()
	defer text.PutSegmenter(seg)
	lower := strings.Repeat("all lower case words here ", 40)
	requireAllocBudget(t, "Segmenter.Words", 0, func() {
		seg.Words(lower)
	})
	requireAllocBudget(t, "Segmenter.WordsLower (lower input)", 0, func() {
		seg.WordsLower(lower)
	})
	mixed := strings.Repeat("Mixed Case Words Here ", 40)
	requireAllocBudget(t, "Segmenter.WordsLower (mixed input)", 1, func() {
		seg.WordsLower(mixed)
	})
	requireAllocBudget(t, "Segmenter.Lines", 0, func() {
		seg.Lines("line one\nline two\nline three")
	})
	requireAllocBudget(t, "Segmenter.Sentences", 0, func() {
		seg.Sentences("First sentence. Second one! A third? Done.")
	})
}

// TestAllocsJSONLDecodeFastPath: decoding one wire line costs the text
// string, the stats vector, and the interned-stat values — a small
// constant, not a reflective tree of boxed maps.
func TestAllocsJSONLDecodeFastPath(t *testing.T) {
	line := []byte(`{"text":"a plain document body with some words in it","stats":{"num_words":9,"special_char_ratio":0.02}}`)
	var s sample.Sample
	requireAllocBudget(t, "JSONL wire decode", 4, func() {
		if err := s.UnmarshalJSON(line); err != nil {
			t.Fatal(err)
		}
	})
	escaped := []byte(`{"text":"escapes \n and \"quotes\" and é"}`)
	requireAllocBudget(t, "JSONL wire decode (escapes)", 4, func() {
		if err := s.UnmarshalJSON(escaped); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsJSONLEncode: encoding a typical processed sample into a
// reused buffer allocates nothing.
func TestAllocsJSONLEncode(t *testing.T) {
	s := sample.New("a plain document body with some words in it")
	s.SetStat("num_words", 9)
	s.SetStat("special_char_ratio", 0.02)
	s.SetStatString("lang", "en")
	buf := make([]byte, 0, 4096)
	requireAllocBudget(t, "JSONL encode", 0, func() {
		var err error
		buf, err = s.AppendJSON(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocsTelemetryInstruments: registry instrumentation on the fused
// hot path is allocation-free — handles are resolved once at RegisterOp,
// so recording a sample batch is pure atomic arithmetic. A regression
// here means enabling -listen or the journal taxes every operator
// application.
func TestAllocsTelemetryInstruments(t *testing.T) {
	run, err := telemetry.NewRun(telemetry.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := run.RegisterOp(0, "fused_standard_chain", 1000, 0.5)
	requireAllocBudget(t, "OpMetrics.Observe", 0, func() {
		m.Observe(256, 200, 1<<14, 3*time.Millisecond)
	})
	requireAllocBudget(t, "OpMetrics.CacheHit", 0, func() {
		m.CacheHit(256, 200)
	})
	c := run.Reg.Counter("bench_total", "", telemetry.Label{Key: "op", Value: "x"})
	requireAllocBudget(t, "Counter.Add", 0, func() {
		c.Add(3)
	})
	g := run.Reg.Gauge("bench_gauge", "")
	requireAllocBudget(t, "Gauge.Set", 0, func() {
		g.Set(42)
	})
	h := run.Reg.Histogram("bench_hist", "", telemetry.DurationBuckets)
	requireAllocBudget(t, "Histogram.Observe", 0, func() {
		h.Observe(0.003)
	})
	requireAllocBudget(t, "Run.ObserveShard", 0, func() {
		run.ObserveShard(256)
	})
}

// TestAllocsDedupSignature: the exact-dedup signature streams over the
// text without materializing the normalized form.
func TestAllocsDedupSignature(t *testing.T) {
	op, err := ops.Build("document_deduplicator", nil)
	if err != nil {
		t.Fatal(err)
	}
	sd := op.(ops.StreamDeduper)
	s := sample.New(strings.Repeat("Some Text, with Punctuation! And  spacing. ", 30))
	requireAllocBudget(t, "document dedup signature", 0, func() {
		sd.Signature(s)
	})
}
