// Integration tests: whole-system flows crossing package boundaries —
// every built-in recipe end-to-end on its hub dataset, determinism under
// varying parallelism, cache/checkpoint interplay with real recipes, and
// the full refine → train → evaluate feedback loop.
package repro_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/format"
	"repro/internal/llm"
	_ "repro/internal/ops/all"
)

// TestEveryBuiltinRecipeEndToEnd runs each shipped recipe against its hub
// dataset (or a generic one) and checks basic sanity: it executes without
// error and does not drop everything unless the data deserves it.
func TestEveryBuiltinRecipeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fallbackInput := map[string]string{
		"minimal-clean":    "hub:c4?docs=80&seed=5",
		"aggressive-clean": "hub:web-en?docs=120&seed=5",
		"dedup-only":       "hub:web-en?docs=80&seed=6",
		"probe-stats":      "hub:c4?docs=40&seed=7",
		"domain-financial": "hub:c4?docs=80&seed=8",
		"domain-reading":   "hub:books?docs=30&seed=9",
	}
	for _, name := range config.BuiltinRecipeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := config.BuiltinRecipe(name)
			if err != nil {
				t.Fatal(err)
			}
			input := r.DatasetSpec()
			if input == "" {
				input = fallbackInput[name]
			} else if !strings.Contains(input, "?") {
				input += "?docs=120&seed=5"
			}
			if input == "" {
				t.Fatalf("no input for recipe %s", name)
			}
			r.UseCache = false
			r.WorkDir = t.TempDir()
			data, err := format.Load(input)
			if err != nil {
				t.Fatal(err)
			}
			exec, err := core.NewExecutor(r)
			if err != nil {
				t.Fatal(err)
			}
			out, report, err := exec.Run(data)
			if err != nil {
				t.Fatal(err)
			}
			if report.PlanSize == 0 {
				t.Fatal("empty plan")
			}
			if out.Len() == 0 {
				t.Fatalf("recipe %s dropped every sample", name)
			}
			t.Logf("%s: %d -> %d samples, %d planned ops, %s",
				name, data.Len(), out.Len(), report.PlanSize, report.Total.Round(1e6))
		})
	}
}

// TestPipelineOutputIndependentOfParallelism is the core determinism
// property: for a fixed recipe and input, the processed dataset is
// byte-identical regardless of worker count or fusion setting.
func TestPipelineOutputIndependentOfParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := config.BuiltinRecipe("aggressive-clean")
	if err != nil {
		t.Fatal(err)
	}
	run := func(np int, fusion bool) string {
		rc, _ := config.BuiltinRecipe("aggressive-clean")
		rc.UseCache = false
		rc.NP = np
		rc.OpFusion = fusion
		rc.WorkDir = t.TempDir()
		data, err := format.Load("hub:web-en?docs=200&seed=17")
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.NewExecutor(rc)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := exec.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		return out.Fingerprint()
	}
	_ = r
	ref := run(1, true)
	for _, np := range []int{2, 4, 8} {
		if got := run(np, true); got != ref {
			t.Fatalf("np=%d changed the output", np)
		}
	}
	if got := run(4, false); got != ref {
		t.Fatal("disabling fusion changed the output")
	}
}

// TestFeedbackLoopEndToEnd walks the full Figure 5 loop: analyze → refine
// with a recipe → re-analyze → train a reference model on both versions →
// evaluate → the refined model wins.
func TestFeedbackLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	raw, err := format.Load("hub:web-en?docs=500&seed=23")
	if err != nil {
		t.Fatal(err)
	}
	r, err := config.BuiltinRecipe("pretrain-web-en")
	if err != nil {
		t.Fatal(err)
	}
	r.UseCache = false
	r.WorkDir = t.TempDir()
	exec, err := core.NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	refined, _, err := exec.Run(raw.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if refined.Len() == 0 || refined.Len() >= raw.Len() {
		t.Fatalf("refinement kept %d of %d", refined.Len(), raw.Len())
	}

	budget := 25000
	mRaw := llm.Pretrain("raw", "raw web", raw.Clone(), llm.TrainConfig{TokenBudget: budget, Seed: 1})
	mRef := llm.Pretrain("refined", "refined web", refined.Clone(), llm.TrainConfig{TokenBudget: budget, Seed: 1})
	suite := llm.NewSuite(555001)
	suite.Calibrate(mRaw)
	scoreRaw, err := suite.Evaluate(mRaw)
	if err != nil {
		t.Fatal(err)
	}
	scoreRef, err := suite.Evaluate(mRef)
	if err != nil {
		t.Fatal(err)
	}
	if scoreRef.Average <= scoreRaw.Average {
		t.Fatalf("refined model %.2f should beat raw %.2f", scoreRef.Average, scoreRaw.Average)
	}

	// Register the winner as a reference model, as the loop's step (6).
	reg, err := llm.NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(llm.Entry{
		Model: mRef.Name, Data: mRef.DataNote,
		TrainTokens: mRef.TrainTokens, Average: scoreRef.Average, PerTask: scoreRef.PerTask,
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := reg.Lookup("refined"); !ok {
		t.Fatal("reference model not registered")
	}
}

// TestProcessExportReloadRoundTrip checks the processed dataset survives
// the export → reload cycle losslessly, including sharded export.
func TestProcessExportReloadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	data, err := format.Load("hub:cft-en?docs=100&seed=31")
	if err != nil {
		t.Fatal(err)
	}
	r, err := config.BuiltinRecipe("minimal-clean")
	if err != nil {
		t.Fatal(err)
	}
	r.UseCache = false
	r.WorkDir = t.TempDir()
	exec, err := core.NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := exec.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	single := filepath.Join(dir, "single", "out.jsonl")
	if err := format.Export(out, single); err != nil {
		t.Fatal(err)
	}
	back, err := format.Load(single)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != out.Fingerprint() {
		t.Fatal("export round trip not lossless")
	}
	shardDir := filepath.Join(dir, "shards")
	if _, err := format.ExportSharded(out, filepath.Join(shardDir, "part"), 16); err != nil {
		t.Fatal(err)
	}
	backSharded, err := format.Load(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if backSharded.Fingerprint() != out.Fingerprint() {
		t.Fatal("sharded round trip not lossless")
	}
}

// TestCacheDoesNotChangeOutput: enabling the per-OP cache (with any
// codec) must be behaviourally invisible — identical output with a cold
// cache, a warm cache, and no cache.
func TestCacheDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(useCache bool, codec, workDir string) string {
		r, err := config.BuiltinRecipe("aggressive-clean")
		if err != nil {
			t.Fatal(err)
		}
		r.UseCache = useCache
		r.CacheCompression = codec
		r.WorkDir = workDir
		data, err := format.Load("hub:web-en?docs=150&seed=29")
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.NewExecutor(r)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := exec.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		return out.Fingerprint()
	}
	ref := run(false, "", t.TempDir())
	for _, codec := range []string{"none", "gzip", "lzj"} {
		dir := t.TempDir()
		if cold := run(true, codec, dir); cold != ref {
			t.Fatalf("cold cache (%s) changed the output", codec)
		}
		if warm := run(true, codec, dir); warm != ref {
			t.Fatalf("warm cache (%s) changed the output", codec)
		}
	}
}
