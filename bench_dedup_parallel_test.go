// BenchmarkDedupParallel measures the headline claim of the partitioned
// signature index: a dedup-heavy streaming run whose shared-index stage
// was previously serialized behind the ordered turnstile speeds up when
// shards probe the partitions concurrently, with byte-identical output
// and peak heap still bounded by the spill budget. The spilled variant
// is the interesting one — each probe pays microseconds of on-disk LSM
// point lookups, so serializing them (partitions=1) starves the worker
// pool. Captured numbers live in BENCH_dedup_parallel.json.
package repro_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/corpus"
	_ "repro/internal/ops/all"
	"repro/internal/stream"
)

const (
	dedupParallelDocs  = 24000
	dedupParallelShard = 128
)

// dedupParallelCorpus writes the benchmark corpus into the benchmark's
// own temp dir: heavy exact-duplicate salting so the shared-index stage
// does real first-occurrence work on most shards.
func dedupParallelCorpus(b *testing.B) string {
	b.Helper()
	d := corpus.Web(corpus.Options{Docs: dedupParallelDocs, Seed: 7, DupExact: 0.25, DupNear: 0.05})
	path := filepath.Join(b.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(path); err != nil {
		b.Fatal(err)
	}
	return path
}

func benchStreamDedup(b *testing.B, partitions, targetMB int) {
	b.Helper()
	input := dedupParallelCorpus(b)
	var peak uint64
	var kept int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := config.Default()
		r.ProjectName = "dedup-parallel-bench"
		r.UseCache = false
		r.NP = 8
		r.IndexPartitions = partitions
		r.TargetMemMB = targetMB
		r.WorkDir = b.TempDir()
		r.Process = []config.OpSpec{
			{Name: "whitespace_normalization_mapper"},
			{Name: "document_deduplicator"},
		}
		eng, err := stream.New(r, stream.Options{ShardSize: dedupParallelShard})
		if err != nil {
			b.Fatal(err)
		}
		src, err := stream.OpenSource(input, dedupParallelShard)
		if err != nil {
			b.Fatal(err)
		}
		var sink stream.CollectSink
		b.StartTimer()
		sample := baseline.TrackMemory(2*time.Millisecond, func() {
			if _, err := eng.Run(src, &sink); err != nil {
				b.Fatal(err)
			}
		})
		b.StopTimer()
		if sample.PeakHeap > peak {
			peak = sample.PeakHeap
		}
		out := sink.Dataset().Len()
		if kept == 0 {
			kept = out
		} else if out != kept {
			b.Fatalf("output drifted between runs: %d vs %d kept", out, kept)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(peak)/(1<<20), "peak-heap-MB")
	b.ReportMetric(float64(kept), "kept")
}

func BenchmarkDedupParallel(b *testing.B) {
	for _, mode := range []struct {
		name     string
		targetMB int
	}{
		{"in-memory", 0},
		{"spilled", 1},
	} {
		for _, partitions := range []int{1, 0} { // 1 = serial turnstile equivalent, 0 = auto
			label := fmt.Sprintf("%s/partitions=%d", mode.name, partitions)
			if partitions == 0 {
				label = mode.name + "/partitions=auto"
			}
			b.Run(label, func(b *testing.B) {
				benchStreamDedup(b, partitions, mode.targetMB)
			})
		}
	}
}
