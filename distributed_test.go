// Distributed conformance under fault injection: a coordinator driving
// real djworker subprocesses must export byte-for-byte what a
// single-process run exports — when the fleet is healthy, when a worker
// crashes mid-stage, hangs past the stage timeout, returns a corrupt
// frame, is SIGKILLed from outside, and when every worker dies and the
// run degrades to in-process execution. The run journal must agree with
// the report about every retry and steal.
package repro_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/corpus"
	"repro/internal/disttest"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/remote"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// chaosRecipe crosses every capability class so faults can land inside
// a dispatched stage while dedup and barrier work stays coordinator-side.
func chaosRecipe(t *testing.T) *config.Recipe {
	r := config.Default()
	r.ProjectName = "chaos"
	r.UseCache = false
	r.Process = []config.OpSpec{
		{Name: "fix_unicode_mapper"},
		{Name: "clean_links_mapper"},
		{Name: "whitespace_normalization_mapper"},
		{Name: "word_num_filter", Params: ops.Params{"min_num": 3}},
		{Name: "document_deduplicator"},
		{Name: "document_minhash_deduplicator"},
	}
	r.WorkDir = t.TempDir()
	return r
}

func chaosInput(t *testing.T) string {
	t.Helper()
	d := corpus.Web(corpus.Options{Docs: 300, Seed: 20260808})
	path := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runStreamOnce(t *testing.T, r *config.Recipe, input string, shardSize int, dispatch stream.StageDispatcher, tele *telemetry.Run) ([]byte, *stream.Report, error) {
	t.Helper()
	eng, err := stream.New(r, stream.Options{ShardSize: shardSize, Dispatch: dispatch, Telemetry: tele})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := dispatch.(*remote.Pool); ok && p != nil {
		if err := pConfigure(p, r, eng, tele); err != nil {
			t.Fatal(err)
		}
	}
	src, err := stream.OpenSource(input, shardSize)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := stream.NewShardedJSONLSink(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(src, sink)
	if err != nil {
		return nil, nil, err
	}
	return readAll(t, sink.Paths()...), rep, nil
}

func pConfigure(p *remote.Pool, r *config.Recipe, eng *stream.Engine, tele *telemetry.Run) error {
	runID := "chaos"
	if tele != nil {
		runID = tele.ID()
	}
	return p.Configure(r, eng.Plan(), runID, tele)
}

// journalWorkerEvents counts worker_retry and shard_steal events in the
// coordinator's journal.
func journalWorkerEvents(t *testing.T, path string) (retries, steals, starts int) {
	t.Helper()
	events, err := telemetry.ReadJournal(path)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for _, e := range events {
		switch e.Type {
		case telemetry.EvWorkerRetry:
			retries++
		case telemetry.EvShardSteal:
			steals++
		case telemetry.EvWorkerStart:
			starts++
		}
	}
	return
}

// TestDistributedChaos is the fault-injection acceptance bar: every
// injected failure mode must leave the export byte-identical to the
// single-process run, with the retries and steals it forced visible in
// both the report and the journal.
func TestDistributedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	baseRecipe := chaosRecipe(t)
	const shardSize = 40 // 300 docs -> 8 shards, several stage requests

	want, _, err := runStreamOnce(t, baseRecipe, input, shardSize, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		workers    int
		env        []string
		timeout    time.Duration
		minRetries int
		allDead    bool
	}{
		{
			name:    "healthy",
			workers: 3,
		},
		{
			name:       "crash_first_stage",
			workers:    3,
			env:        []string{disttest.FaultEnv(1, "crash:after=0")},
			minRetries: 1,
		},
		{
			// after=1 is the latest guaranteed trigger: a worker's second
			// request always arrives — a steal away from it would itself
			// require two requests in flight already.
			name:       "crash_mid_run",
			workers:    3,
			env:        []string{disttest.FaultEnv(2, "crash:after=1")},
			minRetries: 1,
		},
		{
			name:       "hang_times_out",
			workers:    3,
			env:        []string{disttest.FaultEnv(1, "hang:after=1")},
			timeout:    2 * time.Second,
			minRetries: 1,
		},
		{
			name:       "corrupt_response",
			workers:    3,
			env:        []string{disttest.FaultEnv(3, "corrupt:after=0")},
			minRetries: 1,
		},
		{
			name:    "all_workers_dead",
			workers: 2,
			env: []string{
				disttest.FaultEnv(1, "crash:after=0"),
				disttest.FaultEnv(2, "crash:after=0"),
			},
			minRetries: 2,
			allDead:    true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := *baseRecipe
			r.WorkDir = t.TempDir()
			journalDir := t.TempDir()
			tele, err := telemetry.NewRun(telemetry.RunOptions{JournalDir: journalDir, RunID: "chaos-" + tc.name})
			if err != nil {
				t.Fatal(err)
			}
			tele.Begin("dist", "chaos", input, 0)

			pool, err := remote.NewPool(remote.PoolOptions{
				Workers:      tc.workers,
				WorkerBin:    disttest.WorkerBin(t),
				WorkDir:      r.WorkDir,
				StageTimeout: tc.timeout,
				Env:          tc.env,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			got, rep, err := runStreamOnce(t, &r, input, shardSize, pool, tele)
			if err != nil {
				t.Fatal(err)
			}
			tele.End("ok", rep.InCount, rep.OutCount, nil, nil)
			if err := tele.Close(); err != nil {
				t.Fatal(err)
			}

			if string(got) != string(want) {
				t.Fatalf("%s: distributed export diverges from single-process: %d vs %d bytes",
					tc.name, len(got), len(want))
			}
			if rep.Dist == nil {
				t.Fatal("distributed run reported no fleet stats")
			}
			if rep.Dist.Retries < tc.minRetries {
				t.Errorf("report shows %d retries, want >= %d", rep.Dist.Retries, tc.minRetries)
			}
			if tc.allDead && rep.Dist.Fallbacks == 0 {
				t.Error("all workers dead but no shard fell back to in-process execution")
			}
			if !tc.allDead && rep.Dist.Fallbacks != 0 {
				t.Errorf("healthy-enough fleet still fell back %d times", rep.Dist.Fallbacks)
			}

			// The journal must agree with the report, event for event.
			retries, steals, starts := journalWorkerEvents(t, tele.JournalPath())
			if retries != rep.Dist.Retries {
				t.Errorf("journal has %d worker_retry events, report says %d", retries, rep.Dist.Retries)
			}
			if steals != rep.Dist.Steals {
				t.Errorf("journal has %d shard_steal events, report says %d", steals, rep.Dist.Steals)
			}
			if starts != tc.workers {
				t.Errorf("journal has %d worker_start events, fleet had %d workers", starts, tc.workers)
			}
		})
	}
}

// TestDistributedExternalKill covers the failure no in-process fault
// can model: a fleet member SIGKILLed by the outside world mid-run. The
// coordinator dials a pre-started fleet (-worker-addrs mode), one
// member is killed after the fleet passes health checks, and the export
// must still match the single-process run with the kill visible as
// retries in report and journal.
func TestDistributedExternalKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	input := chaosInput(t)
	r := chaosRecipe(t)
	const shardSize = 40

	want, _, err := runStreamOnce(t, r, input, shardSize, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	workers, addrs := disttest.Fleet(t, 3)
	pool, err := remote.NewPool(remote.PoolOptions{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Healthy at configure time, dead before its first shard arrives.
	workers[1].Kill()

	distRecipe := *r
	distRecipe.WorkDir = t.TempDir()
	tele, err := telemetry.NewRun(telemetry.RunOptions{JournalDir: t.TempDir(), RunID: "external-kill"})
	if err != nil {
		t.Fatal(err)
	}
	tele.Begin("dist", "chaos", input, 0)
	got, rep, err := runStreamOnce(t, &distRecipe, input, shardSize, pool, tele)
	if err != nil {
		t.Fatal(err)
	}
	tele.End("ok", rep.InCount, rep.OutCount, nil, nil)
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}

	if string(got) != string(want) {
		t.Fatalf("export diverges after external kill: %d vs %d bytes", len(got), len(want))
	}
	if rep.Dist == nil || rep.Dist.Retries < 1 {
		t.Fatalf("killed worker produced no retries: %+v", rep.Dist)
	}
	retries, steals, _ := journalWorkerEvents(t, tele.JournalPath())
	if retries != rep.Dist.Retries || steals != rep.Dist.Steals {
		t.Errorf("journal (%d retries, %d steals) disagrees with report (%d, %d)",
			retries, steals, rep.Dist.Retries, rep.Dist.Steals)
	}
}

// TestDistributedFingerprintMismatch pins the handshake: a worker whose
// recipe disagrees with the coordinator's plan must be rejected at
// configure time, not discovered as divergent output later.
func TestDistributedFingerprintMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	r := chaosRecipe(t)
	_, addrs := disttest.Fleet(t, 1)
	pool, err := remote.NewPool(remote.PoolOptions{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	eng, err := stream.New(r, stream.Options{ShardSize: 40, Dispatch: pool})
	if err != nil {
		t.Fatal(err)
	}
	// Ship a recipe with one op dropped: the worker plans it and derives
	// a different fingerprint than the coordinator's plan.
	skewed := *r
	skewed.Process = skewed.Process[:len(skewed.Process)-1]
	err = pool.Configure(&skewed, eng.Plan(), "skew", nil)
	if err == nil {
		t.Fatal("skewed worker accepted the configure")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("rejection does not mention the fingerprint: %v", err)
	}
}
