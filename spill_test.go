// Cross-backend conformance for disk-backed dedup: a -target-mem-mb
// budget must change where dedup index state lives (RAM vs sorted runs /
// LSH partitions / the streaming index partitions' LSM sets on disk)
// without
// changing a single exported byte, on either backend.
package repro_test

import (
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/format"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/stream"
)

// spillConformanceRecipe pairs the shared-index exact dedup (per-partition
// DiskSet path on the stream backend, sorted runs on batch) with the
// minhash barrier (partitioned on-disk LSH on both backends).
func spillConformanceRecipe(workDir string, targetMemMB int, spill bool) *config.Recipe {
	r := config.Default()
	r.ProjectName = "spill-conformance"
	r.UseCache = false
	r.WorkDir = workDir
	r.TargetMemMB = targetMemMB
	r.DedupSpill = spill
	r.Process = []config.OpSpec{
		{Name: "whitespace_normalization_mapper"},
		{Name: "document_deduplicator"},
		{Name: "document_minhash_deduplicator"},
	}
	return r
}

func runSpillBatch(t *testing.T, r *config.Recipe, input string) ([]byte, *core.Executor) {
	t.Helper()
	exec, err := core.NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	data, err := format.Load(input)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := exec.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if err := format.Export(out, path); err != nil {
		t.Fatal(err)
	}
	return readAll(t, path), exec
}

// TestSpillCrossBackendConformance: a 12k-doc corpus against a 1 MiB
// memory target — far below what the resident dedup indexes would need —
// must export byte-for-byte what the unbudgeted in-memory run exports,
// from the batch executor and the streaming engine alike, while the
// budgeted ops demonstrably push index state to disk.
func TestSpillCrossBackendConformance(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 12000, Seed: 20260808, DupExact: 0.25, DupNear: 0.1})
	input := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(input); err != nil {
		t.Fatal(err)
	}

	// Reference: spilling disabled, everything in memory.
	ref, _ := runSpillBatch(t, spillConformanceRecipe(t.TempDir(), 0, false), input)

	// Batch under the budget.
	got, exec := runSpillBatch(t, spillConformanceRecipe(t.TempDir(), 1, true), input)
	if string(got) != string(ref) {
		t.Fatalf("batch export changed under the spill budget: %d vs %d bytes", len(got), len(ref))
	}
	spilled := 0
	for _, n := range exec.Plan().Nodes {
		if n.SpillBudget <= 0 {
			continue
		}
		if sp, ok := n.Op.(ops.Spiller); ok && sp.SpillStats().Spilled {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("no budgeted op reported spilling — the corpus no longer exceeds the budget")
	}

	// Streaming under the same budget: the exact dedup runs against its
	// disk-backed signature partitions, minhash as a spilled barrier.
	streamRecipe := spillConformanceRecipe(t.TempDir(), 1, true)
	eng, err := stream.New(streamRecipe, stream.Options{ShardSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.OpenSource(input, 256)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := stream.NewShardedJSONLSink(filepath.Join(t.TempDir(), "stream"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(src, sink); err != nil {
		t.Fatal(err)
	}
	streamBytes := readAll(t, sink.Paths()...)
	if string(streamBytes) != string(ref) {
		t.Fatalf("stream export changed under the spill budget: %d vs %d bytes",
			len(streamBytes), len(ref))
	}
}
