// Package repro is a from-scratch Go reproduction of "Data-Juicer: A
// One-Stop Data Processing System for Large Language Models" (SIGMOD
// 2024): a recipe-driven pipeline that loads heterogeneous corpora into
// a unified sample representation, runs a standardized pool of Mapper /
// Filter / Deduplicator operators over them, and exports the refined
// data — with operator fusion, caching, checkpoints, lineage tracing,
// and analyzer probes as described in the paper.
//
// # Unified planner
//
// One logical→physical plan layer (internal/plan) serves both
// execution backends: the recipe's op list runs through an ordered pass
// pipeline — validate, predict (measured cost/selectivity from the
// per-recipe profile sidecar, static CostHint ranks on cold starts),
// measured-cost reordering of commutative filter groups, context-
// sharing fusion, streaming capability placement, and cache-boundary
// annotation. Every successful run persists its measurements
// (dist.SaveProfiles), so the next run of the same recipe plans from
// what the previous run observed. djprocess -explain renders the plan
// with per-op predictions and per-pass provenance; docs/recipes.md has
// the walkthrough and sidecar format.
//
// # Execution backends
//
// Two engines run the same recipe over the same physical plan:
//
//   - Batch (internal/core.Executor): the whole dataset is resident and
//     moves through one operator at a time with parallel workers. Peak
//     memory is O(corpus). Richest feature set — probes, disk-space
//     analysis, whole-dataset cache chains, checkpoint resume.
//
//   - Streaming (internal/stream.Engine): the input is partitioned into
//     shards that flow through the full operator chain in a pipelined
//     worker pool — shard K can be in op 3 while shard K+1 is in op 1 —
//     with peak memory O(shards in flight). JSONL inputs are read
//     incrementally; output shards are written as they complete.
//     Shard-local ops stream freely, signature deduplicators run
//     against a shared index without a barrier, and similarity
//     deduplicators act as declared barriers (merge, apply, re-shard).
//     Both backends share the per-op application logic (core.OpRunner),
//     so kept-sample sets are identical — a contract enforced by the
//     randomized cross-backend conformance suite (conformance_test.go).
//
// # Unified ingestion and mixing
//
// Both backends read inputs through one incremental interface
// (internal/format.Source): jsonl/json/csv/tsv/txt/md/html/code files,
// transparent gzip decompression, directories, globs, and "hub:"
// synthetic corpora, all unified into the sample representation.
// Record-oriented formats read with bounded buffers; whole-document
// formats (txt/md/html/code) are bounded by the largest single file,
// since the whole file is one sample. Weighted multi-source mixing ("mix:" specs,
// recipe "sources:" lists) interleaves corpora deterministically by
// weight with per-sample provenance tags in meta.source, so mixed
// multi-format inputs run on either backend with byte-identical
// exports. The complete recipe-key and input-spec reference is
// docs/recipes.md; the generated operator table is
// internal/ops/README.md.
//
// In adaptive streaming mode (djprocess -stream -adaptive), a runtime
// controller measures every operator application online through a
// core.OpRunner observer hook, feeds the live profile into the
// internal/dist cost model (dist.OnlineModel), and re-plans between
// shard generations: shard size tracks the measured chain cost, the
// worker pool grows only while the model says throughput follows, and a
// resizable in-flight gate applies backpressure at the source so a
// -target-mem-mb budget holds. Fixed-shard mode remains the default.
//
// # Zero-allocation hot path
//
// The per-sample inner loop shared by both backends is built to avoid
// allocating in steady state: execution is batch-granular
// (dataset.MapBatches / FilterBatches, shards as batches, fused-filter
// counters flushed once per batch), tokenization reuses per-worker
// scratch buffers through the sample's typed context slots
// (text.Segmenter, substring tokens, rolling n-gram hashes), per-sample
// statistics live in a compact interned-key table (sample.Stats) rather
// than a boxed map, and the JSONL wire format has a hand-rolled
// encode/decode fast path that is byte-identical to encoding/json.
// docs/performance.md describes the architecture, the profiling flags
// (djprocess -cpuprofile/-memprofile), and the captured before/after
// numbers (BENCH_hotpath.json); allocation budgets are pinned by
// regression tests in hotpath_test.go.
//
// Choose batch for corpora that fit comfortably in RAM or when probe
// analysis is wanted; choose streaming (djprocess -stream) for corpora
// larger than RAM or when output should appear incrementally; add
// -adaptive when the workload is unprofiled or a memory budget matters.
// See the README architecture section for the full comparison.
//
// The implementation lives under internal/; runnable entry points are
// cmd/djprocess, cmd/djanalyze, cmd/djbench and examples/.
package repro
