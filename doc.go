// Package repro is a from-scratch Go reproduction of "Data-Juicer: A
// One-Stop Data Processing System for Large Language Models" (SIGMOD
// 2024). See README.md for the tour, DESIGN.md for the system inventory
// and substitution notes, and EXPERIMENTS.md for paper-vs-measured
// results. The implementation lives under internal/; runnable entry
// points are cmd/djprocess, cmd/djanalyze, cmd/djbench and examples/.
package repro
