package llm

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/sampler"
)

func cleanData(docs int, seed int64) *dataset.Dataset {
	return dataset.Concat(
		corpus.Wiki(corpus.Options{Docs: docs / 2, Seed: seed}),
		corpus.Books(corpus.Options{Docs: docs / 2, Seed: seed + 1}),
	)
}

func noisyData(docs int, seed int64) *dataset.Dataset {
	return corpus.Web(corpus.Options{Docs: docs, Seed: seed})
}

func TestPretrainConsumesBudget(t *testing.T) {
	m := Pretrain("m", "wiki", cleanData(40, 1), TrainConfig{TokenBudget: 20000, Seed: 1})
	if m.TrainTokens != 20000 {
		t.Fatalf("tokens = %d", m.TrainTokens)
	}
	if m.LM.VocabSize() == 0 {
		t.Fatal("no vocabulary learned")
	}
}

func TestPretrainEpochsOnSmallData(t *testing.T) {
	small := cleanData(4, 2)
	m := Pretrain("m", "small", small, TrainConfig{TokenBudget: 30000, Seed: 2})
	if m.Epochs < 2 {
		t.Fatalf("epochs = %v, expected multiple passes", m.Epochs)
	}
	if m.TrainTokens != 30000 {
		t.Fatalf("tokens = %d", m.TrainTokens)
	}
}

func TestPretrainEmptyDataset(t *testing.T) {
	m := Pretrain("m", "empty", dataset.New(nil), TrainConfig{TokenBudget: 1000})
	if m.TrainTokens != 0 {
		t.Fatalf("tokens = %d", m.TrainTokens)
	}
}

func TestSuiteRequiresCalibration(t *testing.T) {
	suite := NewSuite(9000)
	m := Pretrain("m", "x", cleanData(10, 3), TrainConfig{TokenBudget: 5000})
	if _, err := suite.Evaluate(m); err == nil {
		t.Fatal("uncalibrated evaluate must error")
	}
}

func TestSuiteHas16Tasks(t *testing.T) {
	suite := NewSuite(9000)
	if len(suite.Tasks) != 16 {
		t.Fatalf("tasks = %d", len(suite.Tasks))
	}
	names := suite.TaskNames()
	if names[0] != "MMLU" || names[15] != "RAFT" {
		t.Fatalf("task names = %v", names)
	}
}

// TestCleanDataBeatsNoisyData verifies the core mechanism behind Figure 7:
// at an equal token budget, the model trained on clean (refined) data
// scores higher on the clean held-out suite than the model trained on raw
// noisy web data.
func TestCleanDataBeatsNoisyData(t *testing.T) {
	budget := 60000
	clean := Pretrain("clean", "wiki+books", cleanData(150, 10), TrainConfig{TokenBudget: budget, Seed: 3})
	noisy := Pretrain("noisy", "raw web", noisyData(300, 11), TrainConfig{TokenBudget: budget, Seed: 3})

	suite := NewSuite(9001)
	suite.Calibrate(noisy)
	scClean, err := suite.Evaluate(clean)
	if err != nil {
		t.Fatal(err)
	}
	scNoisy, err := suite.Evaluate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if scClean.Average <= scNoisy.Average {
		t.Fatalf("clean avg %.2f must beat noisy avg %.2f", scClean.Average, scNoisy.Average)
	}
}

// TestMoreTokensHelp verifies the second Figure 7 axis: more training
// tokens on the same distribution improve the average score.
func TestMoreTokensHelp(t *testing.T) {
	data := cleanData(200, 20)
	small := Pretrain("small", "d", data.Clone(), TrainConfig{TokenBudget: 8000, Seed: 4})
	large := Pretrain("large", "d", data.Clone(), TrainConfig{TokenBudget: 80000, Seed: 4})
	suite := NewSuite(9002)
	suite.Calibrate(small)
	scS, _ := suite.Evaluate(small)
	scL, _ := suite.Evaluate(large)
	if scL.Average <= scS.Average {
		t.Fatalf("large budget %.2f must beat small %.2f", scL.Average, scS.Average)
	}
}

// TestIFTContinuationHelpsInstructionalTasks verifies the Table 2/9
// IFT-continuation effect: adding instruction data raises instructional
// task scores.
func TestIFTContinuationHelpsInstructionalTasks(t *testing.T) {
	base := Pretrain("base", "clean", cleanData(150, 30), TrainConfig{TokenBudget: 50000, Seed: 5})
	suite := NewSuite(9003)
	suite.Calibrate(base)
	scBase, _ := suite.Evaluate(base)

	ift := corpus.IFT(corpus.Options{Docs: 400, Seed: 31})
	cont := Pretrain("base+ift", "clean", cleanData(150, 30), TrainConfig{TokenBudget: 50000, Seed: 5})
	cont.ContinueTraining(ift, 15000, 6)
	scCont, _ := suite.Evaluate(cont)

	var instrBase, instrCont float64
	for _, task := range suite.Tasks {
		if task.Instructional {
			instrBase += scBase.PerTask[task.Name]
			instrCont += scCont.PerTask[task.Name]
		}
	}
	if instrCont <= instrBase {
		t.Fatalf("IFT continuation should raise instructional scores: %.1f vs %.1f", instrCont, instrBase)
	}
	if scCont.Average <= scBase.Average {
		t.Fatalf("IFT continuation should raise the average: %.2f vs %.2f", scCont.Average, scBase.Average)
	}
}

func TestScoresWithinTaskRanges(t *testing.T) {
	m := Pretrain("m", "d", cleanData(50, 40), TrainConfig{TokenBudget: 20000})
	suite := NewSuite(9004)
	suite.Calibrate(m)
	sc, _ := suite.Evaluate(m)
	for _, task := range suite.Tasks {
		v := sc.PerTask[task.Name]
		if v < task.Floor || v > task.Ceil {
			t.Fatalf("%s score %v outside [%v, %v]", task.Name, v, task.Floor, task.Ceil)
		}
	}
}

func TestRenderScoresAndRankAverage(t *testing.T) {
	m1 := Pretrain("alpha", "d", cleanData(40, 50), TrainConfig{TokenBudget: 30000})
	m2 := Pretrain("beta", "d", noisyData(80, 51), TrainConfig{TokenBudget: 30000})
	suite := NewSuite(9005)
	suite.Calibrate(m2)
	s1, _ := suite.Evaluate(m1)
	s2, _ := suite.Evaluate(m2)
	table := RenderScores(suite.TaskNames(), []Scores{s1, s2})
	if !strings.Contains(table, "MMLU") || !strings.Contains(table, "Average") {
		t.Fatalf("table = %q", table)
	}
	ranks := RankAverage([]Scores{s1, s2})
	if ranks["alpha"] >= ranks["beta"] {
		t.Fatalf("rank averaging wrong: %v", ranks)
	}
}

func TestFinetuneProperties(t *testing.T) {
	d := corpus.CFT(corpus.Options{Docs: 300, Seed: 60}, "EN")
	m := Finetune("ft", d)
	if m.Samples != 300 || m.CoverageSize() == 0 {
		t.Fatalf("model = %+v", m)
	}
	if m.AvgQuality() <= 0 || m.AvgQuality() > 1 {
		t.Fatalf("quality = %v", m.AvgQuality())
	}
}

func TestJudgeDeterministicAndConserving(t *testing.T) {
	d1 := corpus.CFT(corpus.Options{Docs: 200, Seed: 80}, "EN")
	d2 := corpus.CFT(corpus.Options{Docs: 200, Seed: 81}, "EN")
	a := Finetune("a", d1)
	b := Finetune("b", d2)
	r1 := Judge(a, b, JudgeConfig{Prompts: 100, Seed: 5})
	r2 := Judge(a, b, JudgeConfig{Prompts: 100, Seed: 5})
	if r1 != r2 {
		t.Fatalf("judge not deterministic: %+v vs %+v", r1, r2)
	}
	if r1.WinA+r1.WinB+r1.Tie != 100 {
		t.Fatalf("tallies don't sum: %+v", r1)
	}
}

// TestJudgePrefersDiverseHighQualityData verifies the Table 3 mechanism:
// a filtered + diversity-sampled recipe of the SAME size beats random
// sampling of the raw pool in pairwise judging.
func TestJudgePrefersDiverseHighQualityData(t *testing.T) {
	pool := corpus.CFT(corpus.Options{Docs: 1200, Seed: 90}, "EN")
	// Competitor: random 400 samples of the raw pool (all quality tiers).
	random := sampler.Reservoir(pool, 400, 1)
	// Data-Juicer: drop the low-quality tier, then diversity-sample 400.
	filtered, _ := pool.Filter(4, func(s *sample.Sample) bool {
		v, _ := s.GetFloat("meta.tier")
		return v >= 1
	})
	dj := sampler.Diversity(filtered, 400, 1)

	a := Finetune("random", random)
	b := Finetune("data-juicer", dj)
	if b.AvgQuality() <= a.AvgQuality() {
		t.Fatalf("filtering should raise data quality: dj=%v random=%v", b.AvgQuality(), a.AvgQuality())
	}
	res := Judge(a, b, JudgeConfig{Prompts: 200, Seed: 7})
	if res.WinB <= res.WinA {
		t.Fatalf("data-juicer recipe should win: %+v", res)
	}
	if res.Tie == 0 {
		t.Fatalf("judge should produce ties: %+v", res)
	}
}

func TestLeaderboardOrderingAndRegistry(t *testing.T) {
	var lb Leaderboard
	lb.Add(Entry{Model: "weak", Data: "raw", TrainTokens: 100, Average: 30.1})
	lb.Add(Entry{Model: "strong", Data: "refined", TrainTokens: 100, Average: 34.5})
	rows := lb.Entries()
	if rows[0].Model != "strong" {
		t.Fatalf("ordering = %v", rows)
	}
	out := lb.Render()
	if !strings.Contains(out, "strong") || !strings.Contains(out, "refined") {
		t.Fatalf("render = %q", out)
	}

	reg, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(rows[0]); err != nil {
		t.Fatal(err)
	}
	got, ok, err := reg.Lookup("strong")
	if err != nil || !ok || got.Average != 34.5 {
		t.Fatalf("lookup = %+v, %v, %v", got, ok, err)
	}
	if _, ok, _ := reg.Lookup("missing"); ok {
		t.Fatal("phantom lookup")
	}
	list, err := reg.List()
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}
}

func TestNormalizedAverage(t *testing.T) {
	a := Scores{Model: "a", PerTask: map[string]float64{"t1": 10, "t2": 80}}
	b := Scores{Model: "b", PerTask: map[string]float64{"t1": 20, "t2": 60}}
	norm := NormalizedAverage([]Scores{a, b})
	// a: t1 -> 0, t2 -> 1 => 0.5; b: t1 -> 1, t2 -> 0 => 0.5.
	if norm["a"] != 0.5 || norm["b"] != 0.5 {
		t.Fatalf("normalized = %v", norm)
	}
	// Constant task contributes 0.5 to everyone.
	c := Scores{Model: "c", PerTask: map[string]float64{"t1": 5}}
	d := Scores{Model: "d", PerTask: map[string]float64{"t1": 5}}
	norm2 := NormalizedAverage([]Scores{c, d})
	if norm2["c"] != 0.5 || norm2["d"] != 0.5 {
		t.Fatalf("constant-task normalized = %v", norm2)
	}
	if NormalizedAverage(nil) != nil {
		t.Fatal("empty input should be nil")
	}
}
