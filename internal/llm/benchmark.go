package llm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/text"
)

// Task is one benchmark in the HELM-16 stand-in suite. Its eval set is
// held-out synthetic text; a model's score is a monotone map of its
// cross-entropy on that text into the task's plausible score range.
type Task struct {
	// Name matches the paper's Table 9 task names.
	Name string
	// Floor and Ceil bound the reported score range.
	Floor, Ceil float64
	// Instructional tasks use instruction-formatted eval text, so models
	// whose training mixed in IFT data score higher on them (the Table 9
	// IFT-continuation effect).
	Instructional bool
	// Width shapes the cross-entropy → score sigmoid (bits per unit).
	Width float64

	evalWords [][]string
	// ceMid is the sigmoid midpoint, set by Suite.Calibrate.
	ceMid float64
}

// Suite is the 16-task evaluation suite.
type Suite struct {
	Tasks      []*Task
	calibrated bool
}

// taskSpec defines the suite layout: names and score ranges follow the
// shape of the paper's Table 9.
var taskSpecs = []struct {
	name          string
	floor, ceil   float64
	instructional bool
	topicBias     int // dominant topic index for the task's eval set
}{
	{"MMLU", 22, 30, false, 1},
	{"BoolQ", 40, 62, true, 9},
	{"NarrativeQA", 25, 52, true, 6},
	{"NaturalQuestions (closed-book)", 7, 14, false, 0},
	{"NaturalQuestions (open-book)", 38, 57, true, 0},
	{"QuAC", 17, 29, false, 9},
	{"HellaSwag", 42, 62, false, 3},
	{"OpenbookQA", 28, 46, false, 1},
	{"TruthfulQA", 22, 36, false, 10},
	{"MS MARCO (regular)", 7, 16, false, 4},
	{"MS MARCO (TREC)", 18, 31, false, 4},
	{"IMDB", 55, 87, false, 7},
	{"XSUM", 3, 8, false, 2},
	{"CNN/DailyMail", 3, 12, true, 2},
	{"CivilComments", 44, 52, false, 11},
	{"RAFT", 38, 51, true, 5},
}

// NewSuite builds the suite with held-out eval sets derived from seed.
// Use a seed disjoint from every training corpus seed.
func NewSuite(seed int64) *Suite {
	s := &Suite{}
	for i, spec := range taskSpecs {
		t := &Task{
			Name:          spec.name,
			Floor:         spec.floor,
			Ceil:          spec.ceil,
			Instructional: spec.instructional,
			Width:         0.6,
		}
		t.evalWords = buildEvalSet(seed+int64(i)*101, spec.instructional)
		s.Tasks = append(s.Tasks, t)
	}
	return s
}

// buildEvalSet generates clean held-out eval documents; instructional
// tasks draw from the instruction-formatted corpus.
func buildEvalSet(seed int64, instructional bool) [][]string {
	var texts []string
	if instructional {
		d := corpus.IFT(corpus.Options{Docs: 30, Seed: seed})
		for _, smp := range d.Samples {
			texts = append(texts, smp.Text)
		}
	} else {
		d := corpus.Wiki(corpus.Options{Docs: 20, Seed: seed})
		for _, smp := range d.Samples {
			texts = append(texts, smp.Text)
		}
		b := corpus.Books(corpus.Options{Docs: 5, Seed: seed + 7})
		for _, smp := range b.Samples {
			texts = append(texts, smp.Text)
		}
	}
	out := make([][]string, 0, len(texts))
	for _, t := range texts {
		words := text.WordsLower(t)
		if len(words) > 400 {
			words = words[:400]
		}
		out = append(out, words)
	}
	return out
}

// crossEntropy averages the model's bits-per-token over the task's eval
// documents.
func (t *Task) crossEntropy(m *ReferenceModel) float64 {
	var total float64
	n := 0
	for _, words := range t.evalWords {
		ce := m.LM.CrossEntropyWords(words)
		if math.IsInf(ce, 1) {
			ce = 30 // untrained model: bottom of the scale
		}
		total += ce
		n++
	}
	if n == 0 {
		return 30
	}
	return total / float64(n)
}

// Calibrate anchors every task's score midpoint to a reference model
// (typically the weakest baseline): the anchor lands slightly below the
// middle of each score range, and better models rise above it. Without
// calibration absolute cross-entropies would depend on corpus scale.
func (s *Suite) Calibrate(anchor *ReferenceModel) {
	for _, t := range s.Tasks {
		t.ceMid = t.crossEntropy(anchor) - 0.05
	}
	s.calibrated = true
}

// Scores holds per-task scores and their average — one leaderboard row.
type Scores struct {
	Model   string
	PerTask map[string]float64
	Average float64
}

// Evaluate scores a model on every task. Calibrate must be called first.
func (s *Suite) Evaluate(m *ReferenceModel) (Scores, error) {
	if !s.calibrated {
		return Scores{}, fmt.Errorf("llm: suite not calibrated; call Calibrate first")
	}
	out := Scores{Model: m.Name, PerTask: make(map[string]float64, len(s.Tasks))}
	var sum float64
	for _, t := range s.Tasks {
		ce := t.crossEntropy(m)
		skill := sigmoid((t.ceMid - ce) / t.Width)
		score := t.Floor + (t.Ceil-t.Floor)*skill
		score = math.Round(score*10) / 10
		out.PerTask[t.Name] = score
		sum += score
	}
	out.Average = math.Round(sum/float64(len(s.Tasks))*100) / 100
	return out, nil
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// TaskNames lists the suite's tasks in definition order.
func (s *Suite) TaskNames() []string {
	names := make([]string, len(s.Tasks))
	for i, t := range s.Tasks {
		names[i] = t.Name
	}
	return names
}

// RenderScores renders a per-task comparison table (Table 9 layout) for
// several models.
func RenderScores(taskNames []string, all []Scores) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "Task")
	for _, sc := range all {
		fmt.Fprintf(&b, " %16s", clipName(sc.Model, 16))
	}
	b.WriteByte('\n')
	for _, task := range taskNames {
		fmt.Fprintf(&b, "%-34s", task)
		for _, sc := range all {
			fmt.Fprintf(&b, " %16.1f", sc.PerTask[task])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-34s", "Average")
	for _, sc := range all {
		fmt.Fprintf(&b, " %16.2f", sc.Average)
	}
	b.WriteByte('\n')
	return b.String()
}

func clipName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RankAverage computes leaderboard-style rank averaging across models:
// for each task, models are ranked (1 = best); the returned map holds the
// mean rank per model (lower is better). This is one of the consolidation
// strategies of Sec. 4.3.
func RankAverage(all []Scores) map[string]float64 {
	if len(all) == 0 {
		return nil
	}
	ranksum := make(map[string]float64, len(all))
	var tasks []string
	for t := range all[0].PerTask {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)
	for _, task := range tasks {
		type ms struct {
			model string
			score float64
		}
		row := make([]ms, 0, len(all))
		for _, sc := range all {
			row = append(row, ms{sc.Model, sc.PerTask[task]})
		}
		sort.Slice(row, func(i, j int) bool {
			if row[i].score != row[j].score {
				return row[i].score > row[j].score
			}
			return row[i].model < row[j].model
		})
		for rank, r := range row {
			ranksum[r.model] += float64(rank + 1)
		}
	}
	for m := range ranksum {
		ranksum[m] /= float64(len(tasks))
	}
	return ranksum
}
