package llm

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/text"
)

// TunedModel summarizes a fine-tuned model by the properties of its
// tuning data that drive response quality: per-category coverage
// (verb–noun instruction structure) and average response quality. The
// pairwise judge scores models from these properties — the same reasons
// GPT-4 prefers outputs of models tuned on diverse, high-quality data.
type TunedModel struct {
	Name string
	// Samples is the tuning set size.
	Samples int
	// coverage maps verb→noun category to a saturating mastery level in
	// [0, 1).
	coverage map[string]float64
	// avgQuality is the mean per-sample response quality in [0, 1].
	avgQuality float64
}

// Finetune derives a TunedModel from a tuning dataset.
func Finetune(name string, d *dataset.Dataset) *TunedModel {
	counts := map[string]int{}
	var qualitySum float64
	for _, s := range d.Samples {
		key := categoryOf(s)
		counts[key]++
		qualitySum += responseQuality(s)
	}
	m := &TunedModel{Name: name, Samples: d.Len(), coverage: make(map[string]float64, len(counts))}
	for k, c := range counts {
		// Mastery saturates fast: the first example of an instruction
		// category teaches most of it, the third adds almost nothing.
		// (Sheer depth per category cannot substitute for quality — the
		// "diversity over volume" observation of Sec. 2.1.)
		m.coverage[k] = 1 - math.Exp(-float64(c)/0.7)
	}
	if d.Len() > 0 {
		m.avgQuality = qualitySum / float64(d.Len())
	}
	return m
}

// AvgQuality exposes the model's tuning-data quality (for reporting).
func (m *TunedModel) AvgQuality() float64 { return m.avgQuality }

// CoverageSize reports how many instruction categories the tuning data
// touched.
func (m *TunedModel) CoverageSize() int { return len(m.coverage) }

// categoryOf buckets a tuning sample by its instruction structure.
func categoryOf(s *sample.Sample) string {
	if v, ok := s.GetString("meta.verb"); ok {
		n, _ := s.GetString("meta.noun")
		return v + "→" + n
	}
	pairs := text.VerbNounPairs(text.WordsLower(s.Text))
	if len(pairs) == 0 {
		return "<none>"
	}
	return pairs[0][0] + "→" + pairs[0][1]
}

// responseQuality scores one tuning sample's response in [0, 1]:
// substantive length, lexical variety, and freedom from flagged content.
func responseQuality(s *sample.Sample) float64 {
	resp, ok := s.GetString("text.response")
	if !ok {
		resp = s.Text
	}
	words := text.WordsLower(resp)
	if len(words) == 0 {
		return 0
	}
	length := math.Min(1, float64(len(words))/40)
	uniq := map[string]struct{}{}
	flagged := text.FlaggedWords("en")
	bad := 0
	for _, w := range words {
		uniq[w] = struct{}{}
		if _, f := flagged[w]; f {
			bad++
		}
	}
	variety := float64(len(uniq)) / float64(len(words))
	penalty := math.Min(1, float64(bad)*0.5)
	q := (0.6*length + 0.4*variety) * (1 - penalty)
	return math.Max(0, math.Min(1, q))
}

// JudgeResult tallies a pairwise comparison.
type JudgeResult struct {
	WinA, WinB, Tie int
}

// JudgeConfig tunes the pairwise judge.
type JudgeConfig struct {
	// Prompts is the number of evaluation prompts (default 160).
	Prompts int
	// Seed drives prompt sampling and scoring noise.
	Seed int64
	// TieMargin is the score gap below which the judge calls a tie
	// (default 0.06; GPT-4 judges tie often, as Table 3 shows).
	TieMargin float64
	// PromptLang selects the prompt distribution ("EN" or "ZH").
	PromptLang string
}

func (c JudgeConfig) withDefaults() JudgeConfig {
	if c.Prompts == 0 {
		c.Prompts = 160
	}
	if c.TieMargin == 0 {
		c.TieMargin = 0.06
	}
	if c.PromptLang == "" {
		c.PromptLang = "EN"
	}
	return c
}

// Judge runs the GPT-4-substitute pairwise evaluation: both models answer
// the same prompt stream; per prompt, a model's response score combines
// its tuning-data quality with its mastery of the prompt's category, plus
// seeded judge noise.
func Judge(a, b *TunedModel, cfg JudgeConfig) JudgeResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Held-out prompt stream drawn from the canonical instruction
	// distribution (seed disjoint from tuning corpora).
	promptSeed := cfg.Seed*7919 + 13
	var prompts *dataset.Dataset
	if cfg.PromptLang == "ZH" {
		prompts = promptSetZH(cfg.Prompts, promptSeed)
	} else {
		prompts = promptSetEN(cfg.Prompts, promptSeed)
	}
	var res JudgeResult
	for _, p := range prompts.Samples {
		cat := categoryOf(p)
		sa := judgeScore(a, cat, rng)
		sb := judgeScore(b, cat, rng)
		switch {
		case math.Abs(sa-sb) < cfg.TieMargin:
			res.Tie++
		case sa > sb:
			res.WinA++
		default:
			res.WinB++
		}
	}
	return res
}

func judgeScore(m *TunedModel, category string, rng *rand.Rand) float64 {
	return 0.55*m.avgQuality + 0.45*m.coverage[category] + rng.NormFloat64()*0.05
}

func promptSetEN(n int, seed int64) *dataset.Dataset {
	return iftPrompts(n, seed)
}

func promptSetZH(n int, seed int64) *dataset.Dataset {
	// Chinese prompts come from the held-out ZH chat distribution; their
	// verb/noun metadata buckets coverage just like the EN prompts.
	return corpusCFTZH(n, seed)
}

func iftPrompts(n int, seed int64) *dataset.Dataset {
	return corpusIFT(n, seed)
}
