// Package llm is the LLM-ecosystem stand-in of Sec. 4.3: "pre-training"
// trains an n-gram reference model on a recipe's token stream,
// "evaluation" scores it on a 16-task held-out suite (the HELM-16
// substitute), a pairwise judge replaces GPT-4 scoring for fine-tuned
// models, and a leaderboard plus reference-model registry closes the
// feedback loop.
//
// The substitution preserves the property the experiments rely on:
// cleaner, more diverse training data genuinely lowers held-out
// cross-entropy of the reference model on clean eval sets, so recipe
// quality orderings emerge from the mechanism rather than being wired in.
package llm

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/lm"
	"repro/internal/text"
)

// ReferenceModel is a trained reference model bound to its traceable
// training provenance, as in the paper's reference-model concept.
type ReferenceModel struct {
	// Name identifies the model on the leaderboard.
	Name string
	// LM is the underlying n-gram model.
	LM *lm.Model
	// TrainTokens is the number of word tokens consumed in training.
	TrainTokens int
	// DataNote describes the recipe/data provenance.
	DataNote string
	// Epochs is how many passes over the data the budget implied.
	Epochs float64
}

// TrainConfig controls reference-model pre-training.
type TrainConfig struct {
	// TokenBudget is the number of word tokens to consume; documents are
	// revisited in additional epochs if the dataset is smaller than the
	// budget (the paper's epoch-weighting for high-quality corpora).
	TokenBudget int
	// Order is the n-gram order (default 3).
	Order int
	// Seed drives document shuffling between epochs.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Order == 0 {
		c.Order = 3
	}
	if c.TokenBudget == 0 {
		c.TokenBudget = 100_000
	}
	return c
}

// Pretrain trains a reference model on the dataset under a token budget.
func Pretrain(name, dataNote string, d *dataset.Dataset, cfg TrainConfig) *ReferenceModel {
	cfg = cfg.withDefaults()
	m := &ReferenceModel{
		Name:     name,
		LM:       lm.NewModel(cfg.Order),
		DataNote: dataNote,
	}
	m.continueTraining(d, cfg.TokenBudget, cfg.Seed)
	return m
}

// ContinueTraining extends a model's training with more data (the paper's
// continuous training with IFT data folded into pre-training, Table 2).
func (m *ReferenceModel) ContinueTraining(d *dataset.Dataset, extraBudget int, seed int64) {
	m.continueTraining(d, extraBudget, seed)
}

func (m *ReferenceModel) continueTraining(d *dataset.Dataset, budget int, seed int64) {
	if d.Len() == 0 || budget <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(d.Len())
	consumed := 0
	epochs := 0.0
	for consumed < budget {
		for _, idx := range order {
			if consumed >= budget {
				break
			}
			words := text.WordsLower(d.Samples[idx].Text)
			if len(words) == 0 {
				continue
			}
			if remaining := budget - consumed; len(words) > remaining {
				words = words[:remaining]
			}
			m.LM.TrainWords(words)
			consumed += len(words)
		}
		epochs++
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		// A dataset with no trainable words at all would spin forever.
		if consumed == 0 {
			break
		}
	}
	m.TrainTokens += consumed
	m.Epochs += epochs
}

// TotalWordTokens counts word tokens in a dataset (used to size budgets).
func TotalWordTokens(d *dataset.Dataset) int {
	total := 0
	for _, s := range d.Samples {
		total += len(text.Words(s.Text))
	}
	return total
}
