package llm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dataset"
)

// corpusIFT indirection keeps judge.go free of a direct corpus import
// knot and centralizes the held-out prompt source.
func corpusIFT(n int, seed int64) *dataset.Dataset {
	return corpus.IFT(corpus.Options{Docs: n, Seed: seed})
}

// Entry is one leaderboard row: a model, its data provenance, and its
// evaluation results.
type Entry struct {
	Model       string  `json:"model"`
	Data        string  `json:"data"`
	TrainTokens int     `json:"train_tokens"`
	Average     float64 `json:"average"`
	// PerTask holds the individual task scores.
	PerTask map[string]float64 `json:"per_task"`
}

// Leaderboard consolidates evaluation results (Sec. 4.3): entries are
// ranked by average score, with rank-averaging available as an
// alternative strategy.
type Leaderboard struct {
	entries []Entry
}

// Add records an entry.
func (l *Leaderboard) Add(e Entry) { l.entries = append(l.entries, e) }

// AddScores records a model's Scores with provenance.
func (l *Leaderboard) AddScores(sc Scores, dataNote string, tokens int) {
	l.Add(Entry{
		Model: sc.Model, Data: dataNote, TrainTokens: tokens,
		Average: sc.Average, PerTask: sc.PerTask,
	})
}

// Entries returns rows sorted by average score, best first.
func (l *Leaderboard) Entries() []Entry {
	out := append([]Entry(nil), l.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Average != out[j].Average {
			return out[i].Average > out[j].Average
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// Render draws the leaderboard as a table.
func (l *Leaderboard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-28s %-34s %12s %8s\n", "#", "model", "training data", "#tokens", "score")
	for i, e := range l.Entries() {
		fmt.Fprintf(&b, "%-4d %-28s %-34s %12d %8.2f\n", i+1, e.Model, e.Data, e.TrainTokens, e.Average)
	}
	return b.String()
}

// Registry persists reference models' provenance and results on disk —
// the paper's reference-model store binding checkpoints to traceable
// training data and evaluation results.
type Registry struct {
	dir string
}

// NewRegistry opens (creating if needed) a registry directory.
func NewRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Registry{dir: dir}, nil
}

// Register stores an entry under its model name.
func (r *Registry) Register(e Entry) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	name := strings.Map(func(c rune) rune {
		if c == '/' || c == ' ' {
			return '_'
		}
		return c
	}, e.Model)
	return os.WriteFile(filepath.Join(r.dir, name+".json"), raw, 0o644)
}

// Lookup loads an entry by model name.
func (r *Registry) Lookup(model string) (Entry, bool, error) {
	name := strings.Map(func(c rune) rune {
		if c == '/' || c == ' ' {
			return '_'
		}
		return c
	}, model)
	raw, err := os.ReadFile(filepath.Join(r.dir, name+".json"))
	if os.IsNotExist(err) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, err
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}

// List returns all registered entries sorted by average, best first.
func (r *Registry) List() ([]Entry, error) {
	files, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(r.dir, f.Name()))
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Average > out[j].Average })
	return out, nil
}

// NormalizedAverage consolidates scores by per-task min-max normalization
// before averaging — the "score-normalized averaging" strategy of
// Sec. 4.3, which keeps wide-range tasks (e.g. IMDB) from dominating the
// plain mean. Returns a normalized score in [0, 1] per model.
func NormalizedAverage(all []Scores) map[string]float64 {
	if len(all) == 0 {
		return nil
	}
	mins := map[string]float64{}
	maxs := map[string]float64{}
	for task := range all[0].PerTask {
		mins[task] = all[0].PerTask[task]
		maxs[task] = all[0].PerTask[task]
	}
	for _, sc := range all[1:] {
		for task, v := range sc.PerTask {
			if v < mins[task] {
				mins[task] = v
			}
			if v > maxs[task] {
				maxs[task] = v
			}
		}
	}
	out := make(map[string]float64, len(all))
	for _, sc := range all {
		var sum float64
		n := 0
		for task, v := range sc.PerTask {
			span := maxs[task] - mins[task]
			if span > 0 {
				sum += (v - mins[task]) / span
			} else {
				sum += 0.5
			}
			n++
		}
		if n > 0 {
			out[sc.Model] = sum / float64(n)
		}
	}
	return out
}

// corpusCFTZH is the held-out Chinese prompt source for the judge.
func corpusCFTZH(n int, seed int64) *dataset.Dataset {
	return corpus.CFT(corpus.Options{Docs: n, Seed: seed}, "ZH")
}
