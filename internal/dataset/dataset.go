// Package dataset provides the in-memory dataset that the pipeline
// executor operates on. It is the Go stand-in for the Huggingface-datasets
// substrate of the paper: an ordered collection of samples with parallel
// Map/Filter primitives, JSONL persistence, and content fingerprints for
// the cache and checkpoint machinery.
package dataset

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sample"
)

// Dataset is an ordered collection of samples. Operations preserve sample
// order; Filter returns both kept and dropped samples so the tracer can
// record lineage.
type Dataset struct {
	Samples []*sample.Sample
}

// New wraps the given samples.
func New(samples []*sample.Sample) *Dataset { return &Dataset{Samples: samples} }

// FromTexts builds a dataset with one sample per text.
func FromTexts(texts []string) *Dataset {
	ss := make([]*sample.Sample, len(texts))
	for i, t := range texts {
		ss[i] = sample.New(t)
	}
	return New(ss)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// TotalBytes returns the total primary-text size in bytes.
func (d *Dataset) TotalBytes() int64 {
	var n int64
	for _, s := range d.Samples {
		n += int64(len(s.Text))
	}
	return n
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	ss := make([]*sample.Sample, len(d.Samples))
	for i, s := range d.Samples {
		ss[i] = s.Clone()
	}
	return New(ss)
}

// Concat returns a new dataset holding all samples of the inputs, in
// order. Samples are shared, not copied.
func Concat(parts ...*Dataset) *Dataset {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	ss := make([]*sample.Sample, 0, total)
	for _, p := range parts {
		ss = append(ss, p.Samples...)
	}
	return New(ss)
}

// Workers normalizes a requested worker count: np <= 0 means GOMAXPROCS.
func Workers(np int) int {
	if np <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return np
}

// Map applies fn to every sample in place using np parallel workers.
// The first error aborts outstanding work and is returned.
func (d *Dataset) Map(np int, fn func(*sample.Sample) error) error {
	np = Workers(np)
	if len(d.Samples) == 0 {
		return nil
	}
	if np == 1 || len(d.Samples) < 2 {
		for _, s := range d.Samples {
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		next    int64
	)
	var mu sync.Mutex
	take := func(chunk int) (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(d.Samples) {
			return 0, 0, false
		}
		lo = int(next)
		hi = lo + chunk
		if hi > len(d.Samples) {
			hi = len(d.Samples)
		}
		next = int64(hi)
		return lo, hi, true
	}
	chunk := len(d.Samples)/(np*4) + 1
	for w := 0; w < np; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := take(chunk)
				if !ok {
					return
				}
				for _, s := range d.Samples[lo:hi] {
					if err := fn(s); err != nil {
						errOnce.Do(func() { firstEr = err })
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Filter evaluates keep on every sample with np workers and splits the
// dataset into kept (a new Dataset, original order) and dropped samples.
func (d *Dataset) Filter(np int, keep func(*sample.Sample) bool) (*Dataset, []*sample.Sample) {
	verdict := make([]bool, len(d.Samples))
	parallelRange(np, len(d.Samples), func(idx int) {
		verdict[idx] = keep(d.Samples[idx])
	})
	kept := make([]*sample.Sample, 0, len(d.Samples))
	var dropped []*sample.Sample
	for idx, ok := range verdict {
		if ok {
			kept = append(kept, d.Samples[idx])
		} else {
			dropped = append(dropped, d.Samples[idx])
		}
	}
	return New(kept), dropped
}

// MapIndexed applies fn(i, sample) in parallel; useful when the position
// matters (e.g. hashing with tie-breaking by earliest sample).
func (d *Dataset) MapIndexed(np int, fn func(int, *sample.Sample) error) error {
	var (
		errOnce sync.Once
		firstEr error
	)
	parallelRange(np, len(d.Samples), func(idx int) {
		if err := fn(idx, d.Samples[idx]); err != nil {
			errOnce.Do(func() { firstEr = err })
		}
	})
	return firstEr
}

func parallelRange(np, n int, fn func(i int)) {
	np = Workers(np)
	if n == 0 {
		return
	}
	if np == 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + np - 1) / np
	for w := 0; w < np; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Fingerprint returns a stable content hash of the dataset (text, parts,
// meta and stats of every sample, in order). It keys the cache and
// checkpoint stores.
func (d *Dataset) Fingerprint() string {
	h := fnv.New64a()
	var scratch [8]byte
	writeLen := func(n int) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(n >> (8 * i))
		}
		h.Write(scratch[:])
	}
	for _, s := range d.Samples {
		writeLen(len(s.Text))
		io.WriteString(h, s.Text)
		hashFields(h, s.Meta)
		hashStats(h, &s.Stats)
		if len(s.Parts) > 0 {
			keys := make([]string, 0, len(s.Parts))
			for k := range s.Parts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				io.WriteString(h, k)
				io.WriteString(h, s.Parts[k])
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashStats folds the typed stats table into the fingerprint in sorted
// key order, formatting values exactly as hashFields does.
func hashStats(h io.Writer, t *sample.Stats) {
	t.Range(func(name string, v any) bool {
		io.WriteString(h, name)
		switch x := v.(type) {
		case sample.Fields:
			hashFields(h, x)
		case map[string]any:
			hashFields(h, sample.Fields(x))
		default:
			fmt.Fprintf(h, "%v", x)
		}
		return true
	})
}

func hashFields(h io.Writer, f sample.Fields) {
	for _, k := range f.Keys() {
		io.WriteString(h, k)
		v, _ := f.Get(k)
		switch x := v.(type) {
		case sample.Fields:
			hashFields(h, x)
		case map[string]any:
			hashFields(h, sample.Fields(x))
		default:
			fmt.Fprintf(h, "%v", x)
		}
	}
}

// encodeBufPool recycles the per-call encode buffers of WriteJSONL.
var encodeBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// WriteJSONL writes one JSON object per sample through the hand-rolled
// encoder (byte-identical to encoding/json), reusing one scratch buffer
// across samples.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bufP := encodeBufPool.Get().(*[]byte)
	defer encodeBufPool.Put(bufP)
	for _, s := range d.Samples {
		line, err := s.AppendJSON((*bufP)[:0])
		if err != nil {
			return fmt.Errorf("dataset: encode sample: %w", err)
		}
		line = append(line, '\n')
		*bufP = line
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a dataset written by WriteJSONL (or any JSONL file whose
// objects carry a "text" field).
func ReadJSONL(r io.Reader) (*Dataset, error) {
	var samples []*sample.Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Samples are allocated individually (never from shared blocks):
		// a surviving sample must not pin dropped block-mates — and
		// their texts — past a selective filter.
		s := &sample.Sample{}
		if err := s.UnmarshalJSON(line); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return New(samples), nil
}

// SaveJSONL writes the dataset to path, creating parent directories.
func (d *Dataset) SaveJSONL(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONL reads a dataset from path.
func LoadJSONL(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
