package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func texts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sample text number %d", i)
	}
	return out
}

func TestFromTextsAndLen(t *testing.T) {
	d := FromTexts(texts(5))
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Samples[3].Text != "sample text number 3" {
		t.Fatalf("sample 3 = %q", d.Samples[3].Text)
	}
}

func TestMapParallelAppliesAll(t *testing.T) {
	d := FromTexts(texts(1000))
	var count int64
	err := d.Map(8, func(s *sample.Sample) error {
		atomic.AddInt64(&count, 1)
		s.Text = strings.ToUpper(s.Text)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("applied %d times", count)
	}
	for i, s := range d.Samples {
		if !strings.HasPrefix(s.Text, "SAMPLE") {
			t.Fatalf("sample %d not mapped: %q", i, s.Text)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	d := FromTexts(texts(100))
	boom := errors.New("boom")
	err := d.Map(4, func(s *sample.Sample) error {
		if strings.HasSuffix(s.Text, "42") {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapSingleWorkerOrder(t *testing.T) {
	d := FromTexts(texts(10))
	var order []string
	err := d.Map(1, func(s *sample.Sample) error {
		order = append(order, s.Text)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != fmt.Sprintf("sample text number %d", i) {
			t.Fatalf("order[%d] = %q", i, got)
		}
	}
}

func TestFilterSplitsAndPreservesOrder(t *testing.T) {
	d := FromTexts([]string{"keep a", "drop b", "keep c", "drop d", "keep e"})
	kept, dropped := d.Filter(4, func(s *sample.Sample) bool {
		return strings.HasPrefix(s.Text, "keep")
	})
	if kept.Len() != 3 || len(dropped) != 2 {
		t.Fatalf("kept %d dropped %d", kept.Len(), len(dropped))
	}
	if kept.Samples[0].Text != "keep a" || kept.Samples[2].Text != "keep e" {
		t.Fatalf("order broken: %v", kept.Samples)
	}
	if dropped[0].Text != "drop b" {
		t.Fatalf("dropped order: %q", dropped[0].Text)
	}
}

func TestFilterEmpty(t *testing.T) {
	d := New(nil)
	kept, dropped := d.Filter(4, func(*sample.Sample) bool { return true })
	if kept.Len() != 0 || len(dropped) != 0 {
		t.Fatal("empty filter misbehaved")
	}
}

func TestMapIndexed(t *testing.T) {
	d := FromTexts(texts(50))
	seen := make([]int32, 50)
	err := d.MapIndexed(8, func(i int, s *sample.Sample) error {
		atomic.AddInt32(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromTexts([]string{"a1", "a2"})
	b := FromTexts([]string{"b1"})
	c := Concat(a, b)
	if c.Len() != 3 || c.Samples[2].Text != "b1" {
		t.Fatalf("Concat = %v", c.Samples)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := FromTexts([]string{"x"})
	d.Samples[0].SetStat("n", 1)
	c := d.Clone()
	c.Samples[0].Text = "changed"
	c.Samples[0].SetStat("n", 2)
	if d.Samples[0].Text != "x" {
		t.Fatal("clone shares text")
	}
	if v, _ := d.Samples[0].Stat("n"); v != 1 {
		t.Fatal("clone shares stats")
	}
}

func TestFingerprintStability(t *testing.T) {
	d1 := FromTexts(texts(20))
	d2 := FromTexts(texts(20))
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatal("identical datasets must share fingerprints")
	}
	d2.Samples[7].Text += "!"
	if d1.Fingerprint() == d2.Fingerprint() {
		t.Fatal("text change must change fingerprint")
	}
	d3 := FromTexts(texts(20))
	d3.Samples[0].SetStat("s", 1)
	if d1.Fingerprint() == d3.Fingerprint() {
		t.Fatal("stats change must change fingerprint")
	}
}

func TestFingerprintOrderSensitive(t *testing.T) {
	d1 := FromTexts([]string{"a", "b"})
	d2 := FromTexts([]string{"b", "a"})
	if d1.Fingerprint() == d2.Fingerprint() {
		t.Fatal("order must matter")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := FromTexts(texts(10))
	d.Samples[0].SetString("meta.src", "unit")
	d.Samples[1].SetStat("wc", 4)
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("round trip len = %d", got.Len())
	}
	if v, _ := got.Samples[0].GetString("meta.src"); v != "unit" {
		t.Fatalf("meta lost: %q", v)
	}
	if v, ok := got.Samples[1].Stat("wc"); !ok || v != 4 {
		t.Fatalf("stat lost: %v %v", v, ok)
	}
	if got.Fingerprint() != d.Fingerprint() {
		t.Fatal("fingerprint must survive round trip")
	}
}

func TestJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"text\":\"ok\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestSaveLoadJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "data.jsonl")
	d := FromTexts(texts(5))
	if err := d.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("loaded %d", got.Len())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must be >= 1")
	}
	if Workers(-3) < 1 {
		t.Fatal("Workers(-3) must be >= 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers(7) must be 7")
	}
}

func TestTotalBytes(t *testing.T) {
	d := FromTexts([]string{"ab", "cde"})
	if d.TotalBytes() != 5 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

// Property: Filter partitions — kept + dropped == total, with no overlap.
func TestPropertyFilterPartition(t *testing.T) {
	f := func(ts []string, mod uint8) bool {
		d := FromTexts(ts)
		m := int(mod%5) + 1
		kept, dropped := d.Filter(4, func(s *sample.Sample) bool {
			return len(s.Text)%m == 0
		})
		if kept.Len()+len(dropped) != len(ts) {
			return false
		}
		seen := make(map[*sample.Sample]bool)
		for _, s := range kept.Samples {
			seen[s] = true
		}
		for _, s := range dropped {
			if seen[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fingerprints are deterministic across repeated computation.
func TestPropertyFingerprintDeterministic(t *testing.T) {
	f := func(ts []string) bool {
		d := FromTexts(ts)
		return d.Fingerprint() == d.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
