package dataset

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/sample"
)

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch(8)
	if len(b.Samples) != 0 || cap(b.Samples) < 8 {
		t.Fatalf("GetBatch: len %d cap %d", len(b.Samples), cap(b.Samples))
	}
	s := sample.New("x")
	b.Samples = append(b.Samples, s)
	PutBatch(b)
	b2 := GetBatch(4)
	if len(b2.Samples) != 0 {
		t.Fatalf("pooled batch not reset: len %d", len(b2.Samples))
	}
	for _, e := range b2.Samples[:cap(b2.Samples)] {
		if e != nil {
			t.Fatal("PutBatch must clear elements so samples are not pinned")
		}
	}
}

func TestMapBatchesCoversEverySampleOnce(t *testing.T) {
	for _, np := range []int{1, 4} {
		d := FromTexts(make([]string, 537))
		var visits atomic.Int64
		err := d.MapBatches(np, func(batch []*sample.Sample) error {
			if len(batch) == 0 {
				t.Error("empty batch")
			}
			for _, s := range batch {
				s.SetStat("seen", 1)
				visits.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if visits.Load() != 537 {
			t.Fatalf("np=%d: visited %d samples, want 537", np, visits.Load())
		}
		for i, s := range d.Samples {
			if _, ok := s.Stat("seen"); !ok {
				t.Fatalf("np=%d: sample %d not visited", np, i)
			}
		}
	}
}

func TestMapBatchesPropagatesError(t *testing.T) {
	d := FromTexts(make([]string, 100))
	wantErr := fmt.Errorf("boom")
	err := d.MapBatches(2, func(batch []*sample.Sample) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestFilterBatchesMatchesFilter(t *testing.T) {
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = fmt.Sprint(i)
	}
	for _, np := range []int{1, 3} {
		for _, collect := range []bool{true, false} {
			d := FromTexts(texts)
			keep := func(s *sample.Sample) bool { return len(s.Text) > 2 }
			kept, dropped := d.FilterBatches(np, collect, func(batch []*sample.Sample, verdict []bool) {
				for i, s := range batch {
					verdict[i] = keep(s)
				}
			})
			refKept, refDropped := d.Filter(np, keep)
			if kept.Len() != refKept.Len() {
				t.Fatalf("np=%d: kept %d, want %d", np, kept.Len(), refKept.Len())
			}
			for i := range kept.Samples {
				if kept.Samples[i] != refKept.Samples[i] {
					t.Fatalf("np=%d: kept order diverges at %d", np, i)
				}
			}
			if collect {
				if len(dropped) != len(refDropped) {
					t.Fatalf("np=%d: dropped %d, want %d", np, len(dropped), len(refDropped))
				}
			} else if dropped != nil {
				t.Fatalf("np=%d: dropped must be nil when not collected", np)
			}
		}
	}
}
