package dataset

import (
	"sync"

	"repro/internal/sample"
)

// Batch is the unit of per-sample work handed between pipeline layers: a
// contiguous chunk of samples. Moving batches instead of single samples
// amortizes channel sends, scheduling, closure calls and observer-hook
// atomics across the chunk; the streaming engine's shards and the batch
// executor's worker chunks are both batches.
type Batch struct {
	Samples []*sample.Sample
}

// batchPool recycles batch backing arrays (the slice headers and their
// element storage, not the samples themselves).
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// GetBatch returns a pooled batch with at least the given capacity and
// zero length. Recycle through PutBatch only when the batch's backing
// array is exclusively owned — a batch aliasing a larger dataset (e.g.
// a re-shard slice of a merged array) must never be pooled, or the pool
// would hand out overlapping storage.
func GetBatch(capacity int) *Batch {
	b := batchPool.Get().(*Batch)
	if cap(b.Samples) < capacity {
		b.Samples = make([]*sample.Sample, 0, capacity)
	} else {
		b.Samples = b.Samples[:0]
	}
	return b
}

// PutBatch returns b's backing array to the pool. The caller must hold
// no other references to b or its slice; the samples themselves are not
// touched.
func PutBatch(b *Batch) {
	s := b.Samples[:cap(b.Samples)]
	for i := range s {
		s[i] = nil // don't pin samples alive through the pool
	}
	b.Samples = s[:0]
	batchPool.Put(b)
}

// MapBatches applies fn to contiguous batches of samples using np
// parallel workers; every sample appears in exactly one batch, in order
// within the batch. The first error aborts outstanding work and is
// returned. It is the batch-granular engine under Map: worker loops,
// scratch attachment and per-batch bookkeeping live in fn's caller
// instead of costing one dynamic call per sample.
func (d *Dataset) MapBatches(np int, fn func(batch []*sample.Sample) error) error {
	np = Workers(np)
	n := len(d.Samples)
	if n == 0 {
		return nil
	}
	chunk := n/(np*4) + 1
	if np == 1 || n < 2 {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := fn(d.Samples[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		mu      sync.Mutex
		next    int
	)
	take := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo = next
		hi = lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	for w := 0; w < np; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				if err := fn(d.Samples[lo:hi]); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// FilterBatches evaluates judge over contiguous batches with np workers
// (judge fills verdict[i] for batch[i]) and splits the dataset into kept
// samples (a new Dataset, original order) and — only when collectDropped
// is set — the dropped samples. Skipping the dropped collection saves
// one slice per filter application when no tracer wants the discards.
func (d *Dataset) FilterBatches(np int, collectDropped bool,
	judge func(batch []*sample.Sample, verdict []bool)) (*Dataset, []*sample.Sample) {

	n := len(d.Samples)
	verdict := make([]bool, n)
	np = Workers(np)
	if n > 0 {
		chunk := (n + np - 1) / np
		if np == 1 || n < 2 {
			judge(d.Samples, verdict)
		} else {
			var wg sync.WaitGroup
			for lo := 0; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					judge(d.Samples[lo:hi], verdict[lo:hi])
				}(lo, hi)
			}
			wg.Wait()
		}
	}
	keptN := 0
	for _, ok := range verdict {
		if ok {
			keptN++
		}
	}
	kept := make([]*sample.Sample, 0, keptN)
	var dropped []*sample.Sample
	if collectDropped && keptN < n {
		dropped = make([]*sample.Sample, 0, n-keptN)
	}
	for idx, ok := range verdict {
		if ok {
			kept = append(kept, d.Samples[idx])
		} else if collectDropped {
			dropped = append(dropped, d.Samples[idx])
		}
	}
	return New(kept), dropped
}
