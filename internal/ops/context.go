package ops

import (
	"repro/internal/sample"
	"repro/internal/text"
)

// Shared context keys. Operators that consume the same key are fusible:
// the first computes the intermediate, the rest reuse it from the sample's
// context cache.
const (
	CtxWords      = "words"
	CtxWordsLower = "words_lower"
	CtxLines      = "lines"
	CtxSentences  = "sentences"
)

// WordsOf returns (and caches) the word segmentation of the sample's text.
func WordsOf(s *sample.Sample) []string {
	return s.Context(CtxWords, func() any { return text.Words(s.Text) }).([]string)
}

// WordsLowerOf returns (and caches) the lower-cased word segmentation.
func WordsLowerOf(s *sample.Sample) []string {
	return s.Context(CtxWordsLower, func() any {
		return text.WordsLower(s.Text)
	}).([]string)
}

// LinesOf returns (and caches) the line split of the sample's text.
func LinesOf(s *sample.Sample) []string {
	return s.Context(CtxLines, func() any { return text.Lines(s.Text) }).([]string)
}

// SentencesOf returns (and caches) the sentence split of the sample's text.
func SentencesOf(s *sample.Sample) []string {
	return s.Context(CtxSentences, func() any { return text.Sentences(s.Text) }).([]string)
}
