package ops

import (
	"repro/internal/sample"
	"repro/internal/text"
)

// Shared context keys. Operators that consume the same key are fusible:
// the first computes the intermediate, the rest reuse it from the sample's
// context cache. The four standard keys live in typed context slots on
// the sample (no boxed map), filled through per-worker scratch buffers so
// steady-state tokenization is allocation-free.
const (
	CtxWords      = "words"
	CtxWordsLower = "words_lower"
	CtxLines      = "lines"
	CtxSentences  = "sentences"
)

// WordsOf returns (and caches) the word segmentation of the sample's text.
func WordsOf(s *sample.Sample) []string {
	if t, ok := s.CachedTokens(sample.CtxWords); ok {
		return t
	}
	t := text.WordsInto(s.Text, s.TokenBuf(sample.CtxWords))
	s.StoreTokens(sample.CtxWords, t)
	return t
}

// WordsLowerOf returns (and caches) the lower-cased word segmentation.
func WordsLowerOf(s *sample.Sample) []string {
	if t, ok := s.CachedTokens(sample.CtxWordsLower); ok {
		return t
	}
	t := text.WordsLowerInto(s.Text, s.TokenBuf(sample.CtxWordsLower))
	s.StoreTokens(sample.CtxWordsLower, t)
	return t
}

// LinesOf returns (and caches) the line split of the sample's text.
func LinesOf(s *sample.Sample) []string {
	if t, ok := s.CachedTokens(sample.CtxLines); ok {
		return t
	}
	t := text.LinesInto(s.Text, s.TokenBuf(sample.CtxLines))
	s.StoreTokens(sample.CtxLines, t)
	return t
}

// SentencesOf returns (and caches) the sentence split of the sample's text.
func SentencesOf(s *sample.Sample) []string {
	if t, ok := s.CachedTokens(sample.CtxSentences); ok {
		return t
	}
	t := text.SentencesInto(s.Text, s.TokenBuf(sample.CtxSentences))
	s.StoreTokens(sample.CtxSentences, t)
	return t
}
