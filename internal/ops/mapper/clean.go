package mapper

import (
	"regexp"
	"strings"

	"repro/internal/ops"
)

var (
	emailRe = regexp.MustCompile(`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`)
	linkRe  = regexp.MustCompile(`(?i)\b(?:https?://|ftp://|www\.)[^\s<>"')\]]+`)
	ipRe    = regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}(?::\d{1,5})?\b`)
	// Copyright banners at the head of source files: // or # or /* style
	// comment lines mentioning copyright/license.
	copyrightLineRe = regexp.MustCompile(`(?i)^\s*(?://|#|\*|/\*)?.*\b(copyright|all rights reserved|licensed under|license|spdx)\b`)
)

func init() {
	registerTransform("clean_email_mapper", "general,privacy",
		func(p ops.Params) func(string) string {
			repl := p.String("replacement", "")
			return func(s string) string { return emailRe.ReplaceAllString(s, repl) }
		})

	registerTransform("clean_links_mapper", "general,web",
		func(p ops.Params) func(string) string {
			repl := p.String("replacement", "")
			return func(s string) string { return linkRe.ReplaceAllString(s, repl) }
		})

	registerTransform("clean_ip_mapper", "general,privacy",
		func(p ops.Params) func(string) string {
			repl := p.String("replacement", "")
			return func(s string) string { return ipRe.ReplaceAllString(s, repl) }
		})

	registerTransform("clean_copyright_mapper", "code",
		func(p ops.Params) func(string) string { return cleanCopyright })
}

// cleanCopyright removes a leading comment block that mentions copyright
// or license terms, the behaviour of the paper's clean_copyright_mapper
// for code corpora. Only the head of the file is considered: copyright
// notices in the middle of a document are content, not boilerplate.
func cleanCopyright(s string) string {
	lines := strings.Split(s, "\n")
	// Find the extent of the leading comment block.
	end := 0
	sawCopyright := false
	inBlock := false
	for i, l := range lines {
		t := strings.TrimSpace(l)
		switch {
		case inBlock:
			end = i + 1
			if copyrightLineRe.MatchString(l) {
				sawCopyright = true
			}
			if strings.Contains(t, "*/") {
				inBlock = false
			}
			continue
		case strings.HasPrefix(t, "/*"):
			inBlock = !strings.Contains(t, "*/")
			end = i + 1
			if copyrightLineRe.MatchString(l) {
				sawCopyright = true
			}
			continue
		case strings.HasPrefix(t, "//") || strings.HasPrefix(t, "#") || t == "":
			end = i + 1
			if copyrightLineRe.MatchString(l) {
				sawCopyright = true
			}
			continue
		}
		break
	}
	if !sawCopyright || end == 0 {
		return s
	}
	return strings.Join(lines[end:], "\n")
}
