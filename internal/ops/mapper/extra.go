package mapper

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/ops"
	"repro/internal/text"
)

// Additional mappers rounding out the pool: contraction expansion,
// repeated-sentence removal, user-specified regex rewriting, and header
// removal for code fences.

var contractions = map[string]string{
	"can't": "cannot", "won't": "will not", "n't": " not",
	"'re": " are", "'ve": " have", "'ll": " will", "'m": " am",
	"let's": "let us", "it's": "it is", "that's": "that is",
	"what's": "what is", "there's": "there is", "he's": "he is",
	"she's": "she is", "who's": "who is",
}

// contractionOrder applies multi-word forms before generic suffixes.
var contractionOrder = []string{
	"can't", "won't", "let's", "it's", "that's", "what's", "there's",
	"he's", "she's", "who's", "n't", "'re", "'ve", "'ll", "'m",
}

func init() {
	registerTransform("expand_contractions_mapper", "en,fine-tuning",
		func(p ops.Params) func(string) string { return expandContractions })

	registerTransform("remove_repeat_sentences_mapper", "general,web",
		func(p ops.Params) func(string) string {
			lowercase := p.Bool("lowercase", true)
			minLen := p.Int("min_repeat_sentence_length", 2)
			return func(s string) string { return removeRepeatSentences(s, lowercase, minLen) }
		})

	ops.Register("replace_content_mapper", ops.CategoryMapper, "general,custom",
		func(p ops.Params) (ops.OP, error) {
			pattern := p.String("pattern", "")
			if pattern == "" {
				return nil, fmt.Errorf("replace_content_mapper: pattern is required")
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				return nil, fmt.Errorf("replace_content_mapper: %w", err)
			}
			repl := p.String("repl", "")
			return &transform{
				base: newBase("replace_content_mapper", p),
				fn:   func(s string) string { return re.ReplaceAllString(s, repl) },
			}, nil
		})

	registerTransform("remove_code_fences_mapper", "markdown",
		func(p ops.Params) func(string) string { return removeCodeFences })
}

// expandContractions rewrites common English contractions into their full
// forms (case-insensitive on the apostrophe forms), normalizing text for
// downstream word statistics.
func expandContractions(s string) string {
	lower := strings.ToLower(s)
	var b strings.Builder
	b.Grow(len(s))
	i := 0
outer:
	for i < len(s) {
		for _, c := range contractionOrder {
			if strings.HasPrefix(lower[i:], c) {
				// Suffix forms must follow a letter; word forms must start
				// at a word boundary.
				if strings.HasPrefix(c, "'") || c == "n't" {
					if b.Len() == 0 {
						break
					}
				} else if i > 0 && isWordByte(s[i-1]) {
					continue
				}
				b.WriteString(contractions[c])
				i += len(c)
				continue outer
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// removeRepeatSentences drops sentences that already appeared earlier in
// the document — the in-document cousin of deduplication, aimed at
// templated boilerplate that repeats within a page.
func removeRepeatSentences(s string, lowercase bool, minWords int) string {
	sentences := text.Sentences(s)
	if len(sentences) < 2 {
		return s
	}
	seen := make(map[string]struct{}, len(sentences))
	kept := sentences[:0]
	for _, sent := range sentences {
		key := sent
		if lowercase {
			key = strings.ToLower(key)
		}
		words := text.Words(sent)
		if len(words) >= minWords {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		kept = append(kept, sent)
	}
	return strings.Join(kept, " ")
}

// removeCodeFences strips fenced code blocks from markdown documents.
func removeCodeFences(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	inFence := false
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
