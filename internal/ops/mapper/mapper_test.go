package mapper

import (
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/sample"
)

// run builds the named mapper and applies it to text, returning the result.
func run(t *testing.T, name string, p ops.Params, text string) string {
	t.Helper()
	op, err := ops.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	m, ok := op.(ops.Mapper)
	if !ok {
		t.Fatalf("%s is not a Mapper", name)
	}
	s := sample.New(text)
	if err := m.Process(s); err != nil {
		t.Fatalf("process %s: %v", name, err)
	}
	return s.Text
}

func TestWhitespaceNormalizationMapper(t *testing.T) {
	got := run(t, "whitespace_normalization_mapper", nil, "a   b\t c \n\n\n\nd")
	if got != "a b c\n\nd" {
		t.Fatalf("got %q", got)
	}
}

func TestFixUnicodeMapper(t *testing.T) {
	got := run(t, "fix_unicode_mapper", nil, "cafÃ©")
	if got != "café" {
		t.Fatalf("got %q", got)
	}
}

func TestPunctuationNormalizationMapper(t *testing.T) {
	got := run(t, "punctuation_normalization_mapper", nil, "«x»")
	if got != `"x"` {
		t.Fatalf("got %q", got)
	}
}

func TestLowercaseMapper(t *testing.T) {
	if got := run(t, "lowercase_mapper", nil, "ABC"); got != "abc" {
		t.Fatalf("got %q", got)
	}
}

func TestRemoveNonPrintingMapper(t *testing.T) {
	if got := run(t, "remove_non_printing_mapper", nil, "a\x00b"); got != "ab" {
		t.Fatalf("got %q", got)
	}
}

func TestCleanHTMLMapper(t *testing.T) {
	got := run(t, "clean_html_mapper", nil, "<p>Hello <b>world</b></p>")
	if strings.Contains(got, "<") || !strings.Contains(got, "Hello world") {
		t.Fatalf("got %q", got)
	}
}

func TestSentenceSplitMapper(t *testing.T) {
	got := run(t, "sentence_split_mapper", nil, "One. Two! Three?")
	if got != "One.\nTwo!\nThree?" {
		t.Fatalf("got %q", got)
	}
}

func TestCleanEmailMapper(t *testing.T) {
	got := run(t, "clean_email_mapper", nil, "contact me at foo.bar+1@example.co.uk today")
	if strings.Contains(got, "@") {
		t.Fatalf("email left: %q", got)
	}
	got = run(t, "clean_email_mapper", ops.Params{"replacement": "<EMAIL>"}, "x a@b.com y")
	if got != "x <EMAIL> y" {
		t.Fatalf("replacement: %q", got)
	}
}

func TestCleanLinksMapper(t *testing.T) {
	got := run(t, "clean_links_mapper", nil, "see https://example.com/a?b=1 and www.test.org/page now")
	if strings.Contains(got, "example.com") || strings.Contains(got, "www.test.org") {
		t.Fatalf("links left: %q", got)
	}
	if !strings.Contains(got, "see") || !strings.Contains(got, "now") {
		t.Fatalf("content lost: %q", got)
	}
}

func TestCleanIPMapper(t *testing.T) {
	got := run(t, "clean_ip_mapper", nil, "server at 192.168.0.1:8080 responded")
	if strings.Contains(got, "192.168") {
		t.Fatalf("ip left: %q", got)
	}
}

func TestCleanCopyrightMapper(t *testing.T) {
	in := `// Copyright 2020 Example Corp.
// Licensed under the Apache License.

package main

func main() {} // keep this copyright mention inline`
	got := run(t, "clean_copyright_mapper", nil, in)
	if strings.Contains(got, "Example Corp") {
		t.Fatalf("header left: %q", got)
	}
	if !strings.Contains(got, "package main") || !strings.Contains(got, "keep this copyright mention inline") {
		t.Fatalf("content lost: %q", got)
	}
	// Files without a copyright header pass through unchanged.
	plain := "package main\n\nfunc main() {}"
	if got := run(t, "clean_copyright_mapper", nil, plain); got != plain {
		t.Fatalf("no-header file changed: %q", got)
	}
}

func TestCleanCopyrightBlockComment(t *testing.T) {
	in := "/*\n * Copyright (c) 2021\n * All rights reserved.\n */\nint main() {}"
	got := run(t, "clean_copyright_mapper", nil, in)
	if strings.Contains(got, "rights reserved") || !strings.Contains(got, "int main") {
		t.Fatalf("got %q", got)
	}
}

func TestExpandMacroMapper(t *testing.T) {
	in := `\newcommand{\model}{Transformer}
The \model architecture uses \model blocks.`
	got := run(t, "expand_macro_mapper", nil, in)
	if strings.Contains(got, `\model`) || strings.Count(got, "Transformer") != 2 {
		t.Fatalf("got %q", got)
	}
}

func TestRemoveBibliographyMapper(t *testing.T) {
	in := "Body text.\n\\bibliography{refs}\nMore refs here"
	got := run(t, "remove_bibliography_mapper", nil, in)
	if strings.Contains(got, "refs") || !strings.Contains(got, "Body text.") {
		t.Fatalf("got %q", got)
	}
}

func TestRemoveCommentsMapper(t *testing.T) {
	in := "Real content % a comment\n50\\% of cases % another"
	got := run(t, "remove_comments_mapper", nil, in)
	if strings.Contains(got, "a comment") || strings.Contains(got, "another") {
		t.Fatalf("comments left: %q", got)
	}
	if !strings.Contains(got, "50\\%") {
		t.Fatalf("escaped percent damaged: %q", got)
	}
}

func TestRemoveHeaderMapper(t *testing.T) {
	in := "\\documentclass{article}\n\\usepackage{x}\n\\begin{document}\n\\section{Intro}\nContent."
	got := run(t, "remove_header_mapper", nil, in)
	if strings.Contains(got, "documentclass") || !strings.HasPrefix(got, "\\section{Intro}") {
		t.Fatalf("got %q", got)
	}
	// Document without sections is emptied by default.
	if got := run(t, "remove_header_mapper", nil, "no sections here"); got != "" {
		t.Fatalf("no-head doc should be emptied, got %q", got)
	}
	if got := run(t, "remove_header_mapper", ops.Params{"drop_no_head": false}, "no sections"); got != "no sections" {
		t.Fatalf("drop_no_head=false should keep, got %q", got)
	}
}

func TestRemoveTableTextMapper(t *testing.T) {
	in := "Before\n\\begin{table}\nx & y \\\\ \n\\end{table}\nAfter"
	got := run(t, "remove_table_text_mapper", nil, in)
	if strings.Contains(got, "x & y") || !strings.Contains(got, "Before") || !strings.Contains(got, "After") {
		t.Fatalf("got %q", got)
	}
}

func TestRemoveLongWordsMapper(t *testing.T) {
	got := run(t, "remove_long_words_mapper", ops.Params{"max_len": 10}, "ok "+strings.Repeat("x", 30)+" fine")
	if got != "ok fine" {
		t.Fatalf("got %q", got)
	}
}

func TestRemoveSpecificCharsMapper(t *testing.T) {
	got := run(t, "remove_specific_chars_mapper", nil, "a◆b●c")
	if got != "abc" {
		t.Fatalf("got %q", got)
	}
	got = run(t, "remove_specific_chars_mapper", ops.Params{"chars_to_remove": "xz"}, "xyz")
	if got != "y" {
		t.Fatalf("custom chars: %q", got)
	}
}

func TestRemoveWordsWithIncorrectSubstringsMapper(t *testing.T) {
	got := run(t, "remove_words_with_incorrect_substrings_mapper", nil, "visit http://spam now")
	if got != "visit now" {
		t.Fatalf("got %q", got)
	}
}

func TestTextAugmentMapperDeterministic(t *testing.T) {
	in := "one two three four five six seven eight nine ten"
	a := run(t, "text_augment_mapper", ops.Params{"seed": 1, "swap_rate": 0.5}, in)
	b := run(t, "text_augment_mapper", ops.Params{"seed": 1, "swap_rate": 0.5}, in)
	if a != b {
		t.Fatalf("augmentation not deterministic: %q vs %q", a, b)
	}
	// All words preserved (only order changes).
	wa := strings.Fields(a)
	if len(wa) != 10 {
		t.Fatalf("words lost: %q", a)
	}
	// Short texts are untouched.
	if got := run(t, "text_augment_mapper", nil, "too short"); got != "too short" {
		t.Fatalf("short text changed: %q", got)
	}
}

func TestMapperTextKeyTargeting(t *testing.T) {
	op, err := ops.Build("lowercase_mapper", ops.Params{"text_key": "text.abstract"})
	if err != nil {
		t.Fatal(err)
	}
	s := sample.New("BODY")
	s.SetString("text.abstract", "ABSTRACT")
	if err := op.(ops.Mapper).Process(s); err != nil {
		t.Fatal(err)
	}
	if s.Text != "BODY" {
		t.Fatalf("primary text changed: %q", s.Text)
	}
	if got, _ := s.GetString("text.abstract"); got != "abstract" {
		t.Fatalf("targeted part = %q", got)
	}
}

func TestAllMappersRegistered(t *testing.T) {
	want := []string{
		"whitespace_normalization_mapper", "fix_unicode_mapper",
		"punctuation_normalization_mapper", "remove_non_printing_mapper",
		"lowercase_mapper", "clean_html_mapper", "sentence_split_mapper",
		"clean_email_mapper", "clean_links_mapper", "clean_ip_mapper",
		"clean_copyright_mapper", "expand_macro_mapper",
		"remove_bibliography_mapper", "remove_comments_mapper",
		"remove_table_text_mapper", "remove_header_mapper",
		"remove_long_words_mapper", "remove_specific_chars_mapper",
		"remove_words_with_incorrect_substrings_mapper", "text_augment_mapper",
	}
	for _, name := range want {
		info, ok := ops.InfoFor(name)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if info.Category != ops.CategoryMapper {
			t.Errorf("%s category = %s", name, info.Category)
		}
	}
}
