package mapper

import (
	"math/rand"
	"strings"

	"repro/internal/ops"
	"repro/internal/sample"
)

func init() {
	registerTransform("remove_long_words_mapper", "general",
		func(p ops.Params) func(string) string {
			min := p.Int("min_len", 1)
			max := p.Int("max_len", 128)
			return func(s string) string { return removeLongWords(s, min, max) }
		})

	registerTransform("remove_specific_chars_mapper", "general",
		func(p ops.Params) func(string) string {
			chars := p.String("chars_to_remove", "◆●■►▼▲▴∆▻▷❖♡□")
			return func(s string) string {
				return strings.Map(func(r rune) rune {
					if strings.ContainsRune(chars, r) {
						return -1
					}
					return r
				}, s)
			}
		})

	registerTransform("remove_words_with_incorrect_substrings_mapper", "general,web",
		func(p ops.Params) func(string) string {
			subs := p.Strings("substrings")
			if subs == nil {
				subs = []string{"http", "www", ".com", ".html", "<?", "?>"}
			}
			return func(s string) string { return removeWordsWithSubstrings(s, subs) }
		})

	ops.Register("text_augment_mapper", ops.CategoryMapper, "fine-tuning,augment",
		func(p ops.Params) (ops.OP, error) {
			return &textAugment{
				base:     newBase("text_augment_mapper", p),
				seed:     int64(p.Int("seed", 42)),
				swapRate: p.Float("swap_rate", 0.05),
			}, nil
		})
}

// removeLongWords drops whitespace tokens whose rune length falls outside
// [min, max] — very long "words" are usually URLs, base64 blobs or broken
// markup.
func removeLongWords(s string, min, max int) string {
	parts := strings.Fields(s)
	out := parts[:0]
	for _, w := range parts {
		n := len([]rune(w))
		if n >= min && n <= max {
			out = append(out, w)
		}
	}
	return strings.Join(out, " ")
}

func removeWordsWithSubstrings(s string, subs []string) string {
	parts := strings.Fields(s)
	out := parts[:0]
	for _, w := range parts {
		bad := false
		lw := strings.ToLower(w)
		for _, sub := range subs {
			if strings.Contains(lw, sub) {
				bad = true
				break
			}
		}
		if !bad {
			out = append(out, w)
		}
	}
	return strings.Join(out, " ")
}

// textAugment performs light, seeded text enhancement (adjacent word
// swaps) — the stand-in for the nlpaug-style diversity mappers used on
// fine-tuning data. Determinism comes from hashing the text into the
// per-sample RNG stream.
type textAugment struct {
	base
	seed     int64
	swapRate float64
}

func (m *textAugment) Process(s *sample.Sample) error {
	t := m.text(s)
	words := strings.Fields(t)
	if len(words) < 4 {
		return nil
	}
	var h int64
	for _, c := range t {
		h = h*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(m.seed ^ h))
	for i := 0; i+1 < len(words); i++ {
		if rng.Float64() < m.swapRate {
			words[i], words[i+1] = words[i+1], words[i]
			i++
		}
	}
	return m.setText(s, strings.Join(words, " "))
}
