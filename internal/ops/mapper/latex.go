package mapper

import (
	"regexp"
	"strings"

	"repro/internal/ops"
)

// LaTeX-oriented mappers for arXiv-style corpora, mirroring the paper's
// expand_macro / remove_bibliography / remove_comments / remove_header /
// remove_table_text operators.

var (
	newcommandRe = regexp.MustCompile(`\\(?:newcommand|def|renewcommand)\{?\\([A-Za-z]+)\}?(?:\[\d+\])?\{([^{}]*)\}`)
	bibRe        = regexp.MustCompile(`(?s)\\(?:bibliography|begin\{thebibliography\}).*`)
	commentRe    = regexp.MustCompile(`(?m)(^|[^\\])%.*$`)
	tableEnvRe   = regexp.MustCompile(`(?s)\\begin\{(table\*?|tabular)\}.*?\\end\{(table\*?|tabular)\}`)
	headerRe     = regexp.MustCompile(`(?s)^.*?(\\(?:section|chapter|part)\*?\{)`)
)

func init() {
	registerTransform("expand_macro_mapper", "latex",
		func(p ops.Params) func(string) string { return expandMacros })

	registerTransform("remove_bibliography_mapper", "latex",
		func(p ops.Params) func(string) string {
			return func(s string) string { return bibRe.ReplaceAllString(s, "") }
		})

	registerTransform("remove_comments_mapper", "latex",
		func(p ops.Params) func(string) string {
			return func(s string) string { return commentRe.ReplaceAllString(s, "$1") }
		})

	registerTransform("remove_table_text_mapper", "latex,general",
		func(p ops.Params) func(string) string {
			return func(s string) string { return tableEnvRe.ReplaceAllString(s, "") }
		})

	registerTransform("remove_header_mapper", "latex",
		func(p ops.Params) func(string) string {
			keep := p.Bool("drop_no_head", true)
			return func(s string) string { return removeHeader(s, keep) }
		})
}

// expandMacros inlines simple one-level \newcommand / \def macros into the
// body, so later filters see real content instead of macro names.
func expandMacros(s string) string {
	defs := newcommandRe.FindAllStringSubmatch(s, -1)
	if len(defs) == 0 {
		return s
	}
	s = newcommandRe.ReplaceAllString(s, "")
	for _, d := range defs {
		name, body := d[1], d[2]
		// Parameterized bodies (#1 etc.) are left alone: single-level
		// expansion of constant macros covers the bulk of real usage.
		if strings.Contains(body, "#") {
			continue
		}
		s = regexp.MustCompile(`\\`+regexp.QuoteMeta(name)+`\b`).ReplaceAllString(s, body)
	}
	return s
}

// removeHeader drops everything before the first sectioning command (the
// preamble: documentclass, packages, title matter). If the document has no
// sectioning command and dropNoHead is true, the text is emptied, matching
// the paper's semantics for header-only fragments.
func removeHeader(s string, dropNoHead bool) string {
	loc := headerRe.FindStringSubmatchIndex(s)
	if loc == nil {
		if dropNoHead {
			return ""
		}
		return s
	}
	// loc[2] is the start of the sectioning command capture group.
	return s[loc[2]:]
}
