package mapper

import (
	"strings"
	"testing"

	"repro/internal/ops"
)

func TestExpandContractionsMapper(t *testing.T) {
	cases := map[string]string{
		"I can't and won't go":  "I cannot and will not go",
		"it's fine, let's stay": "it is fine, let us stay",
		"they're here":          "they are here",
		"we didn't see":         "we did not see",
		"no contractions here":  "no contractions here",
	}
	for in, want := range cases {
		if got := run(t, "expand_contractions_mapper", nil, in); got != want {
			t.Errorf("expand(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRemoveRepeatSentencesMapper(t *testing.T) {
	in := "Subscribe to our newsletter today. Real content lives here. Subscribe to our newsletter today. More real content follows."
	got := run(t, "remove_repeat_sentences_mapper", nil, in)
	if strings.Count(got, "Subscribe to our newsletter today.") != 1 {
		t.Fatalf("repeat sentence survived: %q", got)
	}
	if !strings.Contains(got, "Real content lives here.") || !strings.Contains(got, "More real content follows.") {
		t.Fatalf("content lost: %q", got)
	}
	// Short sentences below the word threshold are never treated as dups.
	short := "Yes. No. Yes. No."
	if got := run(t, "remove_repeat_sentences_mapper", ops.Params{"min_repeat_sentence_length": 3}, short); strings.Count(got, "Yes.") != 2 {
		t.Fatalf("short sentences deduped: %q", got)
	}
}

func TestReplaceContentMapper(t *testing.T) {
	got := run(t, "replace_content_mapper",
		ops.Params{"pattern": `\d{3}-\d{4}`, "repl": "<PHONE>"},
		"call 555-1234 now")
	if got != "call <PHONE> now" {
		t.Fatalf("got %q", got)
	}
	if _, err := ops.Build("replace_content_mapper", nil); err == nil {
		t.Fatal("missing pattern must error")
	}
	if _, err := ops.Build("replace_content_mapper", ops.Params{"pattern": "("}); err == nil {
		t.Fatal("bad regex must error")
	}
}

func TestRemoveCodeFencesMapper(t *testing.T) {
	in := "Intro text\n```go\nfunc main() {}\n```\nOutro text"
	got := run(t, "remove_code_fences_mapper", nil, in)
	if strings.Contains(got, "func main") || strings.Contains(got, "```") {
		t.Fatalf("fence survived: %q", got)
	}
	if !strings.Contains(got, "Intro text") || !strings.Contains(got, "Outro text") {
		t.Fatalf("content lost: %q", got)
	}
}
