package mapper

import (
	"strings"

	"repro/internal/ops"
	"repro/internal/text"
)

func init() {
	registerTransform("whitespace_normalization_mapper", "general",
		func(p ops.Params) func(string) string { return text.NormalizeWhitespace })

	registerTransform("fix_unicode_mapper", "general",
		func(p ops.Params) func(string) string { return text.FixUnicode })

	registerTransform("punctuation_normalization_mapper", "general",
		func(p ops.Params) func(string) string { return text.NormalizePunctuation })

	registerTransform("remove_non_printing_mapper", "general",
		func(p ops.Params) func(string) string { return text.RemoveNonPrinting })

	registerTransform("lowercase_mapper", "general",
		func(p ops.Params) func(string) string { return strings.ToLower })

	registerTransform("clean_html_mapper", "general,web",
		func(p ops.Params) func(string) string { return text.StripHTML })

	registerTransform("sentence_split_mapper", "general,en",
		func(p ops.Params) func(string) string {
			return func(s string) string {
				return strings.Join(text.Sentences(s), "\n")
			}
		})
}
