// Package mapper implements the Mapper operators of the pool: in-place
// text editing OPs for cleaning, normalization and transformation
// (Table 1, row "Mappers"). Every operator registers itself with the ops
// registry under its snake_case name.
package mapper

import (
	"strings"

	"repro/internal/ops"
	"repro/internal/sample"
)

// base carries the plumbing shared by all mappers: the operator name and
// the text field it processes (default "text", overridable per recipe via
// the text_key parameter, as described in Sec. 3.3).
type base struct {
	name    string
	textKey string
}

func newBase(name string, p ops.Params) base {
	return base{name: name, textKey: p.String("text_key", "text")}
}

func (b base) Name() string { return b.name }

func (b base) text(s *sample.Sample) string {
	t, _ := s.GetString(b.textKey)
	return t
}

func (b base) setText(s *sample.Sample, t string) error {
	return s.SetString(b.textKey, t)
}

// transform wraps a pure string function as a full Mapper.
type transform struct {
	base
	fn func(string) string
}

func (m *transform) Process(s *sample.Sample) error {
	return m.setText(s, m.fn(m.text(s)))
}

func registerTransform(name, usage string, mk func(p ops.Params) func(string) string) {
	ops.Register(name, ops.CategoryMapper, usage, func(p ops.Params) (ops.OP, error) {
		return &transform{base: newBase(name, p), fn: mk(p)}, nil
	})
}

// dropLines wraps a per-line predicate as a Mapper that deletes matching
// lines.
func dropLines(text string, drop func(line string) bool) string {
	lines := strings.Split(text, "\n")
	out := lines[:0]
	for _, l := range lines {
		if !drop(l) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
