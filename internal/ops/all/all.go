// Package all registers the complete built-in operator pool. Import it
// for side effects wherever recipes are executed:
//
//	import _ "repro/internal/ops/all"
package all

import (
	_ "repro/internal/ops/dedup"
	_ "repro/internal/ops/filter"
	_ "repro/internal/ops/mapper"
)
