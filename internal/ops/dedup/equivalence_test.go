package dedup

import (
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// refHash64 is the reference FNV-64a through hash/fnv, which the inline
// implementation must match bit for bit.
func refHash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func TestInlineFNVMatchesHashFnv(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "\x00\xff", "中文 mixed", strings.Repeat("x", 1000)} {
		if got, want := hash64(s), refHash64(s); got != want {
			t.Fatalf("hash64(%q) = %x, hash/fnv gives %x", s, got, want)
		}
	}
}

// TestNormalizedHashMatchesMaterialized pins the streaming signature
// hash to the reference path: hash the materialized normalization.
func TestNormalizedHashMatchesMaterialized(t *testing.T) {
	cases := []string{
		"",
		"Hello,  World!",
		"  leading and trailing\t\n ",
		"ALL CAPS with 123 and £$%^ symbols",
		"中文标点，测试。 Mixed 文本！",
		"tabs\tand\nnewlines\r\nand  runs   of spaces",
		"punctuation-only !!! ??? ...",
		"naïve FAÇADE Über ÇÉ",
		"İstanbul DİACRITIC edge",
		"invalid utf8 \xff\xfe bytes",
		strings.Repeat("Word. ", 500),
	}
	for _, lc := range []bool{true, false} {
		for _, ip := range []bool{true, false} {
			for _, s := range cases {
				want := refHash64(normalizeForHash(s, lc, ip))
				got := normalizedHash(s, lc, ip)
				if got != want {
					t.Fatalf("normalizedHash(%q, lc=%v, ip=%v) = %x, materialized path gives %x",
						s, lc, ip, got, want)
				}
			}
		}
	}
	// And across a whole seeded corpus.
	d := corpus.Web(corpus.Options{Docs: 300, Seed: 42})
	for _, s := range d.Samples {
		want := refHash64(normalizeForHash(s.Text, true, true))
		if got := normalizedHash(s.Text, true, true); got != want {
			t.Fatalf("corpus text diverges: %q", s.Text[:min(len(s.Text), 60)])
		}
	}
}

// refWordShingles is the former shingle implementation: FNV over the
// joined window text.
func refWordShingles(t string, n int) []uint64 {
	words := text.WordsLower(t)
	if len(words) < n {
		if len(words) == 0 {
			return nil
		}
		return []uint64{refHash64(strings.Join(words, " "))}
	}
	out := make([]uint64, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, refHash64(strings.Join(words[i:i+n], " ")))
	}
	return out
}

// setEqualityFingerprint reduces a shingle multiset to (distinct count,
// window count) plus pairwise equality structure against another text's
// set — what Jaccard verification actually consumes.
func jaccardOf(a, b []uint64) float64 { return jaccard(a, b) }

// TestRollingShinglesPreserveJaccard: the rolling splitmix shingles must
// produce the same Jaccard similarity as the joined-string reference for
// every candidate pair of the seeded corpus — identical windows hash
// identical, distinct windows hash distinct (no observed collisions).
func TestRollingShinglesPreserveJaccard(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 120, Seed: 7, DupExact: 0.15, DupNear: 0.15})
	const n = 5
	for i := 0; i < d.Len(); i++ {
		for j := i + 1; j < d.Len(); j += 7 { // sampled pairs
			ti, tj := d.Samples[i].Text, d.Samples[j].Text
			ref := jaccardOf(refWordShingles(ti, n), refWordShingles(tj, n))
			got := jaccardOf(wordShingles(ti, n), wordShingles(tj, n))
			if ref != got {
				t.Fatalf("jaccard diverges for pair (%d,%d): ref %v, rolling %v", i, j, ref, got)
			}
		}
	}
}

// refMinhash is the previous minhash deduplicator: identical in every
// respect except shingle hashing (joined-string FNV).
type refMinhash struct{ minhashDedup }

func (d *refMinhash) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	shingleSets := make([][]uint64, n)
	signatures := make([][]uint64, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		shingleSets[i] = refWordShingles(t, d.shingle)
		signatures[i] = d.signature(shingleSets[i])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	uf := newUnionFind(n)
	checked := make(map[[2]int]struct{})
	for b := 0; b < d.bands; b++ {
		buckets := make(map[uint64][]int)
		for i := 0; i < n; i++ {
			if len(shingleSets[i]) == 0 {
				continue
			}
			h := uint64(b) * 0x9e3779b97f4a7c15
			for r := 0; r < d.rows; r++ {
				h = splitmix64(h ^ signatures[i][b*d.rows+r])
			}
			buckets[h] = append(buckets[h], i)
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					i, j := members[x], members[y]
					key := [2]int{i, j}
					if _, done := checked[key]; done {
						continue
					}
					checked[key] = struct{}{}
					if jaccard(shingleSets[i], shingleSets[j]) >= d.threshold {
						uf.union(i, j)
					}
				}
			}
		}
	}
	kept, pairs := collapse(ds, uf)
	return kept, pairs, nil
}

// TestMinhashDupPairsMatchReference runs the shipped minhash dedup and
// the joined-string reference over seeded duplicate-heavy corpora and
// requires identical dup-pair output. The banding here uses short rows
// (rows_per_band=2, bands=32) so any pair at or above the verification
// threshold is a candidate with near-certainty under BOTH hash families
// — output equality then follows from jaccard preservation, without
// depending on which borderline pairs happen to collide in a band. (At
// the default 16×8 banding, candidate generation for pairs near the
// threshold is genuinely probabilistic and differs across hash
// families; that is inherent to LSH, not a property of the shingler.)
func TestMinhashDupPairsMatchReference(t *testing.T) {
	for _, seed := range []int64{1, 33, 77} {
		d := corpus.Web(corpus.Options{Docs: 250, Seed: seed, DupExact: 0.12, DupNear: 0.13})
		op, err := ops.Build("document_minhash_deduplicator",
			ops.Params{"rows_per_band": 2, "bands": 32})
		if err != nil {
			t.Fatal(err)
		}
		mh := op.(*minhashDedup)
		ref := &refMinhash{*mh}

		_, gotPairs, err := mh.Dedup(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, refPairs, err := ref.Dedup(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotPairs) != len(refPairs) {
			t.Fatalf("seed %d: %d dup pairs with rolling shingles, %d with reference",
				seed, len(gotPairs), len(refPairs))
		}
		for i := range gotPairs {
			if gotPairs[i] != refPairs[i] {
				t.Fatalf("seed %d: pair %d diverges: %+v vs %+v", seed, i, gotPairs[i], refPairs[i])
			}
		}
		if len(gotPairs) == 0 {
			t.Fatalf("seed %d: corpus produced no duplicates — test is vacuous", seed)
		}
	}
}

// TestDocumentDedupPairsMatchReference does the same for the exact
// deduplicator: the streaming signature hash must find exactly the
// duplicates the materialized normalization found.
func TestDocumentDedupPairsMatchReference(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 400, Seed: 9, DupExact: 0.2, DupNear: 0.1})
	op, err := ops.Build("document_deduplicator", nil)
	if err != nil {
		t.Fatal(err)
	}
	dd := op.(*documentDedup)
	_, pairs, err := dd.Dedup(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: group by materialized normalized text hash.
	first := map[uint64]int{}
	var refPairs []ops.DupPair
	for i, s := range d.Samples {
		h := refHash64(normalizeForHash(s.Text, dd.lowercase, dd.ignorePunct))
		if j, ok := first[h]; ok {
			refPairs = append(refPairs, ops.DupPair{Dropped: i, Kept: j})
			continue
		}
		first[h] = i
	}
	if len(pairs) != len(refPairs) || len(pairs) == 0 {
		t.Fatalf("%d pairs vs reference %d (must match and be non-zero)", len(pairs), len(refPairs))
	}
	for i := range pairs {
		if pairs[i] != refPairs[i] {
			t.Fatalf("pair %d diverges: %+v vs %+v", i, pairs[i], refPairs[i])
		}
	}
}

// spillCases enumerates every dedup op with parameters and a corpus size
// that makes a tiny byte budget engage the disk-backed path.
var spillCases = []struct {
	name   string
	params ops.Params
	docs   int
}{
	// The exact dedup's sorted-run buffer floors at 1024 pairs, so the
	// corpus must exceed that for runs to reach disk.
	{"document_deduplicator", nil, 3000},
	{"document_minhash_deduplicator", ops.Params{"rows_per_band": 2, "bands": 32}, 400},
	{"document_simhash_deduplicator", ops.Params{"max_distance": 8}, 400},
	{"vector_deduplicator", nil, 400},
}

// TestSpilledMatchesInMemory pins the disk-backed dedup path against the
// in-memory reference: over seeded duplicate-heavy corpora (featureless
// docs included), an op forced to spill through a tiny budget must keep
// the same samples and report the identical DupPair list. Verification
// is pure and clusters are connected components under min-index roots,
// so the kept set and pair list are independent of whether candidates
// came from resident maps or merged disk runs.
func TestSpilledMatchesInMemory(t *testing.T) {
	for _, tc := range spillCases {
		t.Run(tc.name, func(t *testing.T) {
			d := corpus.Web(corpus.Options{Docs: tc.docs, Seed: 21, DupExact: 0.12, DupNear: 0.12})
			// Featureless docs ride along: identical empties must merge and
			// distinct punctuation-only docs must survive, spilled or not.
			ds := dataset.Concat(d, dataset.FromTexts([]string{"", "", "!!! ???", "..."}))

			ref := build(t, tc.name, tc.params)
			refKept, refPairs, err := ref.Dedup(ds, 4)
			if err != nil {
				t.Fatal(err)
			}

			sp := build(t, tc.name, tc.params)
			spiller, ok := sp.(ops.Spiller)
			if !ok {
				t.Fatalf("%s does not implement ops.Spiller", tc.name)
			}
			spiller.ConfigureSpill(ops.SpillSpec{Dir: t.TempDir(), BudgetBytes: 1 << 10})
			gotKept, gotPairs, err := sp.Dedup(ds, 4)
			if err != nil {
				t.Fatal(err)
			}

			st := spiller.SpillStats()
			if !st.Spilled || st.Runs == 0 || st.SpilledBytes == 0 {
				t.Fatalf("budgeted op did not spill: %+v", st)
			}
			if len(refPairs) == 0 {
				t.Fatal("corpus produced no duplicates — test is vacuous")
			}
			if gotKept.Len() != refKept.Len() {
				t.Fatalf("kept %d spilled vs %d in-memory", gotKept.Len(), refKept.Len())
			}
			for i := range refKept.Samples {
				if gotKept.Samples[i].Text != refKept.Samples[i].Text {
					t.Fatalf("kept sample %d diverges", i)
				}
			}
			if len(gotPairs) != len(refPairs) {
				t.Fatalf("%d dup pairs spilled vs %d in-memory", len(gotPairs), len(refPairs))
			}
			for i := range refPairs {
				if gotPairs[i] != refPairs[i] {
					t.Fatalf("pair %d diverges: %+v vs %+v", i, gotPairs[i], refPairs[i])
				}
			}
		})
	}
}

// TestSpilledMatchesInMemoryRace is the same differential under the race
// detector's eye with higher parallelism, covering the concurrent
// signature/record-emission passes of the spilled path.
func TestSpilledMatchesInMemoryRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := corpus.Web(corpus.Options{Docs: 600, Seed: 5, DupExact: 0.2, DupNear: 0.1})
	for _, tc := range spillCases {
		ref := build(t, tc.name, tc.params)
		_, refPairs, err := ref.Dedup(d, 8)
		if err != nil {
			t.Fatal(err)
		}
		sp := build(t, tc.name, tc.params)
		sp.(ops.Spiller).ConfigureSpill(ops.SpillSpec{Dir: t.TempDir(), BudgetBytes: 1 << 10})
		_, gotPairs, err := sp.Dedup(d, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotPairs) != len(refPairs) {
			t.Fatalf("%s: %d pairs spilled vs %d in-memory", tc.name, len(gotPairs), len(refPairs))
		}
		for i := range refPairs {
			if gotPairs[i] != refPairs[i] {
				t.Fatalf("%s: pair %d diverges", tc.name, i)
			}
		}
	}
}
