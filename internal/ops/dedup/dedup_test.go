package dedup

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/ops"
)

func build(t *testing.T, name string, p ops.Params) ops.Deduplicator {
	t.Helper()
	op, err := ops.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	d, ok := op.(ops.Deduplicator)
	if !ok {
		t.Fatalf("%s is not a Deduplicator", name)
	}
	return d
}

func distinctTexts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("completely unique document number %d talking about topic %d with extra detail %d", i, i*7, i*13)
	}
	return out
}

func TestDocumentDedupExact(t *testing.T) {
	d := build(t, "document_deduplicator", nil)
	ds := dataset.FromTexts([]string{"hello world", "HELLO, world!", "different text entirely", "hello world"})
	kept, pairs, err := d.Dedup(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Normalization (lowercase + punctuation removal) makes 0, 1, 3 dups.
	if kept.Len() != 2 {
		t.Fatalf("kept %d, want 2", kept.Len())
	}
	if kept.Samples[0].Text != "hello world" || kept.Samples[1].Text != "different text entirely" {
		t.Fatalf("wrong survivors: %v", kept.Samples)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.Kept != 0 {
			t.Fatalf("representative should be sample 0, got %d", p.Kept)
		}
	}
}

func TestDocumentDedupCaseSensitive(t *testing.T) {
	d := build(t, "document_deduplicator", ops.Params{"lowercase": false, "ignore_non_character": false})
	ds := dataset.FromTexts([]string{"Hello", "hello"})
	kept, _, err := d.Dedup(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 2 {
		t.Fatalf("case-sensitive dedup merged distinct texts")
	}
}

func TestMinhashNearDuplicates(t *testing.T) {
	base := "the data processing system cleans large language model training corpora with many composable operators and tools for analysis"
	near := base + " extra"
	texts := append(distinctTexts(20), base, near)
	d := build(t, "document_minhash_deduplicator", ops.Params{"jaccard_threshold": 0.6})
	kept, pairs, err := d.Dedup(dataset.FromTexts(texts), 4)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 21 {
		t.Fatalf("kept %d, want 21 (one near-dup removed)", kept.Len())
	}
	if len(pairs) != 1 || pairs[0].Dropped != 21 || pairs[0].Kept != 20 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestMinhashKeepsDistinct(t *testing.T) {
	d := build(t, "document_minhash_deduplicator", nil)
	ds := dataset.FromTexts(distinctTexts(50))
	kept, pairs, err := d.Dedup(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 50 || len(pairs) != 0 {
		t.Fatalf("distinct texts merged: kept=%d pairs=%v", kept.Len(), pairs)
	}
}

func TestMinhashBadParams(t *testing.T) {
	if _, err := ops.Build("document_minhash_deduplicator", ops.Params{"bands": 0}); err == nil {
		t.Fatal("bands=0 must error")
	}
}

func TestSimhashNearDuplicates(t *testing.T) {
	base := strings.Repeat("the system processes training data with composable operators for cleaning filtering and deduplication across many heterogeneous sources ", 3)
	near := strings.Replace(base, "heterogeneous", "varied", 1)
	texts := append(distinctTexts(20), base, near)
	d := build(t, "document_simhash_deduplicator", ops.Params{"max_distance": 8})
	kept, pairs, err := d.Dedup(dataset.FromTexts(texts), 4)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 21 || len(pairs) != 1 {
		t.Fatalf("kept=%d pairs=%v", kept.Len(), pairs)
	}
}

func TestSimhashExactDuplicates(t *testing.T) {
	d := build(t, "document_simhash_deduplicator", nil)
	ds := dataset.FromTexts([]string{"aaa bbb ccc ddd eee", "unrelated text about gardens", "aaa bbb ccc ddd eee"})
	kept, pairs, err := d.Dedup(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 2 || len(pairs) != 1 || pairs[0].Dropped != 2 {
		t.Fatalf("kept=%d pairs=%v", kept.Len(), pairs)
	}
}

func TestVectorDedup(t *testing.T) {
	base := "apples oranges bananas grapes melons berries peaches plums apricots cherries"
	shuffled := "cherries apricots plums peaches berries melons grapes bananas oranges apples"
	texts := append(distinctTexts(15), base, shuffled)
	d := build(t, "vector_deduplicator", ops.Params{"cosine_threshold": 0.95})
	kept, pairs, err := d.Dedup(dataset.FromTexts(texts), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bag-of-words vectors ignore order: the shuffle is a perfect duplicate.
	if kept.Len() != 16 || len(pairs) != 1 {
		t.Fatalf("kept=%d pairs=%v", kept.Len(), pairs)
	}
}

func TestVectorDedupKeepsDifferent(t *testing.T) {
	d := build(t, "vector_deduplicator", nil)
	ds := dataset.FromTexts(distinctTexts(30))
	kept, _, err := d.Dedup(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 30 {
		t.Fatalf("distinct docs merged: %d", kept.Len())
	}
}

func TestEmptyDatasets(t *testing.T) {
	for _, name := range []string{
		"document_deduplicator", "document_minhash_deduplicator",
		"document_simhash_deduplicator", "vector_deduplicator",
	} {
		d := build(t, name, nil)
		kept, pairs, err := d.Dedup(dataset.New(nil), 2)
		if err != nil {
			t.Fatalf("%s on empty: %v", name, err)
		}
		if kept.Len() != 0 || len(pairs) != 0 {
			t.Fatalf("%s on empty: kept=%d", name, kept.Len())
		}
	}
}

func TestEmptyTextSamples(t *testing.T) {
	// Featureless documents (empty or punctuation-only) follow exact-match
	// semantics on every dedup method: byte-identical featureless docs
	// merge — consistent with document_deduplicator — while distinct
	// featureless texts never collapse into one (near-dup similarity is
	// undefined on empty feature sets, so only exact equality counts).
	ds := dataset.FromTexts([]string{"", "real content here about things", "", "!!! ???"})
	for _, name := range []string{"document_minhash_deduplicator", "document_simhash_deduplicator", "vector_deduplicator"} {
		d := build(t, name, nil)
		kept, pairs, err := d.Dedup(ds, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if kept.Len() != 3 {
			t.Fatalf("%s: kept=%d, want 3 (identical empties merge, distinct featureless stays)", name, kept.Len())
		}
		if len(pairs) != 1 || pairs[0] != (ops.DupPair{Dropped: 2, Kept: 0}) {
			t.Fatalf("%s: pairs=%v, want [{2 0}]", name, pairs)
		}
	}
	// Exact dedup merges identical empties the same way; its punctuation
	// normalization additionally folds "!!! ???" into the empty cluster.
	d := build(t, "document_deduplicator", nil)
	kept, _, err := d.Dedup(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 2 {
		t.Fatalf("exact dedup should merge empties: kept=%d", kept.Len())
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(1, 3)
	uf.union(3, 5)
	uf.union(4, 2)
	if uf.find(5) != 1 || uf.find(3) != 1 {
		t.Fatalf("cluster root should be the smallest index: find(5)=%d", uf.find(5))
	}
	if uf.find(2) != 2 || uf.find(4) != 2 {
		t.Fatalf("second cluster wrong: find(4)=%d", uf.find(4))
	}
	if uf.find(0) != 0 {
		t.Fatal("singleton moved")
	}
}

func TestJaccard(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	b := []uint64{3, 4, 5, 6}
	if j := jaccard(a, b); j != 2.0/6.0 {
		t.Fatalf("jaccard = %v", j)
	}
	if j := jaccard(a, a); j != 1 {
		t.Fatalf("self jaccard = %v", j)
	}
	if j := jaccard(nil, a); j != 0 {
		t.Fatalf("empty jaccard = %v", j)
	}
	// Duplicated elements in the multiset must not skew the set semantics.
	if j := jaccard([]uint64{1, 1, 2}, []uint64{1, 2, 2}); j != 1 {
		t.Fatalf("multiset jaccard = %v", j)
	}
}

func TestNormalizeForHash(t *testing.T) {
	a := normalizeForHash("Hello,   World!", true, true)
	b := normalizeForHash("hello world", true, true)
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
	c := normalizeForHash("Hello", false, false)
	if c != "Hello" {
		t.Fatalf("no-op normalization changed text: %q", c)
	}
}

// Property: dedup never loses non-duplicate mass — kept + pairs == total.
func TestPropertyDedupConservation(t *testing.T) {
	f := func(raw []string) bool {
		ds := dataset.FromTexts(raw)
		d, err := ops.Build("document_deduplicator", nil)
		if err != nil {
			return false
		}
		kept, pairs, err := d.(ops.Deduplicator).Dedup(ds, 2)
		if err != nil {
			return false
		}
		return kept.Len()+len(pairs) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dedup is idempotent — running twice changes nothing.
func TestPropertyDedupIdempotent(t *testing.T) {
	f := func(raw []string) bool {
		ds := dataset.FromTexts(raw)
		op, _ := ops.Build("document_deduplicator", nil)
		d := op.(ops.Deduplicator)
		once, _, err := d.Dedup(ds, 2)
		if err != nil {
			return false
		}
		twice, pairs, err := d.Dedup(once, 2)
		if err != nil {
			return false
		}
		return twice.Len() == once.Len() && len(pairs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: exact duplicates never survive the MinHash deduplicator
// (identical shingle sets collide in every band and have Jaccard 1).
func TestPropertyMinhashCatchesExactDuplicates(t *testing.T) {
	base := distinctTexts(12)
	f := func(pick uint8) bool {
		texts := append([]string{}, base...)
		texts = append(texts, base[int(pick)%len(base)])
		op, err := ops.Build("document_minhash_deduplicator", nil)
		if err != nil {
			return false
		}
		kept, pairs, err := op.(ops.Deduplicator).Dedup(dataset.FromTexts(texts), 2)
		if err != nil {
			return false
		}
		return kept.Len() == len(base) && len(pairs) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
