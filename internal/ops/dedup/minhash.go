package dedup

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
)

func init() {
	ops.Register("document_minhash_deduplicator", ops.CategoryDeduplicator, "general,web",
		func(p ops.Params) (ops.OP, error) {
			bands := p.Int("bands", 16)
			rows := p.Int("rows_per_band", 8)
			if bands <= 0 || rows <= 0 {
				return nil, fmt.Errorf("bands and rows_per_band must be positive")
			}
			if p.Int("shingle_size", 5) <= 0 {
				return nil, fmt.Errorf("shingle_size must be positive")
			}
			return &minhashDedup{
				textKey:   p.String("text_key", "text"),
				shingle:   p.Int("shingle_size", 5),
				bands:     bands,
				rows:      rows,
				threshold: p.Float("jaccard_threshold", 0.7),
			}, nil
		})
}

// minhashDedup detects near-duplicates with MinHash signatures and LSH
// banding (Broder's scheme, cited as [8] in the paper). Candidate pairs
// that collide in any band are verified against the true Jaccard
// similarity of their shingle sets before being merged.
type minhashDedup struct {
	textKey   string
	shingle   int
	bands     int
	rows      int
	threshold float64
}

func (d *minhashDedup) Name() string { return "document_minhash_deduplicator" }

func (d *minhashDedup) signatureSize() int { return d.bands * d.rows }

// signature computes the MinHash signature of a shingle set using k hash
// families derived from splitmix64.
func (d *minhashDedup) signature(shingles []uint64) []uint64 {
	k := d.signatureSize()
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, sh := range shingles {
		x := sh
		for i := 0; i < k; i++ {
			x = splitmix64(x + uint64(i)*0x9e3779b97f4a7c15)
			if x < sig[i] {
				sig[i] = x
			}
		}
	}
	return sig
}

func (d *minhashDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	shingleSets := make([][]uint64, n)
	signatures := make([][]uint64, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		shingleSets[i] = wordShingles(t, d.shingle)
		signatures[i] = d.signature(shingleSets[i])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	checked := make(map[[2]int]struct{})
	for b := 0; b < d.bands; b++ {
		buckets := make(map[uint64][]int)
		for i := 0; i < n; i++ {
			if len(shingleSets[i]) == 0 {
				continue
			}
			h := uint64(b) * 0x9e3779b97f4a7c15
			for r := 0; r < d.rows; r++ {
				h = splitmix64(h ^ signatures[i][b*d.rows+r])
			}
			buckets[h] = append(buckets[h], i)
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					i, j := members[x], members[y]
					key := [2]int{i, j}
					if _, done := checked[key]; done {
						continue
					}
					checked[key] = struct{}{}
					if jaccard(shingleSets[i], shingleSets[j]) >= d.threshold {
						uf.union(i, j)
					}
				}
			}
		}
	}
	kept, pairs := collapse(ds, uf)
	return kept, pairs, nil
}
