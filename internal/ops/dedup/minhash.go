package dedup

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/spill"
)

func init() {
	ops.Register("document_minhash_deduplicator", ops.CategoryDeduplicator, "general,web",
		func(p ops.Params) (ops.OP, error) {
			bands := p.Int("bands", 16)
			rows := p.Int("rows_per_band", 8)
			if bands <= 0 || rows <= 0 {
				return nil, fmt.Errorf("bands and rows_per_band must be positive")
			}
			if p.Int("shingle_size", 5) <= 0 {
				return nil, fmt.Errorf("shingle_size must be positive")
			}
			return &minhashDedup{
				textKey:   p.String("text_key", "text"),
				shingle:   p.Int("shingle_size", 5),
				bands:     bands,
				rows:      rows,
				threshold: p.Float("jaccard_threshold", 0.7),
			}, nil
		})
}

// minhashDedup detects near-duplicates with MinHash signatures and LSH
// banding (Broder's scheme, cited as [8] in the paper). Candidate pairs
// that collide in any band are verified against the true Jaccard
// similarity of their shingle sets before being merged.
type minhashDedup struct {
	spillState
	textKey   string
	shingle   int
	bands     int
	rows      int
	threshold float64
}

var _ ops.Spiller = (*minhashDedup)(nil)

func (d *minhashDedup) Name() string { return "document_minhash_deduplicator" }

func (d *minhashDedup) signatureSize() int { return d.bands * d.rows }

// signature computes the MinHash signature of a shingle set using k hash
// families derived from splitmix64.
func (d *minhashDedup) signature(shingles []uint64) []uint64 {
	k := d.signatureSize()
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, sh := range shingles {
		x := sh
		for i := 0; i < k; i++ {
			x = splitmix64(x + uint64(i)*0x9e3779b97f4a7c15)
			if x < sig[i] {
				sig[i] = x
			}
		}
	}
	return sig
}

// bandKey folds one band's signature rows into its LSH bucket key. The
// band index seeds the fold, so bucket spaces of different bands are
// disjoint (modulo 64-bit collisions) and the spilled path can group by
// the key alone.
func (d *minhashDedup) bandKey(sig []uint64, b int) uint64 {
	h := uint64(b) * 0x9e3779b97f4a7c15
	for r := 0; r < d.rows; r++ {
		h = splitmix64(h ^ sig[b*d.rows+r])
	}
	return h
}

// shingleEstBytes is the assumed resident footprint of one document's
// shingle set when estimating whether the in-memory index fits the
// spill budget.
const shingleEstBytes = 512

func (d *minhashDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	if d.spillEngaged(int64(n) * int64(d.signatureSize()*8+shingleEstBytes)) {
		return d.dedupSpilled(ds, np)
	}
	shingleSets := make([][]uint64, n)
	signatures := make([][]uint64, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		shingleSets[i] = wordShingles(t, d.shingle)
		if len(shingleSets[i]) > 0 {
			signatures[i] = d.signature(shingleSets[i])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	verify := func(i, j int) bool {
		return jaccard(shingleSets[i], shingleSets[j]) >= d.threshold
	}
	for b := 0; b < d.bands; b++ {
		buckets := make(map[uint64][]int)
		for i := 0; i < n; i++ {
			if len(shingleSets[i]) == 0 {
				continue
			}
			h := d.bandKey(signatures[i], b)
			buckets[h] = append(buckets[h], i)
		}
		for _, members := range buckets {
			if len(members) < 2 {
				continue
			}
			verifyMembers(uf, members, verify)
		}
	}
	mergeFeatureless(ds, d.textKey, func(i int) bool { return len(shingleSets[i]) == 0 }, uf)
	kept, pairs := collapse(ds, uf)
	d.record(spill.Stats{})
	return kept, pairs, nil
}

// dedupSpilled is the external-memory path: band keys stream into a
// partitioned on-disk LSH table instead of retaining every signature and
// shingle set; verification recomputes shingle sets through a bounded
// feature cache. Candidate groups are the same band-key collisions the
// in-memory path sees, and union-find clustering is order-independent,
// so the output is identical.
func (d *minhashDedup) dedupSpilled(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	lsh := spill.NewLSH(d.spec.Dir, int64(n)*int64(d.bands), d.spec.BudgetBytes/2)
	defer lsh.Close()
	featureless := make([]bool, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		sh := wordShingles(t, d.shingle)
		if len(sh) == 0 {
			featureless[i] = true
			return nil
		}
		sig := d.signature(sh)
		for b := 0; b < d.bands; b++ {
			if err := lsh.Add(d.bandKey(sig, b), uint64(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	feats := newFeatCache(d.spec.BudgetBytes/4, func(i int) []uint64 {
		t, _ := ds.Samples[i].GetString(d.textKey)
		return wordShingles(t, d.shingle)
	}, func(v []uint64) int64 { return int64(len(v)*8 + 64) })
	verify := func(i, j int) bool {
		return jaccard(feats.get(i), feats.get(j)) >= d.threshold
	}
	var members []int
	err = lsh.ForEachPartition(func(pairs []spill.Pair) error {
		forEachGroup(pairs, &members, func(m []int) {
			verifyMembers(uf, m, verify)
		})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	mergeFeatureless(ds, d.textKey, func(i int) bool { return featureless[i] }, uf)
	kept, pairs := collapse(ds, uf)
	d.record(lsh.Stats())
	return kept, pairs, nil
}
