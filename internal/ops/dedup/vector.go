package dedup

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

func init() {
	ops.Register("vector_deduplicator", ops.CategoryDeduplicator, "general",
		func(p ops.Params) (ops.OP, error) {
			return &vectorDedup{
				textKey:   p.String("text_key", "text"),
				dim:       p.Int("dim", 256),
				threshold: p.Float("cosine_threshold", 0.9),
				planes:    p.Int("planes", 16),
			}, nil
		})
}

// vectorDedup is the "vector-based" comparison method of Table 1: each
// document becomes a hashed term-frequency vector; random-hyperplane
// signatures generate candidates; candidates are verified by exact cosine
// similarity.
type vectorDedup struct {
	textKey   string
	dim       int
	threshold float64
	planes    int
}

func (d *vectorDedup) Name() string { return "vector_deduplicator" }

// vectorize builds the L2-normalized hashed TF vector of t.
func (d *vectorDedup) vectorize(t string) []float64 {
	v := make([]float64, d.dim)
	words := text.WordsLower(t)
	if len(words) == 0 {
		return v
	}
	for _, w := range words {
		v[int(hash64(w)%uint64(d.dim))]++
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// planeSignature computes the random-hyperplane bit signature of v. The
// hyperplanes are pseudo-random unit-ish vectors derived from splitmix64,
// fixed across the dataset.
func (d *vectorDedup) planeSignature(v []float64) uint32 {
	var sig uint32
	for p := 0; p < d.planes; p++ {
		var dot float64
		for i, x := range v {
			if x == 0 {
				continue
			}
			h := splitmix64(uint64(p)*0x9e3779b97f4a7c15 + uint64(i))
			// Map the hash to a pseudo-random coefficient in [-1, 1).
			coef := float64(int64(h))/math.MaxInt64 - 0
			dot += x * coef
		}
		if dot >= 0 {
			sig |= 1 << uint(p)
		}
	}
	return sig
}

func cosineVec(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

func (d *vectorDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	vecs := make([][]float64, n)
	sigs := make([]uint32, n)
	empty := make([]bool, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		vecs[i] = d.vectorize(t)
		sigs[i] = d.planeSignature(vecs[i])
		empty[i] = len(text.WordsLower(t)) == 0
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	checked := make(map[[2]int]struct{})
	// Candidates: identical signatures, plus signatures differing by one
	// bit (near-misses across a single hyperplane).
	buckets := make(map[uint32][]int, n)
	for i := 0; i < n; i++ {
		if empty[i] {
			continue
		}
		buckets[sigs[i]] = append(buckets[sigs[i]], i)
	}
	verify := func(i, j int) {
		key := [2]int{i, j}
		if i > j {
			key = [2]int{j, i}
		}
		if _, done := checked[key]; done {
			return
		}
		checked[key] = struct{}{}
		if cosineVec(vecs[i], vecs[j]) >= d.threshold {
			uf.union(i, j)
		}
	}
	for sig, members := range buckets {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				verify(members[x], members[y])
			}
		}
		for p := 0; p < d.planes; p++ {
			if others, ok := buckets[sig^(1<<uint(p))]; ok {
				for _, i := range members {
					for _, j := range others {
						if i < j {
							verify(i, j)
						}
					}
				}
			}
		}
	}
	kept, pairs := collapse(ds, uf)
	return kept, pairs, nil
}
