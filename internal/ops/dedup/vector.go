package dedup

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/spill"
	"repro/internal/text"
)

func init() {
	ops.Register("vector_deduplicator", ops.CategoryDeduplicator, "general",
		func(p ops.Params) (ops.OP, error) {
			return &vectorDedup{
				textKey:   p.String("text_key", "text"),
				dim:       p.Int("dim", 256),
				threshold: p.Float("cosine_threshold", 0.9),
				planes:    p.Int("planes", 16),
			}, nil
		})
}

// vectorDedup is the "vector-based" comparison method of Table 1: each
// document becomes a hashed term-frequency vector; random-hyperplane
// signatures generate candidates; candidates are verified by exact cosine
// similarity.
type vectorDedup struct {
	spillState
	textKey   string
	dim       int
	threshold float64
	planes    int
}

var _ ops.Spiller = (*vectorDedup)(nil)

func (d *vectorDedup) Name() string { return "vector_deduplicator" }

// vectorize builds the L2-normalized hashed TF vector of t.
func (d *vectorDedup) vectorize(t string) []float64 {
	v := make([]float64, d.dim)
	words := text.WordsLower(t)
	if len(words) == 0 {
		return v
	}
	for _, w := range words {
		v[int(hash64(w)%uint64(d.dim))]++
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// planeSignature computes the random-hyperplane bit signature of v. The
// hyperplanes are pseudo-random unit-ish vectors derived from splitmix64,
// fixed across the dataset.
func (d *vectorDedup) planeSignature(v []float64) uint32 {
	var sig uint32
	for p := 0; p < d.planes; p++ {
		var dot float64
		for i, x := range v {
			if x == 0 {
				continue
			}
			h := splitmix64(uint64(p)*0x9e3779b97f4a7c15 + uint64(i))
			// Map the hash to a pseudo-random coefficient in [-1, 1).
			coef := float64(int64(h))/math.MaxInt64 - 0
			dot += x * coef
		}
		if dot >= 0 {
			sig |= 1 << uint(p)
		}
	}
	return sig
}

func cosineVec(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

func (d *vectorDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	if d.spillEngaged(int64(n) * int64(d.dim*8+64)) {
		return d.dedupSpilled(ds, np)
	}
	vecs := make([][]float64, n)
	sigs := make([]uint32, n)
	empty := make([]bool, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		vecs[i] = d.vectorize(t)
		sigs[i] = d.planeSignature(vecs[i])
		empty[i] = len(text.WordsLower(t)) == 0
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	// Candidates: identical signatures, plus signatures differing by one
	// bit (near-misses across a single hyperplane).
	buckets := make(map[uint32][]int, n)
	for i := 0; i < n; i++ {
		if empty[i] {
			continue
		}
		buckets[sigs[i]] = append(buckets[sigs[i]], i)
	}
	// Union-find roots gate the verify: already-merged pairs are never
	// re-checked, so no checked-pair set is needed.
	check := func(i, j int) {
		if uf.find(i) == uf.find(j) {
			return
		}
		if cosineVec(vecs[i], vecs[j]) >= d.threshold {
			uf.union(i, j)
		}
	}
	for sig, members := range buckets {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				check(members[x], members[y])
			}
		}
		for p := 0; p < d.planes; p++ {
			if others, ok := buckets[sig^(1<<uint(p))]; ok {
				for _, i := range members {
					for _, j := range others {
						if i < j {
							check(i, j)
						}
					}
				}
			}
		}
	}
	mergeFeatureless(ds, d.textKey, func(i int) bool { return empty[i] }, uf)
	kept, pairs := collapse(ds, uf)
	d.record(spill.Stats{})
	return kept, pairs, nil
}

// Spilled-path record encoding: the value carries the document index
// shifted left one bit, with bit 0 marking a "home" record (the doc's
// own signature bucket) versus a "virtual" one (a one-bit neighbor
// probe). A candidate pair is enumerated exactly once: home-home pairs
// from the smaller index, home-virtual pairs only when the home index is
// smaller — the same single-enumeration rule the in-memory neighbor
// probe applies, so both paths see identical candidate sets.
const vectorHomeFlag = 1

// dedupSpilled is the external-memory path: home and neighbor-probe
// records stream into the partitioned on-disk LSH table instead of
// retaining every TF vector; verification recomputes vectors through a
// bounded feature cache.
func (d *vectorDedup) dedupSpilled(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	n := ds.Len()
	lsh := spill.NewLSH(d.spec.Dir, int64(n)*int64(d.planes+1), d.spec.BudgetBytes/2)
	defer lsh.Close()
	featureless := make([]bool, n)
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		t, _ := s.GetString(d.textKey)
		if len(text.WordsLower(t)) == 0 {
			featureless[i] = true
			return nil
		}
		sig := d.planeSignature(d.vectorize(t))
		if err := lsh.Add(uint64(sig), uint64(i)<<1|vectorHomeFlag); err != nil {
			return err
		}
		for p := 0; p < d.planes; p++ {
			if err := lsh.Add(uint64(sig^(1<<uint(p))), uint64(i)<<1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	uf := newUnionFind(n)
	feats := newFeatCache(d.spec.BudgetBytes/4, func(i int) []float64 {
		t, _ := ds.Samples[i].GetString(d.textKey)
		return d.vectorize(t)
	}, func(v []float64) int64 { return int64(len(v)*8 + 48) })
	verify := func(i, j int) bool {
		return cosineVec(feats.get(i), feats.get(j)) >= d.threshold
	}
	var vals []uint64
	err = lsh.ForEachPartition(func(pairs []spill.Pair) error {
		forEachFlaggedGroup(pairs, &vals, func(group []uint64) {
			processFlaggedGroup(group, uf, verify)
		})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	mergeFeatureless(ds, d.textKey, func(i int) bool { return featureless[i] }, uf)
	kept, pairs := collapse(ds, uf)
	d.record(lsh.Stats())
	return kept, pairs, nil
}

// forEachFlaggedGroup walks runs of equal keys, handing each run's raw
// flagged values to fn. The vals scratch is reused across groups.
func forEachFlaggedGroup(pairs []spill.Pair, vals *[]uint64, fn func(vals []uint64)) {
	for s := 0; s < len(pairs); {
		e := s + 1
		for e < len(pairs) && pairs[e].K == pairs[s].K {
			e++
		}
		if e-s >= 2 {
			v := (*vals)[:0]
			for _, p := range pairs[s:e] {
				v = append(v, p.V)
			}
			*vals = v
			fn(v)
		}
		s = e
	}
}

// processFlaggedGroup enumerates candidate pairs within one signature
// group: for every home record, every other record with a larger
// document index is a candidate. That yields home-home pairs once each
// and home-virtual pairs exactly when the home index is smaller,
// matching the in-memory probe's enumeration.
func processFlaggedGroup(vals []uint64, uf *unionFind, verify func(i, j int) bool) {
	for x := 0; x < len(vals); x++ {
		if vals[x]&vectorHomeFlag == 0 {
			continue
		}
		i := int(vals[x] >> 1)
		for y := 0; y < len(vals); y++ {
			j := int(vals[y] >> 1)
			if j <= i {
				continue
			}
			if uf.find(i) == uf.find(j) {
				continue
			}
			if verify(i, j) {
				uf.union(i, j)
			}
		}
	}
}
