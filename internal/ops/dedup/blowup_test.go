package dedup

import (
	"runtime"
	"testing"

	"repro/internal/dataset"
)

// TestAllDuplicatesBoundedAllocations is the regression gate for the
// O(n²) pair-map blowup: the LSH deduplicators used to track every
// verified (i,j) pair in a `checked` map, so an all-duplicates corpus —
// one bucket of n members per band — allocated O(n²) map entries before
// producing a single cluster. Verification now consults union-find roots
// instead (members already in one cluster are skipped without state), so
// total allocations on the adversarial corpus must stay near-linear in
// n. The 64 MiB bound is ~40x the honest footprint of n=2000 signatures
// and shingles, and far below the multi-hundred-MiB pair maps the old
// code built for the same input.
func TestAllDuplicatesBoundedAllocations(t *testing.T) {
	const n = 2000
	texts := make([]string, n)
	for i := range texts {
		texts[i] = "this exact document is repeated verbatim across the whole corpus to stress duplicate verification"
	}
	for _, name := range []string{
		"document_minhash_deduplicator",
		"document_simhash_deduplicator",
		"vector_deduplicator",
	} {
		t.Run(name, func(t *testing.T) {
			d := build(t, name, nil)
			ds := dataset.FromTexts(texts)
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			kept, pairs, err := d.Dedup(ds, 1)
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			if kept.Len() != 1 || len(pairs) != n-1 {
				t.Fatalf("kept=%d pairs=%d, want 1 and %d", kept.Len(), len(pairs), n-1)
			}
			alloc := after.TotalAlloc - before.TotalAlloc
			if alloc > 64<<20 {
				t.Fatalf("all-duplicates corpus allocated %d MiB (> 64 MiB): pair-map blowup is back",
					alloc>>20)
			}
		})
	}
}
