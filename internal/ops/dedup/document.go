package dedup

import (
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
)

func init() {
	ops.Register("document_deduplicator", ops.CategoryDeduplicator, "general",
		func(p ops.Params) (ops.OP, error) {
			return &documentDedup{
				textKey:     p.String("text_key", "text"),
				lowercase:   p.Bool("lowercase", true),
				ignorePunct: p.Bool("ignore_non_character", true),
			}, nil
		})
}

// documentDedup removes exact duplicates by hashing the (normalized)
// document text.
type documentDedup struct {
	textKey     string
	lowercase   bool
	ignorePunct bool
}

func (d *documentDedup) Name() string { return "document_deduplicator" }

// Signature implements ops.StreamDeduper: exact duplicates are exactly
// the samples whose normalized-text hashes collide, so the streaming
// engine can dedup against a shared signature index without a barrier.
// The hash streams over the text — normalization never materializes.
func (d *documentDedup) Signature(s *sample.Sample) uint64 {
	t, _ := s.GetString(d.textKey)
	return normalizedHash(t, d.lowercase, d.ignorePunct)
}

var _ ops.StreamDeduper = (*documentDedup)(nil)

func (d *documentDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	hashes := make([]uint64, ds.Len())
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		hashes[i] = d.Signature(s)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	uf := newUnionFind(ds.Len())
	first := make(map[uint64]int, ds.Len())
	for i, h := range hashes {
		if j, ok := first[h]; ok {
			uf.union(j, i)
			continue
		}
		first[h] = i
	}
	kept, pairs := collapse(ds, uf)
	return kept, pairs, nil
}
