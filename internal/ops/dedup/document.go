package dedup

import (
	"sync"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/spill"
)

func init() {
	ops.Register("document_deduplicator", ops.CategoryDeduplicator, "general",
		func(p ops.Params) (ops.OP, error) {
			return &documentDedup{
				textKey:     p.String("text_key", "text"),
				lowercase:   p.Bool("lowercase", true),
				ignorePunct: p.Bool("ignore_non_character", true),
			}, nil
		})
}

// documentDedup removes exact duplicates by hashing the (normalized)
// document text.
type documentDedup struct {
	spillState
	textKey     string
	lowercase   bool
	ignorePunct bool
}

func (d *documentDedup) Name() string { return "document_deduplicator" }

// Signature implements ops.StreamDeduper: exact duplicates are exactly
// the samples whose normalized-text hashes collide, so the streaming
// engine can dedup against a shared signature index without a barrier.
// The hash streams over the text — normalization never materializes.
func (d *documentDedup) Signature(s *sample.Sample) uint64 {
	t, _ := s.GetString(d.textKey)
	return normalizedHash(t, d.lowercase, d.ignorePunct)
}

var (
	_ ops.StreamDeduper = (*documentDedup)(nil)
	_ ops.Spiller       = (*documentDedup)(nil)
)

// hashEntryBytes estimates the resident cost of one signature in the
// in-memory first-occurrence map (bucket slot plus overhead).
const hashEntryBytes = 48

func (d *documentDedup) Dedup(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	if d.spillEngaged(int64(ds.Len()) * hashEntryBytes) {
		return d.dedupSpilled(ds, np)
	}
	hashes := make([]uint64, ds.Len())
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		hashes[i] = d.Signature(s)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	uf := newUnionFind(ds.Len())
	first := make(map[uint64]int, ds.Len())
	for i, h := range hashes {
		if j, ok := first[h]; ok {
			uf.union(j, i)
			continue
		}
		first[h] = i
	}
	kept, pairs := collapse(ds, uf)
	d.record(spill.Stats{})
	return kept, pairs, nil
}

// dedupSpilled is the external-memory path: (hash, index) records flow
// into budget-bounded sorted runs; the k-way merge then visits each hash
// group in ascending index order, so the first record of a group is its
// cluster's kept representative — identical output to the in-memory map.
func (d *documentDedup) dedupSpilled(ds *dataset.Dataset, np int) (*dataset.Dataset, []ops.DupPair, error) {
	runs := spill.NewSortedRuns(d.spec.Dir, d.spec.BudgetBytes)
	defer runs.Close()
	var mu sync.Mutex
	err := ds.MapIndexed(np, func(i int, s *sample.Sample) error {
		h := d.Signature(s)
		mu.Lock()
		defer mu.Unlock()
		return runs.Add(h, uint64(i))
	})
	if err != nil {
		return nil, nil, err
	}
	uf := newUnionFind(ds.Len())
	root := -1
	var cur uint64
	err = runs.Merge(func(k, v uint64) error {
		if root < 0 || k != cur {
			cur, root = k, int(v)
			return nil
		}
		uf.union(root, int(v))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	kept, pairs := collapse(ds, uf)
	d.record(runs.Stats())
	return kept, pairs, nil
}
