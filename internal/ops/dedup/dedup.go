// Package dedup implements the Deduplicator operators: exact hashing,
// MinHash-LSH and SimHash near-duplicate detection, and a hashed TF-vector
// cosine deduplicator — the "hash-based and vector-based" methods named in
// Table 1. All deduplicators keep the first occurrence of each duplicate
// cluster and report the removed (dropped, kept) pairs for the tracer.
package dedup

import (
	"math/bits"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/spill"
	"repro/internal/text"
)

// spillState is embedded by every deduplicator to satisfy ops.Spiller:
// the planner hands each dedup node a slice of the -target-mem-mb budget
// and the op switches to its disk-backed path when the estimated index
// footprint exceeds it.
type spillState struct {
	spec  ops.SpillSpec
	stats ops.SpillStats
}

func (s *spillState) ConfigureSpill(spec ops.SpillSpec) { s.spec = spec }

func (s *spillState) SpillStats() ops.SpillStats { return s.stats }

// spillEngaged decides whether the disk-backed path should run for an
// estimated in-memory index of estBytes.
func (s *spillState) spillEngaged(estBytes int64) bool {
	return s.spec.Dir != "" && s.spec.BudgetBytes > 0 && estBytes > s.spec.BudgetBytes
}

// record captures the spill structures' accounting for telemetry.
func (s *spillState) record(st spill.Stats) {
	s.stats = ops.SpillStats{Spilled: st.Runs > 0, Runs: st.Runs, SpilledBytes: st.Bytes}
}

// verifyMembers checks every candidate pair in one bucket, consulting
// the union-find roots before the similarity verify so already-merged
// pairs are never re-checked. This replaces the old per-run checked-pair
// map, which grew O(n^2) on duplicate-heavy corpora — the exact inputs
// dedup exists for.
func verifyMembers(uf *unionFind, members []int, verify func(i, j int) bool) {
	for x := 0; x < len(members); x++ {
		for y := x + 1; y < len(members); y++ {
			i, j := members[x], members[y]
			if uf.find(i) == uf.find(j) {
				continue
			}
			if verify(i, j) {
				uf.union(i, j)
			}
		}
	}
}

// mergeFeatureless unions documents that yield no features (no words, so
// no shingles, fingerprints or TF mass) when their raw text under
// textKey is byte-identical. Near-duplicate similarity is undefined on
// empty feature sets, but exact-duplicate featureless docs — empty
// strings, punctuation-only noise — must still merge, exactly as
// document_deduplicator merges them; distinct featureless texts stay
// separate.
func mergeFeatureless(ds *dataset.Dataset, textKey string, featureless func(int) bool, uf *unionFind) {
	var first map[uint64]int
	for i := 0; i < ds.Len(); i++ {
		if !featureless(i) {
			continue
		}
		t, _ := ds.Samples[i].GetString(textKey)
		h := hash64(t)
		if first == nil {
			first = make(map[uint64]int)
		}
		if j, ok := first[h]; ok {
			uf.union(j, i)
		} else {
			first[h] = i
		}
	}
}

// forEachGroup walks runs of equal keys in (key, value)-sorted spill
// records, handing each multi-member run's document indexes (ascending)
// to fn. The members scratch is reused across groups.
func forEachGroup(pairs []spill.Pair, members *[]int, fn func(members []int)) {
	for s := 0; s < len(pairs); {
		e := s + 1
		for e < len(pairs) && pairs[e].K == pairs[s].K {
			e++
		}
		if e-s >= 2 {
			m := (*members)[:0]
			for _, p := range pairs[s:e] {
				m = append(m, int(p.V))
			}
			*members = m
			fn(m)
		}
		s = e
	}
}

// featCache is a byte-bounded FIFO cache for per-document features
// recomputed on the spilled verification path (shingle sets, TF
// vectors). Loaders are pure, so hits versus misses never change
// results — eviction order only affects speed.
type featCache[T any] struct {
	budget int64
	used   int64
	m      map[int]T
	order  []int
	head   int
	load   func(int) T
	size   func(T) int64
}

func newFeatCache[T any](budget int64, load func(int) T, size func(T) int64) *featCache[T] {
	if budget < 1<<16 {
		budget = 1 << 16
	}
	return &featCache[T]{budget: budget, m: make(map[int]T), load: load, size: size}
}

func (c *featCache[T]) get(i int) T {
	if v, ok := c.m[i]; ok {
		return v
	}
	v := c.load(i)
	c.m[i] = v
	c.used += c.size(v)
	c.order = append(c.order, i)
	for c.used > c.budget && c.head < len(c.order) {
		old := c.order[c.head]
		c.head++
		if ov, ok := c.m[old]; ok {
			c.used -= c.size(ov)
			delete(c.m, old)
		}
	}
	if c.head > len(c.order)/2 && c.head > 1024 {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
	return v
}

// unionFind is a standard disjoint-set with path compression, used to
// cluster duplicate candidates.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Keep the smaller index as root so "first occurrence wins".
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// collapse builds the deduplicated dataset from a union-find over sample
// indexes: the lowest index of each cluster is kept.
func collapse(d *dataset.Dataset, uf *unionFind) (*dataset.Dataset, []ops.DupPair) {
	kept := make([]*sample.Sample, 0, d.Len())
	var pairs []ops.DupPair
	for i, s := range d.Samples {
		root := uf.find(i)
		if root == i {
			kept = append(kept, s)
			continue
		}
		pairs = append(pairs, ops.DupPair{Dropped: i, Kept: root})
	}
	return dataset.New(kept), pairs
}

// splitmix64 is the standard avalanche mixer; it derives the independent
// hash families for MinHash from a single base hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 is FNV-64a over s (inline, allocation-free).
func hash64(s string) uint64 { return text.HashString(s) }

func normalizeForHash(t string, lowercase, ignorePunct bool) string {
	if lowercase {
		t = strings.ToLower(t)
	}
	if ignorePunct {
		t = strings.Map(func(r rune) rune {
			if unicode.IsLetter(r) || unicode.IsDigit(r) || unicode.IsSpace(r) {
				return r
			}
			return -1
		}, t)
	}
	return strings.Join(strings.Fields(t), " ")
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// normalizedHash streams hash64(normalizeForHash(t, ...)) without
// materializing the normalized string: runes are lower-cased and
// punctuation-filtered on the fly, whitespace runs collapse to single
// separators, and the FNV-64a state advances byte by byte. It returns
// exactly the same value as hashing the materialized normalization — the
// equivalence test pins this — while allocating nothing.
func normalizedHash(t string, lowercase, ignorePunct bool) uint64 {
	h := uint64(fnvOffset)
	pendingSep := false // a space is owed before the next kept rune
	started := false    // at least one kept rune emitted (no leading sep)
	var enc [4]byte
	for i := 0; i < len(t); {
		r, size := utf8.DecodeRuneInString(t[i:])
		invalid := r == utf8.RuneError && size == 1 // raw invalid byte, not a real U+FFFD
		i += size
		if invalid {
			// strings.ToLower / strings.Map coerce invalid bytes to
			// U+FFFD; without either transforming pass, the bytes flow
			// through Fields/Join untouched. Mirror both behaviors.
			if ignorePunct {
				continue // U+FFFD is neither letter, digit nor space
			}
			if lowercase {
				r = 0xFFFD
			} else {
				if pendingSep {
					h = (h ^ ' ') * fnvPrime
					pendingSep = false
				}
				started = true
				h = (h ^ uint64(t[i-1])) * fnvPrime
				continue
			}
		}
		if lowercase {
			r = unicode.ToLower(r)
		}
		if unicode.IsSpace(r) {
			pendingSep = started
			continue
		}
		if ignorePunct && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			continue
		}
		if pendingSep {
			h = (h ^ ' ') * fnvPrime
			pendingSep = false
		}
		started = true
		if r < 0x80 {
			h = (h ^ uint64(r)) * fnvPrime
			continue
		}
		n := utf8.EncodeRune(enc[:], r)
		for i := 0; i < n; i++ {
			h = (h ^ uint64(enc[i])) * fnvPrime
		}
	}
	return h
}

// Shingle hashing: each token hashes independently (FNV over its bytes
// plus a separator fold, so "ab c" and "a bc" differ exactly as the
// joined text did), and every n-window combines token hashes through a
// seeded splitmix-based rolling polynomial — no per-shingle string join.
const shingleB = 0x9e3779b97f4a7c15

// wordShingles returns the hashed word n-gram shingle set of t, writing
// token scratch through the pooled segmenter.
func wordShingles(t string, n int) []uint64 {
	seg := text.GetSegmenter()
	words := seg.WordsLower(t)
	out := shinglesOf(words, n)
	text.PutSegmenter(seg)
	return out
}

// shinglesOf hashes the n-gram windows of words. Shingle values are
// equal exactly when the windows' token sequences are equal (modulo
// 64-bit hash collisions), the property MinHash and the duplicate
// verifier rely on; the dup-pair equivalence test checks the end-to-end
// output matches the joined-string implementation on seeded corpora.
func shinglesOf(words []string, n int) []uint64 {
	if len(words) == 0 {
		return nil
	}
	if n < 1 {
		n = 1 // defensive: factories validate, but a zero window must not panic
	}
	if len(words) < n {
		n = len(words)
	}
	out := make([]uint64, 0, len(words)-n+1)
	bPow := uint64(1)
	for i := 1; i < n; i++ {
		bPow *= shingleB
	}
	var h uint64
	for i, w := range words {
		h = h*shingleB + splitmix64(text.HashString(w))
		if i >= n-1 {
			out = append(out, splitmix64(h))
			h -= splitmix64(text.HashString(words[i-n+1])) * bPow
		}
	}
	return out
}

// jaccard computes the Jaccard similarity of two shingle sets.
func jaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	inter := 0
	bset := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		if _, dup := bset[x]; dup {
			continue
		}
		bset[x] = struct{}{}
		if _, ok := set[x]; ok {
			inter++
		}
	}
	union := len(set) + len(bset) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func hamming(a, b uint64) int { return bits.OnesCount64(a ^ b) }
