// Package dedup implements the Deduplicator operators: exact hashing,
// MinHash-LSH and SimHash near-duplicate detection, and a hashed TF-vector
// cosine deduplicator — the "hash-based and vector-based" methods named in
// Table 1. All deduplicators keep the first occurrence of each duplicate
// cluster and report the removed (dropped, kept) pairs for the tracer.
package dedup

import (
	"hash/fnv"
	"math/bits"
	"strings"
	"unicode"

	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// unionFind is a standard disjoint-set with path compression, used to
// cluster duplicate candidates.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Keep the smaller index as root so "first occurrence wins".
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// collapse builds the deduplicated dataset from a union-find over sample
// indexes: the lowest index of each cluster is kept.
func collapse(d *dataset.Dataset, uf *unionFind) (*dataset.Dataset, []ops.DupPair) {
	kept := make([]*sample.Sample, 0, d.Len())
	var pairs []ops.DupPair
	for i, s := range d.Samples {
		root := uf.find(i)
		if root == i {
			kept = append(kept, s)
			continue
		}
		pairs = append(pairs, ops.DupPair{Dropped: i, Kept: root})
	}
	return dataset.New(kept), pairs
}

// splitmix64 is the standard avalanche mixer; it derives the independent
// hash families for MinHash from a single base hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func normalizeForHash(t string, lowercase, ignorePunct bool) string {
	if lowercase {
		t = strings.ToLower(t)
	}
	if ignorePunct {
		t = strings.Map(func(r rune) rune {
			if unicode.IsLetter(r) || unicode.IsDigit(r) || unicode.IsSpace(r) {
				return r
			}
			return -1
		}, t)
	}
	return strings.Join(strings.Fields(t), " ")
}

// wordShingles returns the hashed word n-gram shingle set of t.
func wordShingles(t string, n int) []uint64 {
	words := text.WordsLower(t)
	if len(words) < n {
		if len(words) == 0 {
			return nil
		}
		return []uint64{hash64(strings.Join(words, " "))}
	}
	out := make([]uint64, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, hash64(strings.Join(words[i:i+n], " ")))
	}
	return out
}

// jaccard computes the Jaccard similarity of two shingle sets.
func jaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	inter := 0
	bset := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		if _, dup := bset[x]; dup {
			continue
		}
		bset[x] = struct{}{}
		if _, ok := set[x]; ok {
			inter++
		}
	}
	union := len(set) + len(bset) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func hamming(a, b uint64) int { return bits.OnesCount64(a ^ b) }
