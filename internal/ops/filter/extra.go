package filter

import (
	"unicode/utf8"

	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// Interned stat keys.
var (
	keyNumSentences  = sample.InternStatKey("num_sentences")
	keyAvgWordLength = sample.InternStatKey("avg_word_length")
	keyUniqueWords   = sample.InternStatKey("unique_words_ratio")
)

// Additional filters rounding out the pool: sentence counts, average word
// length, and lexical-variety ratio.

func init() {
	ops.Register("sentence_num_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &sentenceNumFilter{
				base:      newBase("sentence_num_filter", p),
				rangeKeep: newRange(p, "min_num", 1, "max_num", 1e9),
			}, nil
		})
	ops.Register("average_word_length_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &avgWordLengthFilter{
				base:      newBase("average_word_length_filter", p),
				rangeKeep: newRange(p, "min_len", 2.5, "max_len", 12),
			}, nil
		})
	ops.Register("unique_words_ratio_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &uniqueWordsFilter{
				base:      newBase("unique_words_ratio_filter", p),
				rangeKeep: newRange(p, "min_ratio", 0.1, "max_ratio", 1.0),
			}, nil
		})
}

type sentenceNumFilter struct {
	base
	rangeKeep
}

func (f *sentenceNumFilter) StatKeys() []string    { return []string{"num_sentences"} }
func (f *sentenceNumFilter) ContextKeys() []string { return []string{ops.CtxSentences} }
func (f *sentenceNumFilter) CostHint() float64     { return 2 }

func (f *sentenceNumFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyNumSentences); ok {
		return nil
	}
	s.Stats.SetFloat(keyNumSentences, float64(len(ops.SentencesOf(s))))
	return nil
}

func (f *sentenceNumFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyNumSentences)
	return f.within(v)
}

// avgWordLengthFilter rejects texts whose mean word length is implausible
// for natural language: too short means symbol debris, too long means
// concatenated junk or base64.
type avgWordLengthFilter struct {
	base
	rangeKeep
}

func (f *avgWordLengthFilter) StatKeys() []string    { return []string{"avg_word_length"} }
func (f *avgWordLengthFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *avgWordLengthFilter) CostHint() float64     { return 2 }

func (f *avgWordLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyAvgWordLength); ok {
		return nil
	}
	words := ops.WordsLowerOf(s)
	if len(words) == 0 {
		s.Stats.SetFloat(keyAvgWordLength, 0)
		return nil
	}
	total := 0
	for _, w := range words {
		total += utf8.RuneCountInString(w)
	}
	s.Stats.SetFloat(keyAvgWordLength, float64(total)/float64(len(words)))
	return nil
}

func (f *avgWordLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyAvgWordLength)
	return f.within(v)
}

// uniqueWordsFilter measures lexical variety (distinct/total words);
// degenerate repetitive documents score near zero.
type uniqueWordsFilter struct {
	base
	rangeKeep
}

func (f *uniqueWordsFilter) StatKeys() []string    { return []string{"unique_words_ratio"} }
func (f *uniqueWordsFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *uniqueWordsFilter) CostHint() float64     { return 2 }

func (f *uniqueWordsFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyUniqueWords); ok {
		return nil
	}
	words := ops.WordsLowerOf(s)
	if len(words) == 0 {
		s.Stats.SetFloat(keyUniqueWords, 0)
		return nil
	}
	s.Stats.SetFloat(keyUniqueWords, text.DistinctRatio(words))
	return nil
}

func (f *uniqueWordsFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyUniqueWords)
	return f.within(v)
}
