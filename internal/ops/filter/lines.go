package filter

import (
	"repro/internal/ops"
	"repro/internal/sample"
)

// Line-level filters share the CtxLines context: when fused, the line
// split is computed once per sample and reused.

func init() {
	ops.Register("average_line_length_filter", ops.CategoryFilter, "general,code",
		func(p ops.Params) (ops.OP, error) {
			return &avgLineLengthFilter{
				base:      newBase("average_line_length_filter", p),
				rangeKeep: newRange(p, "min_len", 10, "max_len", 1e9),
			}, nil
		})
	ops.Register("maximum_line_length_filter", ops.CategoryFilter, "general,code",
		func(p ops.Params) (ops.OP, error) {
			return &maxLineLengthFilter{
				base:      newBase("maximum_line_length_filter", p),
				rangeKeep: newRange(p, "min_len", 10, "max_len", 1e9),
			}, nil
		})
}

type avgLineLengthFilter struct {
	base
	rangeKeep
}

func (f *avgLineLengthFilter) StatKeys() []string    { return []string{"avg_line_length"} }
func (f *avgLineLengthFilter) ContextKeys() []string { return []string{ops.CtxLines} }

func (f *avgLineLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stat("avg_line_length"); ok {
		return nil
	}
	lines := ops.LinesOf(s)
	if len(lines) == 0 {
		s.SetStat("avg_line_length", 0)
		return nil
	}
	total := 0
	for _, l := range lines {
		total += len([]rune(l))
	}
	s.SetStat("avg_line_length", float64(total)/float64(len(lines)))
	return nil
}

func (f *avgLineLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stat("avg_line_length")
	return f.within(v)
}

type maxLineLengthFilter struct {
	base
	rangeKeep
}

func (f *maxLineLengthFilter) StatKeys() []string    { return []string{"max_line_length"} }
func (f *maxLineLengthFilter) ContextKeys() []string { return []string{ops.CtxLines} }

func (f *maxLineLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stat("max_line_length"); ok {
		return nil
	}
	max := 0
	for _, l := range ops.LinesOf(s) {
		if n := len([]rune(l)); n > max {
			max = n
		}
	}
	s.SetStat("max_line_length", float64(max))
	return nil
}

func (f *maxLineLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stat("max_line_length")
	return f.within(v)
}
