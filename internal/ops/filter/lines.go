package filter

import (
	"unicode/utf8"

	"repro/internal/ops"
	"repro/internal/sample"
)

// Interned stat keys.
var (
	keyAvgLineLength = sample.InternStatKey("avg_line_length")
	keyMaxLineLength = sample.InternStatKey("max_line_length")
)

// Line-level filters share the CtxLines context: when fused, the line
// split is computed once per sample and reused.

func init() {
	ops.Register("average_line_length_filter", ops.CategoryFilter, "general,code",
		func(p ops.Params) (ops.OP, error) {
			return &avgLineLengthFilter{
				base:      newBase("average_line_length_filter", p),
				rangeKeep: newRange(p, "min_len", 10, "max_len", 1e9),
			}, nil
		})
	ops.Register("maximum_line_length_filter", ops.CategoryFilter, "general,code",
		func(p ops.Params) (ops.OP, error) {
			return &maxLineLengthFilter{
				base:      newBase("maximum_line_length_filter", p),
				rangeKeep: newRange(p, "min_len", 10, "max_len", 1e9),
			}, nil
		})
}

type avgLineLengthFilter struct {
	base
	rangeKeep
}

func (f *avgLineLengthFilter) StatKeys() []string    { return []string{"avg_line_length"} }
func (f *avgLineLengthFilter) ContextKeys() []string { return []string{ops.CtxLines} }

func (f *avgLineLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyAvgLineLength); ok {
		return nil
	}
	lines := ops.LinesOf(s)
	if len(lines) == 0 {
		s.Stats.SetFloat(keyAvgLineLength, 0)
		return nil
	}
	total := 0
	for _, l := range lines {
		total += utf8.RuneCountInString(l)
	}
	s.Stats.SetFloat(keyAvgLineLength, float64(total)/float64(len(lines)))
	return nil
}

func (f *avgLineLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyAvgLineLength)
	return f.within(v)
}

type maxLineLengthFilter struct {
	base
	rangeKeep
}

func (f *maxLineLengthFilter) StatKeys() []string    { return []string{"max_line_length"} }
func (f *maxLineLengthFilter) ContextKeys() []string { return []string{ops.CtxLines} }

func (f *maxLineLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyMaxLineLength); ok {
		return nil
	}
	max := 0
	for _, l := range ops.LinesOf(s) {
		if n := utf8.RuneCountInString(l); n > max {
			max = n
		}
	}
	s.Stats.SetFloat(keyMaxLineLength, float64(max))
	return nil
}

func (f *maxLineLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyMaxLineLength)
	return f.within(v)
}
