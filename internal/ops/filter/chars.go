package filter

import (
	"unicode/utf8"

	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// Interned stat keys: the typed accessors skip the name lookup on the
// per-sample hot path.
var (
	keyAlnumRatio   = sample.InternStatKey("alnum_ratio")
	keySpecialChars = sample.InternStatKey("special_char_ratio")
	keyDigitRatio   = sample.InternStatKey("digit_ratio")
	keyTextLen      = sample.InternStatKey("text_len")
	keyCharRepRatio = sample.InternStatKey("char_rep_ratio")
)

// Character-level filters: cheap statistics computed from the raw rune
// stream, no shared context needed.

func init() {
	ops.Register("alphanumeric_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &alnumFilter{
				base:      newBase("alphanumeric_filter", p),
				rangeKeep: newRange(p, "min_ratio", 0.25, "max_ratio", 1.0),
			}, nil
		})
	ops.Register("special_characters_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &specialCharsFilter{
				base:      newBase("special_characters_filter", p),
				rangeKeep: newRange(p, "min_ratio", 0.0, "max_ratio", 0.25),
			}, nil
		})
	ops.Register("digit_ratio_filter", ops.CategoryFilter, "general,financial",
		func(p ops.Params) (ops.OP, error) {
			return &digitRatioFilter{
				base:      newBase("digit_ratio_filter", p),
				rangeKeep: newRange(p, "min_ratio", 0.0, "max_ratio", 0.5),
			}, nil
		})
	ops.Register("text_length_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &textLengthFilter{
				base:      newBase("text_length_filter", p),
				rangeKeep: newRange(p, "min_len", 10, "max_len", 1e9),
			}, nil
		})
	ops.Register("character_repetition_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &charRepetitionFilter{
				base:      newBase("character_repetition_filter", p),
				repLen:    p.Int("rep_len", 10),
				rangeKeep: newRange(p, "min_ratio", 0.0, "max_ratio", 0.5),
			}, nil
		})
}

type alnumFilter struct {
	base
	rangeKeep
}

func (f *alnumFilter) StatKeys() []string { return []string{"alnum_ratio"} }

func (f *alnumFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyAlnumRatio); ok {
		return nil
	}
	s.Stats.SetFloat(keyAlnumRatio, text.AlnumRatio(f.text(s)))
	return nil
}

func (f *alnumFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyAlnumRatio)
	return f.within(v)
}

type specialCharsFilter struct {
	base
	rangeKeep
}

func (f *specialCharsFilter) StatKeys() []string { return []string{"special_char_ratio"} }

func (f *specialCharsFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keySpecialChars); ok {
		return nil
	}
	s.Stats.SetFloat(keySpecialChars, text.SpecialCharRatio(f.text(s)))
	return nil
}

func (f *specialCharsFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keySpecialChars)
	return f.within(v)
}

type digitRatioFilter struct {
	base
	rangeKeep
}

func (f *digitRatioFilter) StatKeys() []string { return []string{"digit_ratio"} }

func (f *digitRatioFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyDigitRatio); ok {
		return nil
	}
	s.Stats.SetFloat(keyDigitRatio, text.DigitRatio(f.text(s)))
	return nil
}

func (f *digitRatioFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyDigitRatio)
	return f.within(v)
}

type textLengthFilter struct {
	base
	rangeKeep
}

func (f *textLengthFilter) StatKeys() []string { return []string{"text_len"} }

func (f *textLengthFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyTextLen); ok {
		return nil
	}
	s.Stats.SetFloat(keyTextLen, float64(utf8.RuneCountInString(f.text(s))))
	return nil
}

func (f *textLengthFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyTextLen)
	return f.within(v)
}

type charRepetitionFilter struct {
	base
	repLen int
	rangeKeep
}

func (f *charRepetitionFilter) StatKeys() []string { return []string{"char_rep_ratio"} }

func (f *charRepetitionFilter) CostHint() float64 { return 2 }

func (f *charRepetitionFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyCharRepRatio); ok {
		return nil
	}
	s.Stats.SetFloat(keyCharRepRatio, text.CharNGramRepetitionRatio(f.text(s), f.repLen))
	return nil
}

func (f *charRepetitionFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyCharRepRatio)
	return f.within(v)
}
