// Package filter implements the Filter operators of the pool: conditional
// sample removal driven by per-sample statistics (Table 1, row "Filters").
// Each filter follows the decoupled contract of Listing 1 — ComputeStats
// writes into sample.Stats, Keep reads only those stats — so the analyzer
// can reuse whole-dataset statistics and the executor can fuse stat
// computation across filters.
package filter

import (
	"sync/atomic"

	"repro/internal/ops"
	"repro/internal/sample"
)

// base carries the plumbing shared by all filters.
type base struct {
	name    string
	textKey string
}

func newBase(name string, p ops.Params) base {
	return base{name: name, textKey: p.String("text_key", "text")}
}

func (b base) Name() string { return b.name }

func (b base) text(s *sample.Sample) string {
	t, _ := s.GetString(b.textKey)
	return t
}

// rangeKeep is the common "stat within [min, max]" verdict.
type rangeKeep struct {
	min, max float64
}

func newRange(p ops.Params, minKey string, minDef float64, maxKey string, maxDef float64) rangeKeep {
	return rangeKeep{min: p.Float(minKey, minDef), max: p.Float(maxKey, maxDef)}
}

func (r rangeKeep) within(v float64) bool { return v >= r.min && v <= r.max }

// PerplexityScorer scores text noisiness; lower is more natural. The
// production implementation is the n-gram LM in internal/lm.
type PerplexityScorer interface {
	PerplexityWords(words []string) float64
}

// TokenCounter counts model tokens; the production implementation is the
// BPE tokenizer in internal/tokenizer.
type TokenCounter interface {
	CountTokens(text string) int
}

// QualityScorer maps text to a quality probability in [0, 1]; the
// production implementation is the logistic-regression classifier in
// internal/quality.
type QualityScorer interface {
	QualityScore(text string) float64
}

// Injection points for the model-backed filters. Experiments install the
// real models; unit tests may install stubs. Stored atomically so builds
// and installs can interleave freely.
var (
	perplexityModel atomic.Value // PerplexityScorer
	tokenCounter    atomic.Value // TokenCounter
	qualityScorer   atomic.Value // QualityScorer
)

// SetPerplexityModel installs the scorer used by perplexity_filter.
func SetPerplexityModel(m PerplexityScorer) { perplexityModel.Store(&m) }

// SetTokenCounter installs the counter used by token_num_filter.
func SetTokenCounter(c TokenCounter) { tokenCounter.Store(&c) }

// SetQualityScorer installs the scorer used by quality_score_filter.
func SetQualityScorer(q QualityScorer) { qualityScorer.Store(&q) }

func getPerplexityModel() PerplexityScorer {
	if v, ok := perplexityModel.Load().(*PerplexityScorer); ok && *v != nil {
		return *v
	}
	return nil
}

func getTokenCounter() TokenCounter {
	if v, ok := tokenCounter.Load().(*TokenCounter); ok && *v != nil {
		return *v
	}
	return nil
}

func getQualityScorer() QualityScorer {
	if v, ok := qualityScorer.Load().(*QualityScorer); ok && *v != nil {
		return *v
	}
	return nil
}
