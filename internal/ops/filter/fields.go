package filter

import (
	"strings"

	"repro/internal/ops"
	"repro/internal/sample"
)

// Meta-field filters: verdicts driven by sample metadata instead of text
// content — "filter by meta-info" in Table 1.

// Interned stat keys.
var (
	keySuffixOK   = sample.InternStatKey("suffix_ok")
	keyFieldOK    = sample.InternStatKey("field_ok")
	keyNumFieldOK = sample.InternStatKey("num_field_ok")
)

func init() {
	ops.Register("suffix_filter", ops.CategoryFilter, "general,code",
		func(p ops.Params) (ops.OP, error) {
			return &suffixFilter{
				base:     newBase("suffix_filter", p),
				field:    p.String("field", "meta.suffix"),
				suffixes: p.Strings("suffixes"),
			}, nil
		})
	ops.Register("specified_field_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &specifiedFieldFilter{
				base:    newBase("specified_field_filter", p),
				field:   p.String("field", "meta.tag"),
				allowed: p.Strings("target_value"),
			}, nil
		})
	ops.Register("specified_numeric_field_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &specifiedNumericFieldFilter{
				base:      newBase("specified_numeric_field_filter", p),
				field:     p.String("field", "meta.score"),
				rangeKeep: newRange(p, "min_value", -1e18, "max_value", 1e18),
			}, nil
		})
}

type suffixFilter struct {
	base
	field    string
	suffixes []string
}

func (f *suffixFilter) StatKeys() []string { return []string{"suffix_ok"} }

func (f *suffixFilter) ComputeStats(s *sample.Sample) error {
	v, _ := s.GetString(f.field)
	ok := len(f.suffixes) == 0
	for _, suf := range f.suffixes {
		if strings.HasSuffix(v, suf) {
			ok = true
			break
		}
	}
	s.Stats.SetFloat(keySuffixOK, boolStat(ok))
	return nil
}

func (f *suffixFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keySuffixOK)
	return v > 0
}

type specifiedFieldFilter struct {
	base
	field   string
	allowed []string
}

func (f *specifiedFieldFilter) StatKeys() []string { return []string{"field_ok"} }

func (f *specifiedFieldFilter) ComputeStats(s *sample.Sample) error {
	v, present := s.GetString(f.field)
	ok := false
	if present {
		if len(f.allowed) == 0 {
			ok = true
		}
		for _, a := range f.allowed {
			if v == a {
				ok = true
				break
			}
		}
	}
	s.Stats.SetFloat(keyFieldOK, boolStat(ok))
	return nil
}

func (f *specifiedFieldFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyFieldOK)
	return v > 0
}

type specifiedNumericFieldFilter struct {
	base
	field string
	rangeKeep
}

func (f *specifiedNumericFieldFilter) StatKeys() []string { return []string{"num_field_ok"} }

func (f *specifiedNumericFieldFilter) ComputeStats(s *sample.Sample) error {
	v, present := s.GetFloat(f.field)
	ok := present && f.within(v)
	s.Stats.SetFloat(keyNumFieldOK, boolStat(ok))
	return nil
}

func (f *specifiedNumericFieldFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyNumFieldOK)
	return v > 0
}

func boolStat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
