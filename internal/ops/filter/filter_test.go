package filter

import (
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/sample"
)

// verdict builds the named filter, computes stats, and returns Keep.
func verdict(t *testing.T, name string, p ops.Params, s *sample.Sample) bool {
	t.Helper()
	op, err := ops.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	f, ok := op.(ops.Filter)
	if !ok {
		t.Fatalf("%s is not a Filter", name)
	}
	if err := f.ComputeStats(s); err != nil {
		t.Fatalf("stats %s: %v", name, err)
	}
	return f.Keep(s)
}

func textVerdict(t *testing.T, name string, p ops.Params, text string) bool {
	return verdict(t, name, p, sample.New(text))
}

func TestAlphanumericFilter(t *testing.T) {
	if !textVerdict(t, "alphanumeric_filter", nil, "perfectly normal text") {
		t.Fatal("normal text rejected")
	}
	if textVerdict(t, "alphanumeric_filter", nil, "!!! ??? *** $$$ %%% ((( )))") {
		t.Fatal("symbol soup accepted")
	}
}

func TestSpecialCharactersFilter(t *testing.T) {
	if !textVerdict(t, "special_characters_filter", nil, "clean words only here") {
		t.Fatal("clean text rejected")
	}
	if textVerdict(t, "special_characters_filter", nil, "##$$%%^^&&**((!!~~``||") {
		t.Fatal("special char soup accepted")
	}
}

func TestDigitRatioFilter(t *testing.T) {
	if !textVerdict(t, "digit_ratio_filter", nil, "year 2024 was fine") {
		t.Fatal("light digits rejected")
	}
	if textVerdict(t, "digit_ratio_filter", ops.Params{"max_ratio": 0.3}, "123456789 123456789 ok") {
		t.Fatal("digit soup accepted")
	}
}

func TestTextLengthFilter(t *testing.T) {
	if textVerdict(t, "text_length_filter", ops.Params{"min_len": 20}, "short") {
		t.Fatal("short text accepted")
	}
	if !textVerdict(t, "text_length_filter", ops.Params{"min_len": 5, "max_len": 100}, "long enough text here") {
		t.Fatal("ok text rejected")
	}
	if textVerdict(t, "text_length_filter", ops.Params{"max_len": 10}, "this text is far too long") {
		t.Fatal("long text accepted")
	}
}

func TestCharacterRepetitionFilter(t *testing.T) {
	normal := "each sentence here differs from the previous one in interesting ways"
	if !textVerdict(t, "character_repetition_filter", nil, normal) {
		t.Fatal("normal text rejected")
	}
	degenerate := strings.Repeat("abcdefghij", 50)
	if textVerdict(t, "character_repetition_filter", nil, degenerate) {
		t.Fatal("repetitive text accepted")
	}
}

func TestWordRepetitionFilter(t *testing.T) {
	degenerate := strings.Repeat("the same ten words repeated over and over forever again ", 20)
	if textVerdict(t, "word_repetition_filter", ops.Params{"rep_len": 5, "max_ratio": 0.3}, degenerate) {
		t.Fatal("repetitive text accepted")
	}
	varied := "every word in this sentence appears exactly once without repeats anywhere"
	if !textVerdict(t, "word_repetition_filter", ops.Params{"rep_len": 5, "max_ratio": 0.3}, varied) {
		t.Fatal("varied text rejected")
	}
}

func TestWordNumFilter(t *testing.T) {
	if textVerdict(t, "word_num_filter", ops.Params{"min_num": 5}, "too few") {
		t.Fatal("short accepted")
	}
	if !textVerdict(t, "word_num_filter", ops.Params{"min_num": 3, "max_num": 10}, "exactly five words here now") {
		t.Fatal("ok rejected")
	}
}

func TestLineLengthFilters(t *testing.T) {
	code := "x\ny\nz"
	if textVerdict(t, "average_line_length_filter", ops.Params{"min_len": 5}, code) {
		t.Fatal("short lines accepted")
	}
	prose := "this is a reasonably long line of text\nand another one just like it"
	if !textVerdict(t, "average_line_length_filter", ops.Params{"min_len": 10}, prose) {
		t.Fatal("prose rejected")
	}
	long := "short\n" + strings.Repeat("x", 2000)
	if textVerdict(t, "maximum_line_length_filter", ops.Params{"min_len": 1, "max_len": 1000}, long) {
		t.Fatal("overlong line accepted")
	}
}

func TestStopwordsFilter(t *testing.T) {
	prose := "the cat sat on the mat and it was happy about the sun"
	if !textVerdict(t, "stopwords_filter", nil, prose) {
		t.Fatal("prose rejected")
	}
	keywordSpam := "buy cheap widgets discount widgets sale widgets deals widgets"
	if textVerdict(t, "stopwords_filter", nil, keywordSpam) {
		t.Fatal("keyword spam accepted")
	}
}

func TestFlaggedWordsFilter(t *testing.T) {
	clean := "a perfectly pleasant sentence about gardens and books"
	if !textVerdict(t, "flagged_words_filter", nil, clean) {
		t.Fatal("clean text rejected")
	}
	toxic := "damn casino jackpot porn scam damn viagra lottery"
	if textVerdict(t, "flagged_words_filter", nil, toxic) {
		t.Fatal("flagged text accepted")
	}
}

func TestTextActionFilter(t *testing.T) {
	if !textVerdict(t, "text_action_filter", nil, "please write a story and explain the plot") {
		t.Fatal("instruction with verbs rejected")
	}
	if textVerdict(t, "text_action_filter", nil, "cabbage umbrella Tuesday") {
		t.Fatal("verb-free text accepted")
	}
}

func TestTextEntityDependencyFilter(t *testing.T) {
	if !textVerdict(t, "text_entity_dependency_filter", nil, "write a poem about a table") {
		t.Fatal("nouny text rejected")
	}
	if textVerdict(t, "text_entity_dependency_filter", nil, "quickly slowly happily") {
		t.Fatal("noun-free text accepted")
	}
}

func TestLanguageIDScoreFilter(t *testing.T) {
	en := "the people talked about their work and the world around them every day"
	if !textVerdict(t, "language_id_score_filter", ops.Params{"lang": "en", "min_score": 0.2}, en) {
		t.Fatal("english rejected")
	}
	zh := "数据处理系统对大型语言模型非常重要因为数据质量决定模型质量"
	if textVerdict(t, "language_id_score_filter", ops.Params{"lang": "en", "min_score": 0.2}, zh) {
		t.Fatal("chinese accepted as english")
	}
	if !textVerdict(t, "language_id_score_filter", ops.Params{"lang": "zh", "min_score": 0.5}, zh) {
		t.Fatal("chinese rejected as chinese")
	}
}

func TestLanguageFilterWritesLangStat(t *testing.T) {
	s := sample.New("the quick brown fox jumps over the lazy dog near the river bank")
	verdict(t, "language_id_score_filter", nil, s)
	if lang, ok := s.StatString("lang"); !ok || lang != "en" {
		t.Fatalf("lang stat = %q, %v", lang, ok)
	}
}

type stubPerplexity struct{ v float64 }

func (s stubPerplexity) PerplexityWords([]string) float64 { return s.v }

func TestPerplexityFilterWithModel(t *testing.T) {
	SetPerplexityModel(stubPerplexity{v: 100})
	defer SetPerplexityModel(nil)
	if !textVerdict(t, "perplexity_filter", ops.Params{"max_ppl": 500}, "any text") {
		t.Fatal("low ppl rejected")
	}
	SetPerplexityModel(stubPerplexity{v: 10000})
	if textVerdict(t, "perplexity_filter", ops.Params{"max_ppl": 500}, "any text") {
		t.Fatal("high ppl accepted")
	}
}

func TestPerplexityFilterFallback(t *testing.T) {
	SetPerplexityModel(nil)
	// Repetitive text has low entropy → low fallback perplexity.
	rep := strings.Repeat("same same same ", 50)
	s := sample.New(rep)
	verdict(t, "perplexity_filter", ops.Params{"max_ppl": 1e9}, s)
	low, _ := s.Stat("perplexity")
	varied := "many different interesting words compose this rather unusual sentence structure"
	s2 := sample.New(varied)
	verdict(t, "perplexity_filter", ops.Params{"max_ppl": 1e9}, s2)
	high, _ := s2.Stat("perplexity")
	if low >= high {
		t.Fatalf("fallback ppl ordering wrong: rep=%v varied=%v", low, high)
	}
}

type stubTokens struct{ n int }

func (s stubTokens) CountTokens(string) int { return s.n }

func TestTokenNumFilter(t *testing.T) {
	SetTokenCounter(stubTokens{n: 50})
	defer SetTokenCounter(nil)
	if !textVerdict(t, "token_num_filter", ops.Params{"min_num": 10, "max_num": 100}, "x") {
		t.Fatal("in-range rejected")
	}
	SetTokenCounter(stubTokens{n: 5})
	if textVerdict(t, "token_num_filter", ops.Params{"min_num": 10}, "x") {
		t.Fatal("too-few accepted")
	}
}

func TestTokenNumFilterFallback(t *testing.T) {
	SetTokenCounter(nil)
	s := sample.New("one two three four five six")
	verdict(t, "token_num_filter", ops.Params{"min_num": 1}, s)
	if v, ok := s.Stat("num_tokens"); !ok || v < 6 {
		t.Fatalf("fallback token count = %v, %v", v, ok)
	}
}

type stubQuality struct{ v float64 }

func (s stubQuality) QualityScore(string) float64 { return s.v }

func TestQualityScoreFilter(t *testing.T) {
	SetQualityScorer(stubQuality{v: 0.9})
	defer SetQualityScorer(nil)
	if !textVerdict(t, "quality_score_filter", nil, "x") {
		t.Fatal("high quality rejected")
	}
	SetQualityScorer(stubQuality{v: 0.1})
	if textVerdict(t, "quality_score_filter", nil, "x") {
		t.Fatal("low quality accepted")
	}
}

func TestQualityScoreFilterHeuristicFallback(t *testing.T) {
	SetQualityScorer(nil)
	good := sample.New("the report was written with care and it describes the methods that the team used")
	bad := sample.New("$$$ ### @@@ ~~ || ^^ %% && ** (( ))")
	verdict(t, "quality_score_filter", ops.Params{"min_score": 0}, good)
	verdict(t, "quality_score_filter", ops.Params{"min_score": 0}, bad)
	g, _ := good.Stat("quality_score")
	b, _ := bad.Stat("quality_score")
	if g <= b {
		t.Fatalf("heuristic ordering wrong: good=%v bad=%v", g, b)
	}
}

func TestSuffixFilter(t *testing.T) {
	s := sample.New("code")
	s.SetString("meta.suffix", ".py")
	if !verdict(t, "suffix_filter", ops.Params{"suffixes": []string{".py", ".go"}}, s) {
		t.Fatal(".py rejected")
	}
	s2 := sample.New("doc")
	s2.SetString("meta.suffix", ".exe")
	if verdict(t, "suffix_filter", ops.Params{"suffixes": []string{".py"}}, s2) {
		t.Fatal(".exe accepted")
	}
}

func TestSpecifiedFieldFilter(t *testing.T) {
	s := sample.New("x")
	s.SetString("meta.lang_tag", "EN")
	p := ops.Params{"field": "meta.lang_tag", "target_value": []string{"EN"}}
	if !verdict(t, "specified_field_filter", p, s) {
		t.Fatal("matching tag rejected")
	}
	s2 := sample.New("y")
	s2.SetString("meta.lang_tag", "ZH")
	if verdict(t, "specified_field_filter", p, s2) {
		t.Fatal("mismatched tag accepted")
	}
	s3 := sample.New("z") // missing field
	if verdict(t, "specified_field_filter", p, s3) {
		t.Fatal("missing field accepted")
	}
}

func TestSpecifiedNumericFieldFilter(t *testing.T) {
	s := sample.New("repo readme")
	s.Meta = s.Meta.Set("stars", 2000.0)
	p := ops.Params{"field": "meta.stars", "min_value": 1372.0}
	if !verdict(t, "specified_numeric_field_filter", p, s) {
		t.Fatal("starred repo rejected")
	}
	s2 := sample.New("small repo")
	s2.Meta = s2.Meta.Set("stars", 3.0)
	if verdict(t, "specified_numeric_field_filter", p, s2) {
		t.Fatal("unstarred repo accepted")
	}
}

func TestStatsIdempotentAcrossFilters(t *testing.T) {
	// Two filters writing the same stat key must not recompute: the first
	// value is reused, which is what allows fused stat computation.
	s := sample.New("hello world this is text")
	op, _ := ops.Build("word_num_filter", nil)
	f := op.(ops.Filter)
	f.ComputeStats(s)
	v1, _ := s.Stat("num_words")
	s.Text = "changed"
	s.ClearContext()
	f.ComputeStats(s)
	v2, _ := s.Stat("num_words")
	if v1 != v2 {
		t.Fatalf("stat recomputed after being present: %v vs %v", v1, v2)
	}
}

func TestFilterStatKeysDeclared(t *testing.T) {
	names := []string{
		"alphanumeric_filter", "special_characters_filter", "digit_ratio_filter",
		"text_length_filter", "character_repetition_filter",
		"average_line_length_filter", "maximum_line_length_filter",
		"word_num_filter", "word_repetition_filter", "stopwords_filter",
		"flagged_words_filter", "text_action_filter",
		"text_entity_dependency_filter", "language_id_score_filter",
		"perplexity_filter", "token_num_filter", "quality_score_filter",
		"suffix_filter", "specified_field_filter", "specified_numeric_field_filter",
	}
	for _, name := range names {
		op, err := ops.Build(name, nil)
		if err != nil {
			t.Errorf("build %s: %v", name, err)
			continue
		}
		f, ok := op.(ops.Filter)
		if !ok {
			t.Errorf("%s is not a Filter", name)
			continue
		}
		if len(f.StatKeys()) == 0 {
			t.Errorf("%s declares no stat keys", name)
		}
		info, _ := ops.InfoFor(name)
		if info.Category != ops.CategoryFilter {
			t.Errorf("%s category = %s", name, info.Category)
		}
	}
}

func TestWordFiltersShareContext(t *testing.T) {
	s := sample.New("write a story about the damn casino and the lottery")
	for _, name := range []string{"word_num_filter", "stopwords_filter", "flagged_words_filter"} {
		op, _ := ops.Build(name, nil)
		op.(ops.Filter).ComputeStats(s)
	}
	if s.ContextLen() != 1 {
		t.Fatalf("word filters should share one context entry, got %d", s.ContextLen())
	}
}
