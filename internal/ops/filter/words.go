package filter

import (
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// Word-level filters share the CtxWordsLower context (the segmented,
// lower-cased word stream): they form the fusible group exercised by the
// Figure 9 experiment.

// Interned stat keys for the word-group filters.
var (
	keyNumWords     = sample.InternStatKey("num_words")
	keyWordRepRatio = sample.InternStatKey("word_rep_ratio")
)

func init() {
	ops.Register("word_num_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &wordNumFilter{
				base:      newBase("word_num_filter", p),
				rangeKeep: newRange(p, "min_num", 10, "max_num", 1e9),
			}, nil
		})
	ops.Register("word_repetition_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &wordRepetitionFilter{
				base:      newBase("word_repetition_filter", p),
				repLen:    p.Int("rep_len", 10),
				rangeKeep: newRange(p, "min_ratio", 0.0, "max_ratio", 0.5),
			}, nil
		})
	ops.Register("stopwords_filter", ops.CategoryFilter, "general,en,zh",
		func(p ops.Params) (ops.OP, error) {
			lang := p.String("lang", "en")
			words := text.Stopwords(lang)
			return &wordSetRatioFilter{
				base:     newBase("stopwords_filter", p),
				statKey:  sample.InternStatKey("stopwords_ratio"),
				set:      words,
				min:      p.Float("min_ratio", 0.1),
				max:      p.Float("max_ratio", 1.0),
				costHint: 2,
			}, nil
		})
	ops.Register("flagged_words_filter", ops.CategoryFilter, "general,en,zh",
		func(p ops.Params) (ops.OP, error) {
			lang := p.String("lang", "en")
			return &wordSetRatioFilter{
				base:     newBase("flagged_words_filter", p),
				statKey:  sample.InternStatKey("flagged_words_ratio"),
				set:      text.FlaggedWords(lang),
				min:      p.Float("min_ratio", 0.0),
				max:      p.Float("max_ratio", 0.01),
				costHint: 2,
			}, nil
		})
	ops.Register("text_action_filter", ops.CategoryFilter, "fine-tuning,en",
		func(p ops.Params) (ops.OP, error) {
			return &lexiconCountFilter{
				base:    newBase("text_action_filter", p),
				statKey: sample.InternStatKey("num_actions"),
				member:  text.IsVerb,
				minNum:  p.Float("min_action_num", 1),
			}, nil
		})
	ops.Register("text_entity_dependency_filter", ops.CategoryFilter, "fine-tuning,en",
		func(p ops.Params) (ops.OP, error) {
			return &lexiconCountFilter{
				base:    newBase("text_entity_dependency_filter", p),
				statKey: sample.InternStatKey("num_entities"),
				member:  text.IsNoun,
				minNum:  p.Float("min_dependency_num", 1),
			}, nil
		})
}

type wordNumFilter struct {
	base
	rangeKeep
}

func (f *wordNumFilter) StatKeys() []string    { return []string{"num_words"} }
func (f *wordNumFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *wordNumFilter) CostHint() float64     { return 2 }

func (f *wordNumFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyNumWords); ok {
		return nil
	}
	s.Stats.SetFloat(keyNumWords, float64(len(ops.WordsLowerOf(s))))
	return nil
}

func (f *wordNumFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyNumWords)
	return f.within(v)
}

type wordRepetitionFilter struct {
	base
	repLen int
	rangeKeep
}

func (f *wordRepetitionFilter) StatKeys() []string    { return []string{"word_rep_ratio"} }
func (f *wordRepetitionFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *wordRepetitionFilter) CostHint() float64     { return 3 }

func (f *wordRepetitionFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyWordRepRatio); ok {
		return nil
	}
	s.Stats.SetFloat(keyWordRepRatio, text.WordNGramRepetitionRatio(ops.WordsLowerOf(s), f.repLen))
	return nil
}

func (f *wordRepetitionFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyWordRepRatio)
	return f.within(v)
}

// wordSetRatioFilter computes the fraction of words that belong to a word
// set; it implements both stopwords_filter (keep when the ratio is high
// enough — natural text contains stopwords) and flagged_words_filter
// (keep when the ratio is low enough).
type wordSetRatioFilter struct {
	base
	statKey  sample.StatKey
	set      map[string]struct{}
	min, max float64
	costHint float64
}

func (f *wordSetRatioFilter) StatKeys() []string    { return []string{f.statKey.Name()} }
func (f *wordSetRatioFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *wordSetRatioFilter) CostHint() float64     { return f.costHint }

func (f *wordSetRatioFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(f.statKey); ok {
		return nil
	}
	words := ops.WordsLowerOf(s)
	if len(words) == 0 {
		s.Stats.SetFloat(f.statKey, 0)
		return nil
	}
	hits := 0
	for _, w := range words {
		if _, ok := f.set[w]; ok {
			hits++
		}
	}
	s.Stats.SetFloat(f.statKey, float64(hits)/float64(len(words)))
	return nil
}

func (f *wordSetRatioFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(f.statKey)
	return v >= f.min && v <= f.max
}

// lexiconCountFilter counts lexicon members (verbs / nouns) and keeps
// samples with at least minNum, the mechanism behind text_action_filter
// and text_entity_dependency_filter.
type lexiconCountFilter struct {
	base
	statKey sample.StatKey
	member  func(string) bool
	minNum  float64
}

func (f *lexiconCountFilter) StatKeys() []string    { return []string{f.statKey.Name()} }
func (f *lexiconCountFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *lexiconCountFilter) CostHint() float64     { return 2 }

func (f *lexiconCountFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(f.statKey); ok {
		return nil
	}
	n := 0
	for _, w := range ops.WordsLowerOf(s) {
		if f.member(w) {
			n++
		}
	}
	s.Stats.SetFloat(f.statKey, float64(n))
	return nil
}

func (f *lexiconCountFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(f.statKey)
	return v >= f.minNum
}
