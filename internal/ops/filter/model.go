package filter

import (
	"math"
	"sort"
	"sync"

	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/text"
)

// Model-backed filters: language identification, perplexity, token count
// and quality score. These are the expensive OPs that the reordering pass
// schedules last (Sec. 6), so they see fewer samples.

func init() {
	ops.Register("language_id_score_filter", ops.CategoryFilter, "general,multilingual",
		func(p ops.Params) (ops.OP, error) {
			return &languageIDFilter{
				base:     newBase("language_id_score_filter", p),
				lang:     p.String("lang", "en"),
				minScore: p.Float("min_score", 0.5),
			}, nil
		})
	ops.Register("perplexity_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &perplexityFilter{
				base:   newBase("perplexity_filter", p),
				maxPPL: p.Float("max_ppl", 1500),
			}, nil
		})
	ops.Register("token_num_filter", ops.CategoryFilter, "general",
		func(p ops.Params) (ops.OP, error) {
			return &tokenNumFilter{
				base:      newBase("token_num_filter", p),
				rangeKeep: newRange(p, "min_num", 10, "max_num", 1e9),
			}, nil
		})
	ops.Register("quality_score_filter", ops.CategoryFilter, "general,pre-training",
		func(p ops.Params) (ops.OP, error) {
			return &qualityScoreFilter{
				base:     newBase("quality_score_filter", p),
				minScore: p.Float("min_score", 0.5),
			}, nil
		})
}

var (
	langIDOnce sync.Once
	langID     *text.LangID
)

func sharedLangID() *text.LangID {
	langIDOnce.Do(func() { langID = text.NewLangID() })
	return langID
}

type languageIDFilter struct {
	base
	lang     string
	minScore float64
}

// Interned stat keys for the model-backed filters.
var (
	keyLang         = sample.InternStatKey("lang")
	keyLangScore    = sample.InternStatKey("lang_score")
	keyPerplexity   = sample.InternStatKey("perplexity")
	keyNumTokens    = sample.InternStatKey("num_tokens")
	keyQualityScore = sample.InternStatKey("quality_score")
)

func (f *languageIDFilter) StatKeys() []string { return []string{"lang", "lang_score"} }
func (f *languageIDFilter) CostHint() float64  { return 6 }

func (f *languageIDFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyLangScore); ok {
		return nil
	}
	lang, score := sharedLangID().Classify(f.text(s))
	s.Stats.SetString(keyLang, lang)
	s.Stats.SetFloat(keyLangScore, score)
	return nil
}

func (f *languageIDFilter) Keep(s *sample.Sample) bool {
	lang, _ := s.Stats.String(keyLang)
	score, _ := s.Stats.Float(keyLangScore)
	return lang == f.lang && score >= f.minScore
}

type perplexityFilter struct {
	base
	maxPPL float64
}

func (f *perplexityFilter) StatKeys() []string    { return []string{"perplexity"} }
func (f *perplexityFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *perplexityFilter) CostHint() float64     { return 8 }

func (f *perplexityFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyPerplexity); ok {
		return nil
	}
	words := ops.WordsLowerOf(s)
	var ppl float64
	if m := getPerplexityModel(); m != nil {
		ppl = m.PerplexityWords(words)
	} else {
		ppl = fallbackPerplexity(words)
	}
	s.Stats.SetFloat(keyPerplexity, ppl)
	return nil
}

func (f *perplexityFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyPerplexity)
	return v <= f.maxPPL
}

// fallbackPerplexity is used when no LM has been installed: an entropy
// proxy over the word distribution (degenerate repetitive text scores low,
// random noise scores high) scaled into a KenLM-like range.
//
// The count values are summed in sorted order: floating-point addition is
// not associative, and iterating the map directly would make the result
// depend on Go's randomized map order — breaking the guarantee that
// pipeline output is independent of worker count.
func fallbackPerplexity(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	counts := make(map[string]int, len(words))
	for _, w := range words {
		counts[w]++
	}
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	sort.Ints(vals)
	var h float64
	n := float64(len(words))
	for _, c := range vals {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return math.Pow(2, h) * 40
}

type tokenNumFilter struct {
	base
	rangeKeep
}

func (f *tokenNumFilter) StatKeys() []string    { return []string{"num_tokens"} }
func (f *tokenNumFilter) ContextKeys() []string { return []string{ops.CtxWordsLower} }
func (f *tokenNumFilter) CostHint() float64     { return 4 }

func (f *tokenNumFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyNumTokens); ok {
		return nil
	}
	var n int
	if c := getTokenCounter(); c != nil {
		n = c.CountTokens(f.text(s))
	} else {
		// Fallback heuristic: subword tokenizers emit ~4/3 tokens per word.
		n = len(ops.WordsLowerOf(s)) * 4 / 3
	}
	s.Stats.SetFloat(keyNumTokens, float64(n))
	return nil
}

func (f *tokenNumFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyNumTokens)
	return f.within(v)
}

type qualityScoreFilter struct {
	base
	minScore float64
}

func (f *qualityScoreFilter) StatKeys() []string { return []string{"quality_score"} }
func (f *qualityScoreFilter) CostHint() float64  { return 5 }

func (f *qualityScoreFilter) ComputeStats(s *sample.Sample) error {
	if _, ok := s.Stats.Float(keyQualityScore); ok {
		return nil
	}
	t := f.text(s)
	var score float64
	if q := getQualityScorer(); q != nil {
		score = q.QualityScore(t)
	} else {
		score = heuristicQuality(t)
	}
	s.Stats.SetFloat(keyQualityScore, score)
	return nil
}

func (f *qualityScoreFilter) Keep(s *sample.Sample) bool {
	v, _ := s.Stats.Float(keyQualityScore)
	return v >= f.minScore
}

// heuristicQuality blends cheap signals into a [0,1] score when no trained
// classifier is installed: mostly-alphanumeric, low-special-character text
// with a healthy stopword share looks like prose.
func heuristicQuality(t string) float64 {
	if t == "" {
		return 0
	}
	alnum := text.AlnumRatio(t)
	special := text.SpecialCharRatio(t)
	words := text.WordsLower(t)
	stop := 0
	sw := text.Stopwords("en")
	for _, w := range words {
		if _, ok := sw[w]; ok {
			stop++
		}
	}
	stopRatio := 0.0
	if len(words) > 0 {
		stopRatio = float64(stop) / float64(len(words))
	}
	score := 0.5*alnum + 0.3*math.Min(stopRatio*3, 1) + 0.2*(1-math.Min(special*4, 1))
	return math.Max(0, math.Min(1, score))
}
