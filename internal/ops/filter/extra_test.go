package filter

import (
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/sample"
)

func TestSentenceNumFilter(t *testing.T) {
	if textVerdict(t, "sentence_num_filter", ops.Params{"min_num": 3}, "Only one sentence here.") {
		t.Fatal("single sentence accepted")
	}
	if !textVerdict(t, "sentence_num_filter", ops.Params{"min_num": 2, "max_num": 10}, "First. Second. Third.") {
		t.Fatal("three sentences rejected")
	}
}

func TestAverageWordLengthFilter(t *testing.T) {
	if !textVerdict(t, "average_word_length_filter", nil, "normal words appear throughout this sentence") {
		t.Fatal("normal prose rejected")
	}
	if textVerdict(t, "average_word_length_filter", nil, "a b c d e f g h i j") {
		t.Fatal("single-letter soup accepted")
	}
	long := strings.Repeat("pneumonoultramicroscopic ", 10)
	if textVerdict(t, "average_word_length_filter", nil, long) {
		t.Fatal("overlong-word text accepted")
	}
}

func TestUniqueWordsRatioFilter(t *testing.T) {
	if !textVerdict(t, "unique_words_ratio_filter", ops.Params{"min_ratio": 0.5}, "every word here is completely distinct") {
		t.Fatal("varied text rejected")
	}
	if textVerdict(t, "unique_words_ratio_filter", ops.Params{"min_ratio": 0.5}, strings.Repeat("same ", 40)) {
		t.Fatal("degenerate text accepted")
	}
}

func TestExtraFiltersShareWordContext(t *testing.T) {
	s := textSample("several distinct words compose this rather pleasant sentence")
	for _, name := range []string{"average_word_length_filter", "unique_words_ratio_filter", "word_num_filter"} {
		op, _ := ops.Build(name, nil)
		op.(ops.Filter).ComputeStats(s)
	}
	if s.ContextLen() != 1 {
		t.Fatalf("context entries = %d, want 1 shared", s.ContextLen())
	}
}

func textSample(text string) *sample.Sample { return sample.New(text) }
