package ops

import (
	"testing"

	"repro/internal/sample"
)

func TestParamsTypedGetters(t *testing.T) {
	p := Params{
		"f":  3.5,
		"i":  7,
		"i2": 4.0, // JSON numbers arrive as float64
		"s":  "hello",
		"b":  true,
		"ls": []any{"a", "b", 3},
		"ts": []string{"x", "y"},
	}
	if v := p.Float("f", 0); v != 3.5 {
		t.Fatalf("Float = %v", v)
	}
	if v := p.Float("i", 0); v != 7 {
		t.Fatalf("Float(int) = %v", v)
	}
	if v := p.Float("missing", 9); v != 9 {
		t.Fatalf("Float default = %v", v)
	}
	if v := p.Int("i2", 0); v != 4 {
		t.Fatalf("Int(float) = %v", v)
	}
	if v := p.String("s", ""); v != "hello" {
		t.Fatalf("String = %v", v)
	}
	if v := p.String("missing", "d"); v != "d" {
		t.Fatalf("String default = %v", v)
	}
	if !p.Bool("b", false) {
		t.Fatal("Bool = false")
	}
	if got := p.Strings("ls"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Strings([]any) = %v", got)
	}
	if got := p.Strings("ts"); len(got) != 2 || got[1] != "y" {
		t.Fatalf("Strings([]string) = %v", got)
	}
	if got := p.Strings("missing"); got != nil {
		t.Fatalf("Strings missing = %v", got)
	}
}

type fakeOP struct{ name string }

func (f fakeOP) Name() string { return f.name }

type costedOP struct {
	fakeOP
	cost float64
}

func (c costedOP) CostHint() float64 { return c.cost }

type ctxOP struct {
	fakeOP
	keys []string
}

func (c ctxOP) ContextKeys() []string { return c.keys }

func TestCostAndContextHelpers(t *testing.T) {
	if CostOf(fakeOP{"a"}) != 1 {
		t.Fatal("default cost must be 1")
	}
	if CostOf(costedOP{fakeOP{"b"}, 5}) != 5 {
		t.Fatal("cost hint ignored")
	}
	if ContextKeysOf(fakeOP{"a"}) != nil {
		t.Fatal("default context keys must be nil")
	}
	keys := ContextKeysOf(ctxOP{fakeOP{"c"}, []string{CtxWords}})
	if len(keys) != 1 || keys[0] != CtxWords {
		t.Fatalf("context keys = %v", keys)
	}
}

func TestRegistryBuildUnknown(t *testing.T) {
	if _, err := Build("definitely_not_registered", nil); err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("ops_test_dup_op", CategoryMapper, "test", func(p Params) (OP, error) {
		return fakeOP{"ops_test_dup_op"}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("ops_test_dup_op", CategoryMapper, "test", func(p Params) (OP, error) {
		return fakeOP{"ops_test_dup_op"}, nil
	})
}

func TestContextHelpersShareCache(t *testing.T) {
	s := sample.New("Hello world one two")
	w1 := WordsLowerOf(s)
	w2 := WordsLowerOf(s)
	if len(w1) != 4 {
		t.Fatalf("words = %v", w1)
	}
	// Same backing slice → same first element address semantics: mutate one
	// and observe the other (they must be the identical cached value).
	w1[0] = "mutated"
	if w2[0] != "mutated" {
		t.Fatal("WordsLowerOf must return the cached slice")
	}
	if !s.HasContext(CtxWordsLower) {
		t.Fatal("context key not cached")
	}
	LinesOf(s)
	SentencesOf(s)
	WordsOf(s)
	if s.ContextLen() != 4 {
		t.Fatalf("context entries = %d, want 4", s.ContextLen())
	}
}
