// Package ops defines the standardized operator pool contract of Sec. 3:
// the Mapper / Filter / Deduplicator interfaces (Listing 1 in the paper),
// a global registry OP implementations self-register into, typed
// configuration parameters, and the shared-context helpers that back the
// context manager used by OP fusion (Sec. 6).
package ops

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// Category classifies an operator.
type Category string

// Operator categories, matching Table 1.
const (
	CategoryMapper       Category = "mapper"
	CategoryFilter       Category = "filter"
	CategoryDeduplicator Category = "deduplicator"
)

// OP is the common surface of every operator.
type OP interface {
	// Name returns the registered snake_case operator name.
	Name() string
}

// Mapper edits a sample's text in place (single-sample processing).
type Mapper interface {
	OP
	// Process transforms the sample in place.
	Process(s *sample.Sample) error
}

// Filter conditionally removes samples. Its two phases are decoupled as in
// Listing 1: ComputeStats writes per-sample statistics into sample.Stats,
// and Keep reads only those statistics to return the boolean verdict.
// The decoupling lets the analyzer consume statistics for the entire
// dataset and lets the executor fuse stat computation across filters.
type Filter interface {
	OP
	// StatKeys lists the stats this filter writes (e.g. "word_count").
	StatKeys() []string
	// ComputeStats computes and records the filter's statistics.
	ComputeStats(s *sample.Sample) error
	// Keep reports whether the sample passes, reading only sample.Stats.
	Keep(s *sample.Sample) bool
}

// StatsBatcher is implemented by filters that process a whole batch of
// samples per call, owning scratch attachment and context clearing for
// the batch — the executor then skips its per-sample wrapper. Fused
// filters implement it to amortize member-attribution atomics.
type StatsBatcher interface {
	// ComputeStatsBatch computes stats for every sample of the batch.
	ComputeStatsBatch(batch []*sample.Sample) error
}

// KeepBatcher is implemented by filters that judge a whole batch per
// call, filling verdict[i] for batch[i].
type KeepBatcher interface {
	KeepBatch(batch []*sample.Sample, verdict []bool)
}

// DupPair records one detected duplicate: the dropped sample index and the
// retained representative index (for the tracer).
type DupPair struct {
	Dropped, Kept int
}

// Deduplicator removes duplicated samples at dataset level.
type Deduplicator interface {
	OP
	// Dedup returns the deduplicated dataset (order preserved, first
	// occurrence kept) and the duplicate pairs removed.
	Dedup(d *dataset.Dataset, np int) (*dataset.Dataset, []DupPair, error)
}

// StreamDeduper is a Deduplicator whose duplicate verdict depends only on
// a per-sample signature: two samples are duplicates exactly when their
// signatures collide. Such an op does not force a pipeline barrier in the
// streaming engine — shards consult a shared signature index in shard
// order instead, keeping first-occurrence semantics identical to the
// batch path. Signature must be pure and safe for concurrent calls.
type StreamDeduper interface {
	Deduplicator
	// Signature returns the sample's dedup signature.
	Signature(s *sample.Sample) uint64
}

// SpillSpec tells a spill-capable OP where it may write intermediate
// runs and how much memory its indexes may hold before spilling.
type SpillSpec struct {
	// Dir is the spill directory (shared; ops create uniquely-named
	// files inside it and remove them when done).
	Dir string
	// BudgetBytes bounds the op's in-memory index footprint. Zero
	// disables spilling: the op keeps everything resident.
	BudgetBytes int64
}

// SpillStats reports what a spill-capable OP actually did on its last
// application, for telemetry.
type SpillStats struct {
	// Spilled is true when the disk-backed path engaged (estimated
	// index size exceeded the budget).
	Spilled bool
	// Runs counts spill files (sorted runs / partitions) written.
	Runs int64
	// SpilledBytes is the total bytes written to spill files.
	SpilledBytes int64
}

// Spiller is implemented by Deduplicators (and other index-heavy OPs)
// that can bound their in-memory state by spilling to disk. The planner
// assigns each spill-capable node a budget slice from the run's
// -target-mem-mb; executors call ConfigureSpill before the op runs and
// read SpillStats after, to emit spill metrics and journal events.
type Spiller interface {
	// ConfigureSpill installs the spill directory and budget. Called at
	// most once, before the op executes; a zero spec keeps the op fully
	// in memory.
	ConfigureSpill(SpillSpec)
	// SpillStats reports spill activity from the most recent execution.
	SpillStats() SpillStats
}

// ContextUser is implemented by OPs that consume shared per-sample
// intermediates (segmented words, split lines, ...). The fusion pass
// groups filters by overlapping context keys.
type ContextUser interface {
	ContextKeys() []string
}

// Coster is implemented by OPs that want to advertise a relative cost for
// the reordering pass; higher values are scheduled later within a
// commutative group. OPs without the method default to cost 1.
type Coster interface {
	CostHint() float64
}

// CostOf returns the advertised cost of an OP (default 1).
func CostOf(op OP) float64 {
	if c, ok := op.(Coster); ok {
		return c.CostHint()
	}
	return 1
}

// ContextKeysOf returns the declared context keys of an OP (nil if none).
func ContextKeysOf(op OP) []string {
	if u, ok := op.(ContextUser); ok {
		return u.ContextKeys()
	}
	return nil
}

// Params carries operator configuration from a recipe. Values typically
// arrive from parsed JSON/YAML, so getters accept the loose types those
// parsers produce.
type Params map[string]any

// Float returns the float64 at key, or def.
func (p Params) Float(key string, def float64) float64 {
	v, ok := p[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return def
}

// Int returns the int at key, or def.
func (p Params) Int(key string, def int) int {
	v, ok := p[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case float64:
		return int(x)
	}
	return def
}

// String returns the string at key, or def.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// Bool returns the bool at key, or def.
func (p Params) Bool(key string, def bool) bool {
	if v, ok := p[key].(bool); ok {
		return v
	}
	return def
}

// Strings returns the string slice at key (accepting []any), or nil.
func (p Params) Strings(key string) []string {
	switch v := p[key].(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// Factory builds an operator from parameters.
type Factory func(p Params) (OP, error)

// Info describes a registered operator for documentation and tooling.
type Info struct {
	Name     string
	Category Category
	Usage    string // typical usage scenario tags, e.g. "general,en"
}

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
	infos     = map[string]Info{}
)

// Register adds an operator to the global registry. It panics on duplicate
// names: registration happens in init functions, so a duplicate is a
// programming error.
func Register(name string, cat Category, usage string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("ops: duplicate registration of %q", name))
	}
	factories[name] = f
	infos[name] = Info{Name: name, Category: cat, Usage: usage}
}

// Build instantiates the named operator with params.
func Build(name string, p Params) (OP, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ops: unknown operator %q", name)
	}
	op, err := f(p)
	if err != nil {
		return nil, fmt.Errorf("ops: build %s: %w", name, err)
	}
	return op, nil
}

// List returns Info for every registered operator, sorted by name.
func List() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(infos))
	for _, i := range infos {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered operator names.
func Names() []string {
	list := List()
	names := make([]string, len(list))
	for i, inf := range list {
		names[i] = inf.Name
	}
	return names
}

// InfoFor returns the registry info for one operator.
func InfoFor(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := infos[name]
	return i, ok
}
