package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// RenderHistogram draws an ASCII histogram of values, the terminal
// equivalent of the analyzer's per-dimension histograms.
func RenderHistogram(name string, values []float64, bins, width int) string {
	if bins <= 0 {
		bins = 10
	}
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", name, len(values))
	if len(values) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	counts := binCounts(sorted, bins)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	binWidth := (hi - lo) / float64(bins)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		barLen := 0
		if maxCount > 0 {
			barLen = c * width / maxCount
		}
		fmt.Fprintf(&b, "  [%10.3f, %10.3f) %-*s %d\n",
			lo+float64(i)*binWidth, lo+float64(i+1)*binWidth,
			width, strings.Repeat("#", barLen), c)
	}
	return b.String()
}

// RenderBoxPlot draws an ASCII box plot (min, quartiles, max) of values.
func RenderBoxPlot(name string, values []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	s := Summarize(name, values)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: min=%.3f p25=%.3f median=%.3f p75=%.3f max=%.3f\n",
		name, s.Min, s.P25, s.P50, s.P75, s.Max)
	if s.Count == 0 || s.Max == s.Min {
		return b.String()
	}
	pos := func(v float64) int {
		p := int((v - s.Min) / (s.Max - s.Min) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := pos(s.Min); i <= pos(s.Max); i++ {
		row[i] = '-'
	}
	for i := pos(s.P25); i <= pos(s.P75); i++ {
		row[i] = '='
	}
	row[pos(s.Min)] = '['
	row[pos(s.Max)] = ']'
	row[pos(s.P50)] = '|'
	b.WriteString("  " + string(row) + "\n")
	return b.String()
}

// RenderSummaryTable renders every probe dimension as a table row.
func (p *Probe) RenderSummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %10s %10s %10s %10s %10s %8s\n",
		"dimension", "count", "mean", "std", "min", "median", "max", "entropy")
	for _, name := range p.DimNames() {
		s := p.Dims[name]
		fmt.Fprintf(&b, "%-26s %8d %10.3f %10.3f %10.3f %10.3f %10.3f %8.3f\n",
			s.Name, s.Count, s.Mean, s.Std, s.Min, s.P50, s.Max, s.Entropy)
	}
	return b.String()
}

// RenderDiversity renders the top verb–noun pairs (the text version of the
// Figure 5 pie plots).
func (p *Probe) RenderDiversity(topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verb-noun diversity: %d distinct pairs, unique-word ratio %.3f\n",
		len(p.Diversity), p.UniqueWordRatio)
	total := 0
	for _, pc := range p.Diversity {
		total += pc.Count
	}
	for i, pc := range p.Diversity {
		if i >= topK {
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(pc.Count) / float64(total)
		}
		fmt.Fprintf(&b, "  %-14s -> %-14s %6d (%5.1f%%)\n", pc.Verb, pc.Noun, pc.Count, share)
	}
	return b.String()
}

// DimDelta compares one dimension across two probes.
type DimDelta struct {
	Name                  string
	MeanBefore, MeanAfter float64
	P50Before, P50After   float64
}

// Compare diffs two probes dimension by dimension — the before/after view
// of Figure 4(c). Only dimensions present in both probes are reported.
func Compare(before, after *Probe) []DimDelta {
	var out []DimDelta
	for _, name := range before.DimNames() {
		b := before.Dims[name]
		a, ok := after.Dims[name]
		if !ok {
			continue
		}
		out = append(out, DimDelta{
			Name:       name,
			MeanBefore: b.Mean, MeanAfter: a.Mean,
			P50Before: b.P50, P50After: a.P50,
		})
	}
	return out
}

// RenderCompare renders a probe diff as a table.
func RenderCompare(deltas []DimDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %12s %10s\n", "dimension", "mean before", "mean after", "Δmean")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-26s %12.3f %12.3f %+10.3f\n", d.Name, d.MeanBefore, d.MeanAfter, d.MeanAfter-d.MeanBefore)
	}
	return b.String()
}
