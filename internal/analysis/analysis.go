// Package analysis implements the analyzer of Sec. 4.2: per-sample
// statistics across 13+ dimensions, dataset-level summaries (count, mean,
// std, min/max, quantiles, entropy), ASCII histograms and box plots (the
// terminal rendering of the paper's interactive visualizations), probe
// diffs for before/after comparison (Figure 4c), and verb–noun diversity
// analysis (the pie plots of Figures 2 and 5).
package analysis

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/text"
)

// Summary condenses one statistical dimension over a dataset.
type Summary struct {
	Name  string
	Count int
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
	P25   float64
	P50   float64
	P75   float64
	// Entropy of the 20-bin histogram, in bits: low entropy means the
	// dimension is concentrated.
	Entropy float64
}

// Summarize computes a Summary over values.
func Summarize(name string, values []float64) Summary {
	s := Summary{Name: name, Count: len(values)}
	if len(values) == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	// Welford's streaming mean/variance: numerically stable and immune to
	// the sum overflow a naive two-pass computation hits on huge values.
	var mean, m2 float64
	for i, v := range sorted {
		n := float64(i + 1)
		delta := v - mean
		mean += delta / n
		m2 += delta * (v - mean)
	}
	s.Mean = mean
	s.Std = math.Sqrt(m2 / float64(len(sorted)))
	s.P25 = quantile(sorted, 0.25)
	s.P50 = quantile(sorted, 0.50)
	s.P75 = quantile(sorted, 0.75)
	s.Entropy = histogramEntropy(sorted, 20)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func histogramEntropy(sorted []float64, bins int) float64 {
	counts := binCounts(sorted, bins)
	var h float64
	n := float64(len(sorted))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func binCounts(sorted []float64, bins int) []int {
	counts := make([]int, bins)
	if len(sorted) == 0 {
		return counts
	}
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		counts[0] = len(sorted)
		return counts
	}
	width := (hi - lo) / float64(bins)
	for _, v := range sorted {
		b := int((v - lo) / width)
		// Guard against rounding and float-overflow artifacts (a huge range
		// can make width infinite and the quotient NaN).
		if b < 0 || b != b {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// PairCount is one verb–noun pair with its frequency.
type PairCount struct {
	Verb, Noun string
	Count      int
}

// Probe is the data probe of Figure 5: dimension summaries plus lexical
// diversity structure.
type Probe struct {
	N    int
	Dims map[string]Summary
	// values retained for rendering histograms.
	values map[string][]float64
	// Diversity holds verb–noun pairs sorted by frequency.
	Diversity []PairCount
	// UniqueWordRatio is distinct words / total words over the dataset.
	UniqueWordRatio float64
}

// DimNames returns the analyzed dimensions, sorted.
func (p *Probe) DimNames() []string {
	names := make([]string, 0, len(p.Dims))
	for k := range p.Dims {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Values returns the raw per-sample values of one dimension.
func (p *Probe) Values(dim string) []float64 { return p.values[dim] }

// Analyze computes the default probe dimensions over the dataset. Any
// numeric stats already present on samples (from Filter OPs) are included
// as extra dimensions.
func Analyze(d *dataset.Dataset, np int) *Probe {
	n := d.Len()
	dims := map[string][]float64{}
	addDim := func(name string) []float64 {
		v := make([]float64, n)
		dims[name] = v
		return v
	}
	var (
		textLen     = addDim("text_len")
		numWords    = addDim("num_words")
		avgWordLen  = addDim("avg_word_len")
		numLines    = addDim("num_lines")
		avgLineLen  = addDim("avg_line_length")
		maxLineLen  = addDim("max_line_length")
		numSent     = addDim("num_sentences")
		numParas    = addDim("num_paragraphs")
		alnumRatio  = addDim("alnum_ratio")
		specialChar = addDim("special_char_ratio")
		digitRatio  = addDim("digit_ratio")
		stopRatio   = addDim("stopwords_ratio")
		flaggedRat  = addDim("flagged_words_ratio")
		charRep     = addDim("char_rep_ratio")
		wordRep     = addDim("word_rep_ratio")
		uniqueRatio = addDim("unique_word_ratio")
	)

	stopwords := text.Stopwords("en")
	flagged := text.FlaggedWords("en")
	pairCh := make(chan [][2]string, n)
	wordTotals := make([]int, n)
	wordUniques := make([]int, n)

	_ = d.MapIndexed(np, func(i int, s *sample.Sample) error {
		t := s.Text
		runes := len([]rune(t))
		textLen[i] = float64(runes)

		words := text.WordsLower(t)
		numWords[i] = float64(len(words))
		wordTotals[i] = len(words)
		var wl int
		uniq := make(map[string]struct{}, len(words))
		stops, flags := 0, 0
		for _, w := range words {
			wl += len([]rune(w))
			uniq[w] = struct{}{}
			if _, ok := stopwords[w]; ok {
				stops++
			}
			if _, ok := flagged[w]; ok {
				flags++
			}
		}
		wordUniques[i] = len(uniq)
		if len(words) > 0 {
			avgWordLen[i] = float64(wl) / float64(len(words))
			stopRatio[i] = float64(stops) / float64(len(words))
			flaggedRat[i] = float64(flags) / float64(len(words))
			uniqueRatio[i] = float64(len(uniq)) / float64(len(words))
		}

		lines := text.Lines(t)
		numLines[i] = float64(len(lines))
		var totalLineLen, maxL int
		for _, l := range lines {
			ll := len([]rune(l))
			totalLineLen += ll
			if ll > maxL {
				maxL = ll
			}
		}
		if len(lines) > 0 {
			avgLineLen[i] = float64(totalLineLen) / float64(len(lines))
		}
		maxLineLen[i] = float64(maxL)

		numSent[i] = float64(len(text.Sentences(t)))
		numParas[i] = float64(len(text.Paragraphs(t)))
		alnumRatio[i] = text.AlnumRatio(t)
		specialChar[i] = text.SpecialCharRatio(t)
		digitRatio[i] = text.DigitRatio(t)
		charRep[i] = text.RepetitionRatio(text.CharNGrams(t, 10))
		wordRep[i] = text.RepetitionRatio(text.WordNGrams(words, 5))

		pairCh <- text.VerbNounPairs(words)
		return nil
	})
	close(pairCh)

	pairCounts := map[[2]string]int{}
	for ps := range pairCh {
		for _, p := range ps {
			pairCounts[p]++
		}
	}
	var diversity []PairCount
	for p, c := range pairCounts {
		diversity = append(diversity, PairCount{Verb: p[0], Noun: p[1], Count: c})
	}
	sort.Slice(diversity, func(i, j int) bool {
		if diversity[i].Count != diversity[j].Count {
			return diversity[i].Count > diversity[j].Count
		}
		if diversity[i].Verb != diversity[j].Verb {
			return diversity[i].Verb < diversity[j].Verb
		}
		return diversity[i].Noun < diversity[j].Noun
	})

	// Fold in stats computed by Filter OPs, when present.
	statDims := map[string][]float64{}
	for _, s := range d.Samples {
		for _, key := range s.Stats.Keys() {
			if v, ok := s.Stat(key); ok {
				statDims["stats."+key] = append(statDims["stats."+key], v)
			}
		}
	}
	for k, v := range statDims {
		if _, clash := dims[k]; !clash {
			dims[k] = v
		}
	}

	probe := &Probe{N: n, Dims: map[string]Summary{}, values: dims, Diversity: diversity}
	var totalWords, totalUnique int
	for i := 0; i < n; i++ {
		totalWords += wordTotals[i]
		totalUnique += wordUniques[i]
	}
	if totalWords > 0 {
		probe.UniqueWordRatio = float64(totalUnique) / float64(totalWords)
	}
	for name, vals := range dims {
		probe.Dims[name] = Summarize(name, vals)
	}
	return probe
}
