package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/dataset"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize("x", []float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles = %v %v", s.P25, s.P75)
	}
}

func TestSummarizeEmptyAndConstant(t *testing.T) {
	if s := Summarize("e", nil); s.Count != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize("c", []float64{7, 7, 7})
	if s.Std != 0 || s.Min != 7 || s.Max != 7 || s.Entropy != 0 {
		t.Fatalf("constant = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize("q", []float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("median of {0,10} = %v", s.P50)
	}
}

func TestAnalyzeDimensions(t *testing.T) {
	d := corpus.Wiki(corpus.Options{Docs: 50, Seed: 3})
	p := Analyze(d, 4)
	if p.N != 50 {
		t.Fatalf("N = %d", p.N)
	}
	// The paper describes 13+ default dimensions.
	if len(p.Dims) < 13 {
		t.Fatalf("dimensions = %d (%v)", len(p.Dims), p.DimNames())
	}
	wc := p.Dims["num_words"]
	if wc.Mean <= 0 || wc.Count != 50 {
		t.Fatalf("num_words = %+v", wc)
	}
	if p.UniqueWordRatio <= 0 || p.UniqueWordRatio > 1 {
		t.Fatalf("unique word ratio = %v", p.UniqueWordRatio)
	}
}

func TestAnalyzeDetectsQualityDifference(t *testing.T) {
	clean := Analyze(corpus.Wiki(corpus.Options{Docs: 60, Seed: 1}), 4)
	noisy := Analyze(corpus.Web(corpus.Options{Docs: 60, Seed: 2}), 4)
	if clean.Dims["special_char_ratio"].Mean >= noisy.Dims["special_char_ratio"].Mean {
		t.Fatal("special chars should be higher on web tier")
	}
	if clean.Dims["flagged_words_ratio"].Mean >= noisy.Dims["flagged_words_ratio"].Mean {
		t.Fatal("flagged words should be higher on web tier")
	}
}

func TestAnalyzeIncludesFilterStats(t *testing.T) {
	d := corpus.Wiki(corpus.Options{Docs: 10, Seed: 4})
	for _, s := range d.Samples {
		s.SetStat("perplexity", 123)
	}
	p := Analyze(d, 2)
	if _, ok := p.Dims["stats.perplexity"]; !ok {
		t.Fatalf("filter stats not folded in: %v", p.DimNames())
	}
}

func TestAnalyzeDiversity(t *testing.T) {
	d := corpus.IFT(corpus.Options{Docs: 150, Seed: 5})
	p := Analyze(d, 4)
	if len(p.Diversity) < 20 {
		t.Fatalf("diversity pairs = %d", len(p.Diversity))
	}
	// Sorted by count descending.
	for i := 1; i < len(p.Diversity); i++ {
		if p.Diversity[i].Count > p.Diversity[i-1].Count {
			t.Fatal("diversity not sorted")
		}
	}
}

func TestAnalyzeEmptyDataset(t *testing.T) {
	p := Analyze(dataset.New(nil), 2)
	if p.N != 0 {
		t.Fatalf("N = %d", p.N)
	}
	if s := p.Dims["num_words"]; s.Count != 0 {
		t.Fatalf("empty dims = %+v", s)
	}
}

func TestRenderHistogram(t *testing.T) {
	out := RenderHistogram("dim", []float64{1, 1, 2, 2, 2, 3, 9}, 4, 20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "dim (n=7)") {
		t.Fatalf("histogram = %q", out)
	}
	empty := RenderHistogram("none", nil, 4, 20)
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty histogram = %q", empty)
	}
}

func TestRenderBoxPlot(t *testing.T) {
	out := RenderBoxPlot("dim", []float64{1, 25, 50, 75, 100}, 40)
	for _, marker := range []string{"[", "]", "|", "="} {
		if !strings.Contains(out, marker) {
			t.Fatalf("box plot missing %q: %q", marker, out)
		}
	}
}

func TestRenderSummaryAndDiversity(t *testing.T) {
	d := corpus.IFT(corpus.Options{Docs: 50, Seed: 6})
	p := Analyze(d, 2)
	table := p.RenderSummaryTable()
	if !strings.Contains(table, "num_words") || !strings.Contains(table, "entropy") {
		t.Fatalf("summary table = %q", table)
	}
	div := p.RenderDiversity(5)
	if !strings.Contains(div, "->") {
		t.Fatalf("diversity = %q", div)
	}
}

func TestCompareProbes(t *testing.T) {
	before := Analyze(corpus.Web(corpus.Options{Docs: 40, Seed: 7}), 2)
	after := Analyze(corpus.Wiki(corpus.Options{Docs: 40, Seed: 8}), 2)
	deltas := Compare(before, after)
	if len(deltas) < 13 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	var found bool
	for _, d := range deltas {
		if d.Name == "special_char_ratio" {
			found = true
			if d.MeanAfter >= d.MeanBefore {
				t.Fatal("cleaning should reduce special chars")
			}
		}
	}
	if !found {
		t.Fatal("special_char_ratio missing from compare")
	}
	out := RenderCompare(deltas)
	if !strings.Contains(out, "Δmean") {
		t.Fatalf("compare render = %q", out)
	}
}

// Property: Summarize bounds — min <= p25 <= p50 <= p75 <= max, and the
// mean lies within [min, max].
func TestPropertySummarizeOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Restrict to magnitudes whose pairwise differences stay finite:
			// values near ±MaxFloat64 make v-min itself overflow, which no
			// summary statistic can represent.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e150 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize("p", vals)
		return s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 &&
			s.P75 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
