package lm

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/text"
)

var trainDocs = []string{
	"the committee published a detailed report about the new research program",
	"the researcher described a careful study about the local economy",
	"the teacher explained the important lesson about the national history",
	"the engineer designed a modern system for the regional market",
	"the writer created an interesting story about the quiet village",
	"the scientist analyzed the recent experiment about the forest climate",
	"the student reviewed the annual survey about the public library",
	"the company announced a practical plan for the private museum",
}

func trainedModel(order int) *Model {
	m := NewModel(order)
	for _, d := range trainDocs {
		m.TrainWords(text.WordsLower(d))
	}
	return m
}

func TestTrainingAccumulates(t *testing.T) {
	m := trainedModel(3)
	if m.TokensSeen() == 0 || m.VocabSize() == 0 {
		t.Fatalf("tokens=%d vocab=%d", m.TokensSeen(), m.VocabSize())
	}
	if m.Order() != 3 {
		t.Fatalf("order = %d", m.Order())
	}
}

func TestPerplexityInDomainVsOut(t *testing.T) {
	m := trainedModel(3)
	inDomain := text.WordsLower("the committee published a detailed report about the local economy")
	outDomain := text.WordsLower("zqx vbn wpk jjr qqq lmn zzz kkw pqr xyz nnm ghj")
	pplIn := m.PerplexityWords(inDomain)
	pplOut := m.PerplexityWords(outDomain)
	if !(pplIn < pplOut) {
		t.Fatalf("in-domain ppl %v must be < out-of-domain %v", pplIn, pplOut)
	}
	if pplIn <= 1 {
		t.Fatalf("in-domain ppl suspiciously low: %v", pplIn)
	}
}

func TestPerplexitySeenSequenceLowest(t *testing.T) {
	m := trainedModel(3)
	seen := text.WordsLower(trainDocs[0])
	shuffled := append([]string{}, seen...)
	for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	if m.PerplexityWords(seen) >= m.PerplexityWords(shuffled) {
		t.Fatal("verbatim training sequence should score better than its reversal")
	}
}

func TestPerplexityEdgeCases(t *testing.T) {
	m := NewModel(3)
	if got := m.PerplexityWords([]string{"a"}); !math.IsInf(got, 1) {
		t.Fatalf("untrained model ppl = %v, want +Inf", got)
	}
	m = trainedModel(3)
	if got := m.PerplexityWords(nil); got != 0 {
		t.Fatalf("empty input ppl = %v, want 0", got)
	}
}

func TestHigherOrderFitsBetter(t *testing.T) {
	uni := trainedModel(1)
	tri := trainedModel(3)
	probe := text.WordsLower(trainDocs[1])
	if tri.PerplexityWords(probe) >= uni.PerplexityWords(probe) {
		t.Fatal("trigram model should fit training text better than unigram")
	}
}

func TestCrossEntropyConsistentWithPerplexity(t *testing.T) {
	m := trainedModel(3)
	probe := text.WordsLower(trainDocs[2])
	h := m.CrossEntropyWords(probe)
	ppl := m.PerplexityWords(probe)
	if math.Abs(math.Pow(2, h)-ppl) > 1e-9*ppl {
		t.Fatalf("2^H = %v != ppl %v", math.Pow(2, h), ppl)
	}
}

func TestMoreCleanTrainingDataLowersEvalPerplexity(t *testing.T) {
	// The mechanism behind the Figure 7 experiment: a model trained on
	// more clean text scores clean held-out text better than a model
	// whose budget is partly noise.
	eval := text.WordsLower("the committee described a detailed plan about the public library in the city")

	clean := NewModel(3)
	for _, d := range trainDocs {
		clean.TrainWords(text.WordsLower(d))
		clean.TrainWords(text.WordsLower(d + " and the community welcomed the result"))
	}

	noisy := NewModel(3)
	for i, d := range trainDocs {
		noisy.TrainWords(text.WordsLower(d))
		noisy.TrainWords([]string{"zx9k", "qqpw", "kkj3", "wnm2", "pp0r", "zzt7", "jh5d", "qq11", strings.Repeat("x", 9), "b4n9", "vv2z", "mm8k"})
		_ = i
	}

	if clean.PerplexityWords(eval) >= noisy.PerplexityWords(eval) {
		t.Fatalf("clean-trained ppl %v should beat noisy-trained %v",
			clean.PerplexityWords(eval), noisy.PerplexityWords(eval))
	}
}

func TestOrderClamp(t *testing.T) {
	m := NewModel(0)
	if m.Order() != 1 {
		t.Fatalf("order = %d, want clamp to 1", m.Order())
	}
	m.TrainWords([]string{"a", "b"})
	if ppl := m.PerplexityWords([]string{"a"}); ppl <= 0 || math.IsInf(ppl, 1) {
		t.Fatalf("unigram ppl = %v", ppl)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(3)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != m.Order() || got.TokensSeen() != m.TokensSeen() || got.VocabSize() != m.VocabSize() {
		t.Fatalf("metadata lost: %d/%d/%d", got.Order(), got.TokensSeen(), got.VocabSize())
	}
	probe := text.WordsLower(trainDocs[3])
	if a, b := m.PerplexityWords(probe), got.PerplexityWords(probe); a != b {
		t.Fatalf("ppl changed after round trip: %v vs %v", a, b)
	}
}

func TestLoadCorruptModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"order":3,"counts":[{}]}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt model accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
