// Package lm implements a word n-gram language model with stupid backoff —
// the stand-in for the KenLM perplexity models of the paper's
// perplexity_filter, and the trainable "reference model" used by the
// simulated LLM training/evaluation loop (internal/llm).
package lm

import (
	"math"
	"strings"
)

// bosToken pads the left context of each document.
const bosToken = "<s>"

// Model is an order-N language model with stupid-backoff smoothing
// (Brants et al.): P(w|ctx) backs off to shorter contexts scaled by alpha,
// bottoming out in a unigram distribution with add-one smoothing over the
// observed vocabulary.
type Model struct {
	order  int
	alpha  float64
	counts []map[string]int // counts[k] holds (k+1)-gram counts
	ctx    []map[string]int // ctx[k] holds k-gram context totals for (k+1)-grams
	vocab  map[string]struct{}
	tokens int
}

// NewModel creates an untrained model of the given order (2–5 are
// sensible; order is clamped to at least 1). Alpha is the stupid-backoff
// factor, 0.4 by convention.
func NewModel(order int) *Model {
	if order < 1 {
		order = 1
	}
	m := &Model{
		order:  order,
		alpha:  0.4,
		counts: make([]map[string]int, order),
		ctx:    make([]map[string]int, order),
		vocab:  make(map[string]struct{}),
	}
	for k := 0; k < order; k++ {
		m.counts[k] = make(map[string]int)
		m.ctx[k] = make(map[string]int)
	}
	return m
}

// Order returns the model order.
func (m *Model) Order() int { return m.order }

// TokensSeen returns the number of training tokens consumed.
func (m *Model) TokensSeen() int { return m.tokens }

// VocabSize returns the observed vocabulary size.
func (m *Model) VocabSize() int { return len(m.vocab) }

// TrainWords feeds one document's word stream into the model.
func (m *Model) TrainWords(words []string) {
	if len(words) == 0 {
		return
	}
	padded := make([]string, 0, len(words)+m.order-1)
	for i := 0; i < m.order-1; i++ {
		padded = append(padded, bosToken)
	}
	padded = append(padded, words...)
	for i := m.order - 1; i < len(padded); i++ {
		w := padded[i]
		m.vocab[w] = struct{}{}
		m.tokens++
		for k := 0; k < m.order; k++ {
			// (k+1)-gram ending at i.
			start := i - k
			gram := strings.Join(padded[start:i+1], " ")
			m.counts[k][gram]++
			if k > 0 {
				ctx := strings.Join(padded[start:i], " ")
				m.ctx[k][ctx]++
			}
		}
	}
}

// prob returns the stupid-backoff score of word w given the context words
// (the last order-1 tokens before w).
func (m *Model) prob(context []string, w string) float64 {
	// Walk from the longest available context down to unigrams.
	for k := min(len(context), m.order-1); k >= 1; k-- {
		ctx := strings.Join(context[len(context)-k:], " ")
		gram := ctx + " " + w
		if c := m.counts[k][gram]; c > 0 {
			denom := m.ctx[k][ctx]
			if denom > 0 {
				return math.Pow(m.alpha, float64(min(len(context), m.order-1)-k)) *
					float64(c) / float64(denom)
			}
		}
	}
	// Unigram with add-one smoothing over the open vocabulary.
	c := m.counts[0][w]
	backoffs := min(len(context), m.order-1)
	return math.Pow(m.alpha, float64(backoffs)) *
		float64(c+1) / float64(m.tokens+len(m.vocab)+1)
}

// LogProbWords returns the total log2 probability and token count of a
// word stream.
func (m *Model) LogProbWords(words []string) (logProb float64, n int) {
	if len(words) == 0 || m.tokens == 0 {
		return 0, 0
	}
	padded := make([]string, 0, len(words)+m.order-1)
	for i := 0; i < m.order-1; i++ {
		padded = append(padded, bosToken)
	}
	padded = append(padded, words...)
	for i := m.order - 1; i < len(padded); i++ {
		p := m.prob(padded[max(0, i-m.order+1):i], padded[i])
		logProb += math.Log2(p)
		n++
	}
	return logProb, n
}

// PerplexityWords computes 2^(-logProb/n) for a word stream. It
// implements the filter.PerplexityScorer contract. An untrained model
// returns +Inf; empty input returns 0.
func (m *Model) PerplexityWords(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	if m.tokens == 0 {
		return math.Inf(1)
	}
	logProb, n := m.LogProbWords(words)
	return math.Pow(2, -logProb/float64(n))
}

// CrossEntropyWords returns bits per token of the stream under the model.
func (m *Model) CrossEntropyWords(words []string) float64 {
	if len(words) == 0 || m.tokens == 0 {
		return math.Inf(1)
	}
	logProb, n := m.LogProbWords(words)
	return -logProb / float64(n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
