package lm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// persisted is the on-disk form of a model. Counts are stored directly;
// vocabulary is reconstructed from the unigram table.
type persisted struct {
	Order  int              `json:"order"`
	Alpha  float64          `json:"alpha"`
	Tokens int              `json:"tokens"`
	Counts []map[string]int `json:"counts"`
	Ctx    []map[string]int `json:"ctx"`
}

// Save writes the model to path, making reference models durable
// artifacts (the paper's checkpoints bound to traceable training data).
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	err = json.NewEncoder(w).Encode(persisted{
		Order: m.order, Alpha: m.alpha, Tokens: m.tokens,
		Counts: m.counts, Ctx: m.ctx,
	})
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReaderSize(f, 1<<16))
}

// Read parses a persisted model from r.
func Read(r io.Reader) (*Model, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("lm: %w", err)
	}
	if p.Order < 1 || len(p.Counts) != p.Order || len(p.Ctx) != p.Order {
		return nil, fmt.Errorf("lm: corrupt model: order %d with %d/%d tables",
			p.Order, len(p.Counts), len(p.Ctx))
	}
	m := &Model{
		order: p.Order, alpha: p.Alpha, tokens: p.Tokens,
		counts: p.Counts, ctx: p.Ctx,
		vocab: make(map[string]struct{}, len(p.Counts[0])),
	}
	for w := range p.Counts[0] {
		m.vocab[w] = struct{}{}
	}
	return m, nil
}
