// Package corpus generates the deterministic synthetic corpora that stand
// in for the paper's real datasets (CommonCrawl, RedPajama, the Pile,
// Alpaca-CoT, TheStack, Wudao). Each generator exposes the knobs the
// experiments need — noise level, duplication rate, language mix, quality
// tiers — and is fully seeded, so every experiment is reproducible.
package corpus

import "strings"

func split(s string) []string { return strings.Fields(s) }

// Word pools for the sentence grammar. Overlap with the stopword and
// verb/noun lexicons in internal/text is intentional: generated prose must
// look like prose to the filters.
var (
	determiners = split(`the a this that every some the the one our their its`)
	subjects    = split(`committee report researcher student teacher engineer company
		government city river mountain library museum garden doctor artist
		farmer writer scientist community village market school system model
		dataset program project team family author reader child professor`)
	verbs = split(`published described explained announced developed created
		discovered built designed analyzed reviewed improved completed
		presented examined measured compared collected studied tested
		discussed summarized translated evaluated recorded organized`)
	objects = split(`report article study method result plan idea story question
		answer document theory approach structure history language culture
		economy policy design experiment survey review collection map
		picture song poem letter essay summary table chart program model`)
	modifiers = split(`new detailed important interesting recent careful thorough
		remarkable simple complex useful practical modern early late
		regional national local annual public private formal quiet`)
	connectives = split(`and then while because although after before since
		therefore however moreover meanwhile furthermore`)
	places = split(`city valley region country library university laboratory
		office village district museum harbor station garden forest`)
	timeRefs = split(`yesterday today recently eventually gradually annually
		often rarely sometimes usually finally initially`)
)

// topics give each document a lexical flavour so documents differ enough
// for dedup not to fire spuriously.
var topics = [][]string{
	split(`history ancient empire dynasty archive manuscript heritage kingdom ruins century`),
	split(`science physics energy particle experiment hypothesis laboratory measurement theory quantum`),
	split(`economy market trade finance investment budget inflation growth industry export`),
	split(`nature forest wildlife climate ecosystem species habitat conservation river biodiversity`),
	split(`technology software computer network algorithm database hardware internet protocol compiler`),
	split(`medicine patient treatment therapy vaccine diagnosis hospital clinical symptom recovery`),
	split(`art painting sculpture gallery exhibition portrait canvas artist composition museum`),
	split(`music melody rhythm orchestra concert harmony composer instrument symphony chorus`),
	split(`sports tournament championship athlete training stadium competition league record season`),
	split(`education curriculum classroom student learning assessment literacy teaching scholarship lecture`),
	split(`law court justice statute contract verdict evidence attorney legislation appeal`),
	split(`food cuisine recipe ingredient flavor harvest kitchen restaurant tradition spice`),
}

// Boilerplate fragments injected into noisy web documents.
var boilerplate = []string{
	"Home | About | Contact | Privacy Policy | Terms of Service",
	"Subscribe to our newsletter for the latest updates and exclusive offers",
	"Copyright 2023 All rights reserved Powered by WebBuilder Pro",
	"Click here to read more Share on social media Leave a comment below",
	"Accept cookies to continue browsing this site Manage cookie preferences",
	"Related articles you might also like Sponsored content Advertisement",
	"Sign in Register Forgot password Free shipping on orders over $50",
}

// spamFragments carry flagged words and ad noise for the lowest tier.
var spamFragments = []string{
	"BUY NOW!!! casino jackpot lottery winners claim your FREE prize today",
	"hot singles viagra discount porn xxx click here damn cheap deals",
	"$$$ make money fast scam-free guaranteed miracle-cure free-money $$$",
	"WINNER WINNER jackpot gambling bonus code casino casino casino",
}

// Chinese sentence fragments (subject + predicate pools).
var (
	zhSubjects = []string{
		"委员会", "研究人员", "学生", "工程师", "公司", "政府", "学校", "医生",
		"作家", "科学家", "社区", "市场", "团队", "家庭", "读者", "教授",
	}
	zhVerbs = []string{
		"发布了", "描述了", "解释了", "宣布了", "开发了", "创建了", "发现了",
		"建立了", "分析了", "审查了", "改进了", "完成了", "展示了", "研究了",
	}
	zhObjects = []string{
		"一份详细的报告", "一篇重要的文章", "一项新的研究", "一种有效的方法",
		"一个有趣的结果", "一项完整的计划", "一个复杂的系统", "一个现代的模型",
		"一套实用的方案", "一部地方的历史", "一项年度的调查", "一张清晰的图表",
	}
	zhTails = []string{
		"这对社区非常重要", "人们对此表示欢迎", "专家认为影响深远",
		"未来还需要更多工作", "结果令人满意", "过程经过仔细验证",
	}
)
