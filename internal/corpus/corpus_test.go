package corpus

import (
	"strings"
	"testing"

	"repro/internal/text"
)

func TestDeterminism(t *testing.T) {
	for _, name := range HubNames() {
		a, err := Hub(name, 30, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := Hub(name, 30, 7)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s not deterministic", name)
		}
		c, _ := Hub(name, 30, 8)
		if a.Fingerprint() == c.Fingerprint() {
			t.Errorf("%s ignores seed", name)
		}
	}
}

func TestHubUnknown(t *testing.T) {
	if _, err := Hub("no-such-corpus", 1, 1); err == nil {
		t.Fatal("unknown hub name must error")
	}
}

func TestHubDefaults(t *testing.T) {
	d, err := Hub("wiki", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("default docs = %d", d.Len())
	}
}

func TestWebHasNoiseAndDuplicates(t *testing.T) {
	d := Web(Options{Docs: 300, Seed: 42})
	var dups, nears, spam, urls int
	for _, s := range d.Samples {
		if _, ok := s.GetString("meta.dup_of"); ok {
			dups++
		}
		if _, ok := s.GetString("meta.near_dup_of"); ok {
			nears++
		}
		low := strings.ToLower(s.Text)
		if strings.Contains(low, "casino") || strings.Contains(low, "jackpot") {
			spam++
		}
		if strings.Contains(low, "http://") {
			urls++
		}
	}
	if dups < 5 {
		t.Errorf("exact duplicates = %d, want >= 5", dups)
	}
	if nears < 5 {
		t.Errorf("near duplicates = %d, want >= 5", nears)
	}
	if spam < 10 {
		t.Errorf("spam docs = %d, want >= 10", spam)
	}
	if urls < 20 {
		t.Errorf("url-bearing docs = %d, want >= 20", urls)
	}
}

func TestWikiIsCleanerThanWeb(t *testing.T) {
	wiki := Wiki(Options{Docs: 100, Seed: 1})
	web := Web(Options{Docs: 100, Seed: 1})
	var wikiSpecial, webSpecial float64
	for _, s := range wiki.Samples {
		wikiSpecial += text.SpecialCharRatio(s.Text)
	}
	for _, s := range web.Samples {
		webSpecial += text.SpecialCharRatio(s.Text)
	}
	if wikiSpecial/100 >= webSpecial/100 {
		t.Fatalf("wiki should be cleaner: wiki=%v web=%v", wikiSpecial/100, webSpecial/100)
	}
}

func TestBooksAreLong(t *testing.T) {
	d := Books(Options{Docs: 20, Seed: 3})
	for i, s := range d.Samples {
		if len(s.Text) < 1500 {
			t.Fatalf("book %d too short: %d chars", i, len(s.Text))
		}
	}
}

func TestArXivHasLaTeXStructure(t *testing.T) {
	d := ArXiv(Options{Docs: 10, Seed: 5})
	for i, s := range d.Samples {
		for _, marker := range []string{"\\documentclass", "\\section", "\\bibliography", "%"} {
			if !strings.Contains(s.Text, marker) {
				t.Fatalf("doc %d missing %q", i, marker)
			}
		}
	}
}

func TestCodeHasMetaAndHeaders(t *testing.T) {
	d := Code(Options{Docs: 50, Seed: 9})
	headers := 0
	for i, s := range d.Samples {
		suffix, ok := s.GetString("meta.suffix")
		if !ok || !strings.HasPrefix(suffix, ".") {
			t.Fatalf("doc %d missing suffix: %q", i, suffix)
		}
		if _, ok := s.GetFloat("meta.stars"); !ok {
			t.Fatalf("doc %d missing stars", i)
		}
		if strings.Contains(s.Text, "Copyright") {
			headers++
		}
	}
	if headers < 20 {
		t.Fatalf("license headers = %d, want >= 20", headers)
	}
}

func TestStackExchangeHasHTML(t *testing.T) {
	d := StackExchange(Options{Docs: 20, Seed: 2})
	for i, s := range d.Samples {
		if !strings.Contains(s.Text, "<p>") {
			t.Fatalf("doc %d has no markup", i)
		}
	}
}

func TestWebZHIsChinese(t *testing.T) {
	d := WebZH(Options{Docs: 50, Seed: 4})
	for i, s := range d.Samples {
		if text.CJKRatio(s.Text) < 0.5 {
			t.Fatalf("doc %d not Chinese enough: %q", i, s.Text)
		}
	}
}

func TestIFTStructure(t *testing.T) {
	d := IFT(Options{Docs: 60, Seed: 6})
	for i, s := range d.Samples {
		if v, _ := s.GetString("meta.usage"); v != "IFT" {
			t.Fatalf("doc %d usage = %q", i, v)
		}
		inst, ok := s.GetString("text.instruction")
		if !ok || inst == "" {
			t.Fatalf("doc %d missing instruction", i)
		}
		if _, ok := s.GetString("text.response"); !ok {
			t.Fatalf("doc %d missing response", i)
		}
	}
}

func TestCFTTiersAndLanguages(t *testing.T) {
	en := CFT(Options{Docs: 90, Seed: 8}, "EN")
	tiers := map[float64]int{}
	for _, s := range en.Samples {
		v, ok := s.GetFloat("meta.tier")
		if !ok {
			t.Fatal("missing tier")
		}
		tiers[v]++
	}
	if len(tiers) != 3 {
		t.Fatalf("tiers = %v", tiers)
	}
	zh := CFT(Options{Docs: 30, Seed: 8}, "ZH")
	for i, s := range zh.Samples {
		if text.CJKRatio(s.Text) < 0.4 {
			t.Fatalf("zh doc %d not Chinese: %q", i, s.Text)
		}
	}
}

func TestVerbNounDiversityPresent(t *testing.T) {
	d := IFT(Options{Docs: 200, Seed: 11})
	pairs := map[[2]string]int{}
	for _, s := range d.Samples {
		words := text.WordsLower(s.Text)
		for _, p := range text.VerbNounPairs(words) {
			pairs[p]++
		}
	}
	if len(pairs) < 30 {
		t.Fatalf("verb-noun pair diversity too low: %d distinct pairs", len(pairs))
	}
}

func TestTopicsVaryAcrossDocs(t *testing.T) {
	d := Wiki(Options{Docs: 100, Seed: 12})
	seen := map[string]bool{}
	for _, s := range d.Samples {
		topic, _ := s.GetString("meta.topic")
		seen[topic] = true
	}
	if len(seen) < 8 {
		t.Fatalf("topics = %d, want >= 8", len(seen))
	}
}
