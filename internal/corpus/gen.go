package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// Gen is a deterministic text generator. All corpus builders derive their
// randomness from one seeded source, so (kind, n, seed) fully determines a
// corpus.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

func (g *Gen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// sentence builds one grammatical English sentence flavoured by topic.
func (g *Gen) sentence(topic []string) string {
	var b strings.Builder
	b.WriteString(capitalize(g.pick(determiners)))
	b.WriteByte(' ')
	if g.rng.Float64() < 0.5 {
		b.WriteString(g.pick(modifiers))
		b.WriteByte(' ')
	}
	b.WriteString(g.pick(subjects))
	b.WriteByte(' ')
	b.WriteString(g.pick(verbs))
	b.WriteByte(' ')
	b.WriteString(g.pick(determiners))
	b.WriteByte(' ')
	if g.rng.Float64() < 0.6 {
		b.WriteString(g.pick(modifiers))
		b.WriteByte(' ')
	}
	b.WriteString(g.pick(objects))
	if g.rng.Float64() < 0.7 {
		b.WriteString(" about the ")
		b.WriteString(g.pick(topic))
	}
	if g.rng.Float64() < 0.4 {
		b.WriteString(" in the ")
		b.WriteString(g.pick(places))
	}
	if g.rng.Float64() < 0.3 {
		b.WriteByte(' ')
		b.WriteString(g.pick(timeRefs))
	}
	if g.rng.Float64() < 0.25 {
		b.WriteByte(' ')
		b.WriteString(g.pick(connectives))
		b.WriteString(" the ")
		b.WriteString(g.pick(topic))
		b.WriteString(" of the ")
		b.WriteString(g.pick(subjects))
		b.WriteString(" was ")
		b.WriteString(g.pick(modifiers))
	}
	b.WriteByte('.')
	return b.String()
}

// paragraph builds nSentences sentences on one topic.
func (g *Gen) paragraph(topic []string, nSentences int) string {
	parts := make([]string, nSentences)
	for i := range parts {
		parts[i] = g.sentence(topic)
	}
	return strings.Join(parts, " ")
}

// Prose builds a clean multi-paragraph document and reports its topic id.
func (g *Gen) Prose(minParas, maxParas int) (string, int) {
	topicID := g.rng.Intn(len(topics))
	topic := topics[topicID]
	n := minParas
	if maxParas > minParas {
		n += g.rng.Intn(maxParas - minParas + 1)
	}
	paras := make([]string, n)
	for i := range paras {
		paras[i] = g.paragraph(topic, 2+g.rng.Intn(4))
	}
	return strings.Join(paras, "\n\n"), topicID
}

// noiseWord emits an implausible token (tracker IDs, base64-ish junk).
func (g *Gen) noiseWord() string {
	const junk = "qxzjvkw0123456789"
	n := 4 + g.rng.Intn(14)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(junk[g.rng.Intn(len(junk))])
	}
	return b.String()
}

// Noisify degrades clean text according to level in [0,1]: boilerplate
// insertion, junk tokens, URLs/emails, symbol runs, broken unicode and
// occasional spam fragments.
func (g *Gen) Noisify(text string, level float64) string {
	if level <= 0 {
		return text
	}
	lines := strings.Split(text, "\n")
	var out []string
	for _, l := range lines {
		if g.rng.Float64() < level*0.5 {
			out = append(out, boilerplate[g.rng.Intn(len(boilerplate))])
		}
		if g.rng.Float64() < level*0.15 {
			out = append(out, spamFragments[g.rng.Intn(len(spamFragments))])
		}
		words := strings.Fields(l)
		for i := range words {
			r := g.rng.Float64()
			switch {
			case r < level*0.05:
				words[i] = g.noiseWord()
			case r < level*0.08:
				words[i] = fmt.Sprintf("http://track%d.example.com/?id=%d", g.rng.Intn(99), g.rng.Intn(1e6))
			case r < level*0.10:
				words[i] = fmt.Sprintf("user%d@mail%d.com", g.rng.Intn(999), g.rng.Intn(99))
			case r < level*0.13:
				words[i] = words[i] + strings.Repeat("!", 1+g.rng.Intn(4))
			}
		}
		l = strings.Join(words, " ")
		if g.rng.Float64() < level*0.1 {
			l += " " + strings.Repeat("#$%", 1+g.rng.Intn(6))
		}
		out = append(out, l)
	}
	if g.rng.Float64() < level*0.3 {
		// Mojibake: corrupt a fragment the fix_unicode_mapper can repair.
		out = append(out, "The cafÃ© menu featured crÃ¨me brÃ»lÃ©e yesterday")
	}
	return strings.Join(out, "\n")
}

// Options configures a generated corpus.
type Options struct {
	// Docs is the number of documents.
	Docs int
	// Seed makes the corpus deterministic.
	Seed int64
	// Noise in [0,1] controls the degradation level.
	Noise float64
	// DupExact is the probability a document is an exact copy of an
	// earlier one; DupNear the probability of a lightly-edited copy.
	DupExact, DupNear float64
	// Source labels meta.source.
	Source string
}

func (o Options) withDefaults(source string) Options {
	if o.Docs <= 0 {
		o.Docs = 100
	}
	if o.Source == "" {
		o.Source = source
	}
	return o
}

// buildDocs assembles a dataset from a per-document generator, applying
// the duplication knobs.
func buildDocs(o Options, gen func(g *Gen, i int) *sample.Sample) *dataset.Dataset {
	g := NewGen(o.Seed)
	samples := make([]*sample.Sample, 0, o.Docs)
	for i := 0; i < o.Docs; i++ {
		r := g.rng.Float64()
		if len(samples) > 4 && r < o.DupExact {
			src := samples[g.rng.Intn(len(samples))]
			dup := src.Clone()
			dup.SetString("meta.id", fmt.Sprintf("%s-%06d", o.Source, i))
			dup.SetString("meta.dup_of", mustGet(src, "meta.id"))
			samples = append(samples, dup)
			continue
		}
		if len(samples) > 4 && r < o.DupExact+o.DupNear {
			src := samples[g.rng.Intn(len(samples))]
			dup := src.Clone()
			dup.Text = nearEdit(g, dup.Text)
			dup.SetString("meta.id", fmt.Sprintf("%s-%06d", o.Source, i))
			dup.SetString("meta.near_dup_of", mustGet(src, "meta.id"))
			samples = append(samples, dup)
			continue
		}
		s := gen(g, i)
		s.SetString("meta.id", fmt.Sprintf("%s-%06d", o.Source, i))
		s.SetString("meta.source", o.Source)
		samples = append(samples, s)
	}
	return dataset.New(samples)
}

func mustGet(s *sample.Sample, path string) string {
	v, _ := s.GetString(path)
	return v
}

// nearEdit makes a light edit: append a sentence-like tail.
func nearEdit(g *Gen, text string) string {
	return text + " " + g.sentence(topics[g.rng.Intn(len(topics))])
}
