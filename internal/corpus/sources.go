package corpus

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// Web generates a noisy CommonCrawl-like corpus: boilerplate, junk tokens,
// spam fragments, mojibake, plus exact and near duplicates. This is the
// lowest-quality tier.
func Web(o Options) *dataset.Dataset {
	o = o.withDefaults("web-en")
	if o.Noise == 0 {
		o.Noise = 0.8
	}
	if o.DupExact == 0 {
		o.DupExact = 0.08
	}
	if o.DupNear == 0 {
		o.DupNear = 0.07
	}
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		// Most crawled pages are junk — navigation shells, listings, ads,
		// spam — not prose (GPT-3's quality classifier keeps ~1.3% of
		// CommonCrawl). A bit over half our pages are junk; the rest is
		// prose degraded by inline noise.
		if g.rng.Float64() < 0.55 {
			s := sample.New(g.junkPage())
			s.SetString("meta.topic", "junk")
			return s
		}
		text, topic := g.Prose(1, 4)
		if g.rng.Float64() < 0.1 {
			text = spamFragments[g.rng.Intn(len(spamFragments))] + "\n" + text
		}
		s := sample.New(g.Noisify(text, o.Noise))
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topic))
		return s
	})
}

// junkPage assembles a navigation/listing/spam page with almost no prose.
func (g *Gen) junkPage() string {
	n := 4 + g.rng.Intn(10)
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(4) {
		case 0:
			lines = append(lines, boilerplate[g.rng.Intn(len(boilerplate))])
		case 1:
			lines = append(lines, spamFragments[g.rng.Intn(len(spamFragments))])
		case 2:
			lines = append(lines, fmt.Sprintf("%s $%d.%02d Buy Now | SKU %s | In Stock: %d",
				capitalize(g.pick(objects)), 1+g.rng.Intn(99), g.rng.Intn(100), g.noiseWord(), g.rng.Intn(50)))
		default:
			lines = append(lines, fmt.Sprintf("%s %s http://shop%d.example.com/?ref=%s",
				g.noiseWord(), g.noiseWord(), g.rng.Intn(99), g.noiseWord()))
		}
	}
	return strings.Join(lines, "\n")
}

// C4 generates a medium-quality filtered-web corpus: mild noise, fewer
// duplicates.
func C4(o Options) *dataset.Dataset {
	o = o.withDefaults("c4")
	if o.Noise == 0 {
		o.Noise = 0.35
	}
	if o.DupExact == 0 {
		o.DupExact = 0.03
	}
	if o.DupNear == 0 {
		o.DupNear = 0.03
	}
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		text, topic := g.Prose(1, 5)
		s := sample.New(g.Noisify(text, o.Noise))
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topic))
		return s
	})
}

// Wiki generates clean encyclopedic documents.
func Wiki(o Options) *dataset.Dataset {
	o = o.withDefaults("wiki")
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		text, topic := g.Prose(2, 6)
		title := capitalize(g.pick(topics[topic])) + " (" + g.pick(places) + ")"
		s := sample.New(title + "\n\n" + text)
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topic))
		return s
	})
}

// Books generates long-form clean narrative documents.
func Books(o Options) *dataset.Dataset {
	o = o.withDefaults("books")
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		text, topic := g.Prose(8, 16)
		s := sample.New("Chapter " + fmt.Sprint(1+g.rng.Intn(30)) + "\n\n" + text)
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topic))
		return s
	})
}

// ArXiv generates LaTeX source documents with preamble, macros, comments,
// sections, tables and bibliographies — exercising the LaTeX mappers.
func ArXiv(o Options) *dataset.Dataset {
	o = o.withDefaults("arxiv")
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		topicID := g.rng.Intn(len(topics))
		topic := topics[topicID]
		var b strings.Builder
		b.WriteString("\\documentclass{article}\n")
		b.WriteString("\\usepackage{amsmath}\n")
		b.WriteString(fmt.Sprintf("\\newcommand{\\sys}{%s-System}\n", capitalize(g.pick(topic))))
		b.WriteString("% internal note: draft version\n")
		b.WriteString("\\begin{document}\n")
		b.WriteString(fmt.Sprintf("\\title{On the %s of %s}\n\\maketitle\n",
			capitalize(g.pick(modifiers)), g.pick(topic)))
		for sec := 0; sec < 2+g.rng.Intn(3); sec++ {
			b.WriteString(fmt.Sprintf("\\section{%s}\n", capitalize(g.pick(objects))))
			b.WriteString(g.paragraph(topic, 3+g.rng.Intn(3)))
			b.WriteString("\n% TODO: polish this paragraph\n")
			b.WriteString("We study \\sys in detail. ")
			b.WriteString(g.paragraph(topic, 2))
			b.WriteString("\n")
			if g.rng.Float64() < 0.5 {
				b.WriteString("\\begin{table}\n\\begin{tabular}{cc}\na & b \\\\\n1 & 2\n\\end{tabular}\n\\end{table}\n")
			}
		}
		b.WriteString("\\bibliography{refs}\n\\end{document}\n")
		s := sample.New(b.String())
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topicID))
		return s
	})
}

// Code generates source-code documents with license headers, imports and
// functions; meta carries suffix and a star count (TheStack-style).
func Code(o Options) *dataset.Dataset {
	o = o.withDefaults("code")
	langs := []struct {
		suffix, comment string
	}{
		{".py", "#"}, {".go", "//"}, {".js", "//"}, {".java", "//"}, {".cpp", "//"},
	}
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		lang := langs[g.rng.Intn(len(langs))]
		var b strings.Builder
		if g.rng.Float64() < 0.7 {
			fmt.Fprintf(&b, "%s Copyright %d Example Corp. All rights reserved.\n", lang.comment, 2015+g.rng.Intn(9))
			fmt.Fprintf(&b, "%s Licensed under the Apache License, Version 2.0\n\n", lang.comment)
		}
		nFuncs := 2 + g.rng.Intn(6)
		for f := 0; f < nFuncs; f++ {
			name := g.pick(verbs) + "_" + g.pick(objects)
			fmt.Fprintf(&b, "def %s(x, y):\n", strings.ReplaceAll(name, " ", "_"))
			fmt.Fprintf(&b, "    %s %s\n", lang.comment, g.sentence(topics[4]))
			fmt.Fprintf(&b, "    result = x * %d + y\n    return result\n\n", g.rng.Intn(100))
		}
		s := sample.New(b.String())
		s.SetString("meta.suffix", lang.suffix)
		s.Meta = s.Meta.Set("stars", float64(g.rng.Intn(3000)))
		return s
	})
}

// StackExchange generates Q&A threads with light HTML markup.
func StackExchange(o Options) *dataset.Dataset {
	o = o.withDefaults("stackexchange")
	if o.DupExact == 0 {
		o.DupExact = 0.02
	}
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		topicID := g.rng.Intn(len(topics))
		topic := topics[topicID]
		var b strings.Builder
		fmt.Fprintf(&b, "<p>Q: How should the %s handle the %s of the %s?</p>\n",
			g.pick(subjects), g.pick(objects), g.pick(topic))
		b.WriteString("<p>" + g.paragraph(topic, 2) + "</p>\n")
		for a := 0; a < 1+g.rng.Intn(3); a++ {
			fmt.Fprintf(&b, "<p>A%d: %s</p>\n", a+1, g.paragraph(topic, 2+g.rng.Intn(2)))
		}
		s := sample.New(b.String())
		s.SetString("meta.topic", fmt.Sprintf("t%02d", topicID))
		s.Meta = s.Meta.Set("score", float64(g.rng.Intn(50)))
		return s
	})
}

// zhSentence builds one Chinese sentence.
func zhSentence(g *Gen) string {
	s := g.pick(zhSubjects) + g.pick(zhVerbs) + g.pick(zhObjects)
	if g.rng.Float64() < 0.6 {
		s += "，" + g.pick(zhTails)
	}
	return s + "。"
}

// WebZH generates a Chinese web corpus with a noise tier.
func WebZH(o Options) *dataset.Dataset {
	o = o.withDefaults("web-zh")
	if o.Noise == 0 {
		o.Noise = 0.5
	}
	if o.DupExact == 0 {
		o.DupExact = 0.05
	}
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		n := 3 + g.rng.Intn(8)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = zhSentence(g)
		}
		text := strings.Join(parts, "")
		if g.rng.Float64() < o.Noise*0.3 {
			text += "赌博彩票发票诈骗广告"
		}
		if g.rng.Float64() < o.Noise*0.3 {
			text += " http://spam.example.cn/?id=" + fmt.Sprint(g.rng.Intn(1e6))
		}
		s := sample.New(text)
		s.SetString("meta.lang_tag", "ZH")
		return s
	})
}

// instruction templates pair verbs with objects from the shared lexicons,
// so diversity analysis over verb-noun pairs has real structure.
var iftVerbs = split(`write describe explain summarize translate list create
	generate identify classify compare analyze compute design rewrite`)

// IFT generates instruction-fine-tuning samples (task-style instructions
// adapted from NLP benchmarks, as in the Alpaca-CoT IFT tag).
func IFT(o Options) *dataset.Dataset {
	o = o.withDefaults("ift-en")
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		verb := g.pick(iftVerbs)
		obj := g.pick(objects)
		topic := topics[g.rng.Intn(len(topics))]
		inst := fmt.Sprintf("%s a %s about the %s.", capitalize(verb), obj, g.pick(topic))
		resp := g.paragraph(topic, 1+g.rng.Intn(3))
		s := sample.New(inst + "\n" + resp)
		s.SetString("text.instruction", inst)
		s.SetString("text.response", resp)
		s.SetString("meta.usage", "IFT")
		s.SetString("meta.lang_tag", "EN")
		s.SetString("meta.task", g.pick([]string{"multi-task", "task-specific"}))
		s.SetString("meta.gen_method", g.pick([]string{"human-generated", "self-instruct", "mixed"}))
		s.SetString("meta.verb", verb)
		s.SetString("meta.noun", obj)
		return s
	})
}

// CFT generates chat-fine-tuning dialog samples. lang selects "EN" or
// "ZH"; quality varies across a low/medium/high tier recorded in meta.
func CFT(o Options, lang string) *dataset.Dataset {
	src := "cft-en"
	if lang == "ZH" {
		src = "cft-zh"
	}
	o = o.withDefaults(src)
	return buildDocs(o, func(g *Gen, i int) *sample.Sample {
		tier := g.rng.Intn(3) // 0 low, 1 medium, 2 high
		var inst, resp, verb, obj string
		if lang == "ZH" {
			verb = g.pick([]string{"写", "描述", "解释", "总结", "翻译", "列出"})
			obj = g.pick(zhObjects)
			inst = "请" + verb + obj + "。"
			n := []int{1, 2, 4}[tier]
			parts := make([]string, n)
			for j := range parts {
				parts[j] = zhSentence(g)
			}
			resp = strings.Join(parts, "")
		} else {
			verb = g.pick(iftVerbs)
			obj = g.pick(objects)
			topic := topics[g.rng.Intn(len(topics))]
			inst = fmt.Sprintf("%s a %s %s about the %s, please.", capitalize(verb), g.pick(modifiers), obj, g.pick(topic))
			resp = g.paragraph(topic, 1+tier*2)
			if tier == 0 && g.rng.Float64() < 0.4 {
				resp = "ok. " + g.pick(objects) // low-effort response
			}
		}
		s := sample.New(inst + "\n" + resp)
		s.SetString("text.instruction", inst)
		s.SetString("text.response", resp)
		s.SetString("meta.usage", "CFT")
		s.SetString("meta.lang_tag", lang)
		s.Meta = s.Meta.Set("tier", float64(tier))
		if verb != "" {
			s.SetString("meta.verb", verb)
			s.SetString("meta.noun", obj)
		}
		s.SetString("meta.dialog", g.pick([]string{"single-round", "multi-round", "preference"}))
		return s
	})
}

// FromSpec resolves the body of a "hub:" dataset spec —
// "<name>[?docs=N&seed=S]" — to its generated corpus. It is the single
// parser behind every hub: input, whichever backend opens it.
func FromSpec(rest string) (*dataset.Dataset, error) {
	name := rest
	docs, seed := 0, int64(0)
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		name = rest[:i]
		q, err := url.ParseQuery(rest[i+1:])
		if err != nil {
			return nil, fmt.Errorf("corpus: hub query: %w", err)
		}
		if v := q.Get("docs"); v != "" {
			docs, err = strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("corpus: hub docs: %w", err)
			}
		}
		if v := q.Get("seed"); v != "" {
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("corpus: hub seed: %w", err)
			}
			seed = s
		}
	}
	return Hub(name, docs, seed)
}

// Hub resolves a named built-in corpus ("hub:" scheme of the formatters).
// Supported names: web-en, c4, wiki, books, arxiv, code, stackexchange,
// web-zh, ift-en, cft-en, cft-zh. The count and seed default to 200 docs /
// seed 1 when zero.
func Hub(name string, docs int, seed int64) (*dataset.Dataset, error) {
	o := Options{Docs: docs, Seed: seed}
	if o.Docs <= 0 {
		o.Docs = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch name {
	case "web-en":
		return Web(o), nil
	case "c4":
		return C4(o), nil
	case "wiki":
		return Wiki(o), nil
	case "books":
		return Books(o), nil
	case "arxiv":
		return ArXiv(o), nil
	case "code":
		return Code(o), nil
	case "stackexchange":
		return StackExchange(o), nil
	case "web-zh":
		return WebZH(o), nil
	case "ift-en":
		return IFT(o), nil
	case "cft-en":
		return CFT(o, "EN"), nil
	case "cft-zh":
		return CFT(o, "ZH"), nil
	}
	return nil, fmt.Errorf("corpus: unknown hub dataset %q (have %v)", name, HubNames())
}

// HubNames lists the built-in corpus names, sorted.
func HubNames() []string {
	names := []string{
		"web-en", "c4", "wiki", "books", "arxiv", "code",
		"stackexchange", "web-zh", "ift-en", "cft-en", "cft-zh",
	}
	sort.Strings(names)
	return names
}

// NoisifyDataset returns a deep copy of d with every document degraded at
// the given noise level (deterministic in seed). Experiments use it to
// build mixed-quality collections from clean generators.
func NoisifyDataset(d *dataset.Dataset, level float64, seed int64) *dataset.Dataset {
	g := NewGen(seed)
	out := d.Clone()
	for _, s := range out.Samples {
		s.Text = g.Noisify(s.Text, level)
	}
	return out
}
