package core

import (
	"strings"
	"testing"

	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/sample"
)

func mustBuild(t *testing.T, name string, p ops.Params) ops.OP {
	t.Helper()
	op, err := ops.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return op
}

// figure9Recipe mirrors the Figure 9 experiment recipe: 5 Mappers,
// 8 Filters, 1 Deduplicator, with 5 of the filters fusible (word/line
// context users).
func figure9Recipe(t *testing.T) []ops.OP {
	t.Helper()
	return []ops.OP{
		mustBuild(t, "fix_unicode_mapper", nil),
		mustBuild(t, "clean_email_mapper", nil),
		mustBuild(t, "clean_links_mapper", nil),
		mustBuild(t, "remove_long_words_mapper", nil),
		mustBuild(t, "whitespace_normalization_mapper", nil),
		mustBuild(t, "alphanumeric_filter", nil),       // char, not fusible
		mustBuild(t, "special_characters_filter", nil), // char, not fusible
		mustBuild(t, "text_length_filter", nil),        // char, not fusible
		mustBuild(t, "word_num_filter", nil),           // words ctx
		mustBuild(t, "word_repetition_filter", nil),    // words ctx
		mustBuild(t, "stopwords_filter", nil),          // words ctx
		mustBuild(t, "flagged_words_filter", nil),      // words ctx
		mustBuild(t, "perplexity_filter", nil),         // words ctx
		mustBuild(t, "document_deduplicator", nil),
	}
}

func TestBuildPlanNoFusionPreservesOrder(t *testing.T) {
	list := figure9Recipe(t)
	plan := BuildPlan(list, false)
	if len(plan) != len(list) {
		t.Fatalf("plan size %d", len(plan))
	}
	for i := range list {
		if plan[i].Name() != list[i].Name() {
			t.Fatalf("order changed at %d: %s", i, plan[i].Name())
		}
	}
}

func TestBuildPlanFusesWordFilters(t *testing.T) {
	plan := BuildPlan(figure9Recipe(t), true)
	// 5 mappers + (8 filters -> 3 char filters + 1 fused of 5) + 1 dedup = 10.
	if len(plan) != 10 {
		t.Fatalf("plan size = %d\n%s", len(plan), DescribePlan(plan))
	}
	var fused *FusedFilter
	fusedIdx := -1
	for i, op := range plan {
		if f, ok := op.(*FusedFilter); ok {
			if fused != nil {
				t.Fatal("more than one fused op")
			}
			fused = f
			fusedIdx = i
		}
	}
	if fused == nil {
		t.Fatalf("no fused op in plan:\n%s", DescribePlan(plan))
	}
	if len(fused.Members()) != 5 {
		t.Fatalf("fused %d members, want 5: %s", len(fused.Members()), fused.Name())
	}
	// Reordering: the fused (expensive) op must come after the cheap char
	// filters within its group, i.e. last before the deduplicator.
	if fusedIdx != len(plan)-2 {
		t.Fatalf("fused op at %d, want %d:\n%s", fusedIdx, len(plan)-2, DescribePlan(plan))
	}
	if _, ok := plan[len(plan)-1].(ops.Deduplicator); !ok {
		t.Fatal("deduplicator must stay the barrier at the end")
	}
}

func TestBuildPlanMapperBarriers(t *testing.T) {
	// Filters separated by a mapper must not fuse across the barrier.
	list := []ops.OP{
		mustBuild(t, "word_num_filter", nil),
		mustBuild(t, "whitespace_normalization_mapper", nil),
		mustBuild(t, "stopwords_filter", nil),
	}
	plan := BuildPlan(list, true)
	if len(plan) != 3 {
		t.Fatalf("barrier crossed:\n%s", DescribePlan(plan))
	}
	for _, op := range plan {
		if _, ok := op.(*FusedFilter); ok {
			t.Fatal("fused across a mapper barrier")
		}
	}
}

func TestBuildPlanSingleFusibleReordered(t *testing.T) {
	// One fusible filter in a group: not fused, but still reordered after
	// cheaper filters ("reorder the only fusible OP" branch in Fig. 6).
	list := []ops.OP{
		mustBuild(t, "word_repetition_filter", nil), // cost 3, fusible
		mustBuild(t, "text_length_filter", nil),     // cost 1
	}
	plan := BuildPlan(list, true)
	if len(plan) != 2 {
		t.Fatalf("plan = %v", DescribePlan(plan))
	}
	if plan[0].Name() != "text_length_filter" || plan[1].Name() != "word_repetition_filter" {
		t.Fatalf("reorder failed:\n%s", DescribePlan(plan))
	}
}

func TestBuildPlanDisjointContextsFuseSeparately(t *testing.T) {
	// Word-context and line-context filters form separate fused clusters.
	list := []ops.OP{
		mustBuild(t, "word_num_filter", nil),
		mustBuild(t, "average_line_length_filter", nil),
		mustBuild(t, "stopwords_filter", nil),
		mustBuild(t, "maximum_line_length_filter", nil),
	}
	plan := BuildPlan(list, true)
	if len(plan) != 2 {
		t.Fatalf("want 2 fused clusters:\n%s", DescribePlan(plan))
	}
	for _, op := range plan {
		f, ok := op.(*FusedFilter)
		if !ok {
			t.Fatalf("non-fused op %s", op.Name())
		}
		if len(f.Members()) != 2 {
			t.Fatalf("cluster size = %d", len(f.Members()))
		}
	}
}

func TestFusedFilterSemantics(t *testing.T) {
	members := []ops.Filter{
		mustBuild(t, "word_num_filter", ops.Params{"min_num": 3}).(ops.Filter),
		mustBuild(t, "stopwords_filter", ops.Params{"min_ratio": 0.2}).(ops.Filter),
	}
	fused := NewFusedFilter(members)
	if !strings.HasPrefix(fused.Name(), "fused(") {
		t.Fatalf("name = %s", fused.Name())
	}
	if got := fused.StatKeys(); len(got) != 2 {
		t.Fatalf("stat keys = %v", got)
	}
	s := sample.New("the cat and the dog sat on the mat")
	if err := fused.ComputeStats(s); err != nil {
		t.Fatal(err)
	}
	if !fused.Keep(s) {
		t.Fatal("good sample rejected")
	}
	// Only one shared context entry despite two members.
	if s.ContextLen() != 1 {
		t.Fatalf("context entries = %d", s.ContextLen())
	}
	bad := sample.New("too short")
	fused.ComputeStats(bad)
	if fused.Keep(bad) {
		t.Fatal("short sample kept (AND semantics broken)")
	}
}

func TestFusedFilterEquivalentToSequential(t *testing.T) {
	// Fusion must not change verdicts: fused(A,B).Keep == A.Keep && B.Keep.
	texts := []string{
		"the cat and the dog sat on the mat with a hat",
		"short",
		"buy widgets buy widgets buy widgets buy widgets buy widgets",
		"a reasonable sentence about the weather and the news of the day",
		"",
	}
	a := mustBuild(t, "word_num_filter", ops.Params{"min_num": 5}).(ops.Filter)
	b := mustBuild(t, "stopwords_filter", ops.Params{"min_ratio": 0.2}).(ops.Filter)
	fused := NewFusedFilter([]ops.Filter{a, b})
	for _, txt := range texts {
		s1 := sample.New(txt)
		a.ComputeStats(s1)
		b.ComputeStats(s1)
		want := a.Keep(s1) && b.Keep(s1)
		s2 := sample.New(txt)
		fused.ComputeStats(s2)
		if got := fused.Keep(s2); got != want {
			t.Fatalf("verdict mismatch on %q: fused=%v sequential=%v", txt, got, want)
		}
	}
}

func TestNewFusedFilterPanicsOnSingle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-member fusion must panic")
		}
	}()
	NewFusedFilter([]ops.Filter{mustBuild(t, "word_num_filter", nil).(ops.Filter)})
}
