package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/sample"
)

func testRecipe(t *testing.T, yaml string) *config.Recipe {
	t.Helper()
	r, err := config.ParseRecipe(yaml)
	if err != nil {
		t.Fatal(err)
	}
	r.WorkDir = t.TempDir()
	return r
}

func webbyDataset() *dataset.Dataset {
	texts := []string{
		"The committee published a detailed report about the new research program and its goals for the community.",
		"The committee published a detailed report about the new research program and its goals for the community.", // dup
		"BUY NOW!!! $$$ @@@ ### %%% ^^^ &&& *** ((( ))) ___ +++ === ~~~",
		"short",
		"Reading books in the evening is a pleasant habit that many people around the world still enjoy every day.",
		"spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam spam",
		"The weather in the valley was mild and the farmers were pleased with the harvest that the season brought.",
	}
	return dataset.FromTexts(texts)
}

const basicYAML = `
project_name: exec-test
use_cache: false
op_fusion: true
trace: true
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 8
  - stopwords_filter:
      min_ratio: 0.15
  - word_repetition_filter:
      rep_len: 3
      max_ratio: 0.3
  - document_deduplicator:
`

func TestExecutorRunBasic(t *testing.T) {
	r := testRecipe(t, basicYAML)
	e, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := e.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: the three long prose sentences (dup removed, spam/short/symbols dropped).
	if out.Len() != 3 {
		for _, s := range out.Samples {
			t.Logf("survivor: %q %v", s.Text, s.Stats)
		}
		t.Fatalf("survivors = %d, want 3", out.Len())
	}
	if report.Total <= 0 || len(report.OpStats) == 0 {
		t.Fatalf("report = %+v", report)
	}
	// Fusion: word filters collapse, so fewer planned ops than recipe ops.
	if report.PlanSize >= 5 {
		t.Fatalf("plan size = %d, fusion did not shrink the plan", report.PlanSize)
	}
}

func TestExecutorFusionMatchesUnfusedOutput(t *testing.T) {
	run := func(fusion bool) *dataset.Dataset {
		r := testRecipe(t, basicYAML)
		r.OpFusion = fusion
		e, err := NewExecutor(r)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := e.Run(webbyDataset())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(true), run(false)
	if a.Len() != b.Len() {
		t.Fatalf("fusion changed survivor count: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Samples {
		if a.Samples[i].Text != b.Samples[i].Text {
			t.Fatalf("fusion changed sample %d", i)
		}
	}
}

func TestExecutorFusedMemberAttribution(t *testing.T) {
	r := testRecipe(t, basicYAML)
	e, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	var fused *OpStat
	for i := range rep.OpStats {
		if strings.HasPrefix(rep.OpStats[i].Name, "fused(") {
			fused = &rep.OpStats[i]
		}
	}
	if fused == nil {
		t.Fatalf("no fused op in report: %+v", rep.OpStats)
	}
	if len(fused.Members) != 3 {
		t.Fatalf("fused entry attributes %d members, want 3", len(fused.Members))
	}
	// The first member's Keep chain sees every input sample; the last
	// member's survivors are the fused op's output.
	if fused.Members[0].In != fused.InCount {
		t.Errorf("first member in = %d, fused in = %d", fused.Members[0].In, fused.InCount)
	}
	last := fused.Members[len(fused.Members)-1]
	if last.Out != fused.OutCount {
		t.Errorf("last member out = %d, fused out = %d", last.Out, fused.OutCount)
	}
	for _, m := range fused.Members {
		if m.Samples != fused.InCount {
			t.Errorf("member %s computed stats for %d of %d samples", m.Name, m.Samples, fused.InCount)
		}
		if m.Duration <= 0 {
			t.Errorf("member %s has no attributed duration", m.Name)
		}
	}
}

func TestExecutorSecondRunPlansFromProfiles(t *testing.T) {
	r := testRecipe(t, basicYAML)
	e1, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	if n := e1.Plan().MeasuredOps; n != 0 {
		t.Fatalf("cold plan measured %d ops", n)
	}
	if _, _, err := e1.Run(webbyDataset()); err != nil {
		t.Fatal(err)
	}
	// The run persisted a profile sidecar; a fresh executor over the same
	// recipe must now predict every op (fused members included) from it.
	e2, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	if n, total := e2.Plan().MeasuredOps, len(e2.Plan().Nodes); n != total {
		t.Fatalf("warm plan measured %d of %d ops\n%s", n, total, e2.Plan().Explain())
	}
}

func TestExecutorTracerLineage(t *testing.T) {
	r := testRecipe(t, basicYAML)
	e, _ := NewExecutor(r)
	_, _, err := e.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	events := e.Tracer().Events()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	var sawFilterDiscard, sawDupPair bool
	for _, ev := range events {
		if ev.Kind == "filter" && len(ev.Discards) > 0 {
			sawFilterDiscard = true
			for _, d := range ev.Discards {
				if len(d.Stats) == 0 {
					t.Fatalf("discard without stats: %+v", d)
				}
			}
		}
		if ev.Kind == "deduplicator" && len(ev.DupPairs) > 0 {
			sawDupPair = true
		}
	}
	if !sawFilterDiscard || !sawDupPair {
		t.Fatalf("lineage incomplete: discard=%v dup=%v", sawFilterDiscard, sawDupPair)
	}
	summary := e.Tracer().Summary()
	if !strings.Contains(summary, "document_deduplicator") {
		t.Fatalf("summary = %s", summary)
	}
}

func TestExecutorCacheReuse(t *testing.T) {
	r := testRecipe(t, basicYAML)
	r.UseCache = true
	r.CacheCompression = "lzj"

	e1, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out1, rep1, err := e1.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep1.OpStats {
		if s.CacheHit {
			t.Fatalf("first run must not hit cache: %+v", s)
		}
	}
	// Second run over identical input: every op should come from cache.
	e2, _ := NewExecutor(r)
	out2, rep2, err := e2.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep2.OpStats {
		if !s.CacheHit {
			t.Fatalf("second run missed cache at %s", s.Name)
		}
	}
	if out1.Fingerprint() != out2.Fingerprint() {
		t.Fatal("cached result differs")
	}
}

func TestExecutorCachePrefixReuseAfterTailEdit(t *testing.T) {
	r := testRecipe(t, basicYAML)
	r.UseCache = true
	e1, _ := NewExecutor(r)
	if _, _, err := e1.Run(webbyDataset()); err != nil {
		t.Fatal(err)
	}
	// Change only the final op's params: the prefix must still hit.
	r2 := testRecipe(t, basicYAML)
	r2.WorkDir = r.WorkDir
	r2.UseCache = true
	r2.Process[len(r2.Process)-1].Params = ops.Params{"lowercase": false}
	e2, _ := NewExecutor(r2)
	_, rep, err := e2.Run(webbyDataset())
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range rep.OpStats {
		if s.CacheHit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("prefix cache not reused after tail edit")
	}
	if rep.OpStats[len(rep.OpStats)-1].CacheHit {
		t.Fatal("edited tail op must not hit cache")
	}
}

// failOnceArmed controls the fail_once_filter below: while true, the next
// ComputeStats call fails and disarms. This simulates a transient crash
// (out-of-memory, time limit) between two runs of the *same* recipe, the
// scenario checkpoints exist for.
var failOnceArmed bool

type failOnceFilter struct{}

func (failOnceFilter) Name() string       { return "fail_once_filter" }
func (failOnceFilter) StatKeys() []string { return []string{"fail_stat"} }
func (failOnceFilter) ComputeStats(s *sample.Sample) error {
	if failOnceArmed {
		failOnceArmed = false
		return errors.New("injected transient failure")
	}
	s.SetStat("fail_stat", 1)
	return nil
}
func (failOnceFilter) Keep(s *sample.Sample) bool { return true }

func init() {
	ops.Register("fail_once_filter", ops.CategoryFilter, "test", func(p ops.Params) (ops.OP, error) {
		return failOnceFilter{}, nil
	})
}

func TestExecutorCheckpointResumeSameRecipe(t *testing.T) {
	yaml := `
project_name: ckpt-resume
use_cache: false
use_checkpoint: true
op_fusion: false
process:
  - whitespace_normalization_mapper:
  - fail_once_filter:
  - word_num_filter:
      min_num: 2
`
	r := testRecipe(t, yaml)
	ds := dataset.FromTexts([]string{
		"alpha beta gamma", "delta epsilon zeta",
		"eta theta iota", "kappa lambda mu",
		"nu xi omicron", "pi rho sigma",
	})
	failOnceArmed = true
	e, _ := NewExecutor(r)
	_, _, err := e.Run(ds.Clone())
	if err == nil || !strings.Contains(err.Error(), "injected transient failure") {
		t.Fatalf("expected injected failure, got %v", err)
	}

	// Same recipe, same input, transient condition gone: the second run
	// resumes from the checkpoint written at the failure instead of
	// starting over.
	e2, err := NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e2.Run(ds.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resumed {
		t.Fatal("second run should resume from checkpoint")
	}
	// Resume skipped the already-completed mapper: only the remaining ops
	// appear in the report.
	if len(rep.OpStats) != 2 {
		t.Fatalf("resumed run executed %d ops, want 2", len(rep.OpStats))
	}
	if out.Len() != 6 {
		t.Fatalf("survivors = %d", out.Len())
	}
}

func TestExecutorCheckpointForeignRecipeIgnored(t *testing.T) {
	// A checkpoint from one recipe must not be resumed by another.
	yaml := `
project_name: ckpt-a
use_cache: false
use_checkpoint: true
op_fusion: false
process:
  - whitespace_normalization_mapper:
  - fail_once_filter:
`
	r := testRecipe(t, yaml)
	ds := dataset.FromTexts([]string{"one two three", "four five six"})
	failOnceArmed = true
	e, _ := NewExecutor(r)
	if _, _, err := e.Run(ds.Clone()); err == nil {
		t.Fatal("expected failure")
	}

	r2 := testRecipe(t, strings.Replace(yaml, "ckpt-a", "ckpt-b", 1)+"  - lowercase_mapper:\n")
	r2.WorkDir = r.WorkDir
	e2, err := NewExecutor(r2)
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := e2.Run(ds.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed {
		t.Fatal("foreign recipe resumed another recipe's checkpoint")
	}
	if out.Len() != 2 {
		t.Fatalf("survivors = %d", out.Len())
	}
}

func TestExecutorRejectsInvalidRecipe(t *testing.T) {
	r := config.Default()
	if _, err := NewExecutor(r); err == nil {
		t.Fatal("empty recipe accepted")
	}
	r2 := config.Default()
	r2.Process = []config.OpSpec{{Name: "ghost_op"}}
	if _, err := NewExecutor(r2); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestExecutorLargeParallelRun(t *testing.T) {
	texts := make([]string, 500)
	for i := range texts {
		texts[i] = fmt.Sprintf("document %d contains the usual words that a document about topic %d would contain", i, i%7)
	}
	r := testRecipe(t, `
project_name: parallel
use_cache: false
np: 8
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
  - document_deduplicator:
`)
	e, _ := NewExecutor(r)
	out, _, err := e.Run(dataset.FromTexts(texts))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 500 {
		t.Fatalf("survivors = %d", out.Len())
	}
}

func TestExecutorContextClearedBetweenOps(t *testing.T) {
	r := testRecipe(t, basicYAML)
	e, _ := NewExecutor(r)
	d := webbyDataset()
	if _, _, err := e.Run(d); err != nil {
		t.Fatal(err)
	}
	for i, s := range d.Samples {
		if s.ContextLen() != 0 {
			t.Fatalf("sample %d retains %d context entries", i, s.ContextLen())
		}
	}
}

func TestReportInCountGuardsEmptyStats(t *testing.T) {
	r := &Report{}
	if got := r.InCount(); got != 0 {
		t.Fatalf("empty report InCount = %d, want 0", got)
	}
	r.OpStats = []OpStat{{Name: "x", InCount: 42, OutCount: 40}}
	if got := r.InCount(); got != 42 {
		t.Fatalf("InCount = %d, want 42", got)
	}
}
