// Package core implements the batch pipeline executor of Data-Juicer: it
// runs a recipe's operator list over a dataset with parallel workers,
// executing the physical plan produced by the unified planner
// (internal/plan) — which owns the Sec. 6 optimizations, operator fusion
// and measured-cost reordering (Figure 6) — plus the cache and
// checkpoint machinery of Sec. 4.1.1 and the lineage tracer of Sec. 4.2.
package core

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// OpStat reports one executed operator.
type OpStat struct {
	Name     string
	InCount  int
	OutCount int
	Duration time.Duration
	CacheHit bool
	Resumed  bool
	// PlanIndex is the op's position in the physical plan.
	PlanIndex int
	// Workers is the parallelism Duration was measured under: the batch
	// executor applies an op with N workers so Duration is wall time of
	// parallel work, while the streaming engine runs ops serially inside
	// each shard (Duration sums per-shard CPU time, Workers 1). Profile
	// persistence multiplies Duration by Workers so every sidecar entry
	// is on one CPU-time basis, comparable across backends and with
	// fused-member attribution.
	Workers int
	// Members attributes a fused op's work to its member filters
	// (nil for plain ops and for cache-hit entries, where nothing ran).
	Members []plan.MemberStat
}

// Report summarizes one pipeline run.
type Report struct {
	OpStats  []OpStat
	Total    time.Duration
	Resumed  bool
	PlanSize int
}

// InCount returns the sample count entering the first executed operator
// (0 when every op was skipped, e.g. a fully cache-resumed run or an
// empty plan).
func (r *Report) InCount() int {
	if len(r.OpStats) == 0 {
		return 0
	}
	return r.OpStats[0].InCount
}

// Executor runs a recipe over in-memory datasets: the batch backend. The
// whole dataset moves through one operator at a time; see
// internal/stream for the shard-pipelined streaming backend.
type Executor struct {
	recipe *config.Recipe
	plan   *plan.Plan
	specs  []config.OpSpec // aligned with the *unfused* recipe order
	runner *OpRunner
	store  *cache.Store
	ckpt   *cache.CheckpointManager
	tele   *telemetry.Run
}

// NewExecutor validates the recipe and builds its physical plan through
// the unified planner (fusion, measured-cost reordering, placement).
func NewExecutor(r *config.Recipe) (*Executor, error) {
	p, err := plan.Build(r)
	if err != nil {
		return nil, err
	}
	var tracer *trace.Tracer
	if r.EnableTrace {
		tracer = trace.New(0)
	}
	e := &Executor{
		recipe: r,
		plan:   p,
		specs:  r.Process,
		runner: NewOpRunner(p.Built(), r.Process, tracer),
	}
	if r.UseCache {
		store, err := cache.NewStore(filepath.Join(r.WorkDir, "cache"), r.CacheCompression)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	if r.UseCheckpoint {
		ckpt, err := cache.NewCheckpointManager(filepath.Join(r.WorkDir, "checkpoint"), r.CacheCompression)
		if err != nil {
			return nil, err
		}
		e.ckpt = ckpt
	}
	ConfigureSpill(p, r)
	return e, nil
}

// ConfigureSpill installs the planner's spill budgets on the plan's
// spill-capable ops. With the cache enabled, spill runs live under the
// cache directory so cache disk accounting covers them; otherwise under
// <work_dir>/spill. No directory is created here — the spill structures
// mkdir lazily, only when an op actually spills.
func ConfigureSpill(p *plan.Plan, r *config.Recipe) {
	if r.WorkDir == "" {
		return
	}
	dir := cache.SpillDir(r.WorkDir, r.UseCache)
	for i := range p.Nodes {
		n := &p.Nodes[i]
		if n.SpillBudget <= 0 {
			continue
		}
		if sp, ok := n.Op.(ops.Spiller); ok {
			sp.ConfigureSpill(ops.SpillSpec{Dir: dir, BudgetBytes: n.SpillBudget})
		}
	}
}

// Plan returns the physical plan the executor runs.
func (e *Executor) Plan() *plan.Plan { return e.plan }

// Tracer returns the lineage tracer (nil unless the recipe enables it).
func (e *Executor) Tracer() *trace.Tracer { return e.runner.Tracer() }

// Runner returns the shared per-op application logic, so other backends
// (the streaming engine) execute operators exactly as the batch path does.
func (e *Executor) Runner() *OpRunner { return e.runner }

// EnableTelemetry connects the executor to a telemetry run: every op
// application feeds the metric registry, completions and cache hits
// become journal events, and tracer lineage joins the journal. Call
// before Run.
func (e *Executor) EnableTelemetry(t *telemetry.Run) {
	if t == nil {
		return
	}
	e.tele = t
	e.runner = e.runner.WithObserver(AttachTelemetry(t, e.plan))
	if tr := e.runner.Tracer(); tr != nil {
		tr.SetSink(TraceJournalSink(t))
	}
}

// EmitSpill emits the spill journal event and metrics for an op whose
// most recent execution pushed index state to disk; a no-op for ops that
// are not spill-capable or stayed in memory. Shared with the streaming
// engine's barrier path.
func EmitSpill(t *telemetry.Run, op ops.OP, planIdx int) {
	sp, ok := op.(ops.Spiller)
	if !ok || t == nil {
		return
	}
	st := sp.SpillStats()
	if !st.Spilled {
		return
	}
	t.ObserveSpill(op.Name(), st.Runs, st.SpilledBytes)
	t.Emit(telemetry.Event{
		Type: telemetry.EvSpill, Parent: t.RunSpan(),
		Name: op.Name(), PlanIdx: planIdx,
		Bytes: st.SpilledBytes, SpillRuns: st.Runs,
	})
}

// recipeFingerprint identifies this recipe + input dataset combination for
// checkpoint compatibility checks.
func (e *Executor) recipeFingerprint(d *dataset.Dataset) string {
	h := fnv.New64a()
	fmt.Fprint(h, d.Fingerprint(), "\x00")
	for _, s := range e.specs {
		fmt.Fprint(h, s.Name, "\x00")
		fmt.Fprint(h, cache.Key("", s.Name, s.Params), "\x00")
	}
	fmt.Fprintf(h, "fusion=%v", e.recipe.OpFusion)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run executes the plan over d and returns the processed dataset. The
// input dataset is modified in place by Mappers (clone first if the
// original must survive). After a successful run the measured per-op
// costs are folded into the recipe's profile sidecar, so the next run
// plans from them.
func (e *Executor) Run(d *dataset.Dataset) (*dataset.Dataset, *Report, error) {
	start := time.Now()
	nodes := e.plan.Nodes
	report := &Report{PlanSize: len(nodes)}
	np := e.recipe.NP

	if e.tele != nil {
		e.tele.SetInputTotal(d.Len())
		e.tele.AddInput(d.Len())
		e.tele.Emit(PlanEvent(e.plan))
	}

	recipeFP := ""
	startIdx := 0
	if e.ckpt != nil || e.store != nil {
		recipeFP = e.recipeFingerprint(d)
	}
	if e.ckpt != nil {
		if idx, saved, ok, err := e.ckpt.Resume(recipeFP); err != nil {
			return nil, nil, err
		} else if ok {
			d = saved
			startIdx = idx
			report.Resumed = true
		}
	}

	// Chain cache keys: key_i = H(key_{i-1}, op_i identity). key_0 derives
	// from the dataset content alone, so editing the recipe tail reuses the
	// whole cached prefix. (Reordering the plan — e.g. the first run after
	// profiles land — changes the chain and invalidates it; the cache
	// refills under the new, faster order.)
	chainKey := ""
	if e.store != nil {
		chainKey = cache.Key(d.Fingerprint(), "dataset", nil)
		for i := 0; i < startIdx && i < len(nodes); i++ {
			chainKey = e.runner.OpCacheKey(chainKey, nodes[i].Op)
		}
	}

	for i := startIdx; i < len(nodes); i++ {
		op := nodes[i].Op
		opStart := time.Now()
		inCount := d.Len()

		var key string
		if e.store != nil {
			key = e.runner.OpCacheKey(chainKey, op)
			if cached, ok, err := e.store.Get(key); err != nil {
				return nil, nil, err
			} else if ok {
				d = cached
				chainKey = key
				stat := OpStat{Name: op.Name(), InCount: inCount, OutCount: d.Len(),
					Duration: time.Since(opStart), CacheHit: true, PlanIndex: i}
				report.OpStats = append(report.OpStats, stat)
				e.runner.TraceCacheHit(op, inCount, d.Len(), stat.Duration)
				if e.tele != nil {
					e.tele.Op(i).CacheHit(inCount, d.Len())
					e.tele.Emit(telemetry.Event{
						Type: telemetry.EvCacheHit, Parent: e.tele.RunSpan(),
						Name: op.Name(), Kind: OpKind(op), PlanIdx: i,
						In: int64(inCount), Out: int64(d.Len()),
						DurNS: int64(stat.Duration),
					})
				}
				continue
			}
		}

		out, err := e.runner.ApplyOp(op, d, np)
		if err != nil {
			// Preserve a recovery point before surfacing the failure, as
			// described in Sec. 4.1.1 (states are saved when errors occur).
			if e.ckpt != nil {
				_ = e.ckpt.Save(recipeFP, i, d)
			}
			return nil, nil, fmt.Errorf("core: op %d (%s): %w", i, op.Name(), err)
		}
		d = out

		if e.store != nil {
			if err := e.store.Put(key, d); err != nil {
				return nil, nil, err
			}
			chainKey = key
		}
		if e.ckpt != nil {
			if err := e.ckpt.Save(recipeFP, i+1, d); err != nil {
				return nil, nil, err
			}
		}
		stat := OpStat{
			Name: op.Name(), InCount: inCount, OutCount: d.Len(),
			Duration: time.Since(opStart), PlanIndex: i,
			Workers: dataset.Workers(np),
		}
		if ff, ok := op.(*plan.FusedFilter); ok {
			stat.Members = ff.TakeMemberStats()
		}
		report.OpStats = append(report.OpStats, stat)
		if e.tele != nil {
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvOpComplete, Span: e.tele.NewSpan(), Parent: e.tele.RunSpan(),
				Name: op.Name(), Kind: OpKind(op), PlanIdx: i,
				In: int64(stat.InCount), Out: int64(stat.OutCount),
				DurNS: int64(stat.Duration), Workers: stat.Workers,
			})
			EmitSpill(e.tele, op, i)
		}
	}

	if e.ckpt != nil {
		_ = e.ckpt.Clear()
	}
	report.Total = time.Since(start)

	// Best-effort: a failed sidecar write must not fail a succeeded run.
	_ = PersistProfiles(e.plan, report.OpStats)

	if e.tele != nil {
		e.tele.AddOutput(d.Len())
	}
	return d, report, nil
}
