package core

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sample"
	"repro/internal/trace"
)

// OpStat reports one executed operator.
type OpStat struct {
	Name     string
	InCount  int
	OutCount int
	Duration time.Duration
	CacheHit bool
	Resumed  bool
}

// Report summarizes one pipeline run.
type Report struct {
	OpStats  []OpStat
	Total    time.Duration
	Resumed  bool
	PlanSize int
}

// Executor runs a recipe over datasets.
type Executor struct {
	recipe *config.Recipe
	plan   []ops.OP
	specs  []config.OpSpec // aligned with the *unfused* recipe order
	ids    map[ops.OP]string
	tracer *trace.Tracer
	store  *cache.Store
	ckpt   *cache.CheckpointManager
}

// NewExecutor validates the recipe, instantiates its operators, and builds
// the (optionally fused) execution plan.
func NewExecutor(r *config.Recipe) (*Executor, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	built, err := r.BuildOps()
	if err != nil {
		return nil, err
	}
	// Stable per-operator identities (name + params) for cache keys: the
	// chain key of op i depends only on the dataset content and the ops up
	// to i, so editing the recipe tail reuses every cached prefix.
	ids := make(map[ops.OP]string, len(built))
	for i, op := range built {
		ids[op] = cache.Key("", r.Process[i].Name, r.Process[i].Params)
	}
	e := &Executor{
		recipe: r,
		plan:   BuildPlan(built, r.OpFusion),
		specs:  r.Process,
		ids:    ids,
	}
	if r.EnableTrace {
		e.tracer = trace.New(0)
	}
	if r.UseCache {
		store, err := cache.NewStore(filepath.Join(r.WorkDir, "cache"), r.CacheCompression)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	if r.UseCheckpoint {
		ckpt, err := cache.NewCheckpointManager(filepath.Join(r.WorkDir, "checkpoint"), r.CacheCompression)
		if err != nil {
			return nil, err
		}
		e.ckpt = ckpt
	}
	return e, nil
}

// Plan returns the execution plan after fusion and reordering.
func (e *Executor) Plan() []ops.OP { return e.plan }

// Tracer returns the lineage tracer (nil unless the recipe enables it).
func (e *Executor) Tracer() *trace.Tracer { return e.tracer }

// recipeFingerprint identifies this recipe + input dataset combination for
// checkpoint compatibility checks.
func (e *Executor) recipeFingerprint(d *dataset.Dataset) string {
	h := fnv.New64a()
	fmt.Fprint(h, d.Fingerprint(), "\x00")
	for _, s := range e.specs {
		fmt.Fprint(h, s.Name, "\x00")
		fmt.Fprint(h, cache.Key("", s.Name, s.Params), "\x00")
	}
	fmt.Fprintf(h, "fusion=%v", e.recipe.OpFusion)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run executes the plan over d and returns the processed dataset. The
// input dataset is modified in place by Mappers (clone first if the
// original must survive).
func (e *Executor) Run(d *dataset.Dataset) (*dataset.Dataset, *Report, error) {
	start := time.Now()
	report := &Report{PlanSize: len(e.plan)}
	np := e.recipe.NP

	recipeFP := ""
	startIdx := 0
	if e.ckpt != nil || e.store != nil {
		recipeFP = e.recipeFingerprint(d)
	}
	if e.ckpt != nil {
		if idx, saved, ok, err := e.ckpt.Resume(recipeFP); err != nil {
			return nil, nil, err
		} else if ok {
			d = saved
			startIdx = idx
			report.Resumed = true
		}
	}

	// Chain cache keys: key_i = H(key_{i-1}, op_i identity). key_0 derives
	// from the dataset content alone, so editing the recipe tail reuses the
	// whole cached prefix.
	chainKey := ""
	if e.store != nil {
		chainKey = cache.Key(d.Fingerprint(), "dataset", nil)
		for i := 0; i < startIdx && i < len(e.plan); i++ {
			chainKey = e.opCacheKey(chainKey, e.plan[i])
		}
	}

	for i := startIdx; i < len(e.plan); i++ {
		op := e.plan[i]
		opStart := time.Now()
		inCount := d.Len()

		var key string
		if e.store != nil {
			key = e.opCacheKey(chainKey, op)
			if cached, ok, err := e.store.Get(key); err != nil {
				return nil, nil, err
			} else if ok {
				d = cached
				chainKey = key
				stat := OpStat{Name: op.Name(), InCount: inCount, OutCount: d.Len(),
					Duration: time.Since(opStart), CacheHit: true}
				report.OpStats = append(report.OpStats, stat)
				e.traceCacheHit(op, inCount, d.Len(), stat.Duration)
				continue
			}
		}

		out, err := e.applyOp(op, d, np)
		if err != nil {
			// Preserve a recovery point before surfacing the failure, as
			// described in Sec. 4.1.1 (states are saved when errors occur).
			if e.ckpt != nil {
				_ = e.ckpt.Save(recipeFP, i, d)
			}
			return nil, nil, fmt.Errorf("core: op %d (%s): %w", i, op.Name(), err)
		}
		d = out

		if e.store != nil {
			if err := e.store.Put(key, d); err != nil {
				return nil, nil, err
			}
			chainKey = key
		}
		if e.ckpt != nil {
			if err := e.ckpt.Save(recipeFP, i+1, d); err != nil {
				return nil, nil, err
			}
		}
		report.OpStats = append(report.OpStats, OpStat{
			Name: op.Name(), InCount: inCount, OutCount: d.Len(),
			Duration: time.Since(opStart),
		})
	}

	if e.ckpt != nil {
		_ = e.ckpt.Clear()
	}
	report.Total = time.Since(start)
	return d, report, nil
}

// opCacheKey folds one planned operator's identity into the chain key.
// Fused OPs compose the identities of their members, so the same fused
// pipeline state maps to the same key across runs.
func (e *Executor) opCacheKey(prev string, op ops.OP) string {
	return cache.Key(prev, e.opIdentity(op), nil)
}

func (e *Executor) opIdentity(op ops.OP) string {
	if id, ok := e.ids[op]; ok {
		return id
	}
	if fused, ok := op.(*FusedFilter); ok {
		parts := make([]string, 0, len(fused.Members()))
		for _, m := range fused.Members() {
			parts = append(parts, e.opIdentity(m))
		}
		return "fused(" + strings.Join(parts, ",") + ")"
	}
	return op.Name()
}

// applyOp dispatches one planned operator over the dataset.
func (e *Executor) applyOp(op ops.OP, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	switch typed := op.(type) {
	case ops.Mapper:
		return e.applyMapper(typed, d, np)
	case ops.Filter:
		return e.applyFilter(typed, d, np)
	case ops.Deduplicator:
		return e.applyDedup(typed, d, np)
	}
	return nil, fmt.Errorf("unsupported operator type %T", op)
}

func (e *Executor) applyMapper(m ops.Mapper, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	var edits []trace.Edit
	collect := e.tracer != nil
	editCap := 0
	if collect {
		editCap = e.tracer.MaxPerOp()
	}
	var before []string
	if collect {
		before = make([]string, d.Len())
		for i, s := range d.Samples {
			before[i] = s.Text
		}
	}
	start := time.Now()
	err := d.Map(np, func(s *sample.Sample) error {
		defer s.ClearContext()
		return m.Process(s)
	})
	if err != nil {
		return nil, err
	}
	if collect {
		for i, s := range d.Samples {
			if len(edits) >= editCap {
				break
			}
			if s.Text != before[i] {
				edits = append(edits, trace.Edit{Before: before[i], After: s.Text})
			}
		}
		e.tracer.Record(trace.Event{
			OpName: m.Name(), Kind: "mapper",
			InCount: d.Len(), OutCount: d.Len(),
			Duration: time.Since(start), Edits: edits,
		})
	}
	return d, nil
}

// applyFilter runs the two decoupled phases: parallel stat computation
// (with per-sample context cleared afterwards, bounding fusion memory),
// then the boolean split.
func (e *Executor) applyFilter(f ops.Filter, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	start := time.Now()
	if err := d.Map(np, func(s *sample.Sample) error {
		defer s.ClearContext()
		return f.ComputeStats(s)
	}); err != nil {
		return nil, err
	}
	kept, dropped := d.Filter(np, f.Keep)
	if e.tracer != nil {
		var discards []trace.Discard
		for i, s := range dropped {
			if i >= e.tracer.MaxPerOp() {
				break
			}
			stats := map[string]float64{}
			for _, k := range f.StatKeys() {
				if v, ok := s.Stat(k); ok {
					stats[k] = v
				}
			}
			discards = append(discards, trace.Discard{Text: s.Text, Stats: stats})
		}
		e.tracer.Record(trace.Event{
			OpName: f.Name(), Kind: "filter",
			InCount: d.Len(), OutCount: kept.Len(),
			Duration: time.Since(start), Discards: discards,
		})
	}
	return kept, nil
}

func (e *Executor) applyDedup(dd ops.Deduplicator, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	start := time.Now()
	kept, pairs, err := dd.Dedup(d, np)
	if err != nil {
		return nil, err
	}
	if e.tracer != nil {
		var dp []trace.DupPair
		for i, p := range pairs {
			if i >= e.tracer.MaxPerOp() {
				break
			}
			dp = append(dp, trace.DupPair{
				Kept:    d.Samples[p.Kept].Text,
				Dropped: d.Samples[p.Dropped].Text,
			})
		}
		e.tracer.Record(trace.Event{
			OpName: dd.Name(), Kind: "deduplicator",
			InCount: d.Len(), OutCount: kept.Len(),
			Duration: time.Since(start), DupPairs: dp,
		})
	}
	return kept, nil
}

func (e *Executor) traceCacheHit(op ops.OP, in, out int, dur time.Duration) {
	if e.tracer == nil {
		return
	}
	kind := "mapper"
	switch op.(type) {
	case ops.Filter:
		kind = "filter"
	case ops.Deduplicator:
		kind = "deduplicator"
	}
	e.tracer.Record(trace.Event{
		OpName: op.Name(), Kind: kind, InCount: in, OutCount: out,
		Duration: dur, CacheHit: true,
	})
}
