package core

import (
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// This file adapts core types onto the telemetry substrate
// (internal/telemetry, which deliberately imports nothing from the rest
// of the repository): observer fan-out, plan-node registration, journal
// event construction, and report-row conversion shared by both backends.

// multiObserver fans one observation out to several observers.
type multiObserver []OpObserver

func (m multiObserver) ObserveOp(o OpObservation) {
	for _, obs := range m {
		obs.ObserveOp(o)
	}
}

// CombineObservers folds any number of observers (nils skipped) into
// one. Returns nil when none remain, a lone observer unwrapped.
func CombineObservers(obs ...OpObserver) OpObserver {
	var nz []OpObserver
	for _, o := range obs {
		if o != nil {
			nz = append(nz, o)
		}
	}
	switch len(nz) {
	case 0:
		return nil
	case 1:
		return nz[0]
	}
	return multiObserver(nz)
}

// telemetryObserver routes runner observations to per-op instrument
// handles resolved once at attach time — the hot path is one map lookup
// plus atomic adds, no allocation.
type telemetryObserver struct {
	byOp map[ops.OP]*telemetry.OpMetrics
}

func (t *telemetryObserver) ObserveOp(o OpObservation) {
	if m, ok := t.byOp[o.Op]; ok {
		m.Observe(o.In, o.Out, o.Bytes, o.Duration)
	}
}

// AttachTelemetry registers every plan node with the run's metric
// registry and returns an observer feeding those instruments. Predicted
// cost is forwarded only when measured (ns/sample); static hint units
// would poison the ETA.
func AttachTelemetry(t *telemetry.Run, p *plan.Plan) OpObserver {
	if t == nil || p == nil {
		return nil
	}
	byOp := make(map[ops.OP]*telemetry.OpMetrics, len(p.Nodes))
	for i := range p.Nodes {
		n := &p.Nodes[i]
		var predNS int64
		if n.Measured {
			predNS = int64(n.Cost)
		}
		byOp[n.Op] = t.RegisterOp(i, n.Op.Name(), predNS, n.Selectivity)
	}
	return &telemetryObserver{byOp: byOp}
}

// OpKind names an operator's category for journal events.
func OpKind(op ops.OP) string {
	switch op.(type) {
	case ops.Filter:
		return "filter"
	case ops.Deduplicator:
		return "deduplicator"
	default:
		return "mapper"
	}
}

// PlanEvent builds the journal's plan event from a physical plan,
// including per-pass durations.
func PlanEvent(p *plan.Plan) telemetry.Event {
	e := telemetry.Event{Type: telemetry.EvPlan}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		op := telemetry.PlanOp{
			Name:        n.Op.Name(),
			Kind:        OpKind(n.Op),
			Phase:       n.Phase,
			Selectivity: n.Selectivity,
			Measured:    n.Measured,
		}
		if n.Measured {
			op.CostNS = int64(n.Cost)
		}
		if ff, ok := n.Op.(*plan.FusedFilter); ok {
			for _, m := range ff.Members() {
				op.Members = append(op.Members, m.Name())
			}
		}
		e.Ops = append(e.Ops, op)
	}
	for _, pass := range p.Passes {
		e.Passes = append(e.Passes, telemetry.PlanPass{
			Name: pass.Name, Detail: pass.Detail, DurNS: int64(pass.Dur),
		})
	}
	return e
}

// TraceJournalSink adapts tracer records into journal trace events:
// lineage joins the journal instead of living in a parallel file.
func TraceJournalSink(t *telemetry.Run) func(trace.Event) {
	return func(e trace.Event) {
		ev := telemetry.Event{
			Type: telemetry.EvTrace, Name: e.OpName, Kind: e.Kind,
			In: int64(e.InCount), Out: int64(e.OutCount),
			DurNS: int64(e.Duration), CacheHit: e.CacheHit,
		}
		if len(e.Edits) > 0 || len(e.Discards) > 0 || len(e.DupPairs) > 0 {
			ev.Attrs = map[string]any{}
			if len(e.Edits) > 0 {
				ev.Attrs["edits"] = e.Edits
			}
			if len(e.Discards) > 0 {
				ev.Attrs["discards"] = e.Discards
			}
			if len(e.DupPairs) > 0 {
				ev.Attrs["dup_pairs"] = e.DupPairs
			}
		}
		t.Emit(ev)
	}
}

// TelemetryRows converts executed op stats into the shared table rows
// both backends render, fused-member attribution included.
func TelemetryRows(stats []OpStat) []telemetry.OpRow {
	rows := make([]telemetry.OpRow, 0, len(stats))
	for _, st := range stats {
		row := telemetry.OpRow{
			Name: st.Name, In: st.InCount, Out: st.OutCount,
			Dur: st.Duration, CacheHit: st.CacheHit,
		}
		for _, m := range st.Members {
			row.Members = append(row.Members, telemetry.MemberRow{
				Name: m.Name, In: m.In, Out: m.Out, Dur: m.Duration,
			})
		}
		rows = append(rows, row)
	}
	return rows
}
