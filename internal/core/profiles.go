package core

import (
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/plan"
)

// PersistProfiles folds one run's measured per-op costs into the plan's
// profile sidecar, so the next plan.Build of the same recipe orders its
// commutative filter groups from real measurements. Both backends call
// it after a successful run: the batch executor with its report, the
// streaming engine with its executed-only aggregates (cache-hit shards
// carry no execution cost and are excluded upstream). Entries are keyed
// by operator identity (name + params hash), fused ops contribute their
// members individually (the planner predicts members, not fusions), and
// cache-hit entries are skipped — a cache read's duration is not an
// execution cost. Costs are normalized to CPU time per sample
// (Duration × Workers / InCount): member attribution and streaming
// shard work already sum serial CPU time, while batch ops measure wall
// time under N workers, and the sidecar must hold one comparable basis.
// No-op when the plan has no sidecar (use_profiles off or no work dir).
func PersistProfiles(p *plan.Plan, stats []OpStat) error {
	if p.ProfilePath == "" {
		return nil
	}
	set, err := dist.LoadProfiles(p.ProfilePath)
	if err != nil {
		// A corrupt sidecar is replaced by fresh measurements.
		set = dist.NewProfileSet()
	}
	for _, st := range stats {
		if st.CacheHit || st.InCount <= 0 || st.PlanIndex < 0 || st.PlanIndex >= len(p.Nodes) {
			continue
		}
		node := &p.Nodes[st.PlanIndex]
		if len(st.Members) > 0 {
			for j, ms := range st.Members {
				if j >= len(node.MemberKeys) || ms.Samples <= 0 || ms.In <= 0 {
					continue
				}
				set.Observe(node.MemberKeys[j], ms.Name,
					float64(ms.Duration.Nanoseconds())/float64(ms.Samples),
					float64(ms.Out)/float64(ms.In))
			}
			continue
		}
		if node.Key == "" {
			continue
		}
		workers := st.Workers
		if workers < 1 {
			workers = 1
		}
		set.Observe(node.Key, st.Name,
			float64(st.Duration.Nanoseconds())*float64(workers)/float64(st.InCount),
			float64(st.OutCount)/float64(st.InCount))
	}
	return dist.SaveProfiles(p.ProfilePath, set)
}

// MeasureRunner returns a single-threaded, cache-free, profile-free
// runner over the recipe's operator chain, shaped for dist.Measure: the
// per-shard cost probe must measure the chain as written, not as the
// planner would reorder it from history.
func MeasureRunner(r *config.Recipe) (func(d *dataset.Dataset) (int, error), error) {
	m := *r
	m.NP = 1
	m.UseCache = false
	m.UseCheckpoint = false
	m.UseProfiles = false
	exec, err := NewExecutor(&m)
	if err != nil {
		return nil, err
	}
	return func(d *dataset.Dataset) (int, error) {
		out, _, err := exec.Run(d)
		if err != nil {
			return 0, err
		}
		return out.Len(), nil
	}, nil
}
