package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/trace"
)

// OpObservation is one measured operator application: what went in, what
// came out, how many text bytes were touched, and how long it took. It is
// the raw signal an adaptive scheduler needs — wall time yields per-sample
// cost, Out/In yields selectivity, Bytes yields the memory footprint.
type OpObservation struct {
	Op       ops.OP
	In, Out  int
	Bytes    int64 // input text bytes entering the op
	Duration time.Duration
}

// OpObserver receives one OpObservation per operator application.
// Implementations must be safe for concurrent calls: the streaming engine
// applies ops from many shard workers at once.
type OpObserver interface {
	ObserveOp(OpObservation)
}

// OpRunner applies planned operators to datasets: the per-op execution
// logic — type dispatch, tracer hooks, and chain cache keys — shared by
// the batch Executor and the streaming engine (internal/stream). An
// OpRunner is immutable after construction and safe for concurrent use;
// the tracer (if any) serializes its own recording.
type OpRunner struct {
	tracer *trace.Tracer
	ids    map[ops.OP]string
	obs    OpObserver
}

// WithObserver returns a copy of the runner that reports every operator
// application to obs. The receiver is unchanged, preserving immutability.
func (r *OpRunner) WithObserver(obs OpObserver) *OpRunner {
	c := *r
	c.obs = obs
	return &c
}

// observe emits one measurement (no-op without an observer).
func (r *OpRunner) observe(op ops.OP, in, out int, bytes int64, dur time.Duration) {
	if r.obs != nil {
		r.obs.ObserveOp(OpObservation{Op: op, In: in, Out: out, Bytes: bytes, Duration: dur})
	}
}

// NewOpRunner builds a runner for the given instantiated operators.
// built must align one-to-one with specs (the unfused recipe order);
// the per-operator identities derived from them key the chain cache.
// tracer may be nil.
func NewOpRunner(built []ops.OP, specs []config.OpSpec, tracer *trace.Tracer) *OpRunner {
	ids := make(map[ops.OP]string, len(built))
	for i, op := range built {
		if i < len(specs) {
			ids[op] = cache.Key("", specs[i].Name, specs[i].Params)
		}
	}
	return &OpRunner{tracer: tracer, ids: ids}
}

// Tracer returns the lineage tracer (nil when tracing is disabled).
func (r *OpRunner) Tracer() *trace.Tracer { return r.tracer }

// OpCacheKey folds one planned operator's identity into the chain key.
// Fused OPs compose the identities of their members, so the same fused
// pipeline state maps to the same key across runs.
func (r *OpRunner) OpCacheKey(prev string, op ops.OP) string {
	return cache.Key(prev, r.OpIdentity(op), nil)
}

// OpIdentity returns the stable identity (name + params) of a planned
// operator, composing member identities for fused OPs.
func (r *OpRunner) OpIdentity(op ops.OP) string {
	if id, ok := r.ids[op]; ok {
		return id
	}
	if fused, ok := op.(*plan.FusedFilter); ok {
		parts := make([]string, 0, len(fused.Members()))
		for _, m := range fused.Members() {
			parts = append(parts, r.OpIdentity(m))
		}
		return "fused(" + strings.Join(parts, ",") + ")"
	}
	return op.Name()
}

// ApplyOp dispatches one planned operator over the dataset.
func (r *OpRunner) ApplyOp(op ops.OP, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	switch typed := op.(type) {
	case ops.Mapper:
		return r.ApplyMapper(typed, d, np)
	case ops.Filter:
		return r.ApplyFilter(typed, d, np)
	case ops.Deduplicator:
		return r.ApplyDedup(typed, d, np)
	}
	return nil, fmt.Errorf("unsupported operator type %T", op)
}

// ApplyMapper transforms every sample in place with np workers, handing
// each worker contiguous batches so per-sample overhead (scratch
// attachment, context clearing) amortizes across the chunk.
func (r *OpRunner) ApplyMapper(m ops.Mapper, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	var inBytes int64
	if r.obs != nil {
		inBytes = d.TotalBytes() // before mutation: mappers edit text in place
	}
	obsStart := time.Now()
	var edits []trace.Edit
	collect := r.tracer != nil
	editCap := 0
	if collect {
		editCap = r.tracer.MaxPerOp()
	}
	var before []string
	if collect {
		before = make([]string, d.Len())
		for i, s := range d.Samples {
			before[i] = s.Text
		}
	}
	start := time.Now()
	err := d.MapBatches(np, func(batch []*sample.Sample) error {
		sc := sample.GetScratch()
		defer sample.PutScratch(sc)
		for _, s := range batch {
			s.AttachScratch(sc)
			err := m.Process(s)
			s.ClearContext()
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if collect {
		for i, s := range d.Samples {
			if len(edits) >= editCap {
				break
			}
			if s.Text != before[i] {
				edits = append(edits, trace.Edit{Before: before[i], After: s.Text})
			}
		}
		r.tracer.Record(trace.Event{
			OpName: m.Name(), Kind: "mapper",
			InCount: d.Len(), OutCount: d.Len(),
			Duration: time.Since(start), Edits: edits,
		})
	}
	r.observe(m, d.Len(), d.Len(), inBytes, time.Since(obsStart))
	return d, nil
}

// ApplyFilter runs the two decoupled phases: parallel batch-granular
// stat computation (with per-sample context cleared afterwards, bounding
// fusion memory), then the boolean split. Filters implementing the batch
// interfaces (fused ops) own the batch loop themselves; dropped samples
// are only collected when a tracer wants them.
func (r *OpRunner) ApplyFilter(f ops.Filter, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	var inBytes int64
	if r.obs != nil {
		inBytes = d.TotalBytes()
	}
	start := time.Now()
	var statsErr error
	if sb, ok := f.(ops.StatsBatcher); ok {
		statsErr = d.MapBatches(np, sb.ComputeStatsBatch)
	} else {
		statsErr = d.MapBatches(np, func(batch []*sample.Sample) error {
			sc := sample.GetScratch()
			defer sample.PutScratch(sc)
			for _, s := range batch {
				s.AttachScratch(sc)
				err := f.ComputeStats(s)
				s.ClearContext()
				if err != nil {
					return err
				}
			}
			return nil
		})
	}
	if statsErr != nil {
		return nil, statsErr
	}
	collectDropped := r.tracer != nil
	judge := func(batch []*sample.Sample, verdict []bool) {
		for i, s := range batch {
			verdict[i] = f.Keep(s)
		}
	}
	if kb, ok := f.(ops.KeepBatcher); ok {
		judge = kb.KeepBatch
	}
	kept, dropped := d.FilterBatches(np, collectDropped, judge)
	if r.tracer != nil {
		var discards []trace.Discard
		for i, s := range dropped {
			if i >= r.tracer.MaxPerOp() {
				break
			}
			stats := map[string]float64{}
			for _, k := range f.StatKeys() {
				if v, ok := s.Stat(k); ok {
					stats[k] = v
				}
			}
			discards = append(discards, trace.Discard{Text: s.Text, Stats: stats})
		}
		r.tracer.Record(trace.Event{
			OpName: f.Name(), Kind: "filter",
			InCount: d.Len(), OutCount: kept.Len(),
			Duration: time.Since(start), Discards: discards,
		})
	}
	r.observe(f, d.Len(), kept.Len(), inBytes, time.Since(start))
	return kept, nil
}

// ApplyDedup runs a dataset-global deduplicator.
func (r *OpRunner) ApplyDedup(dd ops.Deduplicator, d *dataset.Dataset, np int) (*dataset.Dataset, error) {
	var inBytes int64
	if r.obs != nil {
		inBytes = d.TotalBytes()
	}
	start := time.Now()
	kept, pairs, err := dd.Dedup(d, np)
	if err != nil {
		return nil, err
	}
	if r.tracer != nil {
		var dp []trace.DupPair
		for i, p := range pairs {
			if i >= r.tracer.MaxPerOp() {
				break
			}
			dp = append(dp, trace.DupPair{
				Kept:    d.Samples[p.Kept].Text,
				Dropped: d.Samples[p.Dropped].Text,
			})
		}
		r.tracer.Record(trace.Event{
			OpName: dd.Name(), Kind: "deduplicator",
			InCount: d.Len(), OutCount: kept.Len(),
			Duration: time.Since(start), DupPairs: dp,
		})
	}
	r.observe(dd, d.Len(), kept.Len(), inBytes, time.Since(start))
	return kept, nil
}

// TraceCacheHit records a cache-hit event for op (no-op without a tracer).
func (r *OpRunner) TraceCacheHit(op ops.OP, in, out int, dur time.Duration) {
	if r.tracer == nil {
		return
	}
	kind := "mapper"
	switch op.(type) {
	case ops.Filter:
		kind = "filter"
	case ops.Deduplicator:
		kind = "deduplicator"
	}
	r.tracer.Record(trace.Event{
		OpName: op.Name(), Kind: kind, InCount: in, OutCount: out,
		Duration: dur, CacheHit: true,
	})
}
