package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dataset"
	"repro/internal/format"
)

// LoadInput resolves the recipe's input — dataset_path or the weighted
// sources: list — into a fully resident dataset for the batch executor.
// The streaming engine opens the identical spec incrementally via
// stream.OpenSource(r.DatasetSpec(), ...), so both backends consume the
// same sample sequence, provenance tags included.
func LoadInput(r *config.Recipe) (*dataset.Dataset, error) {
	spec := r.DatasetSpec()
	if spec == "" {
		return nil, fmt.Errorf("core: recipe has no input: set dataset_path or sources")
	}
	return format.Load(spec)
}
