// Package core implements the pipeline executor of Data-Juicer: it runs a
// recipe's operator list over a dataset with parallel workers, applying
// the system optimizations of Sec. 6 — shared-context management, operator
// fusion and reordering (Figure 6) — plus the cache and checkpoint
// machinery of Sec. 4.1.1 and the lineage tracer of Sec. 4.2.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ops"
	"repro/internal/sample"
)

// FusedFilter executes several context-sharing filters as one operator:
// the shared intermediates (segmented words, split lines) are computed
// once per sample and reused by every member, then the context is cleared.
type FusedFilter struct {
	members []ops.Filter
}

// NewFusedFilter fuses the given filters. It panics on fewer than two
// members: fusing one filter is meaningless and indicates a planner bug.
func NewFusedFilter(members []ops.Filter) *FusedFilter {
	if len(members) < 2 {
		panic("core: fused filter needs at least two members")
	}
	return &FusedFilter{members: members}
}

// Name lists the fused member names.
func (f *FusedFilter) Name() string {
	names := make([]string, len(f.members))
	for i, m := range f.members {
		names[i] = m.Name()
	}
	return "fused(" + strings.Join(names, ",") + ")"
}

// Members returns the fused filters in execution order.
func (f *FusedFilter) Members() []ops.Filter { return f.members }

// StatKeys is the union of member stat keys.
func (f *FusedFilter) StatKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, m := range f.members {
		for _, k := range m.StatKeys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// ContextKeys is the union of member context keys.
func (f *FusedFilter) ContextKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, m := range f.members {
		for _, k := range ops.ContextKeysOf(m) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// CostHint is the sum of member costs: a fused OP is scheduled late within
// its commutative group.
func (f *FusedFilter) CostHint() float64 {
	var c float64
	for _, m := range f.members {
		c += ops.CostOf(m)
	}
	return c
}

// ComputeStats runs every member's stat computation over the shared
// context.
func (f *FusedFilter) ComputeStats(s *sample.Sample) error {
	for _, m := range f.members {
		if err := m.ComputeStats(s); err != nil {
			return err
		}
	}
	return nil
}

// Keep is the conjunction of member verdicts.
func (f *FusedFilter) Keep(s *sample.Sample) bool {
	for _, m := range f.members {
		if !m.Keep(s) {
			return false
		}
	}
	return true
}

var _ ops.Filter = (*FusedFilter)(nil)

// BuildPlan applies the OP-fusion procedure of Figure 6 to an operator
// list:
//
//  1. split the list into groups of consecutive Filters (Filters commute
//     with each other; Mappers and Deduplicators are barriers),
//  2. inside each group, find the fusible filters — those declaring
//     shared-context usage, clustered by overlapping context keys,
//  3. fuse clusters of two or more into a single FusedFilter,
//  4. reorder each group by ascending cost so cheap filters shrink the
//     dataset before expensive (and fused) ones run.
//
// With fuse=false the input order is returned unchanged.
func BuildPlan(list []ops.OP, fuse bool) []ops.OP {
	if !fuse {
		out := make([]ops.OP, len(list))
		copy(out, list)
		return out
	}
	var plan []ops.OP
	i := 0
	for i < len(list) {
		f, ok := list[i].(ops.Filter)
		if !ok {
			plan = append(plan, list[i])
			i++
			continue
		}
		// Collect the maximal run of consecutive filters.
		group := []ops.Filter{f}
		j := i + 1
		for j < len(list) {
			nf, ok := list[j].(ops.Filter)
			if !ok {
				break
			}
			group = append(group, nf)
			j++
		}
		plan = append(plan, fuseGroup(group)...)
		i = j
	}
	return plan
}

// fuseGroup fuses and reorders one commutative filter group.
func fuseGroup(group []ops.Filter) []ops.OP {
	// Cluster fusible filters by overlapping context keys (union-find over
	// shared keys).
	keyOwner := map[string]int{} // context key -> cluster id
	cluster := make([]int, len(group))
	for i := range cluster {
		cluster[i] = -1
	}
	nextCluster := 0
	clusterMembers := map[int][]int{}
	for i, flt := range group {
		keys := ops.ContextKeysOf(flt)
		if len(keys) == 0 {
			continue
		}
		id := -1
		for _, k := range keys {
			if owner, ok := keyOwner[k]; ok {
				id = owner
				break
			}
		}
		if id == -1 {
			id = nextCluster
			nextCluster++
		}
		for _, k := range keys {
			if prev, ok := keyOwner[k]; ok && prev != id {
				// Merge cluster prev into id.
				for _, m := range clusterMembers[prev] {
					cluster[m] = id
				}
				clusterMembers[id] = append(clusterMembers[id], clusterMembers[prev]...)
				delete(clusterMembers, prev)
				for kk, own := range keyOwner {
					if own == prev {
						keyOwner[kk] = id
					}
				}
			}
			keyOwner[k] = id
		}
		cluster[i] = id
		clusterMembers[id] = append(clusterMembers[id], i)
	}

	// Emit: non-fusible filters individually; clusters of >=2 as one fused
	// OP; singleton clusters individually.
	type entry struct {
		op   ops.OP
		cost float64
		pos  int // original position, for a stable sort
	}
	var entries []entry
	emitted := map[int]bool{}
	for i, flt := range group {
		id := cluster[i]
		if id == -1 {
			entries = append(entries, entry{op: flt, cost: ops.CostOf(flt), pos: i})
			continue
		}
		if emitted[id] {
			continue
		}
		emitted[id] = true
		members := clusterMembers[id]
		sort.Ints(members)
		if len(members) == 1 {
			m := group[members[0]]
			entries = append(entries, entry{op: m, cost: ops.CostOf(m), pos: members[0]})
			continue
		}
		fl := make([]ops.Filter, len(members))
		for k, idx := range members {
			fl[k] = group[idx]
		}
		fused := NewFusedFilter(fl)
		entries = append(entries, entry{op: fused, cost: fused.CostHint(), pos: members[0]})
	}

	// Reorder: cheap first, expensive (typically the fused OP) last.
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].cost != entries[b].cost {
			return entries[a].cost < entries[b].cost
		}
		return entries[a].pos < entries[b].pos
	})
	out := make([]ops.OP, len(entries))
	for i, e := range entries {
		out[i] = e.op
	}
	return out
}

// DescribePlan renders a one-line-per-op view of a plan, used by the CLI
// to show the effect of fusion.
func DescribePlan(plan []ops.OP) string {
	var b strings.Builder
	for i, op := range plan {
		fmt.Fprintf(&b, "%2d. %s (cost %.0f)\n", i+1, op.Name(), ops.CostOf(op))
	}
	return b.String()
}
