package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	tr := New(2)
	tr.Record(Event{OpName: "a", Kind: "mapper", InCount: 10, OutCount: 10})
	tr.Record(Event{OpName: "b", Kind: "filter", InCount: 10, OutCount: 7})
	events := tr.Events()
	if len(events) != 2 || events[0].OpName != "a" || events[1].OutCount != 7 {
		t.Fatalf("events = %+v", events)
	}
}

func TestCapsApplied(t *testing.T) {
	tr := New(2)
	tr.Record(Event{
		OpName: "f", Kind: "filter",
		Discards: []Discard{{Text: "1"}, {Text: "2"}, {Text: "3"}},
		Edits:    []Edit{{Before: "a", After: "b"}, {}, {}, {}},
		DupPairs: []DupPair{{}, {}, {}},
	})
	e := tr.Events()[0]
	if len(e.Discards) != 2 || len(e.Edits) != 2 || len(e.DupPairs) != 2 {
		t.Fatalf("caps not applied: %d %d %d", len(e.Discards), len(e.Edits), len(e.DupPairs))
	}
}

func TestLongTextClipped(t *testing.T) {
	tr := New(5)
	long := strings.Repeat("x", 1000)
	tr.Record(Event{OpName: "m", Kind: "mapper", Edits: []Edit{{Before: long, After: long}}})
	e := tr.Events()[0]
	if len(e.Edits[0].Before) > 220 {
		t.Fatalf("text not clipped: %d", len(e.Edits[0].Before))
	}
	if !strings.HasSuffix(e.Edits[0].Before, "…") {
		t.Fatal("clip marker missing")
	}
}

func TestSummaryFormat(t *testing.T) {
	tr := New(5)
	tr.Record(Event{OpName: "word_num_filter", Kind: "filter", InCount: 100, OutCount: 60, Duration: time.Millisecond})
	tr.Record(Event{OpName: "dedup", Kind: "deduplicator", InCount: 60, OutCount: 50, CacheHit: true})
	s := tr.Summary()
	if !strings.Contains(s, "word_num_filter") || !strings.Contains(s, "40.0%") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(s, "[cache]") {
		t.Fatalf("cache marker missing: %q", s)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New(3)
	tr.Record(Event{OpName: "a", Kind: "mapper"})
	path := filepath.Join(t.TempDir(), "sub", "trace.json")
	if err := tr.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].OpName != "a" {
		t.Fatalf("round trip = %+v", events)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{OpName: "x"}) // must not panic
	if tr.Events() != nil {
		t.Fatal("nil tracer events should be nil")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(5)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Record(Event{OpName: "op", Kind: "mapper", InCount: 2, OutCount: 1})
		}()
	}
	wg.Wait()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1 merged aggregate", len(events))
	}
	e := events[0]
	if e.Records != 50 || e.InCount != 100 || e.OutCount != 50 {
		t.Fatalf("aggregate = %+v", e)
	}
}

func TestBoundedGrowth(t *testing.T) {
	// One event per shard per op used to accumulate without bound; the
	// merge-at-record-time fix caps retained state at maxPerOp examples
	// per op no matter how many records flow in.
	tr := New(3)
	for i := 0; i < 1000; i++ {
		tr.Record(Event{
			OpName: "f", Kind: "filter", InCount: 10, OutCount: 9,
			Discards: []Discard{{Text: "x"}},
		})
	}
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if len(e.Discards) != 3 {
		t.Fatalf("retained discards = %d, want cap 3", len(e.Discards))
	}
	if e.Records != 1000 || e.InCount != 10000 {
		t.Fatalf("aggregate = %+v", e)
	}
}

func TestPartialCacheMarker(t *testing.T) {
	tr := New(5)
	tr.Record(Event{OpName: "op", Kind: "filter", InCount: 10, OutCount: 8, CacheHit: true})
	tr.Record(Event{OpName: "op", Kind: "filter", InCount: 10, OutCount: 8})
	e := tr.Events()[0]
	if e.CacheHit || e.CacheHits != 1 {
		t.Fatalf("cache state = %+v", e)
	}
	if !strings.Contains(tr.Summary(), "[cache partial]") {
		t.Fatalf("summary = %q", tr.Summary())
	}
}

func TestSink(t *testing.T) {
	tr := New(2)
	var got []Event
	tr.SetSink(func(e Event) { got = append(got, e) })
	long := strings.Repeat("y", 500)
	tr.Record(Event{OpName: "m", Kind: "mapper", Edits: []Edit{{Before: long, After: "z"}}})
	tr.Record(Event{OpName: "m", Kind: "mapper"})
	if len(got) != 2 {
		t.Fatalf("sink calls = %d", len(got))
	}
	if len(got[0].Edits) != 1 || len(got[0].Edits[0].Before) > 220 {
		t.Fatalf("sink payload not clipped: %+v", got[0])
	}
}
