// Package trace implements the tracer of Sec. 4.2: it records what every
// operator did to the dataset — pre/post edit differences for Mappers,
// discarded samples for Filters, duplicate pairs for Deduplicators — so
// users can visually track per-OP effects and debug recipes.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Edit records one Mapper change: the text before and after.
type Edit struct {
	Before string `json:"before"`
	After  string `json:"after"`
}

// Discard records one Filter rejection with the stats that drove it.
type Discard struct {
	Text  string             `json:"text"`
	Stats map[string]float64 `json:"stats,omitempty"`
}

// DupPair records one Deduplicator removal.
type DupPair struct {
	Kept    string `json:"kept"`
	Dropped string `json:"dropped"`
}

// Event is the lineage record of one operator. Records for the same
// (kind, op) merge at record time — counts and durations sum, example
// payloads accumulate only up to the per-op cap — so memory stays
// bounded no matter how many shards flow through the op.
type Event struct {
	OpName   string        `json:"op_name"`
	Kind     string        `json:"kind"` // mapper | filter | deduplicator
	InCount  int           `json:"in_count"`
	OutCount int           `json:"out_count"`
	Duration time.Duration `json:"duration_ns"`
	// CacheHit reports that every merged record came from cache;
	// CacheHits counts how many did.
	CacheHit  bool `json:"cache_hit,omitempty"`
	CacheHits int  `json:"cache_hits,omitempty"`
	// Records counts how many raw records merged into this event.
	Records int `json:"records,omitempty"`

	// Capped example payloads for interactive inspection.
	Edits    []Edit    `json:"edits,omitempty"`
	Discards []Discard `json:"discards,omitempty"`
	DupPairs []DupPair `json:"dup_pairs,omitempty"`
}

// Tracer accumulates per-op lineage. The zero value is unusable;
// construct with New. All methods are safe for concurrent use.
type Tracer struct {
	mu         sync.Mutex
	events     []Event
	slot       map[string]int // kind\x00op -> index into events
	maxPerOp   int
	maxTextLen int
	sink       func(Event)
}

// New returns a tracer keeping at most maxPerOp example records per
// operator (25 if maxPerOp <= 0).
func New(maxPerOp int) *Tracer {
	if maxPerOp <= 0 {
		maxPerOp = 25
	}
	return &Tracer{maxPerOp: maxPerOp, maxTextLen: 200, slot: map[string]int{}}
}

// MaxPerOp reports the per-operator example cap.
func (t *Tracer) MaxPerOp() int { return t.maxPerOp }

// SetSink installs a callback invoked (outside the tracer lock) with
// every incoming record after payload clipping — the hook that feeds
// lineage into the run journal instead of a parallel file.
func (t *Tracer) SetSink(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

func (t *Tracer) clip(s string) string {
	if len(s) <= t.maxTextLen {
		return s
	}
	return s[:t.maxTextLen] + "…"
}

// Record folds a completed record into the per-op aggregate, clipping
// and capping example payloads at record time so retained memory is
// O(ops × maxPerOp) regardless of shard count.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(e.Edits) > t.maxPerOp {
		e.Edits = e.Edits[:t.maxPerOp]
	}
	for i := range e.Edits {
		e.Edits[i].Before = t.clip(e.Edits[i].Before)
		e.Edits[i].After = t.clip(e.Edits[i].After)
	}
	if len(e.Discards) > t.maxPerOp {
		e.Discards = e.Discards[:t.maxPerOp]
	}
	for i := range e.Discards {
		e.Discards[i].Text = t.clip(e.Discards[i].Text)
	}
	if len(e.DupPairs) > t.maxPerOp {
		e.DupPairs = e.DupPairs[:t.maxPerOp]
	}
	for i := range e.DupPairs {
		e.DupPairs[i].Kept = t.clip(e.DupPairs[i].Kept)
		e.DupPairs[i].Dropped = t.clip(e.DupPairs[i].Dropped)
	}

	key := e.Kind + "\x00" + e.OpName
	idx, ok := t.slot[key]
	if !ok {
		agg := e
		agg.Records = 1
		if e.CacheHit {
			agg.CacheHits = 1
		}
		t.slot[key] = len(t.events)
		t.events = append(t.events, agg)
	} else {
		agg := &t.events[idx]
		agg.InCount += e.InCount
		agg.OutCount += e.OutCount
		agg.Duration += e.Duration
		agg.Records++
		if e.CacheHit {
			agg.CacheHits++
		}
		agg.CacheHit = agg.CacheHit && e.CacheHit
		if room := t.maxPerOp - len(agg.Edits); room > 0 && len(e.Edits) > 0 {
			agg.Edits = append(agg.Edits, e.Edits[:min(room, len(e.Edits))]...)
		}
		if room := t.maxPerOp - len(agg.Discards); room > 0 && len(e.Discards) > 0 {
			agg.Discards = append(agg.Discards, e.Discards[:min(room, len(e.Discards))]...)
		}
		if room := t.maxPerOp - len(agg.DupPairs); room > 0 && len(e.DupPairs) > 0 {
			agg.DupPairs = append(agg.DupPairs, e.DupPairs[:min(room, len(e.DupPairs))]...)
		}
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Events returns a copy of the per-op aggregates in first-seen order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Summary renders the per-OP pipeline effect (the Figure 4(b) view): one
// line per operator with sample counts flowing through.
func (t *Tracer) Summary() string {
	var b strings.Builder
	b.WriteString("op pipeline effect (samples in -> out)\n")
	for _, e := range t.Events() {
		removed := e.InCount - e.OutCount
		pct := 0.0
		if e.InCount > 0 {
			pct = 100 * float64(removed) / float64(e.InCount)
		}
		cached := ""
		switch {
		case e.CacheHit:
			cached = " [cache]"
		case e.CacheHits > 0:
			cached = " [cache partial]"
		}
		fmt.Fprintf(&b, "  %-44s %8d -> %-8d (-%5.1f%%) %8s%s\n",
			e.OpName, e.InCount, e.OutCount, pct, e.Duration.Round(time.Microsecond), cached)
	}
	return b.String()
}

// WriteJSON dumps the full lineage to path for offline inspection.
func (t *Tracer) WriteJSON(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(t.Events(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
