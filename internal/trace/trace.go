// Package trace implements the tracer of Sec. 4.2: it records what every
// operator did to the dataset — pre/post edit differences for Mappers,
// discarded samples for Filters, duplicate pairs for Deduplicators — so
// users can visually track per-OP effects and debug recipes.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Edit records one Mapper change: the text before and after.
type Edit struct {
	Before string `json:"before"`
	After  string `json:"after"`
}

// Discard records one Filter rejection with the stats that drove it.
type Discard struct {
	Text  string             `json:"text"`
	Stats map[string]float64 `json:"stats,omitempty"`
}

// DupPair records one Deduplicator removal.
type DupPair struct {
	Kept    string `json:"kept"`
	Dropped string `json:"dropped"`
}

// Event is the lineage record of one executed operator.
type Event struct {
	OpName   string        `json:"op_name"`
	Kind     string        `json:"kind"` // mapper | filter | deduplicator
	InCount  int           `json:"in_count"`
	OutCount int           `json:"out_count"`
	Duration time.Duration `json:"duration_ns"`
	CacheHit bool          `json:"cache_hit,omitempty"`

	// Capped example payloads for interactive inspection.
	Edits    []Edit    `json:"edits,omitempty"`
	Discards []Discard `json:"discards,omitempty"`
	DupPairs []DupPair `json:"dup_pairs,omitempty"`
}

// Tracer accumulates events. The zero value is unusable; construct with
// New. All methods are safe for concurrent use.
type Tracer struct {
	mu         sync.Mutex
	events     []Event
	maxPerOp   int
	maxTextLen int
}

// New returns a tracer keeping at most maxPerOp example records per
// operator (25 if maxPerOp <= 0).
func New(maxPerOp int) *Tracer {
	if maxPerOp <= 0 {
		maxPerOp = 25
	}
	return &Tracer{maxPerOp: maxPerOp, maxTextLen: 200}
}

// MaxPerOp reports the per-operator example cap.
func (t *Tracer) MaxPerOp() int { return t.maxPerOp }

func (t *Tracer) clip(s string) string {
	if len(s) <= t.maxTextLen {
		return s
	}
	return s[:t.maxTextLen] + "…"
}

// Record appends a completed event, clipping example payloads.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(e.Edits) > t.maxPerOp {
		e.Edits = e.Edits[:t.maxPerOp]
	}
	for i := range e.Edits {
		e.Edits[i].Before = t.clip(e.Edits[i].Before)
		e.Edits[i].After = t.clip(e.Edits[i].After)
	}
	if len(e.Discards) > t.maxPerOp {
		e.Discards = e.Discards[:t.maxPerOp]
	}
	for i := range e.Discards {
		e.Discards[i].Text = t.clip(e.Discards[i].Text)
	}
	if len(e.DupPairs) > t.maxPerOp {
		e.DupPairs = e.DupPairs[:t.maxPerOp]
	}
	for i := range e.DupPairs {
		e.DupPairs[i].Kept = t.clip(e.DupPairs[i].Kept)
		e.DupPairs[i].Dropped = t.clip(e.DupPairs[i].Dropped)
	}
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events in execution order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Summary renders the per-OP pipeline effect (the Figure 4(b) view): one
// line per operator with sample counts flowing through.
func (t *Tracer) Summary() string {
	var b strings.Builder
	b.WriteString("op pipeline effect (samples in -> out)\n")
	for _, e := range t.Events() {
		removed := e.InCount - e.OutCount
		pct := 0.0
		if e.InCount > 0 {
			pct = 100 * float64(removed) / float64(e.InCount)
		}
		cached := ""
		if e.CacheHit {
			cached = " [cache]"
		}
		fmt.Fprintf(&b, "  %-44s %8d -> %-8d (-%5.1f%%) %8s%s\n",
			e.OpName, e.InCount, e.OutCount, pct, e.Duration.Round(time.Microsecond), cached)
	}
	return b.String()
}

// WriteJSON dumps the full lineage to path for offline inspection.
func (t *Tracer) WriteJSON(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(t.Events(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
