package baseline

import (
	"runtime"
	"sync/atomic"
	"time"
)

// MemSample reports heap usage observed while a function ran.
type MemSample struct {
	// PeakHeap is the maximum HeapAlloc observed (bytes).
	PeakHeap uint64
	// AvgHeap is the mean HeapAlloc over the samples (bytes).
	AvgHeap uint64
	// Samples is the number of observations taken.
	Samples int
}

// TrackMemory runs fn while sampling heap usage on an interval, the
// equivalent of the paper's psutil-based monitor (Appendix B.3.3). GC is
// forced before starting so the baseline heap is comparable across calls.
func TrackMemory(interval time.Duration, fn func()) MemSample {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	runtime.GC()
	var stop atomic.Bool
	done := make(chan MemSample, 1)
	go func() {
		var ms runtime.MemStats
		var peak, sum uint64
		n := 0
		for !stop.Load() {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			sum += ms.HeapAlloc
			n++
			time.Sleep(interval)
		}
		avg := uint64(0)
		if n > 0 {
			avg = sum / uint64(n)
		}
		done <- MemSample{PeakHeap: peak, AvgHeap: avg, Samples: n}
	}()
	fn()
	// One final observation so even very fast fn gets sampled.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	stop.Store(true)
	out := <-done
	if ms.HeapAlloc > out.PeakHeap {
		out.PeakHeap = ms.HeapAlloc
	}
	if out.Samples == 0 {
		out.AvgHeap = ms.HeapAlloc
		out.Samples = 1
	}
	return out
}
