package baseline

import (
	"sort"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	_ "repro/internal/ops/all"
)

func inputTexts(n int, seed int64) []string {
	d := corpus.C4(corpus.Options{Docs: n, Seed: seed})
	out := make([]string, d.Len())
	for i, s := range d.Samples {
		out[i] = s.Text
	}
	return out
}

func TestRedPajamaRunFiltersAndDedups(t *testing.T) {
	texts := inputTexts(150, 1)
	texts = append(texts, texts[0]) // guaranteed duplicate
	out, err := RedPajamaRun(texts, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) >= len(texts) {
		t.Fatalf("survivors = %d of %d", len(out), len(texts))
	}
}

func TestDolmaRunFiltersAndDedups(t *testing.T) {
	texts := inputTexts(150, 2)
	texts = append(texts, texts[1])
	out, err := DolmaRun(texts, t.TempDir(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) >= len(texts) {
		t.Fatalf("survivors = %d of %d", len(out), len(texts))
	}
}

// TestBaselinesAgreeWithEachOther checks both baselines implement the
// same logical pipeline: identical inputs produce identical survivor
// sets.
func TestBaselinesAgreeWithEachOther(t *testing.T) {
	texts := inputTexts(200, 3)
	rp, err := RedPajamaRun(texts, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dol, err := DolmaRun(texts, t.TempDir(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rp)
	sort.Strings(dol)
	if len(rp) != len(dol) {
		t.Fatalf("survivor counts differ: rp=%d dolma=%d", len(rp), len(dol))
	}
	for i := range rp {
		if rp[i] != dol[i] {
			t.Fatalf("survivor %d differs", i)
		}
	}
}

// TestBaselinesAgreeWithDataJuicer checks the comparison recipe applies
// equivalent logic: survivor counts should be close (exact text equality
// is not required because Data-Juicer's regex link cleaner is slightly
// more thorough than the baselines' token-level one).
func TestBaselinesAgreeWithDataJuicer(t *testing.T) {
	texts := inputTexts(200, 4)
	rp, err := RedPajamaRun(texts, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := config.ParseRecipe(ComparisonRecipeYAML)
	if err != nil {
		t.Fatal(err)
	}
	r.WorkDir = t.TempDir()
	exec, err := core.NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := exec.Run(dataset.FromTexts(texts))
	if err != nil {
		t.Fatal(err)
	}
	diff := len(rp) - out.Len()
	if diff < 0 {
		diff = -diff
	}
	if diff > len(texts)/10 {
		t.Fatalf("survivor counts too far apart: baseline=%d dj=%d", len(rp), out.Len())
	}
}

func TestTrackMemoryObservesAllocation(t *testing.T) {
	var hold [][]byte
	sample := TrackMemory(time.Millisecond, func() {
		for i := 0; i < 50; i++ {
			hold = append(hold, make([]byte, 1<<20))
			time.Sleep(time.Millisecond / 2)
		}
	})
	_ = hold
	if sample.PeakHeap < 20<<20 {
		t.Fatalf("peak heap = %d, expected to observe ≥ 20MB", sample.PeakHeap)
	}
	if sample.Samples == 0 || sample.AvgHeap == 0 {
		t.Fatalf("sample = %+v", sample)
	}
}

func TestDolmaShardCountEdgeCases(t *testing.T) {
	texts := inputTexts(10, 5)
	if _, err := DolmaRun(texts, t.TempDir(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DolmaRun(texts, t.TempDir(), 50, 1); err != nil {
		t.Fatal(err)
	}
}
