// Package baseline reimplements the two end-to-end comparison systems of
// Sec. 7.2.1 at the level of architecture that drives their costs:
//
//   - RedPajama-like: the whole corpus lives in memory as generic
//     map[string]any rows; every operator is an independent full pass that
//     copies rows, re-splits words, and dumps an intermediate JSON file —
//     the per-dataset script structure of the RedPajama repo.
//   - Dolma-like: a three-stage tag → filter → mix workflow over
//     pre-sharded inputs, with attribute files written to and re-read from
//     disk between stages.
//
// Both apply the same logical operators as the Data-Juicer comparison
// recipe, so Figure 8 compares equal work under different architectures.
package baseline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/text"
)

// Row is the generic "plain dict" record both baselines operate on.
type Row map[string]any

// pipelineOps is the shared logical operator list (mirroring the Fig. 8
// comparison recipe): cleaning mappers, standard filters, exact dedup.
type opFunc struct {
	name string
	// mapper transforms text (nil for filters).
	mapper func(string) string
	// filter decides survival (nil for mappers).
	filter func(string) bool
}

func sharedOps() []opFunc {
	stop := text.Stopwords("en")
	flagged := text.FlaggedWords("en")
	return []opFunc{
		{name: "clean_links", mapper: func(s string) string {
			words := strings.Fields(s)
			out := words[:0]
			for _, w := range words {
				lw := strings.ToLower(w)
				if strings.Contains(lw, "http://") || strings.Contains(lw, "https://") || strings.HasPrefix(lw, "www.") {
					continue
				}
				out = append(out, w)
			}
			return strings.Join(out, " ")
		}},
		{name: "whitespace_normalization", mapper: text.NormalizeWhitespace},
		{name: "text_length", filter: func(s string) bool {
			n := len([]rune(s))
			return n >= 50 && n <= 1_000_000
		}},
		{name: "special_characters", filter: func(s string) bool {
			return text.SpecialCharRatio(s) <= 0.25
		}},
		{name: "word_num", filter: func(s string) bool {
			return len(text.WordsLower(s)) >= 10
		}},
		{name: "stopwords", filter: func(s string) bool {
			words := text.WordsLower(s)
			if len(words) == 0 {
				return false
			}
			hits := 0
			for _, w := range words {
				if _, ok := stop[w]; ok {
					hits++
				}
			}
			return float64(hits)/float64(len(words)) >= 0.08
		}},
		{name: "flagged_words", filter: func(s string) bool {
			words := text.WordsLower(s)
			if len(words) == 0 {
				return true
			}
			hits := 0
			for _, w := range words {
				if _, ok := flagged[w]; ok {
					hits++
				}
			}
			return float64(hits)/float64(len(words)) <= 0.01
		}},
		{name: "word_repetition", filter: func(s string) bool {
			grams := text.WordNGrams(text.WordsLower(s), 5)
			return text.RepetitionRatio(grams) <= 0.4
		}},
	}
}

// parallelRows applies fn over rows with np workers.
func parallelRows(np, n int, fn func(i int)) {
	if np <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + np - 1) / np
	for w := 0; w < np; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// RedPajamaRun executes the pipeline the RedPajama-script way: all rows
// in memory at once, one independent pass per operator with full row
// copies, and an intermediate JSON dump per operator.
func RedPajamaRun(texts []string, workDir string, np int) ([]string, error) {
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}
	// Load everything upfront (the memory behaviour Fig. 8 observes).
	rows := make([]Row, len(texts))
	for i, t := range texts {
		rows[i] = Row{"text": t, "meta": map[string]any{"idx": i}}
	}
	for step, op := range sharedOps() {
		if op.mapper != nil {
			next := make([]Row, len(rows))
			parallelRows(np, len(rows), func(i int) {
				// Copy the row (script-style value semantics).
				cp := Row{}
				for k, v := range rows[i] {
					cp[k] = v
				}
				cp["text"] = op.mapper(cp["text"].(string))
				next[i] = cp
			})
			rows = next
		} else {
			verdicts := make([]bool, len(rows))
			parallelRows(np, len(rows), func(i int) {
				verdicts[i] = op.filter(rows[i]["text"].(string))
			})
			kept := make([]Row, 0, len(rows))
			for i, ok := range verdicts {
				if ok {
					kept = append(kept, rows[i])
				}
			}
			rows = kept
		}
		// Intermediate dump after each step.
		if err := dumpJSON(filepath.Join(workDir, fmt.Sprintf("step-%02d-%s.json", step, op.name)), rows); err != nil {
			return nil, err
		}
	}
	// Final exact dedup pass.
	seen := map[string]struct{}{}
	var out []string
	for _, r := range rows {
		t := r["text"].(string)
		key := strings.ToLower(t)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, t)
	}
	return out, nil
}

func dumpJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DolmaRun executes the pipeline the Dolma-toolkit way: the input must be
// sharded first; a tagging pass writes per-shard attribute files; a
// filtering pass re-reads them and drops rows; a mixing pass merges and
// deduplicates. Every stage round-trips through disk.
func DolmaRun(texts []string, workDir string, shards, np int) ([]string, error) {
	if shards <= 0 {
		shards = 1
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}
	// Stage 0: shard the input to disk (a Dolma prerequisite).
	shardSize := (len(texts) + shards - 1) / shards
	var shardFiles []string
	for s := 0; s < shards; s++ {
		lo := s * shardSize
		if lo >= len(texts) {
			break
		}
		hi := lo + shardSize
		if hi > len(texts) {
			hi = len(texts)
		}
		path := filepath.Join(workDir, fmt.Sprintf("shard-%03d.json", s))
		if err := dumpJSON(path, texts[lo:hi]); err != nil {
			return nil, err
		}
		shardFiles = append(shardFiles, path)
	}

	ops := sharedOps()
	// Stage 1: tagging — compute every attribute for every doc and write
	// attribute files (no dropping yet).
	type attrs struct {
		Text string          `json:"text"`
		Tags map[string]bool `json:"tags"`
	}
	for _, shardFile := range shardFiles {
		var docs []string
		if err := readJSON(shardFile, &docs); err != nil {
			return nil, err
		}
		tagged := make([]attrs, len(docs))
		parallelRows(np, len(docs), func(i int) {
			t := docs[i]
			// Mappers run inline during tagging (Dolma taggers may rewrite).
			for _, op := range ops {
				if op.mapper != nil {
					t = op.mapper(t)
				}
			}
			tags := map[string]bool{}
			for _, op := range ops {
				if op.filter != nil {
					tags[op.name] = op.filter(t)
				}
			}
			tagged[i] = attrs{Text: t, Tags: tags}
		})
		if err := dumpJSON(shardFile+".attrs", tagged); err != nil {
			return nil, err
		}
	}

	// Stage 2: filtering — re-read attribute files and drop rows whose
	// tags fail.
	var filteredFiles []string
	for _, shardFile := range shardFiles {
		var tagged []attrs
		if err := readJSON(shardFile+".attrs", &tagged); err != nil {
			return nil, err
		}
		var kept []string
		for _, d := range tagged {
			ok := true
			for _, v := range d.Tags {
				if !v {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, d.Text)
			}
		}
		out := shardFile + ".filtered"
		if err := dumpJSON(out, kept); err != nil {
			return nil, err
		}
		filteredFiles = append(filteredFiles, out)
	}

	// Stage 3: mixing — merge shards and deduplicate.
	seen := map[string]struct{}{}
	var out []string
	for _, f := range filteredFiles {
		var docs []string
		if err := readJSON(f, &docs); err != nil {
			return nil, err
		}
		for _, t := range docs {
			key := strings.ToLower(t)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, t)
		}
	}
	return out, nil
}

func readJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

// ComparisonRecipeYAML is the Data-Juicer recipe applying the same
// logical operators as the baselines, for the Figure 8 comparison.
const ComparisonRecipeYAML = `
project_name: fig8-comparison
use_cache: false
op_fusion: true
process:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - text_length_filter:
      min_len: 50
      max_len: 1000000
  - special_characters_filter:
      max_ratio: 0.25
  - word_num_filter:
      min_num: 10
  - stopwords_filter:
      min_ratio: 0.08
  - flagged_words_filter:
      max_ratio: 0.01
  - word_repetition_filter:
      rep_len: 5
      max_ratio: 0.4
  - document_deduplicator:
      ignore_non_character: false
`
