// Package disttest is the fault-injection harness for the multi-process
// runtime: it builds the real djworker binary once per test process and
// launches real worker subprocesses — optionally armed with an
// injectable fault (crash, hang, corrupt) via the DJ_FAULT hook — so
// conformance tests exercise the same process boundaries, wire frames
// and failure modes production runs see, not in-process stand-ins.
package disttest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/remote"
)

var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

// WorkerBin builds cmd/djworker once per test process and returns the
// binary path. Tests that only need a fleet should use remote.Pool with
// this as PoolOptions.WorkerBin; tests that need to reach into a
// worker's lifecycle (external kill) should use StartWorker.
func WorkerBin(t testing.TB) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "disttest-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "djworker")
		cmd := exec.Command("go", "build", "-o", builtBin, "./cmd/djworker")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building djworker: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("disttest: no go.mod above the test working directory")
		}
		dir = parent
	}
}

// Worker is one externally-managed djworker subprocess.
type Worker struct {
	ID   int
	Addr string
	cmd  *exec.Cmd
}

// StartWorker launches one djworker outside any pool — the hook for
// tests that SIGKILL a fleet member from the outside (a failure no
// in-process fault can model) and for dialed -worker-addrs fleets.
// fault, when non-empty, is the worker's DJ_FAULT spec; extraArgs are
// appended to the djworker command line (e.g. "-max-proto", "1" to
// emulate an old v1-only worker). The worker is torn down at test
// cleanup; Kill ends it sooner.
func StartWorker(t testing.TB, id int, fault string, extraArgs ...string) *Worker {
	t.Helper()
	bin := WorkerBin(t)
	args := []string{"-id", fmt.Sprint(id), "-listen", "127.0.0.1:0",
		"-work-dir", filepath.Join(t.TempDir(), fmt.Sprintf("w%d", id))}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	env := os.Environ()
	if fault != "" {
		env = append(env, "DJ_FAULT="+fault)
	}
	cmd.Env = env
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &Worker{ID: id, cmd: cmd}
	t.Cleanup(func() { w.Kill() })

	addrCh := make(chan string, 1)
	go func() {
		var addr string
		fmt.Fscanf(stdout, "ready %s\n", &addr)
		addrCh <- addr
		// Keep draining so the child never blocks on a full pipe.
		buf := make([]byte, 4096)
		for {
			if _, err := stdout.Read(buf); err != nil {
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		if addr == "" {
			t.Fatalf("worker %d exited before printing its ready line", id)
		}
		w.Addr = addr
	case <-time.After(15 * time.Second):
		t.Fatalf("worker %d printed no ready line within 15s", id)
	}
	return w
}

// Kill ends the worker with SIGKILL — the external analogue of the
// crash fault: no response, no cleanup, no exit hooks.
func (w *Worker) Kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Signal(syscall.SIGKILL)
		w.cmd.Wait()
	}
}

// Fleet starts n healthy workers and returns them with their addresses,
// for -worker-addrs style (dialed) coordinator tests.
func Fleet(t testing.TB, n int) ([]*Worker, []string) {
	t.Helper()
	var ws []*Worker
	var addrs []string
	for i := 1; i <= n; i++ {
		w := StartWorker(t, i, "")
		ws = append(ws, w)
		addrs = append(addrs, w.Addr)
	}
	return ws, addrs
}

// FaultEnv renders the PoolOptions.Env entry arming fault spec on
// worker id of a spawned fleet. Invalid specs panic at arm time, not
// deep inside a subprocess.
func FaultEnv(id int, spec string) string {
	if _, err := remote.ParseFault(spec); err != nil {
		panic(err)
	}
	return fmt.Sprintf("DJ_FAULT_W%d=%s", id, spec)
}
