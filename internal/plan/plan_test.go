package plan

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/sample"
)

// testRecipe builds a planner-input recipe over the given op specs with
// profiles disabled (static planning) unless a test re-enables them.
func testRecipe(specs ...config.OpSpec) *config.Recipe {
	r := config.Default()
	r.ProjectName = "plan-test"
	r.UseCache = false
	r.UseProfiles = false
	r.WorkDir = ""
	r.Process = specs
	return r
}

func op(name string) config.OpSpec { return config.OpSpec{Name: name} }

func mustPlan(t *testing.T, r *config.Recipe) *Plan {
	t.Helper()
	p, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustBuildOp(t *testing.T, name string, p ops.Params) ops.OP {
	t.Helper()
	o, err := ops.Build(name, p)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return o
}

// figure9Specs mirrors the Figure 9 experiment recipe: 5 Mappers,
// 8 Filters, 1 Deduplicator, with 5 of the filters fusible (word/line
// context users).
func figure9Specs() []config.OpSpec {
	return []config.OpSpec{
		op("fix_unicode_mapper"),
		op("clean_email_mapper"),
		op("clean_links_mapper"),
		op("remove_long_words_mapper"),
		op("whitespace_normalization_mapper"),
		op("alphanumeric_filter"),       // char, not fusible
		op("special_characters_filter"), // char, not fusible
		op("text_length_filter"),        // char, not fusible
		op("word_num_filter"),           // words ctx
		op("word_repetition_filter"),    // words ctx
		op("stopwords_filter"),          // words ctx
		op("flagged_words_filter"),      // words ctx
		op("perplexity_filter"),         // words ctx
		op("document_deduplicator"),
	}
}

func TestPlanNoFusionPreservesOrder(t *testing.T) {
	r := testRecipe(figure9Specs()...)
	r.OpFusion = false
	p := mustPlan(t, r)
	if len(p.Nodes) != len(r.Process) {
		t.Fatalf("plan size %d", len(p.Nodes))
	}
	for i, spec := range r.Process {
		if p.Nodes[i].Op.Name() != spec.Name {
			t.Fatalf("order changed at %d: %s", i, p.Nodes[i].Op.Name())
		}
	}
}

func TestPlanFusesWordFilters(t *testing.T) {
	p := mustPlan(t, testRecipe(figure9Specs()...))
	// 5 mappers + (8 filters -> 3 char filters + 1 fused of 5) + 1 dedup = 10.
	if len(p.Nodes) != 10 {
		t.Fatalf("plan size = %d\n%s", len(p.Nodes), p.Describe())
	}
	var fused *FusedFilter
	fusedIdx := -1
	for i, o := range p.Ops() {
		if f, ok := o.(*FusedFilter); ok {
			if fused != nil {
				t.Fatal("more than one fused op")
			}
			fused = f
			fusedIdx = i
		}
	}
	if fused == nil {
		t.Fatalf("no fused op in plan:\n%s", p.Describe())
	}
	if len(fused.Members()) != 5 {
		t.Fatalf("fused %d members, want 5: %s", len(fused.Members()), fused.Name())
	}
	// Reordering: the fused (expensive) op must come after the cheap char
	// filters within its group, i.e. last before the deduplicator.
	if fusedIdx != len(p.Nodes)-2 {
		t.Fatalf("fused op at %d, want %d:\n%s", fusedIdx, len(p.Nodes)-2, p.Describe())
	}
	if _, ok := p.Nodes[len(p.Nodes)-1].Op.(ops.Deduplicator); !ok {
		t.Fatal("deduplicator must stay the barrier at the end")
	}
	// The fused node carries its members' identity keys for profiling.
	if len(p.Nodes[fusedIdx].MemberKeys) != 5 {
		t.Fatalf("fused node has %d member keys", len(p.Nodes[fusedIdx].MemberKeys))
	}
}

func TestPlanMapperBarriers(t *testing.T) {
	// Filters separated by a mapper must not fuse across the barrier.
	p := mustPlan(t, testRecipe(
		op("word_num_filter"),
		op("whitespace_normalization_mapper"),
		op("stopwords_filter"),
	))
	if len(p.Nodes) != 3 {
		t.Fatalf("barrier crossed:\n%s", p.Describe())
	}
	for _, o := range p.Ops() {
		if _, ok := o.(*FusedFilter); ok {
			t.Fatal("fused across a mapper barrier")
		}
	}
}

func TestPlanSingleFusibleReordered(t *testing.T) {
	// One fusible filter in a group: not fused, but still reordered after
	// cheaper filters ("reorder the only fusible OP" branch in Fig. 6).
	p := mustPlan(t, testRecipe(
		op("word_repetition_filter"), // cost 3, fusible
		op("text_length_filter"),     // cost 1
	))
	if len(p.Nodes) != 2 {
		t.Fatalf("plan = %v", p.Describe())
	}
	if p.Nodes[0].Op.Name() != "text_length_filter" || p.Nodes[1].Op.Name() != "word_repetition_filter" {
		t.Fatalf("reorder failed:\n%s", p.Describe())
	}
	// Provenance must say the reorder pass moved them.
	found := false
	for _, note := range p.Nodes[0].Provenance {
		if strings.Contains(note, "reorder:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no reorder provenance on the moved op: %v", p.Nodes[0].Provenance)
	}
}

func TestPlanDisjointContextsFuseSeparately(t *testing.T) {
	// Word-context and line-context filters form separate fused clusters.
	p := mustPlan(t, testRecipe(
		op("word_num_filter"),
		op("average_line_length_filter"),
		op("stopwords_filter"),
		op("maximum_line_length_filter"),
	))
	if len(p.Nodes) != 2 {
		t.Fatalf("want 2 fused clusters:\n%s", p.Describe())
	}
	for _, o := range p.Ops() {
		f, ok := o.(*FusedFilter)
		if !ok {
			t.Fatalf("non-fused op %s", o.Name())
		}
		if len(f.Members()) != 2 {
			t.Fatalf("cluster size = %d", len(f.Members()))
		}
	}
}

func TestClassifyCapabilities(t *testing.T) {
	r := testRecipe(
		op("whitespace_normalization_mapper"),
		op("word_num_filter"),
		op("document_deduplicator"),
		op("document_minhash_deduplicator"),
	)
	built, err := r.BuildOps()
	if err != nil {
		t.Fatal(err)
	}
	want := []Capability{ShardLocal, ShardLocal, SharedIndex, Barrier}
	for i, o := range built {
		if got := Classify(o); got != want[i] {
			t.Errorf("%s: classified %v, want %v", o.Name(), got, want[i])
		}
	}
}

func TestPlacementPhasesAndCacheBoundary(t *testing.T) {
	r := testRecipe(
		op("whitespace_normalization_mapper"), // cacheable (phase 0 leading run)
		op("document_deduplicator"),           // shared index: ends the run
		op("text_length_filter"),              // not cacheable
		op("document_minhash_deduplicator"),   // barrier: closes phase 0
		op("word_num_filter"),                 // cacheable (phase 1 leading run)
	)
	r.OpFusion = false
	p := mustPlan(t, r)
	wantPhase := []int{0, 0, 0, 0, 1}
	wantCache := []bool{true, false, false, false, true}
	for i := range p.Nodes {
		if p.Nodes[i].Phase != wantPhase[i] {
			t.Errorf("op %d phase = %d, want %d", i, p.Nodes[i].Phase, wantPhase[i])
		}
		if p.Nodes[i].StreamCacheable != wantCache[i] {
			t.Errorf("op %d cacheable = %v, want %v", i, p.Nodes[i].StreamCacheable, wantCache[i])
		}
	}
}

func TestMeasuredCostReordersGroup(t *testing.T) {
	// Three non-fusing filters (only word_repetition declares a context):
	// static hints order them text_length(1), digit_ratio(1), rep(3);
	// the measured profiles below invert that.
	r := testRecipe(
		op("text_length_filter"),
		op("digit_ratio_filter"),
		op("word_repetition_filter"),
	)
	set := dist.NewProfileSet()
	for _, spec := range r.Process {
		switch spec.Name {
		case "word_repetition_filter":
			set.Observe(opKey(spec), spec.Name, 500, 0.1) // rank 50
		case "text_length_filter":
			set.Observe(opKey(spec), spec.Name, 4000, 1.0) // rank 4000
		case "digit_ratio_filter":
			set.Observe(opKey(spec), spec.Name, 1000, 0.8) // rank 800
		}
	}
	p, err := BuildWithProfiles(r, set)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{p.Nodes[0].Op.Name(), p.Nodes[1].Op.Name(), p.Nodes[2].Op.Name()}
	want := []string{"word_repetition_filter", "digit_ratio_filter", "text_length_filter"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("measured order = %v, want %v\n%s", got, want, p.Explain())
		}
	}
	if p.MeasuredOps != 3 {
		t.Fatalf("MeasuredOps = %d, want 3", p.MeasuredOps)
	}
	// Static order must differ (hint order: text_length=1, digit=1, rep=3).
	static, err := BuildWithProfiles(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if static.Nodes[0].Op.Name() == "word_repetition_filter" {
		t.Fatal("static plan already matches the measured order; test is vacuous")
	}
}

func TestPartialProfilesFallBackToStaticRanks(t *testing.T) {
	r := testRecipe(
		op("text_length_filter"),
		op("digit_ratio_filter"),
		op("word_repetition_filter"),
	)
	// Only one of three filters measured: the group must fall back to
	// static hints — mixing nanoseconds with hint units is meaningless.
	set := dist.NewProfileSet()
	set.Observe(opKey(r.Process[2]), "word_repetition_filter", 500, 0.1)
	p, err := BuildWithProfiles(r, set)
	if err != nil {
		t.Fatal(err)
	}
	staticOrder := []string{"text_length_filter", "digit_ratio_filter", "word_repetition_filter"}
	for i, want := range staticOrder {
		if p.Nodes[i].Op.Name() != want {
			t.Fatalf("partial profiles changed the order at %d: got %s\n%s",
				i, p.Nodes[i].Op.Name(), p.Explain())
		}
	}
}

func TestFusedMemberOrderCanonicalUnderProfiles(t *testing.T) {
	// Profiles that would reorder the members individually must not
	// change the fused op's member order (or its name/identity): member
	// order is canonical recipe order, so cache keys stay stable as
	// profiles sharpen.
	r := testRecipe(
		op("word_num_filter"),
		op("stopwords_filter"),
	)
	set := dist.NewProfileSet()
	set.Observe(opKey(r.Process[0]), "word_num_filter", 9000, 1.0)
	set.Observe(opKey(r.Process[1]), "stopwords_filter", 100, 0.2)
	p, err := BuildWithProfiles(r, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 1 {
		t.Fatalf("want one fused node:\n%s", p.Describe())
	}
	if name := p.Nodes[0].Op.Name(); name != "fused(word_num_filter,stopwords_filter)" {
		t.Fatalf("member order not canonical: %s", name)
	}
}

func TestBuildReadsSidecar(t *testing.T) {
	r := testRecipe(
		op("text_length_filter"),
		op("digit_ratio_filter"),
		op("word_repetition_filter"),
	)
	r.UseProfiles = true
	r.WorkDir = t.TempDir()

	// Cold: no sidecar, static planning.
	cold := mustPlan(t, r)
	if cold.MeasuredOps != 0 {
		t.Fatalf("cold plan measured %d ops", cold.MeasuredOps)
	}
	if cold.ProfilePath == "" {
		t.Fatal("profile-enabled recipe has no sidecar path")
	}

	// Persist measurements, rebuild: the plan must now be measured and
	// reordered.
	set := dist.NewProfileSet()
	set.Observe(opKey(r.Process[2]), "word_repetition_filter", 500, 0.1)
	set.Observe(opKey(r.Process[0]), "text_length_filter", 4000, 1.0)
	set.Observe(opKey(r.Process[1]), "digit_ratio_filter", 1000, 0.8)
	if err := dist.SaveProfiles(cold.ProfilePath, set); err != nil {
		t.Fatal(err)
	}
	warm := mustPlan(t, r)
	if warm.MeasuredOps != 3 {
		t.Fatalf("warm plan measured %d ops, want 3\n%s", warm.MeasuredOps, warm.Explain())
	}
	if warm.Nodes[0].Op.Name() != "word_repetition_filter" {
		t.Fatalf("warm plan not reordered by the sidecar:\n%s", warm.Explain())
	}

	// use_profiles off: the sidecar is ignored.
	r.UseProfiles = false
	static := mustPlan(t, r)
	if static.MeasuredOps != 0 || static.ProfilePath != "" {
		t.Fatalf("profiles disabled but plan measured %d ops (sidecar %q)",
			static.MeasuredOps, static.ProfilePath)
	}
}

func TestExplainRendersProvenance(t *testing.T) {
	p := mustPlan(t, testRecipe(figure9Specs()...))
	out := p.Explain()
	for _, want := range []string{
		"validate:", "predict:", "reorder:", "fuse:", "placement:", "cache-boundary:",
		"[shard-local]", "[shared-index]", "filters share context",
		"shard-cacheable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// --- FusedFilter semantics (moved from internal/core with the type) ---

func TestFusedFilterSemantics(t *testing.T) {
	members := []ops.Filter{
		mustBuildOp(t, "word_num_filter", ops.Params{"min_num": 3}).(ops.Filter),
		mustBuildOp(t, "stopwords_filter", ops.Params{"min_ratio": 0.2}).(ops.Filter),
	}
	fused := NewFusedFilter(members)
	if !strings.HasPrefix(fused.Name(), "fused(") {
		t.Fatalf("name = %s", fused.Name())
	}
	if got := fused.StatKeys(); len(got) != 2 {
		t.Fatalf("stat keys = %v", got)
	}
	s := sample.New("the cat and the dog sat on the mat")
	if err := fused.ComputeStats(s); err != nil {
		t.Fatal(err)
	}
	if !fused.Keep(s) {
		t.Fatal("good sample rejected")
	}
	// Only one shared context entry despite two members.
	if s.ContextLen() != 1 {
		t.Fatalf("context entries = %d", s.ContextLen())
	}
	bad := sample.New("too short")
	fused.ComputeStats(bad)
	if fused.Keep(bad) {
		t.Fatal("short sample kept (AND semantics broken)")
	}
}

func TestFusedFilterEquivalentToSequential(t *testing.T) {
	// Fusion must not change verdicts: fused(A,B).Keep == A.Keep && B.Keep.
	texts := []string{
		"the cat and the dog sat on the mat with a hat",
		"short",
		"buy widgets buy widgets buy widgets buy widgets buy widgets",
		"a reasonable sentence about the weather and the news of the day",
		"",
	}
	a := mustBuildOp(t, "word_num_filter", ops.Params{"min_num": 5}).(ops.Filter)
	b := mustBuildOp(t, "stopwords_filter", ops.Params{"min_ratio": 0.2}).(ops.Filter)
	fused := NewFusedFilter([]ops.Filter{a, b})
	for _, txt := range texts {
		s1 := sample.New(txt)
		a.ComputeStats(s1)
		b.ComputeStats(s1)
		want := a.Keep(s1) && b.Keep(s1)
		s2 := sample.New(txt)
		fused.ComputeStats(s2)
		if got := fused.Keep(s2); got != want {
			t.Fatalf("verdict mismatch on %q: fused=%v sequential=%v", txt, got, want)
		}
	}
}

func TestFusedFilterMemberAttribution(t *testing.T) {
	a := mustBuildOp(t, "word_num_filter", ops.Params{"min_num": 5}).(ops.Filter)
	b := mustBuildOp(t, "stopwords_filter", ops.Params{"min_ratio": 0.2}).(ops.Filter)
	fused := NewFusedFilter([]ops.Filter{a, b})
	texts := []string{
		"the cat and the dog sat on the mat with a hat", // passes both
		"short", // fails word_num: never reaches stopwords
		"alpha beta gamma delta epsilon zeta eta theta", // passes word_num, fails stopwords
	}
	for _, txt := range texts {
		s := sample.New(txt)
		if err := fused.ComputeStats(s); err != nil {
			t.Fatal(err)
		}
		fused.Keep(s)
	}
	stats := fused.TakeMemberStats()
	if len(stats) != 2 {
		t.Fatalf("member stats = %d entries", len(stats))
	}
	// Every sample's stats are computed by every member.
	if stats[0].Samples != 3 || stats[1].Samples != 3 {
		t.Fatalf("stat sample counts = %d/%d, want 3/3", stats[0].Samples, stats[1].Samples)
	}
	// Keep chain: word_num sees all 3, passes 2; stopwords sees 2, passes 1.
	if stats[0].In != 3 || stats[0].Out != 2 {
		t.Fatalf("word_num in/out = %d/%d, want 3/2", stats[0].In, stats[0].Out)
	}
	if stats[1].In != 2 || stats[1].Out != 1 {
		t.Fatalf("stopwords in/out = %d/%d, want 2/1", stats[1].In, stats[1].Out)
	}
	// Take drains: a second call starts from zero.
	again := fused.TakeMemberStats()
	if again[0].In != 0 || again[0].Samples != 0 {
		t.Fatalf("TakeMemberStats did not reset: %+v", again[0])
	}
}

func TestNewFusedFilterPanicsOnSingle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-member fusion must panic")
		}
	}()
	NewFusedFilter([]ops.Filter{mustBuildOp(t, "word_num_filter", nil).(ops.Filter)})
}

// TestPassSpillSplitsBudget: with a memory target set, the spill pass
// gives every spill-capable dedup node an equal slice of half the
// target; without a target (or with dedup_spill off) no node gets one.
func TestPassSpillSplitsBudget(t *testing.T) {
	specs := []config.OpSpec{
		op("whitespace_normalization_mapper"),
		op("document_deduplicator"),
		op("document_minhash_deduplicator"),
	}

	r := testRecipe(specs...)
	r.TargetMemMB = 64
	p := mustPlan(t, r)
	var budgets []int64
	for _, n := range p.Nodes {
		if _, ok := n.Op.(ops.Spiller); ok {
			budgets = append(budgets, n.SpillBudget)
		} else if n.SpillBudget != 0 {
			t.Fatalf("non-spiller %s got budget %d", n.Op.Name(), n.SpillBudget)
		}
	}
	want := (int64(64) << 20) / 2 / 2 // half the target, split across 2 dedups
	if len(budgets) != 2 || budgets[0] != want || budgets[1] != want {
		t.Fatalf("budgets = %v, want two of %d", budgets, want)
	}
	if !strings.Contains(p.Explain(), "[spill") {
		t.Fatal("Explain does not render the spill flag")
	}

	for _, off := range []func(*config.Recipe){
		func(r *config.Recipe) { r.TargetMemMB = 0 },
		func(r *config.Recipe) { r.TargetMemMB = 64; r.DedupSpill = false },
	} {
		r := testRecipe(specs...)
		off(r)
		for _, n := range mustPlan(t, r).Nodes {
			if n.SpillBudget != 0 {
				t.Fatalf("spill budget %d assigned with spilling disabled", n.SpillBudget)
			}
		}
	}
}
