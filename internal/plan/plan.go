// Package plan is the unified cost-based planner shared by the batch
// executor (internal/core) and the streaming engine (internal/stream):
// one logical→physical plan layer that owns execution order, fusion
// groups, and streaming capability placement, so neither backend
// re-derives them.
//
// A logical plan is built from a recipe's operator list, then run
// through an ordered pass pipeline:
//
//  1. validate    — structural checks, operator instantiation
//  2. predict     — attach per-op cost and selectivity, measured from
//     the persisted profile sidecar (dist.LoadProfiles) when history
//     exists, falling back to the static CostHint otherwise
//  3. reorder     — commutative filter groups are ordered cheapest
//     first by predicted cost × selectivity (Fig. 6 reordering, but
//     from live measurements instead of fixed ranks)
//  4. fuse        — context-sharing filters cluster into FusedFilter
//     ops (Fig. 6 fusion), and the group is re-ranked
//  5. placement   — each op is classified shard-local / shared-index /
//     barrier and assigned its streaming phase
//  6. cache-boundary — the leading shard-cacheable run is annotated
//
// The result is a physical plan whose nodes carry their prediction and
// per-pass provenance; djprocess -explain renders it. After a run, both
// backends fold their measured per-op costs back into the sidecar
// (core.PersistProfiles), so the next run plans from real measurements.
package plan

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/ops"
)

// PhysicalOp is one node of the physical plan: the operator to execute
// plus everything the planner decided or predicted about it.
type PhysicalOp struct {
	// Op is the executable operator (possibly a *FusedFilter).
	Op ops.OP
	// Key is the operator identity (name + params hash) that keys both
	// the op cache and the profile sidecar. Fused nodes have no single
	// key; theirs is empty and MemberKeys carries the members'.
	Key string
	// MemberKeys aligns with Op.(*FusedFilter).Members() for fused nodes.
	MemberKeys []string
	// Capability is the streaming execution class (placement pass).
	Capability Capability
	// Phase is the streaming phase index: barrier ops close their phase.
	Phase int
	// Cost is the predicted cost of one input sample: nanoseconds when
	// Measured, static hint units otherwise.
	Cost float64
	// Selectivity is the predicted survival ratio (1 when unknown).
	Selectivity float64
	// Measured reports whether the prediction came from the persisted
	// profile sidecar rather than static hints.
	Measured bool
	// Runs counts the profile runs backing a measured prediction.
	Runs int
	// StreamCacheable marks nodes in the leading shard-local run, the
	// only segment whose per-shard results are pure functions of shard
	// content and therefore shard-cacheable.
	StreamCacheable bool
	// SpillBudget is the node's slice of the run's memory target in
	// bytes (spill pass). Spill-capable ops switch to their disk-backed
	// index when the estimated in-memory footprint exceeds it; 0 keeps
	// the op fully in memory.
	SpillBudget int64
	// IndexPartitions is the configured partition count for a
	// SharedIndex node's signature index (placement pass). 0 means auto:
	// the streaming engine resolves it from its worker count at run
	// time, so a machine-dependent value never bakes into the plan.
	IndexPartitions int
	// Provenance lists what each pass did to this node, in pass order.
	Provenance []string
}

// CostString renders the predicted cost with its unit.
func (n *PhysicalOp) CostString() string {
	if n.Measured {
		return time.Duration(n.Cost).Round(10*time.Nanosecond).String() + "/sample"
	}
	return fmt.Sprintf("hint %.0f", n.Cost)
}

// PassRecord summarizes one pass of the pipeline.
type PassRecord struct {
	Name   string
	Detail string
	// Dur is the pass's wall time, journaled for plan-time attribution.
	Dur time.Duration
}

// Plan is the physical plan both backends execute.
type Plan struct {
	// Nodes is the physical operator sequence, in execution order.
	Nodes []PhysicalOp
	// Passes records the pipeline that produced the plan, in order.
	Passes []PassRecord
	// Optimized reports whether reordering/fusion ran (recipe op_fusion).
	Optimized bool
	// ProfilePath is the sidecar consulted (and to persist back to);
	// empty when profile use is disabled or the recipe has no work dir.
	ProfilePath string
	// MeasuredOps counts nodes planned from measured profiles.
	MeasuredOps int

	built []ops.OP // the unfused recipe-order operators (runner identity)
}

// Ops returns the physical operator list in execution order.
func (p *Plan) Ops() []ops.OP {
	out := make([]ops.OP, len(p.Nodes))
	for i := range p.Nodes {
		out[i] = p.Nodes[i].Op
	}
	return out
}

// Built returns the instantiated operators in original recipe order
// (before fusion/reordering) — the list the shared OpRunner derives
// per-op cache identities from.
func (p *Plan) Built() []ops.OP { return p.built }

// ProfilePath locates the recipe's profile sidecar: a JSON file under
// <work_dir>/profiles named after the project. Operator entries inside
// are keyed by name + params hash, so recipes sharing a project name
// (and work dir) share measurements for identical operators — which is
// exactly what makes them comparable. Empty when the recipe has no work
// directory to persist into.
func ProfilePath(r *config.Recipe) string {
	if r.WorkDir == "" {
		return ""
	}
	name := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			return c
		}
		return '-'
	}, r.ProjectName)
	if name == "" {
		name = "recipe"
	}
	return filepath.Join(r.WorkDir, "profiles", name+".json")
}

// Build validates the recipe, loads its profile sidecar (when the
// recipe enables profiles and has a work dir), and runs the pass
// pipeline. A missing sidecar is the normal cold start; a corrupt one
// falls back to static planning and is noted in the predict pass record
// rather than failing the run.
func Build(r *config.Recipe) (*Plan, error) {
	profiles := dist.NewProfileSet()
	path := ""
	var loadErr error
	if r.UseProfiles {
		path = ProfilePath(r)
		if path != "" {
			profiles, loadErr = dist.LoadProfiles(path)
		}
	}
	p, err := build(r, profiles, loadErr)
	if err != nil {
		return nil, err
	}
	p.ProfilePath = path
	return p, nil
}

// BuildWithProfiles plans from an explicit profile set, bypassing the
// sidecar — the hook tests and experiments use to pin planning inputs.
func BuildWithProfiles(r *config.Recipe, profiles *dist.ProfileSet) (*Plan, error) {
	if profiles == nil {
		profiles = dist.NewProfileSet()
	}
	return build(r, profiles, nil)
}

// opKey is the operator identity shared by the op cache, the profile
// sidecar, and the runner: registered name + params hash.
func opKey(spec config.OpSpec) string {
	return cache.Key("", spec.Name, spec.Params)
}

// Describe renders a one-line-per-op view of the plan, used by the CLI
// -plan flag and log output.
func (p *Plan) Describe() string {
	var b strings.Builder
	for i := range p.Nodes {
		n := &p.Nodes[i]
		fmt.Fprintf(&b, "%2d. [%-12s] %-46s cost %s, sel %.2f\n",
			i+1, n.Capability, n.Op.Name(), n.CostString(), n.Selectivity)
	}
	return b.String()
}

// Explain renders the full optimized plan: per-op prediction, capability
// class, per-pass provenance, and the pass pipeline summary — the
// djprocess -explain view.
func (p *Plan) Explain() string {
	var b strings.Builder
	mode := "static order (op_fusion=false)"
	if p.Optimized {
		mode = "optimized"
	}
	fmt.Fprintf(&b, "plan: %d ops, %s; %d planned from measured profiles", len(p.Nodes), mode, p.MeasuredOps)
	if p.ProfilePath != "" {
		fmt.Fprintf(&b, " (sidecar %s)", p.ProfilePath)
	}
	b.WriteString("\n")
	for i := range p.Nodes {
		n := &p.Nodes[i]
		flags := ""
		if n.StreamCacheable {
			flags = " [shard-cacheable]"
		}
		if n.SpillBudget > 0 {
			flags += fmt.Sprintf(" [spill %.1fMiB]", float64(n.SpillBudget)/(1<<20))
		}
		if n.Capability == SharedIndex {
			if n.IndexPartitions > 0 {
				flags += fmt.Sprintf(" [partitions %d]", n.IndexPartitions)
			} else {
				flags += " [partitions auto]"
			}
		}
		fmt.Fprintf(&b, "%2d. %-46s %-13s phase %d  cost %s  sel %.2f%s\n",
			i+1, n.Op.Name(), "["+n.Capability.String()+"]", n.Phase, n.CostString(), n.Selectivity, flags)
		for _, note := range n.Provenance {
			fmt.Fprintf(&b, "      - %s\n", note)
		}
	}
	b.WriteString("passes:\n")
	for _, pr := range p.Passes {
		fmt.Fprintf(&b, "  %-14s %s\n", pr.Name+":", pr.Detail)
	}
	return b.String()
}
