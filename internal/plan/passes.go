package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/ops"
)

// node is the mutable planning state of one physical op.
type node struct {
	op         ops.OP
	key        string
	memberKeys []string
	hint       float64 // static CostHint (fallback ranking)
	cost       float64 // predicted cost: ns/sample when measured, hint units otherwise
	sel        float64
	measured   bool
	runs       int
	cap        Capability
	phase      int
	cacheable  bool
	spill      int64 // spill budget bytes (0 = op stays fully in memory)
	partitions int   // SharedIndex: configured index partitions (0 = auto)
	orig       int   // original recipe index (min member index once fused)
	notes      []string
}

// builder threads the recipe and profile state through the passes.
type builder struct {
	r          *config.Recipe
	profiles   *dist.ProfileSet
	profileErr error
	built      []ops.OP
	nodes      []*node
	records    []PassRecord
}

func (b *builder) record(name, detail string) {
	b.records = append(b.records, PassRecord{Name: name, Detail: detail})
}

// timed stamps the records a pass appended with the pass's wall time.
func (b *builder) timed(pass func()) {
	t0 := time.Now()
	n0 := len(b.records)
	pass()
	d := time.Since(t0)
	for i := n0; i < len(b.records); i++ {
		b.records[i].Dur = d
	}
}

// build runs the full pass pipeline and assembles the physical plan.
func build(r *config.Recipe, profiles *dist.ProfileSet, profileErr error) (*Plan, error) {
	b := &builder{r: r, profiles: profiles, profileErr: profileErr}
	t0 := time.Now()
	if err := b.passValidate(); err != nil {
		return nil, err
	}
	for i := range b.records {
		b.records[i].Dur = time.Since(t0)
	}
	b.timed(b.passPredict)
	b.timed(b.passReorder)
	b.timed(b.passFuse)
	b.timed(b.passPlacement)
	b.timed(b.passCacheBoundary)
	b.timed(b.passSpill)

	p := &Plan{
		Passes:    b.records,
		Optimized: r.OpFusion,
		built:     b.built,
	}
	for _, n := range b.nodes {
		if n.measured {
			p.MeasuredOps++
		}
		p.Nodes = append(p.Nodes, PhysicalOp{
			Op: n.op, Key: n.key, MemberKeys: n.memberKeys,
			Capability: n.cap, Phase: n.phase,
			Cost: n.cost, Selectivity: n.sel, Measured: n.measured, Runs: n.runs,
			StreamCacheable: n.cacheable, SpillBudget: n.spill,
			IndexPartitions: n.partitions, Provenance: n.notes,
		})
	}
	return p, nil
}

// passValidate checks the recipe and instantiates its operators: the
// logical plan the later passes transform.
func (b *builder) passValidate() error {
	if err := b.r.Validate(); err != nil {
		return err
	}
	built, err := b.r.BuildOps()
	if err != nil {
		return err
	}
	b.built = built
	for i, op := range built {
		b.nodes = append(b.nodes, &node{
			op:   op,
			key:  opKey(b.r.Process[i]),
			hint: ops.CostOf(op),
			orig: i,
		})
	}
	b.record("validate", fmt.Sprintf("%d ops instantiated", len(b.nodes)))
	return nil
}

// passPredict attaches cost and selectivity to every node: measured from
// the profile sidecar when history exists, static hints otherwise.
func (b *builder) passPredict() {
	measured := 0
	for _, n := range b.nodes {
		if p, ok := b.profiles.Lookup(n.key); ok && p.Runs > 0 && p.CostNSPerSample > 0 {
			n.cost, n.sel, n.measured, n.runs = p.CostNSPerSample, p.Selectivity, true, p.Runs
			measured++
			n.notes = append(n.notes, fmt.Sprintf("predict: measured %s/sample, sel %.2f (%d runs)",
				time.Duration(p.CostNSPerSample).Round(10*time.Nanosecond), p.Selectivity, p.Runs))
			continue
		}
		n.cost, n.sel = n.hint, 1
		n.notes = append(n.notes, fmt.Sprintf("predict: static hint %.0f (no profile)", n.hint))
	}
	detail := fmt.Sprintf("%d of %d ops have measured profiles", measured, len(b.nodes))
	if b.profileErr != nil {
		detail += fmt.Sprintf("; sidecar unreadable (%v), planning statically", b.profileErr)
	}
	b.record("predict", detail)
}

// rank is the greedy ordering key of one entry in a commutative group:
// measured cost × selectivity when the whole group is measured (cheap,
// highly-dropping filters shrink the dataset before expensive work),
// the static hint otherwise — mixing nanoseconds with hint units would
// make the comparison meaningless.
func rank(n *node, groupMeasured bool) float64 {
	if groupMeasured {
		return n.cost * n.sel
	}
	return n.hint
}

// rankBucket quantizes a measured rank onto a coarse log scale (~30%
// per bucket): hysteresis for the reorder pass. EWMA noise between
// near-equal filters must not flip their order run-to-run — the op
// order keys the chain and shard caches, so every flip would discard
// them for no real gain. Ranks landing in one bucket fall back to the
// recipe-order tiebreak, which is identical on every run. Quantization
// (rather than an epsilon comparator) keeps the sort's less-than
// relation transitive.
func rankBucket(r float64) int {
	if r <= 0 {
		return math.MinInt32
	}
	return int(math.Round(math.Log(r) / math.Log(1.3)))
}

func allMeasured(seg []*node) bool {
	for _, n := range seg {
		if !n.measured {
			return false
		}
	}
	return true
}

// sortGroup orders one commutative group by rank — quantized to coarse
// buckets for measured groups so profile noise cannot churn the order —
// with the original position breaking ties, keeping the sort
// deterministic and stable across runs. Returns whether anything moved.
func sortGroup(seg []*node, groupMeasured bool) bool {
	moved := false
	sort.SliceStable(seg, func(a, c int) bool {
		ra, rc := rank(seg[a], groupMeasured), rank(seg[c], groupMeasured)
		if groupMeasured {
			ba, bc := rankBucket(ra), rankBucket(rc)
			if ba != bc {
				return ba < bc
			}
			return seg[a].orig < seg[c].orig
		}
		if ra != rc {
			return ra < rc
		}
		return seg[a].orig < seg[c].orig
	})
	for i := 1; i < len(seg); i++ {
		if seg[i].orig < seg[i-1].orig {
			moved = true
		}
	}
	return moved
}

// eachFilterGroup applies transform to every maximal run of consecutive
// Filter nodes (the commutative groups: Mappers and Deduplicators are
// barriers) and rebuilds the node list from the results.
func (b *builder) eachFilterGroup(transform func(seg []*node) []*node) {
	var out []*node
	i := 0
	for i < len(b.nodes) {
		if _, ok := b.nodes[i].op.(ops.Filter); !ok {
			out = append(out, b.nodes[i])
			i++
			continue
		}
		j := i
		for j < len(b.nodes) {
			if _, ok := b.nodes[j].op.(ops.Filter); !ok {
				break
			}
			j++
		}
		out = append(out, transform(b.nodes[i:j])...)
		i = j
	}
	b.nodes = out
}

// passReorder orders each commutative filter group cheapest-first.
func (b *builder) passReorder() {
	if !b.r.OpFusion {
		b.record("reorder", "skipped (op_fusion=false)")
		return
	}
	groups, reorderedGroups, measuredGroups := 0, 0, 0
	b.eachFilterGroup(func(seg []*node) []*node {
		if len(seg) < 2 {
			return seg
		}
		groups++
		gm := allMeasured(seg)
		basis := "static cost hints"
		if gm {
			basis = "measured cost×selectivity"
			measuredGroups++
		}
		pre := append([]*node(nil), seg...)
		if sortGroup(seg, gm) {
			reorderedGroups++
			for newPos, n := range seg {
				oldPos := -1
				for k, m := range pre {
					if m == n {
						oldPos = k
						break
					}
				}
				if oldPos != newPos {
					n.notes = append(n.notes, fmt.Sprintf("reorder: group position %d → %d (%s)",
						oldPos+1, newPos+1, basis))
				}
			}
		}
		return seg
	})
	b.record("reorder", fmt.Sprintf("%d filter groups, %d reordered (%d ranked by measured profiles)",
		groups, reorderedGroups, measuredGroups))
}

// passFuse clusters context-sharing filters of each commutative group
// into FusedFilter ops (union-find over overlapping context keys) and
// re-ranks the group: the fused op carries the sum of member costs and
// the product of member selectivities.
func (b *builder) passFuse() {
	if !b.r.OpFusion {
		b.record("fuse", "skipped (op_fusion=false)")
		return
	}
	fusedOps, fusedMembers := 0, 0
	b.eachFilterGroup(func(seg []*node) []*node {
		clusters := clusterByContext(seg)
		if clusters == nil {
			return seg
		}
		var out []*node
		for _, cl := range clusters {
			if len(cl) == 1 {
				out = append(out, cl[0])
				continue
			}
			// Canonical member order: original recipe position, whatever
			// the reorder pass did — so the fused identity (and with it
			// cache keys) is stable across runs as profiles sharpen.
			sort.Slice(cl, func(a, c int) bool { return cl[a].orig < cl[c].orig })
			members := make([]ops.Filter, len(cl))
			keys := make([]string, len(cl))
			names := make([]string, len(cl))
			fn := &node{orig: cl[0].orig, measured: allMeasured(cl), sel: 1}
			for k, m := range cl {
				members[k] = m.op.(ops.Filter)
				keys[k] = m.key
				names[k] = m.op.Name()
				fn.hint += m.hint
				if fn.measured {
					fn.cost += m.cost
					fn.sel *= m.sel
					if fn.runs == 0 || m.runs < fn.runs {
						fn.runs = m.runs
					}
				}
			}
			if !fn.measured {
				fn.cost, fn.sel = fn.hint, 1
			}
			fn.op = NewFusedFilter(members)
			fn.memberKeys = keys
			fn.notes = append(fn.notes, fmt.Sprintf("fuse: %d filters share context (%s)",
				len(cl), strings.Join(ops.ContextKeysOf(fn.op.(*FusedFilter)), ",")))
			if fn.measured {
				fn.notes = append(fn.notes, fmt.Sprintf("predict: members measured — Σcost %s/sample, sel %.2f",
					time.Duration(fn.cost).Round(10*time.Nanosecond), fn.sel))
			} else {
				fn.notes = append(fn.notes, fmt.Sprintf("predict: static member hints, Σ%.0f", fn.hint))
			}
			fusedOps++
			fusedMembers += len(cl)
			out = append(out, fn)
		}
		if len(out) > 1 {
			pre := append([]*node(nil), out...)
			if sortGroup(out, allMeasured(out)) {
				for newPos, n := range out {
					for oldPos, m := range pre {
						if m == n && oldPos != newPos {
							n.notes = append(n.notes, fmt.Sprintf("fuse: re-ranked to group position %d", newPos+1))
						}
					}
				}
			}
		}
		return out
	})
	if fusedOps == 0 {
		b.record("fuse", "no fusible context overlap")
		return
	}
	b.record("fuse", fmt.Sprintf("%d filters fused into %d ops", fusedMembers, fusedOps))
}

// clusterByContext groups a commutative segment's nodes into clusters of
// overlapping context keys. Nodes without context keys form singleton
// clusters. Returns nil when no cluster has two or more members (nothing
// to fuse). Cluster order follows the segment: each cluster appears at
// its first member's position.
func clusterByContext(seg []*node) [][]*node {
	keyOwner := map[string]int{} // context key -> cluster id
	cluster := make([]int, len(seg))
	for i := range cluster {
		cluster[i] = -1
	}
	next := 0
	memberIdx := map[int][]int{}
	for i, n := range seg {
		keys := ops.ContextKeysOf(n.op)
		if len(keys) == 0 {
			continue
		}
		id := -1
		for _, k := range keys {
			if owner, ok := keyOwner[k]; ok {
				id = owner
				break
			}
		}
		if id == -1 {
			id = next
			next++
		}
		for _, k := range keys {
			if prev, ok := keyOwner[k]; ok && prev != id {
				for _, m := range memberIdx[prev] {
					cluster[m] = id
				}
				memberIdx[id] = append(memberIdx[id], memberIdx[prev]...)
				delete(memberIdx, prev)
				for kk, own := range keyOwner {
					if own == prev {
						keyOwner[kk] = id
					}
				}
			}
			keyOwner[k] = id
		}
		cluster[i] = id
		memberIdx[id] = append(memberIdx[id], i)
	}
	fusible := false
	for _, members := range memberIdx {
		if len(members) >= 2 {
			fusible = true
		}
	}
	if !fusible {
		return nil
	}
	var out [][]*node
	emitted := map[int]bool{}
	for i, n := range seg {
		id := cluster[i]
		if id == -1 {
			out = append(out, []*node{n})
			continue
		}
		if emitted[id] {
			continue
		}
		emitted[id] = true
		var cl []*node
		for _, m := range memberIdx[id] {
			cl = append(cl, seg[m])
		}
		out = append(out, cl)
	}
	return out
}

// passPlacement classifies every node's streaming capability and assigns
// phase indexes: a barrier op closes its phase.
func (b *builder) passPlacement() {
	phase := 0
	var local, index, barrier int
	for _, n := range b.nodes {
		n.cap = Classify(n.op)
		n.phase = phase
		switch n.cap {
		case ShardLocal:
			local++
			n.notes = append(n.notes, "placement: shard-local (shards flow concurrently)")
		case SharedIndex:
			index++
			n.partitions = b.r.IndexPartitions
			how := "auto partitions (worker count at run time)"
			if n.partitions > 0 {
				how = fmt.Sprintf("%d partitions (index_partitions=%d)", n.partitions, n.partitions)
			}
			n.notes = append(n.notes, fmt.Sprintf(
				"placement: hash-partitioned shared signature index, %s; "+
					"per-partition batches apply in stream order", how))
		case Barrier:
			barrier++
			n.notes = append(n.notes, fmt.Sprintf("placement: barrier closing phase %d (drain, merge, re-shard)", phase))
			phase++
		}
	}
	b.record("placement", fmt.Sprintf("%d phases: %d shard-local, %d shared-index, %d barrier",
		phase+1, local, index, barrier))
}

// passCacheBoundary annotates each phase's leading run of shard-local
// ops: the segments whose per-shard results are pure functions of the
// shard's content and therefore shard-cacheable under the streaming
// engine. A shared-index stage ends the cacheable run (later ops see
// data thinned by other shards' signatures); a barrier starts a new
// phase and a new cacheable run.
func (b *builder) passCacheBoundary() {
	n := 0
	leading := true
	for _, nd := range b.nodes {
		switch nd.cap {
		case ShardLocal:
			if leading {
				nd.cacheable = true
				nd.notes = append(nd.notes, "cache: inside its phase's shard-cacheable leading run")
				n++
			}
		case SharedIndex:
			leading = false
		case Barrier:
			leading = true
		}
	}
	switch {
	case n == 0:
		b.record("cache-boundary", "no shard-cacheable runs")
	case n == len(b.nodes):
		b.record("cache-boundary", "entire plan is shard-cacheable")
	default:
		b.record("cache-boundary", fmt.Sprintf("%d of %d ops shard-cacheable (leading runs of their phases)",
			n, len(b.nodes)))
	}
}

// passSpill slices the run's memory target across the spill-capable
// deduplicators: each gets an equal share of half the target (the other
// half stays with sample buffers and shard flow), and switches to its
// disk-backed index when its estimated footprint exceeds the share.
// Budgets are annotations only — no directory is created at plan time,
// so -explain stays side-effect free; executors install the spill
// directory just before running.
func (b *builder) passSpill() {
	if b.r.TargetMemMB <= 0 {
		b.record("spill", "no memory target; dedup indexes stay fully in memory")
		return
	}
	if !b.r.DedupSpill {
		b.record("spill", "dedup_spill=false; dedup indexes stay fully in memory")
		return
	}
	var dd []*node
	for _, n := range b.nodes {
		if _, ok := n.op.(ops.Spiller); ok {
			dd = append(dd, n)
		}
	}
	if len(dd) == 0 {
		b.record("spill", "no spill-capable ops")
		return
	}
	share := (int64(b.r.TargetMemMB) << 20) / 2 / int64(len(dd))
	for _, n := range dd {
		n.spill = share
		note := fmt.Sprintf(
			"spill: disk-backed index over %.1f MiB (share of target_mem_mb=%d)",
			float64(share)/(1<<20), b.r.TargetMemMB)
		if n.cap == SharedIndex {
			note += "; split equally across index partitions"
		}
		n.notes = append(n.notes, note)
	}
	b.record("spill", fmt.Sprintf("%d dedup op(s) budgeted %.1f MiB each (half of %d MiB target)",
		len(dd), float64(share)/(1<<20), b.r.TargetMemMB))
}
