package plan

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ops"
	"repro/internal/sample"
)

// FusedFilter executes several context-sharing filters as one operator:
// the shared intermediates (segmented words, split lines) are computed
// once per sample and reused by every member, then the context is
// cleared. It also keeps per-member counters so reports and profiles can
// attribute work inside the fused op instead of collapsing it into one
// opaque entry.
type FusedFilter struct {
	members   []ops.Filter
	counters  []memberCounters
	passedAll atomic.Int64 // samples every member kept
}

// memberCounters accumulates one member's share of the fused work.
// All fields are touched concurrently by stat/filter workers. Keep-chain
// outputs are not stored per member: a sample leaving member i is
// exactly a sample entering member i+1, so out_i derives from keepIn of
// the next member (and from the fused op's passedAll for the last one) —
// one atomic add per member per Keep instead of two. The struct is
// padded to a cache line so adjacent members' counters do not false-
// share under many workers; the remaining cost (two clock reads and two
// atomic adds per member per ComputeStats) is the price of reports and
// profiles that attribute fused work truthfully, and stays small
// against the members' own per-sample work.
type memberCounters struct {
	statN  atomic.Int64 // samples the member computed stats for
	statNS atomic.Int64 // wall time of those stat computations
	keepIn atomic.Int64 // samples reaching the member in the Keep chain
	_      [5]int64     // pad to 64 bytes
}

// MemberStat is one member's attributed share of a fused execution:
// In/Out count the Keep-phase chain (a sample rejected by an earlier
// member never reaches the later ones), Samples counts stat
// computations (every member computes stats for every input sample),
// and Duration is the member's stat-computation wall time.
type MemberStat struct {
	Name     string
	In, Out  int
	Samples  int
	Duration time.Duration
}

// NewFusedFilter fuses the given filters. It panics on fewer than two
// members: fusing one filter is meaningless and indicates a planner bug.
func NewFusedFilter(members []ops.Filter) *FusedFilter {
	if len(members) < 2 {
		panic("plan: fused filter needs at least two members")
	}
	return &FusedFilter{members: members, counters: make([]memberCounters, len(members))}
}

// Name lists the fused member names.
func (f *FusedFilter) Name() string {
	names := make([]string, len(f.members))
	for i, m := range f.members {
		names[i] = m.Name()
	}
	return "fused(" + strings.Join(names, ",") + ")"
}

// Members returns the fused filters in execution order.
func (f *FusedFilter) Members() []ops.Filter { return f.members }

// StatKeys is the union of member stat keys.
func (f *FusedFilter) StatKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, m := range f.members {
		for _, k := range m.StatKeys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// ContextKeys is the union of member context keys.
func (f *FusedFilter) ContextKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, m := range f.members {
		for _, k := range ops.ContextKeysOf(m) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// CostHint is the sum of member hints: a fused OP is scheduled late
// within its commutative group when no measured profile exists.
func (f *FusedFilter) CostHint() float64 {
	var c float64
	for _, m := range f.members {
		c += ops.CostOf(m)
	}
	return c
}

// ComputeStats runs every member's stat computation over the shared
// context, attributing each member's wall time.
func (f *FusedFilter) ComputeStats(s *sample.Sample) error {
	prev := time.Now()
	for i, m := range f.members {
		if err := m.ComputeStats(s); err != nil {
			return err
		}
		now := time.Now()
		f.counters[i].statN.Add(1)
		f.counters[i].statNS.Add(now.Sub(prev).Nanoseconds())
		prev = now
	}
	return nil
}

// ComputeStatsBatch implements ops.StatsBatcher: one batch of samples
// per call, sample-major so each member reads the sample's shared
// context while it is hot and the per-worker scratch buffers are reused
// sample after sample. Member attribution accumulates in batch-local
// counters and flushes to the shared atomics once per batch instead of
// once per member per sample.
func (f *FusedFilter) ComputeStatsBatch(batch []*sample.Sample) error {
	counts := make([]int64, len(f.members))
	nanos := make([]int64, len(f.members))
	sc := sample.GetScratch()
	var firstErr error
	for _, s := range batch {
		s.AttachScratch(sc)
		prev := time.Now()
		for i, m := range f.members {
			if err := m.ComputeStats(s); err != nil {
				firstErr = err
				break
			}
			now := time.Now()
			counts[i]++
			nanos[i] += now.Sub(prev).Nanoseconds()
			prev = now
		}
		s.ClearContext()
		if firstErr != nil {
			break
		}
	}
	sample.PutScratch(sc)
	for i := range f.members {
		if counts[i] > 0 {
			f.counters[i].statN.Add(counts[i])
			f.counters[i].statNS.Add(nanos[i])
		}
	}
	return firstErr
}

// Keep is the conjunction of member verdicts, short-circuiting on the
// first rejection and counting each member's in-flow.
func (f *FusedFilter) Keep(s *sample.Sample) bool {
	for i, m := range f.members {
		f.counters[i].keepIn.Add(1)
		if !m.Keep(s) {
			return false
		}
	}
	f.passedAll.Add(1)
	return true
}

// KeepBatch implements ops.KeepBatcher: member in-flow counters
// accumulate batch-locally and flush once per batch.
func (f *FusedFilter) KeepBatch(batch []*sample.Sample, verdict []bool) {
	in := make([]int64, len(f.members))
	var passed int64
	for bi, s := range batch {
		keep := true
		for i, m := range f.members {
			in[i]++
			if !m.Keep(s) {
				keep = false
				break
			}
		}
		if keep {
			passed++
		}
		verdict[bi] = keep
	}
	for i := range f.members {
		if in[i] > 0 {
			f.counters[i].keepIn.Add(in[i])
		}
	}
	if passed > 0 {
		f.passedAll.Add(passed)
	}
}

// TakeMemberStats returns the per-member attribution accumulated since
// the last call and resets the counters, so successive executions of the
// same fused op report disjoint work. Safe to call between runs, not
// concurrently with one: the chain invariant out_i = in_{i+1} only
// holds with no Keep in flight.
func (f *FusedFilter) TakeMemberStats() []MemberStat {
	out := make([]MemberStat, len(f.members))
	for i, m := range f.members {
		c := &f.counters[i]
		out[i] = MemberStat{
			Name:     m.Name(),
			In:       int(c.keepIn.Swap(0)),
			Samples:  int(c.statN.Swap(0)),
			Duration: time.Duration(c.statNS.Swap(0)),
		}
		if i > 0 {
			out[i-1].Out = out[i].In
		}
	}
	out[len(out)-1].Out = int(f.passedAll.Swap(0))
	return out
}

var _ ops.Filter = (*FusedFilter)(nil)
var _ ops.Coster = (*FusedFilter)(nil)
var _ ops.ContextUser = (*FusedFilter)(nil)
var _ ops.StatsBatcher = (*FusedFilter)(nil)
var _ ops.KeepBatcher = (*FusedFilter)(nil)
