package plan

import "repro/internal/ops"

// Capability classifies how an operator may execute under the streaming
// engine. It used to live in internal/stream; the planner owns it now so
// both backends read execution order, fusion groups, and capability
// placement from one layer.
type Capability int

const (
	// ShardLocal ops (mappers, filters) depend only on the samples of one
	// shard, so shards flow through them independently and concurrently.
	ShardLocal Capability = iota
	// SharedIndex ops are deduplicators whose verdict is a pure per-sample
	// signature (ops.StreamDeduper). They run against a shared signature
	// index consulted in shard order: no barrier, and first-occurrence
	// semantics identical to the batch executor.
	SharedIndex
	// Barrier ops need the whole dataset at once (similarity-based
	// deduplicators). The engine drains every in-flight shard, merges
	// them in order, applies the op, and re-shards the result.
	Barrier
)

// String names the capability for plan rendering.
func (c Capability) String() string {
	switch c {
	case ShardLocal:
		return "shard-local"
	case SharedIndex:
		return "shared-index"
	case Barrier:
		return "barrier"
	}
	return "unknown"
}

// Classify reports how op executes under the streaming engine. Unknown
// operator types classify as Barrier, the conservative default (the
// barrier path surfaces an unsupported-type error from the shared
// runner instead of silently misprocessing).
func Classify(op ops.OP) Capability {
	switch op.(type) {
	case ops.StreamDeduper:
		return SharedIndex
	case ops.Mapper, ops.Filter:
		return ShardLocal
	default:
		return Barrier
	}
}
