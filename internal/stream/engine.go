// Package stream is the shard-pipelined streaming execution backend: the
// second engine next to the batch executor of internal/core. It
// partitions the input into fixed-size shards and pushes every shard
// through the full operator chain inside a worker pool, so shard K can
// be in op 3 while shard K+1 is still in op 1 and peak memory stays
// O(shards in flight) instead of O(corpus).
//
// The engine executes the physical plan built by the unified planner
// (internal/plan): execution order, fusion groups, and capability
// placement all come from that one layer, shared with the batch
// executor. Operators execute through the same core.OpRunner, so both
// backends apply ops identically. The planned capability decides the
// flow: mappers and filters are shard-local; signature deduplicators
// (ops.StreamDeduper) run against a shared signature index that is
// hash-partitioned so shards probe concurrently — per-partition batches
// still apply in stream order, preserving the batch engine's
// first-occurrence semantics without a barrier (see sigpart.go);
// similarity deduplicators are declared barriers —
// the engine drains the stream, merges the shards in order, applies the
// op, and re-shards.
//
// With the recipe's cache enabled, every shard's leading run of
// shard-local ops is cached per (shard content, op chain) key via
// internal/cache, so an interrupted run resumes at shard granularity.
//
// In adaptive mode (Options.Adaptive) a runtime controller closes the
// loop between execution and the internal/dist cost model: per-op wall
// time, selectivity and bytes are observed online, and between shard
// generations the engine re-plans — resizing the worker pool, re-slicing
// the source's shard size, and moving the in-flight backpressure gate so
// a memory target holds. See controller.go and stream.Metrics.
package stream

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultShardSize is the shard size used when Options leaves it zero.
const DefaultShardSize = 512

// Options tunes the engine.
type Options struct {
	// ShardSize is the number of samples per shard (DefaultShardSize
	// when zero). In adaptive mode this is only the starting point.
	ShardSize int
	// MaxInFlight bounds the shards resident in memory at once —
	// processing, queued, or waiting for ordered emission. Zero means
	// twice the worker count. In adaptive mode this is only the starting
	// point.
	MaxInFlight int
	// Adaptive enables the runtime controller: per-op wall time,
	// selectivity and bytes are measured online, fed into the
	// internal/dist cost model, and the engine re-plans shard size,
	// worker count and the in-flight bound every few shards.
	Adaptive bool
	// MaxWorkers caps the adaptive worker pool (default: the larger of
	// the recipe's worker count and GOMAXPROCS). Ignored unless Adaptive.
	MaxWorkers int
	// TargetMemBytes bounds the text bytes resident across in-flight
	// shards in adaptive mode (0 = unbounded). Ignored unless Adaptive.
	TargetMemBytes int64
	// Generation is the number of emitted shards between controller
	// re-plans (DefaultGeneration when zero). Ignored unless Adaptive.
	Generation int
	// Telemetry, when non-nil, connects the engine to a telemetry run:
	// per-op metrics, journal events (phases, shard spans, op
	// completions, cache hits, controller replans), and tracer lineage.
	Telemetry *telemetry.Run
	// Dispatch, when non-nil, routes shard-local stages to remote
	// workers (the multi-process coordinator mode). Shared-index and
	// barrier stages always run in-process; a dispatcher that reports
	// dist.ErrNoWorkers degrades the stage to in-process execution.
	// See dispatch.go.
	Dispatch StageDispatcher
	// ShardDelay, when non-nil, sleeps the returned duration before a
	// shard enters the phase's stage chain. It exists for conformance
	// testing: randomized (seeded) per-shard delays force shards to reach
	// the partitioned signature index out of order, proving out-of-order
	// claiming keeps exports byte-identical.
	ShardDelay func(phase, shard int) time.Duration
}

// Engine is the streaming execution backend for one recipe.
type Engine struct {
	recipe      *config.Recipe
	plan        *plan.Plan
	phases      []phase
	runner      *core.OpRunner
	store       *cache.Store
	shardSize   int
	maxInFlight int
	np          int
	ctrl        *Controller
	tuning      dist.Tuning
	tele        *telemetry.Run
	dispatch    StageDispatcher
	shardDelay  func(phase, shard int) time.Duration
}

// stage kinds inside one phase.
type stageKind int

const (
	stageLocal stageKind = iota // a run of consecutive shard-local ops
	stageIndex                  // one StreamDeduper behind a shared signature index
)

type stage struct {
	kind        stageKind
	ops         []ops.OP          // stageLocal: the run, in plan order
	planIdx     []int             // plan indexes aligned with ops (or the one dedup)
	dedup       ops.StreamDeduper // stageIndex only
	cacheable   bool              // stageLocal: planner-annotated shard-cacheable run
	spillBudget int64             // stageIndex: planner's spill budget (0 = in-memory)
	partitions  int               // stageIndex: configured index partitions (0 = auto)
}

// phase is a maximal barrier-free segment of the plan. The engine
// pipelines shards through a phase's stages, then (unless it is the
// final phase) merges everything and applies the barrier op.
type phase struct {
	stages     []stage
	barrier    ops.OP // nil for the final phase
	barrierIdx int
}

// splitPhases segments the physical plan at its Barrier ops and groups
// the shard-local runs and shared-index stages in between, reading each
// op's capability and cache annotation straight off the planner's nodes.
func splitPhases(p *plan.Plan) []phase {
	var phases []phase
	var stages []stage
	var run []ops.OP
	var runIdx []int
	runCacheable := false
	flush := func() {
		if len(run) > 0 {
			stages = append(stages, stage{kind: stageLocal, ops: run, planIdx: runIdx, cacheable: runCacheable})
			run, runIdx = nil, nil
		}
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		switch n.Capability {
		case plan.ShardLocal:
			if len(run) == 0 {
				runCacheable = n.StreamCacheable
			}
			run = append(run, n.Op)
			runIdx = append(runIdx, i)
		case plan.SharedIndex:
			flush()
			stages = append(stages, stage{
				kind: stageIndex, dedup: n.Op.(ops.StreamDeduper), planIdx: []int{i},
				spillBudget: n.SpillBudget, partitions: n.IndexPartitions,
			})
		case plan.Barrier:
			flush()
			phases = append(phases, phase{stages: stages, barrier: n.Op, barrierIdx: i})
			stages = nil
		}
	}
	flush()
	phases = append(phases, phase{stages: stages})
	return phases
}

// New validates the recipe and builds a streaming engine over the same
// physical plan the batch executor would run, produced by the unified
// planner (internal/plan).
func New(r *config.Recipe, opts Options) (*Engine, error) {
	p, err := plan.Build(r)
	if err != nil {
		return nil, err
	}
	var tracer *trace.Tracer
	if r.EnableTrace {
		tracer = trace.New(0)
	}
	e := &Engine{
		recipe:      r,
		plan:        p,
		phases:      splitPhases(p),
		runner:      core.NewOpRunner(p.Built(), r.Process, tracer),
		shardSize:   opts.ShardSize,
		maxInFlight: opts.MaxInFlight,
		np:          dataset.Workers(r.NP),
		dispatch:    opts.Dispatch,
		shardDelay:  opts.ShardDelay,
	}
	if e.shardSize <= 0 {
		e.shardSize = DefaultShardSize
	}
	if e.maxInFlight <= 0 {
		e.maxInFlight = 2 * e.np
	}
	if e.maxInFlight < e.np {
		e.maxInFlight = e.np
	}
	if opts.Adaptive {
		maxWorkers := opts.MaxWorkers
		if maxWorkers <= 0 {
			maxWorkers = dataset.Workers(0) // GOMAXPROCS
			if e.np > maxWorkers {
				maxWorkers = e.np
			}
		}
		e.tuning = dist.Tuning{
			MaxWorkers:        maxWorkers,
			TargetMemBytes:    opts.TargetMemBytes,
			InFlightPerWorker: 2,
		}
		// The caps hold from the first shard, not the first re-plan: an
		// input too short to reach a generation boundary must still honor
		// -max-workers.
		initial := dist.Decision{
			Workers:     e.np,
			ShardSize:   e.shardSize,
			MaxInFlight: e.maxInFlight,
		}
		if initial.Workers > maxWorkers {
			initial.Workers = maxWorkers
		}
		if limit := maxWorkers * e.tuning.InFlightPerWorker; initial.MaxInFlight > limit {
			initial.MaxInFlight = limit
		}
		if initial.MaxInFlight < initial.Workers {
			initial.MaxInFlight = initial.Workers
		}
		e.ctrl = newController(p, initial, e.tuning, opts.Generation)
	}
	var obs core.OpObserver
	if e.ctrl != nil {
		obs = e.ctrl
	}
	if opts.Telemetry != nil {
		e.tele = opts.Telemetry
		obs = core.CombineObservers(obs, core.AttachTelemetry(e.tele, p))
		if tracer != nil {
			tracer.SetSink(core.TraceJournalSink(e.tele))
		}
	}
	if obs != nil {
		e.runner = e.runner.WithObserver(obs)
	}
	if r.UseCache {
		store, err := cache.NewStore(filepath.Join(r.WorkDir, "stream-cache"), r.CacheCompression)
		if err != nil {
			return nil, err
		}
		e.store = store
	}
	// Barrier deduplicators (minhash/simhash/vector) spill through the
	// same op-level machinery as the batch backend; shared-index stages
	// spill through the partitioned index's disk-backed signature sets.
	core.ConfigureSpill(p, r)
	return e, nil
}

// Plan returns the physical plan the engine runs.
func (e *Engine) Plan() *plan.Plan { return e.plan }

// Tracer returns the lineage tracer (nil unless the recipe enables it).
// In streaming mode each shard's pass through an op folds into that op's
// single merged event (examples capped at record time), and shared-index
// dedup events carry counts but no example pairs.
func (e *Engine) Tracer() *trace.Tracer { return e.runner.Tracer() }

// DescribePlan renders the plan with each op's streaming capability.
func (e *Engine) DescribePlan() string { return e.plan.Describe() }

// Run streams src through the plan into sink and returns the merged
// report. The source is always closed before Run returns; the sink is
// closed only on success — on error, partially written sink state (e.g.
// a sharded sink's .part files) is left as-is rather than finalized,
// and the next successful run over the same prefix cleans it up.
func (e *Engine) Run(src Source, sink Sink) (*Report, error) {
	start := time.Now()
	agg := newAggregator(e.plan)
	var totalIn, totalOut, sourceShards int

	if e.tele != nil {
		e.tele.Emit(core.PlanEvent(e.plan))
		workers, shardSize, inflight := e.np, e.shardSize, e.maxInFlight
		if e.ctrl != nil {
			dec := e.ctrl.Decision()
			workers, shardSize, inflight = dec.Workers, dec.ShardSize, dec.MaxInFlight
			ctrl := e.ctrl
			e.tele.SetProgressExtra(func() any { return ctrl.metrics() })
		}
		e.tele.SetControls(workers, shardSize, inflight, 0, e.tuning.TargetMemBytes)
	}

	cur := src
	for pi := range e.phases {
		ph := e.phases[pi]
		last := pi == len(e.phases)-1
		var phaseSpan int64
		var phaseStart time.Time
		if e.tele != nil {
			phaseSpan = e.tele.NewSpan()
			phaseStart = time.Now()
			name := "final"
			if ph.barrier != nil {
				name = "to barrier " + ph.barrier.Name()
			}
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvPhase, Span: phaseSpan, Parent: e.tele.RunSpan(),
				Name: name, Phase: pi,
			})
		}
		var collected []*dataset.Dataset
		emit := func(d *dataset.Dataset) error {
			if last {
				totalOut += d.Len()
				consumeStart := time.Now()
				if err := sink.Consume(d); err != nil {
					return err
				}
				if e.ctrl != nil {
					e.ctrl.ObserveSink(d.Len(), time.Since(consumeStart))
				}
				e.tele.AddOutput(d.Len())
				return nil
			}
			collected = append(collected, d)
			return nil
		}
		in, shards, err := e.runPhase(pi, phaseSpan, cur, ph.stages, agg, emit)
		cur.Close()
		if err != nil {
			return nil, err
		}
		if pi == 0 {
			totalIn, sourceShards = in, shards
		}
		if last {
			if e.tele != nil {
				e.tele.Emit(telemetry.Event{
					Type: telemetry.EvSpanEnd, Span: phaseSpan, Parent: e.tele.RunSpan(),
					Kind: "phase", Phase: pi, DurNS: int64(time.Since(phaseStart)),
				})
			}
			break
		}
		// Pipeline barrier: merge the drained shards in order, apply the
		// global op with full parallelism, and re-shard the result.
		merged := dataset.Concat(collected...)
		bStart := time.Now()
		out, err := e.runner.ApplyOp(ph.barrier, merged, e.recipe.NP)
		if err != nil {
			return nil, fmt.Errorf("stream: barrier op %s: %w", ph.barrier.Name(), err)
		}
		bDur := time.Since(bStart)
		agg.addOp(ph.barrierIdx, merged.Len(), out.Len(), bDur, bDur, false,
			dataset.Workers(e.recipe.NP), dataset.Workers(e.recipe.NP))
		if e.tele != nil {
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvOpComplete, Span: e.tele.NewSpan(), Parent: phaseSpan,
				Name: ph.barrier.Name(), Kind: "barrier", PlanIdx: ph.barrierIdx,
				Phase: pi, In: int64(merged.Len()), Out: int64(out.Len()),
				DurNS: int64(bDur), Workers: dataset.Workers(e.recipe.NP),
			})
			core.EmitSpill(e.tele, ph.barrier, ph.barrierIdx)
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvSpanEnd, Span: phaseSpan, Parent: e.tele.RunSpan(),
				Kind: "phase", Phase: pi, DurNS: int64(time.Since(phaseStart)),
			})
		}
		reshardSize := e.shardSize
		if e.ctrl != nil {
			reshardSize = e.ctrl.ShardSize()
		}
		cur, err = NewDatasetSource(out, reshardSize)
		if err != nil {
			return nil, err
		}
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	rep := agg.finish(sourceShards, totalIn, totalOut, time.Since(start))
	if e.ctrl != nil {
		rep.Metrics = e.ctrl.metrics()
	}
	// Attribute fused ops to their members (cumulative across executed
	// shards — counters never tick on cache hits) and fold the run's
	// measurements into the profile sidecar so the next plan of this
	// recipe is ordered by them. Persistence reads the executed-only
	// aggregates: cache-resumed shard counts must not dilute measured
	// costs.
	exec := agg.execStats()
	for i := range e.plan.Nodes {
		if ff, ok := e.plan.Nodes[i].Op.(*plan.FusedFilter); ok && !rep.OpStats[i].CacheHit {
			ms := ff.TakeMemberStats()
			rep.OpStats[i].Members = ms
			exec[i].Members = ms
		}
	}
	// Distributed runs: fold the fleet's quiesced member attribution in
	// (workers execute the fused ops, so the coordinator-side counters
	// above only saw fallback work) and attach the fleet statistics.
	if e.dispatch != nil {
		if mf, ok := e.dispatch.(MemberFlusher); ok {
			mergeMemberFlows(rep.OpStats, exec, mf.FinishMembers())
		}
		if ds, ok := e.dispatch.(dist.Statser); ok {
			rep.Dist = ds.DistStats()
		}
	}
	_ = core.PersistProfiles(e.plan, exec)
	return rep, nil
}

// errAborted is returned by shard processing interrupted by another
// shard's failure; the original error is already recorded.
var errAborted = fmt.Errorf("stream: run aborted")

// phaseRun holds the shared state of one pipelined phase execution.
type phaseRun struct {
	eng     *Engine
	phase   int
	span    int64 // the phase's journal span (0 without telemetry)
	stages  []stage
	indexes map[int]*partIndex // stage index -> partitioned signature index
	agg     *aggregator
	gate    *gate

	abort     chan struct{}
	abortOnce sync.Once
	runErr    error
}

func (p *phaseRun) fail(err error) {
	if err == errAborted {
		return
	}
	p.abortOnce.Do(func() {
		p.runErr = err
		close(p.abort)
		// Unblock the source's backpressure wait. Index resolution waits
		// select on p.abort directly; no further wakeup is needed.
		p.gate.close()
	})
}

func (p *phaseRun) aborted() bool {
	select {
	case <-p.abort:
		return true
	default:
		return false
	}
}

// runPhase pipelines every shard of src through the phase's stages and
// hands the results to emit in shard order. It returns the total samples
// and shards read from src.
func (e *Engine) runPhase(phaseIdx int, phaseSpan int64, src Source, stages []stage, agg *aggregator,
	emit func(*dataset.Dataset) error) (inCount, shardCount int, err error) {

	// Starting point: the fixed configuration, or the controller's
	// decision currently in force.
	limit, workers := e.maxInFlight, e.np
	if e.ctrl != nil {
		dec := e.ctrl.Decision()
		if dec.MaxInFlight > 0 {
			limit = dec.MaxInFlight
		}
		if dec.Workers > 0 {
			workers = dec.Workers
		}
	}

	p := &phaseRun{
		eng: e, phase: phaseIdx, span: phaseSpan, stages: stages, agg: agg,
		indexes: map[int]*partIndex{},
		abort:   make(chan struct{}),
		gate:    newGate(limit),
	}
	for i, st := range stages {
		if st.kind == stageIndex {
			nparts := resolvePartitions(st.partitions, workers)
			stageIdx, stg := i, st
			p.indexes[i] = newPartIndex(nparts, workers, func(k int) sigIndex {
				return e.newSigIndex(phaseIdx, stageIdx, k, nparts, stg)
			})
			if e.tele != nil {
				e.tele.ObserveIndexPartitions(st.dedup.Name(), nparts)
			}
		}
	}
	// Whatever happens below, the signature indexes release their spill
	// files when the phase ends; spill and contention activity is
	// journaled first.
	defer func() {
		for si, x := range p.indexes {
			st := stages[si]
			sst := x.Stats()
			_ = x.Close()
			if e.tele == nil {
				continue
			}
			if sst.Runs > 0 {
				e.tele.ObserveSpill(st.dedup.Name(), sst.Runs, sst.Bytes)
				e.tele.Emit(telemetry.Event{
					Type: telemetry.EvSpill, Parent: phaseSpan,
					Name: st.dedup.Name(), PlanIdx: st.planIdx[0], Phase: phaseIdx,
					Bytes: sst.Bytes, SpillRuns: sst.Runs,
				})
			}
			waits, wait := x.WaitStats()
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvIndex, Parent: phaseSpan,
				Name: st.dedup.Name(), PlanIdx: st.planIdx[0], Phase: phaseIdx,
				Partitions: len(x.parts), Waits: waits, DurNS: int64(wait),
			})
		}
	}()

	// The done buffer must hold the largest in-flight population any
	// future decision can allow.
	bound := e.maxInFlight
	if e.ctrl != nil {
		if b := e.tuning.MaxWorkers * e.tuning.InFlightPerWorker; b > bound {
			bound = b
		}
	}
	work := make(chan *Shard)
	done := make(chan *Shard, bound)
	counts := make(chan [2]int, 1)

	// Reader: pulls shards from the source, bounded by the in-flight gate
	// (released by the emitter once a shard leaves the phase). This is
	// where backpressure lands: when the sink or an index stage falls behind,
	// slots stop freeing and the reader blocks in acquire.
	go func() {
		defer close(work)
		in, n := 0, 0
		defer func() { counts <- [2]int{in, n} }()
		var onBlocked func(time.Duration)
		if e.ctrl != nil {
			onBlocked = e.ctrl.observeBackpressure
		}
		if e.tele != nil {
			inner := onBlocked
			onBlocked = func(d time.Duration) {
				if inner != nil {
					inner(d)
				}
				e.tele.ObserveBackpressure(d)
			}
		}
		sizer, resizable := src.(ShardSizer)
		for {
			if !p.gate.acquire(onBlocked) {
				return // aborted
			}
			if e.ctrl != nil && resizable {
				sizer.SetShardSize(e.ctrl.ShardSize())
			}
			readStart := time.Now()
			sh, err := src.Next()
			if err == io.EOF {
				p.gate.release()
				return
			}
			if err != nil {
				p.fail(err)
				return
			}
			if e.ctrl != nil {
				e.ctrl.ObserveSource(sh.Data.Len(), sh.Data.TotalBytes(), time.Since(readStart))
			}
			if e.tele != nil && phaseIdx == 0 {
				e.tele.AddInput(sh.Data.Len())
			}
			sh.Index = n // dense per-phase indexes, whatever the source says
			n++
			in += sh.Data.Len()
			select {
			case work <- sh:
			case <-p.abort:
				return
			}
		}
	}()

	// Workers: each shard runs the whole stage chain on one worker, so
	// different shards occupy different ops concurrently. The work
	// channel delivers shards in index order, which guarantees the
	// lowest in-flight shard is always held by some worker — that shard's
	// index deposits apply immediately at every partition, so resolution
	// waits are deadlock-free. The pool only retires workers after they
	// finish their current shard, preserving that invariant across
	// resizes.
	wp := newPool(work, func(sh *Shard) {
		if p.aborted() {
			return
		}
		if err := p.processShard(sh); err != nil {
			p.fail(err)
			return
		}
		done <- sh
	})
	wp.resize(workers)
	go func() { wp.wait(); close(done) }()

	// Ordered emitter (caller goroutine): reorders completed shards,
	// releases their in-flight slots, and applies controller decisions at
	// generation boundaries.
	next := 0
	buf := map[int]*dataset.Dataset{}
	for sh := range done {
		buf[sh.Index] = sh.Data
		for {
			d, ok := buf[next]
			if !ok {
				break
			}
			delete(buf, next)
			next++
			if !p.aborted() {
				if err := emit(d); err != nil {
					p.fail(err)
				}
			}
			p.gate.release()
			if e.ctrl != nil {
				if dec, changed := e.ctrl.shardEmitted(); changed {
					p.gate.setLimit(dec.MaxInFlight)
					wp.resize(dec.Workers)
					if e.tele != nil {
						est := int64(float64(dec.MaxInFlight) * float64(dec.ShardSize) * dec.PeakBytesPerSample)
						e.tele.SetControls(dec.Workers, dec.ShardSize, dec.MaxInFlight,
							est, e.tuning.TargetMemBytes)
						e.tele.Emit(telemetry.Event{
							Type: telemetry.EvControllerReplan, Parent: phaseSpan, Phase: phaseIdx,
							Workers: dec.Workers, ShardSize: dec.ShardSize,
							MaxInFlight: dec.MaxInFlight, Why: dec.Why, Shard: next,
						})
					}
				}
			}
		}
	}
	res := <-counts
	if p.runErr != nil {
		return 0, 0, p.runErr
	}
	return res[0], res[1], nil
}

// processShard pushes one shard through the phase's stages, recording
// per-op aggregates. Ops run single-threaded within the shard —
// parallelism lives across shards.
func (p *phaseRun) processShard(sh *Shard) error {
	e := p.eng
	if e.shardDelay != nil {
		if d := e.shardDelay(p.phase, sh.Index); d > 0 {
			time.Sleep(d)
		}
	}
	start := time.Now()
	in := sh.Data.Len()
	d := sh.Data
	resumed := false
	var shardSpan int64
	if e.tele != nil {
		shardSpan = e.tele.NewSpan()
	}
	for si, st := range p.stages {
		var err error
		switch st.kind {
		case stageLocal:
			// Only planner-annotated runs see the shard cache: their
			// results are pure functions of the shard's content, while
			// runs behind a shared-index stage depend on other shards'
			// signatures (see the plan's cache-boundary pass).
			var hit bool
			useCache := st.cacheable && e.store != nil
			if e.dispatch != nil {
				d, hit, err = p.runLocalDispatch(st, d, useCache, sh.Index, shardSpan)
			} else {
				d, hit, err = p.runLocal(st, d, useCache, sh.Index, shardSpan)
			}
			resumed = resumed || hit
		case stageIndex:
			d, err = p.runIndex(si, st, sh.Index, d, shardSpan)
		}
		if err != nil {
			return err
		}
	}
	sh.Data = d
	p.agg.addShard(ShardStat{
		Phase: p.phase, Index: sh.Index, In: in, Out: d.Len(),
		Duration: time.Since(start), CacheHit: resumed,
	})
	if e.tele != nil {
		e.tele.ObserveShard(in)
		e.tele.Emit(telemetry.Event{
			Type: telemetry.EvSpanEnd, Span: shardSpan, Parent: p.span,
			Kind: "shard", Phase: p.phase, Shard: sh.Index,
			In: int64(in), Out: int64(d.Len()),
			DurNS: int64(time.Since(start)), CacheHit: resumed,
		})
	}
	return nil
}

// runLocal applies one run of shard-local ops, mirroring the batch
// executor's chain-cache discipline per shard when useCache is set.
func (p *phaseRun) runLocal(st stage, d *dataset.Dataset, useCache bool, shardIdx int, shardSpan int64) (*dataset.Dataset, bool, error) {
	chainKey := ""
	if useCache {
		chainKey = cache.Key(d.Fingerprint(), "stream-shard", nil)
	}
	out, hits, err := p.runLocalFrom(st, d, 0, chainKey, useCache, shardIdx, shardSpan)
	if err != nil {
		return nil, false, err
	}
	return out, hits == len(st.ops) && hits > 0, nil
}

// runLocalFrom is runLocal starting at op index `from` with the chain
// cache key already folded up to it — the in-process fallback entry
// point for a dispatched stage whose cached prefix was consumed before
// the fleet died. It returns the cache hits seen from `from` onward.
func (p *phaseRun) runLocalFrom(st stage, d *dataset.Dataset, from int, chainKey string, useCache bool, shardIdx int, shardSpan int64) (*dataset.Dataset, int, error) {
	e := p.eng
	hits := 0
	for i := from; i < len(st.ops); i++ {
		op := st.ops[i]
		if p.aborted() {
			return nil, 0, errAborted
		}
		opStart := time.Now()
		inCount := d.Len()
		var key string
		if useCache {
			key = e.runner.OpCacheKey(chainKey, op)
			if cached, ok, err := e.store.Get(key); err != nil {
				return nil, 0, err
			} else if ok {
				d = cached
				chainKey = key
				hits++
				p.agg.addOp(st.planIdx[i], inCount, d.Len(), time.Since(opStart), 0, true, 1, 1)
				e.runner.TraceCacheHit(op, inCount, d.Len(), time.Since(opStart))
				if e.tele != nil {
					e.tele.Op(st.planIdx[i]).CacheHit(inCount, d.Len())
					e.tele.Emit(telemetry.Event{
						Type: telemetry.EvCacheHit, Parent: shardSpan,
						Name: op.Name(), Kind: core.OpKind(op), PlanIdx: st.planIdx[i],
						Phase: p.phase, Shard: shardIdx,
						In: int64(inCount), Out: int64(d.Len()),
						DurNS: int64(time.Since(opStart)),
					})
				}
				continue
			}
		}
		out, err := e.runner.ApplyOp(op, d, 1)
		if err != nil {
			return nil, 0, fmt.Errorf("stream: op %d (%s): %w", st.planIdx[i], op.Name(), err)
		}
		d = out
		if useCache {
			if err := e.store.Put(key, d); err != nil {
				return nil, 0, err
			}
			chainKey = key
		}
		opDur := time.Since(opStart)
		p.agg.addOp(st.planIdx[i], inCount, d.Len(), opDur, opDur, false, 1, 1)
		if e.tele != nil {
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvOpComplete, Span: e.tele.NewSpan(), Parent: shardSpan,
				Name: op.Name(), Kind: core.OpKind(op), PlanIdx: st.planIdx[i],
				Phase: p.phase, Shard: shardIdx,
				In: int64(inCount), Out: int64(d.Len()),
				DurNS: int64(opDur), Workers: 1,
			})
		}
	}
	return d, hits, nil
}

// runIndex passes one shard through a shared-signature dedup stage:
// signatures are computed outside any lock, routed to the stage's
// partitioned index, and the shard blocks only until every partition has
// resolved its in-order prefix through this shard (see sigpart.go).
func (p *phaseRun) runIndex(si int, st stage, shardIdx int, d *dataset.Dataset, shardSpan int64) (*dataset.Dataset, error) {
	opStart := time.Now()
	var inBytes int64
	if p.eng.ctrl != nil || p.eng.tele != nil {
		inBytes = d.TotalBytes()
	}
	// Signatures are pure per-sample work: compute them before touching
	// the shared index so partitions serialize only membership probes.
	sigs := make([]uint64, d.Len())
	for i, s := range d.Samples {
		sigs[i] = st.dedup.Signature(s)
	}
	novel := make([]bool, len(sigs))
	x := p.indexes[si]
	wait, err := x.Claim(shardIdx, sigs, novel, p.abort)
	if err == errAborted {
		return nil, errAborted
	}
	if err != nil {
		return nil, fmt.Errorf("stream: op %d (%s) signature index: %w",
			st.planIdx[0], st.dedup.Name(), err)
	}
	var kept []*sample.Sample
	for i, s := range d.Samples {
		if novel[i] {
			kept = append(kept, s)
		}
	}

	out := dataset.New(kept)
	// The report keeps the wall view (wait included) and the actual probe
	// parallelism; the executed view feeding profile persistence excludes
	// the resolution wait and stays at parallelism 1 — each shard's
	// duration here is single-goroutine CPU time.
	p.agg.addOp(st.planIdx[0], d.Len(), out.Len(), time.Since(opStart),
		time.Since(opStart)-wait, false, x.probeWorkers, 1)
	if p.eng.ctrl != nil {
		// Resolution wait is backpressure, not work: exclude it from the
		// cost signal, and tell the model how wide index work can spread.
		p.eng.ctrl.observeIndexOp(st.dedup, d.Len(), out.Len(), inBytes,
			time.Since(opStart)-wait, len(x.parts))
	}
	if t := p.eng.tele; t != nil {
		// The shared-index path bypasses the runner observer: feed the
		// instruments explicitly, with the resolution wait excluded from
		// the cost signal just like the controller sees it.
		t.Op(st.planIdx[0]).Observe(d.Len(), out.Len(), inBytes, time.Since(opStart)-wait)
		if wait > 0 {
			t.ObserveIndexWait(st.dedup.Name(), wait)
		}
		t.Emit(telemetry.Event{
			Type: telemetry.EvOpComplete, Span: t.NewSpan(), Parent: shardSpan,
			Name: st.dedup.Name(), Kind: "deduplicator", PlanIdx: st.planIdx[0],
			Phase: p.phase, Shard: shardIdx,
			In: int64(d.Len()), Out: int64(out.Len()),
			DurNS: int64(time.Since(opStart)), Workers: x.probeWorkers,
		})
	}
	if tr := p.eng.runner.Tracer(); tr != nil {
		tr.Record(trace.Event{
			OpName: st.dedup.Name(), Kind: "deduplicator",
			InCount: d.Len(), OutCount: out.Len(), Duration: time.Since(opStart),
		})
	}
	return out, nil
}
