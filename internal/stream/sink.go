package stream

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// Sink consumes processed shards. The engine calls Consume in shard
// order, exactly once per surviving shard, then Close once after the
// last shard.
type Sink interface {
	Consume(d *dataset.Dataset) error
	Close() error
}

// ShardedJSONLSink writes each consumed shard to its own JSONL file as
// soon as it arrives, so output disk pressure tracks the stream instead
// of accumulating in memory. Because the total shard count is unknown
// until the stream ends, shards are first written as
// "<prefix>-NNNNN.jsonl.part" and atomically renamed to the final
// "<prefix>-NNNNN-of-MMMMM.jsonl" layout (the same naming
// format.ExportSharded uses) on Close. Empty shards are skipped.
type ShardedJSONLSink struct {
	prefix string
	parts  []string
	paths  []string
	closed bool
}

// NewShardedJSONLSink creates the output directory and returns a sink
// writing files under the given path prefix (typically the export path
// with its ".jsonl" extension trimmed).
func NewShardedJSONLSink(pathPrefix string) (*ShardedJSONLSink, error) {
	if pathPrefix == "" {
		return nil, fmt.Errorf("stream: empty sink path prefix")
	}
	if dir := filepath.Dir(pathPrefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &ShardedJSONLSink{prefix: pathPrefix}, nil
}

// Consume writes one shard to its ".part" file.
func (s *ShardedJSONLSink) Consume(d *dataset.Dataset) error {
	if s.closed {
		return fmt.Errorf("stream: sink already closed")
	}
	if d.Len() == 0 {
		return nil
	}
	part := fmt.Sprintf("%s-%05d.jsonl.part", s.prefix, len(s.parts))
	if err := d.SaveJSONL(part); err != nil {
		return err
	}
	s.parts = append(s.parts, part)
	return nil
}

// Close renames every ".part" file to the final -NNNNN-of-MMMMM layout,
// then removes shard files left under the same prefix by previous runs
// (a re-run with a different shard count must not leave a mixed
// generation behind the "<prefix>-*.jsonl" glob).
func (s *ShardedJSONLSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	stale := s.existingShardFiles()
	n := len(s.parts)
	for i, part := range s.parts {
		final := fmt.Sprintf("%s-%05d-of-%05d.jsonl", s.prefix, i, n)
		if err := os.Rename(part, final); err != nil {
			return err
		}
		s.paths = append(s.paths, final)
	}
	fresh := make(map[string]bool, len(s.paths))
	for _, p := range s.paths {
		fresh[p] = true
	}
	for _, old := range stale {
		if !fresh[old] {
			os.Remove(old)
		}
	}
	return nil
}

// existingShardFiles lists this prefix's shard output from earlier runs:
// finalized -NNNNN-of-MMMMM.jsonl shards and orphaned .part files.
func (s *ShardedJSONLSink) existingShardFiles() []string {
	var out []string
	for _, pattern := range []string{
		s.prefix + "-[0-9][0-9][0-9][0-9][0-9]-of-[0-9][0-9][0-9][0-9][0-9].jsonl",
		s.prefix + "-[0-9][0-9][0-9][0-9][0-9].jsonl.part",
	} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			continue
		}
		out = append(out, matches...)
	}
	current := make(map[string]bool, len(s.parts))
	for _, p := range s.parts {
		current[p] = true
	}
	var stale []string
	for _, m := range out {
		if !current[m] {
			stale = append(stale, m)
		}
	}
	return stale
}

// Paths returns the final shard files, valid after Close.
func (s *ShardedJSONLSink) Paths() []string { return s.paths }

// CollectSink accumulates every shard in memory — for tests, probes, and
// callers that want the batch-style full dataset back. It forfeits the
// engine's bounded-memory property.
type CollectSink struct {
	samples []*sample.Sample
}

// Consume appends the shard's samples.
func (c *CollectSink) Consume(d *dataset.Dataset) error {
	c.samples = append(c.samples, d.Samples...)
	return nil
}

// Close is a no-op.
func (c *CollectSink) Close() error { return nil }

// Dataset returns everything consumed so far, in stream order.
func (c *CollectSink) Dataset() *dataset.Dataset { return dataset.New(c.samples) }

// DiscardSink drops shards after they are counted: for runs that only
// want the report (no export path configured).
type DiscardSink struct{}

// Consume drops the shard.
func (DiscardSink) Consume(*dataset.Dataset) error { return nil }

// Close is a no-op.
func (DiscardSink) Close() error { return nil }
