package stream

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plan"
)

func sampleReport(seed int) *Report {
	d := time.Duration(seed) * time.Millisecond
	return &Report{
		OpStats: []core.OpStat{
			{Name: "clean", PlanIndex: 0, InCount: 10 * seed, OutCount: 9 * seed, Duration: d, Workers: 1},
			{Name: "fused_filter", PlanIndex: 1, InCount: 9 * seed, OutCount: 5 * seed, Duration: 2 * d, Workers: 1,
				Members: []plan.MemberStat{
					{Name: "length_filter", In: 9 * seed, Out: 7 * seed, Samples: 9 * seed, Duration: d},
					{Name: "alpha_filter", In: 7 * seed, Out: 5 * seed, Samples: 7 * seed, Duration: d},
				}},
		},
		Shards:        []ShardStat{{Phase: 0, Index: seed, In: 10 * seed, Out: 5 * seed}},
		ShardCount:    seed,
		InCount:       10 * seed,
		OutCount:      5 * seed,
		ResumedShards: seed % 2,
		PlanSize:      2,
		Total:         d,
		Dist: &dist.RunStats{
			Workers: []dist.WorkerRunStat{{Worker: 1 + seed%2, Stages: seed, Steals: seed % 3}},
			Retries: seed % 2,
			Steals:  seed % 3,
		},
	}
}

// TestReportMergeAssociative checks (a+b)+c == a+(b+c) across every
// aggregate, which is what lets partial reports combine in any order.
func TestReportMergeAssociative(t *testing.T) {
	left := sampleReport(1)
	left.Merge(sampleReport(2))
	left.Merge(sampleReport(3))

	bc := sampleReport(2)
	bc.Merge(sampleReport(3))
	right := sampleReport(1)
	right.Merge(bc)

	// Shard order differs by association; compare as multisets.
	sortKey := func(s ShardStat) int { return s.Phase*1_000_000 + s.Index }
	normalize := func(r *Report) {
		for i := range r.Shards {
			for j := i + 1; j < len(r.Shards); j++ {
				if sortKey(r.Shards[j]) < sortKey(r.Shards[i]) {
					r.Shards[i], r.Shards[j] = r.Shards[j], r.Shards[i]
				}
			}
		}
	}
	normalize(left)
	normalize(right)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n  (a+b)+c = %+v\n  a+(b+c) = %+v", left, right)
	}
	if left.ShardCount != 6 || left.InCount != 60 || left.OutCount != 30 {
		t.Fatalf("merged totals wrong: %+v", left)
	}
	if got := left.OpStats[1].Members[0].In; got != 9+18+27 {
		t.Fatalf("member in = %d, want 54", got)
	}
	if left.Dist.Workers[0].Worker != 1 || left.Dist.Workers[1].Worker != 2 {
		t.Fatalf("dist workers not sorted by ID: %+v", left.Dist.Workers)
	}
}

// TestReportMergeDoesNotMutateOther guards the "o is not mutated"
// contract — fused members in particular must be copied, not aliased.
func TestReportMergeDoesNotMutateOther(t *testing.T) {
	o := sampleReport(2)
	before := sampleReport(2)
	r := sampleReport(1)
	r.Merge(o)
	r.OpStats[1].Members[0].In = 999999
	r.Dist.Workers[0].Stages = 999999
	if !reflect.DeepEqual(o, before) {
		t.Fatalf("Merge mutated its argument:\n  got  %+v\n  want %+v", o, before)
	}
}

// TestReportMergeConcurrent merges partial reports from many goroutines
// into one accumulator under a mutex — the coordinator's pattern when
// worker journals land asynchronously. Run with -race.
func TestReportMergeConcurrent(t *testing.T) {
	acc := &Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	const n = 16
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			part := sampleReport(seed)
			mu.Lock()
			acc.Merge(part)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wantShards := n * (n + 1) / 2
	if acc.ShardCount != wantShards {
		t.Fatalf("ShardCount = %d, want %d", acc.ShardCount, wantShards)
	}
	if acc.InCount != 10*wantShards || acc.OutCount != 5*wantShards {
		t.Fatalf("totals wrong: in=%d out=%d", acc.InCount, acc.OutCount)
	}
	if len(acc.Shards) != n {
		t.Fatalf("Shards len = %d, want %d", len(acc.Shards), n)
	}
}
