package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/format"
)

// referenceParse is the straightforward (non-incremental) reading of a
// JSONL byte stream with the source's exact line discipline: trimmed
// lines, blank lines skipped, format.SampleFromJSON decoding. The fuzz
// target holds JSONLSource — incremental buffering, shard slicing, file
// advancing and all — to this oracle.
func referenceParse(data []byte) ([]string, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var lines []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		s, err := format.SampleFromJSON([]byte(line))
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(s)
		if err != nil {
			return nil, err
		}
		lines = append(lines, string(raw))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lines, nil
}

// drainSource reads a source to EOF, returning each sample re-marshaled
// plus every shard's size.
func drainSource(src Source) (lines []string, sizes []int, err error) {
	for {
		sh, err := src.Next()
		if err == io.EOF {
			return lines, sizes, nil
		}
		if err != nil {
			return nil, nil, err
		}
		sizes = append(sizes, sh.Data.Len())
		for _, s := range sh.Data.Samples {
			raw, err := json.Marshal(s)
			if err != nil {
				return nil, nil, err
			}
			lines = append(lines, string(raw))
		}
	}
}

// FuzzJSONLSource feeds arbitrary bytes through the incremental JSONL
// source and checks it against the reference parse: same accept/reject
// verdict, same samples in the same order, and exact shard-size
// invariants — including under mid-stream re-sizing, the operation the
// adaptive controller performs.
func FuzzJSONLSource(f *testing.F) {
	f.Add([]byte("{\"text\":\"hello world\"}\n{\"text\":\"second line\"}\n"))
	f.Add([]byte("\n   \n{\"text\":\"blank lines around\"}\n\n"))
	f.Add([]byte("{\"text\":\"ok\"}\nnot json at all\n"))
	f.Add([]byte("{\"text\":\"trailing no newline\"}"))
	f.Add([]byte("{\"text\":\"meta too\",\"meta\":{\"lang\":\"en\"},\"stats\":{\"x\":1}}\r\n{\"text\":\"crlf\"}\r\n"))
	f.Add([]byte("{\"text\":\"日本語のテキスト。\"}\n{\"text\":\"emoji 🎉 ok\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := referenceParse(data)

		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		shardSize := 1 + len(data)%7

		src, err := NewJSONLSource(shardSize, path)
		if err != nil {
			t.Fatalf("NewJSONLSource: %v", err)
		}
		got, sizes, gotErr := drainSource(src)
		src.Close()

		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("verdict diverges: reference err=%v, source err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("sample count diverges: source %d, reference %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sample %d diverges:\nsource:    %s\nreference: %s", i, got[i], want[i])
			}
		}
		for i, n := range sizes {
			if n < 1 || n > shardSize {
				t.Fatalf("shard %d has %d samples; want 1..%d", i, n, shardSize)
			}
			if i < len(sizes)-1 && n != shardSize {
				t.Fatalf("non-final shard %d has %d samples; want exactly %d", i, n, shardSize)
			}
		}

		// Second pass with mid-stream re-sizing: sample stream must be
		// unchanged whatever the slicing.
		src2, err := NewJSONLSource(shardSize, path)
		if err != nil {
			t.Fatal(err)
		}
		defer src2.Close()
		var resized []string
		next := shardSize
		for {
			src2.SetShardSize(next)
			next = next%5 + 1 // cycle 1..5
			sh, err := src2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("resized pass errored where fixed pass succeeded: %v", err)
			}
			for _, s := range sh.Data.Samples {
				raw, err := json.Marshal(s)
				if err != nil {
					t.Fatal(err)
				}
				resized = append(resized, string(raw))
			}
		}
		if len(resized) != len(want) {
			t.Fatalf("resized pass count diverges: %d vs %d", len(resized), len(want))
		}
		for i := range want {
			if resized[i] != want[i] {
				t.Fatalf("resized pass sample %d diverges", i)
			}
		}
	})
}
