package stream

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/format"
	"repro/internal/ops"
	_ "repro/internal/ops/all"
	"repro/internal/plan"
	"repro/internal/sample"
)

func init() {
	ops.Register("stream_test_failing_mapper", ops.CategoryMapper, "test",
		func(p ops.Params) (ops.OP, error) { return failingMapper{}, nil })
}

type failingMapper struct{}

func (failingMapper) Name() string { return "stream_test_failing_mapper" }
func (failingMapper) Process(s *sample.Sample) error {
	return fmt.Errorf("intentional failure")
}

// corpusWithDupes builds a deterministic corpus salted with exact and
// cross-shard duplicates, and saves it as JSONL.
func corpusWithDupes(t *testing.T, docs int) (string, *dataset.Dataset) {
	t.Helper()
	base, err := format.Load(fmt.Sprintf("hub:web-en?docs=%d&seed=11", docs))
	if err != nil {
		t.Fatal(err)
	}
	var samples []*sample.Sample
	for i, s := range base.Samples {
		samples = append(samples, s)
		if i%7 == 0 { // exact duplicate far away, to cross shard boundaries
			dup := s.Clone()
			dup.Meta = dup.Meta.Set("dup_of", i)
			samples = append(samples, dup)
		}
	}
	d := dataset.New(samples)
	path := filepath.Join(t.TempDir(), "input.jsonl")
	if err := d.SaveJSONL(path); err != nil {
		t.Fatal(err)
	}
	return path, d
}

const equivalenceRecipe = `
project_name: stream-test
use_cache: false
op_fusion: true
process:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
  - stopwords_filter:
      min_ratio: 0.01
  - document_deduplicator:
  - text_length_filter:
      min_len: 20
`

func mustRecipe(t *testing.T, yaml string) *config.Recipe {
	t.Helper()
	r, err := config.ParseRecipe(yaml)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sampleLines renders a dataset as one canonical JSON line per sample.
func sampleLines(t *testing.T, d *dataset.Dataset) []string {
	t.Helper()
	lines := make([]string, d.Len())
	for i, s := range d.Samples {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(raw)
	}
	return lines
}

func runBatch(t *testing.T, recipeYAML, input string) *dataset.Dataset {
	t.Helper()
	r := mustRecipe(t, recipeYAML)
	r.WorkDir = t.TempDir()
	d, err := format.Load(input)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.NewExecutor(r)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := exec.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runStream(t *testing.T, recipeYAML, input string, opts Options) (*dataset.Dataset, *Report) {
	t.Helper()
	r := mustRecipe(t, recipeYAML)
	r.WorkDir = t.TempDir()
	eng, err := New(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(input, eng.shardSize)
	if err != nil {
		t.Fatal(err)
	}
	var sink CollectSink
	rep, err := eng.Run(src, &sink)
	if err != nil {
		t.Fatal(err)
	}
	return sink.Dataset(), rep
}

// TestStreamMatchesBatch is the acceptance gate: across shard sizes and
// worker counts, the streaming engine must keep exactly the samples the
// batch executor keeps — same order, same text, same meta, same stats.
func TestStreamMatchesBatch(t *testing.T) {
	input, _ := corpusWithDupes(t, 150)
	want := sampleLines(t, runBatch(t, equivalenceRecipe, input))
	if len(want) == 0 {
		t.Fatal("batch run kept nothing; test corpus too aggressive")
	}
	for _, shardSize := range []int{1, 7, 32, 1000} {
		for _, np := range []int{1, 4} {
			name := fmt.Sprintf("shard%d-np%d", shardSize, np)
			t.Run(name, func(t *testing.T) {
				yaml := equivalenceRecipe + fmt.Sprintf("np: %d\n", np)
				got, rep := runStream(t, yaml, input, Options{ShardSize: shardSize})
				gotLines := sampleLines(t, got)
				if len(gotLines) != len(want) {
					t.Fatalf("stream kept %d samples, batch kept %d", len(gotLines), len(want))
				}
				for i := range want {
					if gotLines[i] != want[i] {
						t.Fatalf("sample %d differs:\nstream: %s\nbatch:  %s", i, gotLines[i], want[i])
					}
				}
				if rep.OutCount != len(want) {
					t.Errorf("report OutCount = %d, want %d", rep.OutCount, len(want))
				}
				if rep.PlanSize == 0 || len(rep.OpStats) != rep.PlanSize {
					t.Errorf("report has %d op stats for plan size %d", len(rep.OpStats), rep.PlanSize)
				}
			})
		}
	}
}

// TestStreamMatchesBatchWithBarrier checks the merge-and-reshard path:
// a similarity deduplicator mid-plan forces a declared barrier.
func TestStreamMatchesBatchWithBarrier(t *testing.T) {
	input, _ := corpusWithDupes(t, 120)
	recipe := `
project_name: stream-barrier-test
use_cache: false
op_fusion: true
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 3
  - document_minhash_deduplicator:
      jaccard_threshold: 0.8
  - text_length_filter:
      min_len: 10
`
	want := sampleLines(t, runBatch(t, recipe, input))
	if len(want) == 0 {
		t.Fatal("batch run kept nothing")
	}
	got, rep := runStream(t, recipe, input, Options{ShardSize: 16})
	gotLines := sampleLines(t, got)
	if len(gotLines) != len(want) {
		t.Fatalf("stream kept %d samples, batch kept %d", len(gotLines), len(want))
	}
	for i := range want {
		if gotLines[i] != want[i] {
			t.Fatalf("sample %d differs after barrier:\nstream: %s\nbatch:  %s", i, gotLines[i], want[i])
		}
	}
	// The minhash op must have executed exactly once, over the merged set.
	found := false
	for _, st := range rep.OpStats {
		if st.Name == "document_minhash_deduplicator" {
			found = true
			if st.InCount == 0 {
				t.Error("barrier op saw no samples")
			}
		}
	}
	if !found {
		t.Error("no op stat recorded for the barrier op")
	}
}

// TestShardCacheResume runs the same stream twice with the cache on: the
// second run must resume every shard from the shard cache and still
// produce identical output.
func TestShardCacheResume(t *testing.T) {
	input, _ := corpusWithDupes(t, 80)
	yaml := `
project_name: stream-cache-test
use_cache: true
op_fusion: true
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 3
  - document_deduplicator:
`
	r := mustRecipe(t, yaml)
	r.WorkDir = t.TempDir()

	run := func() (*dataset.Dataset, *Report) {
		eng, err := New(r, Options{ShardSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		src, err := OpenSource(input, 16)
		if err != nil {
			t.Fatal(err)
		}
		var sink CollectSink
		rep, err := eng.Run(src, &sink)
		if err != nil {
			t.Fatal(err)
		}
		return sink.Dataset(), rep
	}

	first, rep1 := run()
	if rep1.ResumedShards != 0 {
		t.Fatalf("cold run resumed %d shards", rep1.ResumedShards)
	}
	second, rep2 := run()
	if rep2.ResumedShards != rep2.ShardCount || rep2.ShardCount == 0 {
		t.Fatalf("warm run resumed %d of %d shards", rep2.ResumedShards, rep2.ShardCount)
	}
	a, b := sampleLines(t, first), sampleLines(t, second)
	if len(a) != len(b) {
		t.Fatalf("warm run kept %d samples, cold kept %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between cold and warm runs", i)
		}
	}
	// Cached shard-local ops must be flagged in the aggregate.
	for _, st := range rep2.OpStats {
		if st.Name == "whitespace_normalization_mapper" && !st.CacheHit {
			t.Error("leading mapper not marked as fully cached on the warm run")
		}
	}
}

// TestStreamFusedMemberAttribution: the aggregated report must attribute
// a fused op's work to its members, summed across every shard.
func TestStreamFusedMemberAttribution(t *testing.T) {
	input, _ := corpusWithDupes(t, 60)
	r := mustRecipe(t, equivalenceRecipe) // word_num + stopwords fuse
	r.WorkDir = t.TempDir()
	eng, err := New(r, Options{ShardSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(input, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(src, DiscardSink{})
	if err != nil {
		t.Fatal(err)
	}
	var fused *core.OpStat
	for i := range rep.OpStats {
		if len(rep.OpStats[i].Members) > 0 {
			fused = &rep.OpStats[i]
		}
	}
	if fused == nil {
		t.Fatalf("no fused member attribution in report: %+v", rep.OpStats)
	}
	if fused.Members[0].In != fused.InCount {
		t.Errorf("first member saw %d of %d samples", fused.Members[0].In, fused.InCount)
	}
	if last := fused.Members[len(fused.Members)-1]; last.Out != fused.OutCount {
		t.Errorf("last member out = %d, fused out = %d", last.Out, fused.OutCount)
	}
	if !strings.Contains(rep.Summary(), "· ") {
		t.Error("summary does not render member attribution")
	}
}

// TestSplitPhases checks plan segmentation around barriers and index ops
// (capability classification itself is covered in internal/plan).
func TestSplitPhases(t *testing.T) {
	r := mustRecipe(t, `
op_fusion: false
process:
  - whitespace_normalization_mapper:
  - document_deduplicator:
  - text_length_filter:
  - document_minhash_deduplicator:
  - word_num_filter:
`)
	p, err := plan.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	phases := splitPhases(p)
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	if phases[0].barrier == nil || phases[0].barrier.Name() != "document_minhash_deduplicator" {
		t.Fatalf("phase 0 barrier = %v", phases[0].barrier)
	}
	if len(phases[0].stages) != 3 { // local(mapper), index(dedup), local(filter)
		t.Fatalf("phase 0 has %d stages, want 3", len(phases[0].stages))
	}
	if phases[0].stages[1].kind != stageIndex {
		t.Fatal("middle stage of phase 0 should be the signature index")
	}
	if phases[1].barrier != nil || len(phases[1].stages) != 1 {
		t.Fatalf("phase 1 malformed: %+v", phases[1])
	}
}

// TestEngineOpError checks a failing op aborts the run with its error
// instead of hanging the pipeline.
func TestEngineOpError(t *testing.T) {
	input, _ := corpusWithDupes(t, 40)
	yaml := `
use_cache: false
process:
  - whitespace_normalization_mapper:
  - stream_test_failing_mapper:
  - document_deduplicator:
`
	r := mustRecipe(t, yaml)
	r.WorkDir = t.TempDir()
	eng, err := New(r, Options{ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(input, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(src, DiscardSink{}); err == nil {
		t.Fatal("expected the failing op's error")
	}
}

// TestPassthroughAndEmptyInput: a plan whose ops keep everything is a
// pure copy-through, and an empty source emits nothing without error.
func TestPassthroughAndEmptyInput(t *testing.T) {
	input, orig := corpusWithDupes(t, 30)
	r := mustRecipe(t, "use_cache: false\nprocess:\n  - text_length_filter:\n      min_len: 0\n")
	r.WorkDir = t.TempDir()
	eng, err := New(r, Options{ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(input, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sink CollectSink
	rep, err := eng.Run(src, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Dataset().Len() != orig.Len() {
		t.Fatalf("copy-through kept %d of %d samples", sink.Dataset().Len(), orig.Len())
	}
	if rep.InCount != orig.Len() || rep.OutCount != orig.Len() {
		t.Fatalf("report counts %d -> %d, want %d -> %d", rep.InCount, rep.OutCount, orig.Len(), orig.Len())
	}

	empty, err := NewDatasetSource(dataset.New(nil), 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = eng.Run(empty, &CollectSink{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InCount != 0 || rep.OutCount != 0 || rep.ShardCount != 0 {
		t.Fatalf("empty input produced counts %+v", rep)
	}
}
