package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spill"
)

// This file is the hash-partitioned signature index behind stageIndex
// stages: the replacement for the ordered turnstile. The turnstile
// serialized every shard through one index in shard order, so a
// dedup-heavy recipe degenerated to a single-threaded membership probe no
// matter how many workers the pool had. The partitioned index keeps the
// exact same semantics — "first occurrence in stream order kept", i.e.
// the minimal global sample index claims each signature — while letting
// shards probe concurrently:
//
//   - Signatures are routed to P independently locked partitions by
//     spill.Mix(sig), a pure function of the signature. Within one
//     partition, batches still apply in shard order; across partitions
//     there is no ordering at all. Because the per-partition application
//     order is the global stream order restricted to that partition,
//     every signature still resolves to its minimal claiming sample —
//     byte-identical keep sets, out-of-order probing.
//   - A shard DEPOSITS its per-partition claims without blocking (every
//     partition gets a deposit, empty ones included, so the partition's
//     in-order cursor can advance past shards with no keys there). The
//     depositor that completes a partition's in-order prefix applies the
//     queued claims; verdicts scatter back into each claiming shard's own
//     novel slice at recorded positions — positions are disjoint across
//     partitions, so no lock guards the scatter.
//   - The shard then waits only for its own outstanding partitions — an
//     atomic countdown closing a channel, the WaitGroup happens-before
//     chain — or for phase abort. Deposits always precede waits, so the
//     lowest in-flight shard never blocks and the pool's ordered work
//     channel keeps the whole scheme deadlock-free, exactly the invariant
//     the turnstile relied on.
//
// Each partition is backed by the same sigIndex implementations as
// before: the in-memory map, or a per-partition spill.DiskSet holding an
// equal share of the stage's planner-assigned spill budget.

// maxIndexPartitions caps auto-resolved and configured partition counts;
// beyond this the per-partition deposit overhead outweighs any contention
// relief.
const maxIndexPartitions = 512

// resolvePartitions turns the configured partition count (0 = auto) into
// the power of two actually used: auto follows the worker hint, explicit
// values round up, everything lands in [1, maxIndexPartitions].
func resolvePartitions(configured, workersHint int) int {
	n := configured
	if n <= 0 {
		n = workersHint
	}
	if n < 1 {
		n = 1
	}
	if n > maxIndexPartitions {
		n = maxIndexPartitions
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardClaim tracks one shard's claim across all partitions: a countdown
// of partitions that have not yet applied the shard's deposit. The final
// apply closes done; the claiming shard waits on it. The atomic countdown
// plus channel close forms the same happens-before chain as a WaitGroup,
// publishing every applier's scattered novel writes to the waiter.
type shardClaim struct {
	outstanding atomic.Int32
	done        chan struct{}

	mu  sync.Mutex
	err error
}

func (sc *shardClaim) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	sc.mu.Unlock()
}

func (sc *shardClaim) failure() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.err
}

// finish retires one partition's application of the claim.
func (sc *shardClaim) finish() {
	if sc.outstanding.Add(-1) == 0 {
		close(sc.done)
	}
}

// partClaim is one shard's slice of signatures routed to one partition.
// sigs keeps the shard's own order; pos maps each signature back to its
// position in the shard's novel slice.
type partClaim struct {
	shard int
	sigs  []uint64
	pos   []int32
	novel []bool
	sc    *shardClaim
}

// sigPartition is one independently locked slice of the index. next is
// the in-order cursor: the lowest shard index whose deposit has not been
// applied yet. Deposits from later shards queue in pending until the
// cursor reaches them.
type sigPartition struct {
	mu      sync.Mutex
	next    int
	pending map[int]*partClaim
	idx     sigIndex
	scratch []bool
	err     error // sticky: the first AddBatch failure poisons the partition
}

// deposit hands one claim to the partition. If the claim completes the
// in-order prefix, the depositor applies it and drains any queued
// successors; otherwise it queues. Never blocks beyond the partition
// mutex.
func (p *sigPartition) deposit(c *partClaim) {
	p.mu.Lock()
	if c.shard != p.next {
		p.pending[c.shard] = c
		p.mu.Unlock()
		return
	}
	for c != nil {
		p.applyLocked(c)
		p.next++
		if qc, ok := p.pending[p.next]; ok {
			delete(p.pending, p.next)
			c = qc
		} else {
			c = nil
		}
	}
	p.mu.Unlock()
}

// applyLocked probes the partition's index with one claim and scatters
// the verdicts into the claiming shard's novel slice. Positions are
// disjoint across partitions, so the scatter needs no further locking;
// the claim's countdown publishes the writes. A nil pos means sigs are
// already in shard positions (the single-partition fast path) and the
// probe fills the caller's slice directly.
func (p *sigPartition) applyLocked(c *partClaim) {
	if len(c.sigs) > 0 {
		if p.err == nil {
			if c.pos == nil {
				if err := p.idx.AddBatch(c.sigs, c.novel[:len(c.sigs)]); err != nil {
					p.err = err
				}
			} else {
				if cap(p.scratch) < len(c.sigs) {
					p.scratch = make([]bool, len(c.sigs))
				}
				nv := p.scratch[:len(c.sigs)]
				if err := p.idx.AddBatch(c.sigs, nv); err != nil {
					p.err = err
				} else {
					for i, pos := range c.pos {
						c.novel[pos] = nv[i]
					}
				}
			}
		}
		if p.err != nil {
			c.sc.fail(p.err)
		}
	}
	c.sc.finish()
}

// partIndex is the partitioned signature index of one stageIndex stage.
type partIndex struct {
	parts []sigPartition
	shift uint // partition = spill.Mix(sig) >> shift

	// probeWorkers is the effective probe parallelism for attribution:
	// the partition count capped by the worker pool that feeds it.
	probeWorkers int

	waits  atomic.Int64 // claims that had to block on resolution
	waitNS atomic.Int64 // summed resolution wait
}

// newPartIndex builds a P-partition index (P must be a power of two, from
// resolvePartitions), with each partition backed by newIdx(k).
func newPartIndex(partitions, workers int, newIdx func(k int) sigIndex) *partIndex {
	shift := uint(64)
	for p := partitions; p > 1; p >>= 1 {
		shift--
	}
	x := &partIndex{parts: make([]sigPartition, partitions), shift: shift}
	x.probeWorkers = partitions
	if workers >= 1 && workers < x.probeWorkers {
		x.probeWorkers = workers
	}
	for k := range x.parts {
		x.parts[k].pending = map[int]*partClaim{}
		x.parts[k].idx = newIdx(k)
	}
	return x
}

// Claim routes one shard's signatures through the index and fills novel
// (aligned with sigs) with the first-occurrence verdicts. It blocks only
// for the resolution wait — partitions whose in-order prefix has not
// reached this shard yet — and returns that wait separately so callers
// can exclude queueing from cost signals. abort wakes the wait early.
//
// Every shard of the phase must claim every stage exactly once, in shard
// order per partition; empty shards still deposit everywhere so the
// cursors advance.
func (x *partIndex) Claim(shardIdx int, sigs []uint64, novel []bool, abort <-chan struct{}) (time.Duration, error) {
	nparts := len(x.parts)
	sc := &shardClaim{done: make(chan struct{})}
	sc.outstanding.Store(int32(nparts))

	claims := make([]partClaim, nparts)
	var routed []uint64
	var pos []int32
	if nparts == 1 {
		// Single partition: the shard's batch is the claim, no routing.
		claims[0] = partClaim{shard: shardIdx, sigs: sigs, pos: nil, novel: novel, sc: sc}
	} else {
		// Counting-sort the signatures into one backing array per shard:
		// one pass to size the partitions, one to scatter.
		counts := make([]int32, nparts+1)
		for _, s := range sigs {
			counts[(spill.Mix(s)>>x.shift)+1]++
		}
		for k := 1; k <= nparts; k++ {
			counts[k] += counts[k-1]
		}
		routed = make([]uint64, len(sigs))
		pos = make([]int32, len(sigs))
		offs := counts // counts[k] is now the start offset of partition k
		for i, s := range sigs {
			k := spill.Mix(s) >> x.shift
			j := offs[k]
			offs[k]++
			routed[j] = s
			pos[j] = int32(i)
		}
		// offs[k] has advanced to the end of partition k; partition k's
		// slice is routed[end(k-1):end(k)].
		start := int32(0)
		for k := 0; k < nparts; k++ {
			end := offs[k]
			claims[k] = partClaim{
				shard: shardIdx, sigs: routed[start:end], pos: pos[start:end],
				novel: novel, sc: sc,
			}
			start = end
		}
	}
	for k := range claims {
		x.parts[k].deposit(&claims[k])
	}

	var wait time.Duration
	if sc.outstanding.Load() != 0 {
		start := time.Now()
		select {
		case <-sc.done:
		case <-abort:
			return time.Since(start), errAborted
		}
		wait = time.Since(start)
		x.waits.Add(1)
		x.waitNS.Add(int64(wait))
	}
	return wait, sc.failure()
}

// Stats sums spill activity across partitions.
func (x *partIndex) Stats() spill.Stats {
	var st spill.Stats
	for k := range x.parts {
		s := x.parts[k].idx.Stats()
		st.Runs += s.Runs
		st.Bytes += s.Bytes
	}
	return st
}

// Close releases every partition's index, returning the first error.
func (x *partIndex) Close() error {
	var first error
	for k := range x.parts {
		if err := x.parts[k].idx.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitStats reports the blocked claims and their summed resolution wait.
func (x *partIndex) WaitStats() (claims int64, wait time.Duration) {
	return x.waits.Load(), time.Duration(x.waitNS.Load())
}
