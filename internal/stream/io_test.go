package stream

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/format"
	"repro/internal/sample"
)

func buildDataset(n int) *dataset.Dataset {
	var samples []*sample.Sample
	for i := 0; i < n; i++ {
		s := sample.New(strings.Repeat("word ", i%13+1) + "tail")
		s.Meta = s.Meta.Set("idx", i)
		s.Stats.Set("score", float64(i)/2)
		if i%5 == 0 {
			s.Parts = map[string]string{"abstract": "part text"}
		}
		samples = append(samples, s)
	}
	return dataset.New(samples)
}

// drain reads every shard of a source, checking dense ordered indexes.
func drain(t *testing.T, src Source) *dataset.Dataset {
	t.Helper()
	var all []*sample.Sample
	next := 0
	for {
		sh, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if sh.Index != next {
			t.Fatalf("shard index %d, want %d", sh.Index, next)
		}
		next++
		all = append(all, sh.Data.Samples...)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	return dataset.New(all)
}

func assertSameSamples(t *testing.T, got, want *dataset.Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("got %d samples, want %d", got.Len(), want.Len())
	}
	g, w := sampleLines(t, got), sampleLines(t, want)
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("sample %d differs:\ngot:  %s\nwant: %s", i, g[i], w[i])
		}
	}
}

// TestShardedSinkRoundTrip: the streaming reader must read back exactly
// what the sharded streaming writer wrote — order, text, parts, meta and
// stats preserved across the file boundary.
func TestShardedSinkRoundTrip(t *testing.T) {
	want := buildDataset(57)
	prefix := filepath.Join(t.TempDir(), "out", "export")
	sink, err := NewShardedJSONLSink(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Feed uneven shards, including an empty one that must be skipped.
	bounds := []int{0, 10, 10, 25, 57}
	for i := 1; i < len(bounds); i++ {
		if err := sink.Consume(dataset.New(want.Samples[bounds[i-1]:bounds[i]])); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	paths := sink.Paths()
	if len(paths) != 3 {
		t.Fatalf("got %d shard files, want 3 (empty shard skipped): %v", len(paths), paths)
	}
	for i, p := range paths {
		base := filepath.Base(p)
		if want := filepathShardName("export", i, 3); base != want {
			t.Errorf("shard file %d named %q, want %q", i, base, want)
		}
		if _, err := os.Stat(p); err != nil {
			t.Errorf("shard file missing: %v", err)
		}
	}
	// No leftover .part files.
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(prefix), "*.part"))
	if len(leftovers) != 0 {
		t.Fatalf("leftover part files: %v", leftovers)
	}

	src, err := NewJSONLSource(8, paths...)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSamples(t, drain(t, src), want)
}

func filepathShardName(prefix string, i, n int) string {
	return fmt.Sprintf("%s-%05d-of-%05d.jsonl", prefix, i, n)
}

// TestJSONLSourceMatchesBatchLoader: streaming decode must agree with
// format.Load on the same file, including foreign JSONL fields.
func TestJSONLSourceMatchesBatchLoader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.jsonl")
	raw := `{"text": "alpha beta", "source": "web", "meta": {"lang": "en"}}
{"content": "gamma delta epsilon"}

{"text": "zeta", "stats": {"score": 0.5}}
`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := format.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewJSONLSource(2, path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSamples(t, drain(t, src), want)
}

// TestOpenSourceSpecs resolves the spec families.
func TestOpenSourceSpecs(t *testing.T) {
	// hub: generates in memory, then shards through the same adapter.
	src, err := OpenSource("hub:web-en?docs=20&seed=3", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*SampleSource); !ok {
		t.Fatalf("hub spec resolved to %T, want *SampleSource", src)
	}
	if d := drain(t, src); d.Len() != 20 {
		t.Fatalf("hub source yielded %d samples, want 20", d.Len())
	}

	// A .jsonl file streams.
	dir := t.TempDir()
	d := buildDataset(30)
	file := filepath.Join(dir, "a.jsonl")
	if err := d.SaveJSONL(file); err != nil {
		t.Fatal(err)
	}
	src, err = OpenSource(file, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*JSONLSource); !ok {
		t.Fatalf("jsonl file resolved to %T, want *JSONLSource", src)
	}
	assertSameSamples(t, drain(t, src), d)

	// A directory of only .jsonl files streams across all of them.
	if err := dataset.New(d.Samples[:10]).SaveJSONL(filepath.Join(dir, "b.jsonl")); err != nil {
		t.Fatal(err)
	}
	src, err = OpenSource(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*JSONLSource); !ok {
		t.Fatalf("jsonl dir resolved to %T, want *JSONLSource", src)
	}
	if got := drain(t, src); got.Len() != 40 {
		t.Fatalf("dir source yielded %d samples, want 40", got.Len())
	}
}

// TestStreamMatchesBatchAcrossFormats: for gzip-compressed and
// record-oriented inputs (csv/tsv), draining the streaming shard source
// must reproduce the batch loader exactly — the golden contract that
// lets the two backends share multi-format specs.
func TestStreamMatchesBatchAcrossFormats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	gzwrite := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if _, err := zw.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	specs := []string{
		write("a.csv", "text,tag\nrow one,x\n\"quoted, cell\",y\nrow three,z\n"),
		write("b.tsv", "text\tscore\nfirst\t1\nsecond\t2\n"),
		gzwrite("c.jsonl.gz", "{\"text\":\"zipped one\"}\n{\"text\":\"zipped two\",\"meta\":{\"k\":\"v\"}}\n"),
		gzwrite("d.csv.gz", "text,lang\ncompressed csv,en\n"),
	}
	for _, spec := range specs {
		want, err := format.Load(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		src, err := OpenSource(spec, 2)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		assertSameSamples(t, drain(t, src), want)
	}
}

// TestOpenSourceMixSpec: a mix: spec shards the interleaved stream.
func TestOpenSourceMixSpec(t *testing.T) {
	dir := t.TempDir()
	d := buildDataset(12)
	file := filepath.Join(dir, "a.jsonl")
	if err := d.SaveJSONL(file); err != nil {
		t.Fatal(err)
	}
	spec := "mix:" + file + "@2,hub:wiki?docs=6&seed=9@1"
	want, err := format.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSamples(t, drain(t, src), want)
}

// TestDatasetSourceSharding checks shard boundaries and sample aliasing.
func TestDatasetSourceSharding(t *testing.T) {
	d := buildDataset(10)
	src, err := NewDatasetSource(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{}
	for {
		sh, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, sh.Data.Len())
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("shard sizes = %v, want [4 4 2]", sizes)
	}
	if _, err := NewDatasetSource(d, 0); err == nil {
		t.Fatal("zero shard size should error")
	}
}

// TestShardedSinkReplacesPreviousGeneration: re-exporting under the
// same prefix with a different shard count must not leave stale files
// (or orphaned .part files from a crashed run) behind the glob.
func TestShardedSinkReplacesPreviousGeneration(t *testing.T) {
	d := buildDataset(30)
	prefix := filepath.Join(t.TempDir(), "out")

	writeGen := func(shards int) {
		t.Helper()
		sink, err := NewShardedJSONLSink(prefix)
		if err != nil {
			t.Fatal(err)
		}
		per := (d.Len() + shards - 1) / shards
		for lo := 0; lo < d.Len(); lo += per {
			hi := lo + per
			if hi > d.Len() {
				hi = d.Len()
			}
			if err := sink.Consume(dataset.New(d.Samples[lo:hi])); err != nil {
				t.Fatal(err)
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}

	writeGen(5)
	// Simulate a crashed run's orphan.
	orphan := prefix + "-00099.jsonl.part"
	if err := os.WriteFile(orphan, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeGen(2)

	got, err := filepath.Glob(prefix + "-*")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		prefix + "-00000-of-00002.jsonl",
		prefix + "-00001-of-00002.jsonl",
	}
	if len(got) != len(want) {
		t.Fatalf("after re-export, files = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file %d = %q, want %q", i, got[i], want[i])
		}
	}
}
