package stream

import (
	"fmt"
	"path/filepath"

	"repro/internal/cache"
	"repro/internal/spill"
)

// sigIndex is the signature membership set behind one partition of a
// shared-index dedup stage. AddBatch sets novel[i] true where sigs[i] is
// the first occurrence the index has seen (a signature repeated within
// the batch keeps only its first slot). Implementations need no internal
// locking: the partition's mutex already serializes batches through the
// index in stream order (see sigpart.go).
type sigIndex interface {
	AddBatch(sigs []uint64, novel []bool) error
	// Stats reports spill activity (zero for in-memory indexes).
	Stats() spill.Stats
	// Close releases the index, removing any spill files.
	Close() error
}

// memSigIndex is the in-memory index: a plain signature set, the
// behavior every run had before spilling existed.
type memSigIndex struct {
	seen map[uint64]struct{}
}

func newMemSigIndex() *memSigIndex {
	return &memSigIndex{seen: map[uint64]struct{}{}}
}

func (m *memSigIndex) AddBatch(sigs []uint64, novel []bool) error {
	for i, s := range sigs {
		if _, dup := m.seen[s]; dup {
			novel[i] = false
			continue
		}
		m.seen[s] = struct{}{}
		novel[i] = true
	}
	return nil
}

func (m *memSigIndex) Stats() spill.Stats { return spill.Stats{} }
func (m *memSigIndex) Close() error       { return nil }

// newSigIndex picks the membership structure behind one partition of a
// shared-index stage: when the planner assigned the stage's op a spill
// budget (its share of -target-mem-mb) and the recipe has a work dir,
// the partition gets a disk-backed LSM set of internal/spill bounded by
// an equal split of that budget; otherwise the plain map.
// phaseIdx/stageIdx/part keep concurrent partitions' spill directories
// disjoint.
func (e *Engine) newSigIndex(phaseIdx, stageIdx, part, partitions int, st stage) sigIndex {
	if st.spillBudget > 0 && e.recipe.WorkDir != "" {
		dir := filepath.Join(cache.SpillDir(e.recipe.WorkDir, e.recipe.UseCache),
			fmt.Sprintf("sigidx-p%d-s%d-k%d", phaseIdx, stageIdx, part))
		budget := st.spillBudget / int64(partitions)
		if budget < 1 {
			budget = 1
		}
		return spill.NewDiskSet(dir, budget)
	}
	return newMemSigIndex()
}
