package stream

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/format"
	_ "repro/internal/ops/all"
	"repro/internal/telemetry"
)

// journalRun executes the equivalence recipe on one backend with a
// telemetry run journaling into memory, and returns the decoded events.
func journalRun(t *testing.T, backend, input, workDir string) []telemetry.Event {
	t.Helper()
	recipe := mustRecipe(t, equivalenceRecipe)
	recipe.WorkDir = workDir
	var buf bytes.Buffer
	tele, err := telemetry.NewRun(telemetry.RunOptions{JournalWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	tele.Begin(backend, "equivalence", input, 0)
	switch backend {
	case "batch":
		exec, err := core.NewExecutor(recipe)
		if err != nil {
			t.Fatal(err)
		}
		exec.EnableTelemetry(tele)
		d, err := format.Load(input)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := exec.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		tele.End("ok", d.Len(), out.Len(), nil, nil)
	case "stream":
		eng, err := New(recipe, Options{ShardSize: 16, Telemetry: tele})
		if err != nil {
			t.Fatal(err)
		}
		src, err := OpenSource(input, 16)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(src, DiscardSink{})
		if err != nil {
			t.Fatal(err)
		}
		tele.End("ok", rep.InCount, rep.OutCount, nil, nil)
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatalf("%s journal invalid: %v", backend, err)
	}
	return events
}

// opFlow sums per-op in/out across op_complete and cache_hit events —
// the journal's view of how many samples entered and survived each op.
func opFlow(events []telemetry.Event) map[string][2]int64 {
	flow := map[string][2]int64{}
	for _, e := range events {
		if e.Type != telemetry.EvOpComplete && e.Type != telemetry.EvCacheHit {
			continue
		}
		f := flow[e.Name]
		f[0] += e.In
		f[1] += e.Out
		flow[e.Name] = f
	}
	return flow
}

// TestJournalCrossBackendConformance runs the same recipe over the same
// input on both backends and asserts their journals agree on per-op
// sample flow: the batch executor applies each op once over the whole
// dataset, the streaming engine applies it per shard, but the summed
// in/out counts per operator must be identical.
func TestJournalCrossBackendConformance(t *testing.T) {
	input, _ := corpusWithDupes(t, 120)
	batch := journalRun(t, "batch", input, t.TempDir())
	streamEv := journalRun(t, "stream", input, t.TempDir())

	bFlow, sFlow := opFlow(batch), opFlow(streamEv)
	if len(bFlow) == 0 {
		t.Fatal("batch journal has no op events")
	}
	for name, bf := range bFlow {
		sf, ok := sFlow[name]
		if !ok {
			t.Errorf("op %q journaled by batch but not by stream", name)
			continue
		}
		if bf != sf {
			t.Errorf("op %q flow disagrees: batch %d -> %d, stream %d -> %d",
				name, bf[0], bf[1], sf[0], sf[1])
		}
	}
	for name := range sFlow {
		if _, ok := bFlow[name]; !ok {
			t.Errorf("op %q journaled by stream but not by batch", name)
		}
	}

	// Both journals must reconstruct into timelines with the same final
	// counts and plan size.
	bt, err := telemetry.BuildTimeline(batch)
	if err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.BuildTimeline(streamEv)
	if err != nil {
		t.Fatal(err)
	}
	if bt.In != st.In || bt.Out != st.Out {
		t.Errorf("run totals disagree: batch %d -> %d, stream %d -> %d",
			bt.In, bt.Out, st.In, st.Out)
	}
	if len(bt.Ops) != len(st.Ops) {
		t.Errorf("timeline op counts disagree: batch %d, stream %d", len(bt.Ops), len(st.Ops))
	}
}

// TestStreamJournalShape checks the streaming-specific event structure:
// shard spans carry their phase parentage and per-op completions point
// at shard spans.
func TestStreamJournalShape(t *testing.T) {
	input, _ := corpusWithDupes(t, 60)
	events := journalRun(t, "stream", input, t.TempDir())

	spans := map[int64]string{} // span -> kind ("" until span_end seen)
	var phaseSpans, shardEnds, opCompletes int
	for _, e := range events {
		switch e.Type {
		case telemetry.EvPhase:
			phaseSpans++
			spans[e.Span] = "phase"
		case telemetry.EvSpanEnd:
			if e.Kind == "shard" {
				shardEnds++
				if _, ok := spans[e.Parent]; !ok {
					t.Errorf("shard span %d has unknown parent %d", e.Span, e.Parent)
				}
			}
		case telemetry.EvOpComplete:
			opCompletes++
		}
	}
	// The equivalence recipe is fully shard-local/shared-index: exactly
	// one phase, every shard span parented to it.
	if phaseSpans != 1 {
		t.Errorf("expected 1 phase, got %d", phaseSpans)
	}
	if shardEnds == 0 || opCompletes == 0 {
		t.Errorf("missing shard spans (%d) or op completions (%d)", shardEnds, opCompletes)
	}
}
