package stream

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// ShardStat records one shard's trip through one phase of the plan.
type ShardStat struct {
	// Phase is the pipeline segment (0 until the first barrier, then 1, …).
	Phase int
	// Index is the shard's position within its phase.
	Index int
	In    int
	Out   int
	// Duration is the shard's processing wall time in this phase.
	Duration time.Duration
	// CacheHit reports that the shard's leading operator run was resumed
	// from the shard cache instead of recomputed.
	CacheHit bool
}

// Report summarizes one streaming run: the per-shard statistics merged
// into per-operator aggregates comparable with the batch core.Report.
type Report struct {
	// OpStats holds one aggregated entry per planned op, in plan order.
	// InCount/OutCount sum over shards; Duration sums shard processing
	// time (CPU time, not wall time); CacheHit is set when every shard's
	// result for the op came from the shard cache.
	OpStats []core.OpStat
	// Shards holds the per-shard, per-phase statistics.
	Shards []ShardStat
	// ShardCount is the number of shards read from the source.
	ShardCount int
	// InCount / OutCount are the total samples read and emitted.
	InCount, OutCount int
	// ResumedShards counts shard runs satisfied by the shard cache.
	ResumedShards int
	// PlanSize is the number of planned ops.
	PlanSize int
	// Total is the end-to-end wall time.
	Total time.Duration
	// Metrics is the adaptive controller's self-report (nil when the
	// engine ran with fixed parameters).
	Metrics *Metrics
	// Dist is the worker fleet's statistics (nil for in-process runs).
	Dist *dist.RunStats
}

// Merge folds another report into this one. Merging is associative and
// commutative in every aggregate — counts and durations sum, per-op
// entries match by plan index and fused members by name, Total takes
// the max (partial reports describe overlapping wall time), ShardCount
// and ResumedShards sum, and Dist merges through dist.RunStats.Merge.
// The receiver owns all merged state afterwards; o is not mutated.
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	if len(r.OpStats) < len(o.OpStats) {
		grown := make([]core.OpStat, len(o.OpStats))
		copy(grown, r.OpStats)
		r.OpStats = grown
		r.PlanSize = o.PlanSize
	}
	for i := range o.OpStats {
		os := &o.OpStats[i]
		rs := &r.OpStats[i]
		if rs.Name == "" {
			rs.Name = os.Name
			rs.PlanIndex = os.PlanIndex
			rs.CacheHit = os.CacheHit
		} else {
			rs.CacheHit = rs.CacheHit && os.CacheHit
		}
		rs.InCount += os.InCount
		rs.OutCount += os.OutCount
		rs.Duration += os.Duration
		if os.Workers > rs.Workers {
			rs.Workers = os.Workers
		}
		rs.Members = mergeMembers(rs.Members, os.Members)
	}
	r.Shards = append(r.Shards, o.Shards...)
	r.ShardCount += o.ShardCount
	r.InCount += o.InCount
	r.OutCount += o.OutCount
	r.ResumedShards += o.ResumedShards
	if o.Total > r.Total {
		r.Total = o.Total
	}
	if r.Metrics == nil {
		r.Metrics = o.Metrics
	}
	if o.Dist != nil {
		if r.Dist == nil {
			r.Dist = &dist.RunStats{}
		}
		r.Dist.Merge(*o.Dist)
	}
}

// mergeMembers sums fused-member attribution by name without mutating
// either input slice's backing array beyond the receiver's copy.
func mergeMembers(dst, src []plan.MemberStat) []plan.MemberStat {
	if len(src) == 0 {
		return dst
	}
	out := append([]plan.MemberStat(nil), dst...)
	for _, m := range src {
		found := false
		for j := range out {
			if out[j].Name == m.Name {
				out[j].In += m.In
				out[j].Out += m.Out
				out[j].Samples += m.Samples
				out[j].Duration += m.Duration
				found = true
				break
			}
		}
		if !found {
			out = append(out, m)
		}
	}
	return out
}

// Summary renders the report in the style of the batch CLI output. The
// per-op table comes from the shared telemetry renderer, so both
// backends print the identical format from one piece of code.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streamed: %d -> %d samples in %s (%d planned ops, %d shards",
		r.InCount, r.OutCount, r.Total.Round(time.Millisecond), r.PlanSize, r.ShardCount)
	if r.ResumedShards > 0 {
		fmt.Fprintf(&b, ", %d resumed from cache", r.ResumedShards)
	}
	b.WriteString(")\n")
	b.WriteString(telemetry.FormatOpTable(core.TelemetryRows(r.OpStats)))
	b.WriteString(r.Metrics.Summary())
	b.WriteString(r.DistSummary())
	return b.String()
}

// DistSummary renders the worker-fleet section of the summary (empty
// for in-process runs).
func (r *Report) DistSummary() string {
	d := r.Dist
	if d == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "distributed: %d workers, %d retries, %d steals, %d in-process fallbacks\n",
		len(d.Workers), d.Retries, d.Steals, d.Fallbacks)
	for _, w := range d.Workers {
		flag := ""
		if w.Dead {
			flag = " DEAD"
		}
		fmt.Fprintf(&b, "  w%-2d %-21s %d stages, %d steals, %d retries%s\n",
			w.Worker, w.Addr, w.Stages, w.Steals, w.Retries, flag)
	}
	if d.BytesSent > 0 || d.BytesRecv > 0 {
		ratio := 1.0
		if d.BytesSent+d.BytesRecv > 0 {
			ratio = float64(d.RawBytesSent+d.RawBytesRecv) / float64(d.BytesSent+d.BytesRecv)
		}
		fmt.Fprintf(&b, "  wire: %.1f MiB sent, %.1f MiB recv (%.2fx vs raw)",
			float64(d.BytesSent)/(1<<20), float64(d.BytesRecv)/(1<<20), ratio)
		if d.DeltaStages > 0 {
			fmt.Fprintf(&b, ", %d delta stages", d.DeltaStages)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// aggregator merges concurrent per-shard observations into the report.
// Next to the report aggregates it keeps an executed-only view: shards
// satisfied by the shard cache contribute their counts to the report
// (the data did flow) but not to the executed view, whose durations are
// real execution cost — the only thing profile persistence may fold
// into the sidecar. Without the split, a partially cache-resumed run
// would average near-zero cache-read durations into an op's measured
// cost and the planner would order an expensive filter as if free.
type aggregator struct {
	mu     sync.Mutex
	stats  []core.OpStat
	exec   []core.OpStat
	misses []int // per op: shards that executed it without a cache hit
	hits   []int
	report *Report
}

func newAggregator(p *plan.Plan) *aggregator {
	a := &aggregator{
		stats:  make([]core.OpStat, len(p.Nodes)),
		exec:   make([]core.OpStat, len(p.Nodes)),
		misses: make([]int, len(p.Nodes)),
		hits:   make([]int, len(p.Nodes)),
		report: &Report{PlanSize: len(p.Nodes)},
	}
	for i := range p.Nodes {
		a.stats[i].Name = p.Nodes[i].Op.Name()
		a.stats[i].PlanIndex = i
		a.exec[i].Name = p.Nodes[i].Op.Name()
		a.exec[i].PlanIndex = i
		a.exec[i].Workers = 1
	}
	return a
}

// addOp folds one shard's pass through plan op i into the aggregate.
// dur lands in the report; execDur — the portion that is real execution
// work (runIndex excludes its index resolution wait, every other caller
// passes dur) — lands in the executed view. The two worker counts serve
// the two views: workers is the parallelism the op actually ran under
// (1 for shard-local work, the partitioned index's probe parallelism for
// shared-index work, the full pool for a barrier op) and is reported;
// execWorkers is the parallelism the executed duration was measured
// under (1 wherever durations are per-goroutine CPU sums) — it
// normalizes the executed view's durations to CPU time for profile
// persistence.
func (a *aggregator) addOp(i, in, out int, dur, execDur time.Duration, cacheHit bool, workers, execWorkers int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats[i].InCount += in
	a.stats[i].OutCount += out
	a.stats[i].Duration += dur
	if workers > a.stats[i].Workers {
		a.stats[i].Workers = workers
	}
	if cacheHit {
		a.hits[i]++
	} else {
		a.misses[i]++
		a.exec[i].InCount += in
		a.exec[i].OutCount += out
		a.exec[i].Duration += execDur
		if execWorkers > a.exec[i].Workers {
			a.exec[i].Workers = execWorkers
		}
	}
}

// execStats returns the executed-only aggregates (for PersistProfiles).
func (a *aggregator) execStats() []core.OpStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.exec
}

// addShard records one shard's phase trip.
func (a *aggregator) addShard(st ShardStat) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.report.Shards = append(a.report.Shards, st)
	if st.CacheHit {
		a.report.ResumedShards++
	}
}

// finish seals the report.
func (a *aggregator) finish(shardCount, in, out int, total time.Duration) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.stats {
		a.stats[i].CacheHit = a.hits[i] > 0 && a.misses[i] == 0
	}
	a.report.OpStats = a.stats
	a.report.ShardCount = shardCount
	a.report.InCount = in
	a.report.OutCount = out
	a.report.Total = total
	return a.report
}
