package stream

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
)

// ShardStat records one shard's trip through one phase of the plan.
type ShardStat struct {
	// Phase is the pipeline segment (0 until the first barrier, then 1, …).
	Phase int
	// Index is the shard's position within its phase.
	Index int
	In    int
	Out   int
	// Duration is the shard's processing wall time in this phase.
	Duration time.Duration
	// CacheHit reports that the shard's leading operator run was resumed
	// from the shard cache instead of recomputed.
	CacheHit bool
}

// Report summarizes one streaming run: the per-shard statistics merged
// into per-operator aggregates comparable with the batch core.Report.
type Report struct {
	// OpStats holds one aggregated entry per planned op, in plan order.
	// InCount/OutCount sum over shards; Duration sums shard processing
	// time (CPU time, not wall time); CacheHit is set when every shard's
	// result for the op came from the shard cache.
	OpStats []core.OpStat
	// Shards holds the per-shard, per-phase statistics.
	Shards []ShardStat
	// ShardCount is the number of shards read from the source.
	ShardCount int
	// InCount / OutCount are the total samples read and emitted.
	InCount, OutCount int
	// ResumedShards counts shard runs satisfied by the shard cache.
	ResumedShards int
	// PlanSize is the number of planned ops.
	PlanSize int
	// Total is the end-to-end wall time.
	Total time.Duration
	// Metrics is the adaptive controller's self-report (nil when the
	// engine ran with fixed parameters).
	Metrics *Metrics
}

// Summary renders the report in the style of the batch CLI output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streamed: %d -> %d samples in %s (%d planned ops, %d shards",
		r.InCount, r.OutCount, r.Total.Round(time.Millisecond), r.PlanSize, r.ShardCount)
	if r.ResumedShards > 0 {
		fmt.Fprintf(&b, ", %d resumed from cache", r.ResumedShards)
	}
	b.WriteString(")\n")
	for _, st := range r.OpStats {
		marker := ""
		if st.CacheHit {
			marker = " [cache]"
		}
		fmt.Fprintf(&b, "  %-44s %7d -> %-7d %10s%s\n", st.Name, st.InCount, st.OutCount,
			st.Duration.Round(100*time.Microsecond), marker)
	}
	b.WriteString(r.Metrics.Summary())
	return b.String()
}

// aggregator merges concurrent per-shard observations into the report.
type aggregator struct {
	mu     sync.Mutex
	stats  []core.OpStat
	misses []int // per op: shards that executed it without a cache hit
	hits   []int
	report *Report
}

func newAggregator(plan []ops.OP) *aggregator {
	a := &aggregator{
		stats:  make([]core.OpStat, len(plan)),
		misses: make([]int, len(plan)),
		hits:   make([]int, len(plan)),
		report: &Report{PlanSize: len(plan)},
	}
	for i, op := range plan {
		a.stats[i].Name = op.Name()
	}
	return a
}

// addOp folds one shard's pass through plan op i into the aggregate.
func (a *aggregator) addOp(i, in, out int, dur time.Duration, cacheHit bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats[i].InCount += in
	a.stats[i].OutCount += out
	a.stats[i].Duration += dur
	if cacheHit {
		a.hits[i]++
	} else {
		a.misses[i]++
	}
}

// addShard records one shard's phase trip.
func (a *aggregator) addShard(st ShardStat) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.report.Shards = append(a.report.Shards, st)
	if st.CacheHit {
		a.report.ResumedShards++
	}
}

// finish seals the report.
func (a *aggregator) finish(shardCount, in, out int, total time.Duration) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.stats {
		a.stats[i].CacheHit = a.hits[i] > 0 && a.misses[i] == 0
	}
	a.report.OpStats = a.stats
	a.report.ShardCount = shardCount
	a.report.InCount = in
	a.report.OutCount = out
	a.report.Total = total
	return a.report
}
