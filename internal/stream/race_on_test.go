//go:build race

package stream

// raceDetectorEnabled reports that this test binary was built with the
// race detector, which inflates allocation counts.
func init() { raceDetectorEnabled = true }
