package stream

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/ops"
	"repro/internal/plan"
)

// This file is the adaptive runtime controller: the piece that closes the
// loop between the engine's live measurements and the internal/dist cost
// model. The engine feeds it per-op observations (via core.OpObserver),
// source reads, and sink writes; every decision generation — a fixed
// number of emitted shards — the controller re-plans and the engine
// applies the verdict: the worker pool is resized, the source's shard
// size is changed, and the in-flight gate (backpressure) is re-limited.

// DefaultGeneration is the number of emitted shards between re-plans.
const DefaultGeneration = 8

// DecisionRecord is one applied controller decision. The JSON form
// appears in /progress snapshots.
type DecisionRecord struct {
	// AfterShards is how many shards had been emitted when the decision
	// was taken.
	AfterShards int `json:"after_shards"`
	Workers     int `json:"workers"`
	ShardSize   int `json:"shard_size"`
	MaxInFlight int `json:"max_in_flight"`
	// Why carries the cost-model inputs behind the verdict.
	Why string `json:"why,omitempty"`
}

// Metrics is the controller's self-report, merged into stream.Report.
// The JSON form is the adaptive section of /progress snapshots.
type Metrics struct {
	// Adaptive reports whether the controller was active.
	Adaptive bool `json:"adaptive"`
	// Workers / ShardSize / MaxInFlight are the final decision in force.
	Workers     int `json:"workers"`
	ShardSize   int `json:"shard_size"`
	MaxInFlight int `json:"max_in_flight"`
	// Generations counts re-planning rounds; Resizes counts the rounds
	// that changed at least one knob.
	Generations int `json:"generations"`
	Resizes     int `json:"resizes"`
	// Decisions lists every applied change, in order.
	Decisions []DecisionRecord `json:"decisions,omitempty"`
	// BackpressureWaits counts source reads that blocked on the in-flight
	// gate; BackpressureWait is their summed wall time.
	BackpressureWaits int           `json:"backpressure_waits,omitempty"`
	BackpressureWait  time.Duration `json:"backpressure_wait_ns,omitempty"`
	// Profiles is the final live cost profile, in plan order.
	Profiles []dist.OpProfile `json:"profiles,omitempty"`
}

// Summary renders the metrics in the CLI report style.
func (m *Metrics) Summary() string {
	if m == nil || !m.Adaptive {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive: workers=%d shard=%d in-flight<=%d (%d generations, %d resizes",
		m.Workers, m.ShardSize, m.MaxInFlight, m.Generations, m.Resizes)
	if m.BackpressureWaits > 0 {
		fmt.Fprintf(&b, ", backpressure %d waits/%s",
			m.BackpressureWaits, m.BackpressureWait.Round(time.Millisecond))
	}
	b.WriteString(")\n")
	for _, d := range m.Decisions {
		fmt.Fprintf(&b, "  shard %4d: workers=%d shard=%d in-flight<=%d  %s\n",
			d.AfterShards, d.Workers, d.ShardSize, d.MaxInFlight, d.Why)
	}
	return b.String()
}

// Controller adapts the engine's execution parameters from live
// measurements. It is safe for concurrent use; observations arrive from
// shard workers, decisions are taken on the emitter goroutine.
type Controller struct {
	model      *dist.OnlineModel
	tuning     dist.Tuning
	generation int

	// planIdx / planName / serial are immutable after newController and
	// read lock-free from shard workers.
	planIdx  map[ops.OP]int
	planName map[ops.OP]string
	serial   map[int]bool // plan indexes of barrier (once-per-phase) ops

	mu       sync.Mutex
	dec      dist.Decision
	emitted  int
	lastPlan int
	records  []DecisionRecord
	resizes  int
	gens     int

	bpMu    sync.Mutex
	bpWaits int
	bpWait  time.Duration
}

// newController builds a controller over the given physical plan with
// the initial decision in force until the first measurements arrive.
// Planner-placed barrier ops are recorded as serial: their cost is
// once-per-phase, not per-shard.
func newController(p *plan.Plan, initial dist.Decision, t dist.Tuning, generation int) *Controller {
	if generation <= 0 {
		generation = DefaultGeneration
	}
	c := &Controller{
		model:      dist.NewOnlineModel(0),
		tuning:     t,
		generation: generation,
		planIdx:    make(map[ops.OP]int, len(p.Nodes)),
		planName:   make(map[ops.OP]string, len(p.Nodes)),
		serial:     make(map[int]bool),
		dec:        initial,
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		c.planIdx[n.Op] = i
		c.planName[n.Op] = n.Op.Name()
		if n.Capability == plan.Barrier {
			c.serial[i] = true
		}
	}
	return c
}

// ObserveOp implements core.OpObserver: every operator application the
// shared runner performs — shard-local runs and barrier ops alike — lands
// in the online model under its plan position. planIdx/planName are
// immutable after construction, so this hot path takes no lock.
func (c *Controller) ObserveOp(o core.OpObservation) {
	seq, ok := c.planIdx[o.Op]
	if !ok {
		return // not a planned op (e.g. a nested member of a fused op)
	}
	name := c.planName[o.Op]
	c.model.RecordOp(dist.OpSample{
		Seq: seq, Name: name, In: o.In, Out: o.Out, Bytes: o.Bytes, Duration: o.Duration,
		Serial: c.serial[seq],
	})
}

// observeIndexOp records a shared-index dedup pass, which bypasses the
// runner. dur must exclude index resolution wait time — queueing is not
// work. partitions is the stage's index partition count: the model folds
// it in as the op's parallelism ceiling, so the worker plan knows index
// work spreads across at most that many probes (under the turnstile this
// ceiling was an implicit, and unmodeled, 1).
func (c *Controller) observeIndexOp(op ops.OP, in, out int, bytes int64, dur time.Duration, partitions int) {
	seq, ok := c.planIdx[op]
	if !ok {
		return
	}
	c.model.RecordOp(dist.OpSample{
		Seq: seq, Name: c.planName[op], In: in, Out: out, Bytes: bytes, Duration: dur,
		Serial: c.serial[seq], MaxParallel: partitions,
	})
}

// ObserveSource records one source read.
func (c *Controller) ObserveSource(samples int, bytes int64, dur time.Duration) {
	c.model.RecordSource(samples, bytes, dur)
}

// ObserveSink records one sink write.
func (c *Controller) ObserveSink(samples int, dur time.Duration) {
	c.model.RecordSink(samples, dur)
}

// observeBackpressure accumulates one blocked source read.
func (c *Controller) observeBackpressure(dur time.Duration) {
	c.bpMu.Lock()
	c.bpWaits++
	c.bpWait += dur
	c.bpMu.Unlock()
}

// ShardSize returns the shard size currently in force.
func (c *Controller) ShardSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dec.ShardSize
}

// Decision returns the decision currently in force.
func (c *Controller) Decision() dist.Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dec
}

// shardEmitted advances the emitted-shard count and, at each generation
// boundary, consults the cost model. It returns the decision in force and
// whether it changed (the engine then resizes the pool and gate).
func (c *Controller) shardEmitted() (dist.Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emitted++
	if c.emitted-c.lastPlan < c.generation {
		return c.dec, false
	}
	c.lastPlan = c.emitted
	c.gens++
	next, ok := c.model.Plan(c.tuning, c.dec)
	if !ok {
		return c.dec, false
	}
	changed := next.Workers != c.dec.Workers ||
		next.ShardSize != c.dec.ShardSize ||
		next.MaxInFlight != c.dec.MaxInFlight
	c.dec = next
	if changed {
		c.resizes++
		c.records = append(c.records, DecisionRecord{
			AfterShards: c.emitted, Workers: next.Workers,
			ShardSize: next.ShardSize, MaxInFlight: next.MaxInFlight, Why: next.Why,
		})
	}
	return c.dec, changed
}

// metrics seals the controller's self-report.
func (c *Controller) metrics() *Metrics {
	c.mu.Lock()
	dec := c.dec
	gens := c.gens
	resizes := c.resizes
	records := append([]DecisionRecord(nil), c.records...)
	c.mu.Unlock()
	c.bpMu.Lock()
	waits, wait := c.bpWaits, c.bpWait
	c.bpMu.Unlock()
	return &Metrics{
		Adaptive:          true,
		Workers:           dec.Workers,
		ShardSize:         dec.ShardSize,
		MaxInFlight:       dec.MaxInFlight,
		Generations:       gens,
		Resizes:           resizes,
		Decisions:         records,
		BackpressureWaits: waits,
		BackpressureWait:  wait,
		Profiles:          c.model.Profiles(),
	}
}

// gate bounds the shards in flight — processing, queued, or waiting for
// ordered emission. Unlike a semaphore channel, its limit can move while
// acquirers wait, which is how the controller applies backpressure: the
// source blocks in acquire until the emitter releases slots or the limit
// rises.
type gate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	limit    int
	inflight int
	closed   bool
}

func newGate(limit int) *gate {
	if limit < 1 {
		limit = 1
	}
	g := &gate{limit: limit}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until a slot is free (or the gate closes — then false).
// blocked, when non-nil, receives the time spent waiting if the call had
// to wait at all.
func (g *gate) acquire(blocked func(time.Duration)) bool {
	g.mu.Lock()
	waited := false
	var start time.Time
	for g.inflight >= g.limit && !g.closed {
		if !waited {
			waited = true
			start = time.Now()
		}
		g.cond.Wait()
	}
	if waited && blocked != nil {
		blocked(time.Since(start))
	}
	if g.closed {
		g.mu.Unlock()
		return false
	}
	g.inflight++
	g.mu.Unlock()
	return true
}

// release frees one slot.
func (g *gate) release() {
	g.mu.Lock()
	g.inflight--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// setLimit moves the in-flight bound; raising it wakes waiting acquirers.
func (g *gate) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.limit = n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// close aborts the gate: every current and future acquire returns false.
func (g *gate) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// pool is a resizable worker pool draining one work channel. Grow spawns
// workers immediately; shrink retires workers after they finish their
// current shard — no shard is ever abandoned mid-flight.
type pool struct {
	work <-chan *Shard
	run  func(*Shard)

	mu       sync.Mutex
	cond     *sync.Cond
	alive    int
	target   int
	draining bool
}

func newPool(work <-chan *Shard, run func(*Shard)) *pool {
	p := &pool{work: work, run: run}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// resize moves the pool toward n workers. Once wait has observed the pool
// empty, further resizes adjust only the target — a drained pool never
// restarts.
func (p *pool) resize(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.target = n
	if !p.draining {
		for p.alive < n {
			p.alive++
			go p.worker()
		}
	}
	p.mu.Unlock()
}

// size returns the current number of live workers.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// exitLocked retires the calling worker; p.mu must be held and is
// released.
func (p *pool) exitLocked() {
	p.alive--
	if p.alive == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *pool) worker() {
	for sh := range p.work {
		p.run(sh)
		p.mu.Lock()
		if p.alive > p.target {
			p.exitLocked()
			return
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.exitLocked()
}

// wait blocks until every worker has exited (the work channel must be
// closed first, or every worker shrunk away).
func (p *pool) wait() {
	p.mu.Lock()
	for p.alive > 0 {
		p.cond.Wait()
	}
	p.draining = true
	p.mu.Unlock()
}
