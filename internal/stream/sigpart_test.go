package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// raceDetectorEnabled is set by race_on_test.go when the race detector
// is active (alloc-count pins are skipped there).
var raceDetectorEnabled bool

func TestResolvePartitions(t *testing.T) {
	cases := []struct {
		configured, workers, want int
	}{
		{0, 1, 1},
		{0, 4, 4},
		{0, 6, 8}, // auto rounds up to a power of two
		{0, 0, 1}, // no hint at all
		{1, 8, 1}, // explicit serial wins over the hint
		{3, 8, 4}, // explicit values round up too
		{8, 2, 8}, // explicit values ignore the hint
		{100000, 8, maxIndexPartitions},
		{-5, 3, 4},
	}
	for _, c := range cases {
		if got := resolvePartitions(c.configured, c.workers); got != c.want {
			t.Errorf("resolvePartitions(%d, %d) = %d, want %d",
				c.configured, c.workers, got, c.want)
		}
	}
}

// TestPartIndexStress hammers the partitioned index with concurrent
// shards over a duplicate-heavy signature stream and checks every
// verdict against a serial first-occurrence reference. Run under -race
// this doubles as the data-race proof for the deposit/apply/scatter
// protocol.
func TestPartIndexStress(t *testing.T) {
	const (
		shards     = 64
		batch      = 257 // odd, so batches straddle partition boundaries unevenly
		sigSpace   = 700 // far fewer distinct sigs than shards*batch: heavy dups
		goroutines = 8
	)
	rng := rand.New(rand.NewSource(42))
	sigs := make([][]uint64, shards)
	for s := range sigs {
		sigs[s] = make([]uint64, batch)
		for i := range sigs[s] {
			sigs[s][i] = uint64(rng.Intn(sigSpace)) * 0x9e3779b9 // clustered keys
		}
	}

	// Serial reference: first occurrence in (shard, position) order.
	want := make([][]bool, shards)
	seen := map[uint64]struct{}{}
	for s := range sigs {
		want[s] = make([]bool, batch)
		for i, sig := range sigs[s] {
			if _, dup := seen[sig]; !dup {
				seen[sig] = struct{}{}
				want[s][i] = true
			}
		}
	}

	for _, partitions := range []int{1, 2, 8, 16} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			x := newPartIndex(partitions, goroutines, func(int) sigIndex { return newMemSigIndex() })
			got := make([][]bool, shards)
			abort := make(chan struct{})
			work := make(chan int)
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for s := range work {
						novel := make([]bool, batch)
						if _, err := x.Claim(s, sigs[s], novel, abort); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
						got[s] = novel
					}
				}()
			}
			for s := 0; s < shards; s++ {
				work <- s
			}
			close(work)
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			for s := range want {
				for i := range want[s] {
					if got[s][i] != want[s][i] {
						t.Fatalf("partitions=%d shard %d pos %d: novel=%v, want %v",
							partitions, s, i, got[s][i], want[s][i])
					}
				}
			}
			if claims, wait := x.WaitStats(); claims < 0 || wait < 0 {
				t.Fatalf("negative wait stats: %d claims, %v", claims, wait)
			}
			if err := x.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartIndexAbort: a shard blocked on an earlier shard that never
// deposits must be woken by the abort channel, not hang the pool.
func TestPartIndexAbort(t *testing.T) {
	x := newPartIndex(2, 2, func(int) sigIndex { return newMemSigIndex() })
	abort := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		novel := make([]bool, 2)
		_, err := x.Claim(1, []uint64{1, 2}, novel, abort) // shard 0 never claims
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("claim resolved without its predecessor: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(abort)
	select {
	case err := <-errc:
		if err != errAborted {
			t.Fatalf("aborted claim returned %v, want errAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborted claim never returned")
	}
}

// TestPartIndexClaimAllocs pins the claim path's allocation budget: one
// shard batch costs a constant handful of allocations (claim bookkeeping
// and the routing arrays), nothing per sample. Warm rounds reuse the
// same signatures so the in-memory set stops growing.
func TestPartIndexClaimAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pinning is not meaningful in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("alloc counts shift under the race detector")
	}
	const batch = 4096
	sigs := make([]uint64, batch)
	for i := range sigs {
		sigs[i] = uint64(i % 512)
	}
	novel := make([]bool, batch)
	abort := make(chan struct{})
	x := newPartIndex(8, 8, func(int) sigIndex { return newMemSigIndex() })
	shard := 0
	x.Claim(shard, sigs, novel, abort) // warm: populate the set
	shard++
	got := testing.AllocsPerRun(100, func() {
		x.Claim(shard, sigs, novel, abort)
		shard++
	})
	// shardClaim + done channel + claims + counts + routed + pos ≈ 7;
	// headroom for runtime variance, but far below one alloc per sample.
	if got > 16 {
		t.Fatalf("claim path allocates %.1f per %d-sig batch, budget 16", got, batch)
	}
}

// TestEnginePartitionCountEquivalence runs the same dedup-heavy recipe
// at several explicit partition counts (including the serial turnstile
// equivalent, 1) and requires identical outputs — partitioning is a
// speed knob, never a semantics knob. The spilled variant covers the
// per-partition DiskSet split.
func TestEnginePartitionCountEquivalence(t *testing.T) {
	input, _ := corpusWithDupes(t, 300)
	want := sampleLines(t, runBatch(t, equivalenceRecipe, input))

	for _, spec := range []struct {
		name  string
		extra string
	}{
		{"inmem", ""},
		{"spill", "target_mem_mb: 1\n"},
	} {
		for _, partitions := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/partitions=%d", spec.name, partitions), func(t *testing.T) {
				recipe := equivalenceRecipe +
					fmt.Sprintf("np: 4\nindex_partitions: %d\n", partitions) + spec.extra
				out, _ := runStream(t, recipe, input, Options{ShardSize: 17})
				got := sampleLines(t, out)
				if len(got) != len(want) {
					t.Fatalf("kept %d samples, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("sample %d diverges at partitions=%d:\n got %s\nwant %s",
							i, partitions, got[i], want[i])
					}
				}
			})
		}
	}
}
