package stream

import (
	"errors"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// StageDispatcher routes one shard-local stage — plan ops
// [fromOp, toOp) applied to one shard — to a remote worker and returns
// the surviving samples, the per-op flows measured where the work ran,
// and the 1-based worker lane it ran on. Implementations retry failed
// workers internally; dist.ErrNoWorkers means the whole fleet is gone
// and the engine must run the stage in-process. The coordinator-side
// implementation is internal/remote.Pool.
//
// Optional extensions the engine asserts for: dist.Statser attaches
// fleet statistics to the report, MemberFlusher folds the workers'
// quiesced fused-member attribution into it.
type StageDispatcher interface {
	RunStage(shard, fromOp, toOp int, d *dataset.Dataset) (*dataset.Dataset, []dist.OpFlow, int, error)
}

// MemberFlusher is implemented by dispatchers that can report the
// fleet's end-of-run fused-member attribution.
type MemberFlusher interface {
	FinishMembers() []dist.MemberFlow
}

// runLocalDispatch is the distributed counterpart of runLocal: resume
// what the shard cache already holds, ship the remaining op suffix to a
// worker, and degrade to in-process execution only when the fleet is
// dead. The cache discipline differs from the local path in one way —
// a dispatched stage stores only its final result (under the fully
// folded chain key), since intermediate datasets never return from the
// worker. Resume therefore checks the exact per-op prefix first (local
// runs stored those) and the stage-final key second.
func (p *phaseRun) runLocalDispatch(st stage, d *dataset.Dataset, useCache bool, shardIdx int, shardSpan int64) (*dataset.Dataset, bool, error) {
	e := p.eng
	n := len(st.ops)
	chainKey := ""
	var keys []string
	k := 0
	hits := 0
	if useCache {
		chainKey = cache.Key(d.Fingerprint(), "stream-shard", nil)
		keys = make([]string, n)
		ck := chainKey
		for i, op := range st.ops {
			ck = e.runner.OpCacheKey(ck, op)
			keys[i] = ck
		}
		// Exact per-op prefix resume (entries written by local runs or
		// in-process fallbacks).
		for k < n {
			if p.aborted() {
				return nil, false, errAborted
			}
			opStart := time.Now()
			inCount := d.Len()
			cached, ok, err := e.store.Get(keys[k])
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			d = cached
			chainKey = keys[k]
			hits++
			p.agg.addOp(st.planIdx[k], inCount, d.Len(), time.Since(opStart), 0, true, 1, 1)
			e.runner.TraceCacheHit(st.ops[k], inCount, d.Len(), time.Since(opStart))
			if e.tele != nil {
				e.tele.Op(st.planIdx[k]).CacheHit(inCount, d.Len())
				e.tele.Emit(telemetry.Event{
					Type: telemetry.EvCacheHit, Parent: shardSpan,
					Name: st.ops[k].Name(), Kind: core.OpKind(st.ops[k]), PlanIdx: st.planIdx[k],
					Phase: p.phase, Shard: shardIdx,
					In: int64(inCount), Out: int64(d.Len()),
					DurNS: int64(time.Since(opStart)),
				})
			}
			k++
		}
		if k == n {
			return d, hits > 0, nil
		}
		// Stage-final resume (entry written by a previous dispatched
		// run). Intermediate flows are unknown; attribute the suffix as
		// cache hits carrying the known entry and exit counts.
		if k < n-1 {
			cached, ok, err := e.store.Get(keys[n-1])
			if err != nil {
				return nil, false, err
			}
			if ok {
				in := d.Len()
				for i := k; i < n; i++ {
					p.agg.addOp(st.planIdx[i], in, cached.Len(), 0, 0, true, 1, 1)
					if e.tele != nil {
						e.tele.Op(st.planIdx[i]).CacheHit(in, cached.Len())
						e.tele.Emit(telemetry.Event{
							Type: telemetry.EvCacheHit, Parent: shardSpan,
							Name: st.ops[i].Name(), Kind: core.OpKind(st.ops[i]), PlanIdx: st.planIdx[i],
							Phase: p.phase, Shard: shardIdx,
							In: int64(in), Out: int64(cached.Len()),
						})
					}
					in = cached.Len()
				}
				return cached, true, nil
			}
		}
	}

	fromOp, toOp := st.planIdx[k], st.planIdx[n-1]+1
	out, flows, workerID, err := e.dispatch.RunStage(shardIdx, fromOp, toOp, d)
	if err != nil {
		if errors.Is(err, dist.ErrNoWorkers) {
			// The fleet is dead: finish this stage in-process from where
			// the cached prefix left off — same ops, same order, same
			// cache discipline, so the export stays byte-identical.
			d2, h2, err := p.runLocalFrom(st, d, k, chainKey, useCache, shardIdx, shardSpan)
			if err != nil {
				return nil, false, err
			}
			hits += h2
			return d2, hits == n && hits > 0, nil
		}
		return nil, false, err
	}
	for _, f := range flows {
		li := f.PlanIdx - st.planIdx[0]
		dur := time.Duration(f.DurNS)
		p.agg.addOp(f.PlanIdx, int(f.In), int(f.Out), dur, dur, false, 1, 1)
		if e.ctrl != nil {
			e.ctrl.ObserveOp(core.OpObservation{
				Op: st.ops[li], In: int(f.In), Out: int(f.Out),
				Bytes: f.Bytes, Duration: dur,
			})
		}
		if e.tele != nil {
			e.tele.Op(f.PlanIdx).Observe(int(f.In), int(f.Out), f.Bytes, dur)
			e.tele.Emit(telemetry.Event{
				Type: telemetry.EvOpComplete, Span: e.tele.NewSpan(), Parent: shardSpan,
				Name: f.Name, Kind: core.OpKind(st.ops[li]), PlanIdx: f.PlanIdx,
				Phase: p.phase, Shard: shardIdx,
				In: f.In, Out: f.Out, DurNS: f.DurNS,
				Workers: 1, Worker: workerID,
			})
		}
	}
	if useCache {
		if err := e.store.Put(keys[n-1], out); err != nil {
			return nil, false, err
		}
	}
	return out, false, nil
}

// mergeMemberFlows folds the fleet's fused-member attribution into the
// report and executed aggregates, matching members by plan index and
// name. Entries the coordinator never executed locally still exist
// (TakeMemberStats reports all members), so this is a sum, not an
// append, in the common case.
func mergeMemberFlows(stats, exec []core.OpStat, flows []dist.MemberFlow) {
	fold := func(ms []plan.MemberStat, f dist.MemberFlow) []plan.MemberStat {
		for j := range ms {
			if ms[j].Name == f.Name {
				ms[j].In += int(f.In)
				ms[j].Out += int(f.Out)
				ms[j].Samples += int(f.Samples)
				ms[j].Duration += time.Duration(f.DurNS)
				return ms
			}
		}
		return append(ms, plan.MemberStat{
			Name: f.Name, In: int(f.In), Out: int(f.Out),
			Samples: int(f.Samples), Duration: time.Duration(f.DurNS),
		})
	}
	for _, f := range flows {
		if f.PlanIdx < 0 || f.PlanIdx >= len(stats) {
			continue
		}
		stats[f.PlanIdx].Members = fold(stats[f.PlanIdx].Members, f)
		exec[f.PlanIdx].Members = fold(exec[f.PlanIdx].Members, f)
	}
}
