package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/format"
	"repro/internal/sample"
)

// Shard is one partition of the dataset moving through the engine.
type Shard struct {
	// Index is the shard's position in source order (0-based, dense).
	Index int
	// Data holds the shard's samples.
	Data *dataset.Dataset
}

// Source produces the input shards of a streaming run, in order.
type Source interface {
	// Next returns the next shard, or io.EOF when the input is exhausted.
	Next() (*Shard, error)
	// Close releases underlying resources.
	Close() error
}

// ShardSizer is implemented by sources whose shard size may change
// between reads. The adaptive controller uses it to re-slice the input as
// its cost model sharpens; sources without it simply keep their original
// granularity.
type ShardSizer interface {
	// SetShardSize changes the sample count of subsequently read shards.
	// Non-positive sizes are ignored.
	SetShardSize(n int)
}

// JSONLSource reads JSONL files incrementally with a bounded buffer —
// never the whole file — slicing the line stream into shards of
// shardSize samples. Lines decode through format.SampleFromJSON, the
// same unification the batch loader uses, so both backends see identical
// samples. Multiple files read back-to-back as one logical stream.
type JSONLSource struct {
	paths     []string
	shardSize int

	fileIdx int
	file    *os.File
	scan    *bufio.Scanner
	lineNo  int
	next    int // next shard index
	done    bool
}

// NewJSONLSource opens a streaming source over the given files.
func NewJSONLSource(shardSize int, paths ...string) (*JSONLSource, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("stream: shard size must be positive, got %d", shardSize)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("stream: no input files")
	}
	return &JSONLSource{paths: paths, shardSize: shardSize}, nil
}

func (j *JSONLSource) openNext() error {
	if j.file != nil {
		j.file.Close()
		j.file = nil
	}
	if j.fileIdx >= len(j.paths) {
		return io.EOF
	}
	f, err := os.Open(j.paths[j.fileIdx])
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	j.fileIdx++
	j.file = f
	j.scan = bufio.NewScanner(f)
	j.scan.Buffer(make([]byte, 0, 1<<16), 1<<26)
	j.lineNo = 0
	return nil
}

// Next returns the next shard of up to shardSize samples.
func (j *JSONLSource) Next() (*Shard, error) {
	if j.done {
		return nil, io.EOF
	}
	var samples []*sample.Sample
	for len(samples) < j.shardSize {
		if j.scan == nil {
			if err := j.openNext(); err == io.EOF {
				j.done = true
				break
			} else if err != nil {
				return nil, err
			}
		}
		if !j.scan.Scan() {
			if err := j.scan.Err(); err != nil {
				return nil, fmt.Errorf("stream: %s: %w", j.paths[j.fileIdx-1], err)
			}
			j.scan = nil // advance to the next file
			continue
		}
		j.lineNo++
		line := strings.TrimSpace(j.scan.Text())
		if line == "" {
			continue
		}
		s, err := format.SampleFromJSON([]byte(line))
		if err != nil {
			return nil, fmt.Errorf("stream: %s line %d: %w", j.paths[j.fileIdx-1], j.lineNo, err)
		}
		samples = append(samples, s)
	}
	if len(samples) == 0 {
		return nil, io.EOF
	}
	sh := &Shard{Index: j.next, Data: dataset.New(samples)}
	j.next++
	return sh, nil
}

// SetShardSize implements ShardSizer: later shards slice the line stream
// at the new granularity.
func (j *JSONLSource) SetShardSize(n int) {
	if n > 0 {
		j.shardSize = n
	}
}

// Close closes the currently open file.
func (j *JSONLSource) Close() error {
	if j.file != nil {
		err := j.file.Close()
		j.file = nil
		return err
	}
	return nil
}

// DatasetSource shards an in-memory dataset: the adapter for inputs that
// have no incremental representation (hub: corpora, non-JSONL files).
// Shards alias the dataset's samples; they are not copied.
type DatasetSource struct {
	d         *dataset.Dataset
	shardSize int
	pos       int
	next      int
}

// NewDatasetSource wraps d as a source of shardSize-sample shards.
func NewDatasetSource(d *dataset.Dataset, shardSize int) (*DatasetSource, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("stream: shard size must be positive, got %d", shardSize)
	}
	return &DatasetSource{d: d, shardSize: shardSize}, nil
}

// Next returns the next contiguous slice of the dataset.
func (ds *DatasetSource) Next() (*Shard, error) {
	if ds.pos >= ds.d.Len() {
		return nil, io.EOF
	}
	hi := ds.pos + ds.shardSize
	if hi > ds.d.Len() {
		hi = ds.d.Len()
	}
	sh := &Shard{Index: ds.next, Data: dataset.New(ds.d.Samples[ds.pos:hi])}
	ds.pos = hi
	ds.next++
	return sh, nil
}

// SetShardSize implements ShardSizer.
func (ds *DatasetSource) SetShardSize(n int) {
	if n > 0 {
		ds.shardSize = n
	}
}

// Close is a no-op for in-memory sources.
func (ds *DatasetSource) Close() error { return nil }

// OpenSource resolves a dataset spec (the same specs format.Load accepts)
// into a streaming source. JSONL files — and directories holding only
// JSONL files — stream incrementally; every other spec falls back to a
// batch load wrapped in a DatasetSource, which still pipelines the
// processing but not the input I/O.
func OpenSource(spec string, shardSize int) (Source, error) {
	if strings.HasPrefix(spec, "hub:") {
		return loadFallback(spec, shardSize)
	}
	info, err := os.Stat(spec)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if info.IsDir() {
		jsonl, only, err := jsonlFilesIn(spec)
		if err != nil {
			return nil, err
		}
		if only && len(jsonl) > 0 {
			return NewJSONLSource(shardSize, jsonl...)
		}
		return loadFallback(spec, shardSize)
	}
	if strings.EqualFold(filepath.Ext(spec), ".jsonl") {
		return NewJSONLSource(shardSize, spec)
	}
	return loadFallback(spec, shardSize)
}

func loadFallback(spec string, shardSize int) (Source, error) {
	d, err := format.Load(spec)
	if err != nil {
		return nil, err
	}
	return NewDatasetSource(d, shardSize)
}

// jsonlFilesIn lists the .jsonl files under dir (sorted) and reports
// whether the directory holds no other regular files.
func jsonlFilesIn(dir string) (files []string, only bool, err error) {
	only = true
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".jsonl") {
			files = append(files, path)
		} else {
			only = false
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	sort.Strings(files)
	return files, only, nil
}
