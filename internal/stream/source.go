package stream

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/format"
	"repro/internal/sample"
)

// Shard is one partition of the dataset moving through the engine.
type Shard struct {
	// Index is the shard's position in source order (0-based, dense).
	Index int
	// Data holds the shard's samples.
	Data *dataset.Dataset
}

// Source produces the input shards of a streaming run, in order.
type Source interface {
	// Next returns the next shard, or io.EOF when the input is exhausted.
	Next() (*Shard, error)
	// Close releases underlying resources.
	Close() error
}

// ShardSizer is implemented by sources whose shard size may change
// between reads. The adaptive controller uses it to re-slice the input as
// its cost model sharpens; sources without it simply keep their original
// granularity.
type ShardSizer interface {
	// SetShardSize changes the sample count of subsequently read shards.
	// Non-positive sizes are ignored.
	SetShardSize(n int)
}

// SampleSource slices a format.Source — the unified incremental reader
// behind every input spec (jsonl/json/csv/tsv/txt/md/html/code files,
// gzip variants, directories, globs, hub: corpora, mix: mixtures) — into
// shards of shardSize samples. The underlying reader holds a bounded
// buffer, so peak memory stays O(shards in flight) whatever the input
// format; both backends decode through the same format layer, so they
// see identical samples for the same spec.
type SampleSource struct {
	src       format.Source
	shardSize int
	next      int
	done      bool
}

// NewSampleSource wraps src as a source of shardSize-sample shards.
func NewSampleSource(src format.Source, shardSize int) (*SampleSource, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("stream: shard size must be positive, got %d", shardSize)
	}
	return &SampleSource{src: src, shardSize: shardSize}, nil
}

// JSONLSource is the historical name of the incremental file-backed
// source; it is now the general SampleSource.
type JSONLSource = SampleSource

// NewJSONLSource opens a streaming source over the given files (not
// necessarily JSONL — any supported extension), read back-to-back as one
// logical stream.
func NewJSONLSource(shardSize int, paths ...string) (*SampleSource, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("stream: no input files")
	}
	fs, err := format.OpenFiles(paths...)
	if err != nil {
		return nil, err
	}
	return NewSampleSource(fs, shardSize)
}

// Next returns the next shard of up to shardSize samples, filled
// batch-granularly from the reader (one pre-sized slice per shard, no
// append growth, and the reader's batch path amortizes per-sample
// dispatch).
func (ss *SampleSource) Next() (*Shard, error) {
	if ss.done {
		return nil, io.EOF
	}
	samples := make([]*sample.Sample, 0, ss.shardSize)
	for len(samples) < ss.shardSize {
		var err error
		n := len(samples)
		samples, err = format.ReadBatch(ss.src, samples, ss.shardSize-len(samples))
		if err == io.EOF {
			ss.done = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		if len(samples) == n {
			ss.done = true
			break
		}
	}
	if len(samples) == 0 {
		return nil, io.EOF
	}
	sh := &Shard{Index: ss.next, Data: dataset.New(samples)}
	ss.next++
	return sh, nil
}

// SetShardSize implements ShardSizer: later shards slice the sample
// stream at the new granularity.
func (ss *SampleSource) SetShardSize(n int) {
	if n > 0 {
		ss.shardSize = n
	}
}

// Close closes the underlying reader.
func (ss *SampleSource) Close() error { return ss.src.Close() }

// DatasetSource shards an in-memory dataset: used by the engine to
// re-shard after a pipeline barrier. Shards alias the dataset's samples;
// they are not copied.
type DatasetSource struct {
	d         *dataset.Dataset
	shardSize int
	pos       int
	next      int
}

// NewDatasetSource wraps d as a source of shardSize-sample shards.
func NewDatasetSource(d *dataset.Dataset, shardSize int) (*DatasetSource, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("stream: shard size must be positive, got %d", shardSize)
	}
	return &DatasetSource{d: d, shardSize: shardSize}, nil
}

// Next returns the next contiguous slice of the dataset.
func (ds *DatasetSource) Next() (*Shard, error) {
	if ds.pos >= ds.d.Len() {
		return nil, io.EOF
	}
	hi := ds.pos + ds.shardSize
	if hi > ds.d.Len() {
		hi = ds.d.Len()
	}
	sh := &Shard{Index: ds.next, Data: dataset.New(ds.d.Samples[ds.pos:hi])}
	ds.pos = hi
	ds.next++
	return sh, nil
}

// SetShardSize implements ShardSizer.
func (ds *DatasetSource) SetShardSize(n int) {
	if n > 0 {
		ds.shardSize = n
	}
}

// Close is a no-op for in-memory sources.
func (ds *DatasetSource) Close() error { return nil }

// OpenSource resolves a dataset spec — every form format.OpenSource
// accepts, including "mix:" weighted mixtures and gzip-compressed
// multi-format files — into a streaming shard source. File-backed specs
// read incrementally; hub: corpora are generated in memory and sharded.
func OpenSource(spec string, shardSize int) (Source, error) {
	fs, err := format.OpenSource(spec)
	if err != nil {
		return nil, err
	}
	return NewSampleSource(fs, shardSize)
}
