package stream

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/sample"
)

// fakeOp is a named placeholder standing in for a planned operator in
// controller tests.
type fakeOp struct{ name string }

func (f *fakeOp) Name() string                   { return f.name }
func (f *fakeOp) Process(s *sample.Sample) error { return nil }

// fakeClock produces deterministic durations: every "timestamp" is
// advanced by hand, so controller convergence tests never depend on the
// machine's real scheduler.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// step advances the clock and returns the elapsed duration, simulating a
// measured interval of exactly d.
func (c *fakeClock) step(d time.Duration) time.Duration {
	c.now = c.now.Add(d)
	return d
}

// simulate drives a controller through generations of synthetic shards:
// each shard of the current decided size passes every op at the given
// per-sample cost, with source reads at srcPerSample. The returned
// decisions are those in force after each emitted shard.
func simulate(t *testing.T, ctrl *Controller, plan []ops.OP, shards int,
	perSample map[string]time.Duration, sel map[string]float64,
	bytesPer int64, srcPerSample time.Duration) []dist.Decision {

	t.Helper()
	clock := newFakeClock()
	var decisions []dist.Decision
	for i := 0; i < shards; i++ {
		size := ctrl.ShardSize()
		ctrl.ObserveSource(size, bytesPer*int64(size), clock.step(time.Duration(size)*srcPerSample))
		in := size
		for _, op := range plan {
			s := sel[op.Name()]
			if s == 0 {
				s = 1
			}
			out := int(float64(in) * s)
			dur := clock.step(time.Duration(in) * perSample[op.Name()])
			ctrl.ObserveOp(core.OpObservation{Op: op, In: in, Out: out, Bytes: bytesPer * int64(in), Duration: dur})
			in = out
		}
		ctrl.ObserveSink(in, clock.step(time.Duration(in)*time.Microsecond))
		dec, _ := ctrl.shardEmitted()
		decisions = append(decisions, dec)
	}
	return decisions
}

func testPlan(names ...string) []ops.OP {
	list := make([]ops.OP, len(names))
	for i, n := range names {
		list[i] = &fakeOp{name: n}
	}
	return list
}

// physPlan wraps fake ops as a minimal physical plan for the controller.
func physPlan(list []ops.OP) *plan.Plan {
	p := &plan.Plan{}
	for _, op := range list {
		p.Nodes = append(p.Nodes, plan.PhysicalOp{Op: op, Capability: plan.Classify(op)})
	}
	return p
}

func testTuning(maxWorkers int, memBytes int64) dist.Tuning {
	return dist.Tuning{MaxWorkers: maxWorkers, TargetMemBytes: memBytes, InFlightPerWorker: 2}
}

func initialDecision(shard int) dist.Decision {
	return dist.Decision{Workers: 2, ShardSize: shard, MaxInFlight: 4}
}

// Fast ops: shard size must grow toward the latency target and then hold
// steady — convergence, not oscillation.
func TestControllerConvergesOnFastOps(t *testing.T) {
	pl := testPlan("fast_a", "fast_b")
	ctrl := newController(physPlan(pl), initialDecision(64), testTuning(4, 0), 4)
	decisions := simulate(t, ctrl, pl, 40, map[string]time.Duration{
		"fast_a": 5 * time.Microsecond,
		"fast_b": 5 * time.Microsecond,
	}, nil, 200, 20*time.Microsecond)

	final := decisions[len(decisions)-1]
	if final.ShardSize <= 64 {
		t.Fatalf("shard size %d did not grow under fast ops", final.ShardSize)
	}
	// Converged: the last three generations agree.
	for _, d := range decisions[len(decisions)-12:] {
		if d.ShardSize != final.ShardSize || d.Workers != final.Workers {
			t.Fatalf("controller still oscillating at the tail: %+v vs %+v", d, final)
		}
	}
	// Chain (10µs) < source (20µs): the serial reader is the floor, so a
	// single worker must satisfy the model.
	if final.Workers != 1 {
		t.Errorf("workers = %d, want 1 (reader-bound workload)", final.Workers)
	}
}

// Slow ops: shard size must shrink to keep shards responsive and the pool
// must saturate toward MaxWorkers.
func TestControllerConvergesOnSlowOps(t *testing.T) {
	pl := testPlan("slow")
	ctrl := newController(physPlan(pl), initialDecision(2048), testTuning(8, 0), 4)
	decisions := simulate(t, ctrl, pl, 40, map[string]time.Duration{
		"slow": 2 * time.Millisecond,
	}, nil, 200, time.Microsecond)

	final := decisions[len(decisions)-1]
	if final.ShardSize >= 2048 {
		t.Fatalf("shard size %d did not shrink under slow ops", final.ShardSize)
	}
	if final.Workers != 8 {
		t.Fatalf("workers = %d, want 8 (compute-bound workload)", final.Workers)
	}
	for _, d := range decisions[len(decisions)-12:] {
		if d.ShardSize != final.ShardSize || d.Workers != final.Workers {
			t.Fatalf("controller still oscillating at the tail: %+v vs %+v", d, final)
		}
	}
}

// A memory target must bound modeled resident bytes and throttle the
// in-flight allowance.
func TestControllerHonorsMemoryTarget(t *testing.T) {
	pl := testPlan("fast")
	target := int64(64 << 10)
	ctrl := newController(physPlan(pl), initialDecision(512), testTuning(4, target), 4)
	decisions := simulate(t, ctrl, pl, 24, map[string]time.Duration{
		"fast": 2 * time.Microsecond,
	}, nil, 1024, 2*time.Microsecond)

	final := decisions[len(decisions)-1]
	resident := int64(float64(final.MaxInFlight) * float64(final.ShardSize) * final.PeakBytesPerSample)
	if resident > target {
		t.Fatalf("modeled resident bytes %d exceed target %d (%+v)", resident, target, final)
	}
}

// Selectivity must reach the model: a 90%-dropping filter makes the
// modeled end-to-end selectivity ~0.1.
func TestControllerSeesSelectivity(t *testing.T) {
	pl := testPlan("filter", "tail")
	ctrl := newController(physPlan(pl), initialDecision(512), testTuning(4, 0), 4)
	simulate(t, ctrl, pl, 12, map[string]time.Duration{
		"filter": 10 * time.Microsecond,
		"tail":   10 * time.Microsecond,
	}, map[string]float64{"filter": 0.1}, 200, time.Microsecond)

	dec := ctrl.Decision()
	if dec.Selectivity < 0.05 || dec.Selectivity > 0.15 {
		t.Fatalf("modeled selectivity = %v, want ~0.1", dec.Selectivity)
	}
}

// Observations for ops outside the plan must be dropped, not misfiled.
func TestControllerIgnoresUnplannedOps(t *testing.T) {
	pl := testPlan("planned")
	ctrl := newController(physPlan(pl), initialDecision(512), testTuning(4, 0), 4)
	ctrl.ObserveOp(core.OpObservation{Op: &fakeOp{name: "stray"}, In: 100, Out: 100, Duration: time.Second})
	if got := len(ctrl.metrics().Profiles); got != 0 {
		t.Fatalf("stray op landed in the model: %d profiles", got)
	}
}

func TestControllerMetricsRecordDecisions(t *testing.T) {
	pl := testPlan("op")
	ctrl := newController(physPlan(pl), initialDecision(64), testTuning(4, 0), 2)
	simulate(t, ctrl, pl, 10, map[string]time.Duration{"op": 5 * time.Microsecond}, nil, 100, 50*time.Microsecond)
	m := ctrl.metrics()
	if !m.Adaptive {
		t.Fatal("metrics not flagged adaptive")
	}
	if m.Generations == 0 {
		t.Fatal("no generations recorded")
	}
	if m.Resizes != len(m.Decisions) {
		t.Fatalf("resizes %d != recorded decisions %d", m.Resizes, len(m.Decisions))
	}
	if len(m.Profiles) != 1 || m.Profiles[0].Name != "op" {
		t.Fatalf("profiles = %+v, want the one planned op", m.Profiles)
	}
}

// --- gate: the backpressure primitive ---

// The gate must bound concurrent holders exactly at its limit.
func TestGateBoundsInFlight(t *testing.T) {
	g := newGate(3)
	for i := 0; i < 3; i++ {
		if !g.acquire(nil) {
			t.Fatal("acquire under limit blocked or failed")
		}
	}
	acquired := make(chan bool, 1)
	go func() { acquired <- g.acquire(nil) }()
	select {
	case <-acquired:
		t.Fatal("4th acquire succeeded past limit 3")
	case <-time.After(20 * time.Millisecond):
	}
	g.release()
	if ok := <-acquired; !ok {
		t.Fatal("acquire failed after release")
	}
}

// Raising the limit must wake blocked acquirers; closing must fail them.
func TestGateLimitChangeAndClose(t *testing.T) {
	g := newGate(1)
	g.acquire(nil)
	results := make(chan bool, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); results <- g.acquire(nil) }()
	}
	g.setLimit(2) // frees exactly one waiter
	if ok := <-results; !ok {
		t.Fatal("acquire failed after limit raise")
	}
	g.close() // fails the other
	if ok := <-results; ok {
		t.Fatal("acquire succeeded on a closed gate")
	}
	wg.Wait()
}

// A blocked acquire must report its wait time to the backpressure probe.
func TestGateReportsBackpressure(t *testing.T) {
	g := newGate(1)
	g.acquire(nil)
	var mu sync.Mutex
	var waited time.Duration
	done := make(chan struct{})
	go func() {
		g.acquire(func(d time.Duration) { mu.Lock(); waited = d; mu.Unlock() })
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	g.release()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if waited <= 0 {
		t.Fatal("blocked acquire reported no wait")
	}
}

// --- pool: the resizable worker primitive ---

func TestPoolResize(t *testing.T) {
	work := make(chan *Shard)
	var mu sync.Mutex
	processed := 0
	p := newPool(work, func(*Shard) { mu.Lock(); processed++; mu.Unlock() })
	p.resize(2)
	if got := p.size(); got != 2 {
		t.Fatalf("size after resize(2) = %d", got)
	}
	p.resize(5)
	if got := p.size(); got != 5 {
		t.Fatalf("size after resize(5) = %d", got)
	}
	// Shrink: workers retire only after finishing a shard.
	p.resize(1)
	for i := 0; i < 10; i++ {
		work <- &Shard{Index: i}
	}
	close(work)
	p.wait()
	mu.Lock()
	defer mu.Unlock()
	if processed != 10 {
		t.Fatalf("processed %d shards, want 10 (shrink must not drop work)", processed)
	}
	if got := p.size(); got != 0 {
		t.Fatalf("%d workers alive after wait", got)
	}
}

// --- engine-level: adaptive mode must preserve semantics and actually
// consult the model ---

func TestAdaptiveEngineMatchesFixed(t *testing.T) {
	_, d := corpusWithDupes(t, 600)
	const recipeYAML = `
project_name: adaptive-vs-fixed
use_cache: false
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 3
  - document_deduplicator:
`
	fixedRecipe := mustRecipe(t, recipeYAML)
	fixedRecipe.WorkDir = t.TempDir()
	fixedEng, err := New(fixedRecipe, Options{ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	fixedSrc, _ := NewDatasetSource(d.Clone(), 64)
	var fixedOut CollectSink
	fixedRep, err := fixedEng.Run(fixedSrc, &fixedOut)
	if err != nil {
		t.Fatal(err)
	}
	if fixedRep.Metrics != nil {
		t.Fatal("fixed-mode run carries adaptive metrics")
	}

	adRecipe := mustRecipe(t, recipeYAML)
	adRecipe.WorkDir = t.TempDir()
	adEng, err := New(adRecipe, Options{
		ShardSize: 64, Adaptive: true, MaxWorkers: 4,
		TargetMemBytes: 8 << 20, Generation: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	adSrc, _ := NewDatasetSource(d.Clone(), 64)
	var adOut CollectSink
	adRep, err := adEng.Run(adSrc, &adOut)
	if err != nil {
		t.Fatal(err)
	}

	if fixedOut.Dataset().Len() != adOut.Dataset().Len() {
		t.Fatalf("adaptive kept %d samples, fixed kept %d", adOut.Dataset().Len(), fixedOut.Dataset().Len())
	}
	for i, s := range fixedOut.Dataset().Samples {
		if adOut.Dataset().Samples[i].Text != s.Text {
			t.Fatalf("sample %d diverged between adaptive and fixed runs", i)
		}
	}

	m := adRep.Metrics
	if m == nil || !m.Adaptive {
		t.Fatal("adaptive run produced no metrics")
	}
	if m.Generations == 0 {
		t.Fatal("controller never re-planned: the engine is not consulting the cost model")
	}
	if len(m.Profiles) == 0 {
		t.Fatal("no live op profiles reached the dist model")
	}
	if m.Workers < 1 || m.ShardSize < 1 || m.MaxInFlight < 1 {
		t.Fatalf("degenerate final decision: %+v", m)
	}
}

// The -max-workers cap must hold from the first shard — an input too
// short to ever reach a generation boundary still honors it.
func TestAdaptiveInitialDecisionRespectsCaps(t *testing.T) {
	recipe := mustRecipe(t, `
project_name: initial-caps
use_cache: false
np: 8
process:
  - whitespace_normalization_mapper:
  - document_simhash_deduplicator:
`)
	recipe.WorkDir = t.TempDir()
	eng, err := New(recipe, Options{ShardSize: 64, Adaptive: true, MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dec := eng.ctrl.Decision()
	if dec.Workers > 2 {
		t.Fatalf("initial workers = %d, exceeds -max-workers 2", dec.Workers)
	}
	if dec.MaxInFlight > 4 {
		t.Fatalf("initial in-flight = %d, exceeds MaxWorkers×2", dec.MaxInFlight)
	}
	// Planner-placed barrier ops must be registered as serial.
	p := eng.Plan()
	if len(eng.ctrl.serial) == 0 {
		t.Fatal("no serial ops recorded despite a barrier in the plan")
	}
	for i := range p.Nodes {
		if (p.Nodes[i].Capability == plan.Barrier) != eng.ctrl.serial[i] {
			t.Fatalf("op %d (%s) serial flag mismatch", i, p.Nodes[i].Op.Name())
		}
	}
}

// Backpressure end-to-end: with a tiny in-flight allowance and a slow
// sink, the source must never run more than MaxInFlight shards ahead of
// the emitter.
func TestAdaptiveBackpressureBoundsInFlight(t *testing.T) {
	_, d := corpusWithDupes(t, 400)
	recipe := mustRecipe(t, `
project_name: backpressure
use_cache: false
process:
  - whitespace_normalization_mapper:
`)
	recipe.WorkDir = t.TempDir()
	eng, err := New(recipe, Options{ShardSize: 20, MaxInFlight: 3})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	read, consumed, maxAhead := 0, 0, 0
	src, _ := NewDatasetSource(d, 20)
	counting := &countingSource{src: src, onNext: func() {
		mu.Lock()
		read++
		if ahead := read - consumed; ahead > maxAhead {
			maxAhead = ahead
		}
		mu.Unlock()
	}}
	sink := &slowSink{delay: time.Millisecond, onConsume: func() {
		mu.Lock()
		consumed++
		mu.Unlock()
	}}
	if _, err := eng.Run(counting, sink); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if maxAhead > 3 {
		t.Fatalf("source ran %d shards ahead; in-flight limit is 3", maxAhead)
	}
}

type countingSource struct {
	src    Source
	onNext func()
}

func (c *countingSource) Next() (*Shard, error) {
	sh, err := c.src.Next()
	if err == nil {
		c.onNext()
	}
	return sh, err
}
func (c *countingSource) Close() error { return c.src.Close() }

type slowSink struct {
	delay     time.Duration
	onConsume func()
}

func (s *slowSink) Consume(d *dataset.Dataset) error {
	time.Sleep(s.delay)
	s.onConsume()
	return nil
}
func (s *slowSink) Close() error { return nil }
