package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tokenizer"
)

// Table7Row is one pre-training component with its token statistics.
type Table7Row struct {
	Component  string
	Tokens     int
	Proportion float64
}

// Table7Result reproduces the pre-training recipe statistics.
type Table7Result struct {
	Rows   []Table7Row
	Render string
}

// Table7 reproduces Table 7: per-component subword token counts of the
// refined pre-training mix and their sampling proportions, with Books at
// 2 epochs and Wikipedia at 2.5 (the paper's up-weighting of high-quality
// corpora). Tokens are counted with the trained BPE tokenizer, standing
// in for the SentencePiece tokenizer of GPT-NeoX.
func Table7(s Scale) (*Table7Result, error) {
	components := []struct {
		name, hub string
		docs      int
		epochs    float64
	}{
		{"CommonCrawl", "web-en", s.SourceDocs * 2, 1},
		{"C4", "c4", s.SourceDocs, 1},
		{"GitHub", "code", s.SourceDocs / 2, 1},
		{"Books", "books", s.SourceDocs / 4, 2},
		{"Wikipedia", "wiki", s.SourceDocs / 2, 2.5},
		{"arXiv", "arxiv", s.SourceDocs / 4, 1},
		{"StackExchange", "stackexchange", s.SourceDocs / 2, 1},
	}

	// Train the tokenizer on a slice of the mix.
	var trainTexts []string
	for _, c := range components {
		d := rawSource(c.hub, min(40, c.docs), s.Seed+int64(100))
		for _, smp := range d.Samples {
			trainTexts = append(trainTexts, smp.Text)
		}
	}
	bpe := tokenizer.Train(trainTexts, 400)

	res := &Table7Result{}
	var weighted float64
	for _, c := range components {
		d := rawSource(c.hub, c.docs, s.Seed+101)
		tokens := 0
		for _, smp := range d.Samples {
			tokens += bpe.CountTokens(smp.Text)
		}
		res.Rows = append(res.Rows, Table7Row{Component: c.name, Tokens: tokens})
		weighted += float64(tokens) * c.epochs
	}
	for i, c := range components {
		res.Rows[i].Proportion = float64(res.Rows[i].Tokens) * c.epochs / weighted
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Tokens > res.Rows[j].Tokens })

	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Component, fmt.Sprint(r.Tokens), fmt.Sprintf("%.2f%%", r.Proportion*100),
		})
	}
	res.Render = "Table 7 — pre-training data statistics (BPE tokens)\n" +
		table([]string{"component", "#tokens", "sampling prop."}, rows)
	return res, nil
}

// Table8Result reproduces the fine-tuning collection census.
type Table8Result struct {
	Counts map[string]map[string]int
	Render string
}

// Table8 reproduces Table 8: the tag census over a synthetic Alpaca-CoT
// style collection of 39 datasets, each carrying language / usage / task /
// generation-method tags (with usage being the tag set Data-Juicer adds).
func Table8(s Scale) (*Table8Result, error) {
	rng := rand.New(rand.NewSource(s.Seed + 111))
	type ds struct {
		lang, usage, task, gen string
	}
	langs := []string{"English", "Chinese", "Multilingual"}
	langW := []float64{0.62, 0.31, 0.07}
	usages := []string{"Instruct Fine-Tuning (IFT)", "CFT: Single-Round Dialog", "CFT: Multi-Round Dialog", "CFT: Preference"}
	usageW := []float64{0.36, 0.49, 0.05, 0.10}
	tasks := []string{"Multi-Task", "Task-Specific"}
	taskW := []float64{0.67, 0.33}
	gens := []string{"Human-Generated", "Self-Instruct", "Mixed", "Collection of Datasets"}
	genW := []float64{0.08, 0.31, 0.13, 0.48}
	weightedPick := func(opts []string, w []float64) string {
		r := rng.Float64()
		acc := 0.0
		for i, p := range w {
			acc += p
			if r <= acc {
				return opts[i]
			}
		}
		return opts[len(opts)-1]
	}
	const nDatasets = 39
	var all []ds
	for i := 0; i < nDatasets; i++ {
		all = append(all, ds{
			lang:  weightedPick(langs, langW),
			usage: weightedPick(usages, usageW),
			task:  weightedPick(tasks, taskW),
			gen:   weightedPick(gens, genW),
		})
	}
	counts := map[string]map[string]int{
		"Language": {}, "Usage": {}, "Task Type": {}, "Generation Method": {},
	}
	for _, d := range all {
		counts["Language"][d.lang]++
		counts["Usage"][d.usage]++
		counts["Task Type"][d.task]++
		counts["Generation Method"][d.gen]++
	}
	var rows [][]string
	for _, cat := range []string{"Language", "Usage", "Task Type", "Generation Method"} {
		subs := make([]string, 0, len(counts[cat]))
		for sub := range counts[cat] {
			subs = append(subs, sub)
		}
		sort.Slice(subs, func(i, j int) bool { return counts[cat][subs[i]] > counts[cat][subs[j]] })
		for _, sub := range subs {
			rows = append(rows, []string{cat, sub, fmt.Sprint(counts[cat][sub])})
		}
	}
	return &Table8Result{
		Counts: counts,
		Render: fmt.Sprintf("Table 8 — fine-tuning collection census (%d datasets)\n", nDatasets) +
			table([]string{"category", "sub-category", "#datasets"}, rows),
	}, nil
}
