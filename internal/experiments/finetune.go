package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/sample"
	"repro/internal/sampler"
)

// Table3Row is one pairwise fine-tuning comparison.
type Table3Row struct {
	Base       string
	Competitor string
	CompSize   int
	CompWins   int
	DJName     string
	DJSize     int
	DJWins     int
	Ties       int
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows   []Table3Row
	Render string
}

// djRecipeEN applies the Data-Juicer fine-tuning recipe: drop the
// low-quality tier, then diversity-sample k items.
func djRecipeEN(pool *dataset.Dataset, k int, seed int64) *dataset.Dataset {
	filtered, _ := pool.Filter(0, func(s *sample.Sample) bool {
		tier, _ := s.GetFloat("meta.tier")
		return tier >= 1
	})
	return sampler.Diversity(filtered, k, seed)
}

// Table3 reproduces Table 3: four pairwise GPT-4-substitute comparisons.
// Expected shape: the Data-Juicer recipe wins every pairing while using
// the same or less data, and ties dominate (as they do under GPT-4).
func Table3(s Scale) (*Table3Result, error) {
	res := &Table3Result{}
	cfg := llm.JudgeConfig{Prompts: s.JudgePrompts, Seed: s.Seed + 7}

	// --- English rows (LLaMA-7B base) ---
	poolEN := corpus.CFT(corpus.Options{Docs: s.FinetunePool, Seed: s.Seed + 61}, "EN")
	// "Alpaca": a larger unfiltered set including the low-quality tier.
	alpacaSize := s.FinetunePick * 13 / 10
	alpaca := llm.Finetune("Alpaca", sampler.Reservoir(poolEN, alpacaSize, s.Seed+62))
	dj1 := llm.Finetune("Data-Juicer", djRecipeEN(poolEN, s.FinetunePick, s.Seed+63))
	r1 := llm.Judge(alpaca, dj1, cfg)
	res.Rows = append(res.Rows, Table3Row{
		Base: "LLaMA-7B", Competitor: "Alpaca", CompSize: alpacaSize, CompWins: r1.WinA,
		DJName: "Data-Juicer", DJSize: s.FinetunePick, DJWins: r1.WinB, Ties: r1.Tie,
	})

	// Random sampling of the same pool at the same size.
	random := llm.Finetune("Random (CFT, EN)", sampler.Reservoir(poolEN, s.FinetunePick, s.Seed+64))
	r2 := llm.Judge(random, dj1, llm.JudgeConfig{Prompts: s.JudgePrompts, Seed: s.Seed + 8})
	res.Rows = append(res.Rows, Table3Row{
		Base: "LLaMA-7B", Competitor: "Random (CFT, EN)", CompSize: s.FinetunePick, CompWins: r2.WinA,
		DJName: "Data-Juicer", DJSize: s.FinetunePick, DJWins: r2.WinB, Ties: r2.Tie,
	})

	// --- Chinese rows (LLaMA2-7B base) ---
	poolZH := corpus.CFT(corpus.Options{Docs: s.FinetunePool, Seed: s.Seed + 65}, "ZH")
	// "Belle": a ~10x larger unfiltered Chinese set.
	belleSize := min(poolZH.Len(), s.FinetunePick*5)
	belle := llm.Finetune("Belle", sampler.Reservoir(poolZH, belleSize, s.Seed+66))
	djZHData, _ := poolZH.Filter(0, func(smp *sample.Sample) bool {
		tier, _ := smp.GetFloat("meta.tier")
		return tier >= 1
	})
	// Diversity sampling across instruction categories, as for the EN
	// recipe — ZH categories come from the generator's verb/noun metadata.
	zhCategory := func(smp *sample.Sample) string {
		v, _ := smp.GetString("meta.verb")
		n, _ := smp.GetString("meta.noun")
		return v + "→" + n
	}
	djZH := llm.Finetune("Data-Juicer", sampler.Stratified(djZHData, s.FinetunePick/2, zhCategory, s.Seed+67))
	r3 := llm.Judge(belle, djZH, llm.JudgeConfig{Prompts: s.JudgePrompts, Seed: s.Seed + 9, PromptLang: "ZH"})
	res.Rows = append(res.Rows, Table3Row{
		Base: "LLaMA2-7B (Chinese)", Competitor: "Belle", CompSize: belleSize, CompWins: r3.WinA,
		DJName: "Data-Juicer", DJSize: s.FinetunePick / 2, DJWins: r3.WinB, Ties: r3.Tie,
	})

	randomZH := llm.Finetune("Random (CFT, ZH)", sampler.Reservoir(poolZH, s.FinetunePick/2, s.Seed+68))
	r4 := llm.Judge(randomZH, djZH, llm.JudgeConfig{Prompts: s.JudgePrompts, Seed: s.Seed + 10, PromptLang: "ZH"})
	res.Rows = append(res.Rows, Table3Row{
		Base: "LLaMA2-7B (Chinese)", Competitor: "Random (CFT, ZH)", CompSize: s.FinetunePick / 2, CompWins: r4.WinA,
		DJName: "Data-Juicer", DJSize: s.FinetunePick / 2, DJWins: r4.WinB, Ties: r4.Tie,
	})

	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Base, r.Competitor, fmt.Sprint(r.CompSize), fmt.Sprint(r.CompWins),
			fmt.Sprint(r.DJSize), fmt.Sprint(r.DJWins), fmt.Sprint(r.Ties),
		})
	}
	res.Render = "Table 3 — pairwise model comparisons (GPT-4-substitute judge)\n" +
		table([]string{"base model", "competitor data", "#samples", "wins", "DJ #samples", "DJ wins", "ties"}, rows)
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
