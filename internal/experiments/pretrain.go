package experiments

import (
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/sampler"
)

// PretrainMixes builds the three Figure 7 data recipes:
//
//   - "RedPajama": the raw web-heavy mix (web, c4, books),
//   - "RedPajama+Pile": the raw mix extended with Pile-style sources
//     (wiki, stackexchange, arxiv),
//   - "Data-Juicer (RedPajama+Pile)": every source refined through its
//     built-in per-source recipe before mixing.
type PretrainMixes struct {
	RedPajama *dataset.Dataset
	WithPile  *dataset.Dataset
	Refined   *dataset.Dataset
}

// BuildPretrainMixes assembles the three mixes at the given scale.
func BuildPretrainMixes(s Scale) (*PretrainMixes, error) {
	seed := s.Seed
	n := s.SourceDocs
	// Document counts are chosen so the TOKEN shares match the paper's
	// Table 7: CommonCrawl + C4 carry roughly two thirds of the raw token
	// mass (books documents are ~15x longer than web pages, hence the
	// small doc counts). Raw mixes therefore spend most of their budget on
	// noisy crawl text, exactly as RedPajama and the Pile do.
	rp := dataset.Concat(
		rawSource("web-en", n*12, seed+1),
		rawSource("c4", n, seed+2),
		rawSource("books", max(1, n/16), seed+3),
	)
	pile := dataset.Concat(
		rp,
		rawSource("wiki", n/4, seed+4),
		rawSource("stackexchange", n/5, seed+5),
		rawSource("arxiv", n/8, seed+6),
	)

	workDir, err := os.MkdirTemp("", "dj-pretrain-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workDir)
	type src struct {
		recipe, hub string
		docs        int
		seed        int64
	}
	sources := []src{
		{"pretrain-web-en", "web-en", n * 12, seed + 1},
		{"pretrain-c4", "c4", n, seed + 2},
		{"pretrain-books", "books", max(1, n/16), seed + 3},
		{"pretrain-wiki", "wiki", n / 4, seed + 4},
		{"pretrain-stackexchange", "stackexchange", n / 5, seed + 5},
		{"pretrain-arxiv", "arxiv", n / 8, seed + 6},
	}
	var refined []*dataset.Dataset
	byHub := map[string]*dataset.Dataset{}
	for _, sc := range sources {
		out, err := refineSource(sc.recipe, sc.hub, sc.docs, sc.seed, workDir)
		if err != nil {
			return nil, fmt.Errorf("refine %s: %w", sc.hub, err)
		}
		refined = append(refined, out)
		byHub[sc.hub] = out
	}
	// Epoch up-weighting of high-quality corpora, exactly as the paper's
	// recipe (Table 7): Books at 2 epochs, Wikipedia at 2.5.
	refined = append(refined, byHub["books"]) // 2nd books epoch
	wiki := byHub["wiki"]
	refined = append(refined, wiki)                                     // 2nd wiki epoch
	refined = append(refined, dataset.New(wiki.Samples[:wiki.Len()/2])) // half epoch
	return &PretrainMixes{
		RedPajama: rp,
		WithPile:  pile,
		Refined:   dataset.Concat(refined...),
	}, nil
}

// Fig7Point is one (recipe, token-budget) evaluation.
type Fig7Point struct {
	Recipe string
	Budget int // in TokenUnit multiples (the "B tokens" axis)
	Score  float64
}

// Fig7Result holds the full pre-training quality curve.
type Fig7Result struct {
	Points []Fig7Point
	Render string
}

// Fig7 reproduces Figure 7: average 16-task score vs pre-training token
// budget for the three recipes. Expected shape: every curve rises with
// tokens; the refined recipe dominates at every budget.
func Fig7(s Scale) (*Fig7Result, error) {
	mixes, err := BuildPretrainMixes(s)
	if err != nil {
		return nil, err
	}
	budgets := []int{50, 100, 150}
	recipes := []struct {
		name string
		data *dataset.Dataset
	}{
		{"RedPajama", mixes.RedPajama},
		{"RedPajama+Pile", mixes.WithPile},
		{"RedPajama+Pile (Data-Juicer)", mixes.Refined},
	}

	suite := llm.NewSuite(s.Seed + 990_001)
	anchor := llm.Pretrain("anchor", "RedPajama", mixes.RedPajama.Clone(),
		llm.TrainConfig{TokenBudget: budgets[0] * s.TokenUnit, Seed: s.Seed})
	suite.Calibrate(anchor)

	res := &Fig7Result{}
	rows := make(map[string][]string)
	for _, rec := range recipes {
		for _, b := range budgets {
			m := llm.Pretrain(fmt.Sprintf("%s-%dB", rec.name, b), rec.name, rec.data.Clone(),
				llm.TrainConfig{TokenBudget: b * s.TokenUnit, Seed: s.Seed})
			sc, err := suite.Evaluate(m)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig7Point{Recipe: rec.name, Budget: b, Score: sc.Average})
			rows[rec.name] = append(rows[rec.name], fmt.Sprintf("%.2f", sc.Average))
		}
	}
	var tableRows [][]string
	for _, rec := range recipes {
		tableRows = append(tableRows, append([]string{rec.name}, rows[rec.name]...))
	}
	res.Render = "Figure 7 — average score on 16 tasks vs pre-training tokens\n" +
		table([]string{"recipe", "50 units", "100 units", "150 units"}, tableRows)
	return res, nil
}

// Table2Row is one pre-trained model comparison row.
type Table2Row struct {
	Model  string
	Data   string
	Tokens string
	Score  float64
}

// Table2Result reproduces Table 2 (and retains the evaluated score sets
// for Table 9).
type Table2Result struct {
	Rows   []Table2Row
	Render string
	// Scores per model, for the per-task breakdown of Table 9.
	AllScores []llm.Scores
	TaskNames []string
}

// Table2 reproduces Table 2: baseline models trained on more raw tokens
// vs the refined recipe at half the budget, plus IFT continuations.
// Expected shape: Data-Juicer@150 beats Falcon@350 and Pythia@300; IFT
// continuation helps; the refined IFT beats the raw IFT with ~1/3 data.
func Table2(s Scale) (*Table2Result, error) {
	mixes, err := BuildPretrainMixes(s)
	if err != nil {
		return nil, err
	}
	u := s.TokenUnit

	// Baselines: Falcon-like (filtered web only, 350 units) and
	// Pythia-like (raw Pile mix, 300 units).
	refinedWeb := rawSource("c4", s.SourceDocs*2, s.Seed+41)
	falcon := llm.Pretrain("Falcon-1.3B", "RefinedWeb", refinedWeb,
		llm.TrainConfig{TokenBudget: 350 * u, Seed: s.Seed})
	pythia := llm.Pretrain("Pythia-1.4B", "Pile", mixes.WithPile.Clone(),
		llm.TrainConfig{TokenBudget: 300 * u, Seed: s.Seed})
	dj := llm.Pretrain("LLaMA-1.3B (Data-Juicer)", "Data-Juicer (RedPajama+Pile)", mixes.Refined.Clone(),
		llm.TrainConfig{TokenBudget: 150 * u, Seed: s.Seed})

	// IFT continuations. The Alpaca-CoT collection is heterogeneous: only
	// part of it is clean instruction data, the rest carries web-grade
	// noise. The raw continuation spends its budget on the whole mix; the
	// refined continuation (the Data-Juicer IFT recipe) filters to the
	// clean subset and diversity-samples it, using ~1/3 the token volume
	// (the paper's 15B vs 4.7B).
	cleanIFT := rawSource("ift-en", s.FinetunePool/3, s.Seed+42)
	noisyIFT := corpus.NoisifyDataset(
		rawSource("ift-en", s.FinetunePool*2/3, s.Seed+46), 1.4, s.Seed+47)
	iftRaw := dataset.Concat(cleanIFT, noisyIFT)
	djIFT := llm.Pretrain("+ Alpaca-CoT-IFT", "Data-Juicer (RedPajama+Pile)", mixes.Refined.Clone(),
		llm.TrainConfig{TokenBudget: 150 * u, Seed: s.Seed})
	djIFT.ContinueTraining(iftRaw, 15*u, s.Seed+43)

	iftRefined := sampler.Diversity(cleanIFT, cleanIFT.Len(), s.Seed+44)
	djIFTRefined := llm.Pretrain("+ Our Refined IFT", "Data-Juicer (RedPajama+Pile)", mixes.Refined.Clone(),
		llm.TrainConfig{TokenBudget: 150 * u, Seed: s.Seed})
	djIFTRefined.ContinueTraining(iftRefined, 5*u, s.Seed+45)

	suite := llm.NewSuite(s.Seed + 990_002)
	suite.Calibrate(pythia)

	models := []*llm.ReferenceModel{falcon, pythia, dj, djIFT, djIFTRefined}
	tokensCol := []string{
		fmt.Sprintf("%d units", 350),
		fmt.Sprintf("%d units", 300),
		fmt.Sprintf("%d units", 150),
		fmt.Sprintf("150 + 15 units"),
		fmt.Sprintf("150 + 5 units"),
	}
	res := &Table2Result{TaskNames: suite.TaskNames()}
	var rows [][]string
	for i, m := range models {
		sc, err := suite.Evaluate(m)
		if err != nil {
			return nil, err
		}
		res.AllScores = append(res.AllScores, sc)
		res.Rows = append(res.Rows, Table2Row{Model: m.Name, Data: m.DataNote, Tokens: tokensCol[i], Score: sc.Average})
		rows = append(rows, []string{m.Name, m.DataNote, tokensCol[i], fmt.Sprintf("%.2f", sc.Average)})
	}
	res.Render = "Table 2 — average score of pre-trained models on the 16-task suite\n" +
		table([]string{"model", "training data", "#tokens", "score"}, rows)
	return res, nil
}

// Table9 renders the per-task breakdown of the Table 2 models.
func Table9(t2 *Table2Result) string {
	return "Table 9 — per-task scores of the Table 2 models\n" +
		llm.RenderScores(t2.TaskNames, t2.AllScores)
}
