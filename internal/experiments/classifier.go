package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/quality"
)

// classifierData builds the training corpora of Table 6: positives and
// negatives per classifier kind.
func classifierData(s Scale) map[quality.Kind][2][]string {
	collect := func(kind string, docs int, seed int64) []string {
		d, err := corpus.Hub(kind, docs, seed)
		if err != nil {
			panic(err)
		}
		out := make([]string, d.Len())
		for i, smp := range d.Samples {
			out[i] = smp.Text
		}
		return out
	}
	n := s.SourceDocs
	// GPT-3: Wikipedia+Books positives vs CommonCrawl negatives.
	gpt3Pos := append(collect("wiki", n, s.Seed+71), collect("books", n/2, s.Seed+72)...)
	gpt3Neg := collect("web-en", n+n/2, s.Seed+73)

	// Chinese: clean zh positives vs noisy zh negatives.
	zhPosD := corpus.WebZH(corpus.Options{Docs: n, Seed: s.Seed + 74, Noise: 0.01})
	zhNegD := corpus.WebZH(corpus.Options{Docs: n, Seed: s.Seed + 75, Noise: 3.0})
	var zhPos, zhNeg []string
	for _, smp := range zhPosD.Samples {
		zhPos = append(zhPos, smp.Text)
	}
	for _, smp := range zhNegD.Samples {
		zhNeg = append(zhNeg, smp.Text)
	}

	// Code: the paper labels by star count (>=1372 stars positive), which
	// barely correlates with text content — the cause of the weak code F1
	// in Table 5. We reproduce exactly that labeling.
	codeD := corpus.Code(corpus.Options{Docs: n * 2, Seed: s.Seed + 76})
	var codePos, codeNeg []string
	for _, smp := range codeD.Samples {
		stars, _ := smp.GetFloat("meta.stars")
		if stars >= 1372 {
			codePos = append(codePos, smp.Text)
		} else {
			codeNeg = append(codeNeg, smp.Text)
		}
	}
	return map[quality.Kind][2][]string{
		quality.KindGPT3:    {gpt3Pos, gpt3Neg},
		quality.KindChinese: {zhPos, zhNeg},
		quality.KindCode:    {codePos, codeNeg},
	}
}

// Table5Row is one classifier evaluation row.
type Table5Row struct {
	Classifier string
	Metrics    quality.Metrics
}

// Table5Result reproduces Table 5 and retains the trained classifiers for
// Table 4.
type Table5Result struct {
	Rows        []Table5Row
	Render      string
	Classifiers map[quality.Kind]*quality.Classifier
}

// Table5 trains the three quality classifiers with a 4:1 split and
// evaluates precision/recall/F1. Expected shape: GPT-3 and Chinese
// classifiers score high; the code classifier is weak because its labels
// (star counts) barely reflect text content.
func Table5(s Scale) (*Table5Result, error) {
	data := classifierData(s)
	res := &Table5Result{Classifiers: map[quality.Kind]*quality.Classifier{}}
	order := []quality.Kind{quality.KindGPT3, quality.KindChinese, quality.KindCode}
	names := map[quality.Kind]string{
		quality.KindGPT3: "GPT-3", quality.KindChinese: "Chinese", quality.KindCode: "Code",
	}
	var rows [][]string
	for _, kind := range order {
		pos, neg := data[kind][0], data[kind][1]
		texts := append(append([]string{}, pos...), neg...)
		labels := make([]int, len(texts))
		for i := range pos {
			labels[i] = 1
		}
		trainX, trainY, evalX, evalY := quality.Split(texts, labels, 0.8, s.Seed+80)
		var p, n []string
		for i, x := range trainX {
			if trainY[i] == 1 {
				p = append(p, x)
			} else {
				n = append(n, x)
			}
		}
		c := quality.Train(kind, p, n, quality.TrainOptions{Seed: s.Seed + 81})
		res.Classifiers[kind] = c
		m := c.Evaluate(evalX, evalY)
		res.Rows = append(res.Rows, Table5Row{Classifier: names[kind], Metrics: m})
		rows = append(rows, []string{
			names[kind],
			fmt.Sprintf("%.2f%%", m.Precision*100),
			fmt.Sprintf("%.2f%%", m.Recall*100),
			fmt.Sprintf("%.2f%%", m.F1*100),
		})
	}
	res.Render = "Table 5 — quality classifier evaluation (4:1 split)\n" +
		table([]string{"quality classifier", "precision", "recall", "F1"}, rows)
	return res, nil
}

// Table4Row is one keep-ratio measurement.
type Table4Row struct {
	Classifier string
	KeepLabel  float64 // -1 when not measured (matching the paper's "-")
	KeepPareto float64
}

// Table4Result reproduces Table 4.
type Table4Result struct {
	Rows   []Table4Row
	Render string
}

// Table4 measures the keeping ratios of the trained classifiers on the
// synthetic CommonCrawl. Expected shape: the Pareto rule keeps fewer
// documents than the label rule; the Chinese classifier's label ratio is
// of the same order as the English one.
func Table4(s Scale, t5 *Table5Result) (*Table4Result, error) {
	if t5 == nil {
		var err error
		t5, err = Table5(s)
		if err != nil {
			return nil, err
		}
	}
	ccEN, err := corpus.Hub("web-en", s.SourceDocs*3, s.Seed+85)
	if err != nil {
		return nil, err
	}
	var enTexts []string
	for _, smp := range ccEN.Samples {
		enTexts = append(enTexts, smp.Text)
	}
	// The Chinese classifier is applied to general CommonCrawl — mostly
	// non-Chinese junk plus a small noisy Chinese slice — which is why the
	// paper's Chinese keeping ratio is tiny (1.81%).
	ccZH := corpus.WebZH(corpus.Options{Docs: s.SourceDocs / 2, Seed: s.Seed + 86, Noise: 1.5})
	zhTexts := append([]string{}, enTexts...)
	for _, smp := range ccZH.Samples {
		zhTexts = append(zhTexts, smp.Text)
	}

	gpt3 := t5.Classifiers[quality.KindGPT3]
	zh := t5.Classifiers[quality.KindChinese]
	res := &Table4Result{
		Rows: []Table4Row{
			{Classifier: "Our GPT-3",
				KeepLabel:  gpt3.KeepRatio(enTexts, quality.KeepLabel, s.Seed+87),
				KeepPareto: gpt3.KeepRatio(enTexts, quality.KeepPareto, s.Seed+88)},
			{Classifier: "Chinese",
				KeepLabel:  zh.KeepRatio(zhTexts, quality.KeepLabel, s.Seed+89),
				KeepPareto: -1},
		},
	}
	rows := [][]string{
		{"Original GPT-3 (paper)", "-", "1.30%"},
	}
	for _, r := range res.Rows {
		label, pareto := "-", "-"
		if r.KeepLabel >= 0 {
			label = fmt.Sprintf("%.2f%%", r.KeepLabel*100)
		}
		if r.KeepPareto >= 0 {
			pareto = fmt.Sprintf("%.2f%%", r.KeepPareto*100)
		}
		rows = append(rows, []string{r.Classifier, label, pareto})
	}
	res.Render = "Table 4 — keeping ratio on (synthetic) CommonCrawl\n" +
		table([]string{"quality classifier", "keep ratio @ label", "keep ratio @ Pareto"}, rows)
	return res, nil
}
