package experiments

import (
	"repro/internal/dataset"
	"repro/internal/hpo"
	"repro/internal/ops"
	"repro/internal/quality"
	"repro/internal/sample"
	"repro/internal/sampler"
	"repro/internal/text"
)

// Fig3Result reproduces the Sec. 4.1 data-mixing HPO demonstration.
type Fig3Result struct {
	Trials []hpo.Trial
	Best   hpo.Trial
	Render string
}

// Fig3HPO runs the data-mixing example of Sec. 4.1: search mixture
// weights w_i over three source datasets (clean wiki, medium c4, noisy
// web) maximizing n/N + s, where n is the token count of the deduplicated
// mixture, N the total token count, and s its average quality-classifier
// score. Expected shape: the wiki weight carries positive correlation and
// high importance, the raw web weight negative.
func Fig3HPO(s Scale) (*Fig3Result, error) {
	// Candidate datasets.
	names := []string{"wiki", "c4", "web-en"}
	var sources []*dataset.Dataset
	for i, n := range names {
		sources = append(sources, rawSource(n, s.SourceDocs, s.Seed+120+int64(i)))
	}
	// Quality scorer (GPT-3 classifier trained on clean vs noisy tiers).
	var pos, neg []string
	for _, smp := range rawSource("wiki", s.SourceDocs/2, s.Seed+124).Samples {
		pos = append(pos, smp.Text)
	}
	for _, smp := range rawSource("web-en", s.SourceDocs/2, s.Seed+125).Samples {
		neg = append(neg, smp.Text)
	}
	scorer := quality.Train(quality.KindGPT3, pos, neg, quality.TrainOptions{Seed: s.Seed + 126})

	// Total token count N across all candidates.
	var totalTokens float64
	for _, d := range sources {
		for _, smp := range d.Samples {
			totalTokens += float64(len(text.Words(smp.Text)))
		}
	}

	dedup, err := ops.Build("document_deduplicator", nil)
	if err != nil {
		return nil, err
	}

	space := hpo.Space{
		{Name: "w_wiki", Min: 0, Max: 1},
		{Name: "w_c4", Min: 0, Max: 1},
		{Name: "w_web", Min: 0, Max: 1},
	}
	weightNames := []string{"w_wiki", "w_c4", "w_web"}

	objective := func(params map[string]float64) float64 {
		// Steps (3)–(5) of the Sec. 4.1 example: draw w_i of each source,
		// mix, deduplicate, score.
		var parts []*dataset.Dataset
		for i, d := range sources {
			w := params[weightNames[i]]
			k := int(w * float64(d.Len()))
			parts = append(parts, sampler.Reservoir(d, k, s.Seed+130+int64(i)))
		}
		mixed := dataset.Concat(parts...)
		cleaned, _, err := dedup.(ops.Deduplicator).Dedup(mixed, 0)
		if err != nil {
			return 0
		}
		var tokens, qsum float64
		for _, smp := range cleaned.Samples {
			tokens += float64(len(text.Words(smp.Text)))
			qsum += scorer.QualityScore(smp.Text)
		}
		avgQ := 0.0
		if cleaned.Len() > 0 {
			avgQ = qsum / float64(cleaned.Len())
		}
		return tokens/totalTokens + avgQ
	}

	trials := hpo.TPE(space, objective, 24, s.Seed+131)
	res := &Fig3Result{
		Trials: trials,
		Best:   hpo.Best(trials),
		Render: "Figure 3 — HPO over data-mixing weights (target: n/N + quality score)\n" +
			hpo.RenderAnalysis(space, trials),
	}
	return res, nil
}

var _ = sample.New // document the mixing pipeline operates on typed samples
