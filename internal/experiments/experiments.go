// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the synthetic substrate. Each experiment returns
// both structured results and a rendered table whose rows mirror the
// paper's. Absolute numbers differ (the substrate is a simulator at
// laptop scale); the experiments reproduce the paper's *shape*: who wins,
// by roughly what factor, and where crossovers fall.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"

	// The experiments execute recipes, so the full operator pool must be
	// registered.
	_ "repro/internal/ops/all"
)

// Scale sizes the experiments. Quick() is used by unit tests and CI;
// Full() by the reporting benchmarks.
type Scale struct {
	// SourceDocs is the per-source document count for pre-training mixes.
	SourceDocs int
	// TokenUnit is the word-token budget standing in for "1B tokens" in
	// the paper's axes.
	TokenUnit int
	// FinetunePool is the CFT candidate pool size.
	FinetunePool int
	// FinetunePick is the tuning-set size drawn from the pool.
	FinetunePick int
	// JudgePrompts is the pairwise-eval prompt count.
	JudgePrompts int
	// PerfDocs sizes the Figure 8/9 datasets (small, medium, large).
	PerfDocs [3]int
	// DistDocs sizes the Figure 10 datasets.
	DistDocs int
	// Seed is the master experiment seed.
	Seed int64
}

// Quick returns the CI-sized scale.
func Quick() Scale {
	return Scale{
		SourceDocs:   150,
		TokenUnit:    400,
		FinetunePool: 800,
		FinetunePick: 300,
		JudgePrompts: 160,
		PerfDocs:     [3]int{60, 200, 600},
		DistDocs:     600,
		Seed:         20240611,
	}
}

// Full returns the report-sized scale.
func Full() Scale {
	return Scale{
		SourceDocs:   400,
		TokenUnit:    1000,
		FinetunePool: 2000,
		FinetunePick: 500,
		JudgePrompts: 240,
		PerfDocs:     [3]int{150, 600, 2000},
		DistDocs:     2000,
		Seed:         20240611,
	}
}

// rawSource generates one unprocessed corpus component.
func rawSource(name string, docs int, seed int64) *dataset.Dataset {
	d, err := corpus.Hub(name, docs, seed)
	if err != nil {
		panic(err) // names are compile-time constants below
	}
	return d
}

// refineSource runs a source through its built-in per-source recipe.
func refineSource(recipeName, hubName string, docs int, seed int64, workDir string) (*dataset.Dataset, error) {
	r, err := config.BuiltinRecipe(recipeName)
	if err != nil {
		return nil, err
	}
	r.UseCache = false
	r.EnableTrace = false
	r.WorkDir = workDir
	exec, err := core.NewExecutor(r)
	if err != nil {
		return nil, err
	}
	out, _, err := exec.Run(rawSource(hubName, docs, seed))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// table renders rows with a header; columns are padded to the widest cell.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
