package experiments

import (
	"fmt"
	"sort"

	"repro/internal/ops"
	"repro/internal/quality"
)

// Table1 renders the operator-pool overview of the paper's Table 1 from
// the live registry: per-category counts and the registered operators with
// their usage tags. Unlike the other experiments this is descriptive — it
// documents what the system ships rather than measuring behaviour.
func Table1() string {
	infos := ops.List()
	byCat := map[ops.Category][]ops.Info{}
	for _, info := range infos {
		byCat[info.Category] = append(byCat[info.Category], info)
	}
	catOrder := []ops.Category{ops.CategoryMapper, ops.CategoryFilter, ops.CategoryDeduplicator}
	catFunc := map[ops.Category]string{
		ops.CategoryMapper:       "In-place text editing",
		ops.CategoryFilter:       "Conditional text removing",
		ops.CategoryDeduplicator: "Duplication removing",
	}
	var rows [][]string
	rows = append(rows, []string{"formatter", "Data format unifying",
		"jsonl, json, txt, md, csv, tsv, html, code files, hub:<name>, directories"})
	for _, cat := range catOrder {
		members := byCat[cat]
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.Name
		}
		rows = append(rows, []string{
			string(cat) + fmt.Sprintf(" (%d)", len(members)),
			catFunc[cat],
			joinWrapped(names, 3),
		})
	}
	return "Table 1 — the operator pool (from the live registry)\n" +
		table([]string{"category", "function", "operators"}, rows)
}

func joinWrapped(names []string, perLine int) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			if i%perLine == 0 {
				out += ",\n"
			} else {
				out += ", "
			}
		}
		out += n
	}
	return out
}

// Table6 renders the quality-classifier training configuration, matching
// the layout of the paper's Table 6 with this repo's substitutions.
func Table6() string {
	rows := [][]string{
		{string(quality.KindGPT3), "word tokenizer", "pareto",
			"wiki + books (synthetic)", "web-en (synthetic CommonCrawl)"},
		{string(quality.KindChinese), "char tokenizer", "label",
			"clean web-zh", "noisy web-zh"},
		{string(quality.KindCode), "identifier tokenizer", "label",
			"code with stars >= 1372", "remaining code (label noise!)"},
	}
	return "Table 6 — quality classifier training configuration\n" +
		table([]string{"classifier", "tokenizer", "keep method", "positive data", "negative data"}, rows)
}
