package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sample"
)

// Fig8Cell is one (dataset, system, np) measurement.
type Fig8Cell struct {
	Dataset  string
	System   string
	NP       int
	Elapsed  time.Duration
	PeakHeap uint64
	Kept     int
}

// Fig8Result reproduces the end-to-end system comparison.
type Fig8Result struct {
	Cells  []Fig8Cell
	Render string
}

// fig8Datasets builds the three comparison workloads (Books-, arXiv- and
// C4-like, mirroring the paper's choices).
func fig8Datasets(s Scale) map[string]*dataset.Dataset {
	return map[string]*dataset.Dataset{
		"books": rawSource("books", s.PerfDocs[0], s.Seed+91),
		"arxiv": rawSource("arxiv", s.PerfDocs[1], s.Seed+92),
		"c4":    rawSource("c4", s.PerfDocs[2], s.Seed+93),
	}
}

// Fig8 reproduces Figure 8: wall-clock time and memory of Data-Juicer vs
// the RedPajama-like and Dolma-like baselines, across worker counts.
// Expected shape: Data-Juicer needs less time and less memory on every
// dataset (the baselines recompute word splits per op, copy rows, and
// round-trip through disk).
func Fig8(s Scale, nps []int) (*Fig8Result, error) {
	if len(nps) == 0 {
		nps = []int{1, 2, 4}
	}
	datasets := fig8Datasets(s)
	res := &Fig8Result{}

	// measure times fn with min-of-3 repeats (robust against scheduler
	// noise), then samples memory in one separate untimed pass.
	measure := func(run func() (int, error)) (time.Duration, uint64, int, error) {
		var best time.Duration
		var kept int
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			k, err := run()
			if err != nil {
				return 0, 0, 0, err
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
			kept = k
		}
		var memErr error
		mem := baseline.TrackMemory(2*time.Millisecond, func() {
			if _, err := run(); err != nil {
				memErr = err
			}
		})
		if memErr != nil {
			return 0, 0, 0, memErr
		}
		return best, mem.PeakHeap, kept, nil
	}

	for _, name := range []string{"books", "arxiv", "c4"} {
		d := datasets[name]
		texts := make([]string, d.Len())
		for i, smp := range d.Samples {
			texts[i] = smp.Text
		}
		for _, np := range nps {
			// Data-Juicer.
			workDir, err := os.MkdirTemp("", "dj-fig8-*")
			if err != nil {
				return nil, err
			}
			elapsed, peak, kept, err := measure(func() (int, error) {
				r, err := config.ParseRecipe(baseline.ComparisonRecipeYAML)
				if err != nil {
					return 0, err
				}
				r.WorkDir = workDir
				r.NP = np
				exec, err := core.NewExecutor(r)
				if err != nil {
					return 0, err
				}
				out, _, err := exec.Run(d.Clone())
				if err != nil {
					return 0, err
				}
				return out.Len(), nil
			})
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig8Cell{
				Dataset: name, System: "Data-Juicer", NP: np,
				Elapsed: elapsed, PeakHeap: peak, Kept: kept,
			})
			os.RemoveAll(workDir)

			// RedPajama-like.
			rpDir, _ := os.MkdirTemp("", "dj-rp-*")
			elapsed, peak, kept, err = measure(func() (int, error) {
				out, err := baseline.RedPajamaRun(texts, rpDir, np)
				return len(out), err
			})
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig8Cell{
				Dataset: name, System: "RedPajama", NP: np,
				Elapsed: elapsed, PeakHeap: peak, Kept: kept,
			})
			os.RemoveAll(rpDir)

			// Dolma-like.
			dolDir, _ := os.MkdirTemp("", "dj-dolma-*")
			elapsed, peak, kept, err = measure(func() (int, error) {
				out, err := baseline.DolmaRun(texts, dolDir, 4, np)
				return len(out), err
			})
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig8Cell{
				Dataset: name, System: "Dolma", NP: np,
				Elapsed: elapsed, PeakHeap: peak, Kept: kept,
			})
			os.RemoveAll(dolDir)
		}
	}

	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Dataset, c.System, fmt.Sprint(c.NP),
			c.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f MB", float64(c.PeakHeap)/(1<<20)),
			fmt.Sprint(c.Kept),
		})
	}
	res.Render = "Figure 8 — end-to-end time and memory vs baselines\n" +
		table([]string{"dataset", "system", "np", "time", "peak heap", "kept"}, rows)
	return res, nil
}

// fig9RecipeYAML is the Figure 9 workload: 5 Mappers, 8 Filters (5 of
// them fusible word/line-context users), 1 Deduplicator.
const fig9RecipeYAML = `
project_name: fig9
use_cache: false
process:
  - fix_unicode_mapper:
  - clean_email_mapper:
  - clean_links_mapper:
  - remove_long_words_mapper:
  - whitespace_normalization_mapper:
  - alphanumeric_filter:
      min_ratio: 0.2
  - special_characters_filter:
      max_ratio: 0.4
  - text_length_filter:
      min_len: 10
  - word_num_filter:
      min_num: 5
  - word_repetition_filter:
      rep_len: 5
      max_ratio: 0.6
  - stopwords_filter:
      min_ratio: 0.02
  - flagged_words_filter:
      max_ratio: 0.1
  - perplexity_filter:
      max_ppl: 1000000
  - document_deduplicator:
`

// fig9FusibleYAML isolates the five fusible filters, for the
// "fusible OPs only" series of Figure 9.
const fig9FusibleYAML = `
project_name: fig9-fusible
use_cache: false
process:
  - word_num_filter:
      min_num: 5
  - word_repetition_filter:
      rep_len: 5
      max_ratio: 0.6
  - stopwords_filter:
      min_ratio: 0.02
  - flagged_words_filter:
      max_ratio: 0.1
  - perplexity_filter:
      max_ppl: 1000000
`

// Fig9Row is one dataset-size measurement.
type Fig9Row struct {
	Label          string
	NP             int
	AllUnfused     time.Duration
	AllFused       time.Duration
	AllPlanned     time.Duration // fused + measured-cost reordering from the profile sidecar
	FusibleUnfused time.Duration
	FusibleFused   time.Duration
}

// Fig9Result reproduces the OP-fusion experiment.
type Fig9Result struct {
	Rows   []Fig9Row
	Render string
}

// Fig9 reproduces Figure 9 through the unified planner: total pipeline
// time and fusible-only time, with and without OP fusion, across dataset
// sizes — plus a third series where the planner orders the commutative
// filter groups from measured cost × selectivity (the profile sidecar a
// priming run persisted) instead of static hints. Expected shape: fusion
// saves a double-digit percentage of total time and a larger share of
// the fusible OPs' own time; the measured-cost plan is no slower than
// the static-hint plan.
func Fig9(s Scale, np int) (*Fig9Result, error) {
	if np <= 0 {
		np = 4
	}
	sizes := []struct {
		label string
		docs  int
	}{
		{"small", s.PerfDocs[0]},
		{"medium", s.PerfDocs[1]},
		{"large", s.PerfDocs[2]},
	}
	// run times the recipe with min-of-three repeats: robust against
	// scheduler noise from other processes (the shape, not a single
	// sample, is the result). With profiled=false planning is pinned to
	// static hints; with profiled=true a priming run persists measured
	// profiles into a fresh work dir and every timed executor replans
	// from them.
	run := func(yaml string, fusion, profiled bool, d *dataset.Dataset) (time.Duration, error) {
		r, err := config.ParseRecipe(yaml)
		if err != nil {
			return 0, err
		}
		r.UseCache = false
		r.OpFusion = fusion
		r.UseProfiles = profiled
		r.NP = np
		r.WorkDir = os.TempDir()
		if profiled {
			workDir, err := os.MkdirTemp("", "dj-fig9-planned-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(workDir)
			r.WorkDir = workDir
			prime, err := core.NewExecutor(r)
			if err != nil {
				return 0, err
			}
			if _, _, err := prime.Run(d.Clone()); err != nil {
				return 0, err
			}
		}
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			exec, err := core.NewExecutor(r)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if _, _, err := exec.Run(d.Clone()); err != nil {
				return 0, err
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	res := &Fig9Result{}
	for _, size := range sizes {
		base := rawSource("c4", size.docs, s.Seed+95)
		row := Fig9Row{Label: size.label, NP: np}
		var err error
		if row.AllUnfused, err = run(fig9RecipeYAML, false, false, base.Clone()); err != nil {
			return nil, err
		}
		if row.AllFused, err = run(fig9RecipeYAML, true, false, base.Clone()); err != nil {
			return nil, err
		}
		if row.AllPlanned, err = run(fig9RecipeYAML, true, true, base.Clone()); err != nil {
			return nil, err
		}
		if row.FusibleUnfused, err = run(fig9FusibleYAML, false, false, base.Clone()); err != nil {
			return nil, err
		}
		if row.FusibleFused, err = run(fig9FusibleYAML, true, false, base.Clone()); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	var rows [][]string
	for _, r := range res.Rows {
		savedAll := 100 * (1 - float64(r.AllFused)/float64(r.AllUnfused))
		savedPlanned := 100 * (1 - float64(r.AllPlanned)/float64(r.AllUnfused))
		savedFus := 100 * (1 - float64(r.FusibleFused)/float64(r.FusibleUnfused))
		rows = append(rows, []string{
			r.Label, fmt.Sprint(r.NP),
			r.AllUnfused.Round(time.Millisecond).String(),
			r.AllFused.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", savedAll),
			r.AllPlanned.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", savedPlanned),
			r.FusibleUnfused.Round(time.Millisecond).String(),
			r.FusibleFused.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", savedFus),
		})
	}
	res.Render = "Figure 9 — OP fusion and reordering effect (unified planner)\n" +
		table([]string{"dataset", "np", "all unfused", "all fused", "saved", "all planned", "saved", "fusible unfused", "fusible fused", "saved"}, rows)
	return res, nil
}

// AblationRowRepr compares the typed Sample representation against
// generic map rows for one mapper+filter pass (the A3 ablation).
func AblationRowRepr(docs int, seed int64) (typed, generic time.Duration, err error) {
	d := rawSource("c4", docs, seed)
	texts := make([]string, d.Len())
	for i, smp := range d.Samples {
		texts[i] = smp.Text
	}
	r, err := config.ParseRecipe(baseline.ComparisonRecipeYAML)
	if err != nil {
		return 0, 0, err
	}
	r.WorkDir = os.TempDir()
	r.UseProfiles = false // single timed run; keep the shared tmp dir clean
	r.NP = 1
	exec, err := core.NewExecutor(r)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if _, _, err := exec.Run(d.Clone()); err != nil {
		return 0, 0, err
	}
	typed = time.Since(start)

	dir, err := os.MkdirTemp("", "dj-ablation-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	start = time.Now()
	if _, err := baseline.RedPajamaRun(texts, dir, 1); err != nil {
		return 0, 0, err
	}
	generic = time.Since(start)
	return typed, generic, nil
}

var _ = sample.New // keep the typed-sample package linked for the ablation docs
