package experiments

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dist"
)

// Fig10Cell is one (dataset, engine, nodes) scalability measurement.
type Fig10Cell struct {
	Dataset string
	Engine  dist.Engine
	Nodes   int
	Total   time.Duration
}

// Fig10Result reproduces the distributed scalability experiment.
type Fig10Result struct {
	Cells  []Fig10Cell
	Render string
}

// fig10RecipeYAML keeps the processing load realistic but bounded.
const fig10RecipeYAML = `
project_name: fig10
use_cache: false
op_fusion: true
process:
  - clean_links_mapper:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
  - stopwords_filter:
      min_ratio: 0.02
  - word_repetition_filter:
      rep_len: 5
      max_ratio: 0.6
  - document_deduplicator:
`

// Fig10 reproduces Figure 10: processing time across cluster sizes for
// the Ray-like and Beam-like runners on StackExchange- and arXiv-like
// datasets (plus the single-machine executor at one node). Expected
// shape: Ray time falls near-linearly with nodes; Beam stays flat
// (loading is serialized); the original executor wins at one node.
func Fig10(s Scale) (*Fig10Result, error) {
	recipe, err := config.ParseRecipe(fig10RecipeYAML)
	if err != nil {
		return nil, err
	}
	nodesList := []int{1, 2, 4, 8, 16}
	datasets := map[string]string{
		"stackexchange": "stackexchange",
		"arxiv":         "arxiv",
	}
	res := &Fig10Result{}
	for _, name := range []string{"stackexchange", "arxiv"} {
		d := rawSource(datasets[name], s.DistDocs, s.Seed+97)
		shards, err := dist.EncodeShards(dist.Partition(d, 16))
		if err != nil {
			return nil, err
		}
		// Measure shard costs once; compose every engine/node-count from
		// the same measurements so curves are comparable.
		process, err := core.MeasureRunner(recipe)
		if err != nil {
			return nil, err
		}
		costs, err := dist.Measure(shards, process)
		if err != nil {
			return nil, err
		}
		// Original single-machine executor (one point, as in the paper).
		local, err := dist.Compose(dist.EngineLocal, costs, dist.Config{Nodes: 1, CoresPerNode: 64})
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, Fig10Cell{Dataset: name, Engine: dist.EngineLocal, Nodes: 1, Total: local.Total})
		for _, engine := range []dist.Engine{dist.EngineRay, dist.EngineBeam} {
			for _, nodes := range nodesList {
				r, err := dist.Compose(engine, costs, dist.Config{Nodes: nodes, CoresPerNode: 64})
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Fig10Cell{Dataset: name, Engine: engine, Nodes: nodes, Total: r.Total})
			}
		}
	}
	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Dataset, string(c.Engine), fmt.Sprint(c.Nodes),
			c.Total.Round(10 * time.Microsecond).String(),
		})
	}
	res.Render = "Figure 10 — processing time vs number of nodes (simulated cluster, measured per-shard costs)\n" +
		table([]string{"dataset", "engine", "nodes", "time"}, rows)
	return res, nil
}
