package experiments

import (
	"strings"
	"testing"

	"repro/internal/quality"
)

// The experiment tests assert the paper's qualitative shape at Quick
// scale: orderings and win/lose structure, not absolute numbers.

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("points = %d", len(res.Points))
	}
	score := map[string]map[int]float64{}
	for _, p := range res.Points {
		if score[p.Recipe] == nil {
			score[p.Recipe] = map[int]float64{}
		}
		score[p.Recipe][p.Budget] = p.Score
	}
	for _, budget := range []int{50, 100, 150} {
		dj := score["RedPajama+Pile (Data-Juicer)"][budget]
		rp := score["RedPajama"][budget]
		pile := score["RedPajama+Pile"][budget]
		if dj <= rp || dj <= pile {
			t.Errorf("budget %d: refined %.2f must dominate rp %.2f and pile %.2f", budget, dj, rp, pile)
		}
	}
	// Scores rise with tokens for every recipe.
	for recipe, by := range score {
		if !(by[150] > by[50]) {
			t.Errorf("%s: score must rise with budget: %v", recipe, by)
		}
	}
	if !strings.Contains(res.Render, "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]float64{}
	for _, r := range res.Rows {
		byModel[r.Model] = r.Score
	}
	dj := byModel["LLaMA-1.3B (Data-Juicer)"]
	if dj <= byModel["Falcon-1.3B"] || dj <= byModel["Pythia-1.4B"] {
		t.Errorf("refined@150 should beat raw baselines at 2x budget: %v", byModel)
	}
	if byModel["+ Alpaca-CoT-IFT"] <= dj {
		t.Errorf("IFT continuation should help: %v", byModel)
	}
	if byModel["+ Our Refined IFT"] <= byModel["+ Alpaca-CoT-IFT"] {
		t.Errorf("refined IFT should beat raw IFT with 1/3 volume: %v", byModel)
	}
	// Table 9 renders the same models per task.
	t9 := Table9(res)
	if !strings.Contains(t9, "MMLU") || !strings.Contains(t9, "Average") {
		t.Fatalf("table 9 = %q", t9)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.DJWins <= r.CompWins {
			t.Errorf("%s vs %s: DJ wins %d should beat competitor %d (ties %d)",
				r.DJName, r.Competitor, r.DJWins, r.CompWins, r.Ties)
		}
		if r.Ties == 0 {
			t.Errorf("%s: expected ties under the noisy judge", r.Competitor)
		}
	}
	// Data efficiency: DJ uses no more samples than the competitor in the
	// Alpaca and Belle pairings.
	if res.Rows[0].DJSize >= res.Rows[0].CompSize {
		t.Errorf("alpaca row: DJ should use less data: %+v", res.Rows[0])
	}
	if res.Rows[2].DJSize >= res.Rows[2].CompSize {
		t.Errorf("belle row: DJ should use less data: %+v", res.Rows[2])
	}
}

func TestTable5And4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Quick()
	t5, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]quality.Metrics{}
	for _, r := range t5.Rows {
		byName[r.Classifier] = r.Metrics
	}
	if byName["GPT-3"].F1 < 0.85 {
		t.Errorf("GPT-3 F1 = %v, want high", byName["GPT-3"].F1)
	}
	if byName["Chinese"].F1 < 0.8 {
		t.Errorf("Chinese F1 = %v, want high", byName["Chinese"].F1)
	}
	// The code classifier must be weak — its labels (star counts) carry no
	// textual signal, the paper's own finding.
	if byName["Code"].F1 > byName["GPT-3"].F1-0.2 {
		t.Errorf("Code F1 = %v should lag GPT-3 %v clearly", byName["Code"].F1, byName["GPT-3"].F1)
	}

	t4, err := Table4(s, t5)
	if err != nil {
		t.Fatal(err)
	}
	gpt3 := t4.Rows[0]
	if gpt3.KeepLabel <= 0 || gpt3.KeepLabel >= 1 {
		t.Errorf("label keep ratio = %v", gpt3.KeepLabel)
	}
	if gpt3.KeepPareto >= gpt3.KeepLabel {
		t.Errorf("pareto (%v) should keep fewer than label (%v)", gpt3.KeepPareto, gpt3.KeepLabel)
	}
	if !strings.Contains(t4.Render, "Pareto") {
		t.Fatal("table 4 render incomplete")
	}
}

// raceEnabled is set by race_on_test.go when the race detector is active.
var raceEnabled bool

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("cross-system wall-clock comparison is not meaningful under the race detector")
	}
	s := Quick()
	s.PerfDocs = [3]int{40, 80, 150} // keep CI fast
	res, err := Fig8(s, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Data-Juicer must beat both baselines on time for every dataset.
	times := map[string]map[string]int64{}
	for _, c := range res.Cells {
		if times[c.Dataset] == nil {
			times[c.Dataset] = map[string]int64{}
		}
		times[c.Dataset][c.System] = int64(c.Elapsed)
	}
	for ds, bySystem := range times {
		if bySystem["Data-Juicer"] >= bySystem["RedPajama"] {
			t.Errorf("%s: DJ time %v should beat RedPajama %v", ds, bySystem["Data-Juicer"], bySystem["RedPajama"])
		}
		if bySystem["Data-Juicer"] >= bySystem["Dolma"] {
			t.Errorf("%s: DJ time %v should beat Dolma %v", ds, bySystem["Data-Juicer"], bySystem["Dolma"])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		// Pooled zero-allocation tokenization shrank the absolute cost
		// fusion saves, so at the smallest scale the fused-vs-unfused
		// wall-clock margin sits inside race-instrumentation noise.
		// The uninstrumented build still asserts the ordering.
		t.Skip("fused-vs-unfused wall-clock margins are not meaningful under the race detector")
	}
	s := Quick()
	s.PerfDocs = [3]int{50, 120, 300}
	res, err := Fig9(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.AllFused >= r.AllUnfused {
			t.Errorf("%s: fusion should save total time: fused=%v unfused=%v", r.Label, r.AllFused, r.AllUnfused)
		}
		if r.FusibleFused >= r.FusibleUnfused {
			t.Errorf("%s: fusion should save fusible time: fused=%v unfused=%v", r.Label, r.FusibleFused, r.FusibleUnfused)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Quick()
	s.DistDocs = 400
	res, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	// Collect ray/beam times per dataset per node count.
	times := map[string]map[string]map[int]int64{}
	for _, c := range res.Cells {
		if times[c.Dataset] == nil {
			times[c.Dataset] = map[string]map[int]int64{}
		}
		if times[c.Dataset][string(c.Engine)] == nil {
			times[c.Dataset][string(c.Engine)] = map[int]int64{}
		}
		times[c.Dataset][string(c.Engine)][c.Nodes] = int64(c.Total)
	}
	for ds, byEngine := range times {
		ray := byEngine["ray"]
		if ray[16] >= ray[1] {
			t.Errorf("%s: ray should scale: 1 node %v vs 16 nodes %v", ds, ray[1], ray[16])
		}
		rayScale := float64(ray[1]) / float64(ray[16])
		beam := byEngine["beam"]
		beamScale := float64(beam[1]) / float64(beam[16])
		if rayScale < 2*beamScale {
			t.Errorf("%s: ray scaling (%.1fx) should dwarf beam (%.1fx)", ds, rayScale, beamScale)
		}
		if byEngine["local"][1] >= ray[1] {
			t.Errorf("%s: single-machine executor should beat 1-node ray", ds)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Table7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var total float64
	for _, r := range res.Rows {
		if r.Tokens <= 0 {
			t.Errorf("%s tokens = %d", r.Component, r.Tokens)
		}
		total += r.Proportion
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("proportions sum to %v", total)
	}
	// CommonCrawl dominates, as in the paper.
	if res.Rows[0].Component != "CommonCrawl" {
		t.Errorf("largest component = %s", res.Rows[0].Component)
	}
}

func TestTable8Shape(t *testing.T) {
	res, err := Table8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var langTotal int
	for _, n := range res.Counts["Language"] {
		langTotal += n
	}
	if langTotal != 39 {
		t.Fatalf("language census = %d, want 39 datasets", langTotal)
	}
	if res.Counts["Language"]["English"] <= res.Counts["Language"]["Chinese"] {
		t.Errorf("census skew wrong: %v", res.Counts["Language"])
	}
}

func TestFig3HPOShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Quick()
	s.SourceDocs = 80
	res, err := Fig3HPO(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 24 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// The best mix should lean on clean sources: w_wiki high.
	if res.Best.Params["w_wiki"] < 0.5 {
		t.Errorf("best mix underweights wiki: %+v", res.Best.Params)
	}
	if !strings.Contains(res.Render, "importance") {
		t.Fatal("render missing analysis")
	}
}

func TestDescriptiveTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"formatter", "mapper", "filter", "deduplicator", "word_num_filter"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
	t6 := Table6()
	for _, want := range []string{"gpt3", "chinese", "code", "pareto", "label noise"} {
		if !strings.Contains(t6, want) {
			t.Fatalf("table 6 missing %q", want)
		}
	}
}
