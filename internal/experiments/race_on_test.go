//go:build race

package experiments

// raceEnabled reports that this test binary was built with the race
// detector. Cross-system wall-clock comparisons are skipped under it:
// race instrumentation slows the goroutine-heavy Data-Juicer path far
// more than the mostly-serial baselines, inverting timing relationships
// the uninstrumented build upholds.
func init() { raceEnabled = true }
