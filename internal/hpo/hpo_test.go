package hpo

import (
	"math"
	"strings"
	"testing"
)

// sphere has its maximum 0 at (0.7, 0.3); a classic smooth test function.
func sphere(params map[string]float64) float64 {
	dx := params["x"] - 0.7
	dy := params["y"] - 0.3
	return -(dx*dx + dy*dy)
}

var space2D = Space{
	{Name: "x", Min: 0, Max: 1},
	{Name: "y", Min: 0, Max: 1},
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	trials := RandomSearch(space2D, sphere, 200, 1)
	if len(trials) != 200 {
		t.Fatalf("trials = %d", len(trials))
	}
	best := Best(trials)
	if best.Value < -0.02 {
		t.Fatalf("best = %+v", best)
	}
}

func TestRandomSearchDeterministic(t *testing.T) {
	a := Best(RandomSearch(space2D, sphere, 50, 7))
	b := Best(RandomSearch(space2D, sphere, 50, 7))
	if a.Value != b.Value {
		t.Fatal("random search not deterministic")
	}
}

func TestGridSearchCoversCorners(t *testing.T) {
	trials := GridSearch(space2D, sphere, 5)
	if len(trials) != 25 {
		t.Fatalf("grid size = %d", len(trials))
	}
	sawOrigin, sawMax := false, false
	for _, tr := range trials {
		if tr.Params["x"] == 0 && tr.Params["y"] == 0 {
			sawOrigin = true
		}
		if tr.Params["x"] == 1 && tr.Params["y"] == 1 {
			sawMax = true
		}
	}
	if !sawOrigin || !sawMax {
		t.Fatal("grid corners missing")
	}
}

func TestTPEBeatsRandomOnSmoothObjective(t *testing.T) {
	budget := 60
	var bestTPE, bestRnd float64 = math.Inf(-1), math.Inf(-1)
	// Average over a few seeds to avoid flakiness.
	for seed := int64(0); seed < 5; seed++ {
		bestTPE += Best(TPE(space2D, sphere, budget, seed)).Value
		bestRnd += Best(RandomSearch(space2D, sphere, budget, seed)).Value
	}
	if bestTPE < bestRnd-0.01 {
		t.Fatalf("TPE (%v) should not lose clearly to random (%v)", bestTPE, bestRnd)
	}
}

func TestTPEConvergesNearOptimum(t *testing.T) {
	best := Best(TPE(space2D, sphere, 80, 3))
	if best.Value < -0.01 {
		t.Fatalf("TPE best = %+v", best)
	}
}

func TestIntegerParam(t *testing.T) {
	space := Space{{Name: "n", Min: 1, Max: 10, Integer: true}}
	trials := RandomSearch(space, func(p map[string]float64) float64 { return -math.Abs(p["n"] - 5) }, 50, 2)
	for _, tr := range trials {
		if tr.Params["n"] != math.Round(tr.Params["n"]) {
			t.Fatalf("non-integer value: %v", tr.Params["n"])
		}
	}
}

func TestHyperbandPrefersGoodConfigs(t *testing.T) {
	// Budgeted objective: noisy at small budgets, converging to the true
	// sphere value at full budget.
	obj := func(p map[string]float64, budget int) float64 {
		noise := 0.5 / float64(budget)
		return sphere(p) - noise
	}
	trials := Hyperband(space2D, obj, 81, 3, 4)
	if len(trials) == 0 {
		t.Fatal("no trials returned")
	}
	best := Best(trials)
	if best.Value < -0.1 {
		t.Fatalf("hyperband best = %+v", best)
	}
}

func TestImportanceIdentifiesDominantParam(t *testing.T) {
	// Objective depends only on x: importance must concentrate there.
	objX := func(p map[string]float64) float64 { return p["x"] }
	trials := RandomSearch(space2D, objX, 300, 5)
	imp := Importance(space2D, trials)
	if imp["x"] < 0.9 {
		t.Fatalf("importance = %v", imp)
	}
	corr := Correlations(space2D, trials)
	if corr["x"] < 0.95 {
		t.Fatalf("correlation = %v", corr)
	}
	if math.Abs(corr["y"]) > 0.2 {
		t.Fatalf("y correlation = %v", corr["y"])
	}
}

func TestCorrelationsDegenerate(t *testing.T) {
	if got := Correlations(space2D, nil); got["x"] != 0 {
		t.Fatalf("empty = %v", got)
	}
	// Constant objective → zero correlation.
	trials := RandomSearch(space2D, func(map[string]float64) float64 { return 1 }, 20, 6)
	corr := Correlations(space2D, trials)
	if corr["x"] != 0 || corr["y"] != 0 {
		t.Fatalf("constant corr = %v", corr)
	}
}

func TestBestEmpty(t *testing.T) {
	b := Best(nil)
	if b.Params != nil || b.Value != 0 {
		t.Fatalf("Best(nil) = %+v", b)
	}
}

func TestRenderAnalysis(t *testing.T) {
	trials := RandomSearch(space2D, sphere, 40, 8)
	out := RenderAnalysis(space2D, trials)
	for _, want := range []string{"best value", "importance", "corr", "x", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis missing %q:\n%s", want, out)
		}
	}
}
