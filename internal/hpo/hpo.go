// Package hpo implements the hyper-parameter-optimization layer of
// Sec. 4.1: search-space definition, random and grid search, a simplified
// TPE-style Bayesian optimizer, and Hyperband early stopping — the W&B
// Sweeps substitute used to tune data-recipe hyper-parameters such as
// mixture weights and filter thresholds.
package hpo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Param is one search dimension, continuous in [Min, Max]. Integer
// dimensions round sampled values.
type Param struct {
	Name     string
	Min, Max float64
	Integer  bool
}

// Space is an ordered set of search dimensions.
type Space []Param

// clampRound applies the dimension's constraints to a raw value.
func (p Param) clampRound(v float64) float64 {
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	if p.Integer {
		v = math.Round(v)
	}
	return v
}

// sample draws a uniform value.
func (p Param) sample(rng *rand.Rand) float64 {
	return p.clampRound(p.Min + rng.Float64()*(p.Max-p.Min))
}

// Trial is one objective evaluation.
type Trial struct {
	Params map[string]float64
	Value  float64
}

// Objective maps a parameter assignment to the value being MAXIMIZED.
type Objective func(params map[string]float64) float64

// BudgetObjective additionally receives a resource budget (for
// Hyperband): evaluations at small budgets are cheap and noisy.
type BudgetObjective func(params map[string]float64, budget int) float64

// Best returns the highest-value trial (zero Trial for empty input).
func Best(trials []Trial) Trial {
	var best Trial
	found := false
	for _, t := range trials {
		if !found || t.Value > best.Value {
			best = t
			found = true
		}
	}
	return best
}

// RandomSearch evaluates n uniform draws.
func RandomSearch(space Space, obj Objective, n int, seed int64) []Trial {
	rng := rand.New(rand.NewSource(seed))
	trials := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		params := map[string]float64{}
		for _, p := range space {
			params[p.Name] = p.sample(rng)
		}
		trials = append(trials, Trial{Params: params, Value: obj(params)})
	}
	return trials
}

// GridSearch evaluates a full factorial grid with pointsPerDim points per
// dimension.
func GridSearch(space Space, obj Objective, pointsPerDim int) []Trial {
	if pointsPerDim < 2 {
		pointsPerDim = 2
	}
	var trials []Trial
	assign := make([]float64, len(space))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(space) {
			params := map[string]float64{}
			for i, p := range space {
				params[p.Name] = assign[i]
			}
			trials = append(trials, Trial{Params: params, Value: obj(params)})
			return
		}
		p := space[dim]
		for i := 0; i < pointsPerDim; i++ {
			v := p.Min + float64(i)*(p.Max-p.Min)/float64(pointsPerDim-1)
			assign[dim] = p.clampRound(v)
			rec(dim + 1)
		}
	}
	rec(0)
	return trials
}

// TPE runs a simplified Tree-structured Parzen Estimator: after nStartup
// random trials, it splits history into good (top gamma fraction) and bad
// sets, proposes candidates from Gaussian kernels around good points, and
// picks the candidate maximizing the good/bad density ratio.
func TPE(space Space, obj Objective, n int, seed int64) []Trial {
	const (
		nStartup   = 8
		gamma      = 0.25
		candidates = 24
	)
	rng := rand.New(rand.NewSource(seed))
	var trials []Trial
	for i := 0; i < n; i++ {
		var params map[string]float64
		if len(trials) < nStartup {
			params = map[string]float64{}
			for _, p := range space {
				params[p.Name] = p.sample(rng)
			}
		} else {
			params = tpePropose(space, trials, rng, gamma, candidates)
		}
		trials = append(trials, Trial{Params: params, Value: obj(params)})
	}
	return trials
}

func tpePropose(space Space, trials []Trial, rng *rand.Rand, gamma float64, candidates int) map[string]float64 {
	sorted := append([]Trial(nil), trials...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Value > sorted[j].Value })
	nGood := int(math.Ceil(gamma * float64(len(sorted))))
	if nGood < 1 {
		nGood = 1
	}
	good, bad := sorted[:nGood], sorted[nGood:]

	bestScore := math.Inf(-1)
	var bestParams map[string]float64
	for c := 0; c < candidates; c++ {
		params := map[string]float64{}
		score := 0.0
		for _, p := range space {
			// Sample around a random good point with a kernel width of 20%
			// of the range.
			center := good[rng.Intn(len(good))].Params[p.Name]
			width := (p.Max - p.Min) * 0.2
			v := p.clampRound(center + rng.NormFloat64()*width)
			params[p.Name] = v
			score += math.Log(kernelDensity(v, good, p, width)+1e-12) -
				math.Log(kernelDensity(v, bad, p, width)+1e-12)
		}
		if score > bestScore {
			bestScore = score
			bestParams = params
		}
	}
	return bestParams
}

func kernelDensity(v float64, trials []Trial, p Param, width float64) float64 {
	if len(trials) == 0 || width <= 0 {
		return 0
	}
	var d float64
	for _, t := range trials {
		z := (v - t.Params[p.Name]) / width
		d += math.Exp(-0.5 * z * z)
	}
	return d / float64(len(trials))
}

// Hyperband runs the bandit-based early-stopping scheme of Li et al.:
// brackets of successive halving trade off the number of configurations
// against the budget each receives. maxBudget is the full-fidelity
// resource; eta the halving factor (3 by convention).
func Hyperband(space Space, obj BudgetObjective, maxBudget int, eta float64, seed int64) []Trial {
	if eta < 2 {
		eta = 3
	}
	rng := rand.New(rand.NewSource(seed))
	sMax := int(math.Floor(math.Log(float64(maxBudget)) / math.Log(eta)))
	var all []Trial
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(eta, float64(s))))
		b := float64(maxBudget) * math.Pow(eta, -float64(s))
		// Successive halving on n configs starting at budget b.
		type cfg struct {
			params map[string]float64
			value  float64
		}
		configs := make([]cfg, n)
		for i := range configs {
			params := map[string]float64{}
			for _, p := range space {
				params[p.Name] = p.sample(rng)
			}
			configs[i] = cfg{params: params}
		}
		for round := 0; round <= s; round++ {
			budget := int(math.Max(1, b*math.Pow(eta, float64(round))))
			for i := range configs {
				configs[i].value = obj(configs[i].params, budget)
				if budget >= maxBudget {
					all = append(all, Trial{Params: configs[i].params, Value: configs[i].value})
				}
			}
			sort.Slice(configs, func(i, j int) bool { return configs[i].value > configs[j].value })
			keep := int(math.Max(1, float64(len(configs))/eta))
			configs = configs[:keep]
			// Record the survivors of the final round even if the top
			// budget was not reached exactly.
			if round == s {
				for _, c := range configs {
					all = append(all, Trial{Params: c.params, Value: c.value})
				}
			}
		}
	}
	return all
}

// Importance estimates per-parameter influence on the objective from a
// trial history: the squared Pearson correlation between the parameter
// and the value, normalized to sum to 1 — the Figure 3 "importance" view.
func Importance(space Space, trials []Trial) map[string]float64 {
	corr := Correlations(space, trials)
	out := make(map[string]float64, len(corr))
	var total float64
	for name, r := range corr {
		out[name] = r * r
		total += r * r
	}
	if total > 0 {
		for name := range out {
			out[name] /= total
		}
	}
	return out
}

// Correlations computes the Pearson correlation of each parameter with
// the objective value over a trial history.
func Correlations(space Space, trials []Trial) map[string]float64 {
	out := make(map[string]float64, len(space))
	n := float64(len(trials))
	if n < 2 {
		for _, p := range space {
			out[p.Name] = 0
		}
		return out
	}
	var meanV float64
	for _, t := range trials {
		meanV += t.Value
	}
	meanV /= n
	for _, p := range space {
		var meanX float64
		for _, t := range trials {
			meanX += t.Params[p.Name]
		}
		meanX /= n
		var cov, varX, varV float64
		for _, t := range trials {
			dx := t.Params[p.Name] - meanX
			dv := t.Value - meanV
			cov += dx * dv
			varX += dx * dx
			varV += dv * dv
		}
		if varX > 0 && varV > 0 {
			out[p.Name] = cov / math.Sqrt(varX*varV)
		} else {
			out[p.Name] = 0
		}
	}
	return out
}

// RenderAnalysis renders the Figure 3 style HPO report: best trial,
// parameter importance and correlations.
func RenderAnalysis(space Space, trials []Trial) string {
	var b strings.Builder
	best := Best(trials)
	fmt.Fprintf(&b, "trials: %d, best value: %.4f\n", len(trials), best.Value)
	b.WriteString("best params:\n")
	names := make([]string, 0, len(best.Params))
	for k := range best.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "  %-20s %.4f\n", k, best.Params[k])
	}
	imp := Importance(space, trials)
	corr := Correlations(space, trials)
	b.WriteString("parameter importance / correlation:\n")
	for _, p := range space {
		bar := strings.Repeat("#", int(imp[p.Name]*30))
		fmt.Fprintf(&b, "  %-20s %5.1f%% %-30s corr %+.3f\n", p.Name, imp[p.Name]*100, bar, corr[p.Name])
	}
	return b.String()
}
