package telemetry

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestGoldenJournalDecode pins the journal schema: the checked-in golden
// file covers every event type, and DecodeJournal (DisallowUnknownFields
// plus per-type validation) must accept it byte-for-byte. A field rename
// or removal fails here before it breaks downstream consumers.
func TestGoldenJournalDecode(t *testing.T) {
	events, err := ReadJournal(filepath.Join("testdata", "golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []string{
		EvRunStart, EvPlan, EvPhase, EvWorkerStart, EvControllerReplan,
		EvCacheHit, EvOpComplete, EvOpComplete, EvSpill, EvIndex, EvWorkerRetry,
		EvShardSteal, EvSpanEnd, EvTrace, EvWorkerWire, EvExport, EvSpanEnd, EvRunEnd,
	}
	if len(events) != len(wantTypes) {
		t.Fatalf("decoded %d events, want %d", len(events), len(wantTypes))
	}
	for i, want := range wantTypes {
		if events[i].Type != want {
			t.Errorf("event %d: type %q, want %q", i, events[i].Type, want)
		}
	}

	start := events[0]
	if start.Schema != SchemaVersion || start.Backend != "stream" || start.In != 100 {
		t.Errorf("run_start fields wrong: %+v", start)
	}
	plan := events[1]
	if len(plan.Ops) != 2 || len(plan.Passes) != 2 {
		t.Fatalf("plan: %d ops / %d passes, want 2/2", len(plan.Ops), len(plan.Passes))
	}
	if got := plan.Ops[1]; got.Name != "fused_filter" || len(got.Members) != 2 || !got.Measured {
		t.Errorf("plan fused op decoded wrong: %+v", got)
	}
	end := events[len(events)-1]
	if end.Status != "ok" || end.In != 100 || end.Out != 40 || end.Shards != 1 {
		t.Errorf("run_end fields wrong: %+v", end)
	}
}

// TestGoldenTimeline reconstructs the golden journal into the timeline
// view: per-op aggregation, phase/shard attribution, replans.
func TestGoldenTimeline(t *testing.T) {
	events, err := ReadJournal(filepath.Join("testdata", "golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := BuildTimeline(events)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Truncated {
		t.Error("timeline marked truncated despite run_end")
	}
	if tl.Replans != 1 || tl.Shards != 1 || tl.Status != "ok" {
		t.Errorf("headline wrong: %+v", tl)
	}
	if len(tl.Ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(tl.Ops))
	}
	if tl.Ops[0].Name != "a_mapper" || tl.Ops[0].In != 50 || tl.Ops[0].Wall != 200000 {
		t.Errorf("a_mapper aggregation wrong: %+v", tl.Ops[0])
	}
	if len(tl.Phases) != 1 || tl.Phases[0].Shards != 1 || tl.Phases[0].Dur != 600000 {
		t.Errorf("phase aggregation wrong: %+v", tl.Phases)
	}
	if tl.Ops[1].SpillRuns != 3 || tl.Ops[1].SpillBytes != 2097152 {
		t.Errorf("spill aggregation wrong: %+v", tl.Ops[1])
	}
	if tl.Ops[1].Partitions != 8 || tl.Ops[1].IndexWaits != 5 || tl.Ops[1].IndexWait != 120000 {
		t.Errorf("index aggregation wrong: %+v", tl.Ops[1])
	}
	if len(tl.Workers) != 2 {
		t.Fatalf("got %d worker lanes, want 2: %+v", len(tl.Workers), tl.Workers)
	}
	w1, w2 := tl.Workers[0], tl.Workers[1]
	if w1.Worker != 1 || w1.Addr != "127.0.0.1:43117" || w1.Ops != 1 ||
		w1.In != 50 || w1.Out != 40 || w1.Wall != 300000 || w1.Steals != 1 || w1.Disconnected {
		t.Errorf("worker 1 lane wrong: %+v", w1)
	}
	if w1.Proto != 2 || w1.DeltaStages != 2 || w1.BytesSent != 4194304 ||
		w1.BytesRecv != 1048576 || w1.RawBytesSent != 8388608 || w1.RawBytesRecv != 2097152 {
		t.Errorf("worker 1 wire accounting wrong: %+v", w1)
	}
	if w2.Worker != 2 || w2.Retries != 1 || !w2.Disconnected {
		t.Errorf("worker 2 lane wrong: %+v", w2)
	}
	out := tl.Render()
	for _, want := range []string{"run r1 [stream]", "fused_filter", "plan passes", "phases:",
		"spill (disk-backed dedup indexes)", "spilled 3 runs, 2.0 MiB",
		"index contention (partitioned signature indexes)", "8 partitions, 5 blocked claims",
		"workers:", "w1  127.0.0.1:43117", "1 retries", "DISCONNECTED",
		"wire (dispatch transport):", "w1  proto=2 sent 4.0 MiB recv 1.0 MiB (2.00x vs raw), 2 delta stages"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b","bogus":1}`,
		"start not first": `{"ts":1,"type":"plan","run_id":"r","ops":[{"name":"x"}]}` + "\n" +
			`{"ts":2,"type":"run_start","run_id":"r","schema":1,"backend":"b"}`,
		"newer schema":     `{"ts":1,"type":"run_start","run_id":"r","schema":99,"backend":"b"}`,
		"missing backend":  `{"ts":1,"type":"run_start","run_id":"r","schema":1}`,
		"missing run_id":   `{"ts":1,"type":"run_start","schema":1,"backend":"b"}`,
		"unknown type":     `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b"}` + "\n" + `{"ts":2,"type":"mystery","run_id":"r"}`,
		"plan without ops": `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b"}` + "\n" + `{"ts":2,"type":"plan","run_id":"r"}`,
		"replan no fields": `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b"}` + "\n" + `{"ts":2,"type":"controller_replan","run_id":"r"}`,
		"spill no name":    `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b"}` + "\n" + `{"ts":2,"type":"spill","run_id":"r","spill_runs":3}`,
		"spill no volume":  `{"ts":1,"type":"run_start","run_id":"r","schema":1,"backend":"b"}` + "\n" + `{"ts":2,"type":"spill","run_id":"r","name":"dedup"}`,
		"worker_start no worker": `{"ts":1,"type":"run_start","run_id":"r","schema":2,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"worker_start","run_id":"r","addr":"127.0.0.1:1"}`,
		"worker_start no addr": `{"ts":1,"type":"run_start","run_id":"r","schema":2,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"worker_start","run_id":"r","worker":1}`,
		"worker_retry no why": `{"ts":1,"type":"run_start","run_id":"r","schema":2,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"worker_retry","run_id":"r","worker":1}`,
		"shard_steal no worker": `{"ts":1,"type":"run_start","run_id":"r","schema":2,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"shard_steal","run_id":"r","shard":3}`,
		"worker_wire no worker": `{"ts":1,"type":"run_start","run_id":"r","schema":3,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"worker_wire","run_id":"r","bytes_sent":100}`,
		"worker_wire negative bytes": `{"ts":1,"type":"run_start","run_id":"r","schema":3,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"worker_wire","run_id":"r","worker":1,"bytes_recv":-5}`,
		"index no name": `{"ts":1,"type":"run_start","run_id":"r","schema":4,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"index","run_id":"r","partitions":8}`,
		"index no partitions": `{"ts":1,"type":"run_start","run_id":"r","schema":4,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"index","run_id":"r","name":"dedup"}`,
		"index negative waits": `{"ts":1,"type":"run_start","run_id":"r","schema":4,"backend":"b"}` + "\n" +
			`{"ts":2,"type":"index","run_id":"r","name":"dedup","partitions":8,"waits":-1}`,
	}
	for name, raw := range cases {
		if _, err := DecodeJournal([]byte(raw)); err == nil {
			t.Errorf("%s: decode accepted invalid journal", name)
		}
	}
}

// TestJournalTruncatedTail simulates a crash: a journal without run_end
// still decodes, and the timeline reports it as truncated.
func TestJournalTruncatedTail(t *testing.T) {
	raw := `{"ts":1000,"type":"run_start","run_id":"r","schema":1,"backend":"batch"}` + "\n" +
		`{"ts":5000,"type":"op_complete","run_id":"r","name":"x","in":10,"out":9}`
	events, err := DecodeJournal([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := BuildTimeline(events)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Truncated || tl.Dur != 4000 {
		t.Errorf("truncated journal: Truncated=%v Dur=%d, want true/4000", tl.Truncated, tl.Dur)
	}
	if !strings.Contains(tl.Render(), "incomplete journal") {
		t.Error("render does not flag the incomplete journal")
	}
}

// TestJournalRoundTrip writes through the real file-backed journal and
// reads it back with the validating decoder.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := NewJournal(dir, "round")
	if err != nil {
		t.Fatal(err)
	}
	j.Write(Event{TS: 1, Type: EvRunStart, RunID: "round", Schema: 1, Backend: "batch"})
	j.Write(Event{TS: 2, Type: EvOpComplete, RunID: "round", Name: "op", In: 3, Out: 2, DurNS: 5})
	j.Write(Event{TS: 3, Type: EvRunEnd, RunID: "round", Status: "ok"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[1].In != 3 {
		t.Fatalf("round trip lost data: %+v", events)
	}
}

// TestJournalConcurrentWriters hammers one journal from many goroutines;
// under -race this doubles as the writer race test, and the decode
// verifies no line was torn or interleaved.
func TestJournalConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	j := JournalTo(&buf)
	j.Write(Event{TS: 1, Type: EvRunStart, RunID: "c", Schema: 1, Backend: "stream"})
	const workers, writes = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				j.Write(Event{
					TS: int64(2 + w*writes + i), Type: EvOpComplete, RunID: "c",
					Name: fmt.Sprintf("op%d", w), In: 10, Out: 9, DurNS: 100,
				})
			}
		}(w)
	}
	wg.Wait()
	j.Write(Event{TS: 999999, Type: EvRunEnd, RunID: "c", Status: "ok"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if want := workers*writes + 2; len(events) != want {
		t.Fatalf("decoded %d events, want %d", len(events), want)
	}
}
