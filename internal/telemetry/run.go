package telemetry

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RunOptions configures NewRun. All fields are optional.
type RunOptions struct {
	// JournalDir, when non-empty, writes <JournalDir>/<RunID>.jsonl.
	JournalDir string
	// JournalWriter, when non-nil, receives journal lines instead of a
	// file (test hook). Ignored if JournalDir is set.
	JournalWriter io.Writer
	// RunID overrides the generated run identifier.
	RunID string
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// OpMetrics is the per-operator hot-path instrument bundle. Handles are
// resolved once at RegisterOp; Observe is pure atomic arithmetic —
// 0 allocs/sample, pinned by the AllocsPerRun regression tests.
type OpMetrics struct {
	Name    string
	PlanIdx int

	in     atomic.Int64
	out    atomic.Int64
	bytes  atomic.Int64
	wallNS atomic.Int64
	apps   atomic.Int64
	hits   atomic.Int64
	hitIn  atomic.Int64
	hitOut atomic.Int64

	rate atomicFloat // EWMA samples/sec

	samplesIn  *Counter
	samplesOut *Counter
	bytesIn    *Counter
	wallNs     *Counter
	appsC      *Counter
	cacheHits  *Counter
	cacheMiss  *Counter
	durHist    *Histogram

	predCostNS int64   // planner-predicted ns/sample (0 = unknown)
	predSel    float64 // planner-predicted selectivity
}

const ewmaAlpha = 0.3

// Observe records one application of the operator: in samples, out
// samples, input bytes, and wall time. Safe for concurrent use.
func (m *OpMetrics) Observe(in, out int, bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	m.in.Add(int64(in))
	m.out.Add(int64(out))
	m.bytes.Add(bytes)
	m.wallNS.Add(int64(d))
	m.apps.Add(1)
	m.cacheMiss.Inc()
	m.samplesIn.Add(int64(in))
	m.samplesOut.Add(int64(out))
	m.bytesIn.Add(bytes)
	m.wallNs.Add(int64(d))
	m.appsC.Inc()
	m.durHist.Observe(d.Seconds())
	if d > 0 && in > 0 {
		inst := float64(in) / d.Seconds()
		for {
			old := m.rate.bits.Load()
			prev := math.Float64frombits(old)
			next := inst
			if prev > 0 {
				next = ewmaAlpha*inst + (1-ewmaAlpha)*prev
			}
			if m.rate.bits.CompareAndSwap(old, math.Float64bits(next)) {
				break
			}
		}
	}
}

// CacheHit accounts an application that was served from cache: counts
// flow through the op, but no wall time is charged.
func (m *OpMetrics) CacheHit(in, out int) {
	if m == nil {
		return
	}
	m.in.Add(int64(in))
	m.out.Add(int64(out))
	m.hitIn.Add(int64(in))
	m.hitOut.Add(int64(out))
	m.apps.Add(1)
	m.hits.Add(1)
	m.samplesIn.Add(int64(in))
	m.samplesOut.Add(int64(out))
	m.appsC.Inc()
	m.cacheHits.Inc()
}

// In returns total samples in (cache hits included).
func (m *OpMetrics) In() int64 {
	if m == nil {
		return 0
	}
	return m.in.Load()
}

// Out returns total samples out (cache hits included).
func (m *OpMetrics) Out() int64 {
	if m == nil {
		return 0
	}
	return m.out.Load()
}

// Wall returns accumulated (non-cached) wall time.
func (m *OpMetrics) Wall() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.wallNS.Load())
}

// Run is one pipeline execution's telemetry context: the metric
// registry, the journal, the span ID allocator, and per-op instruments.
type Run struct {
	Reg *Registry

	id      string
	journal *Journal
	clock   func() time.Time
	start   time.Time

	obsMu     sync.Mutex
	observers []func(Event)

	spanSeq atomic.Int64
	runSpan int64

	opMu  sync.Mutex
	ops   []*OpMetrics
	byIdx map[int]*OpMetrics

	inputTotal atomic.Int64
	runIn      atomic.Int64
	runOut     atomic.Int64

	workers     *Gauge
	shardSize   *Gauge
	maxInFlight *Gauge
	targetMem   *Gauge
	estMem      *Gauge
	goroutines  *Gauge
	heapBytes   *Gauge
	bpWaits     *Counter
	bpWaitNs    *Counter
	runInC      *Counter
	runOutC     *Counter
	shardHist   *Histogram

	extraMu sync.Mutex
	extra   func() any // backend-specific /progress section

	backend string
	recipe  string
	input   string
}

var runSeq atomic.Int64

// NewRun constructs a telemetry run. The returned Run is never nil;
// with empty options it journals nowhere but still aggregates metrics.
func NewRun(opts RunOptions) (*Run, error) {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	id := opts.RunID
	if id == "" {
		id = fmt.Sprintf("%s-%d-%d", clock().UTC().Format("20060102-150405"),
			os.Getpid(), runSeq.Add(1))
	}
	r := &Run{
		Reg:   NewRegistry(),
		id:    id,
		clock: clock,
		byIdx: map[int]*OpMetrics{},
	}
	if opts.JournalDir != "" {
		j, err := NewJournal(opts.JournalDir, id)
		if err != nil {
			return nil, err
		}
		r.journal = j
	} else if opts.JournalWriter != nil {
		r.journal = JournalTo(opts.JournalWriter)
	}
	r.workers = r.Reg.Gauge("dj_workers", "current worker pool size")
	r.shardSize = r.Reg.Gauge("dj_shard_size", "current shard size in samples")
	r.maxInFlight = r.Reg.Gauge("dj_max_in_flight", "current in-flight shard budget")
	r.targetMem = r.Reg.Gauge("dj_target_mem_bytes", "configured memory target in bytes")
	r.estMem = r.Reg.Gauge("dj_est_inflight_bytes", "estimated peak in-flight bytes")
	r.goroutines = r.Reg.Gauge("dj_goroutines", "goroutine count at scrape time")
	r.heapBytes = r.Reg.Gauge("dj_heap_alloc_bytes", "heap allocation at scrape time")
	r.bpWaits = r.Reg.Counter("dj_backpressure_waits_total", "reader stalls waiting for shard budget")
	r.bpWaitNs = r.Reg.ScaledCounter("dj_backpressure_wait_seconds_total", "total reader stall time", 1e-9)
	r.runInC = r.Reg.Counter("dj_run_samples_in_total", "samples read from the source")
	r.runOutC = r.Reg.Counter("dj_run_samples_out_total", "samples emitted by the pipeline")
	r.shardHist = r.Reg.Histogram("dj_shard_samples", "samples per shard", SizeBuckets)
	return r, nil
}

// ID returns the run identifier.
func (r *Run) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// JournalPath returns the journal file path ("" if not file-backed).
func (r *Run) JournalPath() string {
	if r == nil {
		return ""
	}
	return r.journal.Path()
}

// OnEvent registers an observer invoked synchronously for every emitted
// event (the console renderer attaches here).
func (r *Run) OnEvent(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.obsMu.Lock()
	r.observers = append(r.observers, fn)
	r.obsMu.Unlock()
}

// Emit stamps the event with the run ID and timestamp, writes it to the
// journal, and notifies observers.
func (r *Run) Emit(e Event) {
	if r == nil {
		return
	}
	if e.TS == 0 {
		e.TS = r.clock().UnixNano()
	}
	e.RunID = r.id
	r.journal.Write(e)
	r.obsMu.Lock()
	obs := r.observers
	r.obsMu.Unlock()
	for _, fn := range obs {
		fn(e)
	}
}

// NewSpan allocates a fresh span ID.
func (r *Run) NewSpan() int64 {
	if r == nil {
		return 0
	}
	return r.spanSeq.Add(1)
}

// RunSpan returns the root span opened by Begin.
func (r *Run) RunSpan() int64 {
	if r == nil {
		return 0
	}
	return r.runSpan
}

// Begin emits run_start and opens the root span. inputSamples may be 0
// when the source size is unknown (streaming).
func (r *Run) Begin(backend, recipe, input string, inputSamples int) {
	if r == nil {
		return
	}
	r.start = r.clock()
	r.backend, r.recipe, r.input = backend, recipe, input
	r.runSpan = r.NewSpan()
	if inputSamples > 0 {
		r.inputTotal.Store(int64(inputSamples))
	}
	r.Emit(Event{
		Type: EvRunStart, Span: r.runSpan, Schema: SchemaVersion,
		Backend: backend, Recipe: recipe, Input: input, In: int64(inputSamples),
	})
}

// End emits run_end with final totals. extra mutates the event before
// emission (shard counts, notes); it may be nil.
func (r *Run) End(status string, in, out int, err error, extra func(*Event)) {
	if r == nil {
		return
	}
	e := Event{
		Type: EvRunEnd, Span: r.runSpan, Status: status,
		In: int64(in), Out: int64(out),
		DurNS:   int64(r.clock().Sub(r.start)),
		PlanOps: len(r.Ops()),
	}
	if err != nil {
		e.Error = err.Error()
	}
	if extra != nil {
		extra(&e)
	}
	r.Emit(e)
}

// Close flushes and closes the journal.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	return r.journal.Close()
}

// RegisterOp resolves the per-op instrument bundle for one plan node.
// Call once per node before the hot path starts; handles are reused if
// the same plan index registers twice.
func (r *Run) RegisterOp(planIdx int, name string, predCostNS int64, predSel float64) *OpMetrics {
	if r == nil {
		return nil
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if m, ok := r.byIdx[planIdx]; ok {
		return m
	}
	lbl := Label{Key: "op", Value: name}
	m := &OpMetrics{
		Name: name, PlanIdx: planIdx,
		predCostNS: predCostNS, predSel: predSel,
		samplesIn:  r.Reg.Counter("dj_op_samples_in_total", "samples entering the operator", lbl),
		samplesOut: r.Reg.Counter("dj_op_samples_out_total", "samples surviving the operator", lbl),
		bytesIn:    r.Reg.Counter("dj_op_bytes_in_total", "input bytes entering the operator", lbl),
		wallNs:     r.Reg.ScaledCounter("dj_op_wall_seconds_total", "operator wall time", 1e-9, lbl),
		appsC:      r.Reg.Counter("dj_op_applications_total", "operator applications (batches/shards)", lbl),
		cacheHits:  r.Reg.Counter("dj_op_cache_hits_total", "applications served from cache", lbl),
		cacheMiss:  r.Reg.Counter("dj_op_cache_misses_total", "applications executed", lbl),
		durHist:    r.Reg.Histogram("dj_op_duration_seconds", "per-application operator wall time", DurationBuckets, lbl),
	}
	r.byIdx[planIdx] = m
	r.ops = append(r.ops, m)
	sort.Slice(r.ops, func(i, j int) bool { return r.ops[i].PlanIdx < r.ops[j].PlanIdx })
	return m
}

// Op returns the instrument bundle registered for a plan index, or nil.
func (r *Run) Op(planIdx int) *OpMetrics {
	if r == nil {
		return nil
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	return r.byIdx[planIdx]
}

// Ops returns the registered instruments in plan order.
func (r *Run) Ops() []*OpMetrics {
	if r == nil {
		return nil
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	return append([]*OpMetrics(nil), r.ops...)
}

// SetInputTotal records the known source size for ETA computation.
func (r *Run) SetInputTotal(n int) {
	if r == nil {
		return
	}
	r.inputTotal.Store(int64(n))
}

// AddInput accounts samples read from the source.
func (r *Run) AddInput(n int) {
	if r == nil {
		return
	}
	r.runIn.Add(int64(n))
	r.runInC.Add(int64(n))
}

// AddOutput accounts samples emitted by the pipeline.
func (r *Run) AddOutput(n int) {
	if r == nil {
		return
	}
	r.runOut.Add(int64(n))
	r.runOutC.Add(int64(n))
}

// SetControls updates the controller gauges: pool size, shard size,
// in-flight budget, estimated peak bytes, and the configured target.
func (r *Run) SetControls(workers, shardSize, maxInFlight int, estBytes, targetBytes int64) {
	if r == nil {
		return
	}
	r.workers.Set(int64(workers))
	r.shardSize.Set(int64(shardSize))
	r.maxInFlight.Set(int64(maxInFlight))
	r.estMem.Set(estBytes)
	r.targetMem.Set(targetBytes)
}

// ObserveBackpressure accounts one reader stall.
func (r *Run) ObserveBackpressure(d time.Duration) {
	if r == nil {
		return
	}
	r.bpWaits.Inc()
	r.bpWaitNs.Add(int64(d))
}

// ObserveSpill accounts one dedup index's spill activity: runs (spill
// files) written and bytes spilled, labeled by op name.
func (r *Run) ObserveSpill(op string, runs, bytes int64) {
	if r == nil {
		return
	}
	lbl := Label{Key: "op", Value: op}
	r.Reg.Counter("dj_spill_runs_total", "dedup index spill files written", lbl).Add(runs)
	r.Reg.Counter("dj_spill_bytes_total", "dedup index bytes spilled to disk", lbl).Add(bytes)
}

// ObserveIndexPartitions records the partition count of one shared-index
// dedup stage's signature index, labeled by op name.
func (r *Run) ObserveIndexPartitions(op string, partitions int) {
	if r == nil {
		return
	}
	lbl := Label{Key: "op", Value: op}
	r.Reg.Gauge("dj_index_partitions", "signature index partitions per shared-index op", lbl).Set(int64(partitions))
}

// ObserveIndexWait accounts one shard's blocked wait for in-order
// resolution at a partitioned signature index, labeled by op name.
func (r *Run) ObserveIndexWait(op string, d time.Duration) {
	if r == nil {
		return
	}
	lbl := Label{Key: "op", Value: op}
	r.Reg.Counter("dj_index_waits_total", "index claims that blocked on in-order resolution", lbl).Inc()
	r.Reg.ScaledCounter("dj_index_wait_seconds_total", "total signature index resolution wait time", 1e-9, lbl).Add(int64(d))
}

// ObserveWire records one completed dispatch exchange's transport
// bytes: on-wire in each direction plus their uncompressed equivalents
// (the compression ratio falls out of the two pairs).
func (r *Run) ObserveWire(worker int, sent, recv, rawSent, rawRecv int64) {
	if r == nil {
		return
	}
	lbl := Label{Key: "worker", Value: fmt.Sprint(worker)}
	r.Reg.Counter("dj_dist_bytes_sent_total", "bytes sent to workers on the dispatch wire", lbl).Add(sent)
	r.Reg.Counter("dj_dist_bytes_recv_total", "bytes received from workers on the dispatch wire", lbl).Add(recv)
	r.Reg.Counter("dj_dist_raw_bytes_sent_total", "uncompressed equivalent of bytes sent to workers", lbl).Add(rawSent)
	r.Reg.Counter("dj_dist_raw_bytes_recv_total", "uncompressed equivalent of bytes received from workers", lbl).Add(rawRecv)
}

// ObserveShard records one shard's sample count.
func (r *Run) ObserveShard(samples int) {
	if r == nil {
		return
	}
	r.shardHist.Observe(float64(samples))
}

// SetProgressExtra installs a backend-specific section rendered into
// /progress snapshots (e.g. the adaptive controller's latest decision).
func (r *Run) SetProgressExtra(fn func() any) {
	if r == nil {
		return
	}
	r.extraMu.Lock()
	r.extra = fn
	r.extraMu.Unlock()
}
