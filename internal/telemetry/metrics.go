// Package telemetry is the unified runtime-observability substrate shared
// by both execution backends: a zero-dependency metrics registry (atomic
// counters, gauges, and fixed-bucket histograms behind handles resolved
// once at registration, so the hot path never hashes a name or allocates),
// a structured run journal (an append-only JSONL event stream with a
// stable schema — run_start, plan, phase, span_start/span_end,
// op_complete, controller_replan, cache_hit, trace, export, run_end), a
// live ops endpoint (/metrics in Prometheus text exposition format,
// /progress JSON snapshots with EWMA rates and a planner-derived ETA,
// /debug/pprof), and span tracing of pipeline phases and shard
// lifecycles so a run can be reconstructed into a timeline
// (djanalyze -timeline). See docs/observability.md.
//
// The package deliberately imports nothing from the rest of the
// repository: internal/core and internal/stream adapt their own types
// into it, never the other way around.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and nil-safe, so code
// instrumented with unresolved (nil) handles costs one branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat is a float64 updated through CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket-layout histogram: bucket bounds are set at
// registration and never change, so Observe is a bounded scan plus
// atomic increments — no locks, no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// DurationBuckets is the fixed layout for operator and span wall times,
// in seconds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// SizeBuckets is the fixed layout for shard/batch sample counts.
var SizeBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Label is one metric dimension. Label sets are interned at registration
// (the InternStatKey pattern): the rendered form is computed once and
// the returned handle carries no labels at all.
type Label struct{ Key, Value string }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels string // pre-rendered {k="v",...}, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name  string
	help  string
	kind  metricKind
	scale float64 // render multiplier (0 = 1); e.g. 1e-9 for ns → seconds
	mu    sync.Mutex
	order []string
	index map[string]*series
}

// Registry holds the run's metric families. Registration locks; the
// returned handles are lock-free.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, scale float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, scale: scale, index: map[string]*series{}}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) series(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.index[key]
	if !ok {
		s = &series{labels: key}
		switch f.kind {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		}
		f.index[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, counterKind, 0).series(labels).c
}

// ScaledCounter is a counter whose rendered value is multiplied by scale:
// accumulate nanoseconds cheaply, expose Prometheus-conventional seconds.
func (r *Registry) ScaledCounter(name, help string, scale float64, labels ...Label) *Counter {
	return r.family(name, help, counterKind, scale).series(labels).c
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, gaugeKind, 0).series(labels).g
}

// Histogram registers (or finds) a histogram series with the given fixed
// bucket layout and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.family(name, help, histogramKind, 0)
	s := f.series(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.h == nil {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		s.h = h
	}
	return s.h
}

// renderLabels produces the canonical {k="v",...} form with sorted keys
// and escaped values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// mergeLabels splices an extra label (le=...) into a rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatValue(v int64, scale float64) string {
	if scale == 0 {
		return strconv.FormatInt(v, 10)
	}
	return strconv.FormatFloat(float64(v)*scale, 'g', -1, 64)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, series in
// registration order within each family.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make([]*series, len(keys))
		for i, k := range keys {
			series[i] = f.index[k]
		}
		f.mu.Unlock()

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.c.Value(), f.scale))
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.g.Value(), f.scale))
			case histogramKind:
				h := s.h
				if h == nil {
					continue
				}
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					le := mergeLabels(s.labels, `le="`+formatFloat(bound)+`"`)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				le := mergeLabels(s.labels, `le="+Inf"`)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
