package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestLiveOpsEndpoint(t *testing.T) {
	r, err := NewRun(RunOptions{RunID: "srv"})
	if err != nil {
		t.Fatal(err)
	}
	r.RegisterOp(0, "m", 0, 1).Observe(5, 4, 100, time.Millisecond)
	r.Begin("batch", "rec", "in", 5)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ctype)
	}
	for _, want := range []string{
		`dj_op_samples_in_total{op="m"} 5`,
		"# TYPE dj_op_duration_seconds histogram",
		"dj_goroutines", // runtime gauges refresh at scrape time
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	progress, ctype := get("/progress")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/progress content type = %q", ctype)
	}
	var p Progress
	if err := json.Unmarshal([]byte(progress), &p); err != nil {
		t.Fatalf("progress is not valid JSON: %v", err)
	}
	if p.RunID != "srv" || len(p.Ops) != 1 || p.Ops[0].In != 5 {
		t.Errorf("progress snapshot wrong: %+v", p)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServeBadAddr(t *testing.T) {
	r, err := NewRun(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Serve("256.0.0.1:bogus"); err == nil {
		t.Error("bad address accepted")
	}
}

// TestScrapeDuringUpdates races /metrics rendering against hot-path
// updates (run with -race).
func TestScrapeDuringUpdates(t *testing.T) {
	r, err := NewRun(RunOptions{RunID: "race"})
	if err != nil {
		t.Fatal(err)
	}
	m := r.RegisterOp(0, "op", 0, 1)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			m.Observe(10, 9, 512, 10*time.Microsecond)
			r.AddInput(10)
		}
	}()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	<-done
}
