package telemetry

import (
	"math"
	"time"
)

// OpProgress is one operator's row in a /progress snapshot.
type OpProgress struct {
	Name         string  `json:"name"`
	PlanIdx      int     `json:"plan_idx"`
	In           int64   `json:"in"`
	Out          int64   `json:"out"`
	Bytes        int64   `json:"bytes,omitempty"`
	WallNS       int64   `json:"wall_ns"`
	Applications int64   `json:"applications"`
	CacheHits    int64   `json:"cache_hits,omitempty"`
	Selectivity  float64 `json:"selectivity"`
	RateEWMA     float64 `json:"rate_ewma,omitempty"` // samples/sec
	PredCostNS   int64   `json:"pred_cost_ns,omitempty"`
	PredSel      float64 `json:"pred_selectivity,omitempty"`
	Done         bool    `json:"done,omitempty"`
}

// Progress is the /progress JSON snapshot.
type Progress struct {
	RunID      string       `json:"run_id"`
	Backend    string       `json:"backend"`
	Recipe     string       `json:"recipe,omitempty"`
	Input      string       `json:"input,omitempty"`
	ElapsedNS  int64        `json:"elapsed_ns"`
	InputTotal int64        `json:"input_total,omitempty"`
	SamplesIn  int64        `json:"samples_in"`
	SamplesOut int64        `json:"samples_out"`
	Fraction   float64      `json:"fraction,omitempty"` // 0..1 estimated work done
	ETANS      int64        `json:"eta_ns,omitempty"`
	Ops        []OpProgress `json:"ops"`
	Controls   *Controls    `json:"controls,omitempty"`
	Extra      any          `json:"extra,omitempty"`
}

// Controls mirrors the controller gauges.
type Controls struct {
	Workers            int   `json:"workers"`
	ShardSize          int   `json:"shard_size"`
	MaxInFlight        int   `json:"max_in_flight"`
	EstInflightBytes   int64 `json:"est_inflight_bytes,omitempty"`
	TargetMemBytes     int64 `json:"target_mem_bytes,omitempty"`
	BackpressureWaits  int64 `json:"backpressure_waits,omitempty"`
	BackpressureWaitNS int64 `json:"backpressure_wait_ns,omitempty"`
}

// Snapshot assembles a point-in-time progress view. The ETA blends the
// planner's predicted per-op costs and selectivities with measured
// values as they accumulate: expected input to op i is
// inputTotal × ∏ selectivity(j<i), per-op unit cost is measured
// wall/in once the op has run, planner-predicted otherwise.
func (r *Run) Snapshot() *Progress {
	if r == nil {
		return nil
	}
	now := r.clock()
	elapsed := now.Sub(r.start)
	p := &Progress{
		RunID:      r.id,
		Backend:    r.backend,
		Recipe:     r.recipe,
		Input:      r.input,
		ElapsedNS:  int64(elapsed),
		InputTotal: r.inputTotal.Load(),
		SamplesIn:  r.runIn.Load(),
		SamplesOut: r.runOut.Load(),
	}
	ops := r.Ops()
	p.Ops = make([]OpProgress, 0, len(ops))
	for _, m := range ops {
		in, out := m.in.Load(), m.out.Load()
		sel := 1.0
		if in > 0 {
			sel = float64(out) / float64(in)
		}
		p.Ops = append(p.Ops, OpProgress{
			Name:         m.Name,
			PlanIdx:      m.PlanIdx,
			In:           in,
			Out:          out,
			Bytes:        m.bytes.Load(),
			WallNS:       m.wallNS.Load(),
			Applications: m.apps.Load(),
			CacheHits:    m.hits.Load(),
			Selectivity:  sel,
			RateEWMA:     m.rate.load(),
			PredCostNS:   m.predCostNS,
			PredSel:      m.predSel,
		})
	}
	if w := r.workers.Value(); w > 0 || r.shardSize.Value() > 0 {
		p.Controls = &Controls{
			Workers:            int(w),
			ShardSize:          int(r.shardSize.Value()),
			MaxInFlight:        int(r.maxInFlight.Value()),
			EstInflightBytes:   r.estMem.Value(),
			TargetMemBytes:     r.targetMem.Value(),
			BackpressureWaits:  r.bpWaits.Value(),
			BackpressureWaitNS: r.bpWaitNs.Value(),
		}
	}
	p.Fraction, p.ETANS = r.estimate(p.Ops, elapsed)
	r.extraMu.Lock()
	extra := r.extra
	r.extraMu.Unlock()
	if extra != nil {
		p.Extra = extra()
	}
	return p
}

// estimate returns the fraction of total expected work already done and
// the remaining wall-time estimate, or (0, 0) when the source size is
// unknown or nothing can be predicted.
func (r *Run) estimate(ops []OpProgress, elapsed time.Duration) (float64, int64) {
	total := r.inputTotal.Load()
	if total <= 0 || len(ops) == 0 {
		return 0, 0
	}
	expectIn := float64(total)
	var doneNS, totalNS float64
	for _, op := range ops {
		unit := float64(op.PredCostNS) // ns per input sample
		sel := op.PredSel
		if op.In > 0 {
			sel = op.Selectivity
			if op.WallNS > 0 {
				unit = float64(op.WallNS) / float64(op.In)
			}
		}
		if sel <= 0 || sel > 1 {
			sel = 1
		}
		if unit <= 0 {
			// Unmeasured, unpredicted op: assume the mean unit cost of
			// what we know so far rather than pretending it is free.
			unit = meanUnit(ops)
		}
		opTotal := unit * expectIn
		opDone := unit * float64(op.In)
		if opDone > opTotal {
			opDone = opTotal
		}
		totalNS += opTotal
		doneNS += opDone
		expectIn *= sel
	}
	if totalNS <= 0 {
		return 0, 0
	}
	f := doneNS / totalNS
	if f > 1 {
		f = 1
	}
	var eta int64
	if f > 0.001 && f < 1 {
		eta = int64(float64(elapsed) * (1 - f) / f)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, 0
	}
	return f, eta
}

func meanUnit(ops []OpProgress) float64 {
	var wall, in float64
	for _, op := range ops {
		if op.In > 0 && op.WallNS > 0 {
			wall += float64(op.WallNS)
			in += float64(op.In)
		}
	}
	if in == 0 {
		return 0
	}
	return wall / in
}
