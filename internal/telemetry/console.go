package telemetry

import (
	"fmt"
	"io"
	"time"
)

// Console returns a journal-event observer that renders human progress
// lines to w — the same event stream the JSONL journal records, so the
// console output and the journal can never disagree. Attach with
// Run.OnEvent. Per-op completion events are intentionally not rendered
// line-by-line: the end-of-run table covers them.
func Console(w io.Writer) func(Event) {
	return func(e Event) {
		switch e.Type {
		case EvRunStart:
			src := e.Recipe
			if src == "" {
				src = "(inline recipe)"
			}
			if e.In > 0 {
				fmt.Fprintf(w, "run %s [%s]: %s <- %s (%d samples)\n",
					e.RunID, e.Backend, src, e.Input, e.In)
			} else {
				fmt.Fprintf(w, "run %s [%s]: %s <- %s\n", e.RunID, e.Backend, src, e.Input)
			}
		case EvPlan:
			measured := 0
			for _, op := range e.Ops {
				if op.Measured {
					measured++
				}
			}
			fmt.Fprintf(w, "plan: %d ops (%d measured)\n", len(e.Ops), measured)
		case EvPhase:
			if e.Phase > 0 {
				fmt.Fprintf(w, "phase %d: %s\n", e.Phase, e.Name)
			}
		case EvControllerReplan:
			fmt.Fprintf(w, "controller: workers=%d shard=%d inflight=%d (%s)\n",
				e.Workers, e.ShardSize, e.MaxInFlight, e.Why)
		case EvExport:
			fmt.Fprintf(w, "exported to %s\n", e.Input)
		case EvRunEnd:
			if e.Status != "ok" {
				fmt.Fprintf(w, "run failed after %s: %s\n",
					time.Duration(e.DurNS).Round(time.Millisecond), e.Error)
				return
			}
			line := fmt.Sprintf("processed: %d -> %d samples in %s (%d planned ops",
				e.In, e.Out, time.Duration(e.DurNS).Round(time.Millisecond), e.PlanOps)
			if e.Shards > 0 {
				line += fmt.Sprintf(", %d shards", e.Shards)
			}
			if e.Resumed > 0 {
				line += fmt.Sprintf(", %d resumed", e.Resumed)
			}
			line += ")"
			if e.Note != "" {
				line += " " + e.Note
			}
			fmt.Fprintln(w, line)
		}
	}
}
