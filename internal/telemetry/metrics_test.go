package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	// Same name+labels returns the same handle; different labels a new one.
	if r.Counter("c_total", "a counter") != c {
		t.Error("re-registration did not return the interned handle")
	}
	if r.Counter("c_total", "a counter", Label{"op", "x"}) == c {
		t.Error("labeled series aliased the unlabeled one")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var m *OpMetrics
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	m.Observe(1, 1, 1, 1)
	m.CacheHit(1, 1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || m.In() != 0 {
		t.Error("nil handles are not inert")
	}
	var r *Run
	r.Emit(Event{})
	r.Begin("b", "", "", 0)
	r.End("ok", 0, 0, nil, nil)
	r.AddInput(1)
	r.ObserveShard(1)
	if r.Op(0) != nil || r.Snapshot() != nil {
		t.Error("nil Run is not inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Errorf("sum = %v, want 111.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: ≤1 holds 0.5 and 1, ≤5 adds 3, ≤10 adds 7,
	// +Inf adds 100.
	for _, want := range []string{
		`h_bucket{le="1"} 2`, `h_bucket{le="5"} 3`, `h_bucket{le="10"} 4`,
		`h_bucket{le="+Inf"} 5`, `h_sum 111.5`, `h_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dj_x_total", "help text", Label{"op", "b_filter"}).Add(2)
	r.Counter("dj_x_total", "help text", Label{"op", "a_mapper"}).Add(1)
	r.ScaledCounter("dj_wall_seconds_total", "wall", 1e-9).Add(1_500_000_000)
	r.Gauge("dj_g", "").Set(9)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dj_x_total help text",
		"# TYPE dj_x_total counter",
		`dj_x_total{op="b_filter"} 2`,
		`dj_x_total{op="a_mapper"} 1`,
		"# TYPE dj_wall_seconds_total counter",
		"dj_wall_seconds_total 1.5",
		"# TYPE dj_g gauge",
		"dj_g 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm missing %q:\n%s", want, out)
		}
	}
	// Series render in registration order within a family.
	if strings.Index(out, `op="b_filter"`) > strings.Index(out, `op="a_mapper"`) {
		t.Error("series not in registration order")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := renderLabels([]Label{{"op", `we"ird\na` + "\n" + `me`}, {"aa", "x"}})
	want := `{aa="x",op="we\"ird\\na\nme"}`
	if got != want {
		t.Errorf("renderLabels = %s, want %s", got, want)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dup", "")
}

// TestConcurrentInstruments exercises registration and updates from many
// goroutines; run with -race this is the registry's race test.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_hist", "", SizeBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 300))
			}
		}(w)
	}
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 50; i++ {
			_ = r.WriteProm(&strings.Builder{})
		}
	}()
	wg.Wait()
	scrape.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_hist", "", SizeBuckets).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
