package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a controllable clock starting at a fixed instant.
func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestRunLifecycleJournals(t *testing.T) {
	var buf bytes.Buffer
	clock, advance := fakeClock(time.Unix(100, 0))
	r, err := NewRun(RunOptions{JournalWriter: &buf, RunID: "life", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	r.RegisterOp(0, "m", 0, 1)
	r.Begin("batch", "recipe.yaml", "in.jsonl", 42)
	advance(2 * time.Second)
	r.Emit(Event{Type: EvOpComplete, Name: "m", In: 42, Out: 40, DurNS: 1e9})
	r.End("ok", 42, 40, nil, func(e *Event) { e.Note = "(note)" })
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Schema != SchemaVersion || events[0].In != 42 || events[0].Span != r.RunSpan() {
		t.Errorf("run_start wrong: %+v", events[0])
	}
	end := events[2]
	if end.Status != "ok" || end.DurNS != int64(2*time.Second) || end.Note != "(note)" || end.PlanOps != 1 {
		t.Errorf("run_end wrong: %+v", end)
	}
	for _, e := range events {
		if e.RunID != "life" || e.TS == 0 {
			t.Errorf("event missing stamps: %+v", e)
		}
	}
}

func TestRunEndError(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewRun(RunOptions{JournalWriter: &buf, RunID: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("stream", "", "x", 0)
	r.End("error", 0, 0, errors.New("op 2 exploded"), nil)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	end := events[len(events)-1]
	if end.Status != "error" || end.Error != "op 2 exploded" {
		t.Errorf("run_end error fields wrong: %+v", end)
	}
	var out strings.Builder
	Console(&out)(end)
	if !strings.Contains(out.String(), "run failed after") {
		t.Errorf("console failure line wrong: %s", out.String())
	}
}

func TestOpMetricsAccounting(t *testing.T) {
	r, err := NewRun(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := r.RegisterOp(0, "f", 1000, 0.5)
	m.Observe(100, 50, 2048, 10*time.Millisecond)
	m.Observe(100, 60, 2048, 10*time.Millisecond)
	m.CacheHit(50, 25)
	if m.In() != 250 || m.Out() != 135 {
		t.Errorf("in/out = %d/%d, want 250/135", m.In(), m.Out())
	}
	if m.Wall() != 20*time.Millisecond {
		t.Errorf("wall = %s, want 20ms (cache hits charge no wall)", m.Wall())
	}
	// Registering the same plan index again returns the same bundle.
	if r.RegisterOp(0, "f", 0, 0) != m {
		t.Error("RegisterOp did not intern by plan index")
	}
	if r.Op(0) != m || r.Op(9) != nil {
		t.Error("Op lookup wrong")
	}

	var b strings.Builder
	if err := r.Reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dj_op_samples_in_total{op="f"} 250`,
		`dj_op_samples_out_total{op="f"} 135`,
		`dj_op_cache_hits_total{op="f"} 1`,
		`dj_op_cache_misses_total{op="f"} 2`,
		`dj_op_wall_seconds_total{op="f"} 0.02`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotETA pins the progress estimator: expected per-op input is
// inputTotal damped by upstream selectivity, unit cost is measured
// wall/in when available and the planner prediction otherwise.
func TestSnapshotETA(t *testing.T) {
	clock, advance := fakeClock(time.Unix(1000, 0))
	r, err := NewRun(RunOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	op0 := r.RegisterOp(0, "half_filter", 1000, 0.5)
	r.RegisterOp(1, "tail_mapper", 1000, 1)
	r.Begin("stream", "", "in", 1000)
	r.AddInput(500)

	// Half the input has passed op0 at 1000 ns/sample; op1 has not run.
	// Work: op0 total 1000×1000 ns, done 500×1000; op1 total 500×1000
	// (selectivity-damped), done 0 → fraction 1/3.
	op0.Observe(500, 250, 0, 500*time.Microsecond)
	advance(3 * time.Second)

	p := r.Snapshot()
	if p.SamplesIn != 500 || p.InputTotal != 1000 {
		t.Errorf("totals wrong: %+v", p)
	}
	if len(p.Ops) != 2 || p.Ops[0].Selectivity != 0.5 {
		t.Fatalf("ops wrong: %+v", p.Ops)
	}
	if want := 1.0 / 3.0; p.Fraction < want-1e-9 || p.Fraction > want+1e-9 {
		t.Errorf("fraction = %v, want 1/3", p.Fraction)
	}
	// eta = elapsed × (1-f)/f = 3s × 2 = 6s.
	if want := int64(6 * time.Second); p.ETANS != want {
		t.Errorf("eta = %d, want %d", p.ETANS, want)
	}
	if p.Ops[0].RateEWMA == 0 {
		t.Error("EWMA rate not tracked")
	}
}

func TestSnapshotControlsAndExtra(t *testing.T) {
	r, err := NewRun(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetControls(4, 512, 8, 1<<20, 64<<20)
	r.ObserveBackpressure(5 * time.Millisecond)
	r.SetProgressExtra(func() any { return map[string]int{"gen": 3} })
	p := r.Snapshot()
	if p.Controls == nil || p.Controls.Workers != 4 || p.Controls.TargetMemBytes != 64<<20 {
		t.Fatalf("controls wrong: %+v", p.Controls)
	}
	if p.Controls.BackpressureWaits != 1 || p.Controls.BackpressureWaitNS != int64(5*time.Millisecond) {
		t.Errorf("backpressure wrong: %+v", p.Controls)
	}
	if p.Extra == nil {
		t.Error("extra section missing")
	}
}

func TestConsoleRendering(t *testing.T) {
	var out strings.Builder
	r, err := NewRun(RunOptions{RunID: "con"})
	if err != nil {
		t.Fatal(err)
	}
	r.OnEvent(Console(&out))
	r.Begin("stream", "my-recipe", "in.jsonl", 10)
	r.Emit(Event{Type: EvPhase, Span: 2, Name: "to barrier dedup", Phase: 1})
	r.Emit(Event{Type: EvControllerReplan, Workers: 4, ShardSize: 256, MaxInFlight: 8, Why: "cpu"})
	r.Emit(Event{Type: EvOpComplete, Name: "quiet", In: 1, Out: 1})
	r.Emit(Event{Type: EvExport, Input: "out.jsonl"})
	r.End("ok", 10, 8, nil, func(e *Event) { e.Shards = 2; e.PlanOps = 3 })
	got := out.String()
	for _, want := range []string{
		"run con [stream]: my-recipe <- in.jsonl (10 samples)",
		"phase 1: to barrier dedup",
		"controller: workers=4 shard=256 inflight=8 (cpu)",
		"exported to out.jsonl",
		"processed: 10 -> 8 samples in",
		"3 planned ops, 2 shards",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("console missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "quiet") {
		t.Error("op_complete must not render line-by-line")
	}
}

func TestFormatOpTable(t *testing.T) {
	rows := []OpRow{
		{Name: "fused_filter", In: 100, Out: 80, Dur: 3 * time.Millisecond, Members: []MemberRow{
			{Name: "f1", In: 60, Out: 55, Dur: time.Millisecond},
			{Name: "f2", In: 55, Out: 50, Dur: time.Millisecond},
		}},
		{Name: "cached_mapper", In: 80, Out: 80, CacheHit: true},
	}
	got := FormatOpTable(rows)
	for _, want := range []string{
		"fused_filter", "· f1", "· f2", "[cache]",
		"members below cover the 60 executed (non-cached) samples",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	// Members that cover the full input need no mismatch note.
	rows[0].Members[0].In = 100
	if strings.Contains(FormatOpTable(rows[:1]), "members below cover") {
		t.Error("mismatch note printed for fully-covered members")
	}
}
