package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server is the live ops endpoint: /metrics (Prometheus text format),
// /progress (JSON snapshot), /debug/pprof/*.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Serve starts the ops endpoint on addr (e.g. ":9090", "127.0.0.1:0").
// It returns once the listener is bound; requests are handled in the
// background until Close.
func (r *Run) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.refreshRuntimeGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Reg.WriteProm(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, http: srv}, nil
}

// refreshRuntimeGauges updates the Go runtime gauges at scrape time so
// the hot path never touches runtime.ReadMemStats.
func (r *Run) refreshRuntimeGauges() {
	r.goroutines.Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.heapBytes.Set(int64(ms.HeapAlloc))
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil || s.http == nil {
		return nil
	}
	return s.http.Close()
}
