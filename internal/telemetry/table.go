package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// MemberRow is one fused-op constituent's attribution line.
type MemberRow struct {
	Name string
	In   int
	Out  int
	Dur  time.Duration
}

// OpRow is one operator's line in the end-of-run table.
type OpRow struct {
	Name     string
	In       int
	Out      int
	Dur      time.Duration
	CacheHit bool
	Members  []MemberRow
}

// FormatOpTable renders the per-op summary table shared by the batch
// CLI and the streaming report — one source of truth for the format.
func FormatOpTable(rows []OpRow) string {
	var b strings.Builder
	for _, st := range rows {
		marker := ""
		if st.CacheHit {
			marker = " [cache]"
		}
		fmt.Fprintf(&b, "  %-44s %7d -> %-7d %10s%s\n", st.Name, st.In, st.Out,
			st.Dur.Round(100*time.Microsecond), marker)
		// Member counters only tick on executed shards; on a partially
		// cache-resumed run they sum to less than the op row, so say so
		// instead of looking silently inconsistent.
		if len(st.Members) > 0 && st.Members[0].In != st.In {
			fmt.Fprintf(&b, "    · members below cover the %d executed (non-cached) samples\n",
				st.Members[0].In)
		}
		for _, m := range st.Members {
			fmt.Fprintf(&b, "    · %-42s %7d -> %-7d %10s\n", m.Name, m.In, m.Out,
				m.Dur.Round(100*time.Microsecond))
		}
	}
	return b.String()
}
