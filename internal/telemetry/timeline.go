package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpTimeline aggregates one operator's wall-time attribution across the
// whole run (all shards / batches).
type OpTimeline struct {
	Name         string
	PlanIdx      int
	In, Out      int64
	Wall         time.Duration
	Applications int
	CacheHits    int
	SpillRuns    int64
	SpillBytes   int64

	// Partitioned signature index contention (index events, schema v4).
	Partitions int           // partition count (0 = not a shared-index op)
	IndexWaits int64         // shard claims that blocked on resolution
	IndexWait  time.Duration // their summed wait
}

// PhaseTimeline aggregates one pipeline phase: its own span duration
// plus shard statistics observed inside it.
type PhaseTimeline struct {
	Phase        int
	Name         string
	Dur          time.Duration
	Shards       int
	ShardWall    time.Duration
	MaxShardWall time.Duration
	SlowestShard int
}

// WorkerTimeline aggregates one djworker's lane of a distributed run:
// the stage work routed to it, the failures charged against it, and its
// activity span inside the run (for the lane bar).
type WorkerTimeline struct {
	Worker       int
	Addr         string
	Ops          int   // op_complete events executed on this worker
	In, Out      int64 // sample flow through those ops
	Wall         time.Duration
	Retries      int // failed attempts charged against this worker
	Steals       int // shards this worker stole from another's assignment
	FirstTS      int64
	LastTS       int64
	Disconnected bool // at least one retry marked it suspect

	// Wire-transport accounting (worker_wire events, schema v3).
	Proto        int   // negotiated wire version (0 = unrecorded)
	DeltaStages  int   // stages answered with a keep-mask delta
	BytesSent    int64 // on-wire bytes coordinator -> worker
	BytesRecv    int64 // on-wire bytes worker -> coordinator
	RawBytesSent int64 // uncompressed equivalent of BytesSent
	RawBytesRecv int64 // uncompressed equivalent of BytesRecv
}

// Timeline is the reconstruction of one run from its journal.
type Timeline struct {
	RunID     string
	Backend   string
	Recipe    string
	Input     string
	Status    string
	Error     string
	In, Out   int64
	Dur       time.Duration
	Shards    int
	Resumed   int
	Replans   int
	Truncated bool // journal had no run_end (crash or live tail)

	Ops     []OpTimeline
	Phases  []PhaseTimeline
	Passes  []PlanPass
	Workers []WorkerTimeline // distributed runs: one lane per djworker

	startTS int64 // first event timestamp (lane bar origin)
	endTS   int64 // last event timestamp
}

// BuildTimeline folds a validated event stream into per-op and
// per-shard wall-time attribution. Journals without a run_end (crashed
// or still-running jobs) produce a Timeline with Truncated set.
func BuildTimeline(events []Event) (*Timeline, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("empty journal")
	}
	tl := &Timeline{Truncated: true}
	ops := map[string]*OpTimeline{}
	phases := map[int]*PhaseTimeline{}
	phaseOf := map[int64]int{} // phase span ID -> phase number
	workers := map[int]*WorkerTimeline{}
	var opOrder []string
	laneOf := func(id int) *WorkerTimeline {
		w, ok := workers[id]
		if !ok {
			w = &WorkerTimeline{Worker: id, FirstTS: 1<<63 - 1}
			workers[id] = w
		}
		return w
	}
	touch := func(w *WorkerTimeline, ts int64) {
		if ts < w.FirstTS {
			w.FirstTS = ts
		}
		if ts > w.LastTS {
			w.LastTS = ts
		}
	}

	tl.startTS = events[0].TS
	for _, e := range events {
		if e.TS > tl.endTS {
			tl.endTS = e.TS
		}
		switch e.Type {
		case EvRunStart:
			tl.RunID, tl.Backend, tl.Recipe, tl.Input = e.RunID, e.Backend, e.Recipe, e.Input
		case EvPlan:
			tl.Passes = e.Passes
		case EvPhase:
			ph, ok := phases[e.Phase]
			if !ok {
				ph = &PhaseTimeline{Phase: e.Phase, Name: e.Name}
				phases[e.Phase] = ph
			}
			phaseOf[e.Span] = e.Phase
		case EvSpanEnd:
			switch e.Kind {
			case "shard":
				ph, ok := phases[e.Phase]
				if !ok {
					ph = &PhaseTimeline{Phase: e.Phase}
					phases[e.Phase] = ph
				}
				ph.Shards++
				d := time.Duration(e.DurNS)
				ph.ShardWall += d
				if d > ph.MaxShardWall {
					ph.MaxShardWall = d
					ph.SlowestShard = e.Shard
				}
			case "phase":
				if n, ok := phaseOf[e.Span]; ok {
					phases[n].Dur = time.Duration(e.DurNS)
				}
			}
		case EvOpComplete:
			o, ok := ops[e.Name]
			if !ok {
				o = &OpTimeline{Name: e.Name, PlanIdx: e.PlanIdx}
				ops[e.Name] = o
				opOrder = append(opOrder, e.Name)
			}
			o.In += e.In
			o.Out += e.Out
			o.Wall += time.Duration(e.DurNS)
			o.Applications++
			if e.CacheHit {
				o.CacheHits++
			}
			if e.Worker > 0 {
				w := laneOf(e.Worker)
				w.Ops++
				w.In += e.In
				w.Out += e.Out
				w.Wall += time.Duration(e.DurNS)
				touch(w, e.TS)
			}
		case EvSpill:
			o, ok := ops[e.Name]
			if !ok {
				o = &OpTimeline{Name: e.Name, PlanIdx: e.PlanIdx}
				ops[e.Name] = o
				opOrder = append(opOrder, e.Name)
			}
			o.SpillRuns += e.SpillRuns
			o.SpillBytes += e.Bytes
		case EvIndex:
			o, ok := ops[e.Name]
			if !ok {
				o = &OpTimeline{Name: e.Name, PlanIdx: e.PlanIdx}
				ops[e.Name] = o
				opOrder = append(opOrder, e.Name)
			}
			if e.Partitions > o.Partitions {
				o.Partitions = e.Partitions
			}
			o.IndexWaits += e.Waits
			o.IndexWait += time.Duration(e.DurNS)
		case EvControllerReplan:
			tl.Replans++
		case EvWorkerStart:
			w := laneOf(e.Worker)
			w.Addr = e.Addr
			if e.Proto > w.Proto {
				w.Proto = e.Proto
			}
			touch(w, e.TS)
		case EvWorkerWire:
			w := laneOf(e.Worker)
			if e.Proto > w.Proto {
				w.Proto = e.Proto
			}
			w.DeltaStages += e.DeltaStages
			w.BytesSent += e.BytesSent
			w.BytesRecv += e.BytesRecv
			w.RawBytesSent += e.RawBytesSent
			w.RawBytesRecv += e.RawBytesRecv
			touch(w, e.TS)
		case EvWorkerRetry:
			w := laneOf(e.Worker)
			w.Retries++
			w.Disconnected = true
			touch(w, e.TS)
		case EvShardSteal:
			w := laneOf(e.Worker)
			w.Steals++
			touch(w, e.TS)
		case EvRunEnd:
			tl.Truncated = false
			tl.Status, tl.Error = e.Status, e.Error
			tl.In, tl.Out = e.In, e.Out
			tl.Dur = time.Duration(e.DurNS)
			tl.Shards, tl.Resumed = e.Shards, e.Resumed
		}
	}

	for _, name := range opOrder {
		tl.Ops = append(tl.Ops, *ops[name])
	}
	sort.SliceStable(tl.Ops, func(i, j int) bool { return tl.Ops[i].PlanIdx < tl.Ops[j].PlanIdx })
	for _, ph := range phases {
		tl.Phases = append(tl.Phases, *ph)
	}
	sort.Slice(tl.Phases, func(i, j int) bool { return tl.Phases[i].Phase < tl.Phases[j].Phase })
	for _, w := range workers {
		tl.Workers = append(tl.Workers, *w)
	}
	sort.Slice(tl.Workers, func(i, j int) bool { return tl.Workers[i].Worker < tl.Workers[j].Worker })
	if tl.Truncated && len(events) > 0 {
		last := events[len(events)-1]
		first := events[0]
		tl.Dur = time.Duration(last.TS - first.TS)
	}
	return tl, nil
}

// Render formats the timeline for the terminal: headline, per-op wall
// share bars, phase/shard attribution, and plan pass durations.
func (tl *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s [%s] %s <- %s\n", tl.RunID, tl.Backend, tl.Recipe, tl.Input)
	switch {
	case tl.Truncated:
		fmt.Fprintf(&b, "  status: incomplete journal (no run_end); ~%s of events\n",
			tl.Dur.Round(time.Millisecond))
	case tl.Status == "ok":
		fmt.Fprintf(&b, "  status: ok, %d -> %d samples in %s", tl.In, tl.Out,
			tl.Dur.Round(time.Millisecond))
		if tl.Shards > 0 {
			fmt.Fprintf(&b, ", %d shards", tl.Shards)
		}
		if tl.Resumed > 0 {
			fmt.Fprintf(&b, ", %d resumed", tl.Resumed)
		}
		b.WriteByte('\n')
	default:
		fmt.Fprintf(&b, "  status: %s after %s: %s\n", tl.Status,
			tl.Dur.Round(time.Millisecond), tl.Error)
	}
	if tl.Replans > 0 {
		fmt.Fprintf(&b, "  controller replans: %d\n", tl.Replans)
	}

	if len(tl.Passes) > 0 {
		b.WriteString("\nplan passes:\n")
		for _, p := range tl.Passes {
			fmt.Fprintf(&b, "  %-28s %10s  %s\n", p.Name,
				time.Duration(p.DurNS).Round(time.Microsecond), p.Detail)
		}
	}

	if len(tl.Ops) > 0 {
		var total time.Duration
		for _, o := range tl.Ops {
			total += o.Wall
		}
		b.WriteString("\nper-op wall time:\n")
		for _, o := range tl.Ops {
			share := 0.0
			if total > 0 {
				share = float64(o.Wall) / float64(total)
			}
			bar := strings.Repeat("#", int(share*30+0.5))
			cache := ""
			if o.CacheHits > 0 {
				cache = fmt.Sprintf(" [%d cached]", o.CacheHits)
			}
			fmt.Fprintf(&b, "  %-44s %10s %5.1f%% |%-30s| %d -> %d (%d apps)%s\n",
				o.Name, o.Wall.Round(time.Microsecond), share*100, bar,
				o.In, o.Out, o.Applications, cache)
		}
	}

	var spilled []OpTimeline
	for _, o := range tl.Ops {
		if o.SpillRuns > 0 || o.SpillBytes > 0 {
			spilled = append(spilled, o)
		}
	}
	if len(spilled) > 0 {
		b.WriteString("\nspill (disk-backed dedup indexes):\n")
		for _, o := range spilled {
			fmt.Fprintf(&b, "  %-44s spilled %d runs, %.1f MiB\n",
				o.Name, o.SpillRuns, float64(o.SpillBytes)/(1<<20))
		}
	}

	var indexed []OpTimeline
	for _, o := range tl.Ops {
		if o.Partitions > 0 {
			indexed = append(indexed, o)
		}
	}
	if len(indexed) > 0 {
		b.WriteString("\nindex contention (partitioned signature indexes):\n")
		for _, o := range indexed {
			fmt.Fprintf(&b, "  %-44s %d partitions, %d blocked claims, %s waiting\n",
				o.Name, o.Partitions, o.IndexWaits, o.IndexWait.Round(time.Microsecond))
		}
	}

	if len(tl.Workers) > 0 {
		b.WriteString("\nworkers:\n")
		const width = 30
		span := tl.endTS - tl.startTS
		for _, w := range tl.Workers {
			bar := []byte(strings.Repeat(".", width))
			if span > 0 && w.LastTS >= w.FirstTS {
				lo := int(float64(w.FirstTS-tl.startTS) / float64(span) * width)
				hi := int(float64(w.LastTS-tl.startTS) / float64(span) * width)
				if lo < 0 {
					lo = 0
				}
				if hi >= width {
					hi = width - 1
				}
				for i := lo; i <= hi; i++ {
					bar[i] = '#'
				}
			}
			flags := ""
			if w.Disconnected {
				flags = " DISCONNECTED"
			}
			fmt.Fprintf(&b, "  w%-2d %-21s |%s| %d ops %d -> %d, %s busy, %d retries, %d steals%s\n",
				w.Worker, w.Addr, bar, w.Ops, w.In, w.Out,
				w.Wall.Round(time.Microsecond), w.Retries, w.Steals, flags)
		}
	}

	wired := false
	for _, w := range tl.Workers {
		if w.BytesSent > 0 || w.BytesRecv > 0 {
			wired = true
			break
		}
	}
	if wired {
		b.WriteString("\nwire (dispatch transport):\n")
		for _, w := range tl.Workers {
			if w.BytesSent == 0 && w.BytesRecv == 0 {
				continue
			}
			ratio := 1.0
			if w.BytesSent+w.BytesRecv > 0 {
				ratio = float64(w.RawBytesSent+w.RawBytesRecv) / float64(w.BytesSent+w.BytesRecv)
			}
			delta := ""
			if w.DeltaStages > 0 {
				delta = fmt.Sprintf(", %d delta stages", w.DeltaStages)
			}
			fmt.Fprintf(&b, "  w%-2d proto=%d sent %.1f MiB recv %.1f MiB (%.2fx vs raw)%s\n",
				w.Worker, w.Proto,
				float64(w.BytesSent)/(1<<20), float64(w.BytesRecv)/(1<<20), ratio, delta)
		}
	}

	if len(tl.Phases) > 0 {
		b.WriteString("\nphases:\n")
		for _, ph := range tl.Phases {
			fmt.Fprintf(&b, "  phase %d %-24s %10s", ph.Phase, ph.Name,
				ph.Dur.Round(time.Millisecond))
			if ph.Shards > 0 {
				mean := ph.ShardWall / time.Duration(ph.Shards)
				fmt.Fprintf(&b, "  shards=%d mean=%s max=%s (shard %d)",
					ph.Shards, mean.Round(time.Microsecond),
					ph.MaxShardWall.Round(time.Microsecond), ph.SlowestShard)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
