package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpTimeline aggregates one operator's wall-time attribution across the
// whole run (all shards / batches).
type OpTimeline struct {
	Name         string
	PlanIdx      int
	In, Out      int64
	Wall         time.Duration
	Applications int
	CacheHits    int
	SpillRuns    int64
	SpillBytes   int64
}

// PhaseTimeline aggregates one pipeline phase: its own span duration
// plus shard statistics observed inside it.
type PhaseTimeline struct {
	Phase        int
	Name         string
	Dur          time.Duration
	Shards       int
	ShardWall    time.Duration
	MaxShardWall time.Duration
	SlowestShard int
}

// Timeline is the reconstruction of one run from its journal.
type Timeline struct {
	RunID     string
	Backend   string
	Recipe    string
	Input     string
	Status    string
	Error     string
	In, Out   int64
	Dur       time.Duration
	Shards    int
	Resumed   int
	Replans   int
	Truncated bool // journal had no run_end (crash or live tail)

	Ops    []OpTimeline
	Phases []PhaseTimeline
	Passes []PlanPass
}

// BuildTimeline folds a validated event stream into per-op and
// per-shard wall-time attribution. Journals without a run_end (crashed
// or still-running jobs) produce a Timeline with Truncated set.
func BuildTimeline(events []Event) (*Timeline, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("empty journal")
	}
	tl := &Timeline{Truncated: true}
	ops := map[string]*OpTimeline{}
	phases := map[int]*PhaseTimeline{}
	phaseOf := map[int64]int{} // phase span ID -> phase number
	var opOrder []string

	for _, e := range events {
		switch e.Type {
		case EvRunStart:
			tl.RunID, tl.Backend, tl.Recipe, tl.Input = e.RunID, e.Backend, e.Recipe, e.Input
		case EvPlan:
			tl.Passes = e.Passes
		case EvPhase:
			ph, ok := phases[e.Phase]
			if !ok {
				ph = &PhaseTimeline{Phase: e.Phase, Name: e.Name}
				phases[e.Phase] = ph
			}
			phaseOf[e.Span] = e.Phase
		case EvSpanEnd:
			switch e.Kind {
			case "shard":
				ph, ok := phases[e.Phase]
				if !ok {
					ph = &PhaseTimeline{Phase: e.Phase}
					phases[e.Phase] = ph
				}
				ph.Shards++
				d := time.Duration(e.DurNS)
				ph.ShardWall += d
				if d > ph.MaxShardWall {
					ph.MaxShardWall = d
					ph.SlowestShard = e.Shard
				}
			case "phase":
				if n, ok := phaseOf[e.Span]; ok {
					phases[n].Dur = time.Duration(e.DurNS)
				}
			}
		case EvOpComplete:
			o, ok := ops[e.Name]
			if !ok {
				o = &OpTimeline{Name: e.Name, PlanIdx: e.PlanIdx}
				ops[e.Name] = o
				opOrder = append(opOrder, e.Name)
			}
			o.In += e.In
			o.Out += e.Out
			o.Wall += time.Duration(e.DurNS)
			o.Applications++
			if e.CacheHit {
				o.CacheHits++
			}
		case EvSpill:
			o, ok := ops[e.Name]
			if !ok {
				o = &OpTimeline{Name: e.Name, PlanIdx: e.PlanIdx}
				ops[e.Name] = o
				opOrder = append(opOrder, e.Name)
			}
			o.SpillRuns += e.SpillRuns
			o.SpillBytes += e.Bytes
		case EvControllerReplan:
			tl.Replans++
		case EvRunEnd:
			tl.Truncated = false
			tl.Status, tl.Error = e.Status, e.Error
			tl.In, tl.Out = e.In, e.Out
			tl.Dur = time.Duration(e.DurNS)
			tl.Shards, tl.Resumed = e.Shards, e.Resumed
		}
	}

	for _, name := range opOrder {
		tl.Ops = append(tl.Ops, *ops[name])
	}
	sort.SliceStable(tl.Ops, func(i, j int) bool { return tl.Ops[i].PlanIdx < tl.Ops[j].PlanIdx })
	for _, ph := range phases {
		tl.Phases = append(tl.Phases, *ph)
	}
	sort.Slice(tl.Phases, func(i, j int) bool { return tl.Phases[i].Phase < tl.Phases[j].Phase })
	if tl.Truncated && len(events) > 0 {
		last := events[len(events)-1]
		first := events[0]
		tl.Dur = time.Duration(last.TS - first.TS)
	}
	return tl, nil
}

// Render formats the timeline for the terminal: headline, per-op wall
// share bars, phase/shard attribution, and plan pass durations.
func (tl *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s [%s] %s <- %s\n", tl.RunID, tl.Backend, tl.Recipe, tl.Input)
	switch {
	case tl.Truncated:
		fmt.Fprintf(&b, "  status: incomplete journal (no run_end); ~%s of events\n",
			tl.Dur.Round(time.Millisecond))
	case tl.Status == "ok":
		fmt.Fprintf(&b, "  status: ok, %d -> %d samples in %s", tl.In, tl.Out,
			tl.Dur.Round(time.Millisecond))
		if tl.Shards > 0 {
			fmt.Fprintf(&b, ", %d shards", tl.Shards)
		}
		if tl.Resumed > 0 {
			fmt.Fprintf(&b, ", %d resumed", tl.Resumed)
		}
		b.WriteByte('\n')
	default:
		fmt.Fprintf(&b, "  status: %s after %s: %s\n", tl.Status,
			tl.Dur.Round(time.Millisecond), tl.Error)
	}
	if tl.Replans > 0 {
		fmt.Fprintf(&b, "  controller replans: %d\n", tl.Replans)
	}

	if len(tl.Passes) > 0 {
		b.WriteString("\nplan passes:\n")
		for _, p := range tl.Passes {
			fmt.Fprintf(&b, "  %-28s %10s  %s\n", p.Name,
				time.Duration(p.DurNS).Round(time.Microsecond), p.Detail)
		}
	}

	if len(tl.Ops) > 0 {
		var total time.Duration
		for _, o := range tl.Ops {
			total += o.Wall
		}
		b.WriteString("\nper-op wall time:\n")
		for _, o := range tl.Ops {
			share := 0.0
			if total > 0 {
				share = float64(o.Wall) / float64(total)
			}
			bar := strings.Repeat("#", int(share*30+0.5))
			cache := ""
			if o.CacheHits > 0 {
				cache = fmt.Sprintf(" [%d cached]", o.CacheHits)
			}
			fmt.Fprintf(&b, "  %-44s %10s %5.1f%% |%-30s| %d -> %d (%d apps)%s\n",
				o.Name, o.Wall.Round(time.Microsecond), share*100, bar,
				o.In, o.Out, o.Applications, cache)
		}
	}

	var spilled []OpTimeline
	for _, o := range tl.Ops {
		if o.SpillRuns > 0 || o.SpillBytes > 0 {
			spilled = append(spilled, o)
		}
	}
	if len(spilled) > 0 {
		b.WriteString("\nspill (disk-backed dedup indexes):\n")
		for _, o := range spilled {
			fmt.Fprintf(&b, "  %-44s spilled %d runs, %.1f MiB\n",
				o.Name, o.SpillRuns, float64(o.SpillBytes)/(1<<20))
		}
	}

	if len(tl.Phases) > 0 {
		b.WriteString("\nphases:\n")
		for _, ph := range tl.Phases {
			fmt.Fprintf(&b, "  phase %d %-24s %10s", ph.Phase, ph.Name,
				ph.Dur.Round(time.Millisecond))
			if ph.Shards > 0 {
				mean := ph.ShardWall / time.Duration(ph.Shards)
				fmt.Fprintf(&b, "  shards=%d mean=%s max=%s (shard %d)",
					ph.Shards, mean.Round(time.Microsecond),
					ph.MaxShardWall.Round(time.Microsecond), ph.SlowestShard)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
