package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SchemaVersion identifies the journal event schema. It is stamped on
// the run_start event; readers reject journals from a newer schema.
// Version 2 added the distributed-runtime events (worker_start,
// worker_retry, shard_steal) and the worker/addr fields; version 3
// added the wire-transport accounting (worker_wire events, the proto
// field on worker_start, and the bytes_sent/bytes_recv family);
// version 4 added the partitioned signature index contention events
// (index, with the partitions/waits fields). Older journals remain
// valid.
const SchemaVersion = 4

// Journal event types. Every line in a journal file is one Event whose
// Type is one of these constants.
const (
	EvRunStart         = "run_start"
	EvPlan             = "plan"
	EvPhase            = "phase"
	EvSpanStart        = "span_start"
	EvSpanEnd          = "span_end"
	EvOpComplete       = "op_complete"
	EvControllerReplan = "controller_replan"
	EvCacheHit         = "cache_hit"
	EvSpill            = "spill"
	EvTrace            = "trace"
	EvExport           = "export"
	EvRunEnd           = "run_end"

	// Distributed-runtime events (schema v2). worker_start records one
	// djworker joining the run; worker_retry records one failed stage
	// attempt against a worker (the shard was re-dispatched); shard_steal
	// records a shard routed away from its home worker — to balance load
	// or because the home worker is dead.
	EvWorkerStart = "worker_start"
	EvWorkerRetry = "worker_retry"
	EvShardSteal  = "shard_steal"

	// worker_wire (schema v3) is one worker's end-of-run transport
	// tally: negotiated proto, bytes on the wire in each direction,
	// their uncompressed equivalents, and how many stages were answered
	// with a keep-mask delta.
	EvWorkerWire = "worker_wire"

	// index (schema v4) is one shared-index stage's end-of-phase
	// contention tally: the partition count of its signature index, the
	// claims that blocked on in-order resolution (waits), and their
	// summed wait time (dur_ns).
	EvIndex = "index"
)

// PlanOp is the journal's view of one physical plan node, embedded in
// the plan event.
type PlanOp struct {
	Name        string   `json:"name"`
	Members     []string `json:"members,omitempty"` // fused constituents
	Kind        string   `json:"kind,omitempty"`
	Phase       int      `json:"phase,omitempty"`
	CostNS      int64    `json:"cost_ns,omitempty"` // predicted ns/sample (0 = unmeasured)
	Selectivity float64  `json:"selectivity,omitempty"`
	Measured    bool     `json:"measured,omitempty"`
}

// PlanPass is one optimizer pass record with its wall time.
type PlanPass struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
}

// Event is one journal line. The schema is append-only stable: fields
// may be added in later schema versions but never renamed or removed.
// Numeric fields that do not apply to a given Type are omitted.
type Event struct {
	TS     int64  `json:"ts"` // unix nanoseconds
	Type   string `json:"type"`
	RunID  string `json:"run_id"`
	Span   int64  `json:"span,omitempty"`   // span ID (span_* / op_complete / phase)
	Parent int64  `json:"parent,omitempty"` // parent span ID

	Name    string `json:"name,omitempty"` // op / span / phase name
	Kind    string `json:"kind,omitempty"` // mapper | filter | deduplicator | shard | barrier | pass ...
	Backend string `json:"backend,omitempty"`
	Recipe  string `json:"recipe,omitempty"`
	Input   string `json:"input,omitempty"`

	In    int64 `json:"in,omitempty"`
	Out   int64 `json:"out,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	DurNS int64 `json:"dur_ns,omitempty"`

	Phase    int  `json:"phase,omitempty"`
	Shard    int  `json:"shard,omitempty"`
	PlanIdx  int  `json:"plan_idx,omitempty"`
	CacheHit bool `json:"cache_hit,omitempty"`

	// Worker is the 1-based djworker ID an event belongs to (0 = the
	// coordinator itself): the lane key of the distributed timeline.
	// op_complete events for remotely executed ops carry it too.
	Worker int `json:"worker,omitempty"`
	// Addr is the worker's listen address (worker_start).
	Addr string `json:"addr,omitempty"`
	// Proto is the negotiated wire version (worker_start, worker_wire).
	Proto int `json:"proto,omitempty"`

	// Wire-transport accounting (worker_wire, schema v3): bytes put on
	// the wire to/from the worker, their uncompressed equivalents, and
	// the stages answered with a keep-mask delta.
	BytesSent    int64 `json:"bytes_sent,omitempty"`
	BytesRecv    int64 `json:"bytes_recv,omitempty"`
	RawBytesSent int64 `json:"raw_bytes_sent,omitempty"`
	RawBytesRecv int64 `json:"raw_bytes_recv,omitempty"`
	DeltaStages  int   `json:"delta_stages,omitempty"`

	// SpillRuns counts the spill files (sorted runs / LSH partitions) a
	// dedup index wrote; Bytes carries the spilled bytes (spill events).
	SpillRuns int64 `json:"spill_runs,omitempty"`

	// Partitioned-index contention (index events, schema v4): the
	// signature index's partition count and how many shard claims
	// blocked on in-order resolution (their summed wait is DurNS).
	Partitions int   `json:"partitions,omitempty"`
	Waits      int64 `json:"waits,omitempty"`

	Workers     int    `json:"workers,omitempty"`
	ShardSize   int    `json:"shard_size,omitempty"`
	MaxInFlight int    `json:"max_in_flight,omitempty"`
	Why         string `json:"why,omitempty"`

	Status string `json:"status,omitempty"` // run_end: ok | error
	Error  string `json:"error,omitempty"`
	Note   string `json:"note,omitempty"`

	Schema  int        `json:"schema,omitempty"` // run_start only
	Ops     []PlanOp   `json:"ops,omitempty"`    // plan only
	Passes  []PlanPass `json:"passes,omitempty"` // plan only
	Shards  int        `json:"shards,omitempty"` // run_end (stream)
	Resumed int        `json:"resumed,omitempty"`
	PlanOps int        `json:"plan_ops,omitempty"`

	Attrs map[string]any `json:"attrs,omitempty"` // trace example payloads
}

// Journal is an append-only JSONL event writer. Writes are serialized
// and flushed per event so `tail -f` and crash-truncated reads see
// complete lines. The zero value and a nil *Journal are safe no-ops.
type Journal struct {
	mu   sync.Mutex
	w    *bufio.Writer
	file *os.File
	path string
	err  error
}

// NewJournal creates <dir>/<runID>.jsonl (mkdir -p included).
func NewJournal(dir, runID string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, runID+".jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{w: bufio.NewWriterSize(f, 16<<10), file: f, path: path}, nil
}

// JournalTo wraps an arbitrary writer (tests, in-memory buffers).
func JournalTo(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriterSize(w, 16<<10)}
}

// Path returns the backing file path ("" for non-file journals).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Write appends one event as a JSON line and flushes. The first write
// error is sticky and returned by Close.
func (j *Journal) Write(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil || j.err != nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	raw = append(raw, '\n')
	if _, err := j.w.Write(raw); err != nil {
		j.err = err
		return
	}
	j.err = j.w.Flush()
}

// Close flushes and closes the journal, returning the first error seen.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w != nil {
		if err := j.w.Flush(); err != nil && j.err == nil {
			j.err = err
		}
		j.w = nil
	}
	if j.file != nil {
		if err := j.file.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.file = nil
	}
	return j.err
}

// ReadJournal decodes and validates a journal file: every line must be
// a well-formed Event with no unknown fields and the per-type required
// fields present. It doubles as the schema validator used in CI.
// Truncated trailing output (no run_end) is not an error — crashes and
// live tails produce exactly that — but structural violations are.
func ReadJournal(path string) ([]Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeJournal(raw)
}

// DecodeJournal validates raw JSONL journal bytes. See ReadJournal.
func DecodeJournal(raw []byte) ([]Event, error) {
	var events []Event
	lineNo := 0
	for len(raw) > 0 {
		lineNo++
		line := raw
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			line, raw = raw[:i], raw[i+1:]
		} else {
			raw = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", lineNo, err)
		}
		if err := validateEvent(lineNo, len(events), e); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	return events, nil
}

func validateEvent(lineNo, idx int, e Event) error {
	fail := func(msg string) error {
		return fmt.Errorf("journal line %d (%s): %s", lineNo, e.Type, msg)
	}
	if e.TS == 0 {
		return fail("missing ts")
	}
	if e.RunID == "" {
		return fail("missing run_id")
	}
	switch e.Type {
	case EvRunStart:
		if idx != 0 {
			return fail("run_start not first event")
		}
		if e.Schema == 0 {
			return fail("missing schema")
		}
		if e.Schema > SchemaVersion {
			return fail(fmt.Sprintf("schema %d newer than supported %d", e.Schema, SchemaVersion))
		}
		if e.Backend == "" {
			return fail("missing backend")
		}
	case EvPlan:
		if len(e.Ops) == 0 {
			return fail("plan with no ops")
		}
		for i, op := range e.Ops {
			if op.Name == "" {
				return fail(fmt.Sprintf("ops[%d] missing name", i))
			}
		}
	case EvPhase, EvSpanStart:
		if e.Span == 0 {
			return fail("missing span")
		}
		if e.Name == "" {
			return fail("missing name")
		}
	case EvSpanEnd:
		if e.Span == 0 {
			return fail("missing span")
		}
	case EvOpComplete:
		if e.Name == "" {
			return fail("missing name")
		}
		if e.In < 0 || e.Out < 0 {
			return fail("negative counts")
		}
	case EvControllerReplan:
		if e.Workers <= 0 || e.ShardSize <= 0 {
			return fail("missing decision fields")
		}
	case EvCacheHit:
		if e.Name == "" {
			return fail("missing name")
		}
	case EvSpill:
		if e.Name == "" {
			return fail("missing name")
		}
		if e.SpillRuns <= 0 && e.Bytes <= 0 {
			return fail("spill with no runs or bytes")
		}
	case EvTrace:
		if e.Name == "" {
			return fail("missing name")
		}
	case EvIndex:
		if e.Name == "" {
			return fail("missing name")
		}
		if e.Partitions <= 0 {
			return fail("index with no partitions")
		}
		if e.Waits < 0 || e.DurNS < 0 {
			return fail("negative contention counts")
		}
	case EvWorkerStart:
		if e.Worker <= 0 {
			return fail("missing worker")
		}
		if e.Addr == "" {
			return fail("missing addr")
		}
	case EvWorkerRetry:
		if e.Worker <= 0 {
			return fail("missing worker")
		}
		if e.Why == "" {
			return fail("missing why")
		}
	case EvShardSteal:
		if e.Worker <= 0 {
			return fail("missing worker")
		}
	case EvWorkerWire:
		if e.Worker <= 0 {
			return fail("missing worker")
		}
		if e.BytesSent < 0 || e.BytesRecv < 0 || e.RawBytesSent < 0 || e.RawBytesRecv < 0 {
			return fail("negative byte counts")
		}
	case EvExport:
		if e.Input == "" && e.Note == "" {
			return fail("missing target")
		}
	case EvRunEnd:
		if e.Status == "" {
			return fail("missing status")
		}
	case "":
		return fail("missing type")
	default:
		return fail("unknown event type")
	}
	return nil
}
