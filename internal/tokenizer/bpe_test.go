package tokenizer

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

var trainCorpus = []string{
	"the quick brown fox jumps over the lazy dog",
	"the lazy dog sleeps while the quick fox runs",
	"quick foxes and lazy dogs are common in stories",
	"the story of the fox and the dog is old",
	"dogs and foxes run quickly through the lazy afternoon",
}

func trained(t *testing.T) *BPE {
	t.Helper()
	return Train(trainCorpus, 100)
}

func TestTrainProducesMergesAndVocab(t *testing.T) {
	b := trained(t)
	if b.NumMerges() == 0 {
		t.Fatal("no merges learned")
	}
	if b.VocabSize() == 0 {
		t.Fatal("empty vocab")
	}
}

func TestTokenizeMergesFrequentWords(t *testing.T) {
	b := trained(t)
	// "the" is the most frequent word: it must merge into few tokens.
	toks := b.Tokenize("the")
	if len(toks) > 2 {
		t.Fatalf("'the' tokenized to %v, expected a merged form", toks)
	}
	// A rare character sequence stays as characters.
	toks = b.Tokenize("zzzqqq")
	if len(toks) < 4 {
		t.Fatalf("rare word should stay fragmented: %v", toks)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := trained(t)
	in := "the quick dog runs"
	out := b.Decode(b.Encode(in))
	if out != in {
		t.Fatalf("round trip: %q -> %q", in, out)
	}
}

func TestCountTokensMonotonicInLength(t *testing.T) {
	b := trained(t)
	short := b.CountTokens("the dog")
	long := b.CountTokens("the dog and the fox run through the story")
	if short <= 0 || long <= short {
		t.Fatalf("counts: short=%d long=%d", short, long)
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := Train(trainCorpus, 80)
	b := Train(trainCorpus, 80)
	if a.VocabSize() != b.VocabSize() || a.NumMerges() != b.NumMerges() {
		t.Fatal("training not deterministic")
	}
	ta := a.Tokenize("the quick brown fox")
	tb := b.Tokenize("the quick brown fox")
	if strings.Join(ta, "|") != strings.Join(tb, "|") {
		t.Fatalf("tokenization differs: %v vs %v", ta, tb)
	}
}

func TestSaveLoad(t *testing.T) {
	b := trained(t)
	path := filepath.Join(t.TempDir(), "bpe.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	in := "the lazy fox story"
	if strings.Join(got.Tokenize(in), "|") != strings.Join(b.Tokenize(in), "|") {
		t.Fatal("loaded model tokenizes differently")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestEmptyInput(t *testing.T) {
	b := trained(t)
	if got := b.Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize empty = %v", got)
	}
	if got := b.CountTokens("   "); got != 0 {
		t.Fatalf("CountTokens blank = %d", got)
	}
	if got := b.Decode(nil); got != "" {
		t.Fatalf("Decode nil = %q", got)
	}
}

func TestTrainTinyCorpus(t *testing.T) {
	b := Train([]string{"a"}, 50)
	if got := b.Tokenize("a"); len(got) == 0 {
		t.Fatal("single-char corpus broken")
	}
}

// Property: token count over the corpus alphabet is at most
// characters + words (each word adds at most one end-of-word marker).
func TestPropertyTokenCountBounded(t *testing.T) {
	b := trained(t)
	f := func(raw string) bool {
		words := strings.Fields(strings.ToLower(raw))
		chars := 0
		for _, w := range words {
			chars += len([]rune(w))
		}
		n := b.CountTokens(raw)
		return n <= chars+len(words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decode(encode(x)) == normalized x for in-alphabet text.
func TestPropertyRoundTripInAlphabet(t *testing.T) {
	b := trained(t)
	vocabWords := strings.Fields(strings.Join(trainCorpus, " "))
	f := func(idxs []uint8) bool {
		if len(idxs) == 0 {
			return true
		}
		words := make([]string, 0, len(idxs))
		for _, i := range idxs {
			words = append(words, vocabWords[int(i)%len(vocabWords)])
		}
		in := strings.Join(words, " ")
		return b.Decode(b.Encode(in)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Tokenize never yields empty tokens, and every token is either
// the end-of-word marker or carries at least one rune of the input.
func TestPropertyTokensNonEmpty(t *testing.T) {
	b := trained(t)
	f := func(s string) bool {
		for _, tok := range b.Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
