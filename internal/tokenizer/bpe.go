// Package tokenizer implements a trainable byte-pair-encoding (BPE)
// subword tokenizer — the stand-in for the SentencePiece / GPT-NeoX
// tokenizers the paper uses for token counting (Table 7) and the
// token_num_filter.
package tokenizer

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// endOfWord marks word boundaries inside the merge alphabet.
const endOfWord = "</w>"

// BPE is a trained byte-pair-encoding tokenizer. The zero value is not
// usable; train with Train or load with Load.
type BPE struct {
	// merges maps a candidate pair "a b" to its merge priority (lower
	// merges first).
	merges map[string]int
	// vocab maps token string to id.
	vocab map[string]int
	// inv maps id back to token.
	inv []string
}

// Train learns numMerges merge operations from the corpus text. Training
// follows the classic BPE procedure: start from characters (plus an
// end-of-word marker), repeatedly merge the most frequent adjacent pair.
func Train(corpus []string, numMerges int) *BPE {
	// Word frequency table.
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range strings.Fields(strings.ToLower(doc)) {
			wordFreq[w]++
		}
	}
	// Represent each word as a symbol sequence.
	type entry struct {
		syms []string
		freq int
	}
	entries := make([]entry, 0, len(wordFreq))
	words := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		words = append(words, w)
	}
	sort.Strings(words) // determinism
	for _, w := range words {
		syms := make([]string, 0, len(w)+1)
		for _, r := range w {
			syms = append(syms, string(r))
		}
		syms = append(syms, endOfWord)
		entries = append(entries, entry{syms: syms, freq: wordFreq[w]})
	}

	merges := make(map[string]int, numMerges)
	for m := 0; m < numMerges; m++ {
		// Count adjacent pairs.
		pairCount := map[string]int{}
		for _, e := range entries {
			for i := 0; i+1 < len(e.syms); i++ {
				pairCount[e.syms[i]+" "+e.syms[i+1]] += e.freq
			}
		}
		if len(pairCount) == 0 {
			break
		}
		// Most frequent pair, ties broken lexicographically for
		// determinism.
		best, bestN := "", -1
		for p, n := range pairCount {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // no productive merges left
		}
		merges[best] = m
		parts := strings.SplitN(best, " ", 2)
		a, b := parts[0], parts[1]
		merged := a + b
		for idx := range entries {
			e := &entries[idx]
			out := e.syms[:0]
			i := 0
			for i < len(e.syms) {
				if i+1 < len(e.syms) && e.syms[i] == a && e.syms[i+1] == b {
					out = append(out, merged)
					i += 2
					continue
				}
				out = append(out, e.syms[i])
				i++
			}
			e.syms = out
		}
	}

	// Build the vocabulary: all symbols surviving in entries plus single
	// characters (open vocabulary fallback handled at encode time).
	vocabSet := map[string]struct{}{endOfWord: {}}
	for _, e := range entries {
		for _, s := range e.syms {
			vocabSet[s] = struct{}{}
		}
	}
	toks := make([]string, 0, len(vocabSet))
	for tkn := range vocabSet {
		toks = append(toks, tkn)
	}
	sort.Strings(toks)
	vocab := make(map[string]int, len(toks))
	for i, tkn := range toks {
		vocab[tkn] = i
	}
	return &BPE{merges: merges, vocab: vocab, inv: toks}
}

// VocabSize returns the number of known tokens.
func (b *BPE) VocabSize() int { return len(b.vocab) }

// NumMerges returns the number of learned merges.
func (b *BPE) NumMerges() int { return len(b.merges) }

// encodeWord applies the learned merges to one lower-cased word.
func (b *BPE) encodeWord(w string) []string {
	syms := make([]string, 0, len(w)+1)
	for _, r := range w {
		syms = append(syms, string(r))
	}
	syms = append(syms, endOfWord)
	for {
		// Find the highest-priority applicable merge.
		bestIdx, bestRank := -1, 1<<31
		for i := 0; i+1 < len(syms); i++ {
			if rank, ok := b.merges[syms[i]+" "+syms[i+1]]; ok && rank < bestRank {
				bestIdx, bestRank = i, rank
			}
		}
		if bestIdx < 0 {
			return syms
		}
		merged := syms[bestIdx] + syms[bestIdx+1]
		syms = append(syms[:bestIdx], append([]string{merged}, syms[bestIdx+2:]...)...)
	}
}

// Tokenize returns the subword token strings of text.
func (b *BPE) Tokenize(text string) []string {
	var out []string
	for _, w := range strings.Fields(strings.ToLower(text)) {
		out = append(out, b.encodeWord(w)...)
	}
	return out
}

// Encode returns token ids; characters unseen in training map to -1
// (unknown).
func (b *BPE) Encode(text string) []int {
	toks := b.Tokenize(text)
	ids := make([]int, len(toks))
	for i, tkn := range toks {
		if id, ok := b.vocab[tkn]; ok {
			ids[i] = id
		} else {
			ids[i] = -1
		}
	}
	return ids
}

// Decode reassembles text from token ids (words separated by spaces).
func (b *BPE) Decode(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		if id < 0 || id >= len(b.inv) {
			sb.WriteString("�")
			continue
		}
		sb.WriteString(b.inv[id])
	}
	return strings.TrimSpace(strings.ReplaceAll(sb.String(), endOfWord, " "))
}

// CountTokens implements the filter.TokenCounter contract.
func (b *BPE) CountTokens(text string) int { return len(b.Tokenize(text)) }

// persisted is the on-disk form.
type persisted struct {
	Merges map[string]int `json:"merges"`
	Vocab  []string       `json:"vocab"`
}

// Save writes the tokenizer model to path.
func (b *BPE) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := json.NewEncoder(w).Encode(persisted{Merges: b.merges, Vocab: b.inv}); err != nil {
		return err
	}
	return w.Flush()
}

// Load reads a tokenizer model saved by Save.
func Load(path string) (*BPE, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a persisted model from r.
func Read(r io.Reader) (*BPE, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("tokenizer: %w", err)
	}
	vocab := make(map[string]int, len(p.Vocab))
	for i, tkn := range p.Vocab {
		vocab[tkn] = i
	}
	return &BPE{merges: p.Merges, vocab: vocab, inv: p.Vocab}, nil
}
