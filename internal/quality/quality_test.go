package quality

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

func webTexts(n int, seed int64) []string {
	d := corpus.Web(corpus.Options{Docs: n, Seed: seed})
	out := make([]string, d.Len())
	for i, s := range d.Samples {
		out[i] = s.Text
	}
	return out
}

func wikiBooksTexts(n int, seed int64) []string {
	w := corpus.Wiki(corpus.Options{Docs: n / 2, Seed: seed})
	b := corpus.Books(corpus.Options{Docs: n - n/2, Seed: seed + 1})
	out := make([]string, 0, n)
	for _, s := range w.Samples {
		out = append(out, s.Text)
	}
	for _, s := range b.Samples {
		out = append(out, s.Text)
	}
	return out
}

func TestHashingTF(t *testing.T) {
	tf := HashingTF{Dim: 1024}
	v := tf.Transform([]string{"a", "b", "a"})
	if len(v) != 2 {
		t.Fatalf("buckets = %v", v)
	}
	var total float64
	for _, x := range v {
		total += x
	}
	if total != 3 {
		t.Fatalf("total tf = %v", total)
	}
	// Same token always maps to the same bucket.
	v2 := tf.Transform([]string{"a"})
	for k := range v2 {
		if v[k] != 2 {
			t.Fatalf("bucket mismatch for 'a': %v vs %v", v, v2)
		}
	}
}

func TestLogRegSeparatesLinearlyStructuredData(t *testing.T) {
	// Feature 0 active -> label 1, feature 1 active -> label 0.
	var features []map[int]float64
	var labels []int
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			features = append(features, map[int]float64{0: 1})
			labels = append(labels, 1)
		} else {
			features = append(features, map[int]float64{1: 1})
			labels = append(labels, 0)
		}
	}
	m := TrainLogReg(2, features, labels, TrainOptions{Seed: 1})
	if p := m.Predict(map[int]float64{0: 1}); p < 0.9 {
		t.Fatalf("positive prediction = %v", p)
	}
	if p := m.Predict(map[int]float64{1: 1}); p > 0.1 {
		t.Fatalf("negative prediction = %v", p)
	}
}

func trainEnglish(t *testing.T) *Classifier {
	t.Helper()
	return Train(KindGPT3, wikiBooksTexts(120, 10), webTexts(120, 20), TrainOptions{Seed: 7})
}

func TestClassifierSeparatesCleanFromNoisy(t *testing.T) {
	c := trainEnglish(t)
	cleanEval := wikiBooksTexts(40, 99)
	noisyEval := webTexts(40, 98)
	var cleanAvg, noisyAvg float64
	for _, s := range cleanEval {
		cleanAvg += c.QualityScore(s)
	}
	for _, s := range noisyEval {
		noisyAvg += c.QualityScore(s)
	}
	cleanAvg /= float64(len(cleanEval))
	noisyAvg /= float64(len(noisyEval))
	if cleanAvg <= noisyAvg+0.2 {
		t.Fatalf("separation too weak: clean=%v noisy=%v", cleanAvg, noisyAvg)
	}
}

func TestClassifierMetricsHigh(t *testing.T) {
	// Reproduces the Table 5 setup in miniature: 4:1 split, F1 should be
	// high for the English classifier on held-out data.
	pos := wikiBooksTexts(150, 1)
	neg := webTexts(150, 2)
	texts := append(append([]string{}, pos...), neg...)
	labels := make([]int, len(texts))
	for i := range pos {
		labels[i] = 1
	}
	trainX, trainY, evalX, evalY := Split(texts, labels, 0.8, 3)
	var p, n []string
	for i, s := range trainX {
		if trainY[i] == 1 {
			p = append(p, s)
		} else {
			n = append(n, s)
		}
	}
	c := Train(KindGPT3, p, n, TrainOptions{Seed: 4})
	m := c.Evaluate(evalX, evalY)
	if m.F1 < 0.85 {
		t.Fatalf("F1 = %v, want >= 0.85 (metrics %+v)", m.F1, m)
	}
}

func TestChineseClassifier(t *testing.T) {
	clean := corpus.WebZH(corpus.Options{Docs: 100, Seed: 5, Noise: 0.01})
	noisy := corpus.WebZH(corpus.Options{Docs: 100, Seed: 6, Noise: 3.0})
	var pos, neg []string
	for _, s := range clean.Samples {
		pos = append(pos, s.Text)
	}
	for _, s := range noisy.Samples {
		neg = append(neg, s.Text)
	}
	c := Train(KindChinese, pos[:80], neg[:80], TrainOptions{Seed: 8})
	evalX := append(append([]string{}, pos[80:]...), neg[80:]...)
	evalY := make([]int, len(evalX))
	for i := 0; i < 20; i++ {
		evalY[i] = 1
	}
	m := c.Evaluate(evalX, evalY)
	if m.Accuracy < 0.7 {
		t.Fatalf("chinese accuracy = %v (metrics %+v)", m.Accuracy, m)
	}
}

func TestKeepMethods(t *testing.T) {
	c := trainEnglish(t)
	texts := webTexts(200, 77)
	labelRatio := c.KeepRatio(texts, KeepLabel, 1)
	paretoRatio := c.KeepRatio(texts, KeepPareto, 1)
	if labelRatio < 0 || labelRatio > 1 || paretoRatio < 0 || paretoRatio > 1 {
		t.Fatalf("ratios out of range: %v %v", labelRatio, paretoRatio)
	}
	// The web tier is mostly noise: both rules should keep a minority.
	if labelRatio > 0.5 {
		t.Fatalf("label keep ratio on raw web = %v, want < 0.5", labelRatio)
	}
}

func TestKeepParetoDeterministicWithSeed(t *testing.T) {
	c := trainEnglish(t)
	texts := webTexts(100, 50)
	a := c.KeepRatio(texts, KeepPareto, 42)
	b := c.KeepRatio(texts, KeepPareto, 42)
	if a != b {
		t.Fatalf("pareto keep not deterministic: %v vs %v", a, b)
	}
}

func TestKeepSingle(t *testing.T) {
	c := trainEnglish(t)
	rng := rand.New(rand.NewSource(1))
	clean := wikiBooksTexts(4, 123)[0]
	if !c.Keep(clean, KeepLabel, rng) {
		t.Fatal("clean doc rejected by label rule")
	}
}

func TestSplitRatio(t *testing.T) {
	texts := make([]string, 100)
	labels := make([]int, 100)
	for i := range texts {
		texts[i] = "t"
		labels[i] = i % 2
	}
	trainX, trainY, evalX, evalY := Split(texts, labels, 0.8, 9)
	if len(trainX) != 80 || len(evalX) != 20 {
		t.Fatalf("split = %d/%d", len(trainX), len(evalX))
	}
	if len(trainY) != 80 || len(evalY) != 20 {
		t.Fatal("label split mismatch")
	}
}

func TestEvaluateEmptyDegenerate(t *testing.T) {
	c := trainEnglish(t)
	m := c.Evaluate(nil, nil)
	if m.F1 != 0 || m.Precision != 0 || m.Recall != 0 {
		t.Fatalf("empty eval = %+v", m)
	}
}
