// Package quality reproduces the GPT-3-style text quality classifiers of
// Sec. 5.2: a tokenizer feeding a HashingTF feature extractor and a binary
// logistic-regression model, with the "label" and "Pareto" keeping rules
// of the GPT-3 paper. Three variants mirror the paper's Table 5/6 setup:
// the English (GPT-3 reproduction), Chinese, and code classifiers.
package quality

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/text"
)

// HashingTF maps token streams to sparse term-frequency vectors of a fixed
// dimensionality via feature hashing — the PySpark HashingTF equivalent.
type HashingTF struct {
	// Dim is the feature space size (buckets).
	Dim int
}

// Transform returns the sparse TF vector of tokens.
func (h HashingTF) Transform(tokens []string) map[int]float64 {
	v := make(map[int]float64, len(tokens))
	for _, tkn := range tokens {
		v[h.bucket(tkn)]++
	}
	return v
}

func (h HashingTF) bucket(token string) int {
	// FNV-1a inlined; modulo the feature space.
	var hash uint64 = 14695981039346656037
	for i := 0; i < len(token); i++ {
		hash ^= uint64(token[i])
		hash *= 1099511628211
	}
	return int(hash % uint64(h.Dim))
}

// LogReg is a binary logistic regression model over hashed features.
type LogReg struct {
	weights []float64
	bias    float64
}

// TrainOptions configures logistic-regression training.
type TrainOptions struct {
	// Epochs over the training set (default 8).
	Epochs int
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// L2 regularization strength (default 1e-5).
	L2 float64
	// Seed for the shuffle order.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.L2 == 0 {
		o.L2 = 1e-5
	}
	return o
}

// TrainLogReg fits a logistic regression with SGD. features[i] is sparse;
// labels[i] is 0 or 1.
func TrainLogReg(dim int, features []map[int]float64, labels []int, o TrainOptions) *LogReg {
	o = o.withDefaults()
	m := &LogReg{weights: make([]float64, dim)}
	rng := rand.New(rand.NewSource(o.Seed))
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	lr := o.LearningRate
	for epoch := 0; epoch < o.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			f := features[i]
			p := m.predictSparse(f)
			g := p - float64(labels[i])
			for j, x := range f {
				m.weights[j] -= lr * (g*x + o.L2*m.weights[j])
			}
			m.bias -= lr * g
		}
		lr *= 0.9
	}
	return m
}

// predictSparse sums in sorted index order: float addition is not
// associative, so map-order iteration would make scores (and keep
// verdicts near the threshold) nondeterministic across runs.
func (m *LogReg) predictSparse(f map[int]float64) float64 {
	idx := make([]int, 0, len(f))
	for j := range f {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	z := m.bias
	for _, j := range idx {
		z += m.weights[j] * f[j]
	}
	return sigmoid(z)
}

// Predict returns P(label=1 | features).
func (m *LogReg) Predict(f map[int]float64) float64 { return m.predictSparse(f) }

func sigmoid(z float64) float64 {
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Kind selects a classifier variant.
type Kind string

// Classifier variants, matching Table 6.
const (
	KindGPT3    Kind = "gpt3"    // English, standard tokenizer
	KindChinese Kind = "chinese" // character tokens (SentencePiece stand-in)
	KindCode    Kind = "code"    // identifier-aware tokens
)

// tokenizeFor returns the tokenizer for a classifier kind. Normalized TF
// (dividing by length) keeps long documents from saturating scores.
func tokenizeFor(kind Kind) func(string) []string {
	switch kind {
	case KindChinese:
		return func(s string) []string { return text.CharNGrams(s, 1) }
	case KindCode:
		return func(s string) []string { return text.Words(s) }
	default:
		return text.WordsLower
	}
}

// Classifier scores text quality in [0, 1].
type Classifier struct {
	kind     Kind
	tf       HashingTF
	model    *LogReg
	tokenize func(string) []string
}

// Train fits a classifier of the given kind on positive (high-quality)
// and negative (low-quality) example texts.
func Train(kind Kind, positives, negatives []string, o TrainOptions) *Classifier {
	tok := tokenizeFor(kind)
	tf := HashingTF{Dim: 1 << 18}
	features := make([]map[int]float64, 0, len(positives)+len(negatives))
	labels := make([]int, 0, cap(features))
	for _, s := range positives {
		features = append(features, normalize(tf.Transform(tok(s))))
		labels = append(labels, 1)
	}
	for _, s := range negatives {
		features = append(features, normalize(tf.Transform(tok(s))))
		labels = append(labels, 0)
	}
	return &Classifier{
		kind:     kind,
		tf:       tf,
		model:    TrainLogReg(tf.Dim, features, labels, o),
		tokenize: tok,
	}
}

// normalize scales the TF vector by total count. Summation runs in sorted
// index order for determinism (see predictSparse).
func normalize(f map[int]float64) map[int]float64 {
	idx := make([]int, 0, len(f))
	for j := range f {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	var total float64
	for _, j := range idx {
		total += f[j]
	}
	if total == 0 {
		return f
	}
	for _, j := range idx {
		f[j] /= total * 0.01 // scale so typical docs produce usable logits
	}
	return f
}

// Kind returns the classifier variant.
func (c *Classifier) Kind() Kind { return c.kind }

// QualityScore implements the filter.QualityScorer contract: the model's
// probability that text is high-quality.
func (c *Classifier) QualityScore(s string) float64 {
	return c.model.Predict(normalize(c.tf.Transform(c.tokenize(s))))
}

// KeepMethod selects the document keeping rule of the GPT-3 paper.
type KeepMethod int

// Keeping rules (Table 4).
const (
	// KeepLabel keeps documents with score > 0.5.
	KeepLabel KeepMethod = iota
	// KeepPareto keeps documents with score > 1 - pareto(alpha=9), the
	// noisy threshold used by GPT-3 to retain a tail of lower-scored docs.
	KeepPareto
)

// paretoAlpha matches np.random.pareto(9) in the paper.
const paretoAlpha = 9.0

// Keep applies the keeping rule. rng drives the Pareto draw (pass a seeded
// source for reproducibility).
func (c *Classifier) Keep(s string, method KeepMethod, rng *rand.Rand) bool {
	score := c.QualityScore(s)
	switch method {
	case KeepPareto:
		// np.random.pareto(a) samples (1-U)^(-1/a) - 1 (Lomax).
		u := rng.Float64()
		draw := math.Pow(1-u, -1/paretoAlpha) - 1
		return score > 1-draw
	default:
		return score > 0.5
	}
}

// KeepRatio applies the rule to every text and reports the kept fraction.
func (c *Classifier) KeepRatio(texts []string, method KeepMethod, seed int64) float64 {
	if len(texts) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	kept := 0
	for _, s := range texts {
		if c.Keep(s, method, rng) {
			kept++
		}
	}
	return float64(kept) / float64(len(texts))
}

// Metrics holds binary-classification quality numbers.
type Metrics struct {
	Precision, Recall, F1, Accuracy float64
}

// Evaluate scores the classifier on labeled texts (1 = high quality).
func (c *Classifier) Evaluate(texts []string, labels []int) Metrics {
	var tp, fp, fn, tn float64
	for i, s := range texts {
		pred := 0
		if c.QualityScore(s) > 0.5 {
			pred = 1
		}
		switch {
		case pred == 1 && labels[i] == 1:
			tp++
		case pred == 1 && labels[i] == 0:
			fp++
		case pred == 0 && labels[i] == 1:
			fn++
		default:
			tn++
		}
	}
	m := Metrics{}
	if tp+fp > 0 {
		m.Precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		m.Recall = tp / (tp + fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	if total := tp + fp + fn + tn; total > 0 {
		m.Accuracy = (tp + tn) / total
	}
	return m
}

// Split partitions texts+labels into train/eval with the given ratio
// (e.g. 0.8 for the paper's 4:1), shuffled deterministically by seed.
func Split(texts []string, labels []int, trainRatio float64, seed int64) (trainX []string, trainY []int, evalX []string, evalY []int) {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(texts))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	cut := int(float64(len(idx)) * trainRatio)
	for i, j := range idx {
		if i < cut {
			trainX = append(trainX, texts[j])
			trainY = append(trainY, labels[j])
		} else {
			evalX = append(evalX, texts[j])
			evalY = append(evalY, labels[j])
		}
	}
	return trainX, trainY, evalX, evalY
}
