package dist

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// richDataset builds samples exercising every column the v2 frame
// carries: bare text, parts, meta, stats, and unicode payloads.
func richDataset() *dataset.Dataset {
	a := sample.New("plain text only")
	b := sample.New(`text with "quotes" and	tabs`)
	b.SetStat("alnum_ratio", 0.75)
	b.SetStatString("lang", "en")
	c := sample.New("日本語テキスト with mixed content")
	c.Parts = map[string]string{"title": "heading", "body": "the rest"}
	c.Meta = sample.Fields{"source": "unit-test", "weight": 2.5}
	c.SetStat("word_num", 42)
	d := sample.New("")
	d.SetStat("empty_text", 1)
	return dataset.New([]*sample.Sample{a, b, c, d})
}

// jsonl renders a dataset in export form — the byte-identity yardstick.
func jsonl(t *testing.T, d *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrame2RoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			d := richDataset()
			h := RunHeader{RunID: "r2", Shard: 7, FromOp: 0, ToOp: 2, Samples: d.Len(), Compress: compress}
			var buf bytes.Buffer
			wire, raw, err := WriteFrame2(&buf, h, d, compress)
			if err != nil {
				t.Fatal(err)
			}
			if wire != int64(buf.Len()) {
				t.Errorf("wire count %d, buffer holds %d", wire, buf.Len())
			}
			if raw <= 0 {
				t.Errorf("raw count %d, want positive", raw)
			}
			fr := NewFrame2Reader(&buf)
			var got RunHeader
			if err := fr.Header(&got); err != nil {
				t.Fatal(err)
			}
			if got != h {
				t.Errorf("header round trip: got %+v want %+v", got, h)
			}
			f, err := fr.Body()
			if err != nil {
				t.Fatal(err)
			}
			if f.Delta {
				t.Error("full frame decoded as delta")
			}
			if f.Wire != wire || f.Raw != raw {
				t.Errorf("reader accounting wire=%d raw=%d, writer said %d/%d", f.Wire, f.Raw, wire, raw)
			}
			if !bytes.Equal(jsonl(t, f.Data), jsonl(t, d)) {
				t.Error("payload not byte-identical after round trip")
			}
		})
	}
}

func TestFrame2EmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, ResultHeader{Shard: 3}, dataset.New(nil), false); err != nil {
		t.Fatal(err)
	}
	fr := NewFrame2Reader(&buf)
	var h ResultHeader
	if err := fr.Header(&h); err != nil {
		t.Fatal(err)
	}
	f, err := fr.Body()
	if err != nil {
		t.Fatal(err)
	}
	if f.Data.Len() != 0 || h.Shard != 3 {
		t.Errorf("empty frame round trip: %d samples, shard %d", f.Data.Len(), h.Shard)
	}
}

// TestFrame2ManyBatches crosses the batch boundary so the per-batch
// count discipline is exercised on both sides.
func TestFrame2ManyBatches(t *testing.T) {
	samples := make([]*sample.Sample, frame2BatchSize*2+17)
	for i := range samples {
		samples[i] = sample.New(strings.Repeat("x", i%97))
	}
	d := dataset.New(samples)
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{}, d, true); err != nil {
		t.Fatal(err)
	}
	fr := NewFrame2Reader(&buf)
	var h RunHeader
	if err := fr.Header(&h); err != nil {
		t.Fatal(err)
	}
	f, err := fr.Body()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonl(t, f.Data), jsonl(t, d)) {
		t.Error("multi-batch payload not byte-identical")
	}
}

func TestFrame2DeltaRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			in := make([]*sample.Sample, 21)
			for i := range in {
				in[i] = sample.New(strings.Repeat("s", i+1))
			}
			var kept []*sample.Sample
			for i, s := range in {
				if i%3 != 0 { // drop every third sample
					s.SetStat("keep_score", float64(i))
					kept = append(kept, s)
				}
			}
			mask, ok := BuildKeepMask(in, kept)
			if !ok {
				t.Fatal("BuildKeepMask rejected an ordered subset")
			}
			var buf bytes.Buffer
			rh := ResultHeader{Shard: 5, Samples: len(kept), Delta: true}
			if _, _, err := WriteDeltaFrame2(&buf, rh, mask, len(in), kept, compress); err != nil {
				t.Fatal(err)
			}
			fr := NewFrame2Reader(&buf)
			var got ResultHeader
			if err := fr.Header(&got); err != nil {
				t.Fatal(err)
			}
			f, err := fr.Body()
			if err != nil {
				t.Fatal(err)
			}
			if !f.Delta || f.InCount != len(in) || f.Data.Len() != len(kept) {
				t.Fatalf("delta frame decoded wrong: delta=%v in=%d kept=%d", f.Delta, f.InCount, f.Data.Len())
			}
			applied := ApplyKeepMask(in, f.Mask)
			if len(applied) != len(kept) {
				t.Fatalf("mask selects %d samples, want %d", len(applied), len(kept))
			}
			for i, s := range applied {
				if s != kept[i] {
					t.Fatalf("mask selected wrong sample at %d", i)
				}
				want, _ := kept[i].Stat("keep_score")
				got, ok := f.Data.Samples[i].Stat("keep_score")
				if !ok || got != want {
					t.Errorf("stats column entry %d: got %v (%v), want %v", i, got, ok, want)
				}
			}
		})
	}
}

func TestBuildKeepMaskRejectsNonSubset(t *testing.T) {
	in := []*sample.Sample{sample.New("a"), sample.New("b")}
	if _, ok := BuildKeepMask(in, []*sample.Sample{sample.New("a")}); ok {
		t.Error("accepted samples not drawn from the input slice")
	}
	if _, ok := BuildKeepMask(in, []*sample.Sample{in[1], in[0]}); ok {
		t.Error("accepted an out-of-order subset")
	}
	mask, ok := BuildKeepMask(in, nil)
	if !ok || len(ApplyKeepMask(in, mask)) != 0 {
		t.Error("empty keep set should produce an all-zero mask")
	}
}

// TestFrame2Compression checks compression actually shrinks a
// repetitive payload and the raw accounting reports the savings.
func TestFrame2Compression(t *testing.T) {
	samples := make([]*sample.Sample, 64)
	for i := range samples {
		samples[i] = sample.New(strings.Repeat("the same compressible sentence. ", 40))
	}
	d := dataset.New(samples)
	var plain, comp bytes.Buffer
	if _, _, err := WriteFrame2(&plain, RunHeader{}, d, false); err != nil {
		t.Fatal(err)
	}
	wire, raw, err := WriteFrame2(&comp, RunHeader{}, d, true)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len()/2 {
		t.Errorf("compressed frame %d bytes, plain %d: expected >2x shrink", comp.Len(), plain.Len())
	}
	if wire >= raw {
		t.Errorf("accounting says wire %d >= raw %d for compressible data", wire, raw)
	}
}

// corruptAt returns a valid encoded frame with one byte mutated at the
// given offset past the JSON header line.
func corruptAt(t *testing.T, off int, xor byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{RunID: "c"}, richDataset(), false); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 || nl+1+off >= len(raw) {
		t.Fatalf("frame too short for corruption at %d", off)
	}
	out := append([]byte(nil), raw...)
	out[nl+1+off] ^= xor
	return out
}

func decodeFrame2(b []byte) error {
	fr := NewFrame2Reader(bytes.NewReader(b))
	var h RunHeader
	if err := fr.Header(&h); err != nil {
		return err
	}
	_, err := fr.Body()
	return err
}

func TestFrame2RejectsCorruption(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":        corruptAt(t, 0, 0xff),
		"bad version":      corruptAt(t, 4, 0x01),
		"unknown flags":    corruptAt(t, 5, 0x80),
		"reserved nonzero": corruptAt(t, 6, 0x01),
		"huge count":       corruptAt(t, 11, 0xff), // top byte of sample count
		"bad batch count":  corruptAt(t, 16, 0x40),
	}
	for name, b := range cases {
		if err := decodeFrame2(b); err == nil {
			t.Errorf("%s: decode accepted a corrupt frame", name)
		}
	}
}

func TestFrame2RejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{RunID: "t"}, richDataset(), false); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	nl := bytes.IndexByte(full, '\n')
	// Cut inside the binary header, inside the length columns, and one
	// byte short of complete.
	for _, cut := range []int{nl + 3, nl + 10, nl + 25, len(full) - 1} {
		if err := decodeFrame2(full[:cut]); err == nil {
			t.Errorf("decode accepted a frame truncated at %d/%d", cut, len(full))
		}
	}
}

func TestFrame2RejectsCorruptBlock(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{}, richDataset(), true); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	nl := bytes.IndexByte(raw, '\n')
	// Inflate the first block's claimed encoded length.
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[nl+1+frame2HeaderSize:], uint32(frame2MaxBlockEnc+1))
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted an implausible block length")
	}
	// Flip a byte inside the lzj payload.
	bad = append([]byte(nil), raw...)
	bad[nl+1+frame2HeaderSize+12] ^= 0xff
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted a corrupt compressed block")
	}
}

func TestFrame2RejectsBadDelta(t *testing.T) {
	in := make([]*sample.Sample, 10)
	for i := range in {
		in[i] = sample.New("x")
	}
	kept := in[:4]
	mask, ok := BuildKeepMask(in, kept)
	if !ok {
		t.Fatal("mask build failed")
	}
	encode := func(mask []byte, inCount int, kept []*sample.Sample) []byte {
		var buf bytes.Buffer
		if _, _, err := WriteDeltaFrame2(&buf, ResultHeader{Delta: true}, mask, inCount, kept, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := encode(mask, len(in), kept)
	nl := bytes.IndexByte(good, '\n')

	// Popcount mismatch: clear a mask bit without touching the counts.
	bad := append([]byte(nil), good...)
	bad[nl+1+frame2HeaderSize] &^= 1
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted a popcount/kept-count mismatch")
	}
	// Bits past the input count.
	bad = append([]byte(nil), good...)
	bad[nl+1+frame2HeaderSize+1] |= 1 << 7 // bit 15 of a 10-input mask
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted mask bits past the input count")
	}
	// kept > inCount in the binary header.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[nl+1+12:], 2) // inCount 10 -> 2
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted kept count above input count")
	}
	// Full frame claiming a nonzero input count.
	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{}, frameDataset("a"), false); err != nil {
		t.Fatal(err)
	}
	fb := buf.Bytes()
	nl = bytes.IndexByte(fb, '\n')
	bad = append([]byte(nil), fb...)
	binary.LittleEndian.PutUint32(bad[nl+1+12:], 1)
	if err := decodeFrame2(bad); err == nil {
		t.Error("decode accepted a full frame with a delta input count")
	}
	// Mask length validation on the writer side.
	if _, _, err := WriteDeltaFrame2(&buf, ResultHeader{}, mask[:1], len(in), kept, false); err == nil {
		t.Error("writer accepted a short mask")
	}
}

// TestWorkerClientProtoNegotiation pins the clamping rules: a worker
// that never answers with a proto (an old binary) stays on v1, and
// SetProto never exceeds the coordinator's own maximum.
func TestWorkerClientProtoNegotiation(t *testing.T) {
	c := &WorkerClient{}
	if c.Proto() != ProtoVersion {
		t.Errorf("zero-value proto %d, want %d", c.Proto(), ProtoVersion)
	}
	c.SetProto(0) // v1 worker: no proto field in ConfigureResponse
	if c.Proto() != ProtoVersion {
		t.Errorf("proto after SetProto(0): %d, want %d", c.Proto(), ProtoVersion)
	}
	c.SetProto(ProtoV2)
	if c.Proto() != ProtoV2 {
		t.Errorf("proto after SetProto(2): %d, want %d", c.Proto(), ProtoV2)
	}
	c.SetProto(99) // future worker: clamp to what we speak
	if c.Proto() != MaxProtoVersion {
		t.Errorf("proto after SetProto(99): %d, want %d", c.Proto(), MaxProtoVersion)
	}
}
