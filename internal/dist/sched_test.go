package dist

import (
	"testing"
	"time"
)

func testScheduler(n int) *Scheduler {
	clients := make([]*WorkerClient, n)
	for i := range clients {
		clients[i] = NewWorkerClient(i+1, "127.0.0.1:0", time.Second)
	}
	return NewScheduler(clients)
}

// TestSchedulerHomeAffinity: an idle fleet routes every shard to its
// home worker (shard mod N) with no steals.
func TestSchedulerHomeAffinity(t *testing.T) {
	s := testScheduler(3)
	for shard := 0; shard < 6; shard++ {
		d := s.Pick(shard)
		if d.Worker == nil || d.Stolen {
			t.Fatalf("shard %d: %+v, want home route", shard, d)
		}
		if want := shard%3 + 1; d.Worker.ID != want {
			t.Errorf("shard %d routed to worker %d, want %d", shard, d.Worker.ID, want)
		}
		s.Done(d.Worker)
	}
	st := s.Stats()
	if st.Steals != 0 || st.Retries != 0 || st.Fallbacks != 0 {
		t.Errorf("idle fleet produced failures: %+v", st)
	}
	if st.Workers[0].Stages != 2 || st.Workers[2].Stages != 2 {
		t.Errorf("stage tallies wrong: %+v", st.Workers)
	}
}

// TestSchedulerStealsFromBusyHome: once the home worker holds
// stealThreshold stages in flight, new shards go to an idler worker and
// are counted as steals.
func TestSchedulerStealsFromBusyHome(t *testing.T) {
	s := testScheduler(2)
	var held []*WorkerClient
	for i := 0; i < stealThreshold; i++ {
		d := s.Pick(0) // home = worker 1
		if d.Worker.ID != 1 || d.Stolen {
			t.Fatalf("warm-up pick %d: %+v", i, d)
		}
		held = append(held, d.Worker)
	}
	d := s.Pick(0)
	if d.Worker == nil || d.Worker.ID != 2 || !d.Stolen || d.Why != "home worker busy" {
		t.Fatalf("overloaded home not stolen from: %+v", d)
	}
	st := s.Stats()
	if st.Steals != 1 || st.Workers[1].Steals != 1 {
		t.Errorf("steal not tallied: %+v", st)
	}
	for _, w := range held {
		s.Done(w)
	}
	s.Done(d.Worker)
	// Home drained: affinity resumes.
	if d := s.Pick(0); d.Worker.ID != 1 || d.Stolen {
		t.Errorf("drained home not reused: %+v", d)
	}
}

// TestSchedulerDeadWorkerRerouting: a failed worker is never picked
// again; its shards are stolen by survivors, and once the whole fleet
// is dead Pick degrades to the in-process fallback.
func TestSchedulerDeadWorkerRerouting(t *testing.T) {
	s := testScheduler(2)
	d := s.Pick(0)
	s.Fail(d.Worker) // worker 1 dies mid-stage
	if s.Alive() != 1 {
		t.Fatalf("alive = %d, want 1", s.Alive())
	}
	d = s.Pick(0) // home is dead
	if d.Worker == nil || d.Worker.ID != 2 || !d.Stolen || d.Why != "home worker dead" {
		t.Fatalf("dead home not stolen from: %+v", d)
	}
	s.Done(d.Worker)
	s.Fail(s.Clients()[1]) // worker 2 dies too
	d = s.Pick(1)
	if d.Worker != nil || d.Why != "all workers dead" {
		t.Fatalf("dead fleet did not fall back: %+v", d)
	}
	st := s.Stats()
	if st.Retries != 2 || st.Fallbacks != 1 || !st.Workers[0].Dead || !st.Workers[1].Dead {
		t.Errorf("failure tallies wrong: %+v", st)
	}
	if len(s.Live()) != 0 {
		t.Errorf("live list not empty: %v", s.Live())
	}
}

// TestRunStatsMergeAssociative pins that merging partial stats is
// order-independent: (a+b)+c == a+(b+c).
func TestRunStatsMergeAssociative(t *testing.T) {
	mk := func() (a, b, c RunStats) {
		a = RunStats{Workers: []WorkerRunStat{{Worker: 1, Addr: "x", Stages: 2}}, Retries: 1}
		b = RunStats{Workers: []WorkerRunStat{{Worker: 2, Stages: 3, Steals: 1}, {Worker: 1, Retries: 1, Dead: true}}, Steals: 1, Retries: 1}
		c = RunStats{Workers: []WorkerRunStat{{Worker: 3, Stages: 1}}, Fallbacks: 2}
		return
	}
	a1, b1, c1 := mk()
	left := a1.clone()
	left.Merge(b1)
	left.Merge(c1)
	a2, b2, c2 := mk()
	bc := b2.clone()
	bc.Merge(c2)
	right := a2.clone()
	right.Merge(bc)
	if len(left.Workers) != 3 || len(right.Workers) != 3 {
		t.Fatalf("merge lost workers: %+v / %+v", left.Workers, right.Workers)
	}
	for i := range left.Workers {
		if left.Workers[i] != right.Workers[i] {
			t.Errorf("worker %d differs by merge order: %+v vs %+v",
				i, left.Workers[i], right.Workers[i])
		}
	}
	if left.Retries != right.Retries || left.Steals != right.Steals || left.Fallbacks != right.Fallbacks {
		t.Errorf("totals differ by merge order: %+v vs %+v", left, right)
	}
	if left.Workers[0].Stages != 2 || !left.Workers[0].Dead || left.Retries != 2 {
		t.Errorf("merged content wrong: %+v", left)
	}
}
