package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file persists measured per-operator profiles across runs: the
// planner (internal/plan) reads them to order commutative filter groups
// by real cost × selectivity instead of static hints, so every run plans
// from the previous runs' measurements. Profiles are keyed by operator
// identity (name + params hash), not plan position, so they survive
// recipe edits and reordering and may be shared by any recipe that uses
// the same operator with the same parameters.

// StoredProfile is one operator's persisted measurement.
type StoredProfile struct {
	// Key is the operator identity: its registered name plus a hash of
	// its recipe parameters (the same identity that keys the op cache).
	Key string `json:"key"`
	// Name is the human-readable operator name behind the key.
	Name string `json:"name"`
	// Runs counts how many runs have been folded into the profile.
	Runs int `json:"runs"`
	// CostNSPerSample is the EWMA processing cost of one input sample in
	// nanoseconds.
	CostNSPerSample float64 `json:"cost_ns_per_sample"`
	// Selectivity is the EWMA survival ratio Out/In (1.0 for mappers).
	Selectivity float64 `json:"selectivity"`
}

// profileFile is the JSON sidecar wire format.
type profileFile struct {
	Version  int             `json:"version"`
	Profiles []StoredProfile `json:"profiles"`
}

// profileSchemaVersion guards the sidecar format: a bump invalidates old
// sidecars instead of misreading them.
const profileSchemaVersion = 1

// ProfileSet holds the persisted profiles of one sidecar, keyed by
// operator identity. The zero value is not usable; construct with
// NewProfileSet or LoadProfiles.
type ProfileSet struct {
	profiles map[string]*StoredProfile
}

// NewProfileSet returns an empty set.
func NewProfileSet() *ProfileSet {
	return &ProfileSet{profiles: map[string]*StoredProfile{}}
}

// Len reports the number of stored profiles.
func (s *ProfileSet) Len() int { return len(s.profiles) }

// Lookup returns the profile stored under key.
func (s *ProfileSet) Lookup(key string) (StoredProfile, bool) {
	p, ok := s.profiles[key]
	if !ok {
		return StoredProfile{}, false
	}
	return *p, true
}

// Observe folds one run's measurement of an operator into the set with
// the same EWMA smoothing the online model uses: recent runs dominate,
// single outliers do not. Non-positive costs carry no signal and are
// ignored.
func (s *ProfileSet) Observe(key, name string, costNS, selectivity float64) {
	if costNS <= 0 || selectivity < 0 {
		return
	}
	p, ok := s.profiles[key]
	if !ok {
		s.profiles[key] = &StoredProfile{
			Key: key, Name: name, Runs: 1,
			CostNSPerSample: costNS, Selectivity: selectivity,
		}
		return
	}
	p.Runs++
	p.CostNSPerSample = DefaultAlpha*costNS + (1-DefaultAlpha)*p.CostNSPerSample
	p.Selectivity = DefaultAlpha*selectivity + (1-DefaultAlpha)*p.Selectivity
}

// Export returns the stored profiles in deterministic key order, for
// shipping over the coordinator/worker wire protocol.
func (s *ProfileSet) Export() []StoredProfile {
	keys := make([]string, 0, len(s.profiles))
	for k := range s.profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]StoredProfile, 0, len(keys))
	for _, k := range keys {
		out = append(out, *s.profiles[k])
	}
	return out
}

// FromProfiles rebuilds a set from exported profiles (the receive side of
// Export). Entries without a key are dropped, mirroring LoadProfiles.
func FromProfiles(profiles []StoredProfile) *ProfileSet {
	set := NewProfileSet()
	for i := range profiles {
		p := profiles[i]
		if p.Key == "" {
			continue
		}
		set.profiles[p.Key] = &p
	}
	return set
}

// LoadProfiles reads a profile sidecar. A missing file is not an error —
// it returns an empty set, the cold-start state every recipe begins in.
// A malformed or version-skewed sidecar is reported as an error so the
// caller can choose to plan statically instead of from garbage.
func LoadProfiles(path string) (*ProfileSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewProfileSet(), nil
		}
		return NewProfileSet(), err
	}
	var f profileFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return NewProfileSet(), fmt.Errorf("dist: profile sidecar %s: %w", path, err)
	}
	if f.Version != profileSchemaVersion {
		return NewProfileSet(), fmt.Errorf("dist: profile sidecar %s: version %d, want %d",
			path, f.Version, profileSchemaVersion)
	}
	set := NewProfileSet()
	for i := range f.Profiles {
		p := f.Profiles[i]
		if p.Key == "" {
			continue
		}
		set.profiles[p.Key] = &p
	}
	return set, nil
}

// SaveProfiles writes the set to its JSON sidecar atomically (temp file +
// rename), creating parent directories as needed.
func SaveProfiles(path string, s *ProfileSet) error {
	keys := make([]string, 0, len(s.profiles))
	for k := range s.profiles {
		keys = append(keys, k)
	}
	// Deterministic order keeps the sidecar diffable across runs.
	sort.Strings(keys)
	f := profileFile{Version: profileSchemaVersion}
	for _, k := range keys {
		f.Profiles = append(f.Profiles, *s.profiles[k])
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".profiles-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
