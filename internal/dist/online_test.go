package dist

import (
	"testing"
	"time"
)

func feedChain(m *OnlineModel, rounds int, perSample time.Duration, sel float64, bytesPer int64, shard int) {
	for r := 0; r < rounds; r++ {
		out := int(float64(shard) * sel)
		m.RecordOp(OpSample{
			Seq: 0, Name: "op", In: shard, Out: out, Bytes: bytesPer * int64(shard),
			Duration: time.Duration(shard) * perSample,
		})
	}
}

func TestOnlineModelProfiles(t *testing.T) {
	m := NewOnlineModel(0.5)
	m.RecordOp(OpSample{Seq: 1, Name: "b", In: 100, Out: 50, Bytes: 1000, Duration: 100 * time.Millisecond})
	m.RecordOp(OpSample{Seq: 0, Name: "a", In: 100, Out: 100, Bytes: 2000, Duration: 50 * time.Millisecond})
	m.RecordOp(OpSample{Seq: 0, Name: "a", In: 100, Out: 100, Bytes: 2000, Duration: 50 * time.Millisecond})

	ps := m.Profiles()
	if len(ps) != 2 {
		t.Fatalf("profiles = %d, want 2", len(ps))
	}
	if ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("profiles out of plan order: %q, %q", ps[0].Name, ps[1].Name)
	}
	if ps[0].Applications != 2 || ps[0].In != 200 {
		t.Errorf("op a: apps=%d in=%d, want 2/200", ps[0].Applications, ps[0].In)
	}
	if got := ps[0].CostPerSample; got != 500*time.Microsecond {
		t.Errorf("op a cost/sample = %v, want 500µs", got)
	}
	if ps[1].Selectivity != 0.5 {
		t.Errorf("op b selectivity = %v, want 0.5", ps[1].Selectivity)
	}
}

func TestOnlineModelIgnoresEmptyObservations(t *testing.T) {
	m := NewOnlineModel(0)
	m.RecordOp(OpSample{Seq: 0, Name: "a", In: 0, Out: 0})
	m.RecordSource(0, 0, time.Second)
	if got := len(m.Profiles()); got != 0 {
		t.Fatalf("profiles after empty observations = %d, want 0", got)
	}
	if _, ok := m.Plan(Tuning{MaxWorkers: 4}, Decision{}); ok {
		t.Fatal("Plan reported a decision with no measurements")
	}
}

func TestPlanKeepsCurrentWithoutData(t *testing.T) {
	m := NewOnlineModel(0)
	cur := Decision{Workers: 3, ShardSize: 512, MaxInFlight: 6}
	got, ok := m.Plan(Tuning{MaxWorkers: 8}, cur)
	if ok || got != cur {
		t.Fatalf("Plan(no data) = %+v ok=%v, want current decision unchanged", got, ok)
	}
}

func TestPlanShardSizeTracksChainCost(t *testing.T) {
	// Fast chain: 10µs/sample → the 150ms latency target wants ~15000
	// samples, clamped to MaxShardSize.
	fast := NewOnlineModel(0)
	feedChain(fast, 5, 10*time.Microsecond, 1.0, 100, 512)
	dFast, ok := fast.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision from fast profile")
	}
	// Slow chain: 10ms/sample → wants ~15 samples, clamped to MinShardSize.
	slow := NewOnlineModel(0)
	feedChain(slow, 5, 10*time.Millisecond, 1.0, 100, 512)
	dSlow, ok := slow.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision from slow profile")
	}
	if dFast.ShardSize <= dSlow.ShardSize {
		t.Fatalf("fast-op shard %d should exceed slow-op shard %d", dFast.ShardSize, dSlow.ShardSize)
	}
	if dSlow.ShardSize != 32 {
		t.Errorf("slow-op shard = %d, want the 32 floor", dSlow.ShardSize)
	}
	if dFast.ShardSize != 8192 {
		t.Errorf("fast-op shard = %d, want the 8192 ceiling", dFast.ShardSize)
	}
}

func TestPlanWorkersRespectSerialFloor(t *testing.T) {
	// Source costs 1ms/sample, chain costs 2ms/sample: 2 workers keep up
	// with the reader and a third adds nothing.
	m := NewOnlineModel(0)
	feedChain(m, 5, 2*time.Millisecond, 1.0, 100, 512)
	m.RecordSource(512, 512*100, 512*time.Millisecond)
	d, ok := m.Plan(Tuning{MaxWorkers: 16}, Decision{})
	if !ok {
		t.Fatal("no decision")
	}
	if d.Workers < 2 || d.Workers > 3 {
		t.Fatalf("workers = %d, want 2-3 (chain/serial = 2)", d.Workers)
	}

	// No serial floor measured: saturate the pool.
	m2 := NewOnlineModel(0)
	feedChain(m2, 5, 2*time.Millisecond, 1.0, 100, 512)
	d2, _ := m2.Plan(Tuning{MaxWorkers: 16}, Decision{})
	if d2.Workers != 16 {
		t.Fatalf("workers without serial floor = %d, want MaxWorkers", d2.Workers)
	}
}

func TestPlanMemoryTargetBoundsResidentBytes(t *testing.T) {
	// 1KB/sample, fast ops → huge latency-derived shards; a 256KB target
	// must cut shard × in-flight × bytes under the target.
	m := NewOnlineModel(0)
	feedChain(m, 5, 10*time.Microsecond, 1.0, 1024, 512)
	tun := Tuning{MaxWorkers: 4, TargetMemBytes: 256 << 10}
	d, ok := m.Plan(tun, Decision{})
	if !ok {
		t.Fatal("no decision")
	}
	resident := int64(float64(d.MaxInFlight) * float64(d.ShardSize) * d.PeakBytesPerSample)
	if resident > tun.TargetMemBytes {
		t.Fatalf("modeled resident bytes %d exceed target %d (shard=%d inflight=%d)",
			resident, tun.TargetMemBytes, d.ShardSize, d.MaxInFlight)
	}
	if d.MaxInFlight < 1 || d.Workers < 1 {
		t.Fatalf("degenerate decision: %+v", d)
	}
}

// A serial (barrier) op's cost must stay out of the per-shard chain —
// it runs once per phase, outside the pipeline — while its selectivity
// still discounts everything downstream.
func TestPlanExcludesSerialOpCost(t *testing.T) {
	m := NewOnlineModel(0)
	for r := 0; r < 5; r++ {
		m.RecordOp(OpSample{Seq: 0, Name: "local", In: 1000, Out: 1000, Bytes: 100_000, Duration: 10 * time.Millisecond})
		// Barrier: enormous once-per-phase cost, halves the stream.
		m.RecordOp(OpSample{Seq: 1, Name: "barrier", In: 1000, Out: 500, Bytes: 100_000,
			Duration: 10 * time.Second, Serial: true})
		m.RecordOp(OpSample{Seq: 2, Name: "tail", In: 500, Out: 500, Bytes: 50_000, Duration: 5 * time.Millisecond})
	}
	d, ok := m.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision")
	}
	// chain = 10µs (local) + 0.5×10µs (tail, behind the barrier's 0.5
	// selectivity) = 15µs/input sample; the barrier's 10ms/sample must
	// not appear.
	want := 15 * time.Microsecond
	if diff := d.ChainCostPerSample - want; diff < -2*time.Microsecond || diff > 2*time.Microsecond {
		t.Fatalf("chain cost/sample = %v, want ~%v (barrier cost must be excluded)", d.ChainCostPerSample, want)
	}
	if d.Selectivity < 0.45 || d.Selectivity > 0.55 {
		t.Fatalf("selectivity = %v, want ~0.5 (barrier selectivity must be kept)", d.Selectivity)
	}
	if d.ShardSize == 32 {
		t.Fatal("shard collapsed to the floor: barrier cost leaked into the chain model")
	}
}

// Shard sizing targets the costliest phase, not the whole plan: a shard
// only traverses one barrier-delimited segment, so two equal phases must
// not halve the shard size.
func TestPlanSizesShardPerPhase(t *testing.T) {
	single := NewOnlineModel(0)
	multi := NewOnlineModel(0)
	for r := 0; r < 5; r++ {
		// One phase of 300µs/sample.
		single.RecordOp(OpSample{Seq: 0, Name: "only", In: 512, Out: 512, Bytes: 51_200,
			Duration: 512 * 300 * time.Microsecond})
		// Two phases of 300µs/sample each, split by a barrier.
		multi.RecordOp(OpSample{Seq: 0, Name: "p0", In: 512, Out: 512, Bytes: 51_200,
			Duration: 512 * 300 * time.Microsecond})
		multi.RecordOp(OpSample{Seq: 1, Name: "barrier", In: 512, Out: 512,
			Duration: time.Second, Serial: true})
		multi.RecordOp(OpSample{Seq: 2, Name: "p1", In: 512, Out: 512, Bytes: 51_200,
			Duration: 512 * 300 * time.Microsecond})
	}
	dSingle, ok := single.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision (single)")
	}
	dMulti, ok := multi.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision (multi)")
	}
	if dMulti.ShardSize != dSingle.ShardSize {
		t.Fatalf("two equal phases sized shard %d, one phase sized %d; per-phase latency target must match",
			dMulti.ShardSize, dSingle.ShardSize)
	}
	// The throughput model still sees the total pipelined work.
	if dMulti.ChainCostPerSample <= dSingle.ChainCostPerSample {
		t.Fatalf("total chain cost %v should exceed single-phase %v",
			dMulti.ChainCostPerSample, dSingle.ChainCostPerSample)
	}
}

func TestPlanSelectivityWeighting(t *testing.T) {
	// Op 0 drops 90%; op 1 is expensive but sees only survivors, so the
	// chain cost must be far below the naive sum.
	m := NewOnlineModel(0)
	for r := 0; r < 5; r++ {
		m.RecordOp(OpSample{Seq: 0, Name: "filter", In: 1000, Out: 100, Bytes: 100_000, Duration: 10 * time.Millisecond})
		m.RecordOp(OpSample{Seq: 1, Name: "heavy", In: 100, Out: 100, Bytes: 10_000, Duration: 100 * time.Millisecond})
	}
	d, ok := m.Plan(Tuning{MaxWorkers: 4}, Decision{})
	if !ok {
		t.Fatal("no decision")
	}
	// chain = 10µs + 0.1×1ms = 110µs per input sample.
	want := 110 * time.Microsecond
	if diff := d.ChainCostPerSample - want; diff < -5*time.Microsecond || diff > 5*time.Microsecond {
		t.Fatalf("chain cost/sample = %v, want ~%v", d.ChainCostPerSample, want)
	}
	if d.Selectivity < 0.09 || d.Selectivity > 0.11 {
		t.Fatalf("end-to-end selectivity = %v, want ~0.1", d.Selectivity)
	}
}

func TestPlanHysteresisSuppressesSmallDrift(t *testing.T) {
	m := NewOnlineModel(0)
	feedChain(m, 5, 300*time.Microsecond, 1.0, 100, 512) // wants shard ≈ 500
	cur := Decision{ShardSize: 450, Workers: 2, MaxInFlight: 4}
	d, ok := m.Plan(Tuning{MaxWorkers: 4}, cur)
	if !ok {
		t.Fatal("no decision")
	}
	if d.ShardSize != 450 {
		t.Fatalf("shard = %d; drift under 25%% of 450 should keep the current size", d.ShardSize)
	}
}

// TestPlanMemoryClampBeatsHysteresis pins the precedence: when honoring
// the memory target needs a shard reduction smaller than the 25%
// hysteresis band, the reduction must still happen — the memory bound is
// hard, churn suppression is not.
func TestPlanMemoryClampBeatsHysteresis(t *testing.T) {
	m := NewOnlineModel(0)
	// ~150ms/320 ≈ 469µs/sample: latency wants shard ≈ 320 = cur, so the
	// latency term introduces no drift; only the memory clamp moves it.
	feedChain(m, 5, 469*time.Microsecond, 1.0, 1024, 320)
	cur := Decision{ShardSize: 320, Workers: 1, MaxInFlight: 2}
	// Target sized so inflight×shard×bytes needs shard ≈ 256: a 20%
	// reduction, inside the hysteresis band.
	tun := Tuning{MaxWorkers: 1, TargetMemBytes: 2 * 256 * 1024}
	d, ok := m.Plan(tun, cur)
	if !ok {
		t.Fatal("no decision")
	}
	resident := int64(float64(d.MaxInFlight) * float64(d.ShardSize) * d.PeakBytesPerSample)
	if resident > tun.TargetMemBytes {
		t.Fatalf("hysteresis overrode the memory clamp: resident %d > target %d (%+v)",
			resident, tun.TargetMemBytes, d)
	}
	if d.ShardSize >= cur.ShardSize {
		t.Fatalf("shard = %d, want a memory-mandated reduction below %d", d.ShardSize, cur.ShardSize)
	}
}
