package dist

import (
	"bytes"
	"testing"

	"repro/internal/sample"
)

// FuzzFrame2Decode throws arbitrary bytes at the v2 frame decoder. The
// invariant under test is the retry contract: a truncated or corrupt
// frame must surface as an error — never a panic, hang, or unbounded
// allocation — so the scheduler can re-dispatch the shard elsewhere.
func FuzzFrame2Decode(f *testing.F) {
	seed := func(b []byte) { f.Add(b) }

	var buf bytes.Buffer
	if _, _, err := WriteFrame2(&buf, RunHeader{RunID: "f", Shard: 1}, richDataset(), false); err != nil {
		f.Fatal(err)
	}
	seed(append([]byte(nil), buf.Bytes()...))

	buf.Reset()
	if _, _, err := WriteFrame2(&buf, RunHeader{RunID: "f"}, richDataset(), true); err != nil {
		f.Fatal(err)
	}
	seed(append([]byte(nil), buf.Bytes()...))

	in := make([]*sample.Sample, 12)
	for i := range in {
		in[i] = sample.New("fuzz seed text")
		in[i].SetStat("score", float64(i))
	}
	mask, _ := BuildKeepMask(in, in[:7])
	buf.Reset()
	if _, _, err := WriteDeltaFrame2(&buf, ResultHeader{Delta: true, Samples: 7}, mask, len(in), in[:7], true); err != nil {
		f.Fatal(err)
	}
	seed(append([]byte(nil), buf.Bytes()...))

	seed([]byte("{}\nDJF2"))
	seed([]byte("not json at all"))
	seed([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrame2Reader(bytes.NewReader(data))
		var h RunHeader
		if err := fr.Header(&h); err != nil {
			return
		}
		frame, err := fr.Body()
		if err != nil {
			return
		}
		// A frame that decodes must be internally consistent.
		if frame.Delta {
			if len(frame.Mask) != (frame.InCount+7)/8 {
				t.Fatalf("mask %d bytes for %d inputs", len(frame.Mask), frame.InCount)
			}
			if frame.Data.Len() > frame.InCount {
				t.Fatalf("delta keeps %d of %d inputs", frame.Data.Len(), frame.InCount)
			}
		}
		if frame.Wire <= 0 || frame.Raw <= 0 {
			t.Fatalf("nonpositive accounting: wire=%d raw=%d", frame.Wire, frame.Raw)
		}
	})
}
