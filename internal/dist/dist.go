// Package dist models the distributed processing study of Figure 10: a
// dataset is partitioned into encoded shards, the real per-shard loading
// and processing costs are measured once on this machine, and cluster
// schedules for the Ray-like and Beam-like runners are composed from
// those measurements. The architectural contrast the figure makes is
// schedulable from the cost model alone: the Ray-like runner loads and
// processes shards on every node so its time falls near-linearly with
// nodes, while the Beam-like runner funnels all loading through a single
// loader so its curve flattens against that serial floor.
package dist

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
)

// Engine names one of the modeled runners.
type Engine string

// The modeled runners of Figure 10.
const (
	// EngineLocal is the original single-machine executor.
	EngineLocal Engine = "local"
	// EngineRay distributes both loading and processing across nodes.
	EngineRay Engine = "ray"
	// EngineBeam serializes loading through one loader and distributes
	// only the processing.
	EngineBeam Engine = "beam"
)

// Config describes the simulated cluster.
type Config struct {
	Nodes        int
	CoresPerNode int
}

// EncodedShard is one partition serialized to the JSONL wire format a
// worker would receive.
type EncodedShard struct {
	Index   int
	Data    []byte
	Samples int
}

// Partition splits d into n contiguous shards of near-equal sample count.
// Fewer than n shards are returned when the dataset is smaller than n.
func Partition(d *dataset.Dataset, n int) []*dataset.Dataset {
	if n < 1 {
		n = 1
	}
	if n > d.Len() {
		n = d.Len()
	}
	if n == 0 {
		return nil
	}
	var parts []*dataset.Dataset
	base, rem := d.Len()/n, d.Len()%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		parts = append(parts, dataset.New(d.Samples[lo:lo+size]))
		lo += size
	}
	return parts
}

// EncodeShards serializes each partition to JSONL bytes.
func EncodeShards(parts []*dataset.Dataset) ([]EncodedShard, error) {
	shards := make([]EncodedShard, 0, len(parts))
	for i, p := range parts {
		var buf bytes.Buffer
		if err := p.WriteJSONL(&buf); err != nil {
			return nil, fmt.Errorf("dist: encode shard %d: %w", i, err)
		}
		shards = append(shards, EncodedShard{Index: i, Data: buf.Bytes(), Samples: p.Len()})
	}
	return shards, nil
}

// ShardCost holds one shard's measured costs.
type ShardCost struct {
	Load    time.Duration // decode the wire format into samples
	Process time.Duration // run the recipe's operator chain
	In, Out int
}

// Costs aggregates the measured per-shard costs of one dataset + recipe.
type Costs struct {
	Shards []ShardCost
}

// ShardProcessor runs one decoded shard through a recipe's operator
// chain and returns the surviving sample count. Callers wrap their
// executor of choice (typically a single-threaded, cache-free batch
// executor so costs are per-core); dist stays execution-agnostic.
type ShardProcessor func(d *dataset.Dataset) (kept int, err error)

// Measure runs every shard through real loading (JSONL decode) and real
// processing (the given processor) and records the durations.
func Measure(shards []EncodedShard, process ShardProcessor) (*Costs, error) {
	costs := &Costs{Shards: make([]ShardCost, 0, len(shards))}
	for _, sh := range shards {
		start := time.Now()
		d, err := dataset.ReadJSONL(bytes.NewReader(sh.Data))
		if err != nil {
			return nil, fmt.Errorf("dist: decode shard %d: %w", sh.Index, err)
		}
		load := time.Since(start)
		start = time.Now()
		kept, err := process(d)
		if err != nil {
			return nil, fmt.Errorf("dist: process shard %d: %w", sh.Index, err)
		}
		costs.Shards = append(costs.Shards, ShardCost{
			Load: load, Process: time.Since(start), In: sh.Samples, Out: kept,
		})
	}
	return costs, nil
}

// Result is one composed cluster schedule.
type Result struct {
	// Total is the end-to-end makespan.
	Total time.Duration
	// LoadTime is the loading portion of the critical path.
	LoadTime time.Duration
	// ProcTime is the processing portion of the critical path.
	ProcTime time.Duration
}

// Compose schedules the measured shard costs on the given engine and
// cluster size.
func Compose(engine Engine, costs *Costs, cfg Config) (*Result, error) {
	if cfg.Nodes < 1 || cfg.CoresPerNode < 1 {
		return nil, fmt.Errorf("dist: invalid cluster %+v", cfg)
	}
	n := len(costs.Shards)
	if n == 0 {
		return &Result{}, nil
	}
	loads := make([]time.Duration, n)
	procs := make([]time.Duration, n)
	var loadSum time.Duration
	for i, c := range costs.Shards {
		loads[i] = c.Load
		procs[i] = c.Process
		loadSum += c.Load
	}
	switch engine {
	case EngineLocal:
		// One process reads the input serially, then its cores work the
		// shards in parallel at sample granularity.
		proc := makespan(procs, cfg.CoresPerNode)
		return &Result{Total: loadSum + proc, LoadTime: loadSum, ProcTime: proc}, nil
	case EngineRay:
		// Task-level parallelism at shard granularity: each shard is one
		// actor task (load + process + scheduling/transfer overhead) and
		// the tasks spread across nodes, so time falls near-linearly with
		// nodes. On a single node the per-shard overhead keeps the
		// original executor ahead.
		totals := make([]time.Duration, n)
		for i := range totals {
			totals[i] = loads[i] + procs[i] + overhead(loads[i], procs[i])
		}
		total := makespan(totals, cfg.Nodes)
		load := makespan(loads, cfg.Nodes)
		return &Result{Total: total, LoadTime: load, ProcTime: total - load}, nil
	case EngineBeam:
		// A single loader feeds the whole cluster (the Figure 10
		// bottleneck); processing is record-parallel across every core,
		// so added nodes cannot pay down the serial loading floor.
		withOv := make([]time.Duration, n)
		for i := range withOv {
			withOv[i] = procs[i] + overhead(loads[i], procs[i])
		}
		proc := makespan(withOv, cfg.Nodes*cfg.CoresPerNode)
		return &Result{Total: loadSum + proc, LoadTime: loadSum, ProcTime: proc}, nil
	}
	return nil, fmt.Errorf("dist: unknown engine %q", engine)
}

// overhead is the modeled per-shard distribution cost (scheduling plus
// shard transfer), taken as 5%% of the shard's real work.
func overhead(load, proc time.Duration) time.Duration {
	return (load + proc) / 20
}

// makespan schedules costs on `workers` identical workers with the LPT
// greedy heuristic and returns the completion time of the busiest worker.
func makespan(costs []time.Duration, workers int) time.Duration {
	if len(costs) == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	sorted := append([]time.Duration(nil), costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	buckets := make([]time.Duration, workers)
	for _, c := range sorted {
		min := 0
		for w := 1; w < workers; w++ {
			if buckets[w] < buckets[min] {
				min = w
			}
		}
		buckets[min] += c
	}
	var max time.Duration
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	return max
}
