// External test package: the measurement test drives dist.Measure with a
// real batch executor from internal/core, which itself depends on dist
// (the planner reads persisted profiles) — an in-package test would
// cycle.
package dist_test

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	_ "repro/internal/ops/all"
)

func TestPartitionCoversAllSamples(t *testing.T) {
	d := corpus.Web(corpus.Options{Docs: 103, Seed: 1})
	parts := dist.Partition(d, 16)
	if len(parts) != 16 {
		t.Fatalf("got %d parts, want 16", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != d.Len() {
		t.Fatalf("parts hold %d samples, dataset has %d", total, d.Len())
	}
	// Order preserved: first sample of the first part is the first sample.
	if parts[0].Samples[0] != d.Samples[0] {
		t.Fatal("partitioning reordered samples")
	}
	if got := dist.Partition(d, 1000); len(got) != d.Len() {
		t.Fatalf("oversharded partition: %d parts, want %d", len(got), d.Len())
	}
}

func TestMeasureAndComposeShapes(t *testing.T) {
	recipe, err := config.ParseRecipe(`
project_name: dist-test
use_cache: false
process:
  - whitespace_normalization_mapper:
  - word_num_filter:
      min_num: 5
`)
	if err != nil {
		t.Fatal(err)
	}
	d := corpus.Web(corpus.Options{Docs: 120, Seed: 2})
	shards, err := dist.EncodeShards(dist.Partition(d, 8))
	if err != nil {
		t.Fatal(err)
	}
	process, err := core.MeasureRunner(recipe)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := dist.Measure(shards, process)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs.Shards) != 8 {
		t.Fatalf("got %d shard costs, want 8", len(costs.Shards))
	}
	for i, c := range costs.Shards {
		if c.In == 0 || c.Process <= 0 {
			t.Fatalf("shard %d has empty measurement: %+v", i, c)
		}
	}

	ray1, err := dist.Compose(dist.EngineRay, costs, dist.Config{Nodes: 1, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	ray8, err := dist.Compose(dist.EngineRay, costs, dist.Config{Nodes: 8, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ray8.Total > ray1.Total {
		t.Fatalf("ray should scale with nodes: 8 nodes %v > 1 node %v", ray8.Total, ray1.Total)
	}

	beam8, err := dist.Compose(dist.EngineBeam, costs, dist.Config{Nodes: 8, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	var loadSum time.Duration
	for _, c := range costs.Shards {
		loadSum += c.Load
	}
	if beam8.Total < loadSum {
		t.Fatalf("beam cannot beat its serial loading floor: %v < %v", beam8.Total, loadSum)
	}

	local, err := dist.Compose(dist.EngineLocal, costs, dist.Config{Nodes: 1, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if local.Total > ray1.Total {
		t.Fatalf("local executor should win at one node: %v > %v", local.Total, ray1.Total)
	}

	if _, err := dist.Compose(dist.Engine("spark"), costs, dist.Config{Nodes: 1, CoresPerNode: 1}); err == nil {
		t.Fatal("unknown engine should error")
	}
}
