package dist

import (
	"errors"
	"sort"
	"sync"
)

// The scheduler routes shard-stage work across workers. Every shard has
// a home worker (shard index mod worker count) so a healthy fleet gets
// a deterministic, balanced assignment; a shard is *stolen* — routed to
// a non-home worker — when its home is overloaded (straggler) or dead.
// A failed attempt (transport error, timeout, corrupt response) is a
// *retry*: the worker is marked dead and the shard re-routed. When
// every worker is dead the scheduler returns no worker and the caller
// degrades to in-process execution, which keeps exports byte-identical
// at the cost of distribution.

// stealThreshold is how many in-flight stages a home worker may hold
// before new shards are routed to an idler worker instead.
const stealThreshold = 2

// ErrNoWorkers is returned when every worker in the fleet is dead and
// the caller must degrade to in-process execution.
var ErrNoWorkers = errors.New("dist: no live workers")

// Route is one routing choice for a shard stage.
type Route struct {
	Worker *WorkerClient // nil: no live workers, run in-process
	Stolen bool          // routed away from the shard's home worker
	Why    string        // steal/fallback reason for the journal
}

type schedWorker struct {
	client   *WorkerClient
	inflight int
	dead     bool
}

// Scheduler routes shards to live workers with home affinity, work
// stealing and dead-worker avoidance. Safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	workers []*schedWorker
	stats   RunStats
}

// NewScheduler builds a scheduler over the given worker clients.
func NewScheduler(clients []*WorkerClient) *Scheduler {
	s := &Scheduler{}
	for _, c := range clients {
		s.workers = append(s.workers, &schedWorker{client: c})
		s.stats.Workers = append(s.stats.Workers, WorkerRunStat{Worker: c.ID, Addr: c.Addr})
	}
	return s
}

// Pick routes one shard stage: the home worker when it is alive and not
// overloaded, otherwise the least-loaded live worker (a steal), and a
// nil-worker fallback decision when the whole fleet is dead. The
// returned worker's in-flight count is incremented; pair with Done.
func (s *Scheduler) Pick(shard int) Route {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.workers) == 0 {
		return Route{Why: "no workers"}
	}
	home := s.workers[shard%len(s.workers)]
	if !home.dead && home.inflight < stealThreshold {
		home.inflight++
		return Route{Worker: home.client}
	}
	// Steal: least-loaded live non-home worker, lowest ID breaking ties.
	var best *schedWorker
	for _, w := range s.workers {
		if w.dead || w == home {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	why := "home worker busy"
	if home.dead {
		why = "home worker dead"
	}
	if best == nil {
		if home.dead {
			s.stats.Fallbacks++
			return Route{Why: "all workers dead"}
		}
		// Everyone else is dead; queue on the busy home worker.
		home.inflight++
		return Route{Worker: home.client}
	}
	best.inflight++
	s.stats.Workers[best.client.ID-1].Steals++
	s.stats.Steals++
	return Route{Worker: best.client, Stolen: true, Why: why}
}

// Done releases one in-flight slot on the worker and records the
// completed stage.
func (s *Scheduler) Done(w *WorkerClient) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.workers[w.ID-1]
	if sw.inflight > 0 {
		sw.inflight--
	}
	s.stats.Workers[w.ID-1].Stages++
}

// Fail records one failed stage attempt against the worker and marks it
// dead: a worker that produced a transport error, timeout or corrupt
// response is not trusted with further shards.
func (s *Scheduler) Fail(w *WorkerClient) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.workers[w.ID-1]
	if sw.inflight > 0 {
		sw.inflight--
	}
	sw.dead = true
	s.stats.Workers[w.ID-1].Retries++
	s.stats.Workers[w.ID-1].Dead = true
	s.stats.Retries++
}

// Alive reports how many workers are still live.
func (s *Scheduler) Alive() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// Clients returns the worker clients in ID order (including dead ones).
func (s *Scheduler) Clients() []*WorkerClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*WorkerClient, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.client
	}
	return out
}

// Live returns the clients still considered healthy.
func (s *Scheduler) Live() []*WorkerClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*WorkerClient
	for _, w := range s.workers {
		if !w.dead {
			out = append(out, w.client)
		}
	}
	return out
}

// Stats snapshots the accumulated run statistics.
func (s *Scheduler) Stats() RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.clone()
}

// WorkerRunStat is one worker's tally for the run report. The byte
// counters account completed stage exchanges: BytesSent/BytesRecv are
// on-wire, the Raw variants their uncompressed equivalents (equal
// unless dist_compress is on), and DeltaStages counts stages answered
// with a keep-mask delta instead of the full shard.
type WorkerRunStat struct {
	Worker       int    `json:"worker"`
	Addr         string `json:"addr"`
	Proto        int    `json:"proto,omitempty"` // negotiated wire version
	Stages       int    `json:"stages"`          // completed shard stages
	Steals       int    `json:"steals"`          // stages this worker ran for another's shard
	Retries      int    `json:"retries"`
	DeltaStages  int    `json:"delta_stages,omitempty"`
	BytesSent    int64  `json:"bytes_sent,omitempty"`
	BytesRecv    int64  `json:"bytes_recv,omitempty"`
	RawBytesSent int64  `json:"raw_bytes_sent,omitempty"`
	RawBytesRecv int64  `json:"raw_bytes_recv,omitempty"`
	Dead         bool   `json:"dead,omitempty"`
}

// RunStats summarizes the distributed leg of a run: per-worker tallies
// plus fleet-wide retry/steal/fallback counts. It is carried on
// stream.Report via the Statser interface.
type RunStats struct {
	Workers      []WorkerRunStat `json:"workers"`
	Retries      int             `json:"retries"`
	Steals       int             `json:"steals"`
	Fallbacks    int             `json:"fallbacks"` // shards degraded to in-process
	DeltaStages  int             `json:"delta_stages,omitempty"`
	BytesSent    int64           `json:"bytes_sent,omitempty"`
	BytesRecv    int64           `json:"bytes_recv,omitempty"`
	RawBytesSent int64           `json:"raw_bytes_sent,omitempty"`
	RawBytesRecv int64           `json:"raw_bytes_recv,omitempty"`
}

func (r RunStats) clone() RunStats {
	out := r
	out.Workers = append([]WorkerRunStat(nil), r.Workers...)
	return out
}

// Merge folds another run's stats into this one, matching workers by
// ID. Merging is associative and commutative so partial reports can be
// combined in any order.
func (r *RunStats) Merge(o RunStats) {
	byID := map[int]int{}
	for i, w := range r.Workers {
		byID[w.Worker] = i
	}
	for _, w := range o.Workers {
		if i, ok := byID[w.Worker]; ok {
			r.Workers[i].Stages += w.Stages
			r.Workers[i].Steals += w.Steals
			r.Workers[i].Retries += w.Retries
			r.Workers[i].DeltaStages += w.DeltaStages
			r.Workers[i].BytesSent += w.BytesSent
			r.Workers[i].BytesRecv += w.BytesRecv
			r.Workers[i].RawBytesSent += w.RawBytesSent
			r.Workers[i].RawBytesRecv += w.RawBytesRecv
			r.Workers[i].Proto = max(r.Workers[i].Proto, w.Proto)
			r.Workers[i].Dead = r.Workers[i].Dead || w.Dead
			if r.Workers[i].Addr == "" {
				r.Workers[i].Addr = w.Addr
			}
		} else {
			r.Workers = append(r.Workers, w)
		}
	}
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].Worker < r.Workers[j].Worker })
	r.Retries += o.Retries
	r.Steals += o.Steals
	r.Fallbacks += o.Fallbacks
	r.DeltaStages += o.DeltaStages
	r.BytesSent += o.BytesSent
	r.BytesRecv += o.BytesRecv
	r.RawBytesSent += o.RawBytesSent
	r.RawBytesRecv += o.RawBytesRecv
}

// Statser is implemented by stage dispatchers that track distributed
// run statistics; the stream engine asserts for it when attaching
// dist stats to the run report.
type Statser interface {
	DistStats() *RunStats
}
