package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/dataset"
)

// This file is the coordinator/worker wire protocol for multi-process
// execution on one host. A djworker process serves four endpoints over
// localhost HTTP:
//
//	GET  /v1/healthz    liveness probe ("ok")
//	POST /v1/configure  JSON ConfigureRequest -> ConfigureResponse:
//	                    ship the recipe + measured profiles, build the
//	                    same physical plan, verify its fingerprint
//	POST /v1/run        frame in -> frame out: apply a contiguous range
//	                    of shard-local plan ops to one shard
//	POST /v1/flush      JSON FlushRequest -> FlushResponse: quiesced
//	                    end-of-run fused-member statistics
//
// A v1 frame is one JSON header line followed by the shard's samples in
// JSONL (the same byte-identical codec both backends export with), so
// shard payloads never pass through a second serialization format.
// Responses are validated structurally — sample count and per-op flow
// indexes must match the header — and any mismatch is treated as a
// corrupt response, which the scheduler retries elsewhere.
//
// Workers that negotiate protocol v2 at configure time additionally
// serve POST /v2/run, which exchanges the streaming binary columnar
// frames of frame2.go (optionally lzj-compressed, optionally answering
// a filter-only stage with a keep-mask delta instead of the shard).
// The same structural validation applies, so a corrupt v2 frame is
// retried exactly like a corrupt v1 frame.

// ProtoVersion guards the coordinator/worker wire format. The
// coordinator sends it in ConfigureRequest; workers reject a mismatch
// rather than misinterpreting frames. v2 is strictly additive, so the
// base version stays 1 and the extension is negotiated via MaxProto:
// old workers ignore the unknown field and answer without a proto,
// which the coordinator reads as v1.
const ProtoVersion = 1

// ProtoV2 adds the /v2/run endpoint: streaming columnar frames,
// optional lzj block compression, and keep-mask delta responses.
const (
	ProtoV2         = 2
	MaxProtoVersion = ProtoV2
)

// ConfigureRequest ships everything a worker needs to rebuild the
// coordinator's physical plan: the resolved recipe (JSON round-trip of
// config.Recipe) and the measured cost profiles the planner consumed,
// so measured-cost reordering makes identical decisions in both
// processes. Fingerprint is the coordinator's plan identity; the worker
// rejects the configure if its own plan disagrees.
type ConfigureRequest struct {
	Proto       int             `json:"proto"`
	MaxProto    int             `json:"max_proto,omitempty"`
	RunID       string          `json:"run_id"`
	Recipe      json.RawMessage `json:"recipe"`
	Profiles    []StoredProfile `json:"profiles,omitempty"`
	Fingerprint string          `json:"fingerprint"`
}

// ConfigureResponse acknowledges a configure. On fingerprint or proto
// mismatch OK is false and Error says why. Proto is the wire version
// the worker commits to (absent from v1 workers, which the coordinator
// reads as 1).
type ConfigureResponse struct {
	OK          bool   `json:"ok"`
	Proto       int    `json:"proto,omitempty"`
	Fingerprint string `json:"fingerprint"`
	PlanOps     int    `json:"plan_ops"`
	Error       string `json:"error,omitempty"`
}

// RunHeader is the request header line of a run frame: apply plan ops
// [FromOp, ToOp) to the attached shard. Delta and Compress only travel
// on /v2/run: Delta asks for a keep-mask response when the range is
// filter-only (the worker re-derives eligibility from its own plan and
// falls back to a full frame if it disagrees), Compress asks for lzj
// block compression on the response body.
type RunHeader struct {
	RunID    string `json:"run_id"`
	Shard    int    `json:"shard"`
	FromOp   int    `json:"from_op"`
	ToOp     int    `json:"to_op"`
	Samples  int    `json:"samples"`
	Delta    bool   `json:"delta,omitempty"`
	Compress bool   `json:"compress,omitempty"`
}

// OpFlow is one op's measured flow through one shard on a worker. The
// coordinator folds these into its own journal and report, tagged with
// the worker's lane.
type OpFlow struct {
	PlanIdx int    `json:"plan_idx"`
	Name    string `json:"name"`
	In      int64  `json:"in"`
	Out     int64  `json:"out"`
	Bytes   int64  `json:"bytes,omitempty"`
	DurNS   int64  `json:"dur_ns"`
}

// ResultHeader is the response header line of a run frame. Delta (v2
// only) says the attached frame is a keep-mask delta rather than the
// full surviving shard.
type ResultHeader struct {
	Shard   int      `json:"shard"`
	Samples int      `json:"samples"`
	Delta   bool     `json:"delta,omitempty"`
	Flows   []OpFlow `json:"flows,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// FlushRequest asks a worker for its quiesced end-of-run statistics.
type FlushRequest struct {
	RunID string `json:"run_id"`
}

// MemberFlow is one fused-filter member's accumulated attribution on a
// worker, reported at flush time (member atomics are only safe to take
// once the worker is quiesced).
type MemberFlow struct {
	PlanIdx int    `json:"plan_idx"`
	Name    string `json:"name"`
	In      int64  `json:"in"`
	Out     int64  `json:"out"`
	Samples int64  `json:"samples"`
	DurNS   int64  `json:"dur_ns"`
}

// FlushResponse carries a worker's end-of-run fused-member statistics.
type FlushResponse struct {
	Members []MemberFlow `json:"members,omitempty"`
}

// WriteFrame encodes one header-line + JSONL-samples frame.
func WriteFrame(w io.Writer, header any, d *dataset.Dataset) error {
	raw, err := json.Marshal(header)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if _, err := w.Write(raw); err != nil {
		return err
	}
	if d == nil {
		return nil
	}
	return d.WriteJSONL(w)
}

// ReadFrame decodes a frame written by WriteFrame: the first line into
// header, the remainder as the shard's samples.
func ReadFrame(r io.Reader, header any) (*dataset.Dataset, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	line, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(line) == 0) {
		return nil, fmt.Errorf("dist: frame header: %w", err)
	}
	if err := json.Unmarshal(line, header); err != nil {
		return nil, fmt.Errorf("dist: frame header: %w", err)
	}
	d, err := dataset.ReadJSONL(br)
	if err != nil {
		return nil, fmt.Errorf("dist: frame payload: %w", err)
	}
	return d, nil
}

// WorkerClient is the coordinator's handle on one djworker process.
type WorkerClient struct {
	ID    int // 1-based worker ID (0 is the coordinator itself)
	Addr  string
	http  *http.Client
	proto int // negotiated wire version; 0 means v1
}

// sharedTransport carries every worker client: dispatch issues many
// small sequential requests per worker, and keeping connections alive
// across stages removes per-request TCP setup from the hot path.
var sharedTransport = &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 8,
	IdleConnTimeout:     60 * time.Second,
}

// NewWorkerClient builds a client for one worker. The timeout bounds
// every request end-to-end — a hung worker surfaces as a timeout error,
// which the scheduler treats like any other failed attempt.
func NewWorkerClient(id int, addr string, timeout time.Duration) *WorkerClient {
	return &WorkerClient{ID: id, Addr: addr, http: &http.Client{
		Timeout:   timeout,
		Transport: sharedTransport,
	}}
}

// Proto reports the negotiated wire version (1 until SetProto raises it).
func (c *WorkerClient) Proto() int {
	if c.proto == 0 {
		return ProtoVersion
	}
	return c.proto
}

// SetProto records the wire version a worker committed to at configure
// time, clamped to the range this coordinator speaks.
func (c *WorkerClient) SetProto(v int) {
	if v < ProtoVersion {
		v = ProtoVersion
	}
	if v > MaxProtoVersion {
		v = MaxProtoVersion
	}
	c.proto = v
}

func (c *WorkerClient) url(path string) string {
	return "http://" + c.Addr + path
}

// Healthz probes worker liveness.
func (c *WorkerClient) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %d healthz: HTTP %d", c.ID, resp.StatusCode)
	}
	return nil
}

// RejectError is a worker's explicit refusal to configure — a proto or
// plan-fingerprint mismatch. It is a correctness failure the
// coordinator must fail the run on, unlike a transport error, which
// just means one fleet member died and the rest can carry its load.
type RejectError struct {
	Worker int
	Reason string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("dist: worker %d rejected configure: %s", e.Worker, e.Reason)
}

// Configure ships the plan inputs to the worker and verifies the plan
// fingerprint matches the coordinator's. An explicit refusal surfaces
// as *RejectError; anything else is a transport failure.
func (c *WorkerClient) Configure(req ConfigureRequest) (ConfigureResponse, error) {
	var out ConfigureResponse
	if err := c.postJSON("/v1/configure", req, &out); err != nil {
		return out, err
	}
	if !out.OK {
		return out, &RejectError{Worker: c.ID, Reason: out.Error}
	}
	return out, nil
}

// Flush fetches the worker's quiesced end-of-run statistics.
func (c *WorkerClient) Flush(runID string) (FlushResponse, error) {
	var out FlushResponse
	err := c.postJSON("/v1/flush", FlushRequest{RunID: runID}, &out)
	return out, err
}

func (c *WorkerClient) postJSON(path string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.url(path), "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %d %s: HTTP %d: %s", c.ID, path, resp.StatusCode, truncate(body))
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("dist: worker %d %s: %w", c.ID, path, err)
	}
	return nil
}

// runBufPool recycles v1 request buffers across stages; buffers grown
// past runBufKeepCap are dropped instead of pinning shard-sized memory.
var runBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const (
	runBufGrowCap = 4 << 20
	runBufKeepCap = 8 << 20
)

// RunStage ships one shard to the worker, applies plan ops
// [h.FromOp, h.ToOp), and returns the surviving samples plus per-op
// flows and wire accounting. Structural mismatches (sample count, flow
// indexes) are reported as errors — a corrupt response is
// indistinguishable from a broken worker and must be retried elsewhere.
// Workers negotiated at ProtoV2 take the streaming columnar path.
func (c *WorkerClient) RunStage(h RunHeader, d *dataset.Dataset) (*dataset.Dataset, ResultHeader, WireStat, error) {
	if c.Proto() >= ProtoV2 {
		return c.runStageV2(h, d)
	}
	h.Samples = d.Len()
	h.Delta, h.Compress = false, false
	ws := WireStat{Proto: ProtoVersion}
	buf := runBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= runBufKeepCap {
			runBufPool.Put(buf)
		}
	}()
	buf.Grow(min(int(d.TotalBytes())+512, runBufGrowCap))
	if err := WriteFrame(buf, h, d); err != nil {
		return nil, ResultHeader{}, ws, err
	}
	ws.Sent = int64(buf.Len())
	ws.RawSent = ws.Sent
	resp, err := c.http.Post(c.url("/v1/run"), "application/x-dj-frame", buf)
	if err != nil {
		return nil, ResultHeader{}, ws, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, ResultHeader{}, ws, fmt.Errorf("dist: worker %d run: HTTP %d: %s",
			c.ID, resp.StatusCode, truncate(body))
	}
	cr := &countReader{r: resp.Body}
	var rh ResultHeader
	out, err := ReadFrame(cr, &rh)
	ws.Recv, ws.RawRecv = cr.n, cr.n
	if err != nil {
		return nil, ResultHeader{}, ws, fmt.Errorf("dist: worker %d shard %d: %w", c.ID, h.Shard, err)
	}
	if rh.Error != "" {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: %s", c.ID, h.Shard, rh.Error)
	}
	if err := validateResult(h, rh, out.Len()); err != nil {
		return nil, rh, ws, fmt.Errorf("dist: worker %d: %w", c.ID, err)
	}
	return out, rh, ws, nil
}

// runStageV2 is the ProtoV2 exchange: the shard streams out through an
// io.Pipe as a columnar frame (no request-sized buffer), and the
// response is either a full frame or — when h.Delta was honoured — a
// keep-mask delta applied to the coordinator's retained samples. All
// validation happens before any retained sample is touched, so a
// corrupt delta leaves d intact for the retry.
func (c *WorkerClient) runStageV2(h RunHeader, d *dataset.Dataset) (*dataset.Dataset, ResultHeader, WireStat, error) {
	h.Samples = d.Len()
	ws := WireStat{Proto: ProtoV2}
	pr, pw := io.Pipe()
	var sentWire, sentRaw int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		wire, raw, err := WriteFrame2(pw, h, d, h.Compress)
		sentWire, sentRaw = wire, raw
		pw.CloseWithError(err)
	}()
	resp, err := c.http.Post(c.url("/v2/run"), "application/x-dj-frame2", pr)
	// The transport finished with the body either way (success drains
	// it, failure closes it), so the encoder goroutine has exited.
	<-done
	ws.Sent, ws.RawSent = sentWire, sentRaw
	if err != nil {
		return nil, ResultHeader{}, ws, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, ResultHeader{}, ws, fmt.Errorf("dist: worker %d run: HTTP %d: %s",
			c.ID, resp.StatusCode, truncate(body))
	}
	fr := NewFrame2Reader(resp.Body)
	var rh ResultHeader
	if err := fr.Header(&rh); err != nil {
		return nil, ResultHeader{}, ws, fmt.Errorf("dist: worker %d shard %d: %w", c.ID, h.Shard, err)
	}
	if rh.Error != "" {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: %s", c.ID, h.Shard, rh.Error)
	}
	f, err := fr.Body()
	if err != nil {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: %w", c.ID, h.Shard, err)
	}
	ws.Recv, ws.RawRecv = f.Wire, f.Raw
	ws.Delta = f.Delta
	if rh.Delta != f.Delta {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: header delta=%v, frame delta=%v",
			c.ID, h.Shard, rh.Delta, f.Delta)
	}
	if !f.Delta {
		if err := validateResult(h, rh, f.Data.Len()); err != nil {
			return nil, rh, ws, fmt.Errorf("dist: worker %d: %w", c.ID, err)
		}
		return f.Data, rh, ws, nil
	}
	if !h.Delta {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: unrequested delta response", c.ID, h.Shard)
	}
	if f.InCount != d.Len() {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: delta covers %d inputs, sent %d",
			c.ID, h.Shard, f.InCount, d.Len())
	}
	if err := validateResult(h, rh, f.Data.Len()); err != nil {
		return nil, rh, ws, fmt.Errorf("dist: worker %d: %w", c.ID, err)
	}
	kept := ApplyKeepMask(d.Samples, f.Mask)
	if len(kept) != f.Data.Len() {
		return nil, rh, ws, fmt.Errorf("dist: worker %d shard %d: mask keeps %d, frame carries %d",
			c.ID, h.Shard, len(kept), f.Data.Len())
	}
	for i, s := range kept {
		s.Stats = f.Data.Samples[i].Stats
	}
	return dataset.New(kept), rh, ws, nil
}

// validateResult rejects structurally corrupt run responses: wrong
// shard echo, sample count disagreeing with the payload, or per-op
// flows that do not cover exactly the requested plan range in order.
func validateResult(h RunHeader, rh ResultHeader, gotSamples int) error {
	if rh.Shard != h.Shard {
		return fmt.Errorf("shard %d: response for shard %d", h.Shard, rh.Shard)
	}
	if rh.Samples != gotSamples {
		return fmt.Errorf("shard %d: header says %d samples, payload has %d",
			h.Shard, rh.Samples, gotSamples)
	}
	if len(rh.Flows) != h.ToOp-h.FromOp {
		return fmt.Errorf("shard %d: %d flows for %d ops", h.Shard, len(rh.Flows), h.ToOp-h.FromOp)
	}
	for i, f := range rh.Flows {
		if f.PlanIdx != h.FromOp+i {
			return fmt.Errorf("shard %d: flow %d has plan_idx %d, want %d",
				h.Shard, i, f.PlanIdx, h.FromOp+i)
		}
		if f.In < 0 || f.Out < 0 || f.DurNS < 0 {
			return fmt.Errorf("shard %d: flow %d has negative counts", h.Shard, i)
		}
	}
	return nil
}

func truncate(b []byte) string {
	const max = 256
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}
