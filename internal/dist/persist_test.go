package dist

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileSetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles", "recipe.json")

	// Missing sidecar: cold start, not an error.
	set, err := LoadProfiles(path)
	if err != nil {
		t.Fatalf("missing sidecar must not error: %v", err)
	}
	if set.Len() != 0 {
		t.Fatalf("cold set holds %d profiles", set.Len())
	}

	set.Observe("k1", "word_num_filter", 1500, 0.5)
	set.Observe("k2", "stopwords_filter", 9000, 0.9)
	set.Observe("", "anonymous", 10, 1) // empty keys must not persist
	if err := SaveProfiles(path, set); err != nil {
		t.Fatal(err)
	}

	back, err := LoadProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip holds %d profiles, want 2", back.Len())
	}
	p, ok := back.Lookup("k1")
	if !ok || p.Name != "word_num_filter" || p.Runs != 1 {
		t.Fatalf("lookup k1 = %+v, %v", p, ok)
	}
	if p.CostNSPerSample != 1500 || p.Selectivity != 0.5 {
		t.Fatalf("first observation must land unsmoothed: %+v", p)
	}
}

func TestProfileSetObserveFoldsEWMA(t *testing.T) {
	set := NewProfileSet()
	set.Observe("k", "op", 1000, 1.0)
	set.Observe("k", "op", 2000, 0.5)
	p, _ := set.Lookup("k")
	if p.Runs != 2 {
		t.Fatalf("runs = %d", p.Runs)
	}
	wantCost := DefaultAlpha*2000 + (1-DefaultAlpha)*1000
	if diff := p.CostNSPerSample - wantCost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost = %v, want %v", p.CostNSPerSample, wantCost)
	}
	// Garbage observations carry no signal.
	set.Observe("k", "op", 0, 1)
	set.Observe("k", "op", -5, 1)
	if q, _ := set.Lookup("k"); q.Runs != 2 {
		t.Fatalf("non-positive cost folded: %+v", q)
	}
}

func TestLoadProfilesRejectsGarbage(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfiles(bad); err == nil {
		t.Fatal("malformed sidecar must error so callers can fall back to static planning")
	}

	skew := filepath.Join(dir, "skew.json")
	if err := os.WriteFile(skew, []byte(`{"version": 99, "profiles": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfiles(skew); err == nil {
		t.Fatal("version-skewed sidecar must error")
	}
}
