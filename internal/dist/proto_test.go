package dist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sample"
)

func frameDataset(texts ...string) *dataset.Dataset {
	samples := make([]*sample.Sample, len(texts))
	for i, t := range texts {
		samples[i] = sample.New(t)
	}
	return dataset.New(samples)
}

// TestFrameRoundTrip pins the frame codec: header line + JSONL payload
// survives a write/read cycle byte-identically.
func TestFrameRoundTrip(t *testing.T) {
	d := frameDataset("alpha", "beta with spaces", `quotes "inside"`)
	h := RunHeader{RunID: "r1", Shard: 4, FromOp: 1, ToOp: 3, Samples: d.Len()}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, h, d); err != nil {
		t.Fatal(err)
	}
	var got RunHeader
	out, err := ReadFrame(&buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip: got %+v want %+v", got, h)
	}
	if out.Len() != 3 || out.Samples[2].Text != `quotes "inside"` {
		t.Errorf("payload round trip lost samples: %+v", out.Samples)
	}

	var a, b bytes.Buffer
	if err := d.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := out.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("payload not byte-identical after round trip")
	}
}

// TestFrameEmptyPayload covers a shard fully filtered away upstream.
func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ResultHeader{Shard: 1}, frameDataset()); err != nil {
		t.Fatal(err)
	}
	var h ResultHeader
	out, err := ReadFrame(&buf, &h)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shard != 1 || out.Len() != 0 {
		t.Errorf("empty frame decoded wrong: %+v / %d samples", h, out.Len())
	}
}

func TestFrameRejectsGarbageHeader(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("not json\n"), &RunHeader{}); err == nil {
		t.Error("garbage header accepted")
	}
}

// TestValidateResult pins the corrupt-response detection the retry path
// depends on: every structural mismatch must surface as an error.
func TestValidateResult(t *testing.T) {
	req := RunHeader{Shard: 2, FromOp: 1, ToOp: 3}
	good := ResultHeader{Shard: 2, Samples: 5, Flows: []OpFlow{
		{PlanIdx: 1, Name: "a", In: 7, Out: 6},
		{PlanIdx: 2, Name: "b", In: 6, Out: 5},
	}}
	if err := validateResult(req, good, 5); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	cases := map[string]struct {
		rh      ResultHeader
		samples int
	}{
		"wrong shard":      {ResultHeader{Shard: 3, Samples: 5, Flows: good.Flows}, 5},
		"count mismatch":   {ResultHeader{Shard: 2, Samples: 5, Flows: good.Flows}, 4},
		"missing flows":    {ResultHeader{Shard: 2, Samples: 5, Flows: good.Flows[:1]}, 5},
		"wrong flow index": {ResultHeader{Shard: 2, Samples: 5, Flows: []OpFlow{good.Flows[1], good.Flows[0]}}, 5},
		"negative counts":  {ResultHeader{Shard: 2, Samples: 5, Flows: []OpFlow{{PlanIdx: 1, In: -1}, good.Flows[1]}}, 5},
		"extra flows":      {ResultHeader{Shard: 2, Samples: 5, Flows: append(append([]OpFlow{}, good.Flows...), OpFlow{PlanIdx: 3})}, 5},
	}
	for name, c := range cases {
		if err := validateResult(req, c.rh, c.samples); err == nil {
			t.Errorf("%s: corrupt result accepted", name)
		}
	}
}

// TestProfileExportRoundTrip pins the wire shipping of measured
// profiles: Export -> FromProfiles preserves every profile.
func TestProfileExportRoundTrip(t *testing.T) {
	s := NewProfileSet()
	s.Observe("k2", "word_filter", 120, 0.8)
	s.Observe("k1", "char_filter", 90, 0.5)
	s.Observe("k1", "char_filter", 110, 0.6)
	exported := s.Export()
	if len(exported) != 2 || exported[0].Key != "k1" || exported[1].Key != "k2" {
		t.Fatalf("export not in key order: %+v", exported)
	}
	back := FromProfiles(exported)
	if back.Len() != 2 {
		t.Fatalf("import lost profiles: %d", back.Len())
	}
	for _, key := range []string{"k1", "k2"} {
		want, _ := s.Lookup(key)
		got, ok := back.Lookup(key)
		if !ok || got != want {
			t.Errorf("profile %s: got %+v want %+v", key, got, want)
		}
	}
}
