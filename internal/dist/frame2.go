package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/spill"
)

// This file is wire protocol v2: a binary columnar frame replacing the
// v1 JSON-text shard payload, negotiated per worker at configure time.
//
// Frame layout (all little-endian), following one JSON header line:
//
//	offset 0   magic "DJF2"
//	offset 4   version (2)
//	offset 5   flags (bit 0: lzj block compression, bit 1: delta)
//	offset 6   reserved (2 bytes, zero)
//	offset 8   sample count (uint32; kept count in delta mode)
//	offset 12  input count (uint32; delta mode only, zero otherwise)
//
// The body is a sequence of fixed-size batches. A full batch is
//
//	u32 n | n x u32 text lengths | n x u32 aux lengths | texts | auxes
//
// where each aux is the sample's non-text JSON ({parts, meta, stats},
// empty for a bare-text sample). A delta body starts with a keep bitmap
// over the input shard (bit i, LSB-first, means input sample i
// survived) and its batches carry only a stats column for the kept
// samples:
//
//	u32 n | n x u32 stats lengths | stats objects
//
// With flag bit 0 set the body (everything after the 16-byte header) is
// chunked into lzj blocks: u32 encoded length, then the lzj bytes, raw
// block size capped at frame2BlockSize. The decoder validates every
// count, length, and the codec's own framing before allocating, so a
// truncated or corrupt frame surfaces as an error the scheduler can
// retry elsewhere — never a panic.
const (
	frame2HeaderSize  = 16
	frame2Version     = 2
	f2FlagCompress    = 1 << 0
	f2FlagDelta       = 1 << 1
	frame2BatchSize   = 512
	frame2BlockSize   = 256 << 10
	frame2MaxBlockEnc = 4 << 20
	// frame2MaxCount bounds the sample count a header may claim;
	// frame2MaxSampleLen matches the v1 JSONL line cap.
	frame2MaxCount     = 1 << 26
	frame2MaxSampleLen = 1 << 26
)

var frame2Magic = [4]byte{'D', 'J', 'F', '2'}

// frame2Codec is the shared lzj block compressor (same pooled codec the
// cache layer uses).
var frame2Codec = func() cache.Codec {
	c, err := cache.CodecByName("lzj")
	if err != nil {
		panic(err)
	}
	return c
}()

// WireStat accounts one stage exchange: bytes on the wire and their
// uncompressed (raw) equivalents, for the compression-ratio counters.
type WireStat struct {
	Proto   int
	Delta   bool
	Sent    int64
	Recv    int64
	RawSent int64
	RawRecv int64
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// frame2Writer layers optional lzj block compression under the column
// writers and counts the raw (pre-compression) bytes flowing through.
type frame2Writer struct {
	dst      *bufio.Writer
	compress bool
	block    *[]byte // pooled raw-block buffer; nil unless compressing
	raw      int64
}

func newFrame2Writer(dst *bufio.Writer, compress bool) *frame2Writer {
	fw := &frame2Writer{dst: dst, compress: compress}
	if compress {
		fw.block = spill.GetFrameBuf(frame2BlockSize)
		*fw.block = (*fw.block)[:0]
	}
	return fw
}

func (fw *frame2Writer) Write(p []byte) (int, error) {
	fw.raw += int64(len(p))
	if !fw.compress {
		return fw.dst.Write(p)
	}
	total := len(p)
	for len(p) > 0 {
		room := frame2BlockSize - len(*fw.block)
		if room == 0 {
			if err := fw.flushBlock(); err != nil {
				return 0, err
			}
			room = frame2BlockSize
		}
		n := min(room, len(p))
		*fw.block = append(*fw.block, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// WriteString mirrors Write without forcing a []byte copy of sample
// texts on the uncompressed path.
func (fw *frame2Writer) WriteString(s string) (int, error) {
	fw.raw += int64(len(s))
	if !fw.compress {
		return fw.dst.WriteString(s)
	}
	total := len(s)
	for len(s) > 0 {
		room := frame2BlockSize - len(*fw.block)
		if room == 0 {
			if err := fw.flushBlock(); err != nil {
				return 0, err
			}
			room = frame2BlockSize
		}
		n := min(room, len(s))
		*fw.block = append(*fw.block, s[:n]...)
		s = s[n:]
	}
	return total, nil
}

func (fw *frame2Writer) flushBlock() error {
	if len(*fw.block) == 0 {
		return nil
	}
	enc, err := frame2Codec.Encode(*fw.block)
	if err != nil {
		return err
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(enc)))
	if _, err := fw.dst.Write(lenb[:]); err != nil {
		return err
	}
	if _, err := fw.dst.Write(enc); err != nil {
		return err
	}
	*fw.block = (*fw.block)[:0]
	return nil
}

// close flushes the trailing partial block and releases the pooled
// buffer; discard releases without flushing (error paths).
func (fw *frame2Writer) close() error {
	var err error
	if fw.compress {
		err = fw.flushBlock()
	}
	fw.discard()
	return err
}

func (fw *frame2Writer) discard() {
	if fw.block != nil {
		spill.PutFrameBuf(fw.block)
		fw.block = nil
	}
}

func writeFrame2Common(w io.Writer, header any, flags byte, count, inCount int, body func(fw *frame2Writer) error) (wire, raw int64, err error) {
	hb, err := json.Marshal(header)
	if err != nil {
		return 0, 0, err
	}
	hb = append(hb, '\n')
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 32<<10)
	if _, err := bw.Write(hb); err != nil {
		return cw.n, 0, err
	}
	var hdr [frame2HeaderSize]byte
	copy(hdr[:4], frame2Magic[:])
	hdr[4] = frame2Version
	hdr[5] = flags
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(inCount))
	if _, err := bw.Write(hdr[:]); err != nil {
		return cw.n, 0, err
	}
	fw := newFrame2Writer(bw, flags&f2FlagCompress != 0)
	if err := body(fw); err != nil {
		fw.discard()
		return cw.n, 0, err
	}
	if err := fw.close(); err != nil {
		return cw.n, 0, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, 0, err
	}
	return cw.n, int64(len(hb)) + frame2HeaderSize + fw.raw, nil
}

// WriteFrame2 writes header as one JSON line followed by the full-mode
// columnar frame for d. It returns the bytes put on the wire and their
// uncompressed equivalent.
func WriteFrame2(w io.Writer, header any, d *dataset.Dataset, compress bool) (wire, raw int64, err error) {
	var flags byte
	if compress {
		flags |= f2FlagCompress
	}
	return writeFrame2Common(w, header, flags, d.Len(), 0, func(fw *frame2Writer) error {
		return writeFullBatches(fw, d.Samples)
	})
}

// WriteDeltaFrame2 writes a delta response: the keep bitmap over
// inCount input samples plus one stats column entry per kept sample, in
// input order.
func WriteDeltaFrame2(w io.Writer, header any, mask []byte, inCount int, kept []*sample.Sample, compress bool) (wire, raw int64, err error) {
	if len(mask) != (inCount+7)/8 {
		return 0, 0, fmt.Errorf("dist: keep mask is %d bytes for %d inputs", len(mask), inCount)
	}
	flags := byte(f2FlagDelta)
	if compress {
		flags |= f2FlagCompress
	}
	return writeFrame2Common(w, header, flags, len(kept), inCount, func(fw *frame2Writer) error {
		if _, err := fw.Write(mask); err != nil {
			return err
		}
		return writeDeltaBatches(fw, kept)
	})
}

func writeFullBatches(fw *frame2Writer, samples []*sample.Sample) error {
	lensP := spill.GetFrameBuf(frame2BatchSize * 8)
	auxP := spill.GetFrameBuf(64 << 10)
	defer spill.PutFrameBuf(lensP)
	defer spill.PutFrameBuf(auxP)
	for off := 0; off < len(samples); off += frame2BatchSize {
		batch := samples[off:min(off+frame2BatchSize, len(samples))]
		n := len(batch)
		var nb [4]byte
		binary.LittleEndian.PutUint32(nb[:], uint32(n))
		if _, err := fw.Write(nb[:]); err != nil {
			return err
		}
		// The aux column encodes into scratch first so both length
		// arrays go out before either byte column.
		lens := (*lensP)[:8*n]
		aux := (*auxP)[:0]
		for i, s := range batch {
			if len(s.Text) > frame2MaxSampleLen {
				return fmt.Errorf("dist: sample text %d bytes exceeds frame cap", len(s.Text))
			}
			binary.LittleEndian.PutUint32(lens[i*4:], uint32(len(s.Text)))
			mark := len(aux)
			var err error
			aux, err = s.AppendJSONAux(aux)
			if err != nil {
				return err
			}
			if len(aux)-mark > frame2MaxSampleLen {
				return fmt.Errorf("dist: sample aux %d bytes exceeds frame cap", len(aux)-mark)
			}
			binary.LittleEndian.PutUint32(lens[4*n+i*4:], uint32(len(aux)-mark))
		}
		*auxP = aux[:0]
		if _, err := fw.Write(lens); err != nil {
			return err
		}
		for _, s := range batch {
			if _, err := fw.WriteString(s.Text); err != nil {
				return err
			}
		}
		if _, err := fw.Write(aux); err != nil {
			return err
		}
	}
	return nil
}

func writeDeltaBatches(fw *frame2Writer, kept []*sample.Sample) error {
	lensP := spill.GetFrameBuf(frame2BatchSize * 4)
	statsP := spill.GetFrameBuf(64 << 10)
	defer spill.PutFrameBuf(lensP)
	defer spill.PutFrameBuf(statsP)
	for off := 0; off < len(kept); off += frame2BatchSize {
		batch := kept[off:min(off+frame2BatchSize, len(kept))]
		n := len(batch)
		var nb [4]byte
		binary.LittleEndian.PutUint32(nb[:], uint32(n))
		if _, err := fw.Write(nb[:]); err != nil {
			return err
		}
		lens := (*lensP)[:4*n]
		stats := (*statsP)[:0]
		for i, s := range batch {
			mark := len(stats)
			if s.Stats.Len() > 0 {
				var err error
				stats, err = s.AppendStatsJSON(stats)
				if err != nil {
					return err
				}
			}
			if len(stats)-mark > frame2MaxSampleLen {
				return fmt.Errorf("dist: sample stats %d bytes exceeds frame cap", len(stats)-mark)
			}
			binary.LittleEndian.PutUint32(lens[i*4:], uint32(len(stats)-mark))
		}
		*statsP = stats[:0]
		if _, err := fw.Write(lens); err != nil {
			return err
		}
		if _, err := fw.Write(stats); err != nil {
			return err
		}
	}
	return nil
}

// Frame2 is one decoded v2 body.
type Frame2 struct {
	// Data holds the decoded samples. In delta mode it carries one
	// stats-only sample per kept input, in input order.
	Data    *dataset.Dataset
	Delta   bool
	Mask    []byte // delta only: keep bitmap over InCount inputs
	InCount int    // delta only: inputs the mask covers
	Wire    int64  // bytes consumed off the stream (header line included)
	Raw     int64  // uncompressed equivalent of Wire
}

// Frame2Reader reads one v2 frame: a JSON header line followed by the
// binary body, off a single buffered reader. Callers read the header
// first — error responses are header-only — then the body.
type Frame2Reader struct {
	br   *bufio.Reader
	wire int64
}

// NewFrame2Reader wraps r for one frame.
func NewFrame2Reader(r io.Reader) *Frame2Reader {
	return &Frame2Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Header reads the JSON header line into v.
func (fr *Frame2Reader) Header(v any) error {
	line, err := fr.br.ReadBytes('\n')
	fr.wire += int64(len(line))
	if err != nil && (err != io.EOF || len(line) == 0) {
		return fmt.Errorf("dist: frame header: %w", err)
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("dist: frame header: %w", err)
	}
	return nil
}

func (fr *Frame2Reader) readFull(p []byte) error {
	n, err := io.ReadFull(fr.br, p)
	fr.wire += int64(n)
	return err
}

// Body decodes the binary frame that follows the header line.
func (fr *Frame2Reader) Body() (*Frame2, error) {
	lineLen := fr.wire
	var hdr [frame2HeaderSize]byte
	if err := fr.readFull(hdr[:]); err != nil {
		return nil, fmt.Errorf("dist: frame2 header: %w", err)
	}
	if [4]byte(hdr[:4]) != frame2Magic {
		return nil, fmt.Errorf("dist: bad frame2 magic %q", hdr[:4])
	}
	if hdr[4] != frame2Version {
		return nil, fmt.Errorf("dist: unsupported frame2 version %d", hdr[4])
	}
	flags := hdr[5]
	if flags&^byte(f2FlagCompress|f2FlagDelta) != 0 {
		return nil, fmt.Errorf("dist: unknown frame2 flags %#x", flags)
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return nil, fmt.Errorf("dist: frame2 reserved bytes nonzero")
	}
	count := int(binary.LittleEndian.Uint32(hdr[8:]))
	inCount := int(binary.LittleEndian.Uint32(hdr[12:]))
	if count > frame2MaxCount || inCount > frame2MaxCount {
		return nil, fmt.Errorf("dist: frame2 claims %d/%d samples, cap %d", count, inCount, frame2MaxCount)
	}
	f := &Frame2{Delta: flags&f2FlagDelta != 0}
	body := &frame2Body{fr: fr, compress: flags&f2FlagCompress != 0}
	if f.Delta {
		if count > inCount {
			return nil, fmt.Errorf("dist: delta frame keeps %d of %d inputs", count, inCount)
		}
		f.InCount = inCount
		f.Mask = make([]byte, (inCount+7)/8)
		if err := body.readFull(f.Mask); err != nil {
			return nil, fmt.Errorf("dist: keep mask: %w", err)
		}
		pop := 0
		for _, b := range f.Mask {
			pop += bits.OnesCount8(b)
		}
		if pop != count {
			return nil, fmt.Errorf("dist: keep mask popcount %d, header says %d kept", pop, count)
		}
		if rem := inCount % 8; rem != 0 && f.Mask[len(f.Mask)-1]>>rem != 0 {
			return nil, fmt.Errorf("dist: keep mask has bits past input %d", inCount)
		}
		samples, err := readDeltaBatches(body, count)
		if err != nil {
			return nil, err
		}
		f.Data = dataset.New(samples)
	} else {
		if inCount != 0 {
			return nil, fmt.Errorf("dist: full frame with input count %d", inCount)
		}
		samples, err := readFullBatches(body, count)
		if err != nil {
			return nil, err
		}
		f.Data = dataset.New(samples)
	}
	f.Wire = fr.wire
	f.Raw = lineLen + frame2HeaderSize + body.raw
	return f, nil
}

// frame2Body serves logical body bytes, transparently reading through
// the lzj block layer when the frame is compressed.
type frame2Body struct {
	fr       *Frame2Reader
	compress bool
	buf      []byte
	off      int
	raw      int64
}

func (b *frame2Body) readFull(p []byte) error {
	if !b.compress {
		if err := b.fr.readFull(p); err != nil {
			return err
		}
		b.raw += int64(len(p))
		return nil
	}
	for len(p) > 0 {
		if b.off == len(b.buf) {
			if err := b.nextBlock(); err != nil {
				return err
			}
		}
		n := copy(p, b.buf[b.off:])
		b.off += n
		b.raw += int64(n)
		p = p[n:]
	}
	return nil
}

func (b *frame2Body) nextBlock() error {
	var lenb [4]byte
	if err := b.fr.readFull(lenb[:]); err != nil {
		return fmt.Errorf("dist: block length: %w", err)
	}
	encLen := int(binary.LittleEndian.Uint32(lenb[:]))
	if encLen == 0 || encLen > frame2MaxBlockEnc {
		return fmt.Errorf("dist: implausible block length %d", encLen)
	}
	encP := spill.GetFrameBuf(encLen)
	defer spill.PutFrameBuf(encP)
	enc := *encP
	if err := b.fr.readFull(enc); err != nil {
		return fmt.Errorf("dist: block body: %w", err)
	}
	// Blocks are written at most frame2BlockSize raw; validate the
	// codec's own claimed size before decoding so a corrupt length can
	// never drive a huge allocation.
	if encLen >= 8 {
		if want := binary.LittleEndian.Uint32(enc[4:]); int64(want) > frame2BlockSize {
			return fmt.Errorf("dist: block claims %d raw bytes, cap %d", want, frame2BlockSize)
		}
	}
	dec, err := frame2Codec.Decode(enc)
	if err != nil {
		return fmt.Errorf("dist: block decode: %w", err)
	}
	b.buf, b.off = dec, 0
	return nil
}

// readBatchCount reads and validates one batch's sample count, which
// must exactly match the writer's batching discipline.
func readBatchCount(b *frame2Body, remaining int) (int, error) {
	var nb [4]byte
	if err := b.readFull(nb[:]); err != nil {
		return 0, fmt.Errorf("dist: batch count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(nb[:]))
	if want := min(remaining, frame2BatchSize); n != want {
		return 0, fmt.Errorf("dist: batch count %d, want %d", n, want)
	}
	return n, nil
}

func readFullBatches(b *frame2Body, count int) ([]*sample.Sample, error) {
	samples := make([]*sample.Sample, 0, count)
	lensP := spill.GetFrameBuf(frame2BatchSize * 8)
	defer spill.PutFrameBuf(lensP)
	var scratch []byte
	var texts [frame2BatchSize]string
	for remaining := count; remaining > 0; {
		n, err := readBatchCount(b, remaining)
		if err != nil {
			return nil, err
		}
		lens := (*lensP)[:8*n]
		if err := b.readFull(lens); err != nil {
			return nil, fmt.Errorf("dist: column lengths: %w", err)
		}
		for i := 0; i < 2*n; i++ {
			if l := binary.LittleEndian.Uint32(lens[i*4:]); int64(l) > frame2MaxSampleLen {
				return nil, fmt.Errorf("dist: column entry %d bytes exceeds cap", l)
			}
		}
		for i := 0; i < n; i++ {
			l := int(binary.LittleEndian.Uint32(lens[i*4:]))
			if l > len(scratch) {
				scratch = make([]byte, l)
			}
			if err := b.readFull(scratch[:l]); err != nil {
				return nil, fmt.Errorf("dist: text column: %w", err)
			}
			texts[i] = string(scratch[:l])
		}
		for i := 0; i < n; i++ {
			l := int(binary.LittleEndian.Uint32(lens[4*n+i*4:]))
			s := &sample.Sample{}
			if l > 0 {
				if l > len(scratch) {
					scratch = make([]byte, l)
				}
				if err := b.readFull(scratch[:l]); err != nil {
					return nil, fmt.Errorf("dist: aux column: %w", err)
				}
				if err := s.UnmarshalJSON(scratch[:l]); err != nil {
					return nil, fmt.Errorf("dist: aux column: %w", err)
				}
			}
			s.Text = texts[i]
			samples = append(samples, s)
		}
		remaining -= n
	}
	return samples, nil
}

func readDeltaBatches(b *frame2Body, count int) ([]*sample.Sample, error) {
	samples := make([]*sample.Sample, 0, count)
	lensP := spill.GetFrameBuf(frame2BatchSize * 4)
	defer spill.PutFrameBuf(lensP)
	var scratch []byte
	for remaining := count; remaining > 0; {
		n, err := readBatchCount(b, remaining)
		if err != nil {
			return nil, err
		}
		lens := (*lensP)[:4*n]
		if err := b.readFull(lens); err != nil {
			return nil, fmt.Errorf("dist: stats lengths: %w", err)
		}
		for i := 0; i < n; i++ {
			l := int(binary.LittleEndian.Uint32(lens[i*4:]))
			if int64(l) > frame2MaxSampleLen {
				return nil, fmt.Errorf("dist: stats entry %d bytes exceeds cap", l)
			}
			s := &sample.Sample{}
			if l > 0 {
				if l > len(scratch) {
					scratch = make([]byte, l)
				}
				if err := b.readFull(scratch[:l]); err != nil {
					return nil, fmt.Errorf("dist: stats column: %w", err)
				}
				if err := s.DecodeStatsJSON(scratch[:l]); err != nil {
					return nil, fmt.Errorf("dist: stats column: %w", err)
				}
			}
			samples = append(samples, s)
		}
		remaining -= n
	}
	return samples, nil
}

// BuildKeepMask derives the keep bitmap mapping kept — an
// order-preserving pointer subset of in, as filter stages produce —
// back onto in. The second result is false when kept is not such a
// subset (the caller must then fall back to a full response).
func BuildKeepMask(in, kept []*sample.Sample) ([]byte, bool) {
	mask := make([]byte, (len(in)+7)/8)
	j := 0
	for i, s := range in {
		if j < len(kept) && kept[j] == s {
			mask[i/8] |= 1 << (i % 8)
			j++
		}
	}
	if j != len(kept) {
		return nil, false
	}
	return mask, true
}

// ApplyKeepMask selects the masked-in samples in input order. The mask
// must cover len(in) samples (validated at decode).
func ApplyKeepMask(in []*sample.Sample, mask []byte) []*sample.Sample {
	kept := make([]*sample.Sample, 0, len(in))
	for i, s := range in {
		if mask[i/8]&(1<<(i%8)) != 0 {
			kept = append(kept, s)
		}
	}
	return kept
}
