package dist

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file extends the static Figure 10 cost model with *online*
// measurements: instead of a one-shot Measure pass over encoded shards,
// an OnlineModel ingests per-operator observations while a run is in
// flight (wall time, selectivity, bytes) and answers scheduling questions
// from the live profile — how many workers saturate the pipeline, how
// large a shard should be, and how many shards may be in flight under a
// memory target. The streaming engine's adaptive controller
// (internal/stream) feeds and consults it between shard generations.

// OpSample is one observed operator application, positioned by its plan
// index so profiles stay in execution order even when names repeat.
type OpSample struct {
	Seq      int // position in the execution plan
	Name     string
	In, Out  int
	Bytes    int64 // input text bytes entering the op
	Duration time.Duration
	// Serial marks an op that runs once per phase outside the shard
	// pipeline (a barrier deduplicator). Its selectivity still thins the
	// downstream chain, but its cost is not per-shard work and must not
	// steer shard sizing.
	Serial bool
	// MaxParallel caps how many workers can make progress on this op at
	// once (0 = unbounded). A partitioned shared-index stage reports its
	// partition count: probes spread across partitions, but no wider.
	MaxParallel int
}

// OpProfile is the smoothed live profile of one planned operator. The
// JSON form feeds the live ops endpoint's /progress snapshot.
type OpProfile struct {
	Seq          int    `json:"seq"`
	Name         string `json:"name"`
	Applications int    `json:"applications"`
	In           int64  `json:"in"`
	Out          int64  `json:"out"`
	Bytes        int64  `json:"bytes,omitempty"`
	// CostPerSample is the EWMA processing cost of one input sample.
	CostPerSample time.Duration `json:"cost_per_sample_ns"`
	// BytesPerSample is the EWMA text bytes of one input sample.
	BytesPerSample float64 `json:"bytes_per_sample"`
	// Selectivity is the EWMA survival ratio Out/In (1.0 for mappers).
	Selectivity float64 `json:"selectivity"`
	// Serial mirrors OpSample.Serial: a barrier op outside the pipeline.
	Serial bool `json:"serial,omitempty"`
	// MaxParallel mirrors OpSample.MaxParallel (0 = unbounded).
	MaxParallel int `json:"max_parallel,omitempty"`
}

// opState accumulates one operator's observations.
type opState struct {
	name        string
	apps        int
	in, out     int64
	bytes       int64
	cps         float64 // seconds per input sample, EWMA
	bps         float64 // bytes per input sample, EWMA
	sel         float64 // out/in, EWMA
	serial      bool
	maxParallel int // parallelism ceiling (0 = unbounded)
	initialized bool
}

func (s *opState) fold(alpha float64, in, out int, bytes int64, dur time.Duration) {
	s.apps++
	s.in += int64(in)
	s.out += int64(out)
	s.bytes += bytes
	cps := dur.Seconds() / float64(in)
	sel := float64(out) / float64(in)
	bps := float64(bytes) / float64(in)
	if !s.initialized {
		s.cps, s.sel, s.bps = cps, sel, bps
		s.initialized = true
		return
	}
	s.cps = alpha*cps + (1-alpha)*s.cps
	s.sel = alpha*sel + (1-alpha)*s.sel
	s.bps = alpha*bps + (1-alpha)*s.bps
}

// DefaultAlpha is the EWMA smoothing factor used when NewOnlineModel is
// given zero: recent shards dominate but single outliers do not.
const DefaultAlpha = 0.3

// OnlineModel aggregates live measurements of one running pipeline. All
// methods are safe for concurrent use.
type OnlineModel struct {
	mu     sync.Mutex
	alpha  float64
	ops    map[int]*opState
	source opState // pseudo-op: reading/decoding input samples
	sink   opState // pseudo-op: encoding/writing output samples
}

// NewOnlineModel returns an empty model with the given EWMA smoothing
// factor (DefaultAlpha when alpha <= 0 or > 1).
func NewOnlineModel(alpha float64) *OnlineModel {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &OnlineModel{alpha: alpha, ops: map[int]*opState{}}
}

// RecordOp folds one operator application into the profile. Observations
// with In <= 0 carry no rate information and are ignored.
func (m *OnlineModel) RecordOp(s OpSample) {
	if s.In <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.ops[s.Seq]
	if !ok {
		st = &opState{name: s.Name, serial: s.Serial}
		m.ops[s.Seq] = st
	}
	st.maxParallel = s.MaxParallel
	st.fold(m.alpha, s.In, s.Out, s.Bytes, s.Duration)
}

// RecordSource folds one source read (samples decoded from the input) —
// the serial floor a single reader imposes on the pipeline.
func (m *OnlineModel) RecordSource(samples int, bytes int64, dur time.Duration) {
	if samples <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.source.fold(m.alpha, samples, samples, bytes, dur)
}

// RecordSink folds one sink write (samples consumed by the exporter).
func (m *OnlineModel) RecordSink(samples int, dur time.Duration) {
	if samples <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink.fold(m.alpha, samples, samples, 0, dur)
}

// Profiles returns the per-operator live profiles in plan order.
func (m *OnlineModel) Profiles() []OpProfile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profilesLocked()
}

func (m *OnlineModel) profilesLocked() []OpProfile {
	seqs := make([]int, 0, len(m.ops))
	for seq := range m.ops {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	out := make([]OpProfile, 0, len(seqs))
	for _, seq := range seqs {
		st := m.ops[seq]
		out = append(out, OpProfile{
			Seq: seq, Name: st.name, Applications: st.apps,
			In: st.in, Out: st.out, Bytes: st.bytes,
			CostPerSample:  time.Duration(st.cps * float64(time.Second)),
			BytesPerSample: st.bps,
			Selectivity:    st.sel,
			Serial:         st.serial,
			MaxParallel:    st.maxParallel,
		})
	}
	return out
}

// Tuning bounds the decisions Plan may take.
type Tuning struct {
	// MaxWorkers caps the worker pool (required, >= 1).
	MaxWorkers int
	// MinShardSize / MaxShardSize clamp the shard size (defaults 32 / 8192).
	MinShardSize, MaxShardSize int
	// TargetShardLatency is the wall time one shard should spend in the
	// operator chain (default 150ms): small enough to pipeline and
	// rebalance, large enough to amortize per-shard overhead.
	TargetShardLatency time.Duration
	// TargetMemBytes bounds the text bytes resident across all in-flight
	// shards (0 = unbounded).
	TargetMemBytes int64
	// InFlightPerWorker scales the in-flight shard allowance (default 2).
	InFlightPerWorker int
}

func (t Tuning) withDefaults() Tuning {
	if t.MaxWorkers < 1 {
		t.MaxWorkers = 1
	}
	if t.MinShardSize <= 0 {
		t.MinShardSize = 32
	}
	if t.MaxShardSize < t.MinShardSize {
		t.MaxShardSize = 8192
		if t.MaxShardSize < t.MinShardSize {
			t.MaxShardSize = t.MinShardSize
		}
	}
	if t.TargetShardLatency <= 0 {
		t.TargetShardLatency = 150 * time.Millisecond
	}
	if t.InFlightPerWorker < 1 {
		t.InFlightPerWorker = 2
	}
	return t
}

// Decision is one scheduling verdict of the cost model. The JSON form
// feeds the live ops endpoint's /progress snapshot and the run journal's
// controller_replan events.
type Decision struct {
	// Workers is the recommended worker-pool size.
	Workers int `json:"workers"`
	// ShardSize is the recommended samples per shard.
	ShardSize int `json:"shard_size"`
	// MaxInFlight is the recommended bound on in-flight shards — the
	// backpressure limit the source is throttled to.
	MaxInFlight int `json:"max_in_flight"`
	// ChainCostPerSample is the modeled operator-chain cost of one input
	// sample (selectivity-weighted, as in the Figure 10 probe).
	ChainCostPerSample time.Duration `json:"chain_cost_per_sample_ns,omitempty"`
	// PeakBytesPerSample is the modeled peak resident text bytes one
	// input sample induces anywhere along the chain.
	PeakBytesPerSample float64 `json:"peak_bytes_per_sample,omitempty"`
	// Selectivity is the modeled end-to-end survival ratio.
	Selectivity float64 `json:"selectivity,omitempty"`
	// Why summarizes the inputs behind the verdict, for logs and reports.
	Why string `json:"why,omitempty"`
}

// modelThroughput is the modeled pipeline rate (input samples/sec) with w
// workers: the chain parallelizes across shards, but a serial stage (the
// single reader, or the ordered sink) caps it — the same serial-floor
// argument Compose makes for the Beam-like runner's single loader.
func modelThroughput(chainCPS, serialCPS float64, w int) float64 {
	if chainCPS <= 0 {
		return math.Inf(1)
	}
	t := float64(w) / chainCPS
	if serialCPS > 0 && 1/serialCPS < t {
		t = 1 / serialCPS
	}
	return t
}

// Plan derives a scheduling decision from the live profile, starting from
// the current decision cur (kept where the model has no signal yet). The
// boolean result reports whether any operator measurements existed; with
// none, cur is returned unchanged.
//
// The reasoning mirrors the static cost model: the chain cost of one
// input sample is the sum of per-op costs weighted by upstream
// selectivity, the worker count is the smallest one whose modeled
// throughput is within 5% of the maximum (extra workers past the serial
// floor only burn memory), the shard size targets a fixed per-shard
// latency, and the in-flight allowance is cut until the resident text
// bytes fit the memory target.
func (m *OnlineModel) Plan(t Tuning, cur Decision) (Decision, bool) {
	t = t.withDefaults()
	m.mu.Lock()
	profiles := m.profilesLocked()
	srcCPS := 0.0
	if m.source.initialized {
		srcCPS = m.source.cps
	}
	sinkCPS := 0.0
	if m.sink.initialized {
		sinkCPS = m.sink.cps
	}
	m.mu.Unlock()
	if len(profiles) == 0 {
		return cur, false
	}

	// Selectivity-weighted chain cost and peak footprint per input sample.
	// Serial (barrier) ops contribute their selectivity — they thin what
	// downstream ops see — but not their cost: they run once per phase,
	// outside the shard pipeline, so their expense cannot be tuned by
	// shard size or worker count and would only poison both. They also
	// delimit the pipeline's phases: a shard traverses one phase, not the
	// whole plan, so shard sizing targets the costliest phase segment
	// (with survival and bytes measured relative to that segment's own
	// input — what a shard inside it actually holds).
	surv := 1.0     // survival from the original input (throughput model)
	chainCPS := 0.0 // total pipelined work per original input sample
	segSurv := 1.0  // survival within the current phase segment
	segCPS := 0.0   // cost per segment-input sample of the current phase
	maxSegCPS := 0.0
	peakBPS := 0.0
	capCPS := 0.0 // widest per-input cost an op's parallelism cap admits
	closeSeg := func() {
		if segCPS > maxSegCPS {
			maxSegCPS = segCPS
		}
		segCPS, segSurv = 0, 1
	}
	for _, p := range profiles {
		if p.Applications == 0 {
			continue
		}
		if p.Serial {
			closeSeg()
			surv *= p.Selectivity
			continue
		}
		chainCPS += surv * p.CostPerSample.Seconds()
		segCPS += segSurv * p.CostPerSample.Seconds()
		if b := segSurv * p.BytesPerSample; b > peakBPS {
			peakBPS = b
		}
		// An op with a parallelism ceiling (a partitioned shared index
		// probes at most MaxParallel partitions at once) bounds pipeline
		// throughput at P/(surv·cps) input samples/sec regardless of the
		// worker count — the same shape as a serial stage, scaled by 1/P.
		if p.MaxParallel > 0 {
			if s := surv * p.CostPerSample.Seconds() / float64(p.MaxParallel); s > capCPS {
				capCPS = s
			}
		}
		surv *= p.Selectivity
		segSurv *= p.Selectivity
	}
	closeSeg()
	if chainCPS <= 0 || maxSegCPS <= 0 {
		return cur, false
	}

	// Serial floor: the single-threaded reader, the ordered sink mapped
	// back to input samples through the chain's selectivity, or the
	// tightest per-op parallelism cap.
	serialCPS := srcCPS
	if s := sinkCPS * surv; s > serialCPS {
		serialCPS = s
	}
	if capCPS > serialCPS {
		serialCPS = capCPS
	}

	// Workers: fewest achieving ~the modeled maximum throughput.
	workers := t.MaxWorkers
	best := modelThroughput(chainCPS, serialCPS, t.MaxWorkers)
	for w := 1; w < t.MaxWorkers; w++ {
		if modelThroughput(chainCPS, serialCPS, w) >= 0.95*best {
			workers = w
			break
		}
	}

	// Shard size: target latency over the costliest phase segment's
	// per-sample cost, slew-limited to at most halving or doubling per
	// generation so one noisy profile cannot swing the pipeline's
	// granularity (and its resident set) at once.
	shard := int(t.TargetShardLatency.Seconds() / maxSegCPS)
	if cur.ShardSize > 0 {
		shard = clampInt(shard, cur.ShardSize/2, cur.ShardSize*2)
	}
	shard = clampInt(shard, t.MinShardSize, t.MaxShardSize)

	// Hysteresis: a shard-size drift under 25% is churn, not signal. It
	// must run before the memory clamp below — the memory bound is a hard
	// limit and may not be churned away.
	if cur.ShardSize > 0 {
		if diff := shard - cur.ShardSize; diff < cur.ShardSize/4 && -diff < cur.ShardSize/4 {
			shard = cur.ShardSize
		}
	}

	inflight := workers * t.InFlightPerWorker

	// Memory target: resident text ≈ inflight × shard × peak bytes/sample.
	// Shrink the shard first (cheaper), then the in-flight allowance, then
	// the pool itself.
	if t.TargetMemBytes > 0 && peakBPS > 0 {
		if maxShard := int(float64(t.TargetMemBytes) / (float64(inflight) * peakBPS)); maxShard < shard {
			shard = clampInt(maxShard, t.MinShardSize, t.MaxShardSize)
		}
		if int64(float64(inflight)*float64(shard)*peakBPS) > t.TargetMemBytes {
			inflight = int(float64(t.TargetMemBytes) / (float64(shard) * peakBPS))
			if inflight < 1 {
				inflight = 1
			}
			if workers > inflight {
				workers = inflight
			}
		}
	}

	return Decision{
		Workers:            workers,
		ShardSize:          shard,
		MaxInFlight:        inflight,
		ChainCostPerSample: time.Duration(chainCPS * float64(time.Second)),
		PeakBytesPerSample: peakBPS,
		Selectivity:        surv,
		Why: fmt.Sprintf("chain=%s/sample sel=%.3f peak=%.0fB/sample serial=%s/sample",
			time.Duration(chainCPS*float64(time.Second)).Round(time.Nanosecond), surv, peakBPS,
			time.Duration(serialCPS*float64(time.Second)).Round(time.Nanosecond)),
	}, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
