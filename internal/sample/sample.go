// Package sample defines the unified intermediate representation for one
// document flowing through a Data-Juicer pipeline.
//
// A sample is conceptually organized in three parts, mirroring Sec. 3.1 of
// the paper: "text" holds the raw textual payload (with optional named
// sub-parts such as "text.abstract"), "meta" holds metadata (source, date,
// tags), and "stats" holds per-sample statistics produced by Filter OPs and
// consumed by other OPs and the analyzer.
//
// The per-sample hot path is allocation-conscious: statistics live in the
// compact typed Stats table (stats.go) instead of a boxed map, the shared
// intermediates of fused operators live in typed context slots backed by
// per-worker Scratch buffers (scratch.go), and the JSONL wire format has a
// hand-rolled encode/decode fast path (json.go) that is byte-identical to
// encoding/json.
package sample

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Context slots for the shared per-sample intermediates of Sec. 6. The
// four standard intermediates (segmented words, lower-cased words, lines,
// sentences) live in typed fields instead of a boxed map; arbitrary keys
// fall back to a lazily allocated map.
type CtxSlot uint8

const (
	CtxWords CtxSlot = iota
	CtxWordsLower
	CtxLines
	CtxSentences
	numCtxSlots
)

// ctxSlotNames are the historical string keys of the typed slots, kept so
// the string-keyed Context/HasContext API observes them.
var ctxSlotNames = [numCtxSlots]string{"words", "words_lower", "lines", "sentences"}

func ctxSlotByName(key string) (CtxSlot, bool) {
	for i, n := range ctxSlotNames {
		if n == key {
			return CtxSlot(i), true
		}
	}
	return 0, false
}

// Sample is one document. The zero value is a valid empty sample.
//
// A sample is owned by a single goroutine at any point in time (the dataset
// executor hands each sample to exactly one worker), so its methods do not
// lock.
type Sample struct {
	// Text is the primary text payload, addressed as "text".
	Text string
	// Parts holds named text sub-parts, addressed as "text.<name>".
	Parts map[string]string
	// Meta holds metadata fields, addressed as "meta.<path>".
	Meta Fields
	// Stats holds per-sample statistics, addressed as "stats.<name>".
	Stats Stats

	// slots are the typed context-cache entries; slotBits marks which are
	// filled (a filled slot may legitimately hold a nil slice).
	slots    [numCtxSlots][]string
	slotBits uint8
	// scr is the executor-attached per-worker scratch providing reusable
	// token buffers; nil outside an executor (slots then allocate).
	scr *Scratch
	// ctx holds arbitrary-keyed cached intermediates (tests, custom OPs).
	ctx map[string]any
}

// New returns a sample holding text.
func New(text string) *Sample { return &Sample{Text: text} }

// Clone returns a deep copy of the sample. The context cache is not copied:
// clones start with a cold context.
func (s *Sample) Clone() *Sample {
	c := &Sample{Text: s.Text}
	if s.Parts != nil {
		c.Parts = make(map[string]string, len(s.Parts))
		for k, v := range s.Parts {
			c.Parts[k] = v
		}
	}
	c.Meta = s.Meta.Clone()
	c.Stats = s.Stats.Clone()
	return c
}

// GetString resolves a dotted field path to a string value.
// Supported roots: "text", "text.<part>", "meta.<path>", "stats.<name>".
func (s *Sample) GetString(path string) (string, bool) {
	root, rest := splitPath(path)
	switch root {
	case "text":
		if rest == "" {
			return s.Text, true
		}
		v, ok := s.Parts[rest]
		return v, ok
	case "meta":
		v, ok := s.Meta.Get(rest)
		if !ok {
			return "", false
		}
		return toString(v)
	case "stats":
		return s.Stats.StringByName(rest)
	}
	return "", false
}

// SetString writes a string value at a dotted field path.
func (s *Sample) SetString(path, value string) error {
	root, rest := splitPath(path)
	switch root {
	case "text":
		if rest == "" {
			s.Text = value
			return nil
		}
		if s.Parts == nil {
			s.Parts = make(map[string]string)
		}
		s.Parts[rest] = value
		return nil
	case "meta":
		if rest == "" {
			return fmt.Errorf("sample: cannot set bare %q", path)
		}
		s.Meta = s.Meta.Set(rest, value)
		return nil
	case "stats":
		if rest == "" {
			return fmt.Errorf("sample: cannot set bare %q", path)
		}
		s.Stats.Set(rest, value)
		return nil
	}
	return fmt.Errorf("sample: unknown field root in path %q", path)
}

// GetFloat resolves a dotted field path to a float64.
func (s *Sample) GetFloat(path string) (float64, bool) {
	root, rest := splitPath(path)
	switch root {
	case "meta":
		v, ok := s.Meta.Get(rest)
		if !ok {
			return 0, false
		}
		return toFloat(v)
	case "stats":
		return s.Stats.FloatByName(rest)
	}
	return 0, false
}

// SetStat records a numeric statistic under stats.<name>.
func (s *Sample) SetStat(name string, v float64) {
	s.Stats.SetFloat(InternStatKey(name), v)
}

// Stat reads a numeric statistic; ok reports whether it was present and
// numeric. Reads never register names in the intern table.
func (s *Sample) Stat(name string) (float64, bool) {
	return s.Stats.FloatByName(name)
}

// SetStatString records a string-valued statistic (e.g. a language tag).
func (s *Sample) SetStatString(name, v string) {
	s.Stats.SetString(InternStatKey(name), v)
}

// StatString reads a string-valued statistic. Reads never register
// names in the intern table.
func (s *Sample) StatString(name string) (string, bool) {
	return s.Stats.StringByName(name)
}

// Context returns the memoized shared intermediate for key, computing it
// with compute on first use. It backs the context manager of Sec. 6: fused
// operators share segmented words, split lines, and other derived values
// through this cache instead of recomputing them. The four standard keys
// resolve to the typed slots; other keys use a lazily allocated map.
func (s *Sample) Context(key string, compute func() any) any {
	slot, isSlot := ctxSlotByName(key)
	if isSlot && s.slotBits&(1<<slot) != 0 {
		return s.slots[slot]
	}
	if v, ok := s.ctx[key]; ok {
		return v
	}
	v := compute()
	if isSlot {
		if toks, ok := v.([]string); ok {
			s.slots[slot] = toks
			s.slotBits |= 1 << slot
			return toks
		}
		// A standard key holding a non-token value (custom OPs are free
		// to do that) lands in the generic map instead of panicking on
		// the slot's type.
	}
	if s.ctx == nil {
		s.ctx = make(map[string]any, 4)
	}
	s.ctx[key] = v
	return v
}

// CachedTokens returns the token slice cached in a typed context slot.
func (s *Sample) CachedTokens(slot CtxSlot) ([]string, bool) {
	if s.slotBits&(1<<slot) != 0 {
		return s.slots[slot], true
	}
	return nil, false
}

// TokenBuf returns an empty token buffer for filling a typed context
// slot: the per-worker scratch buffer when a Scratch is attached
// (allocation-free reuse across samples), nil otherwise (append
// allocates as it grows).
func (s *Sample) TokenBuf(slot CtxSlot) []string {
	if s.scr != nil {
		return s.scr.bufs[slot][:0]
	}
	return nil
}

// StoreTokens caches toks in a typed context slot. When a Scratch is
// attached the (possibly grown) backing array is written back so the
// next sample reuses it at full capacity.
func (s *Sample) StoreTokens(slot CtxSlot, toks []string) {
	s.slots[slot] = toks
	s.slotBits |= 1 << slot
	if s.scr != nil {
		s.scr.bufs[slot] = toks
	}
}

// HasContext reports whether key is currently cached (in its typed slot
// or the generic map).
func (s *Sample) HasContext(key string) bool {
	if slot, ok := ctxSlotByName(key); ok && s.slotBits&(1<<slot) != 0 {
		return true
	}
	_, ok := s.ctx[key]
	return ok
}

// ClearContext drops all cached intermediates and detaches the scratch.
// The executor calls this after each (fused) operator so context
// management needs little extra memory, as described in Sec. 6.
func (s *Sample) ClearContext() {
	s.slots = [numCtxSlots][]string{}
	s.slotBits = 0
	s.scr = nil
	s.ctx = nil
}

// ContextLen reports the number of cached intermediates (used by tests and
// the ablation benchmarks).
func (s *Sample) ContextLen() int {
	return bits.OnesCount8(s.slotBits) + len(s.ctx)
}

// AttachScratch points the sample's context slots at a per-worker scratch
// so tokenization reuses its buffers. The executor attaches a scratch
// before running operators on the sample and ClearContext detaches it;
// at most one sample may hold a given scratch at a time.
func (s *Sample) AttachScratch(sc *Scratch) { s.scr = sc }

// sampleJSON is the serialized wire form of a sample (the slow path;
// json.go holds the equivalent hand-rolled fast path).
type sampleJSON struct {
	Text  string            `json:"text"`
	Parts map[string]string `json:"parts,omitempty"`
	Meta  Fields            `json:"meta,omitempty"`
	Stats statsJSON         `json:"stats,omitempty"`
}

// statsJSON bridges the typed stats table to encoding/json as a flat
// sorted object, matching the former map representation byte-for-byte.
type statsJSON struct{ t *Stats }

func (sj statsJSON) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, sj.t.Len())
	sj.t.Range(func(name string, v any) bool { m[name] = v; return true })
	return json.Marshal(m)
}

func (sj statsJSON) UnmarshalJSON(b []byte) error {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for k, v := range m {
		sj.t.SetRaw(k, v)
	}
	return nil
}

// MarshalJSON implements json.Marshaler via the hand-rolled fast path;
// the output is byte-identical to encoding/json marshalling of the wire
// struct (sorted keys, HTML escaping, float formatting).
func (s *Sample) MarshalJSON() ([]byte, error) {
	return s.AppendJSON(nil)
}

// UnmarshalJSON implements json.Unmarshaler. Flat wire-shaped objects
// take the hand-rolled fast path; anything else falls back to
// encoding/json.
func (s *Sample) UnmarshalJSON(b []byte) error {
	if decodeWireFast(b, s) {
		return nil
	}
	return s.unmarshalSlow(b)
}

func (s *Sample) unmarshalSlow(b []byte) error {
	*s = Sample{}
	j := sampleJSON{Stats: statsJSON{&s.Stats}}
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	s.Text, s.Parts, s.Meta = j.Text, j.Parts, j.Meta
	return nil
}

// Fields is a nested string-keyed document supporting dotted-path access.
// A nil Fields behaves as an empty, read-only document; Set returns the
// (possibly newly allocated) map so callers can write through nil values.
type Fields map[string]any

// Get resolves a dotted path ("a.b.c") to its value.
func (f Fields) Get(path string) (any, bool) {
	if f == nil || path == "" {
		return nil, false
	}
	cur := f
	for {
		head, rest := splitPath(path)
		v, ok := cur[head]
		if !ok {
			return nil, false
		}
		if rest == "" {
			return v, true
		}
		next, ok := asFields(v)
		if !ok {
			return nil, false
		}
		cur, path = next, rest
	}
}

// Set writes value at a dotted path, creating intermediate maps, and
// returns the root map (allocating it if f was nil).
func (f Fields) Set(path string, value any) Fields {
	if f == nil {
		f = make(Fields, 4)
	}
	cur := f
	for {
		head, rest := splitPath(path)
		if rest == "" {
			cur[head] = value
			return f
		}
		next, ok := asFields(cur[head])
		if !ok {
			next = make(Fields, 2)
			cur[head] = next
		}
		cur, path = next, rest
	}
}

// Delete removes the value at a dotted path if present.
func (f Fields) Delete(path string) {
	if f == nil {
		return
	}
	head, rest := splitPath(path)
	if rest == "" {
		delete(f, head)
		return
	}
	if next, ok := asFields(f[head]); ok {
		next.Delete(rest)
	}
}

// Clone deep-copies the document. Nested Fields (and map[string]any) are
// copied recursively; slices are copied shallowly per element.
func (f Fields) Clone() Fields {
	if f == nil {
		return nil
	}
	c := make(Fields, len(f))
	for k, v := range f {
		if nested, ok := asFields(v); ok {
			c[k] = nested.Clone()
			continue
		}
		c[k] = v
	}
	return c
}

// Keys returns the sorted top-level keys, for deterministic iteration.
func (f Fields) Keys() []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func asFields(v any) (Fields, bool) {
	switch m := v.(type) {
	case Fields:
		return m, true
	case map[string]any:
		return Fields(m), true
	}
	return nil, false
}

func splitPath(path string) (head, rest string) {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i], path[i+1:]
	}
	return path, ""
}

func toString(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case int:
		return strconv.Itoa(x), true
	case bool:
		return strconv.FormatBool(x), true
	}
	return "", false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	}
	return 0, false
}
