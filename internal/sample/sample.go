// Package sample defines the unified intermediate representation for one
// document flowing through a Data-Juicer pipeline.
//
// A sample is conceptually organized in three parts, mirroring Sec. 3.1 of
// the paper: "text" holds the raw textual payload (with optional named
// sub-parts such as "text.abstract"), "meta" holds metadata (source, date,
// tags), and "stats" holds per-sample statistics produced by Filter OPs and
// consumed by other OPs and the analyzer.
package sample

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one document. The zero value is a valid empty sample.
//
// A sample is owned by a single goroutine at any point in time (the dataset
// executor hands each sample to exactly one worker), so its methods do not
// lock.
type Sample struct {
	// Text is the primary text payload, addressed as "text".
	Text string
	// Parts holds named text sub-parts, addressed as "text.<name>".
	Parts map[string]string
	// Meta holds metadata fields, addressed as "meta.<path>".
	Meta Fields
	// Stats holds per-sample statistics, addressed as "stats.<name>".
	Stats Fields

	ctx map[string]any
}

// New returns a sample holding text.
func New(text string) *Sample { return &Sample{Text: text} }

// Clone returns a deep copy of the sample. The context cache is not copied:
// clones start with a cold context.
func (s *Sample) Clone() *Sample {
	c := &Sample{Text: s.Text}
	if s.Parts != nil {
		c.Parts = make(map[string]string, len(s.Parts))
		for k, v := range s.Parts {
			c.Parts[k] = v
		}
	}
	c.Meta = s.Meta.Clone()
	c.Stats = s.Stats.Clone()
	return c
}

// GetString resolves a dotted field path to a string value.
// Supported roots: "text", "text.<part>", "meta.<path>", "stats.<name>".
func (s *Sample) GetString(path string) (string, bool) {
	root, rest := splitPath(path)
	switch root {
	case "text":
		if rest == "" {
			return s.Text, true
		}
		v, ok := s.Parts[rest]
		return v, ok
	case "meta":
		v, ok := s.Meta.Get(rest)
		if !ok {
			return "", false
		}
		return toString(v)
	case "stats":
		v, ok := s.Stats.Get(rest)
		if !ok {
			return "", false
		}
		return toString(v)
	}
	return "", false
}

// SetString writes a string value at a dotted field path.
func (s *Sample) SetString(path, value string) error {
	root, rest := splitPath(path)
	switch root {
	case "text":
		if rest == "" {
			s.Text = value
			return nil
		}
		if s.Parts == nil {
			s.Parts = make(map[string]string)
		}
		s.Parts[rest] = value
		return nil
	case "meta":
		if rest == "" {
			return fmt.Errorf("sample: cannot set bare %q", path)
		}
		s.Meta = s.Meta.Set(rest, value)
		return nil
	case "stats":
		if rest == "" {
			return fmt.Errorf("sample: cannot set bare %q", path)
		}
		s.Stats = s.Stats.Set(rest, value)
		return nil
	}
	return fmt.Errorf("sample: unknown field root in path %q", path)
}

// GetFloat resolves a dotted field path to a float64.
func (s *Sample) GetFloat(path string) (float64, bool) {
	root, rest := splitPath(path)
	var v any
	var ok bool
	switch root {
	case "meta":
		v, ok = s.Meta.Get(rest)
	case "stats":
		v, ok = s.Stats.Get(rest)
	default:
		return 0, false
	}
	if !ok {
		return 0, false
	}
	return toFloat(v)
}

// SetStat records a numeric statistic under stats.<name>.
func (s *Sample) SetStat(name string, v float64) {
	s.Stats = s.Stats.Set(name, v)
}

// Stat reads a numeric statistic; ok reports whether it was present and
// numeric.
func (s *Sample) Stat(name string) (float64, bool) {
	v, ok := s.Stats.Get(name)
	if !ok {
		return 0, false
	}
	return toFloat(v)
}

// SetStatString records a string-valued statistic (e.g. a language tag).
func (s *Sample) SetStatString(name, v string) {
	s.Stats = s.Stats.Set(name, v)
}

// StatString reads a string-valued statistic.
func (s *Sample) StatString(name string) (string, bool) {
	v, ok := s.Stats.Get(name)
	if !ok {
		return "", false
	}
	return toString(v)
}

// Context returns the memoized shared intermediate for key, computing it
// with compute on first use. It backs the context manager of Sec. 6: fused
// operators share segmented words, split lines, and other derived values
// through this cache instead of recomputing them.
func (s *Sample) Context(key string, compute func() any) any {
	if v, ok := s.ctx[key]; ok {
		return v
	}
	v := compute()
	if s.ctx == nil {
		s.ctx = make(map[string]any, 4)
	}
	s.ctx[key] = v
	return v
}

// HasContext reports whether key is currently cached.
func (s *Sample) HasContext(key string) bool {
	_, ok := s.ctx[key]
	return ok
}

// ClearContext drops all cached intermediates. The executor calls this
// after each (fused) operator so context management needs little extra
// memory, as described in Sec. 6.
func (s *Sample) ClearContext() { s.ctx = nil }

// ContextLen reports the number of cached intermediates (used by tests and
// the ablation benchmarks).
func (s *Sample) ContextLen() int { return len(s.ctx) }

// sampleJSON is the serialized wire form of a sample.
type sampleJSON struct {
	Text  string            `json:"text"`
	Parts map[string]string `json:"parts,omitempty"`
	Meta  Fields            `json:"meta,omitempty"`
	Stats Fields            `json:"stats,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(sampleJSON{Text: s.Text, Parts: s.Parts, Meta: s.Meta, Stats: s.Stats})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sample) UnmarshalJSON(b []byte) error {
	var j sampleJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	s.Text, s.Parts, s.Meta, s.Stats = j.Text, j.Parts, j.Meta, j.Stats
	s.ctx = nil
	return nil
}

// Fields is a nested string-keyed document supporting dotted-path access.
// A nil Fields behaves as an empty, read-only document; Set returns the
// (possibly newly allocated) map so callers can write through nil values.
type Fields map[string]any

// Get resolves a dotted path ("a.b.c") to its value.
func (f Fields) Get(path string) (any, bool) {
	if f == nil || path == "" {
		return nil, false
	}
	cur := f
	for {
		head, rest := splitPath(path)
		v, ok := cur[head]
		if !ok {
			return nil, false
		}
		if rest == "" {
			return v, true
		}
		next, ok := asFields(v)
		if !ok {
			return nil, false
		}
		cur, path = next, rest
	}
}

// Set writes value at a dotted path, creating intermediate maps, and
// returns the root map (allocating it if f was nil).
func (f Fields) Set(path string, value any) Fields {
	if f == nil {
		f = make(Fields, 4)
	}
	cur := f
	for {
		head, rest := splitPath(path)
		if rest == "" {
			cur[head] = value
			return f
		}
		next, ok := asFields(cur[head])
		if !ok {
			next = make(Fields, 2)
			cur[head] = next
		}
		cur, path = next, rest
	}
}

// Delete removes the value at a dotted path if present.
func (f Fields) Delete(path string) {
	if f == nil {
		return
	}
	head, rest := splitPath(path)
	if rest == "" {
		delete(f, head)
		return
	}
	if next, ok := asFields(f[head]); ok {
		next.Delete(rest)
	}
}

// Clone deep-copies the document. Nested Fields (and map[string]any) are
// copied recursively; slices are copied shallowly per element.
func (f Fields) Clone() Fields {
	if f == nil {
		return nil
	}
	c := make(Fields, len(f))
	for k, v := range f {
		if nested, ok := asFields(v); ok {
			c[k] = nested.Clone()
			continue
		}
		c[k] = v
	}
	return c
}

// Keys returns the sorted top-level keys, for deterministic iteration.
func (f Fields) Keys() []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func asFields(v any) (Fields, bool) {
	switch m := v.(type) {
	case Fields:
		return m, true
	case map[string]any:
		return Fields(m), true
	}
	return nil, false
}

func splitPath(path string) (head, rest string) {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i], path[i+1:]
	}
	return path, ""
}

func toString(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case int:
		return strconv.Itoa(x), true
	case bool:
		return strconv.FormatBool(x), true
	}
	return "", false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	case string:
		f, err := strconv.ParseFloat(x, 64)
		return f, err == nil
	}
	return 0, false
}
