package sample

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// This file holds the hand-rolled JSON fast path for the flat
// {text, parts, meta, stats} wire shape. The encoder is byte-identical
// to encoding/json marshalling of the former map-based representation
// (sorted object keys, HTML escaping, � coercion of invalid UTF-8,
// encoding/json's float formatting); the decoder commits only when it
// fully parses a line as strict JSON and otherwise defers to
// encoding/json, so error behavior and edge-case semantics are
// unchanged.

const hexDigits = "0123456789abcdef"

// appendJSONString appends the JSON encoding of s, replicating
// encoding/json's string escaping with HTML escaping on.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends the encoding/json representation of f.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, &json.UnsupportedValueError{Str: strconv.FormatFloat(f, 'g', -1, 64)}
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONValue appends the encoding/json representation of a decoded
// JSON value (the types json.Unmarshal into any produces, plus the few
// scalar Go types recipes and corpora feed into meta). Exotic types fall
// back to json.Marshal, which emits the identical bytes.
func appendJSONValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, "null"...), nil
	case string:
		return appendJSONString(dst, x), nil
	case float64:
		return appendJSONFloat(dst, x)
	case bool:
		if x {
			return append(dst, "true"...), nil
		}
		return append(dst, "false"...), nil
	case int:
		return strconv.AppendInt(dst, int64(x), 10), nil
	case int64:
		return strconv.AppendInt(dst, x, 10), nil
	case float32:
		return appendJSONFloat32(dst, x)
	case json.Number:
		if x == "" {
			return nil, &json.UnsupportedValueError{Str: "empty json.Number"}
		}
		return append(dst, x...), nil
	case Fields:
		return appendJSONObject(dst, x)
	case map[string]any:
		return appendJSONObject(dst, x)
	case []any:
		dst = append(dst, '[')
		for i, e := range x {
			if i > 0 {
				dst = append(dst, ',')
			}
			var err error
			if dst, err = appendJSONValue(dst, e); err != nil {
				return nil, err
			}
		}
		return append(dst, ']'), nil
	case []string:
		dst = append(dst, '[')
		for i, e := range x {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, e)
		}
		return append(dst, ']'), nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(dst, b...), nil
}

// appendJSONFloat32 matches encoding/json's 32-bit float formatting.
func appendJSONFloat32(dst []byte, f float32) ([]byte, error) {
	f64 := float64(f)
	if math.IsInf(f64, 0) || math.IsNaN(f64) {
		return nil, &json.UnsupportedValueError{Str: strconv.FormatFloat(f64, 'g', -1, 32)}
	}
	abs := math.Abs(f64)
	format := byte('f')
	if abs != 0 && (float32(abs) < 1e-6 || float32(abs) >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f64, format, -1, 32)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONObject appends a string-keyed map with sorted keys.
func appendJSONObject(dst []byte, m map[string]any) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		var err error
		if dst, err = appendJSONValue(dst, m[k]); err != nil {
			return nil, err
		}
	}
	return append(dst, '}'), nil
}

// AppendJSON appends the sample's wire-format JSON object to dst —
// byte-identical to encoding/json marshalling of the equivalent
// {text, parts, meta, stats} struct, without the reflection.
func (s *Sample) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"text":`...)
	dst = appendJSONString(dst, s.Text)
	if len(s.Parts) > 0 {
		dst = append(dst, `,"parts":`...)
		keys := make([]string, 0, len(s.Parts))
		for k := range s.Parts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = append(dst, '{')
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = appendJSONString(dst, s.Parts[k])
		}
		dst = append(dst, '}')
	}
	if len(s.Meta) > 0 {
		dst = append(dst, `,"meta":`...)
		var err error
		if dst, err = appendJSONObject(dst, s.Meta); err != nil {
			return nil, err
		}
	}
	if s.Stats.Len() > 0 {
		dst = append(dst, `,"stats":`...)
		var err error
		if dst, err = s.Stats.appendJSON(dst); err != nil {
			return nil, err
		}
	}
	return append(dst, '}'), nil
}

// AppendJSONAux appends the sample's non-text wire fields (parts, meta,
// stats) as one JSON object, or nothing at all when every field is
// absent. It is the aux column of the v2 dispatch frame: the text
// travels as a raw byte column, and the remainder decodes back through
// UnmarshalJSON (a missing "text" key leaves Text empty for the frame
// decoder to fill in from the text column).
func (s *Sample) AppendJSONAux(dst []byte) ([]byte, error) {
	if len(s.Parts) == 0 && len(s.Meta) == 0 && s.Stats.Len() == 0 {
		return dst, nil
	}
	dst = append(dst, '{')
	mark := len(dst)
	if len(s.Parts) > 0 {
		dst = append(dst, `"parts":{`...)
		keys := make([]string, 0, len(s.Parts))
		for k := range s.Parts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = appendJSONString(dst, s.Parts[k])
		}
		dst = append(dst, '}')
	}
	if len(s.Meta) > 0 {
		if len(dst) > mark {
			dst = append(dst, ',')
		}
		dst = append(dst, `"meta":`...)
		var err error
		if dst, err = appendJSONObject(dst, s.Meta); err != nil {
			return nil, err
		}
	}
	if s.Stats.Len() > 0 {
		if len(dst) > mark {
			dst = append(dst, ',')
		}
		dst = append(dst, `"stats":`...)
		var err error
		if dst, err = s.Stats.appendJSON(dst); err != nil {
			return nil, err
		}
	}
	return append(dst, '}'), nil
}

// AppendStatsJSON appends the sample's stats table as a flat sorted
// JSON object — the per-sample stats column of a delta response frame.
func (s *Sample) AppendStatsJSON(dst []byte) ([]byte, error) {
	return s.Stats.appendJSON(dst)
}

// DecodeStatsJSON replaces s.Stats with the stats object encoded in b.
// An empty b resets the table to zero (the delta frame elides the
// column for stat-less samples).
func (s *Sample) DecodeStatsJSON(b []byte) error {
	s.Stats = Stats{}
	if len(b) == 0 {
		return nil
	}
	scratchP := unquoteScratchPool.Get().(*[]byte)
	p := jsonParser{b: b, scratch: *scratchP}
	p.skipSpace()
	ok := !p.bad && p.peek() == '{' && decodeStatsInto(&p, s, false)
	if ok {
		p.skipSpace()
		ok = !p.bad && p.i == len(p.b)
	}
	*scratchP = p.scratch
	unquoteScratchPool.Put(scratchP)
	if ok {
		return nil
	}
	// Fall back to encoding/json for anything the strict parser rejects,
	// mirroring the Sample.UnmarshalJSON slow path.
	s.Stats = Stats{}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for k, v := range m {
		s.Stats.SetRaw(k, v)
	}
	return nil
}

// appendJSON appends the stats table as a flat sorted JSON object.
func (t *Stats) appendJSON(dst []byte) ([]byte, error) {
	if len(t.extra) == 0 {
		// Hot path: typed entries only, already sorted by name.
		dst = append(dst, '{')
		for i := range t.entries {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &t.entries[i]
			dst = appendJSONString(dst, e.key.Name())
			dst = append(dst, ':')
			if e.kind == statStr {
				dst = appendJSONString(dst, e.str)
				continue
			}
			var err error
			if dst, err = appendJSONFloat(dst, e.num); err != nil {
				return nil, err
			}
		}
		return append(dst, '}'), nil
	}
	dst = append(dst, '{')
	for i, k := range t.Keys() {
		if i > 0 {
			dst = append(dst, ',')
		}
		v, _ := t.Get(k)
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		var err error
		if dst, err = appendJSONValue(dst, v); err != nil {
			return nil, err
		}
	}
	return append(dst, '}'), nil
}

// ---------------------------------------------------------------------
// Decode fast path
// ---------------------------------------------------------------------

// jsonParser is a minimal strict JSON reader over one line. Any
// deviation from the JSON grammar aborts the fast path (the caller
// falls back to encoding/json, which re-parses and surfaces the
// canonical error), so the fast path never accepts input the slow path
// would reject.
type jsonParser struct {
	b   []byte
	i   int
	bad bool
	// scratch backs string unescaping.
	scratch []byte
}

func (p *jsonParser) fail() { p.bad = true }

func (p *jsonParser) skipSpace() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jsonParser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	p.fail()
	return 0
}

func (p *jsonParser) expect(c byte) {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return
	}
	p.fail()
}

func (p *jsonParser) literal(lit string) {
	if len(p.b)-p.i >= len(lit) && string(p.b[p.i:p.i+len(lit)]) == lit {
		p.i += len(lit)
		return
	}
	p.fail()
}

// str parses a JSON string, returning the decoded value. It replicates
// encoding/json's unquoting: standard escapes, \uXXXX with surrogate
// pairing (unpaired surrogates become U+FFFD), and coercion of invalid
// UTF-8 bytes to U+FFFD.
func (p *jsonParser) str() string {
	raw, s, simple := p.strRaw()
	if simple {
		return string(raw)
	}
	return s
}

// strRaw parses a JSON string without allocating when it needs no
// unescaping: simple=true means raw holds the value's bytes (valid only
// until the parser advances past them — callers either compare them in
// place or copy). Otherwise the decoded string is in s.
func (p *jsonParser) strRaw() (raw []byte, s string, simple bool) {
	if p.bad {
		return nil, "", false
	}
	p.expect('"')
	if p.bad {
		return nil, "", false
	}
	start := p.i
	// Fast scan: no escapes, no control bytes, valid UTF-8.
	for p.i < len(p.b) {
		b := p.b[p.i]
		if b == '"' {
			rb := p.b[start:p.i]
			p.i++
			if utf8.Valid(rb) {
				return rb, "", true
			}
			// Invalid UTF-8 without escapes: coerce via the slow loop.
			p.i = start
			return nil, p.strSlow(start), false
		}
		if b == '\\' || b < 0x20 {
			return nil, p.strSlow(start), false
		}
		p.i++
	}
	p.fail()
	return nil, "", false
}

// strSlow finishes parsing a string that needs unescaping or UTF-8
// coercion; p.i sits anywhere at or after start (inside the string).
func (p *jsonParser) strSlow(start int) string {
	out := p.scratch[:0]
	out = append(out, p.b[start:p.i]...)
	for p.i < len(p.b) {
		b := p.b[p.i]
		switch {
		case b == '"':
			p.i++
			p.scratch = out
			return string(out)
		case b == '\\':
			p.i++
			if p.i >= len(p.b) {
				p.fail()
				return ""
			}
			switch e := p.b[p.i]; e {
			case '"', '\\', '/':
				out = append(out, e)
				p.i++
			case 'b':
				out = append(out, '\b')
				p.i++
			case 'f':
				out = append(out, '\f')
				p.i++
			case 'n':
				out = append(out, '\n')
				p.i++
			case 'r':
				out = append(out, '\r')
				p.i++
			case 't':
				out = append(out, '\t')
				p.i++
			case 'u':
				p.i++
				r := p.hex4()
				if p.bad {
					return ""
				}
				if utf16.IsSurrogate(r) {
					if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
						save := p.i
						p.i += 2
						r2 := p.hex4()
						if p.bad {
							return ""
						}
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							out = utf8.AppendRune(out, dec)
							break
						}
						p.i = save // second escape not a pairing low surrogate
					}
					out = utf8.AppendRune(out, utf8.RuneError)
					break
				}
				out = utf8.AppendRune(out, r)
			default:
				p.fail()
				return ""
			}
		case b < 0x20:
			p.fail()
			return ""
		case b < utf8.RuneSelf:
			out = append(out, b)
			p.i++
		default:
			r, size := utf8.DecodeRune(p.b[p.i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				p.i++
				break
			}
			out = append(out, p.b[p.i:p.i+size]...)
			p.i += size
		}
	}
	p.fail()
	return ""
}

func (p *jsonParser) hex4() rune {
	if p.i+4 > len(p.b) {
		p.fail()
		return 0
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := p.b[p.i+k]
		switch {
		case '0' <= c && c <= '9':
			r = r<<4 | rune(c-'0')
		case 'a' <= c && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case 'A' <= c && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			p.fail()
			return 0
		}
	}
	p.i += 4
	return r
}

// number parses a JSON number with strict grammar validation and returns
// it as float64, exactly as json.Unmarshal into any would.
func (p *jsonParser) number() float64 {
	start := p.i
	if p.i < len(p.b) && p.b[p.i] == '-' {
		p.i++
	}
	switch {
	case p.i < len(p.b) && p.b[p.i] == '0':
		p.i++
	case p.i < len(p.b) && '1' <= p.b[p.i] && p.b[p.i] <= '9':
		for p.i < len(p.b) && '0' <= p.b[p.i] && p.b[p.i] <= '9' {
			p.i++
		}
	default:
		p.fail()
		return 0
	}
	if p.i < len(p.b) && p.b[p.i] == '.' {
		p.i++
		if p.i >= len(p.b) || p.b[p.i] < '0' || p.b[p.i] > '9' {
			p.fail()
			return 0
		}
		for p.i < len(p.b) && '0' <= p.b[p.i] && p.b[p.i] <= '9' {
			p.i++
		}
	}
	if p.i < len(p.b) && (p.b[p.i] == 'e' || p.b[p.i] == 'E') {
		p.i++
		if p.i < len(p.b) && (p.b[p.i] == '+' || p.b[p.i] == '-') {
			p.i++
		}
		if p.i >= len(p.b) || p.b[p.i] < '0' || p.b[p.i] > '9' {
			p.fail()
			return 0
		}
		for p.i < len(p.b) && '0' <= p.b[p.i] && p.b[p.i] <= '9' {
			p.i++
		}
	}
	f, err := strconv.ParseFloat(string(p.b[start:p.i]), 64)
	if err != nil {
		// Out-of-range numbers error under encoding/json too; let the
		// slow path produce the canonical error.
		p.fail()
		return 0
	}
	return f
}

const maxFastDepth = 32

// value parses any JSON value into the types json.Unmarshal into any
// produces (map[string]any, []any, string, float64, bool, nil).
func (p *jsonParser) value(depth int) any {
	if p.bad || depth > maxFastDepth {
		p.fail()
		return nil
	}
	p.skipSpace()
	switch c := p.peek(); {
	case c == '"':
		return p.str()
	case c == '{':
		p.i++
		m := map[string]any{}
		p.skipSpace()
		if p.peek() == '}' {
			p.i++
			return m
		}
		for {
			p.skipSpace()
			k := p.str()
			p.skipSpace()
			p.expect(':')
			v := p.value(depth + 1)
			if p.bad {
				return nil
			}
			m[k] = v
			p.skipSpace()
			if p.peek() == ',' {
				p.i++
				continue
			}
			p.expect('}')
			return m
		}
	case c == '[':
		p.i++
		p.skipSpace()
		if p.peek() == ']' {
			p.i++
			return []any{}
		}
		var arr []any
		for {
			v := p.value(depth + 1)
			if p.bad {
				return nil
			}
			arr = append(arr, v)
			p.skipSpace()
			if p.peek() == ',' {
				p.i++
				continue
			}
			p.expect(']')
			return arr
		}
	case c == 't':
		p.literal("true")
		return true
	case c == 'f':
		p.literal("false")
		return false
	case c == 'n':
		p.literal("null")
		return nil
	case c == '-' || ('0' <= c && c <= '9'):
		return p.number()
	}
	p.fail()
	return nil
}

// unquoteScratchPool recycles the string-unescape buffers across lines.
var unquoteScratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// decodeWireFast parses a wire-shaped JSONL object into s without
// reflection. It returns false (leaving s in an undefined state the
// caller must overwrite via the slow path) when the line is not a clean
// flat object.
func decodeWireFast(b []byte, s *Sample) bool {
	scratchP := unquoteScratchPool.Get().(*[]byte)
	p := jsonParser{b: b, scratch: *scratchP}
	*s = Sample{}
	ok := decodeObjectInto(&p, s, false)
	*scratchP = p.scratch
	unquoteScratchPool.Put(scratchP)
	if !ok {
		*s = Sample{}
		return false
	}
	return true
}

// DecodeLooseJSON parses one JSON object into s with the loose
// unification semantics of the format layer: "content" aliases text,
// nested text parts are lifted, and foreign top-level fields fold into
// meta. It returns false when the fast path cannot be used; the caller
// then falls back to its map-based decode.
func DecodeLooseJSON(b []byte, s *Sample) bool {
	scratchP := unquoteScratchPool.Get().(*[]byte)
	p := jsonParser{b: b, scratch: *scratchP}
	*s = Sample{}
	ok := decodeObjectInto(&p, s, true)
	*scratchP = p.scratch
	unquoteScratchPool.Put(scratchP)
	if !ok {
		*s = Sample{}
		return false
	}
	return true
}

// decodeObjectInto parses {key: value, ...} into s. In loose mode,
// foreign keys fold into meta and "content" aliases "text"; in wire
// mode, foreign keys are skipped (encoding/json struct semantics).
func decodeObjectInto(p *jsonParser, s *Sample, loose bool) bool {
	p.skipSpace()
	p.expect('{')
	if p.bad {
		return false
	}
	p.skipSpace()
	if !p.bad && p.peek() == '}' {
		p.i++
	} else {
		for {
			p.skipSpace()
			kraw, kstr, ksimple := p.strRaw()
			k := kstr
			if ksimple {
				// Known keys dispatch on the raw bytes without a copy;
				// the comparisons below compile to allocation-free
				// []byte-vs-literal equality.
				switch {
				case string(kraw) == "text":
					k = "text"
				case string(kraw) == "parts":
					k = "parts"
				case string(kraw) == "meta":
					k = "meta"
				case string(kraw) == "stats":
					k = "stats"
				case loose && string(kraw) == "content":
					k = "content"
				default:
					k = string(kraw)
				}
			}
			p.skipSpace()
			p.expect(':')
			p.skipSpace()
			if p.bad {
				return false
			}
			switch {
			case k == "text" || (loose && k == "content"):
				switch p.peek() {
				case '"':
					s.Text = p.str()
				case 'n':
					p.literal("null")
				case '{':
					if !loose {
						return false // wire "text" must be a string
					}
					// Nested text parts: {"text": {"body": ..., "abstract": ...}}
					m, ok := p.value(0).(map[string]any)
					if !ok {
						return false
					}
					for part, pv := range m {
						str, _ := pv.(string)
						if part == "body" || part == "main" {
							s.Text = str
							continue
						}
						if s.Parts == nil {
							s.Parts = map[string]string{}
						}
						s.Parts[part] = str
					}
				default:
					if loose {
						// Foreign-typed text is ignored by the loose
						// unifier (non-string, non-object values).
						p.value(0)
					} else {
						return false
					}
				}
			case k == "parts":
				switch p.peek() {
				case 'n':
					p.literal("null")
				case '{':
					m, ok := p.value(0).(map[string]any)
					if !ok {
						return false
					}
					for part, pv := range m {
						str, ok := pv.(string)
						if !ok {
							if loose {
								continue // loose mode drops non-string parts
							}
							return false // wire parts must be strings
						}
						if s.Parts == nil {
							s.Parts = map[string]string{}
						}
						s.Parts[part] = str
					}
				default:
					if loose {
						p.value(0)
					} else {
						return false
					}
				}
			case k == "meta":
				switch p.peek() {
				case 'n':
					p.literal("null")
				case '{':
					if !decodeMetaInto(p, s, loose) {
						return false
					}
				default:
					if loose {
						p.value(0)
					} else {
						return false
					}
				}
			case k == "stats":
				switch p.peek() {
				case 'n':
					p.literal("null")
				case '{':
					if !decodeStatsInto(p, s, loose) {
						return false
					}
				default:
					if loose {
						p.value(0)
					} else {
						return false
					}
				}
			default:
				v := p.value(0)
				if p.bad {
					return false
				}
				if loose {
					// Foreign fields become metadata.
					s.Meta = s.Meta.Set(k, v)
				}
			}
			if p.bad {
				return false
			}
			p.skipSpace()
			if p.bad {
				return false
			}
			if p.peek() == ',' {
				p.i++
				continue
			}
			p.expect('}')
			break
		}
	}
	if p.bad {
		return false
	}
	p.skipSpace()
	return p.i == len(p.b)
}

// decodeMetaInto parses the meta object (p sits on '{'). Wire mode
// stores keys literally (matching json.Unmarshal into the map); loose
// mode routes through Fields.Set, which splits dotted keys into nested
// documents — the format layer's historical unification semantics.
func decodeMetaInto(p *jsonParser, s *Sample, loose bool) bool {
	p.i++
	p.skipSpace()
	if p.bad {
		return false
	}
	if p.peek() == '}' {
		p.i++
		return true
	}
	for {
		p.skipSpace()
		k := p.str()
		p.skipSpace()
		p.expect(':')
		v := p.value(1)
		if p.bad {
			return false
		}
		if loose {
			s.Meta = s.Meta.Set(k, v)
		} else {
			if s.Meta == nil {
				s.Meta = make(Fields, 4)
			}
			s.Meta[k] = v
		}
		p.skipSpace()
		if p.bad {
			return false
		}
		if p.peek() == ',' {
			p.i++
			continue
		}
		p.expect('}')
		return !p.bad
	}
}

// decodeStatsInto parses the stats object (p sits on '{'): scalar values
// land in the typed table, anything else goes through the overflow
// document. Wire mode keeps keys literal (JSON-decode semantics); loose
// mode routes through Stats.Set, which splits dotted keys like the
// format layer's historical map fold did.
func decodeStatsInto(p *jsonParser, s *Sample, loose bool) bool {
	p.i++
	p.skipSpace()
	if p.bad {
		return false
	}
	if p.peek() == '}' {
		p.i++
		return true
	}
	for {
		p.skipSpace()
		kraw, kstr, ksimple := p.strRaw()
		// Interned stat names (every filter-written stat) resolve to
		// their typed key straight off the raw bytes — no string copy.
		var key StatKey
		haveKey := false
		if ksimple {
			if id, ok := statKeyIDs()[string(kraw)]; ok && !hasDotBytes(kraw) {
				key, haveKey = id, true
			} else {
				kstr = string(kraw)
			}
		}
		k := kstr
		p.skipSpace()
		p.expect(':')
		p.skipSpace()
		if p.bad {
			return false
		}
		switch c := p.peek(); {
		case c == '"':
			v := p.str()
			if p.bad {
				return false
			}
			if haveKey {
				s.Stats.SetString(key, v)
			} else {
				s.statsDecodeSet(k, v, loose)
			}
		case c == '-' || ('0' <= c && c <= '9'):
			v := p.number()
			if p.bad {
				return false
			}
			if haveKey {
				s.Stats.SetFloat(key, v)
			} else {
				s.statsDecodeSet(k, v, loose)
			}
		default:
			v := p.value(1)
			if p.bad {
				return false
			}
			if haveKey {
				s.Stats.SetRaw(key.Name(), v)
			} else {
				s.statsDecodeSet(k, v, loose)
			}
		}
		p.skipSpace()
		if p.bad {
			return false
		}
		if p.peek() == ',' {
			p.i++
			continue
		}
		p.expect('}')
		return !p.bad
	}
}

// statsDecodeSet routes one decoded stat to the right Set semantics.
func (s *Sample) statsDecodeSet(k string, v any, loose bool) {
	if loose {
		s.Stats.Set(k, v)
		return
	}
	s.Stats.SetRaw(k, v)
}

// hasDotBytes reports whether b contains a '.' — dotted stat keys take
// the name-based path, whose wire semantics differ per decode mode.
func hasDotBytes(b []byte) bool {
	for _, c := range b {
		if c == '.' {
			return true
		}
	}
	return false
}
