package sample

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// refSampleJSON is the former reflection-based wire struct; the fast
// encoder must be byte-identical to encoding/json marshalling of it.
type refSampleJSON struct {
	Text  string            `json:"text"`
	Parts map[string]string `json:"parts,omitempty"`
	Meta  map[string]any    `json:"meta,omitempty"`
	Stats map[string]any    `json:"stats,omitempty"`
}

func refMarshal(t *testing.T, s *Sample) []byte {
	t.Helper()
	ref := refSampleJSON{Text: s.Text, Parts: s.Parts, Meta: s.Meta}
	if s.Stats.Len() > 0 {
		ref.Stats = map[string]any{}
		s.Stats.Range(func(name string, v any) bool { ref.Stats[name] = v; return true })
	}
	b, err := json.Marshal(ref)
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	return b
}

func checkEncodeMatches(t *testing.T, s *Sample) {
	t.Helper()
	got, err := s.AppendJSON(nil)
	if err != nil {
		t.Fatalf("AppendJSON: %v", err)
	}
	want := refMarshal(t, s)
	if string(got) != string(want) {
		t.Fatalf("fast encode diverges from encoding/json:\n fast: %s\n json: %s", got, want)
	}
}

func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	cases := []*Sample{
		New(""),
		New("plain text"),
		New("escapes \" \\ \n \r \t \x00 \x1f and html <b>&amp;</b>"),
		New("unicode \u00e9 \u4e16\u754c \U0001F600 and seps \u2028\u2029"),
		New("invalid utf8 \xff\xfe trailing"),
		func() *Sample {
			s := New("full")
			s.SetString("text.abstract", "short <a>")
			s.SetString("meta.source", "web & co")
			s.SetString("meta.nested.deep", "v")
			s.Meta = s.Meta.Set("num", 3.75)
			s.Meta = s.Meta.Set("int", 42)
			s.Meta = s.Meta.Set("flag", true)
			s.Meta = s.Meta.Set("none", nil)
			s.Meta = s.Meta.Set("list", []any{"a", 1.5, false, nil, map[string]any{"k": "v"}})
			s.SetStat("word_count", 42)
			s.SetStat("ratio", 0.3333333333333333)
			s.SetStat("tiny", 5e-7)
			s.SetStat("huge", 1.5e21)
			s.SetStat("neg", -0.0)
			s.SetStatString("lang", "en")
			s.Stats.SetRaw("weird.key", 1.0)
			s.Stats.SetRaw("obj", map[string]any{"b": []any{1.0, "x"}})
			return s
		}(),
	}
	for i, s := range cases {
		t.Run(fmt.Sprint(i), func(t *testing.T) { checkEncodeMatches(t, s) })
	}
}

func TestAppendJSONFloatsMatch(t *testing.T) {
	vals := []float64{0, -0.0, 1, -1, 0.1, 1e-6, 9.999999e-7, 1e-7, 1e20,
		1e21, 9.99e20, 1.7976931348623157e308, 5e-324, 123456789.123456789,
		3, 1e9, 2.5e-8}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		vals = append(vals, math.Float64frombits(rng.Uint64()))
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		got, err := appendJSONFloat(nil, v)
		if err != nil {
			t.Fatalf("appendJSONFloat(%v): %v", v, err)
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("float %v: fast %q, encoding/json %q", v, got, want)
		}
	}
}

func TestAppendJSONRejectsNaN(t *testing.T) {
	s := New("x")
	s.SetStat("bad", math.NaN())
	if _, err := s.AppendJSON(nil); err == nil {
		t.Fatal("NaN stat must fail to encode, as under encoding/json")
	}
}

// TestPropertyAppendJSONMatches cross-checks the fast encoder against
// encoding/json on arbitrary text, parts, meta and stats content.
func TestPropertyAppendJSONMatches(t *testing.T) {
	f := func(text, pk, pv, mk, statStrV string, mv float64, statN float64) bool {
		s := New(text)
		if pk != "" {
			s.Parts = map[string]string{pk: pv}
		}
		if mk != "" {
			s.Meta = s.Meta.Set(mk, mv)
		}
		if math.IsNaN(mv) || math.IsInf(mv, 0) || math.IsNaN(statN) || math.IsInf(statN, 0) {
			return true
		}
		s.SetStat("n", statN)
		s.SetStatString("s", statStrV)
		got, err := s.AppendJSON(nil)
		if err != nil {
			return false
		}
		return string(got) == string(refMarshal(t, s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeFastMatchesSlow feeds wire lines through both the fast
// parser and encoding/json and requires identical re-encoded bytes.
func TestDecodeFastMatchesSlow(t *testing.T) {
	lines := []string{
		`{}`,
		`{"text":"hello"}`,
		`{"text":"esc \" \\ \n \u0041 \u00e9 \ud83d\ude00"}`,
		`{"text":"a","parts":{"abstract":"b"},"meta":{"k":"v","n":1.5,"nested":{"x":1},"arr":[1,"a",null,true]},"stats":{"wc":3,"lang":"en","flag":true}}`,
		`{"text":"a","meta":null,"stats":null,"parts":null}`,
		`{"text":"a","unknown":{"deep":[1,2,{"x":"y"}]}}`,
		`{"text":"dup","text":"wins"}`,
		`{ "text" : "spaced" , "stats" : { "a" : 2 } }`,
		`{"text":"num edge","stats":{"z":0,"a":-0.5,"e":1e3,"tiny":5e-7,"big":2e21}}`,
		`{"text":"dotted","stats":{"a.b":1},"meta":{"c.d":2}}`,
		`{"stats":{"s":"v","s":3}}`,
	}
	for i, line := range lines {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			var fast Sample
			ok := decodeWireFast([]byte(line), &fast)
			var slow Sample
			if err := slow.unmarshalSlow([]byte(line)); err != nil {
				t.Fatalf("slow decode: %v", err)
			}
			if !ok {
				t.Fatalf("fast path rejected valid wire line %q", line)
			}
			fb, err := fast.AppendJSON(nil)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := slow.AppendJSON(nil)
			if err != nil {
				t.Fatal(err)
			}
			if string(fb) != string(sb) {
				t.Fatalf("decode divergence on %q:\n fast: %s\n slow: %s", line, fb, sb)
			}
		})
	}
}

// TestDecodeFastRejectsInvalid: every line encoding/json rejects must be
// rejected (not silently accepted) by the fast parser too.
func TestDecodeFastRejectsInvalid(t *testing.T) {
	lines := []string{
		``, `{`, `}`, `[]`, `"s"`, `42`, `null`,
		`{"text":}`, `{"text":"a"`, `{"text":"a"}}`, `{"text":"a"} x`,
		`{"text":01}`, `{"stats":{"a":1.}}`, `{"stats":{"a":+1}}`,
		`{"stats":{"a":1e}}`, `{"stats":{"a":--1}}`,
		`{"text":"a",}`, `{,"text":"a"}`, `{"text" "a"}`,
		`{"text":"a" "b":1}`, `{"text":"bad esc \q"}`,
		`{"text":"ctrl ` + "\x01" + `"}`, `{"stats":{"a":1e999}}`,
		`{"text":tru}`, `{"text":"a","stats":[1]}`,
	}
	for i, line := range lines {
		t.Run(fmt.Sprint(i), func(t *testing.T) {
			var slow Sample
			slowErr := slow.unmarshalSlow([]byte(line))
			var fast Sample
			ok := decodeWireFast([]byte(line), &fast)
			if ok && slowErr != nil {
				t.Fatalf("fast path accepted %q which encoding/json rejects (%v)", line, slowErr)
			}
		})
	}
}

// TestPropertyDecodeRoundTrip: encode → fast decode → encode is stable
// for random samples, and fast decode equals slow decode.
func TestPropertyDecodeRoundTrip(t *testing.T) {
	f := func(text, metaK, metaV, lang string, n float64) bool {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return true
		}
		s := New(text)
		if metaK != "" && !strings.Contains(metaK, ".") {
			s.Meta = s.Meta.Set(metaK, metaV)
		}
		s.SetStat("n", n)
		s.SetStatString("lang", lang)
		b, err := s.AppendJSON(nil)
		if err != nil {
			return false
		}
		var fast Sample
		if !decodeWireFast(b, &fast) {
			return false
		}
		var slow Sample
		if err := slow.unmarshalSlow(b); err != nil {
			return false
		}
		fb, err1 := fast.AppendJSON(nil)
		sb, err2 := slow.AppendJSON(nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return string(fb) == string(b) && string(sb) == string(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsTypedTable(t *testing.T) {
	var st Stats
	st.SetFloat(InternStatKey("b"), 2)
	st.SetFloat(InternStatKey("a"), 1)
	st.SetString(InternStatKey("c"), "x")
	if got := st.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v", got)
	}
	if v, ok := st.Float(InternStatKey("a")); !ok || v != 1 {
		t.Fatalf("Float(a) = %v %v", v, ok)
	}
	if v, ok := st.String(InternStatKey("c")); !ok || v != "x" {
		t.Fatalf("String(c) = %v %v", v, ok)
	}
	// Overwrite switches kind.
	st.SetString(InternStatKey("a"), "now-string")
	if _, ok := st.Float(InternStatKey("a")); ok {
		t.Fatal("a should no longer read as a float")
	}
	st.Delete("b")
	if st.Len() != 2 {
		t.Fatalf("Len = %d after delete", st.Len())
	}
	st.Reset()
	if st.Len() != 0 {
		t.Fatalf("Len = %d after reset", st.Len())
	}
}

func TestStatsOverflowValues(t *testing.T) {
	var st Stats
	st.Set("flat", 1.0)
	st.Set("nested.path", 2.0) // dotted Set nests, as Fields did
	st.SetRaw("lit.key", 3.0)  // decode keeps keys literal
	st.Set("obj", map[string]any{"x": 1.0})
	b, err := (&Sample{Text: "t", Stats: st}).AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"text":"t","stats":{"flat":1,"lit.key":3,"nested":{"path":2},"obj":{"x":1}}}`
	if string(b) != want {
		t.Fatalf("stats wire =\n %s\nwant\n %s", b, want)
	}
	if v, ok := st.Get("nested.path"); !ok || v != 2.0 {
		t.Fatalf("Get(nested.path) = %v %v", v, ok)
	}
	if v, ok := st.Get("lit.key"); !ok || v != 3.0 {
		t.Fatalf("Get(lit.key) = %v %v", v, ok)
	}
}

func TestInternStatKeyStable(t *testing.T) {
	k1 := InternStatKey("json_test_key_alpha")
	k2 := InternStatKey("json_test_key_alpha")
	if k1 != k2 {
		t.Fatal("interning must be stable")
	}
	if k1.Name() != "json_test_key_alpha" {
		t.Fatalf("Name = %q", k1.Name())
	}
	if _, ok := LookupStatKey("json_test_never_interned"); ok {
		t.Fatal("LookupStatKey must not register")
	}
}

// TestStatFloatCoercesStringValues pins the historical accessor
// semantics: a string-valued stat holding a parseable number reads as a
// float, whether it lives in the typed vector or the overflow document.
func TestStatFloatCoercesStringValues(t *testing.T) {
	s := New("x")
	s.SetStatString("score_interned", "3.5")
	if v, ok := s.Stat("score_interned"); !ok || v != 3.5 {
		t.Fatalf("typed string stat coercion = %v, %v", v, ok)
	}
	s.Stats.SetRaw("score_overflow_only", "2.25") // not interned anywhere
	if v, ok := s.Stat("score_overflow_only"); !ok || v != 2.25 {
		t.Fatalf("overflow string stat coercion = %v, %v", v, ok)
	}
	if v, ok := s.GetFloat("stats.score_interned"); !ok || v != 3.5 {
		t.Fatalf("GetFloat coercion = %v, %v", v, ok)
	}
}

// TestDataDependentStatKeysDoNotIntern: stat names arriving from data
// (decode, SetRaw, reads) must not grow the global intern table — only
// operator construction (InternStatKey / SetStat) registers names.
func TestDataDependentStatKeysDoNotIntern(t *testing.T) {
	var s Sample
	line := []byte(`{"text":"a","stats":{"per_doc_key_xyz_123":1}}`)
	if err := s.UnmarshalJSON(line); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupStatKey("per_doc_key_xyz_123"); ok {
		t.Fatal("decoding a foreign stat key must not intern it")
	}
	if v, ok := s.Stat("per_doc_key_xyz_123"); !ok || v != 1 {
		t.Fatalf("foreign stat unreadable: %v, %v", v, ok)
	}
	if _, ok := LookupStatKey("per_doc_key_xyz_123"); ok {
		t.Fatal("reading a stat must not intern its name")
	}
	// Round-trips through the wire unchanged.
	b, err := s.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(line) {
		t.Fatalf("wire round-trip changed: %s", b)
	}
}

// TestContextStandardKeyForeignValue: storing a non-[]string value
// under a standard context key is legal and lands in the generic map.
func TestContextStandardKeyForeignValue(t *testing.T) {
	s := New("x")
	v := s.Context("words", func() any { return 42 })
	if v != 42 {
		t.Fatalf("Context returned %v", v)
	}
	if got := s.Context("words", func() any { t.Fatal("recompute"); return nil }); got != 42 {
		t.Fatalf("memoization lost: %v", got)
	}
	if !s.HasContext("words") || s.ContextLen() != 1 {
		t.Fatalf("HasContext/ContextLen wrong: %v %d", s.HasContext("words"), s.ContextLen())
	}
	s.ClearContext()
	if s.HasContext("words") {
		t.Fatal("ClearContext missed the generic map")
	}
}
