package sample

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestGetSetText(t *testing.T) {
	s := New("hello")
	if got, ok := s.GetString("text"); !ok || got != "hello" {
		t.Fatalf("GetString(text) = %q, %v", got, ok)
	}
	if err := s.SetString("text", "world"); err != nil {
		t.Fatal(err)
	}
	if s.Text != "world" {
		t.Fatalf("Text = %q, want world", s.Text)
	}
}

func TestTextParts(t *testing.T) {
	s := New("body")
	if err := s.SetString("text.abstract", "short"); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetString("text.abstract"); !ok || got != "short" {
		t.Fatalf("GetString(text.abstract) = %q, %v", got, ok)
	}
	if got, ok := s.GetString("text"); !ok || got != "body" {
		t.Fatalf("primary text clobbered: %q, %v", got, ok)
	}
	if _, ok := s.GetString("text.missing"); ok {
		t.Fatal("missing part should not resolve")
	}
}

func TestMetaNestedPaths(t *testing.T) {
	s := New("x")
	if err := s.SetString("meta.source.name", "wiki"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetString("meta.source.lang", "en"); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetString("meta.source.name"); !ok || got != "wiki" {
		t.Fatalf("nested meta = %q, %v", got, ok)
	}
	if got, ok := s.GetString("meta.source.lang"); !ok || got != "en" {
		t.Fatalf("nested meta sibling = %q, %v", got, ok)
	}
	if _, ok := s.GetString("meta.source.name.deeper"); ok {
		t.Fatal("path through a leaf should not resolve")
	}
}

func TestStats(t *testing.T) {
	s := New("x")
	s.SetStat("word_count", 42)
	if got, ok := s.Stat("word_count"); !ok || got != 42 {
		t.Fatalf("Stat = %v, %v", got, ok)
	}
	if got, ok := s.GetFloat("stats.word_count"); !ok || got != 42 {
		t.Fatalf("GetFloat(stats.word_count) = %v, %v", got, ok)
	}
	s.SetStatString("lang", "en")
	if got, ok := s.StatString("lang"); !ok || got != "en" {
		t.Fatalf("StatString = %q, %v", got, ok)
	}
	if _, ok := s.Stat("missing"); ok {
		t.Fatal("missing stat should not resolve")
	}
}

func TestUnknownRoot(t *testing.T) {
	s := New("x")
	if err := s.SetString("bogus.path", "v"); err == nil {
		t.Fatal("SetString on unknown root should error")
	}
	if _, ok := s.GetString("bogus"); ok {
		t.Fatal("GetString on unknown root should fail")
	}
	if _, ok := s.GetFloat("text"); ok {
		t.Fatal("GetFloat on text root should fail")
	}
}

func TestContextMemoization(t *testing.T) {
	s := New("a b c")
	calls := 0
	f := func() any { calls++; return []string{"a", "b", "c"} }
	v1 := s.Context("words", f)
	v2 := s.Context("words", f)
	if calls != 1 {
		t.Fatalf("compute called %d times, want 1", calls)
	}
	if len(v1.([]string)) != 3 || len(v2.([]string)) != 3 {
		t.Fatal("context value corrupted")
	}
	if !s.HasContext("words") {
		t.Fatal("HasContext should be true")
	}
	s.ClearContext()
	if s.HasContext("words") || s.ContextLen() != 0 {
		t.Fatal("ClearContext did not clear")
	}
	s.Context("words", f)
	if calls != 2 {
		t.Fatalf("compute after clear called %d times total, want 2", calls)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("orig")
	s.SetString("text.part", "p")
	s.SetString("meta.a.b", "v")
	s.SetStat("n", 1)
	s.Context("w", func() any { return 1 })

	c := s.Clone()
	c.Text = "changed"
	c.SetString("text.part", "p2")
	c.SetString("meta.a.b", "v2")
	c.SetStat("n", 2)

	if s.Text != "orig" {
		t.Fatal("clone shares Text")
	}
	if got, _ := s.GetString("text.part"); got != "p" {
		t.Fatal("clone shares Parts")
	}
	if got, _ := s.GetString("meta.a.b"); got != "v" {
		t.Fatal("clone shares Meta")
	}
	if got, _ := s.Stat("n"); got != 1 {
		t.Fatal("clone shares Stats")
	}
	if c.HasContext("w") {
		t.Fatal("clone must start with cold context")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New("body text")
	s.SetString("text.title", "T")
	s.SetString("meta.src", "web")
	s.SetStat("len", 9)
	s.SetStatString("lang", "en")

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Sample
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Text != s.Text {
		t.Fatalf("text round trip: %q", got.Text)
	}
	if v, _ := got.GetString("text.title"); v != "T" {
		t.Fatalf("parts round trip: %q", v)
	}
	if v, _ := got.GetString("meta.src"); v != "web" {
		t.Fatalf("meta round trip: %q", v)
	}
	if v, ok := got.Stat("len"); !ok || v != 9 {
		t.Fatalf("numeric stat round trip: %v %v", v, ok)
	}
	if v, _ := got.StatString("lang"); v != "en" {
		t.Fatalf("string stat round trip: %q", v)
	}
}

func TestFieldsNilSafety(t *testing.T) {
	var f Fields
	if _, ok := f.Get("a"); ok {
		t.Fatal("nil Fields Get should fail")
	}
	f.Delete("a") // must not panic
	if c := f.Clone(); c != nil {
		t.Fatal("nil Clone should be nil")
	}
	f = f.Set("a.b", 1)
	if v, ok := f.Get("a.b"); !ok || v != 1 {
		t.Fatalf("Set through nil = %v, %v", v, ok)
	}
}

func TestFieldsOverwriteLeafWithMap(t *testing.T) {
	f := Fields{}.Set("a", "leaf")
	f = f.Set("a.b", "v")
	if v, ok := f.Get("a.b"); !ok || v != "v" {
		t.Fatalf("overwriting a leaf with a nested path failed: %v %v", v, ok)
	}
}

func TestFieldsKeysSorted(t *testing.T) {
	f := Fields{"z": 1, "a": 2, "m": 3}
	keys := f.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestToFloatConversions(t *testing.T) {
	s := New("x")
	s.Meta = s.Meta.Set("n_int", 7)
	s.Meta = s.Meta.Set("n_str", "3.5")
	s.Meta = s.Meta.Set("n_i64", int64(9))
	if v, ok := s.GetFloat("meta.n_int"); !ok || v != 7 {
		t.Fatalf("int: %v %v", v, ok)
	}
	if v, ok := s.GetFloat("meta.n_str"); !ok || v != 3.5 {
		t.Fatalf("string: %v %v", v, ok)
	}
	if v, ok := s.GetFloat("meta.n_i64"); !ok || v != 9 {
		t.Fatalf("int64: %v %v", v, ok)
	}
}

// Property: for any path segments and string value, SetString then
// GetString on meta round-trips.
func TestPropertyMetaRoundTrip(t *testing.T) {
	f := func(a, b uint8, val string) bool {
		path := "meta.k" + string(rune('a'+a%26)) + ".k" + string(rune('a'+b%26))
		s := New("x")
		if err := s.SetString(path, val); err != nil {
			return false
		}
		got, ok := s.GetString(path)
		return ok && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round-trip preserves text for arbitrary strings.
func TestPropertyJSONTextRoundTrip(t *testing.T) {
	f := func(text string) bool {
		s := New(text)
		b, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var got Sample
		if err := json.Unmarshal(b, &got); err != nil {
			return false
		}
		return got.Text == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
