package sample

import "sync"

// Scratch is a per-worker bundle of reusable token buffers backing the
// typed context slots. The executor attaches one scratch to each sample
// it is about to process (AttachScratch) and the context accessors fill
// the slots through TokenBuf/StoreTokens, so steady-state tokenization
// allocates nothing: the same backing arrays are recycled sample after
// sample.
//
// A scratch may back at most one sample at a time; ClearContext detaches
// it. Not safe for concurrent use.
type Scratch struct {
	bufs [numCtxSlots][]string
}

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GetScratch returns a pooled scratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns sc to the pool, clearing parked token substrings so
// they don't pin their source texts alive.
func PutScratch(sc *Scratch) {
	for i := range sc.bufs {
		b := sc.bufs[i][:cap(sc.bufs[i])]
		for j := range b {
			b[j] = ""
		}
		sc.bufs[i] = b[:0]
	}
	scratchPool.Put(sc)
}
