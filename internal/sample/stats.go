package sample

import (
	"sort"
	"sync"
	"sync/atomic"
)

// StatKey is an interned per-sample statistic name. Filters intern their
// StatKeys() once at build time; the hot path then carries small integer
// keys instead of hashing strings into a map per sample.
type StatKey int32

// statKeyTable is the global intern table: a mutex serializes (rare)
// registration, while both directions — name → id and id → name — are
// copy-on-write snapshots read through atomics, so hot-path lookups
// (decode, encode, fingerprinting) never lock.
var statKeyTable = struct {
	sync.Mutex
	ids   atomic.Value // map[string]StatKey, copy-on-write
	names atomic.Value // []string, copy-on-write
}{}

func init() {
	statKeyTable.ids.Store(map[string]StatKey{})
	statKeyTable.names.Store([]string(nil))
}

// statKeyIDs returns the current name → id snapshot (read-only).
func statKeyIDs() map[string]StatKey {
	return statKeyTable.ids.Load().(map[string]StatKey)
}

// InternStatKey returns the dense id for a stat name, registering it on
// first use. Safe for concurrent use.
func InternStatKey(name string) StatKey {
	if id, ok := statKeyIDs()[name]; ok {
		return id
	}
	statKeyTable.Lock()
	defer statKeyTable.Unlock()
	old := statKeyIDs()
	if id, ok := old[name]; ok {
		return id
	}
	oldNames := statKeyTable.names.Load().([]string)
	id := StatKey(len(oldNames))
	nextNames := make([]string, len(oldNames)+1)
	copy(nextNames, oldNames)
	nextNames[id] = name
	next := make(map[string]StatKey, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = id
	statKeyTable.names.Store(nextNames)
	statKeyTable.ids.Store(next)
	return id
}

// LookupStatKey returns the id for an already-interned name without
// registering it; ok is false for unknown names.
func LookupStatKey(name string) (StatKey, bool) {
	id, ok := statKeyIDs()[name]
	return id, ok
}

// Name returns the stat name this key was interned from.
func (k StatKey) Name() string {
	names := statKeyTable.names.Load().([]string)
	if int(k) < 0 || int(k) >= len(names) {
		return ""
	}
	return names[k]
}

// statKind tags one typed stat entry.
type statKind uint8

const (
	statNum statKind = iota
	statStr
)

// statEntry is one scalar statistic. Entries are kept sorted by key
// *name* (the JSON wire order), so encoding needs no per-sample sort.
type statEntry struct {
	key  StatKey
	kind statKind
	num  float64
	str  string
}

// Stats is the per-sample statistics table: a compact typed vector for
// the scalar stats filters read and write (float64 and string values
// under interned keys), plus a rare overflow document for nested or
// non-scalar values arriving from foreign files. The zero value is an
// empty, ready-to-use table. The JSON wire format is identical to the
// former map representation: one flat (or nested, via the overflow)
// object with sorted keys.
//
// Stats values are owned by their sample; methods do not lock.
type Stats struct {
	entries []statEntry
	// extra holds values the typed vector cannot represent: nested
	// objects, arrays, bools, nulls. Nil for every sample on the hot path.
	extra Fields
}

// find returns the index of key in entries, or -1.
func (t *Stats) find(name string) int {
	for i := range t.entries {
		if t.entries[i].key.Name() == name {
			return i
		}
	}
	return -1
}

// findKey returns the index of the interned key in entries, or -1.
func (t *Stats) findKey(key StatKey) int {
	for i := range t.entries {
		if t.entries[i].key == key {
			return i
		}
	}
	return -1
}

// insert places e at its sorted (by name) position.
func (t *Stats) insert(e statEntry) {
	if t.entries == nil {
		t.entries = make([]statEntry, 0, 8)
	}
	name := e.key.Name()
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].key.Name() >= name
	})
	t.entries = append(t.entries, statEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
}

// SetFloat records a numeric statistic under an interned key.
func (t *Stats) SetFloat(key StatKey, v float64) {
	if i := t.findKey(key); i >= 0 {
		t.entries[i].kind = statNum
		t.entries[i].num = v
		t.entries[i].str = ""
		return
	}
	if t.extra != nil {
		t.extra.Delete(key.Name())
	}
	t.insert(statEntry{key: key, kind: statNum, num: v})
}

// SetString records a string statistic under an interned key.
func (t *Stats) SetString(key StatKey, v string) {
	if i := t.findKey(key); i >= 0 {
		t.entries[i].kind = statStr
		t.entries[i].str = v
		t.entries[i].num = 0
		return
	}
	if t.extra != nil {
		t.extra.Delete(key.Name())
	}
	t.insert(statEntry{key: key, kind: statStr, str: v})
}

// Float reads a numeric statistic by interned key. String-valued
// entries holding a parseable number coerce, matching the historical
// map-backed accessor semantics (toFloat).
func (t *Stats) Float(key StatKey) (float64, bool) {
	if i := t.findKey(key); i >= 0 {
		e := &t.entries[i]
		if e.kind == statNum {
			return e.num, true
		}
		return toFloat(e.str)
	}
	if v, ok := t.extra.Get(key.Name()); ok {
		return toFloat(v)
	}
	return 0, false
}

// FloatByName reads a numeric statistic by name without registering the
// name in the intern table — the read path for arbitrary (possibly
// data-dependent) stat names.
func (t *Stats) FloatByName(name string) (float64, bool) {
	if v, ok := t.Get(name); ok {
		return toFloat(v)
	}
	return 0, false
}

// StringByName reads a string statistic by name without registering the
// name in the intern table.
func (t *Stats) StringByName(name string) (string, bool) {
	if v, ok := t.Get(name); ok {
		return toString(v)
	}
	return "", false
}

// String reads a string statistic by interned key.
func (t *Stats) String(key StatKey) (string, bool) {
	if i := t.findKey(key); i >= 0 {
		e := &t.entries[i]
		if e.kind == statStr {
			return e.str, true
		}
		return toString(e.num)
	}
	if v, ok := t.extra.Get(key.Name()); ok {
		return toString(v)
	}
	return "", false
}

// Get resolves a stat by name: typed entries and literal overflow keys
// first (names are stored verbatim by JSON decode, dots included), then
// dotted-path traversal into nested overflow documents, mirroring the
// former Fields.Get semantics.
func (t *Stats) Get(path string) (any, bool) {
	if i := t.find(path); i >= 0 {
		e := &t.entries[i]
		if e.kind == statStr {
			return e.str, true
		}
		return e.num, true
	}
	if v, ok := t.extra[path]; ok {
		return v, true
	}
	return t.extra.Get(path)
}

// Set writes a stat by name. Scalar values (numbers and strings) under
// already-interned names land in the typed vector; everything else goes
// to the overflow document. Unknown names deliberately do NOT intern:
// the global table must stay bounded by operator-declared keys, not
// grow with data-dependent names arriving from input files. Dotted
// paths address the overflow document, preserving the nested wire shape
// the former map representation produced.
func (t *Stats) Set(path string, value any) {
	if !hasDot(path) {
		if key, ok := LookupStatKey(path); ok {
			switch v := value.(type) {
			case float64:
				t.SetFloat(key, v)
				return
			case string:
				t.SetString(key, v)
				return
			case int:
				t.SetFloat(key, float64(v))
				return
			case int64:
				t.SetFloat(key, float64(v))
				return
			case float32:
				t.SetFloat(key, float64(v))
				return
			}
		}
	}
	// Non-scalar, nested, or not interned: overflow, displacing any
	// typed entry.
	if i := t.find(path); i >= 0 {
		t.entries = append(t.entries[:i], t.entries[i+1:]...)
	}
	t.extra = t.extra.Set(path, value)
}

// SetRaw writes a stat under a literal name: a dotted name stays one
// flat key, matching JSON-decode semantics where object keys are taken
// verbatim. Scalars under already-interned names land in the typed
// vector; unknown names go to the overflow document without
// registering (see Set).
func (t *Stats) SetRaw(name string, value any) {
	if key, ok := LookupStatKey(name); ok {
		switch v := value.(type) {
		case float64:
			t.SetFloat(key, v)
			return
		case string:
			t.SetString(key, v)
			return
		case int:
			t.SetFloat(key, float64(v))
			return
		case int64:
			t.SetFloat(key, float64(v))
			return
		case float32:
			t.SetFloat(key, float64(v))
			return
		}
	}
	if i := t.find(name); i >= 0 {
		t.entries = append(t.entries[:i], t.entries[i+1:]...)
	}
	if t.extra == nil {
		t.extra = make(Fields, 2)
	}
	t.extra[name] = value
}

// Delete removes the stat at path if present (literal keys first, then
// dotted traversal, matching Get).
func (t *Stats) Delete(path string) {
	if i := t.find(path); i >= 0 {
		t.entries = append(t.entries[:i], t.entries[i+1:]...)
		return
	}
	if _, ok := t.extra[path]; ok {
		delete(t.extra, path)
		return
	}
	t.extra.Delete(path)
}

// Len reports the number of top-level statistics.
func (t *Stats) Len() int { return len(t.entries) + len(t.extra) }

// Reset empties the table, keeping the typed vector's capacity for
// reuse.
func (t *Stats) Reset() {
	t.entries = t.entries[:0]
	t.extra = nil
}

// Keys returns the sorted top-level stat names.
func (t *Stats) Keys() []string {
	keys := make([]string, 0, t.Len())
	for i := range t.entries {
		keys = append(keys, t.entries[i].key.Name())
	}
	keys = append(keys, t.extra.Keys()...)
	if len(t.extra) > 0 {
		sort.Strings(keys)
	}
	return keys
}

// Range calls fn for every typed scalar entry in sorted name order, then
// every overflow entry in sorted key order. fn returning false stops.
func (t *Stats) Range(fn func(name string, v any) bool) {
	if len(t.extra) == 0 {
		for i := range t.entries {
			e := &t.entries[i]
			var v any
			if e.kind == statStr {
				v = e.str
			} else {
				v = e.num
			}
			if !fn(e.key.Name(), v) {
				return
			}
		}
		return
	}
	for _, k := range t.Keys() {
		v, _ := t.Get(k)
		if !fn(k, v) {
			return
		}
	}
}

// Clone deep-copies the table.
func (t *Stats) Clone() Stats {
	c := Stats{extra: t.extra.Clone()}
	if len(t.entries) > 0 {
		c.entries = make([]statEntry, len(t.entries))
		copy(c.entries, t.entries)
	}
	return c
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
