package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// NormalizeWhitespace collapses runs of spaces/tabs into one space,
// collapses 3+ newlines into two, trims trailing whitespace per line, and
// trims the whole text. Various unicode space characters are mapped to
// plain spaces first. Already-normalized text returns unchanged without
// allocating — the common case on clean corpora.
func NormalizeWhitespace(s string) string {
	if whitespaceNormalized(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := false
	newlines := 0
	for _, r := range s {
		if r == '\n' {
			// Trim spaces that were pending before the newline.
			newlines++
			if newlines <= 2 {
				trimTrailingSpaces(&b)
				b.WriteByte('\n')
			}
			prevSpace = false
			continue
		}
		if isHorizontalSpace(r) {
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
			newlines = 0
			continue
		}
		b.WriteRune(r)
		prevSpace = false
		newlines = 0
	}
	return strings.TrimSpace(b.String())
}

// whitespaceNormalized reports whether NormalizeWhitespace would return
// s unchanged: only plain single spaces and at most double newlines, no
// trailing space before a newline, and nothing strings.TrimSpace would
// trim at either end (any unicode.IsSpace rune, a superset of
// isHorizontalSpace — U+0085/U+2028/U+2029 and friends pass through the
// rewrite untouched mid-text but are trimmed at the edges).
func whitespaceNormalized(s string) bool {
	if s == "" {
		return true
	}
	prev := rune(-1)
	newlines := 0
	first := true
	for _, r := range s {
		if first {
			if unicode.IsSpace(r) {
				return false // leading whitespace would be trimmed
			}
			first = false
		}
		switch {
		case r == '\n':
			if prev == ' ' || newlines >= 2 {
				return false
			}
			newlines++
		case r == ' ':
			if prev == ' ' {
				return false
			}
			newlines = 0
		case isHorizontalSpace(r):
			return false // tabs and unicode spaces always rewrite
		default:
			newlines = 0
		}
		prev = r
	}
	return !unicode.IsSpace(prev)
}

func isHorizontalSpace(r rune) bool {
	switch r {
	case ' ', '\t', ' ', ' ', ' ', ' ', ' ', ' ',
		' ', ' ', ' ', ' ', ' ', ' ', ' ',
		' ', '　', '\r', '\v', '\f':
		return true
	}
	return false
}

func trimTrailingSpaces(b *strings.Builder) {
	s := b.String()
	t := strings.TrimRight(s, " ")
	if len(t) != len(s) {
		b.Reset()
		b.WriteString(t)
	}
}

// RemoveNonPrinting drops control characters (except newline and tab) and
// the unicode replacement character.
func RemoveNonPrinting(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\t' {
			return r
		}
		if unicode.IsControl(r) || r == utf8.RuneError || r == '\uFEFF' {
			return -1
		}
		return r
	}, s)
}

// mojibake holds the common UTF-8-decoded-as-Latin-1 artifacts. FixUnicode
// first tries a structural repair (re-encode as Latin-1, re-decode as
// UTF-8); this table catches the Windows-1252 leftovers the structural
// pass cannot express.
var mojibake = map[string]string{
	"â€™": "'", "â€˜": "'", "â€œ": "\"", "â€": "\"", "â€”": "—",
	"â€“": "–", "â€¦": "…", "Ã©": "é", "Ã¨": "è", "Ã¼": "ü", "Ã¶": "ö",
	"Ã¤": "ä", "Ã±": "ñ", "Ã§": "ç", "Ã ": "à", "Â ": " ", "Â©": "©",
	"Â®": "®", "Â°": "°",
}

// FixUnicode repairs mojibake ("messy code rectification" in the paper).
// It attempts the inverse of the classic corruption — UTF-8 bytes decoded
// as Latin-1 — and falls back to a table of common artifacts. Text that is
// already clean passes through unchanged.
func FixUnicode(s string) string {
	if repaired, ok := reverseLatin1(s); ok {
		s = repaired
	}
	if looksMojibake(s) {
		for bad, good := range mojibake {
			s = strings.ReplaceAll(s, bad, good)
		}
	}
	return s
}

// reverseLatin1 re-encodes each rune < 0x100 as a single byte and checks
// whether the byte stream is valid UTF-8 that "looks better" (fewer
// mojibake marker runes). It refuses the repair if any rune >= 0x100 is
// present (the text would be lossy to re-encode) or the result is not
// cleaner.
func reverseLatin1(s string) (string, bool) {
	if !looksMojibake(s) {
		return "", false
	}
	bytes := make([]byte, 0, len(s))
	for _, r := range s {
		if r >= 0x100 {
			return "", false
		}
		bytes = append(bytes, byte(r))
	}
	if !utf8.Valid(bytes) {
		return "", false
	}
	out := string(bytes)
	if markerCount(out) >= markerCount(s) {
		return "", false
	}
	return out, true
}

// Mojibake marker runes: the Latin-1 view of UTF-8 lead bytes.
func looksMojibake(s string) bool { return markerCount(s) > 0 }

func markerCount(s string) int {
	n := 0
	for _, r := range s {
		switch r {
		case 'Ã', 'Â', 'â', 'ð', '€', '™', '˜', 'œ', '¦', '“', '”':
			n++
		}
	}
	return n
}

// punctNormalize maps unicode punctuation to ASCII equivalents, following
// the paper's punctuation_normalization_mapper.
var punctNormalize = map[rune]string{
	'，': ",", '。': ". ", '、': ",", '„': "\"", '”': "\"", '“': "\"",
	'«': "\"", '»': "\"", '１': "1", '」': "\"", '「': "\"", '《': "\"",
	'》': "\"", '´': "'", '∶': ":", '：': ":", '？': "?", '！': "!",
	'（': "(", '）': ")", '；': ";", '–': "-", '—': " - ", '．': ". ",
	'～': "~", '’': "'", '‘': "'", '…': "...", '━': "-", '〈': "<",
	'〉': ">", '【': "[", '】': "]", '％': "%", '►': "-",
}

// NormalizePunctuation rewrites unicode punctuation into ASCII forms.
func NormalizePunctuation(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if rep, ok := punctNormalize[r]; ok {
			b.WriteString(rep)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// StripHTML removes tags, decodes the common entities, and drops script
// and style bodies. It is intentionally a lexer-level cleaner, not a full
// HTML parser: formatter inputs only need readable text out.
func StripHTML(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	i := 0
	for i < len(s) {
		c := s[i]
		if c != '<' {
			b.WriteByte(c)
			i++
			continue
		}
		// Find the end of the tag.
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			b.WriteString(s[i:])
			break
		}
		tag := s[i+1 : i+end]
		lower := strings.ToLower(tag)
		i += end + 1
		// Skip script/style bodies entirely.
		for _, skip := range []string{"script", "style"} {
			if strings.HasPrefix(lower, skip) {
				closing := "</" + skip
				if j := strings.Index(strings.ToLower(s[i:]), closing); j >= 0 {
					i += j
					if k := strings.IndexByte(s[i:], '>'); k >= 0 {
						i += k + 1
					} else {
						i = len(s)
					}
				} else {
					i = len(s)
				}
			}
		}
		// Block-level tags imply a line break.
		switch {
		case strings.HasPrefix(lower, "p"), strings.HasPrefix(lower, "/p"),
			strings.HasPrefix(lower, "br"), strings.HasPrefix(lower, "div"),
			strings.HasPrefix(lower, "/div"), strings.HasPrefix(lower, "li"),
			strings.HasPrefix(lower, "h1"), strings.HasPrefix(lower, "h2"),
			strings.HasPrefix(lower, "h3"), strings.HasPrefix(lower, "tr"):
			b.WriteByte('\n')
		}
	}
	out := b.String()
	for entity, rep := range htmlEntities {
		out = strings.ReplaceAll(out, entity, rep)
	}
	return NormalizeWhitespace(out)
}

var htmlEntities = map[string]string{
	"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": "\"", "&#39;": "'",
	"&apos;": "'", "&nbsp;": " ", "&mdash;": "—", "&ndash;": "–",
	"&hellip;": "…", "&copy;": "©",
}
