package text

import (
	"strings"
	"testing"
	"unicode"
)

// wordRune reports whether r may appear inside a non-CJK Words token.
func wordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-' || r == '_'
}

// FuzzWords checks the segmentation invariants every operator that
// consumes word tokens (word_num_filter, stopwords_filter, n-gram
// repetition, perplexity) relies on: no panics, no empty or malformed
// tokens, token runes drawn from the input in order, CJK ideographs
// isolated, and determinism.
func FuzzWords(f *testing.F) {
	f.Add("The quick brown fox jumps over the lazy dog.")
	f.Add("don't re-enter the under_scored zone 42 times")
	f.Add("中文没有空格。日本語も同じです。English mixed in.")
	f.Add("!!!@@@###   \t\n\r  ---''' ")
	f.Add("naïve façade coöperate Zürich žluťoučký кўзгу")
	f.Add("a\u00a0b\u200bc\ufeffd") // NBSP, zero-width space, BOM

	f.Fuzz(func(t *testing.T, s string) {
		words := Words(s)

		// Determinism: segmentation is a pure function.
		again := Words(s)
		if len(again) != len(words) {
			t.Fatalf("non-deterministic: %d then %d tokens", len(words), len(again))
		}
		for i := range words {
			if words[i] != again[i] {
				t.Fatalf("non-deterministic token %d: %q then %q", i, words[i], again[i])
			}
		}

		// Token well-formedness.
		for _, w := range words {
			if w == "" {
				t.Fatal("empty token")
			}
			runes := []rune(w)
			if IsCJK(runes[0]) {
				if len(runes) != 1 {
					t.Fatalf("CJK token %q not isolated to one ideograph", w)
				}
				continue
			}
			for _, r := range runes {
				if !wordRune(r) {
					t.Fatalf("token %q contains non-word rune %q", w, r)
				}
			}
		}

		// Conservation: the concatenated tokens are a subsequence of the
		// input's runes — segmentation never invents or reorders text.
		input := []rune(s)
		pos := 0
		for _, w := range words {
			for _, r := range w {
				for pos < len(input) && input[pos] != r {
					pos++
				}
				if pos >= len(input) {
					t.Fatalf("token %q not found in order within input", w)
				}
				pos++
			}
		}

		// Completeness: every word rune of the input lands in some token.
		var kept int
		for _, r := range input {
			if wordRune(r) || IsCJK(r) {
				kept++
			}
		}
		var emitted int
		for _, w := range words {
			emitted += len([]rune(w))
		}
		if emitted != kept {
			t.Fatalf("emitted %d word runes, input holds %d", emitted, kept)
		}

		// WordsLower mirrors Words token-for-token.
		lower := WordsLower(s)
		if len(lower) != len(words) {
			t.Fatalf("WordsLower %d tokens vs Words %d", len(lower), len(words))
		}
		for i := range lower {
			if lower[i] != strings.ToLower(words[i]) {
				t.Fatalf("WordsLower[%d] = %q, want %q", i, lower[i], strings.ToLower(words[i]))
			}
		}
	})
}
