package text

import (
	"strings"
	"testing"
	"unicode"
)

// TestWordsUnderscoreIsWordRune pins the documented (previously
// undocumented) behavior: '_' is a word rune, so snake_case identifiers
// segment as single tokens.
func TestWordsUnderscoreIsWordRune(t *testing.T) {
	got := Words("snake_case and _leading trailing_ lone _ mix_3d")
	want := []string{"snake_case", "and", "_leading", "trailing_", "lone", "_", "mix_3d"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if !IsWordRune('_') {
		t.Fatal("IsWordRune('_') must be true")
	}
}

// refWords is the original builder-based segmentation, kept as the
// reference the substring-based WordsInto must match exactly.
func refWords(s string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case IsCJK(r):
			flush()
			words = append(words, string(r))
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-' || r == '_':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return words
}

// refLines is the original strings.Split-based line splitter.
func refLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSuffix(l, "\r")
	}
	return lines
}

// refSentences is the original []rune-based sentence splitter.
func refSentences(s string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		if isSentenceEnd(r) {
			for i+1 < len(runes) && (isSentenceEnd(runes[i+1]) || runes[i+1] == '"' || runes[i+1] == '\'' || runes[i+1] == '”') {
				i++
				b.WriteRune(runes[i])
			}
			if t := strings.TrimSpace(b.String()); t != "" {
				out = append(out, t)
			}
			b.Reset()
		}
	}
	if t := strings.TrimSpace(b.String()); t != "" {
		out = append(out, t)
	}
	return out
}

var segmentationCases = []string{
	"",
	"The quick brown fox! Jumps over... the lazy dog? Yes.",
	"don't re-enter the under_scored zone 42 times",
	"中文没有空格。日本語も同じです。English mixed in.",
	"MIXED Case With CAPS and İstanbul",
	"line one\nline two\r\nline three\r\n\nline five",
	"  spaces   and\ttabs  ",
	"a b\u200bc\ufeffd",
	"ends without terminator",
	"\"Quoted!\" she said. 'Another.' Done…",
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWordsMatchesReference(t *testing.T) {
	for _, s := range segmentationCases {
		if got, want := Words(s), refWords(s); !equalSlices(got, want) {
			t.Fatalf("Words(%q) = %v, reference %v", s, got, want)
		}
		// WordsLower equals per-token lowering of the reference.
		want := refWords(s)
		for i := range want {
			want[i] = strings.ToLower(want[i])
		}
		if got := WordsLower(s); !equalSlices(got, want) {
			t.Fatalf("WordsLower(%q) = %v, reference %v", s, got, want)
		}
	}
}

func TestLinesMatchesReference(t *testing.T) {
	for _, s := range segmentationCases {
		if got, want := Lines(s), refLines(s); !equalSlices(got, want) {
			t.Fatalf("Lines(%q) = %v, reference %v", s, got, want)
		}
	}
}

func TestSentencesMatchesReference(t *testing.T) {
	for _, s := range segmentationCases {
		if got, want := Sentences(s), refSentences(s); !equalSlices(got, want) {
			t.Fatalf("Sentences(%q) = %v, reference %v", s, got, want)
		}
	}
}

func TestEachWordMatchesWords(t *testing.T) {
	for _, s := range segmentationCases {
		var got []string
		EachWord(s, func(w string) bool { got = append(got, w); return true })
		if want := Words(s); !equalSlices(got, want) {
			t.Fatalf("EachWord(%q) = %v, Words %v", s, got, want)
		}
	}
	// Early stop.
	n := 0
	EachWord("a b c d", func(string) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("EachWord early stop visited %d tokens, want 2", n)
	}
}

// refNormalizeWhitespace is the builder path with the fast pre-scan
// disabled — NormalizeWhitespace must agree with it everywhere.
func refNormalizeWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := false
	newlines := 0
	for _, r := range s {
		if r == '\n' {
			newlines++
			if newlines <= 2 {
				trimTrailingSpaces(&b)
				b.WriteByte('\n')
			}
			prevSpace = false
			continue
		}
		if isHorizontalSpace(r) {
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
			newlines = 0
			continue
		}
		b.WriteRune(r)
		prevSpace = false
		newlines = 0
	}
	return strings.TrimSpace(b.String())
}

func TestNormalizeWhitespaceFastPathAgrees(t *testing.T) {
	cases := append([]string{}, segmentationCases...)
	cases = append(cases,
		"already normal text\nwith two lines",
		"a\n\nb", "a\n\n\nb", "a \nb", " a", "a ", "a  b", "a\tb",
		"paragraph one\n\nparagraph two\n", "\n", "x", "",
		// Unicode spaces outside isHorizontalSpace still trim at the
		// edges (strings.TrimSpace) — the fast path must not skip them.
		"abc\u0085", "\u0085abc", "abc\u2028", "\u2029abc",
		"abc\u1680", "mid\u2028dle stays",
	)
	for _, s := range cases {
		if got, want := NormalizeWhitespace(s), refNormalizeWhitespace(s); got != want {
			t.Fatalf("NormalizeWhitespace(%q) = %q, reference %q", s, got, want)
		}
	}
}

// TestHashedRepetitionMatchesStringPath: hashed n-gram repetition must
// equal the string-materializing computation (no observed collisions on
// real text).
func TestHashedRepetitionMatchesStringPath(t *testing.T) {
	texts := []string{
		"a b c a b c a b c",
		"one two three four five six seven",
		strings.Repeat("spam ham ", 50),
		"中文 中文 中文 mixed tokens 中文",
	}
	for _, s := range texts {
		words := WordsLower(s)
		for _, n := range []int{2, 3, 5} {
			want := RepetitionRatio(WordNGrams(words, n))
			if got := WordNGramRepetitionRatio(words, n); got != want {
				t.Fatalf("WordNGramRepetitionRatio(%q, %d) = %v, want %v", s, n, got, want)
			}
			want = RepetitionRatio(CharNGrams(s, n))
			if got := CharNGramRepetitionRatio(s, n); got != want {
				t.Fatalf("CharNGramRepetitionRatio(%q, %d) = %v, want %v", s, n, got, want)
			}
		}
		// DistinctRatio vs map-based uniqueness.
		uniq := map[string]struct{}{}
		for _, w := range words {
			uniq[w] = struct{}{}
		}
		if len(words) > 0 {
			want := float64(len(uniq)) / float64(len(words))
			if got := DistinctRatio(words); got != want {
				t.Fatalf("DistinctRatio(%v) = %v, want %v", words, got, want)
			}
		}
	}
}

// TestSegmenterReusesBuffers: repeated segmentation through one
// Segmenter returns the same backing array (the zero-allocation
// property the pool relies on).
func TestSegmenterReusesBuffers(t *testing.T) {
	g := GetSegmenter()
	defer PutSegmenter(g)
	w1 := g.Words("alpha beta gamma")
	c1 := cap(w1)
	w2 := g.Words("delta epsilon")
	if cap(w2) != c1 {
		t.Fatalf("segmenter reallocated: cap %d then %d", c1, cap(w2))
	}
	if len(w2) != 2 || w2[0] != "delta" {
		t.Fatalf("w2 = %v", w2)
	}
}
